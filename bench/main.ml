(* The benchmark harness: one Bechamel test per table/figure of the
   paper (see DESIGN.md's per-experiment index), plus the regenerated
   tables printed for EXPERIMENTS.md.

     dune exec bench/main.exe
*)

open Bechamel
open Toolkit
open Bench_support

(* ------------------------------------------------------------------ *)
(* The regenerated tables                                               *)
(* ------------------------------------------------------------------ *)

let section title = Fmt.pr "@.== %s ==@." title

let fig1_table () =
  section "Figure 1: the complexity landscape";
  Fmt.pr "%-18s %-14s %-14s@." "fragment" "computed" "paper";
  List.iter
    (fun (name, (ev : Classify.Landscape.evidence), expected) ->
      Fmt.pr "%-18s %-14s %-14s %s@." name
        (Fmt.str "%a" Classify.Landscape.pp_status ev.status)
        (Fmt.str "%a" Classify.Landscape.pp_status expected)
        (if ev.status = expected then "ok" else "MISMATCH"))
    Classify.Landscape.figure1

let bioportal_table () =
  section "Section 1: the BioPortal corpus analysis (synthetic corpus)";
  let corpus = Bioportal.Generate.corpus () in
  let table = Bioportal.Analyze.tabulate (List.map Bioportal.Analyze.analyze corpus) in
  Fmt.pr "%a@." Bioportal.Analyze.pp_table table;
  let pt, pf, pq = Bioportal.Analyze.paper_reference in
  Fmt.pr "paper: %d total, %d in ALCHIF depth <= 2, %d in ALCHIQ depth 1@." pt pf pq

let hand_table () =
  section "Section 1: O1, O2 and their union on the five-fingered hand";
  let hand = hands 1 in
  let pointed =
    List.init 5 (fun f -> (thumb, [ e (Printf.sprintf "h0_f%d" f) ]))
  in
  let cases =
    [ ("O1 (exactly five fingers)", o1); ("O2 (a thumb finger)", o2); ("O1 + O2", o_union) ]
  in
  Fmt.pr "%-28s %-22s %-18s %-16s@." "ontology" "thumb disj. certain" "disjunct certain" "materializable";
  List.iter
    (fun (name, o) ->
      let disj = Reasoner.Bounded.certain_disjunction ~max_extra:1 o hand pointed in
      let single =
        Reasoner.Bounded.certain_cq ~max_extra:1 o hand thumb [ e "h0_f0" ]
      in
      let mat =
        Material.Materializability.materializable_on ~max_model_extra:1 ~max_extra:1 o hand
      in
      Fmt.pr "%-28s %-22b %-18b %-16b@." name disj single mat)
    cases;
  (* scaling: certain-answer cost as hands are added (shape: the union
     pays for countermodel search, the PTIME ontologies stay cheap) *)
  Fmt.pr "@.%-8s %-14s %-14s %-14s  (seconds per disjunction check)@." "hands"
    "O1" "O2" "O1+O2";
  List.iter
    (fun n ->
      let d = hands n in
      let pointed =
        List.init 5 (fun f -> (thumb, [ e (Printf.sprintf "h0_f%d" f) ]))
      in
      let t o = snd (time (fun () -> Reasoner.Bounded.certain_disjunction ~max_extra:1 o d pointed)) in
      Fmt.pr "%-8d %-14.4f %-14.4f %-14.4f@." n (t o1) (t o2) (t o_union))
    [ 1; 2 ]

let example1_table () =
  section "Example 1 / Lemma 3: the limits of the framework";
  (* OMat/PTime is not invariant under disjoint unions *)
  let s = List.hd (Logic.Ontology.sentences o_mat_ptime) in
  let d1 = Structure.Parse.instance_of_string "A(a)" in
  let d2 = Structure.Parse.instance_of_string "B(b)" in
  (match Gf.Invariance.check_pair s d1 d2 with
  | Some _ -> Fmt.pr "OMat/PTime: disjoint-union invariance fails (as in the paper)@."
  | None -> Fmt.pr "OMat/PTime: MISMATCH@.");
  (* OMat/PTime is not materializable *)
  let d = Structure.Parse.instance_of_string "D(c)" in
  Fmt.pr "OMat/PTime materializable on {D(c)}: %b (paper: false)@."
    (Material.Materializability.materializable_on ~max_model_extra:1 o_mat_ptime d);
  (* OUCQ/CQ: the Boolean UCQ A(x) | B(x) | E(x) is certain on any
     instance (it restates the ontology), while no single disjunct is —
     the UCQ/CQ gap behind Lemma 3 *)
  let qa = Query.Parse.cq_of_string "q <- A(x)" in
  let qb = Query.Parse.cq_of_string "q <- B(x)" in
  let qe = Query.Parse.cq_of_string "q <- E(x)" in
  let d = Structure.Parse.instance_of_string "F(a)" in
  Fmt.pr "OUCQ/CQ on {F(a)}: A|B|E certain: %b, each disjunct: %b %b %b (paper: true, false x3)@."
    (Reasoner.Bounded.certain_ucq ~max_extra:1 o_ucq_cq d
       (Query.Ucq.make [ qa; qb; qe ]) [])
    (Reasoner.Bounded.certain_cq ~max_extra:1 o_ucq_cq d qa [])
    (Reasoner.Bounded.certain_cq ~max_extra:1 o_ucq_cq d qb [])
    (Reasoner.Bounded.certain_cq ~max_extra:1 o_ucq_cq d qe [])

let engine_table () =
  section "Incremental engine: ground once, solve many";
  (* Normalize heap state: the preceding tables leave a grown major heap
     whose collection debt otherwise lands on these sub-millisecond
     timings. *)
  Gc.compact ();
  (* Multi-tuple certain answers of an arity-2 query: the seed path
     regrounds (O, D) for every candidate tuple and bound; the session
     path grounds once per bound and answers tuples by assumption
     solving. The grounding memo is disabled for the table — it would
     accelerate the seed path's deliberate regrounding and blur the
     ground-once-vs-reground comparison this table isolates; the memo's
     own effect shows up in bench.total.ground_seconds instead. *)
  Reasoner.Ground.set_memo_capacity 0;
  let q2 = Query.Parse.cq_of_string "q(x,y) <- R(x,y), C(x)" in
  let max_extra = 1 in
  Fmt.pr "%-8s %-12s %-10s %-12s %-12s %-9s %s@." "chain" "candidates"
    "answers" "bounded(s)" "session(s)" "speedup" "engine stats";
  List.iter
    (fun n ->
      let d = chain n in
      let dom = Structure.Instance.domain_list d in
      let candidates =
        List.concat_map (fun a -> List.map (fun b -> [ a; b ]) dom) dom
      in
      (* Sub-millisecond single-shot timings swing by 2-3x with GC and
         scheduler state; report the best of a few repetitions instead.
         The session side clears the engine cache inside the timed
         thunk, so every repetition pays the full ground-once cost. *)
      let reps = 5 in
      let best f =
        let result = ref None in
        let best_t = ref infinity in
        for _ = 1 to reps do
          let x, t = time f in
          result := Some x;
          if t < !best_t then best_t := t
        done;
        (Option.get !result, !best_t)
      in
      let seed_answers, t_seed =
        best (fun () ->
            List.filter
              (fun tup -> Reasoner.Bounded.certain_cq ~max_extra o_horn d q2 tup)
              candidates)
      in
      let omq = Omq.of_cq o_horn q2 in
      let eng_answers, t_eng =
        best (fun () ->
            Reasoner.Engine.clear_cache ();
            Reasoner.Stats.reset (Reasoner.Stats.global ());
            Omq.certain_answers ~max_extra omq d)
      in
      let st = Reasoner.Stats.global () in
      let agree =
        List.sort compare seed_answers = List.sort compare eng_answers
      in
      Fmt.pr "%-8d %-12d %-10d %-12.4f %-12.4f %-9s %s@." n
        (List.length candidates) (List.length eng_answers) t_seed t_eng
        (Fmt.str "%.1fx" (t_seed /. t_eng))
        (if agree then "" else "MISMATCH");
      Fmt.pr "         stats: %s@." (Reasoner.Stats.to_json st);
      let prefix = Fmt.str "bench.engine.chain%d" n in
      Reasoner.Stats.publish ~prefix st;
      Obs.Metrics.set (Obs.Metrics.global ()) (prefix ^ ".speedup") (t_seed /. t_eng))
    [ 4; 8 ];
  Reasoner.Ground.set_memo_capacity 256

let parallel_corpus_table () =
  section "Parallel corpus: 24-ontology batch evaluation per jobs count";
  (* The CI workload (see EXPERIMENTS.md): certain answers of one UCQ
     over the committed 18-element instance w.r.t. every ontology of
     the seed-2017 corpus, with a deterministic grounding-clause cap so
     the one pathological deep ontology degrades ([out_of_fuel]) instead
     of dominating the batch. Results are submission-ordered, so every
     jobs count must produce identical verdicts — checked here too. *)
  Gc.compact ();
  let items = Omq.Corpus.generate ~seed:2017 ~n:24 () in
  match
    let ic = open_in_bin "data/corpus_instance.txt" in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Structure.Parse.instance_of_string s
  with
  | exception Sys_error m ->
      Fmt.pr "skipped: %s (run from the repository root)@." m
  | data ->
      let query = Query.Parse.ucq_of_string "q(x) <- r0(x,y), C1(y)" in
      let task = Omq.Corpus.Eval { query; data; max_extra = 2 } in
      let run jobs = Omq.Corpus.run ~max_clauses:600_000 ~jobs task items in
      Fmt.pr "cores available: %d@." (Parallel.Pool.default_jobs ());
      Obs.Metrics.set_count (Obs.Metrics.global ())
        "bench.corpus.cores_available"
        (Parallel.Pool.default_jobs ());
      let project (rep : Omq.Corpus.report) =
        List.map
          (fun (r : Omq.Corpus.result_one) ->
            ( r.item_name,
              match r.outcome with
              | Ok (Omq.Corpus.Evaluated ev) ->
                  Fmt.str "ok %b %d" ev.consistent (List.length ev.answers)
              | Ok (Omq.Corpus.Classified _) -> "classified"
              | Error f -> Fmt.str "%a" Reasoner.Budget.pp_reason f.reason ))
          rep.results
      in
      let baseline = run 1 in
      let expected = project baseline in
      Fmt.pr "%-6s %-12s %-10s %s@." "jobs" "seconds" "speedup" "verdicts";
      List.iter
        (fun jobs ->
          let rep = if jobs = 1 then baseline else run jobs in
          let speedup = baseline.Omq.Corpus.seconds /. rep.Omq.Corpus.seconds in
          Fmt.pr "%-6d %-12.3f %-10s %s@." jobs rep.Omq.Corpus.seconds
            (Fmt.str "%.2fx" speedup)
            (if project rep = expected then "identical" else "MISMATCH");
          let prefix = Fmt.str "bench.corpus.jobs%d" jobs in
          Obs.Metrics.set (Obs.Metrics.global ()) (prefix ^ ".seconds")
            rep.Omq.Corpus.seconds;
          Obs.Metrics.set (Obs.Metrics.global ()) (prefix ^ ".speedup") speedup;
          (* Per-domain engine-counter context (ROADMAP item 3): how the
             grounding-memo and session-cache traffic distributes over
             the worker domains — cold per-domain memos are the leading
             suspect for the recorded slowdowns. *)
          let byw = Hashtbl.create 8 in
          List.iter
            (fun (r : Omq.Corpus.result_one) ->
              let st =
                match Hashtbl.find_opt byw r.worker with
                | Some st -> st
                | None ->
                    let st = Reasoner.Stats.create () in
                    Hashtbl.add byw r.worker st;
                    st
              in
              Reasoner.Stats.add ~into:st r.stats)
            rep.Omq.Corpus.results;
          let workers =
            List.sort compare (Hashtbl.fold (fun w _ acc -> w :: acc) byw [])
          in
          List.iter
            (fun w ->
              let st = Hashtbl.find byw w in
              Fmt.pr
                "       domain %d: memo %d/%d, cache %d/%d (hits/misses)@." w
                st.Reasoner.Stats.memo_hits st.Reasoner.Stats.memo_misses
                st.Reasoner.Stats.cache_hits st.Reasoner.Stats.cache_misses)
            workers;
          let m = Obs.Metrics.global () in
          let total = rep.Omq.Corpus.total in
          Obs.Metrics.set_count m (prefix ^ ".memo_hits")
            total.Reasoner.Stats.memo_hits;
          Obs.Metrics.set_count m (prefix ^ ".memo_misses")
            total.Reasoner.Stats.memo_misses;
          Obs.Metrics.set_count m (prefix ^ ".cache_hits")
            total.Reasoner.Stats.cache_hits;
          Obs.Metrics.set_count m (prefix ^ ".cache_misses")
            total.Reasoner.Stats.cache_misses;
          Obs.Metrics.set_count m (prefix ^ ".domains_used")
            (List.length workers))
        [ 1; 2; 4 ]

let eval_table ?(sizes = [ 10_000; 100_000 ]) () =
  section "Cost-based evaluation: naive vs planned joins on generated instances";
  (* Multi-atom CQs over [Structure.Randgen.large] instances. The naive
     pipeline is the pre-planner backtracking search (planner switch
     off); the indexed one is the Relindex/Eval join planner. Both must
     return byte-identical answers — [Cq.answers] sorts, so plain
     structural equality checks it. *)
  let queries =
    [
      ("join2", "q(x,y) <- r0(x,z), r1(z,y), C0(x), C1(y)");
      ("chain3", "q(x) <- r0(x,y), r1(y,z), C2(z)");
    ]
  in
  Fmt.pr "%-9s %-8s %-9s %-12s %-12s %-9s %s@." "facts" "query" "answers"
    "naive(s)" "indexed(s)" "speedup" "identical";
  List.iter
    (fun size ->
      let rng = Random.State.make [| 2017; size |] in
      let inst =
        Structure.Randgen.large ~rng
          ~nconst:(max 300 (size / 33))
          ~nrels:4 ~nunary:4 ~unary_p:0.02 ~nfacts:size ()
      in
      let m = Obs.Metrics.global () in
      Obs.Metrics.set_count m
        (Fmt.str "bench.eval.n%d.facts" size)
        (Structure.Instance.cardinal inst);
      List.iter
        (fun (qname, qtext) ->
          let q = Query.Parse.cq_of_string qtext in
          Gc.compact ();
          let naive, t_naive =
            time (fun () ->
                Structure.Eval.with_planner false (fun () ->
                    Query.Cq.answers inst q))
          in
          let indexed, t_indexed =
            time (fun () ->
                Structure.Eval.with_planner true (fun () ->
                    Query.Cq.answers inst q))
          in
          let identical = naive = indexed in
          let speedup = t_naive /. t_indexed in
          Fmt.pr "%-9d %-8s %-9d %-12.4f %-12.4f %-9s %s@." size qname
            (List.length indexed) t_naive t_indexed
            (Fmt.str "%.1fx" speedup)
            (if identical then "identical" else "MISMATCH");
          let prefix = Fmt.str "bench.eval.n%d.%s" size qname in
          Obs.Metrics.set m (prefix ^ ".naive_seconds") t_naive;
          Obs.Metrics.set m (prefix ^ ".indexed_seconds") t_indexed;
          Obs.Metrics.set m (prefix ^ ".speedup") speedup;
          Obs.Metrics.set_count m (prefix ^ ".answers") (List.length indexed);
          Obs.Metrics.set_count m (prefix ^ ".identical")
            (if identical then 1 else 0))
        queries)
    sizes

let incremental_table ?(size = 100_000) ?(rounds = 30) () =
  section
    "Incremental maintenance: delta insert/retract vs reopen-from-scratch";
  (* A nonrecursive join program (counting strategy) over the same
     generated instance family as [eval_table]. Each round inserts a
     small batch of facts and then retracts it; the p50 per-update
     latencies are compared against re-materialising the fixpoint from
     scratch (what a session reopen pays). The final state must answer
     byte-identically to a from-scratch evaluation — the bench doubles
     as the equivalence proof on real volume. *)
  let rng = Random.State.make [| 2017; size |] in
  let inst =
    Structure.Randgen.large ~rng
      ~nconst:(max 300 (size / 33))
      ~nrels:4 ~nunary:4 ~unary_p:0.02 ~nfacts:size ()
  in
  let nconst = max 300 (size / 33) in
  let program =
    Datalog.Program.make ~goal:"goal"
      [
        Datalog.Program.rule
          ~head:("goal", [ v "x"; v "y" ])
          ~body:
            [
              Datalog.Program.Pos ("r0", [ v "x"; v "z" ]);
              Datalog.Program.Pos ("r1", [ v "z"; v "y" ]);
              Datalog.Program.Pos ("C0", [ v "x" ]);
            ];
      ]
  in
  Gc.compact ();
  let st0, t_prepare = time (fun () -> Datalog.Seminaive.prepare program inst) in
  let batch () =
    let const i = e (Printf.sprintf "c%d" i) in
    List.init 10 (fun j ->
        Structure.Instance.fact
          (if j mod 2 = 0 then "r0" else "r1")
          [
            const (Random.State.int rng nconst);
            const (Random.State.int rng nconst);
          ])
    |> List.sort_uniq compare
  in
  let st = ref st0 in
  let ins = ref [] and del = ref [] in
  for _ = 1 to rounds do
    let facts = batch () in
    let (st', _), t_ins = time (fun () -> Datalog.Seminaive.insert !st facts) in
    st := st';
    ins := t_ins :: !ins;
    let (st'', _), t_del =
      time (fun () -> Datalog.Seminaive.retract !st facts)
    in
    st := st'';
    del := t_del :: !del
  done;
  let identical =
    Datalog.Seminaive.state_answers !st
    = Datalog.Seminaive.answers program (Datalog.Seminaive.state_edb !st)
    && Structure.Instance.equal
         (Datalog.Seminaive.state_derived !st)
         (Datalog.Seminaive.evaluate program (Datalog.Seminaive.state_edb !st))
  in
  let p50 ts =
    let a = Array.of_list ts in
    Array.sort compare a;
    a.(Array.length a / 2) *. 1000.
  in
  let insert_p50_ms = p50 !ins and retract_p50_ms = p50 !del in
  let reopen_ms = t_prepare *. 1000. in
  (* conservative: scratch cost over the *slower* of the two update
     kinds — the CI gate holds even for the worst maintained path *)
  let speedup = reopen_ms /. Float.max insert_p50_ms retract_p50_ms in
  Fmt.pr "%-9s %-12s %-14s %-14s %-14s %-9s %s@." "facts" "rounds"
    "reopen(ms)" "insert p50(ms)" "retract p50(ms)" "speedup" "identical";
  Fmt.pr "%-9d %-12d %-14.2f %-14.4f %-14.4f %-9s %s@." size rounds reopen_ms
    insert_p50_ms retract_p50_ms
    (Fmt.str "%.0fx" speedup)
    (if identical then "identical" else "MISMATCH");
  let m = Obs.Metrics.global () in
  Obs.Metrics.set_count m "bench.incremental.facts"
    (Structure.Instance.cardinal inst);
  Obs.Metrics.set m "bench.incremental.reopen_ms" reopen_ms;
  Obs.Metrics.set m "bench.incremental.insert_p50_ms" insert_p50_ms;
  Obs.Metrics.set m "bench.incremental.retract_p50_ms" retract_p50_ms;
  Obs.Metrics.set m "bench.incremental.speedup_vs_reopen" speedup;
  Obs.Metrics.set_count m "bench.incremental.identical"
    (if identical then 1 else 0)

let serve_table () =
  section "Serve daemon: closed-loop load, 4 clients x 60 evals";
  (* The daemon runs on a POSIX thread of this process (its worker
     domains are its own); clients are real Unix-socket connections
     driven by Omqd.Loadgen. Every response is compared byte for byte
     against the sequential evaluation's rendering — the bench doubles
     as the proof that serving does not change answers. *)
  let module P = Omq.Protocol in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match (read_file "data/hand.dl", read_file "data/hand_instance.txt") with
  | exception Sys_error m ->
      Fmt.pr "skipped: %s (run from the repository root)@." m
  | onto, data -> (
      let query = "q(x) <- Hand(x)" in
      let expected =
        let tbox = Dl.Parser.parse_tbox onto in
        let d = Structure.Parse.instance_of_string data in
        let q = Query.Parse.ucq_of_string query in
        let session = Omq.open_session ~max_extra:2 (Omq.of_tbox tbox q) d in
        let answers = Omq.Session.certain_answers session in
        P.render_response
          (P.Evaled
             {
               result =
                 {
                   P.consistent = true;
                   boolean = false;
                   tuples =
                     List.map
                       (List.map (fun e ->
                            Fmt.str "%a" Structure.Element.pp e))
                       answers;
                 };
               stats = None;
             })
      in
      let clients = 4 and queries = 60 and jobs = 4 in
      let path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "omq-bench-%d.sock" (Unix.getpid ()))
      in
      let addr = Omqd.Daemon.Unix_path path in
      let cfg = Omqd.Daemon.config ~addr ~jobs () in
      let daemon = ref (Ok ()) in
      let th = Thread.create (fun () -> daemon := Omqd.Daemon.run cfg) () in
      let spec =
        {
          Omqd.Loadgen.open_req =
            P.Open_session { ontology = onto; data; query; max_extra = 2 };
          make_eval =
            (fun ~session ->
              P.Eval { session; budget = P.no_budget; want_stats = false });
          expected = Some expected;
        }
      in
      let outcome =
        Omqd.Loadgen.run addr (List.init clients (fun _ -> spec)) ~queries
      in
      (match Omqd.Client.connect ~attempts:1 addr with
      | Error _ -> ()
      | Ok c ->
          ignore (Omqd.Client.call c P.Shutdown);
          Omqd.Client.close c);
      Thread.join th;
      (match !daemon with
      | Ok () -> ()
      | Error m -> Fmt.pr "daemon exited with error: %s@." m);
      match outcome with
      | Error m -> Fmt.pr "load generator failed: %s@." m
      | Ok s ->
          Fmt.pr "%a@." Omqd.Loadgen.pp_summary s;
          let m = Obs.Metrics.global () in
          Obs.Metrics.set_count m "bench.serve.clients" s.Omqd.Loadgen.clients;
          Obs.Metrics.set_count m "bench.serve.queries_per_client"
            s.Omqd.Loadgen.queries_per_client;
          Obs.Metrics.set_count m "bench.serve.jobs" jobs;
          Obs.Metrics.set_count m "bench.serve.total" s.Omqd.Loadgen.total;
          Obs.Metrics.set_count m "bench.serve.ok" s.Omqd.Loadgen.ok;
          Obs.Metrics.set_count m "bench.serve.mismatches"
            s.Omqd.Loadgen.mismatches;
          Obs.Metrics.set m "bench.serve.seconds" s.Omqd.Loadgen.seconds;
          Obs.Metrics.set m "bench.serve.throughput_rps"
            s.Omqd.Loadgen.throughput_rps;
          Obs.Metrics.set m "bench.serve.mean_ms" s.Omqd.Loadgen.mean_ms;
          Obs.Metrics.set m "bench.serve.p50_ms" s.Omqd.Loadgen.p50_ms;
          Obs.Metrics.set m "bench.serve.p95_ms" s.Omqd.Loadgen.p95_ms;
          Obs.Metrics.set m "bench.serve.p99_ms" s.Omqd.Loadgen.p99_ms;
          Obs.Metrics.set m "bench.serve.max_ms" s.Omqd.Loadgen.max_ms)

let telemetry_overhead_table () =
  section "Telemetry overhead: identical load, metrics on vs off";
  (* Same daemon-on-a-thread closed loop as the serve table, run three
     times: one discarded warmup, then telemetry on and telemetry off.
     What's being priced is the whole per-request hot path the flight
     recorder adds — latency observation into the bucketed histogram,
     the worker-side GC sample + registry snapshot shipped with each
     completion, and the ring write. The budget is < 5% of throughput;
     the number lands in BENCH_omq.json so CI can watch it drift. *)
  let module P = Omq.Protocol in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match (read_file "data/hand.dl", read_file "data/hand_instance.txt") with
  | exception Sys_error m ->
      Fmt.pr "skipped: %s (run from the repository root)@." m
  | onto, data -> (
      let query = "q(x) <- Hand(x)" in
      (* Long runs: at short ones the measurement is dominated by
         daemon/session startup and scheduler noise, not the per-request
         cost being priced. *)
      let clients = 4 and queries = 200 and jobs = 4 in
      let spec =
        {
          Omqd.Loadgen.open_req =
            P.Open_session { ontology = onto; data; query; max_extra = 2 };
          make_eval =
            (fun ~session ->
              P.Eval { session; budget = P.no_budget; want_stats = false });
          expected = None;
        }
      in
      let run_load ~telemetry tag =
        let path =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "omq-bench-tel-%s-%d.sock" tag (Unix.getpid ()))
        in
        let addr = Omqd.Daemon.Unix_path path in
        let cfg = Omqd.Daemon.config ~addr ~jobs ~telemetry () in
        let daemon = ref (Ok ()) in
        let th = Thread.create (fun () -> daemon := Omqd.Daemon.run cfg) () in
        let outcome =
          Omqd.Loadgen.run addr (List.init clients (fun _ -> spec)) ~queries
        in
        (match Omqd.Client.connect ~attempts:1 addr with
        | Error _ -> ()
        | Ok c ->
            ignore (Omqd.Client.call c P.Shutdown);
            Omqd.Client.close c);
        Thread.join th;
        match (outcome, !daemon) with
        | Ok s, Ok () -> Ok s.Omqd.Loadgen.throughput_rps
        | Error m, _ | _, Error m -> Error m
      in
      let ( let* ) = Result.bind in
      (* Alternate on/off and keep the best of three each: a single
         pair is badly order-biased in-process (the major heap grows
         run over run, so whichever mode runs later looks faster).
         Best-of alternated pairs cancels that; noise only ever
         subtracts from a throughput measurement. *)
      let measured =
        let* _warmup = run_load ~telemetry:true "warmup" in
        let rec pairs n best_on best_off =
          if n = 0 then Ok (best_on, best_off)
          else
            let* on = run_load ~telemetry:true (Printf.sprintf "on%d" n) in
            let* off = run_load ~telemetry:false (Printf.sprintf "off%d" n) in
            pairs (n - 1) (Float.max best_on on) (Float.max best_off off)
        in
        pairs 3 0.0 0.0
      in
      match measured with
      | Error m -> Fmt.pr "skipped: %s@." m
      | Ok (rps_on, rps_off) ->
          let overhead_pct =
            if rps_off > 0.0 then 100.0 *. (1.0 -. (rps_on /. rps_off))
            else 0.0
          in
          Fmt.pr "telemetry on: %.1f req/s@." rps_on;
          Fmt.pr "telemetry off: %.1f req/s@." rps_off;
          Fmt.pr "overhead: %.2f%% of throughput@." overhead_pct;
          let m = Obs.Metrics.global () in
          Obs.Metrics.set m "bench.telemetry.rps_on" rps_on;
          Obs.Metrics.set m "bench.telemetry.rps_off" rps_off;
          Obs.Metrics.set m "bench.telemetry.overhead_pct" overhead_pct)

let chaos_table () =
  section "Chaos: journal recovery and fault-ridden serving";
  (* Two daemons share one journal directory. The first serves a fleet
     of sessions (opens + acknowledged inserts + evals) through a seeded
     fault plan that tears read frames and truncates writes at the
     socket boundary; the second starts cold from the journal alone and
     must answer every acknowledged session byte-identically. The table
     reports the replay latency and — the invariant this PR exists for —
     the number of acknowledged facts the restart lost (must be 0). *)
  let module P = Omq.Protocol in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match (read_file "data/hand.dl", read_file "data/hand_instance.txt") with
  | exception Sys_error m ->
      Fmt.pr "skipped: %s (run from the repository root)@." m
  | onto, data -> (
      let query = "q(x) <- Hand(x)" in
      let extra = "Hand(z_chaos)" in
      let expected =
        let tbox = Dl.Parser.parse_tbox onto in
        let d = Structure.Parse.instance_of_string (data ^ "\n" ^ extra) in
        let q = Query.Parse.ucq_of_string query in
        let session = Omq.open_session ~max_extra:2 (Omq.of_tbox tbox q) d in
        let answers = Omq.Session.certain_answers session in
        P.render_response
          (P.Evaled
             {
               result =
                 {
                   P.consistent = true;
                   boolean = false;
                   tuples =
                     List.map
                       (List.map (fun e ->
                            Fmt.str "%a" Structure.Element.pp e))
                       answers;
                 };
               stats = None;
             })
      in
      let pid = Unix.getpid () in
      let tmp = Filename.get_temp_dir_name () in
      let dir = Filename.concat tmp (Printf.sprintf "omq-bench-chaos-%d" pid) in
      let sock n =
        Filename.concat tmp (Printf.sprintf "omq-bench-chaos-%d-%d.sock" pid n)
      in
      let sessions = 6 in
      let exception Bench_fail of string in
      try
        let call c req =
          match Omqd.Client.call ~retries:4 c req with
          | Ok r -> r
          | Error m -> raise (Bench_fail m)
        in
        let connect addr =
          match Omqd.Client.connect addr with
          | Ok c -> c
          | Error m -> raise (Bench_fail m)
        in
        let stop addr th outcome =
          (match Omqd.Client.connect ~attempts:5 addr with
          | Error _ -> ()
          | Ok c ->
              ignore (Omqd.Client.call c P.Shutdown);
              Omqd.Client.close c);
          Thread.join th;
          match !outcome with
          | Ok () -> ()
          | Error m -> Fmt.pr "daemon exited with error: %s@." m
        in
        (* phase 1: a journaled daemon under the fault plan *)
        let chaos =
          Omqd.Chaos.create ~seed:2017 ~torn_read:0.25 ~short_write:0.25 ()
        in
        let addr1 = Omqd.Daemon.Unix_path (sock 1) in
        let cfg1 =
          Omqd.Daemon.config ~addr:addr1 ~jobs:2 ~journal:dir ~chaos ()
        in
        let d1 = ref (Ok ()) in
        let th1 = Thread.create (fun () -> d1 := Omqd.Daemon.run cfg1) () in
        let c = connect addr1 in
        let faulted_mismatches = ref 0 in
        let sids =
          List.init sessions (fun _ ->
              match
                call c (P.Open_session { ontology = onto; data; query; max_extra = 2 })
              with
              | P.Opened { session } ->
                  (match call c (P.Insert_facts { session; facts = extra }) with
                  | P.Inserted _ -> ()
                  | r -> raise (Bench_fail (P.render_response r)));
                  let resp =
                    call c
                      (P.Eval { session; budget = P.no_budget; want_stats = false })
                  in
                  if P.render_response resp <> expected then
                    incr faulted_mismatches;
                  session
              | r -> raise (Bench_fail (P.render_response r)))
        in
        Omqd.Client.close c;
        stop addr1 th1 d1;
        let torn, drop_r, short, stall, drop_a, poisoned =
          Omqd.Chaos.injected chaos
        in
        let faults = torn + drop_r + short + stall + drop_a + poisoned in
        let journal_bytes =
          try (Unix.stat (Filename.concat dir "omq.journal")).Unix.st_size
          with Unix.Unix_error _ -> 0
        in
        (* phase 2: cold restart from the journal alone *)
        let t0 = Obs.Clock.now () in
        let ready_at = ref Float.nan in
        let addr2 = Omqd.Daemon.Unix_path (sock 2) in
        let cfg2 = Omqd.Daemon.config ~addr:addr2 ~jobs:2 ~journal:dir () in
        let d2 = ref (Ok ()) in
        let th2 =
          Thread.create
            (fun () ->
              d2 :=
                Omqd.Daemon.run
                  ~ready:(fun () -> ready_at := Obs.Clock.now ())
                  cfg2)
            ()
        in
        let c = connect addr2 in
        let lost =
          List.fold_left
            (fun acc session ->
              let resp =
                call c
                  (P.Eval { session; budget = P.no_budget; want_stats = false })
              in
              if P.render_response resp = expected then acc else acc + 1)
            0 sids
        in
        Omqd.Client.close c;
        stop addr2 th2 d2;
        let recovery_ms =
          if Float.is_nan !ready_at then Float.nan
          else 1000.0 *. (!ready_at -. t0)
        in
        Fmt.pr
          "%d session(s), %d fault(s) injected (%d torn reads, %d short \
           writes), %d mismatch(es) under chaos@."
          sessions faults torn short !faulted_mismatches;
        Fmt.pr
          "restart: replayed %d byte journal in %.1f ms, lost acked facts: \
           %d@."
          journal_bytes recovery_ms lost;
        let m = Obs.Metrics.global () in
        Obs.Metrics.set_count m "bench.chaos.sessions" sessions;
        Obs.Metrics.set_count m "bench.chaos.faults_injected" faults;
        Obs.Metrics.set_count m "bench.chaos.mismatches_under_chaos"
          !faulted_mismatches;
        Obs.Metrics.set_count m "bench.chaos.journal_bytes" journal_bytes;
        Obs.Metrics.set_count m "bench.chaos.lost_acked_facts" lost;
        Obs.Metrics.set m "bench.chaos.recovery_ms" recovery_ms
      with Bench_fail m -> Fmt.pr "chaos bench failed: %s@." m)

let thm5_table () =
  section "Theorem 5: the type-based Datalog!= evaluation vs certain answers";
  Fmt.pr "%-8s %-10s %-10s %-12s %-12s@." "chain" "rewriting" "certain" "t_rewrite" "t_certain";
  List.iter
    (fun n ->
      let d = chain n in
      let r1, t1 =
        time (fun () -> Rewriting.Typeprog.entails ~extra:2 o_horn qc d [ e "n0" ])
      in
      let r2, t2 =
        time (fun () -> Reasoner.Bounded.certain_cq ~max_extra:2 o_horn d qc [ e "n0" ])
      in
      Fmt.pr "%-8d %-10b %-10b %-12.3f %-12.3f %s@." n r1 r2 t1 t2
        (if Bool.equal r1 r2 then "(agrees)" else "(MISMATCH)"))
    [ 1; 3; 5 ]

let thm8_table () =
  section "Theorem 8: CSP vs the OMQ encoding (K2 easy, K3 NP-hard)";
  let rng = Random.State.make [| 23 |] in
  Fmt.pr "%-6s %-6s %-12s %-12s %-12s@." "k" "nodes" "CSP" "encoding" "agrees";
  List.iter
    (fun (k, n) ->
      let template = Csp.Precolor.closure (Csp.Template.k_colouring k) in
      let o = Csp.Encode.ontology template in
      let g = random_graph ~rng ~n ~p:0.35 in
      let direct = Csp.Solve.solvable template g in
      let lifted = Csp.Encode.lift_instance template g in
      let consistent = Reasoner.Bounded.is_consistent ~max_extra:2 o lifted in
      Fmt.pr "%-6d %-6d %-12b %-12b %-12b@." k n direct consistent
        (Bool.equal direct consistent))
    [ (2, 4); (2, 6); (3, 4); (3, 6) ]

let thm10_table () =
  section "Theorem 10: grid verification and the triggered disjunction";
  let p = Tm.Tiling.trivial in
  let o = Dl.Translate.tbox (Tm.Gridenc.ontology_undecidability p) in
  let qb1 = Query.Parse.cq_of_string "q(x) <- B1(x)" in
  let qb2 = Query.Parse.cq_of_string "q(x) <- B2(x)" in
  let corner = e "g_0_0" in
  let proper = Tm.Tiling.grid_instance (Option.get (Tm.Tiling.solve_fixed p 1 0)) in
  let broken = Structure.Parse.instance_of_string "B(g_0_0)\nF(g_1_0)\nX(g_0_0, g_1_0)" in
  Fmt.pr "%-14s %-10s %-20s@." "instance" "grid(d)" "B1|B2 certain";
  List.iter
    (fun (name, d) ->
      Fmt.pr "%-14s %-10b %-20b@." name
        (Tm.Gridenc.grid_holds p d corner)
        (Reasoner.Bounded.certain_disjunction ~max_extra:0 o d
           [ (qb1, [ corner ]); (qb2, [ corner ]) ]))
    [ ("proper grid", proper); ("broken grid", broken) ];
  Fmt.pr "unsolvable problem admits a tiling: %b (paper: false)@."
    (Tm.Tiling.admits_tiling Tm.Tiling.unsolvable)

let thm13_table () =
  section "Theorem 13: deciding PTIME query evaluation";
  List.iter
    (fun (name, o) ->
      let verdict, t = time (fun () -> Classify.Decide.decide ~samples:5 o) in
      match verdict with
      | Classify.Decide.Ptime_evidence n ->
          Fmt.pr "%-10s PTIME (%d bouquets, %.1fs)@." name n t
      | Classify.Decide.Conp_hard w ->
          Fmt.pr "%-10s coNP-hard (witness of %d elements, %.1fs)@." name
            (Structure.Instance.domain_size w) t)
    [ ("O1", o1); ("O2", o2); ("O1+O2", o_union) ]

let thm3_table () =
  section "Theorem 3: the 2+2-SAT reduction";
  let witness =
    {
      Sat22.Reduction.base = Structure.Parse.instance_of_string "D(a)";
      q1 = Query.Parse.cq_of_string "q1(x) <- A(x)";
      a1 = e "a";
      q2 = Query.Parse.cq_of_string "q2(x) <- B(x)";
      a2 = e "a";
    }
  in
  let o_disj =
    Logic.Ontology.make
      [ forall_eq "x"
          (Logic.Formula.Implies
             ( atom "D" [ v "x" ],
               Logic.Formula.Or (atom "A" [ v "x" ], atom "B" [ v "x" ]) ))
      ]
  in
  let rng = Random.State.make [| 77 |] in
  let agree = ref 0 and total = 8 in
  for _ = 1 to total do
    let f = Sat22.Twotwosat.random ~rng ~nvars:2 ~nclauses:2 in
    let unsat, certain = Sat22.Reduction.unsat_iff_certain o_disj witness f in
    if Bool.equal unsat certain then incr agree
  done;
  Fmt.pr "random 2+2 formulas: unsat iff certain on %d/%d@." !agree total

let unravel_table () =
  section "Section 4: unravellings (Examples 5 and 6)";
  let tri =
    Structure.Parse.instance_of_string "R(a,b)\nR(b,c)\nR(c,a)"
  in
  List.iter
    (fun depth ->
      let u = Structure.Unravel.unravel ~depth tri in
      let du = Structure.Unravel.instance u in
      Fmt.pr "depth %d: unravelled triangle has %d facts, acyclic: %b@." depth
        (Structure.Instance.cardinal du)
        (Structure.Treedec.is_guarded_tree_decomposable du))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per experiment                        *)
(* ------------------------------------------------------------------ *)

let tests =
  let hand = hands 1 in
  let pointed = List.init 5 (fun f -> (thumb, [ e (Printf.sprintf "h0_f%d" f) ])) in
  let chain3 = chain 3 in
  let rng = Random.State.make [| 5 |] in
  let k2 = Csp.Precolor.closure (Csp.Template.k_colouring 2) in
  let o_k2 = Csp.Encode.ontology k2 in
  let g6 = random_graph ~rng ~n:6 ~p:0.35 in
  let g6l = Csp.Encode.lift_instance k2 g6 in
  let p = Tm.Tiling.trivial in
  let o_p = Dl.Translate.tbox (Tm.Gridenc.ontology_undecidability p) in
  let grid = Tm.Tiling.grid_instance (Option.get (Tm.Tiling.solve_fixed p 1 0)) in
  let qb1 = Query.Parse.cq_of_string "q(x) <- B1(x)" in
  let qb2 = Query.Parse.cq_of_string "q(x) <- B2(x)" in
  let corpus20 = lazy (Bioportal.Generate.corpus ~n:20 ()) in
  let w22 =
    {
      Sat22.Reduction.base = Structure.Parse.instance_of_string "D(a)";
      q1 = Query.Parse.cq_of_string "q1(x) <- A(x)";
      a1 = e "a";
      q2 = Query.Parse.cq_of_string "q2(x) <- B(x)";
      a2 = e "a";
    }
  in
  let o_disj =
    Logic.Ontology.make
      [ forall_eq "x"
          (Logic.Formula.Implies
             ( atom "D" [ v "x" ],
               Logic.Formula.Or (atom "A" [ v "x" ], atom "B" [ v "x" ]) ))
      ]
  in
  let f22 =
    let rng = Random.State.make [| 3 |] in
    Sat22.Twotwosat.random ~rng ~nvars:2 ~nclauses:2
  in
  [
    Test.make ~name:"fig1_landscape" (Staged.stage (fun () ->
        List.map (fun (_, ev, _) -> ev) Classify.Landscape.figure1));
    Test.make ~name:"bioportal_table" (Staged.stage (fun () ->
        Bioportal.Analyze.tabulate
          (List.map Bioportal.Analyze.analyze (Lazy.force corpus20))));
    Test.make ~name:"hand_finger" (Staged.stage (fun () ->
        Reasoner.Bounded.certain_disjunction ~max_extra:1 o_union hand pointed));
    Test.make ~name:"example1_limits" (Staged.stage (fun () ->
        Material.Materializability.materializable_on ~max_model_extra:1 o_mat_ptime
          (Structure.Parse.instance_of_string "D(c)")));
    Test.make ~name:"thm5_rewriting" (Staged.stage (fun () ->
        Rewriting.Typeprog.entails ~extra:1 o_horn qc chain3 [ e "n0" ]));
    Test.make ~name:"thm8_csp" (Staged.stage (fun () ->
        Reasoner.Bounded.is_consistent ~max_extra:1 o_k2 g6l));
    Test.make ~name:"thm10_tiling" (Staged.stage (fun () ->
        Reasoner.Bounded.certain_disjunction ~max_extra:0 o_p grid
          [ (qb1, [ e "g_0_0" ]); (qb2, [ e "g_0_0" ]) ]));
    Test.make ~name:"thm13_decide" (Staged.stage (fun () ->
        Classify.Decide.decide ~samples:0 ~max_outdegree:2 o2));
    Test.make ~name:"thm3_twotwosat" (Staged.stage (fun () ->
        Sat22.Reduction.unsat_iff_certain o_disj w22 f22));
    Test.make ~name:"unravel_examples" (Staged.stage (fun () ->
        Structure.Unravel.unravel ~depth:3
          (Structure.Parse.instance_of_string "R(a,b)\nR(b,c)\nR(c,a)")));
  ]

let run_benchmarks () =
  section "Bechamel micro-benchmarks (time per run)";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:(Some 10) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun (name, raw) ->
          let result = Analyze.one ols Instance.monotonic_clock raw in
          let estimate =
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
                Obs.Metrics.set (Obs.Metrics.global ())
                  ("bench." ^ name ^ ".ms_per_run")
                  (est /. 1e6);
                Fmt.str "%.3f ms/run" (est /. 1e6)
            | _ -> "n/a"
          in
          Fmt.pr "%-22s %s@." name estimate)
        (Hashtbl.fold
           (fun k v acc -> (k, v) :: acc)
           (Benchmark.all cfg Instance.[ monotonic_clock ] test)
           []))
    tests

(* Every metric the tables and micro-benchmarks recorded, as one flat
   JSON object keyed by metric name. *)
(* Machine context for the committed baseline: how many cores the run
   had and which job counts the parallel tables used, so a reviewer can
   judge the speedup/throughput numbers. *)
let meta_metrics () =
  let m = Obs.Metrics.global () in
  Obs.Metrics.set_count m "bench.meta.cores_used" (Parallel.Pool.default_jobs ());
  Obs.Metrics.set_count m "bench.meta.corpus_jobs_max" 4;
  Obs.Metrics.set_count m "bench.meta.serve_jobs" 4

let write_metrics path =
  let oc = open_out path in
  output_string oc (Obs.Metrics.to_json (Obs.Metrics.global ()));
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.metrics written to %s@." path

let () =
  Fmt.pr "Reproduction harness: Hernich, Lutz, Papacchini, Wolter — PODS'17@.";
  if Array.exists (String.equal "--smoke") Sys.argv then begin
    (* CI smoke mode: just the engine table (the regression tripwire for
       the grounder/solver handoff), written to a separate file so the
       committed full-run baseline is never clobbered. *)
    engine_table ();
    parallel_corpus_table ();
    eval_table ~sizes:[ 10_000 ] ();
    incremental_table ();
    meta_metrics ();
    Reasoner.Stats.publish ~prefix:"bench.total" (Reasoner.Stats.global ());
    write_metrics "BENCH_smoke.json"
  end
  else begin
    fig1_table ();
    bioportal_table ();
    hand_table ();
    example1_table ();
    engine_table ();
    parallel_corpus_table ();
    eval_table ();
    incremental_table ();
    serve_table ();
    telemetry_overhead_table ();
    chaos_table ();
    thm5_table ();
    thm8_table ();
    thm10_table ();
    thm13_table ();
    thm3_table ();
    unravel_table ();
    run_benchmarks ();
    meta_metrics ();
    Reasoner.Stats.publish ~prefix:"bench.total" (Reasoner.Stats.global ());
    write_metrics "BENCH_omq.json"
  end;
  Fmt.pr "@.done.@."
