(* Shared builders for the benchmark harness. *)

let v s = Logic.Term.Var s
let e s = Structure.Element.Const s

let forall_eq x body =
  Logic.Formula.Forall
    ([ x ], Logic.Formula.Implies (Logic.Formula.Eq (v x, v x), body))

let atom r ts = Logic.Formula.Atom (r, ts)

(* The Section 1 ontologies. *)
let o1 = Dl.Translate.tbox (Dl.Parser.parse_tbox "Hand << == 5 hasFinger")
let o2 =
  Dl.Translate.tbox (Dl.Parser.parse_tbox "Hand << exists hasFinger . Thumb")
let o_union = Logic.Ontology.union o1 o2

(* A hand instance with [n] hands of five named fingers each. *)
let hands n =
  Structure.Instance.of_list
    (List.concat
       (List.init n (fun h ->
            let hand = Printf.sprintf "h%d" h in
            ("Hand", [ e hand ])
            :: List.init 5 (fun f ->
                   ("hasFinger", [ e hand; e (Printf.sprintf "%s_f%d" hand f) ])))))

(* Example 1's ontologies. *)
let o_mat_ptime =
  Logic.Ontology.make
    [ Logic.Formula.Or
        ( Logic.Formula.Forall ([ "x" ], atom "A" [ v "x" ]),
          Logic.Formula.Forall ([ "x" ], atom "B" [ v "x" ]) )
    ]

let o_ucq_cq =
  Logic.Ontology.make
    [ Logic.Formula.Or
        ( Logic.Formula.Forall
            ([ "x" ], Logic.Formula.Or (atom "A" [ v "x" ], atom "B" [ v "x" ])),
          Logic.Formula.Exists ([ "x" ], atom "E" [ v "x" ]) )
    ]

(* The Horn ontology used for Theorem 5: A starts an R-chain demand, B
   propagates back to C. *)
let o_horn =
  Logic.Ontology.make
    [
      forall_eq "x"
        (Logic.Formula.Implies
           ( atom "A" [ v "x" ],
             Logic.Formula.Exists
               ([ "y" ], Logic.Formula.And (atom "R" [ v "x"; v "y" ], atom "B" [ v "y" ]))
           ));
      Logic.Formula.Forall
        ( [ "x"; "y" ],
          Logic.Formula.Implies
            ( atom "R" [ v "x"; v "y" ],
              Logic.Formula.Implies (atom "B" [ v "y" ], atom "C" [ v "x" ]) ) );
    ]

(* An R-chain with an A-seed. *)
let chain n =
  Structure.Instance.of_list
    (("A", [ e "n0" ])
    :: List.init n (fun i ->
           ("R", [ e (Printf.sprintf "n%d" i); e (Printf.sprintf "n%d" (i + 1)) ])))

(* Random undirected graphs. *)
let random_graph ~rng ~n ~p =
  let inst = ref Structure.Instance.empty in
  for i = 0 to n - 1 do
    inst :=
      Structure.Instance.add_element (e (Printf.sprintf "v%d" i)) !inst;
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then begin
        let a = e (Printf.sprintf "v%d" i) and b = e (Printf.sprintf "v%d" j) in
        inst :=
          Structure.Instance.add_fact
            (Structure.Instance.fact "E" [ a; b ])
            (Structure.Instance.add_fact (Structure.Instance.fact "E" [ b; a ]) !inst)
      end
    done
  done;
  !inst

let qc = Query.Parse.cq_of_string "q(x) <- C(x)"
let thumb = Query.Parse.cq_of_string "q(x) <- Thumb(x)"

let time f = Obs.Clock.timed f
