(** Long-lived worker domains with per-worker mailboxes — the serving
    counterpart of {!Pool}.

    {!Pool} is batch-shaped: one submission array, an atomic work-stealing
    cursor, a join barrier. A server needs the opposite discipline:
    requests arrive one at a time, each must run on a {e specific} worker
    (sticky routing — an OMQ session's engines, grounding memo and other
    {!Domain.DLS} state live on the domain that created them and are
    neither shared nor movable), and nobody ever joins a batch. A
    service therefore keeps one FIFO mailbox per worker domain and a
    shared completion queue the owner drains at its leisure.

    Ownership: [submit], [drain], [busy_since], [replace] and [shutdown]
    are called from the one owning domain (the event loop); jobs run on
    their worker and their results cross back through the completion
    queue, synchronised by the queue's mutex. The [wakeup] callback runs
    {e on the worker} right after a completion is enqueued — it must be
    async-signal-ish cheap and thread-safe (the daemon writes one byte
    to a self-pipe to nudge its [select]).

    Unlike {!Pool}, the owner is not a worker: all [jobs] workers are
    spawned domains, and the owner's own domain-local state is never
    touched by jobs. *)

type 'r t

(** [create ~jobs ~wakeup ()] spawns [jobs] worker domains (clamped to
    at least 1), each with an empty mailbox. [clock] (default: constant
    [0.]) timestamps job starts for {!busy_since}; pass a monotone
    clock such as [Obs.Clock.now] to make deadline supervision
    meaningful — this library deliberately takes no clock dependency of
    its own. *)
val create :
  jobs:int -> wakeup:(unit -> unit) -> ?clock:(unit -> float) -> unit -> 'r t

val jobs : 'r t -> int

(** [submit t ~worker job] appends [job] to worker [worker mod jobs]'s
    mailbox. Jobs on one worker run in submission order (per-session
    FIFO is exactly sticky routing plus this). The job's result is
    enqueued for {!drain}; a job that raises is dropped from the
    completion stream and its exception is re-raised by {!shutdown} —
    wrap jobs that may fail so they return a value instead.
    @raise Invalid_argument after {!shutdown}. *)
val submit : 'r t -> worker:int -> (unit -> 'r) -> unit

(** Completed results, in completion order (across workers: the order
    they finished, not the order submitted). Never blocks. *)
val drain : 'r t -> 'r list

(** Jobs submitted but not yet drained (queued + running + completed
    but undrained). [0] means the service is idle and {!drain} would
    return []. Jobs discarded by {!replace} leave this count the moment
    they are discarded. *)
val in_flight : 'r t -> int

(** {1 Supervision}

    A worker domain can wedge (an engine bug spinning forever, a job
    blocked on something that never comes). OCaml domains cannot be
    cancelled, so recovery means {e abandoning} the domain, not killing
    it. *)

(** [busy_since t ~worker] is the [clock] timestamp at which the
    worker's current job started, or [None] when it is idle. The owner
    compares this against a deadline to detect a wedged worker. *)
val busy_since : 'r t -> worker:int -> float option

(** [replace t ~worker] quarantines the worker and installs a fresh
    domain at the same index. The old mailbox is marked abandoned: its
    queued jobs are discarded, and the result of a job it is still
    running — should the domain ever finish — is silently dropped, never
    enqueued or double-counted. Returns how many jobs were lost
    (discarded from the queue, plus 1 if one was running); {!in_flight}
    is decremented by the same amount, so the owner must fail those
    requests itself (it knows which ones it routed here). The abandoned
    domain is never joined — a truly wedged one is leaked by design.
    @raise Invalid_argument after {!shutdown}. *)
val replace : 'r t -> worker:int -> int

(** Number of {!replace} calls so far. *)
val replaced : 'r t -> int

(** Stop accepting work, let every queued job finish, join the workers,
    then re-raise the first job exception if any job raised. Remaining
    completions are still available via {!drain}. Abandoned domains are
    not joined. Idempotent. *)
val shutdown : 'r t -> unit
