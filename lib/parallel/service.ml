(* Per-worker mailbox domains with a shared completion queue.

   Memory model: a mailbox (queue, stop/abandoned flags, busy_since) is
   only touched under its worker's mutex; the completion queue and the
   crash list only under [cmutex]. [in_flight] is an atomic incremented
   at submit and decremented after the completion (or crash) is recorded
   — or, for jobs lost to [replace], decremented by [replace] itself —
   so the owner observing [in_flight = 0] after a drain knows no result
   is still in transit. The wakeup callback fires after both writes — an
   owner woken by it sees the completion.

   Supervision: a worker stamps [busy_since] (with the owner-supplied
   [clock]) when it pops a job and clears it when the job ends, both
   under its mailbox mutex, so the owner can detect a wedged or dead
   worker by comparing [busy_since] against a deadline. [replace]
   abandons such a worker: its mailbox is marked abandoned (a late
   result from the old domain is dropped, not double-counted), its
   queued jobs are discarded and accounted out of [in_flight], and a
   fresh domain with a fresh mailbox takes over the index. The old
   domain cannot be killed — OCaml domains are not cancellable — so a
   truly wedged one is leaked (never joined); an idle or eventually
   finishing one exits its loop on the abandoned flag. *)

type 'r mailbox = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> 'r) Queue.t;
  mutable stop : bool;
  mutable abandoned : bool;
  mutable busy_since : float;  (** [clock ()] at job start; negative when idle *)
}

type 'r t = {
  njobs : int;
  boxes : 'r mailbox array;
  cmutex : Mutex.t;
  completions : 'r Queue.t;
  crashes : (exn * Printexc.raw_backtrace) Queue.t;
  in_flight : int Atomic.t;
  wakeup : unit -> unit;
  clock : unit -> float;
  mutable workers : unit Domain.t array;
  mutable abandoned_workers : unit Domain.t list;
  mutable replaced : int;
  mutable stopped : bool;
}

let jobs t = t.njobs
let replaced t = t.replaced

let worker_loop t box =
  let rec loop () =
    Mutex.lock box.mutex;
    while Queue.is_empty box.queue && not (box.stop || box.abandoned) do
      Condition.wait box.cond box.mutex
    done;
    if box.abandoned || Queue.is_empty box.queue then begin
      (* abandoned, or stop with a drained mailbox *)
      Mutex.unlock box.mutex
    end
    else begin
      let job = Queue.pop box.queue in
      box.busy_since <- t.clock ();
      Mutex.unlock box.mutex;
      let outcome =
        match job () with
        | r -> Ok r
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      (* Clearing busy and checking abandonment must be one critical
         section: [replace] decides under the same mutex whether the
         running job counts as lost, so exactly one side accounts it. *)
      Mutex.lock box.mutex;
      box.busy_since <- -1.0;
      let dropped = box.abandoned in
      Mutex.unlock box.mutex;
      if dropped then ()
      else begin
        (match outcome with
        | Ok r ->
            Mutex.lock t.cmutex;
            Queue.push r t.completions;
            Mutex.unlock t.cmutex
        | Error (e, bt) ->
            Mutex.lock t.cmutex;
            Queue.push (e, bt) t.crashes;
            Mutex.unlock t.cmutex);
        Atomic.decr t.in_flight;
        t.wakeup ();
        loop ()
      end
    end
  in
  loop ()

let fresh_box () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    stop = false;
    abandoned = false;
    busy_since = -1.0;
  }

let create ~jobs ~wakeup ?(clock = fun () -> 0.0) () =
  let njobs = max jobs 1 in
  let boxes = Array.init njobs (fun _ -> fresh_box ()) in
  let t =
    {
      njobs;
      boxes;
      cmutex = Mutex.create ();
      completions = Queue.create ();
      crashes = Queue.create ();
      in_flight = Atomic.make 0;
      wakeup;
      clock;
      workers = [||];
      abandoned_workers = [];
      replaced = 0;
      stopped = false;
    }
  in
  t.workers <-
    Array.map (fun box -> Domain.spawn (fun () -> worker_loop t box)) boxes;
  t

let norm t worker = ((worker mod t.njobs) + t.njobs) mod t.njobs

let submit t ~worker job =
  if t.stopped then invalid_arg "Parallel.Service: service is shut down";
  let box = t.boxes.(norm t worker) in
  Atomic.incr t.in_flight;
  Mutex.lock box.mutex;
  Queue.push job box.queue;
  Condition.signal box.cond;
  Mutex.unlock box.mutex

let busy_since t ~worker =
  let box = t.boxes.(norm t worker) in
  Mutex.lock box.mutex;
  let v = box.busy_since in
  Mutex.unlock box.mutex;
  if v >= 0.0 then Some v else None

let replace t ~worker =
  if t.stopped then invalid_arg "Parallel.Service: service is shut down";
  let w = norm t worker in
  let old = t.boxes.(w) in
  Mutex.lock old.mutex;
  old.abandoned <- true;
  let running = old.busy_since >= 0.0 in
  let queued = Queue.length old.queue in
  Queue.clear old.queue;
  Condition.broadcast old.cond;
  Mutex.unlock old.mutex;
  let lost = queued + if running then 1 else 0 in
  if lost > 0 then ignore (Atomic.fetch_and_add t.in_flight (-lost));
  let box = fresh_box () in
  t.boxes.(w) <- box;
  t.abandoned_workers <- t.workers.(w) :: t.abandoned_workers;
  t.workers.(w) <- Domain.spawn (fun () -> worker_loop t box);
  t.replaced <- t.replaced + 1;
  lost

let drain t =
  Mutex.lock t.cmutex;
  let rec go acc =
    if Queue.is_empty t.completions then List.rev acc
    else go (Queue.pop t.completions :: acc)
  in
  let rs = go [] in
  Mutex.unlock t.cmutex;
  rs

let in_flight t = Atomic.get t.in_flight

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun box ->
        Mutex.lock box.mutex;
        box.stop <- true;
        Condition.broadcast box.cond;
        Mutex.unlock box.mutex)
      t.boxes;
    Array.iter Domain.join t.workers;
    (* Abandoned domains are not joined: a wedged one would block
       forever. Finished ones are reclaimed at process exit. *)
    t.workers <- [||];
    Mutex.lock t.cmutex;
    let crash = if Queue.is_empty t.crashes then None else Some (Queue.pop t.crashes) in
    Mutex.unlock t.cmutex;
    match crash with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
