(* Per-worker mailbox domains with a shared completion queue.

   Memory model: a mailbox (queue, stop flag) is only touched under its
   worker's mutex; the completion queue and the crash list only under
   [cmutex]. [in_flight] is an atomic incremented at submit and
   decremented after the completion (or crash) is recorded, so the owner
   observing [in_flight = 0] after a drain knows no result is still in
   transit. The wakeup callback fires after both writes — an owner woken
   by it sees the completion. *)

type 'r mailbox = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> 'r) Queue.t;
  mutable stop : bool;
}

type 'r t = {
  njobs : int;
  boxes : 'r mailbox array;
  cmutex : Mutex.t;
  completions : 'r Queue.t;
  crashes : (exn * Printexc.raw_backtrace) Queue.t;
  in_flight : int Atomic.t;
  wakeup : unit -> unit;
  mutable workers : unit Domain.t array;
  mutable stopped : bool;
}

let jobs t = t.njobs

let worker_loop t box =
  let rec loop () =
    Mutex.lock box.mutex;
    while Queue.is_empty box.queue && not box.stop do
      Condition.wait box.cond box.mutex
    done;
    if Queue.is_empty box.queue then begin
      (* stop, and the mailbox is drained *)
      Mutex.unlock box.mutex
    end
    else begin
      let job = Queue.pop box.queue in
      Mutex.unlock box.mutex;
      (match job () with
      | r ->
          Mutex.lock t.cmutex;
          Queue.push r t.completions;
          Mutex.unlock t.cmutex
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock t.cmutex;
          Queue.push (e, bt) t.crashes;
          Mutex.unlock t.cmutex);
      Atomic.decr t.in_flight;
      t.wakeup ();
      loop ()
    end
  in
  loop ()

let create ~jobs ~wakeup () =
  let njobs = max jobs 1 in
  let boxes =
    Array.init njobs (fun _ ->
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          queue = Queue.create ();
          stop = false;
        })
  in
  let t =
    {
      njobs;
      boxes;
      cmutex = Mutex.create ();
      completions = Queue.create ();
      crashes = Queue.create ();
      in_flight = Atomic.make 0;
      wakeup;
      workers = [||];
      stopped = false;
    }
  in
  t.workers <-
    Array.map (fun box -> Domain.spawn (fun () -> worker_loop t box)) boxes;
  t

let submit t ~worker job =
  if t.stopped then invalid_arg "Parallel.Service: service is shut down";
  let box = t.boxes.(((worker mod t.njobs) + t.njobs) mod t.njobs) in
  Atomic.incr t.in_flight;
  Mutex.lock box.mutex;
  Queue.push job box.queue;
  Condition.signal box.cond;
  Mutex.unlock box.mutex

let drain t =
  Mutex.lock t.cmutex;
  let rec go acc =
    if Queue.is_empty t.completions then List.rev acc
    else go (Queue.pop t.completions :: acc)
  in
  let rs = go [] in
  Mutex.unlock t.cmutex;
  rs

let in_flight t = Atomic.get t.in_flight

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun box ->
        Mutex.lock box.mutex;
        box.stop <- true;
        Condition.broadcast box.cond;
        Mutex.unlock box.mutex)
      t.boxes;
    Array.iter Domain.join t.workers;
    t.workers <- [||];
    Mutex.lock t.cmutex;
    let crash = if Queue.is_empty t.crashes then None else Some (Queue.pop t.crashes) in
    Mutex.unlock t.cmutex;
    match crash with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
