(** A fixed-size pool of OCaml 5 domains with deterministic,
    submission-order result assembly.

    The pool runs one batch at a time. A batch is an array of
    independent items; workers claim items by atomically advancing a
    shared cursor over the submission array (work stealing at item
    granularity — a fast worker steals whatever the slow ones have not
    claimed yet), and every item writes its result into the slot of its
    submission index. Scheduling order is therefore free to vary run to
    run, but {!map} always returns results in submission order and
    {!map_reduce} always folds in submission order — so a pure per-item
    function gives bit-identical output at every [jobs] count. This is
    the shared-nothing discipline of parallel SAT portfolios: corpus
    items are independent, so fan-out is sound and determinism is a
    property of the assembly, not of the schedule.

    Worker-local state: domains carry their own {!Domain.DLS} slots, so
    every domain-local structure of the reasoning stack (the engine
    session registry, the grounding circuit memo, [Stats.global ()],
    the ambient trace collector) is automatically per-worker. Workers
    are reused across batches of the same pool, so that state stays
    warm from batch to batch.

    Exceptions: an item that raises does not poison its siblings — the
    remaining items still run. After the batch, the exception of the
    lowest-indexed failing item is re-raised in the caller
    (deterministically, regardless of schedule).

    The pool itself is not thread-safe: batches are submitted from the
    owning (creating) domain, one at a time. Tasks must not themselves
    submit to the same pool. *)

type t

(** [create ~jobs ()] spawns [jobs - 1] worker domains (the submitting
    caller is worker 0, so [jobs = 1] spawns nothing and runs batches
    inline — the sequential baseline is literally sequential code).
    [jobs] is clamped to at least 1. *)
val create : jobs:int -> unit -> t

(** The worker count this pool was created with (after clamping). *)
val jobs : t -> int

(** A sensible default job count for this machine
    ({!Domain.recommended_domain_count}). *)
val default_jobs : unit -> int

(** [map pool f items] runs [f] on every item and returns the results
    in submission order. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [mapw pool f items] is {!map} with the executing worker's index
    ([0 .. jobs-1]) passed to [f] — for tagging results (e.g. trace
    spans) with the domain that produced them. The index says only
    which worker ran the item; the result array order is still the
    submission order. *)
val mapw : t -> (worker:int -> 'a -> 'b) -> 'a array -> 'b array

(** [map_reduce pool ~map ~reduce ~init items] maps every item and
    folds the results in submission order:
    [reduce (.. (reduce init r0) ..) rn]. Deterministic for any [jobs]
    count, including non-commutative [reduce]. *)
val map_reduce :
  t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c

(** Join and discard the worker domains. Further batch submissions
    raise [Invalid_argument]. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool, shutting it down on
    both exits. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
