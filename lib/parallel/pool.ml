(* A fixed-size domain pool with deterministic result assembly.

   Work distribution is an atomic cursor over the submission array:
   every worker (the submitting caller included) claims the next
   unclaimed index with fetch-and-add and runs that item. This is work
   stealing at item granularity — there is no per-worker queue to
   balance because the shared cursor IS the queue, and a fast worker
   simply claims what slower ones have not. What makes the pool
   deterministic is that scheduling never touches assembly: item [i]'s
   result lands in slot [i], and the caller reads the slots in
   submission order after the join barrier.

   The join uses the standard message-passing idiom of the OCaml memory
   model: a worker's (plain) write of slot [i] happens-before its
   fetch-and-add on [completed], and the submitter reads the slots only
   after observing [completed = n] — so the plain slot reads are
   race-free.

   Workers are spawned once at [create] and block on a condition
   variable between batches; batches are numbered so a worker never
   re-enters a batch it has already drained. Worker domains inherit
   nothing: every Domain.DLS-backed structure of the reasoning stack
   (session registry, grounding memo, Stats.global (), ambient trace
   collector) starts fresh per domain and stays warm across batches. *)

type batch = {
  gen : int;  (* batch number, > 0 *)
  n : int;
  next : int Atomic.t;  (* next unclaimed item index *)
  completed : int Atomic.t;
  run : worker:int -> int -> unit;  (* must not raise; see [mapw] *)
}

type t = {
  njobs : int;
  mutex : Mutex.t;
  work_cv : Condition.t;  (* workers: a new batch arrived / shutdown *)
  done_cv : Condition.t;  (* submitter: the batch completed *)
  mutable batch : batch option;
  mutable generation : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.njobs
let default_jobs () = Domain.recommended_domain_count ()

(* Claim-and-run until the cursor passes the end; whoever completes the
   last item wakes the submitter. The broadcast is taken under the
   mutex so it cannot race ahead of the submitter's predicate check. *)
let drain t b ~worker =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add b.next 1 in
    if i >= b.n then continue_ := false
    else begin
      (try b.run ~worker i with _ -> ());
      if Atomic.fetch_and_add b.completed 1 = b.n - 1 then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.mutex
      end
    end
  done

let worker_loop t ~worker =
  let rec loop last_gen =
    Mutex.lock t.mutex;
    let rec await () =
      if t.stopped then begin
        Mutex.unlock t.mutex;
        None
      end
      else
        match t.batch with
        | Some b when b.gen > last_gen ->
            Mutex.unlock t.mutex;
            Some b
        | _ ->
            Condition.wait t.work_cv t.mutex;
            await ()
    in
    match await () with
    | None -> ()
    | Some b ->
        drain t b ~worker;
        loop b.gen
  in
  loop 0

let create ~jobs () =
  let njobs = max jobs 1 in
  let t =
    {
      njobs;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      batch = None;
      generation = 0;
      stopped = false;
      workers = [||];
    }
  in
  (* The caller is worker 0; spawn the rest. *)
  t.workers <-
    Array.init (njobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~worker:(i + 1)));
  t

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Submit one batch and block until every item completed. With one job
   (or a sub-worker batch) this is a plain sequential loop — the
   [--jobs 1] baseline runs no pool machinery at all. *)
let run_batch t ~n run =
  if t.stopped then invalid_arg "Parallel.Pool: pool is shut down";
  if n > 0 then
    if t.njobs = 1 then
      for i = 0 to n - 1 do
        run ~worker:0 i
      done
    else begin
      let b =
        {
          gen = t.generation + 1;
          n;
          next = Atomic.make 0;
          completed = Atomic.make 0;
          run;
        }
      in
      Mutex.lock t.mutex;
      t.generation <- b.gen;
      t.batch <- Some b;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.mutex;
      drain t b ~worker:0;
      Mutex.lock t.mutex;
      while Atomic.get b.completed < n do
        Condition.wait t.done_cv t.mutex
      done;
      t.batch <- None;
      Mutex.unlock t.mutex
    end

let mapw t f items =
  let n = Array.length items in
  let results = Array.make n None in
  run_batch t ~n (fun ~worker i ->
      let r =
        try Ok (f ~worker items.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r);
  (* Assembly in submission order; the lowest-indexed failure re-raises
     first, independent of which worker hit it or when. *)
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false (* run_batch completed every item *))
    results

let map t f items = mapw t (fun ~worker:_ x -> f x) items

let map_reduce t ~map:f ~reduce ~init items =
  Array.fold_left reduce init (map t f items)
