(** A CDCL SAT solver (two-watched literals, 1-UIP learning, VSIDS,
    restarts) used by the bounded model finder and the incremental
    engine. Literals are non-zero integers ±v for 1-based variables.

    The solver is persistent: {!make} creates one that accepts new
    variables and clauses between calls via {!ensure_nvars} and
    {!assert_clause}, keeps its learned clauses, and solves under
    assumption literals with {!solve_assuming}. *)

type result =
  | Sat of bool array  (** index v-1 holds the value of variable v *)
  | Unsat

(** A persistent incremental solver. *)
type t

val make : nvars:int -> t

(** Admit variables 1..n (idempotent, may only grow). *)
val ensure_nvars : t -> int -> unit

(** Add a clause at level 0 (cancelling any open decision levels).
    Registers unseen variables automatically. *)
val assert_clause : t -> int list -> unit

(** Seed branching activity from a clause (Jeroslow-Wang-ish weights);
    call before {!assert_clause} when building a solver incrementally. *)
val seed_clause : t -> int list -> unit

(** Solve the accumulated clauses under temporary assumption literals.
    Learned clauses persist; assumptions do not. With a [budget], the
    CDCL loop checkpoints between propagation/decision rounds (debiting
    fuel by propagations + conflicts) and may raise {!Budget.Exhausted};
    the solver remains consistent and reusable after such a trip. *)
val solve_assuming : ?budget:Budget.t -> t -> int list -> result

(** The solver derived a contradiction at level 0: unsatisfiable no
    matter the assumptions, permanently. *)
val is_broken : t -> bool

(** Cumulative (decisions, propagations, conflicts). *)
val counters : t -> int * int * int

(** One-shot solve. May raise {!Budget.Exhausted} when budgeted. *)
val solve : ?budget:Budget.t -> nvars:int -> int list list -> result

(** Truth of a literal in a model array. *)
val lit_true : bool array -> int -> bool

(** Enumerate models projected onto the [project]ed literals, blocking
    each projection; stops at [limit]. Incremental underneath: one
    persistent solver, learned clauses kept across models. *)
val enumerate :
  ?budget:Budget.t ->
  nvars:int ->
  project:int list ->
  ?limit:int ->
  int list list ->
  bool array list
