(** A CDCL SAT solver (two-watched literals, 1-UIP learning, VSIDS,
    restarts) used by the bounded model finder and the incremental
    engine. Literals are non-zero integers ±v for 1-based variables.

    The solver is persistent: {!make} creates one that accepts new
    variables and clauses between calls via {!ensure_nvars} and
    {!assert_clause}, keeps its learned clauses, and solves under
    assumption literals with {!solve_assuming}. *)

type result =
  | Sat of bool array  (** index v-1 holds the value of variable v *)
  | Unsat

(** A persistent incremental solver. *)
type t

val make : nvars:int -> t

(** Admit variables 1..n (idempotent, may only grow). *)
val ensure_nvars : t -> int -> unit

(** Add a clause at level 0 (cancelling any open decision levels).
    Duplicate literals are removed and tautologies dropped by one
    sort-and-scan pass. Registers unseen variables automatically. *)
val assert_clause : t -> int list -> unit

(** [assert_clause_slice s buf off len] asserts the clause stored as the
    literal slice [buf.[off..off+len)] — the grounder's flat clause
    arena feeds this directly, with no per-clause list. [buf] is not
    modified. *)
val assert_clause_slice : t -> int array -> int -> int -> unit

(** Seed branching activity from a clause (Jeroslow-Wang-ish weights);
    call before {!assert_clause} when building a solver incrementally. *)
val seed_clause : t -> int list -> unit

(** {!seed_clause} for an arena slice. *)
val seed_clause_slice : t -> int array -> int -> int -> unit

(** Solve the accumulated clauses under temporary assumption literals.
    Learned clauses persist; assumptions do not. With a [budget], the
    CDCL loop checkpoints between propagation/decision rounds (debiting
    fuel by propagations + conflicts) and may raise {!Budget.Exhausted};
    the solver remains consistent and reusable after such a trip. *)
val solve_assuming : ?budget:Budget.t -> t -> int list -> result

(** {!solve_assuming} without materializing the model — for callers
    that only need the verdict (the engine's per-tuple certainty path),
    saving an O(nvars) array per call. *)
val sat_assuming : ?budget:Budget.t -> t -> int list -> bool

(** The solver derived a contradiction at level 0: unsatisfiable no
    matter the assumptions, permanently. *)
val is_broken : t -> bool

(** Cumulative (decisions, propagations, conflicts). *)
val counters : t -> int * int * int

(** One-shot solve. May raise {!Budget.Exhausted} when budgeted. *)
val solve : ?budget:Budget.t -> nvars:int -> int list list -> result

(** One-shot solve over a clause iterator: [iter f] must call
    [f buf off len] once per clause slice and be re-runnable (it is
    iterated twice: once to seed activities/phases, once to assert). *)
val solve_iter :
  ?budget:Budget.t -> nvars:int -> ((int array -> int -> int -> unit) -> unit) -> result

(** Truth of a literal in a model array. *)
val lit_true : bool array -> int -> bool

(** Enumerate models projected onto the [project]ed literals, blocking
    each projection; stops at [limit]. Incremental underneath: one
    persistent solver, learned clauses kept across models. *)
val enumerate :
  ?budget:Budget.t ->
  nvars:int ->
  project:int list ->
  ?limit:int ->
  int list list ->
  bool array list

(** {!enumerate} over a clause iterator (see {!solve_iter}; here the
    iterator runs once). *)
val enumerate_iter :
  ?budget:Budget.t ->
  nvars:int ->
  project:int list ->
  ?limit:int ->
  ((int array -> int -> int -> unit) -> unit) ->
  bool array list
