(** The shared grounding-problem builder used by both {!Bounded} and
    {!Engine}: models of (O, D) are sought over dom(D) plus [extra]
    fresh labelled nulls, with the ontology's, the instance's and any
    extra signature's relations registered. *)

(** dom(D) plus [extra] fresh nulls (never empty). *)
val domain : extra:int -> Structure.Instance.t -> Structure.Element.t list

(** The joint signature of the ontology, the instance and
    [extra_signature]. *)
val signature :
  ?extra_signature:Logic.Signature.t ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Logic.Signature.t

(** [build ?budget ?extra_signature ~extra o d] grounds O and D over the
    bounded domain: instance facts asserted, all ontology sentences
    asserted. With [~assert_facts:false] the instance contributes only
    its domain and signature — the caller assumes its facts as solver
    literals instead (dynamic engines). May raise {!Budget.Exhausted}
    when budgeted. *)
val build :
  ?budget:Budget.t ->
  ?extra_signature:Logic.Signature.t ->
  ?assert_facts:bool ->
  extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Ground.t
