module SMap = Logic.Names.SMap
module EMap = Structure.Element.Map

(* The restricted chase for existential rules (TGDs) and equality
   generating dependencies (EGDs). Complete for certain answers w.r.t.
   Horn ontologies: the chase result is a universal model. *)

type rule = {
  name : string;
  body : Query.Cq.atom list;
  head : Query.Cq.atom list;  (** head-only variables are existential *)
}

type egd = {
  ename : string;
  ebody : Query.Cq.atom list;
  left : string;
  right : string;
}

let rule ?(name = "r") ~body ~head () = { name; body; head }
let egd ?(name = "e") ~body ~left ~right () = { ename = name; ebody = body; left; right }

let atom_vars atoms =
  List.fold_left
    (fun acc (_, ts) -> Logic.Names.SSet.union acc (Logic.Term.vars ts))
    Logic.Names.SSet.empty atoms

let body_query atoms =
  Query.Cq.make ~name:"body" ~answer:[] atoms

(* All homomorphisms from the body into [inst] (constants denote
   themselves), as variable bindings in a canonical sorted order — rule
   application assigns fresh nulls in binding order, so the fixed order
   keeps chase results identical whichever evaluation pipeline ran. *)
let body_matches atoms inst =
  let vars = atom_vars atoms in
  let raw =
    if Structure.Eval.planner_enabled () then begin
      let _, var_ix =
        Logic.Names.SSet.fold
          (fun v (i, m) -> (i + 1, SMap.add v i m))
          vars (0, SMap.empty)
      in
      let eatoms =
        List.map
          (fun (r, ts) ->
            Structure.Eval.atom r
              (List.map
                 (function
                   | Logic.Term.Var v ->
                       Structure.Eval.Var (SMap.find v var_ix)
                   | Logic.Term.Const c ->
                       Structure.Eval.Const (Structure.Element.Const c))
                 ts))
          atoms
      in
      let idx = Structure.Relindex.of_instance inst in
      let plan = Structure.Eval.make_plan idx eatoms in
      Structure.Eval.fold idx plan ~bindings:[]
        (fun sol acc -> (false, SMap.map (fun i -> sol.(i)) var_ix :: acc))
        []
    end
    else
      let q = body_query atoms in
      let db = Query.Cq.canonical_db q in
      Structure.Homomorphism.fold
        ~fixed:(Query.Cq.constant_fixing q)
        ~source:db ~target:inst
        (fun m acc ->
          let bind =
            Logic.Names.SSet.fold
              (fun v b -> SMap.add v (EMap.find (Query.Cq.var_element v) m) b)
              vars SMap.empty
          in
          (false, bind :: acc))
        []
  in
  List.sort_uniq (SMap.compare Structure.Element.compare) raw

let instantiate_atom bind (r, ts) =
  Structure.Instance.fact r
    (List.map
       (fun t ->
         match t with
         | Logic.Term.Const c -> Structure.Element.Const c
         | Logic.Term.Var v -> SMap.find v bind)
       ts)

(* Does the binding extend to the head inside [inst]? (restricted chase) *)
let head_satisfied rule bind inst =
  let head_vars = atom_vars rule.head in
  let frontier = atom_vars rule.body in
  let existential =
    Logic.Names.SSet.diff head_vars frontier |> Logic.Names.SSet.elements
  in
  let q =
    Query.Cq.make ~name:"head"
      ~answer:
        (Logic.Names.SSet.elements (Logic.Names.SSet.inter head_vars frontier))
      rule.head
  in
  ignore existential;
  let tuple = List.map (fun v -> SMap.find v bind) q.Query.Cq.answer in
  Query.Cq.holds inst q tuple

exception Egd_failure of string

type result = {
  instance : Structure.Instance.t;
  saturated : bool;  (** fixpoint reached within the round budget *)
}

let apply_rule ?(budget = Budget.unlimited) inst rule =
  let changed = ref false in
  let out = ref inst in
  List.iter
    (fun bind ->
      (* one checkpoint per trigger: between triggers the chased
         instance is a sound (if unsaturated) prefix *)
      Budget.checkpoint budget;
      if not (head_satisfied rule bind !out) then begin
        (* Extend the binding with fresh nulls for existential variables. *)
        let head_vars = atom_vars rule.head in
        let frontier = atom_vars rule.body in
        let existential =
          Logic.Names.SSet.elements (Logic.Names.SSet.diff head_vars frontier)
        in
        let nulls =
          Structure.Instance.fresh_nulls (List.length existential) !out
        in
        let bind =
          List.fold_left2
            (fun b v n -> SMap.add v n b)
            bind existential nulls
        in
        List.iter
          (fun atom ->
            out := Structure.Instance.add_fact (instantiate_atom bind atom) !out)
          rule.head;
        changed := true
      end)
    (body_matches rule.body inst);
  (!out, !changed)

let apply_egd ?(budget = Budget.unlimited) inst e =
  let changed = ref false in
  let out = ref inst in
  List.iter
    (fun bind ->
      Budget.checkpoint budget;
      let a = SMap.find e.left bind and b = SMap.find e.right bind in
      if not (Structure.Element.equal a b) then
        match (a, b) with
        | Structure.Element.Const _, Structure.Element.Const _ ->
            raise
              (Egd_failure
                 (Fmt.str "EGD %s equates distinct constants %a and %a"
                    e.ename Structure.Element.pp a Structure.Element.pp b))
        | Structure.Element.Null _, _ ->
            out :=
              Structure.Instance.map_elements
                (fun x -> if Structure.Element.equal x a then b else x)
                !out;
            changed := true
        | _, Structure.Element.Null _ ->
            out :=
              Structure.Instance.map_elements
                (fun x -> if Structure.Element.equal x b then a else x)
                !out;
            changed := true)
    (body_matches e.ebody inst);
  (!out, !changed)

(* Run the restricted chase for at most [max_rounds] rounds. Raises
   [Egd_failure] when an EGD equates distinct constants (inconsistent)
   and [Budget.Exhausted] on a budget trip. *)
let run ?(budget = Budget.unlimited) ?(max_rounds = 50) ?(egds = []) rules inst
    =
  Obs.Trace.with_span ~attrs:[ ("rules", Obs.Trace.Int (List.length rules)) ]
    "chase.run"
  @@ fun () ->
  let finish round res =
    if Obs.Trace.enabled () then begin
      Obs.Trace.add_attr "rounds" (Obs.Trace.Int round);
      Obs.Trace.add_attr "saturated" (Obs.Trace.Bool res.saturated)
    end;
    res
  in
  let rec go inst round =
    if round >= max_rounds then
      finish round { instance = inst; saturated = false }
    else begin
      let inst', changed =
        List.fold_left
          (fun (i, ch) r ->
            let i', ch' = apply_rule ~budget i r in
            (i', ch || ch'))
          (inst, false) rules
      in
      let inst'', changed' =
        List.fold_left
          (fun (i, ch) e ->
            let i', ch' = apply_egd ~budget i e in
            (i', ch || ch'))
          (inst', changed) egds
      in
      if Obs.Trace.enabled () then
        Obs.Trace.event
          ~attrs:
            [
              ("round", Obs.Trace.Int round);
              ( "facts",
                Obs.Trace.Int (List.length (Structure.Instance.facts inst'')) );
            ]
          "chase.round";
      if changed' then go inst'' (round + 1)
      else finish (round + 1) { instance = inst''; saturated = true }
    end
  in
  go inst 0

(* Typed form: on a trip, the partial payload is the chase state after
   the last fully completed round — every fact in it is entailed, so it
   is a sound under-approximation of the universal model. *)
let try_run budget ?(max_rounds = 50) ?(egds = []) rules inst =
  let last = ref { instance = inst; saturated = false } in
  Budget.protect budget
    ~partial:(fun () -> !last)
    (fun () ->
      Obs.Trace.with_span
        ~attrs:[ ("rules", Obs.Trace.Int (List.length rules)) ]
        "chase.run"
      @@ fun () ->
      let rec go inst round =
        if round >= max_rounds then { instance = inst; saturated = false }
        else begin
          let inst', changed =
            List.fold_left
              (fun (i, ch) r ->
                let i', ch' = apply_rule ~budget i r in
                (i', ch || ch'))
              (inst, false) rules
          in
          let inst'', changed' =
            List.fold_left
              (fun (i, ch) e ->
                let i', ch' = apply_egd ~budget i e in
                (i', ch || ch'))
              (inst', changed) egds
          in
          last := { instance = inst''; saturated = not changed' };
          Obs.Trace.event
            ~attrs:[ ("round", Obs.Trace.Int round) ]
            "chase.round";
          if changed' then go inst'' (round + 1)
          else { instance = inst''; saturated = true }
        end
      in
      go inst 0)

(* Certain answers over the chase result: for Horn rule sets the chase
   is a universal model, so CQ answers over it (restricted to tuples of
   original constants) are exactly the certain answers. *)
let certain_cq ?budget ?max_rounds ?egds rules inst q tuple =
  match run ?budget ?max_rounds ?egds rules inst with
  | { instance = chased; _ } -> Query.Cq.holds chased q tuple
  | exception Egd_failure _ -> true
