(** Grounding of FO(=, counting) sentences over a fixed finite domain
    into propositional clauses (one SAT variable per possible fact,
    Tseitin auxiliaries for structure). Together with {!Dpll} this gives
    the bounded model finder {!Bounded}.

    The hot path is integer-only: domain elements are interned to dense
    positions, fact variables are computed as
    [relation_base + mixed-radix tuple rank], sentences are compiled to
    slot-resolved form before quantifier expansion, and Tseitin clauses
    land in a flat [int] arena consumed by the solver as slices. A
    bounded domain-local memo replays the compiled ground circuit of
    structurally identical (sentence, domain size) pairs across
    sessions. See DESIGN.md, "hot-path data layout". *)

type t

type env = Structure.Element.t Logic.Names.SMap.t

exception Unbound_variable of string

(** [create ~domain ~signature ()] registers a dense fact-variable
    block for every relation of the signature over the (deduplicated)
    domain. The [budget] (default {!Budget.unlimited}) is checked per
    registered relation, per grounded subformula and per emitted
    clause, and passed to the solver; any of these points may raise
    {!Budget.Exhausted}. A trip leaves the grounding in a consistent,
    resumable state. *)
val create :
  ?budget:Budget.t ->
  domain:Structure.Element.t list ->
  signature:Logic.Signature.t ->
  unit ->
  t

(** Replace the budget consulted by subsequent operations (e.g. to run
    one query under a deadline against a long-lived session). *)
val set_budget : t -> Budget.t -> unit

(** SAT variable of a possible fact (pure arithmetic: no hashing of the
    fact itself).
    @raise Invalid_argument for facts outside the signature/domain. *)
val fact_var : t -> Structure.Instance.fact -> int

(** Admit further relations after creation, registering their fact
    variables after the existing ones (idempotent). Used by sessions
    answering queries whose signature was unknown at grounding time. *)
val ensure_signature : t -> Logic.Signature.t -> unit

(** Total SAT variables so far (facts + Tseitin auxiliaries). *)
val nvars : t -> int

(** [iter_pending t f] calls [f buf off len] for every clause emitted
    since the last call, as literal slices [buf.[off..off+len)] of the
    clause arena, in emission order — for pushing into a persistent
    solver ({!Dpll.assert_clause_slice}) without materialising lists.
    The slices are only valid during the iteration. *)
val iter_pending : t -> (int array -> int -> int -> unit) -> unit

(** Assert that [f] holds (under [env] for its free variables). *)
val assert_formula : ?env:env -> t -> Logic.Formula.t -> unit

(** Assert that [f] fails. *)
val assert_negation : ?env:env -> t -> Logic.Formula.t -> unit

(** Force all facts of an instance to be true. *)
val assert_instance : t -> Structure.Instance.t -> unit

(** Solve; [Some m] is a model containing exactly the true facts, with
    the whole domain as its universe. *)
val solve : t -> Structure.Instance.t option

(** Read an instance off a raw solver model (for persistent solvers
    driven outside this module, see {!Engine}). *)
val extract_model : t -> bool array -> Structure.Instance.t

(** Enumerate models (distinct fact sets), up to [limit]. *)
val enumerate : ?limit:int -> t -> Structure.Instance.t list

(** A literal equivalent to [f] under [env] (full Tseitin equivalence),
    for projected enumeration. *)
val reify : ?env:env -> t -> Logic.Formula.t -> int

(** Distinct truth-value combinations of the given literals over all
    models (each result aligns with the input literal list). *)
val enumerate_projections : ?limit:int -> t -> int list -> bool list list

(** {2 The cross-session circuit memo}

    Completed groundings are memoized per domain (each worker domain
    warms its own shared-nothing memo; {!set_memo_capacity} and
    {!clear_memo} act on the calling domain only), keyed by
    (operation, domain size, compiled sentence), and replayed — clause
    slice appended, auxiliary variables shifted to fresh ones — when a
    structurally identical grounding recurs in any session. Replay
    still charges the budget per clause. Hits and misses are counted in
    {!Stats.global} ([memo_hits]/[memo_misses]) and show up in the
    profile table as the [ground.memo_replay]/[ground.memo_expand]
    spans. *)

(** Maximum number of memoized circuits on the calling domain (default
    256; least recently used evicted). [set_memo_capacity 0] disables
    and clears the memo. *)
val set_memo_capacity : int -> unit

(** The calling domain's memo capacity. *)
val memo_capacity : unit -> int

(** Drop every memoized circuit (for benchmarks and deterministic
    tests). *)
val clear_memo : unit -> unit

(** Number of circuits currently memoized. *)
val memo_size : unit -> int
