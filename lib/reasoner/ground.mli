(** Grounding of FO(=, counting) sentences over a fixed finite domain
    into propositional clauses (one SAT variable per possible fact,
    Tseitin auxiliaries for structure). Together with {!Dpll} this gives
    the bounded model finder {!Bounded}. *)

type t

type env = Structure.Element.t Logic.Names.SMap.t

exception Unbound_variable of string

(** [create ~domain ~signature ()] pre-registers every possible fact
    over the domain for the given signature. The [budget] (default
    {!Budget.unlimited}) is checked per registered fact, per grounded
    subformula and per emitted clause, and passed to the solver; any of
    these points may raise {!Budget.Exhausted}. A trip leaves the
    grounding in a consistent, resumable state. *)
val create :
  ?budget:Budget.t ->
  domain:Structure.Element.t list ->
  signature:Logic.Signature.t ->
  unit ->
  t

(** Replace the budget consulted by subsequent operations (e.g. to run
    one query under a deadline against a long-lived session). *)
val set_budget : t -> Budget.t -> unit

(** SAT variable of a possible fact.
    @raise Invalid_argument for facts outside the signature/domain. *)
val fact_var : t -> Structure.Instance.fact -> int

(** Admit further relations after creation, registering their fact
    variables (idempotent). Used by sessions answering queries whose
    signature was unknown at grounding time. *)
val ensure_signature : t -> Logic.Signature.t -> unit

(** Total SAT variables so far (facts + Tseitin auxiliaries). *)
val nvars : t -> int

(** Clauses added since the last drain, in insertion order — for pushing
    into a persistent solver. *)
val drain_pending : t -> int list list

(** Assert that [f] holds (under [env] for its free variables). *)
val assert_formula : ?env:env -> t -> Logic.Formula.t -> unit

(** Assert that [f] fails. *)
val assert_negation : ?env:env -> t -> Logic.Formula.t -> unit

(** Force all facts of an instance to be true. *)
val assert_instance : t -> Structure.Instance.t -> unit

(** Solve; [Some m] is a model containing exactly the true facts, with
    the whole domain as its universe. *)
val solve : t -> Structure.Instance.t option

(** Read an instance off a raw solver model (for persistent solvers
    driven outside this module, see {!Engine}). *)
val extract_model : t -> bool array -> Structure.Instance.t

(** Enumerate models (distinct fact sets), up to [limit]. *)
val enumerate : ?limit:int -> t -> Structure.Instance.t list

(** A literal equivalent to [f] under [env] (full Tseitin equivalence),
    for projected enumeration. *)
val reify : ?env:env -> t -> Logic.Formula.t -> int

(** Distinct truth-value combinations of the given literals over all
    models (each result aligns with the input literal list). *)
val enumerate_projections : ?limit:int -> t -> int list -> bool list list
