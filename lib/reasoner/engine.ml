module SMap = Logic.Names.SMap

(* The incremental certain-answer engine: ground (O, D, extra-nulls)
   ONCE into a persistent CDCL solver, then answer per-tuple certainty
   queries by solving under assumption literals (the negated reified
   query instantiation) instead of rebuilding clauses. Learned clauses
   accumulate across calls, so a batch of n² tuple checks over the same
   (O, D) pays for one grounding and shares all derived lemmas.

   Query reifications are Tseitin *equivalences* (Ground.reify), i.e.
   definitional extensions: adding them never changes satisfiability of
   the base problem, which keeps the memoized consistency verdict and
   all learned clauses sound as more queries arrive. *)

type t = {
  ontology : Logic.Ontology.t;
  instance : Structure.Instance.t;
  extra : int;
  ground : Ground.t;
  solver : Dpll.t;
  reified : (Logic.Formula.t * (string * Structure.Element.t) list, int) Hashtbl.t;
  stats : Stats.t;
  mutable consistent : bool option;  (* memoized no-assumption verdict *)
}

let ontology t = t.ontology
let instance t = t.instance
let extra t = t.extra
let stats t = t.stats

(* Mirror every update into the global record, once. *)
let tally t f =
  f t.stats;
  if t.stats != Stats.global then f Stats.global

(* Push clauses produced by the grounder since the last sync into the
   persistent solver. *)
let sync t =
  Dpll.ensure_nvars t.solver (Ground.nvars t.ground);
  List.iter
    (fun c ->
      Dpll.seed_clause t.solver c;
      Dpll.assert_clause t.solver c)
    (Ground.drain_pending t.ground)

let create ?stats:(st = Stats.create ()) ?(extra_signature = Logic.Signature.empty)
    ~extra o d =
  let t0 = Unix.gettimeofday () in
  let nulls = Structure.Instance.fresh_nulls extra d in
  let domain = Structure.Instance.domain_list d @ nulls in
  let domain =
    (* Interpretations are non-empty. *)
    if domain = [] then [ Structure.Element.Const "e0" ] else domain
  in
  let signature =
    Logic.Signature.union
      (Logic.Ontology.signature o)
      (Logic.Signature.union (Structure.Instance.signature d) extra_signature)
  in
  let g = Ground.create ~domain ~signature in
  Ground.assert_instance g d;
  List.iter (Ground.assert_formula g) (Logic.Ontology.all_sentences o);
  let t =
    {
      ontology = o;
      instance = d;
      extra;
      ground = g;
      solver = Dpll.make ~nvars:(Ground.nvars g);
      reified = Hashtbl.create 64;
      stats = st;
      consistent = None;
    }
  in
  sync t;
  let dt = Unix.gettimeofday () -. t0 in
  tally t (fun s ->
      s.Stats.groundings <- s.Stats.groundings + 1;
      s.Stats.ground_seconds <- s.Stats.ground_seconds +. dt);
  t

(* One solver invocation, with counters and wall time credited. *)
let run_solver t assumptions =
  let d0, p0, c0 = Dpll.counters t.solver in
  let t0 = Unix.gettimeofday () in
  let result = Dpll.solve_assuming t.solver assumptions in
  let dt = Unix.gettimeofday () -. t0 in
  let d1, p1, c1 = Dpll.counters t.solver in
  tally t (fun s ->
      s.Stats.solves <- s.Stats.solves + 1;
      s.Stats.decisions <- s.Stats.decisions + (d1 - d0);
      s.Stats.propagations <- s.Stats.propagations + (p1 - p0);
      s.Stats.conflicts <- s.Stats.conflicts + (c1 - c0);
      s.Stats.solve_seconds <- s.Stats.solve_seconds +. dt);
  result

(* The literal equivalent to [f] under [env], memoized per session. New
   relations are admitted on demand (their facts are unconstrained by O
   and D, which is exactly their semantics). *)
let reified_lit ?(env = SMap.empty) t f =
  let key = (f, SMap.bindings env) in
  match Hashtbl.find_opt t.reified key with
  | Some l -> l
  | None ->
      Ground.ensure_signature t.ground (Logic.Signature.of_formula f);
      let l = Ground.reify ~env t.ground f in
      sync t;
      Hashtbl.replace t.reified key l;
      l

let find_model t =
  match run_solver t [] with
  | Dpll.Unsat -> None
  | Dpll.Sat m -> Some (Ground.extract_model t.ground m)

let is_consistent t =
  match t.consistent with
  | Some c -> c
  | None ->
      let c =
        match run_solver t [] with Dpll.Sat _ -> true | Dpll.Unsat -> false
      in
      t.consistent <- Some c;
      c

let answer_env (q : Query.Cq.t) tuple =
  List.fold_left2
    (fun env v e -> SMap.add v e env)
    SMap.empty q.Query.Cq.answer tuple

(* A countermodel to O,D ⊨ ⋁ qᵢ(āᵢ) over this session's domain: a model
   where every pointed disjunct fails, found by assuming the negation of
   each reified instantiation. *)
let countermodel_pointed t pointed =
  let assumptions =
    List.map
      (fun (cq, tuple) ->
        let env = answer_env cq tuple in
        -reified_lit ~env t (Query.Cq.to_formula cq))
      pointed
  in
  match run_solver t assumptions with
  | Dpll.Unsat -> None
  | Dpll.Sat m -> Some (Ground.extract_model t.ground m)

let countermodel t q tuple =
  if List.length tuple <> Query.Ucq.arity q then
    invalid_arg "Engine.countermodel: tuple arity mismatch";
  countermodel_pointed t
    (List.map (fun cq -> (cq, tuple)) (Query.Ucq.disjuncts q))

(* Certainty at THIS session's domain bound: no countermodel with
   exactly [extra t] fresh nulls. *)
let certain_ucq t q tuple = Option.is_none (countermodel t q tuple)
let certain_cq t q tuple = certain_ucq t (Query.Ucq.of_cq q) tuple

let certain_disjunction t pointed =
  Option.is_none (countermodel_pointed t pointed)

let certain_formula ?(env = SMap.empty) t f =
  match run_solver t [ -reified_lit ~env t f ] with
  | Dpll.Unsat -> true
  | Dpll.Sat _ -> false

(* ------------------------------------------------------------------ *)
(* The session cache                                                    *)
(* ------------------------------------------------------------------ *)

(* Sessions are keyed by (ontology digest, instance digest, extra
   bound) and evicted least-recently-used. Signatures are NOT part of
   the key: sessions admit new query relations on demand. *)

type key = string * string * int

let digest_ontology o =
  Digest.string
    (Marshal.to_string
       (Logic.Ontology.sentences o, Logic.Ontology.functional o)
       [])

let digest_instance d =
  Digest.string
    (Marshal.to_string
       (Structure.Instance.facts d, Structure.Instance.domain_list d)
       [])

let cache_capacity = ref 16
let sessions : (key * t) list ref = ref []

let set_cache_capacity n =
  cache_capacity := max n 0;
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  sessions := take !cache_capacity !sessions

let clear_cache () = sessions := []
let cached_sessions () = List.length !sessions

let session ?stats ?extra_signature ~extra o d =
  let key = (digest_ontology o, digest_instance d, extra) in
  match List.assoc_opt key !sessions with
  | Some t ->
      sessions := (key, t) :: List.remove_assoc key !sessions;
      tally t (fun s -> s.Stats.cache_hits <- s.Stats.cache_hits + 1);
      t
  | None ->
      let t = create ?stats ?extra_signature ~extra o d in
      tally t (fun s -> s.Stats.cache_misses <- s.Stats.cache_misses + 1);
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      sessions := take !cache_capacity ((key, t) :: !sessions);
      t

(* ------------------------------------------------------------------ *)
(* Iterative-deepening conveniences (Bounded-compatible semantics)      *)
(* ------------------------------------------------------------------ *)

let is_consistent_upto ?stats ?(max_extra = 2) o d =
  let rec go k =
    k <= max_extra
    && (is_consistent (session ?stats ~extra:k o d) || go (k + 1))
  in
  go 0

let certain_ucq_upto ?stats ?(max_extra = 2) o d q tuple =
  let rec go k =
    k > max_extra
    || (certain_ucq (session ?stats ~extra:k o d) q tuple && go (k + 1))
  in
  go 0

let certain_cq_upto ?stats ?max_extra o d q tuple =
  certain_ucq_upto ?stats ?max_extra o d (Query.Ucq.of_cq q) tuple

let certain_disjunction_upto ?stats ?(max_extra = 2) o d pointed =
  let rec go k =
    k > max_extra
    || (certain_disjunction (session ?stats ~extra:k o d) pointed && go (k + 1))
  in
  go 0
