module SMap = Logic.Names.SMap

(* The incremental certain-answer engine: ground (O, D, extra-nulls)
   ONCE into a persistent CDCL solver, then answer per-tuple certainty
   queries by solving under assumption literals (the negated reified
   query instantiation) instead of rebuilding clauses. Learned clauses
   accumulate across calls, so a batch of n² tuple checks over the same
   (O, D) pays for one grounding and shares all derived lemmas.

   Query reifications are Tseitin *equivalences* (Ground.reify), i.e.
   definitional extensions: adding them never changes satisfiability of
   the base problem, which keeps the memoized consistency verdict and
   all learned clauses sound as more queries arrive.

   Budgets: every operation accepts a [?budget] and installs it on the
   session's grounder and solver for the duration of the call. A trip
   raises [Budget.Exhausted] out of the plain forms (the [try_*] forms
   return typed outcomes instead) but never corrupts the session:
   cancellation points sit where the solver's invariants hold, and a
   partially-emitted query reification is an unreferenced definitional
   fragment that later solves may freely satisfy. The session answers
   subsequent (unbudgeted) queries exactly like a fresh engine — the
   test suite proves this by fault injection. *)

type t = {
  ontology : Logic.Ontology.t;
  mutable instance : Structure.Instance.t;
  extra : int;
  (* Dynamic engines carry D's facts as persistent solver assumptions
     (the fact variables themselves — dense ranks in per-relation
     blocks) instead of unit clauses: insertion adds an assumption over
     the existing block, retraction drops one, and neither rebuilds the
     solver. Learned clauses stay sound because assumptions never
     participate in them ("learned clauses persist; assumptions do
     not"). Static engines keep the cheaper unit-clause encoding. *)
  dynamic : bool;
  assumed : (Structure.Instance.fact, int) Hashtbl.t;
  mutable fact_assumptions : int list;
  ground : Ground.t;
  solver : Dpll.t;
  reified : (Logic.Formula.t * (string * Structure.Element.t) list, int) Hashtbl.t;
  (* per-session caches for the per-tuple hot path: the formula of each
     disjunct (physical keys — sessions see a handful of CQs, each
     shared across every candidate tuple) and the formulas whose
     signature is already registered, so only the first tuple of a
     query pays [Cq.to_formula] and [Signature.of_formula] *)
  mutable cq_formulas : (Query.Cq.t * Logic.Formula.t) list;
  mutable signed : Logic.Formula.t list;
  stats : Stats.t;
  mutable budget : Budget.t;  (* installed per call; unlimited at rest *)
  mutable consistent : bool option;  (* memoized no-assumption verdict *)
  (* the most recent countermodel, kept as a candidate witness: a
     model of O and D over the session domain refutes every tuple whose
     query it falsifies, so most non-answers are settled by direct
     evaluation instead of a solver call. Sound for the whole session
     lifetime — later additions are definitional extensions (query
     reifications) and implied (learned) clauses, neither of which
     constrains the fact variables further. *)
  mutable witness : Structure.Instance.t option;
}

let ontology t = t.ontology
let instance t = t.instance
let extra t = t.extra
let stats t = t.stats

(* Mirror every update into the global record, once. *)
let tally t f =
  f t.stats;
  let g = Stats.global () in
  if t.stats != g then f g

(* Run [f] with [b] installed as the session budget (both here and on
   the grounder), restoring the unlimited budget afterwards — including
   on an [Exhausted] trip, so a cached session is never left with a
   spent budget attached. *)
let with_budget t b f =
  t.budget <- b;
  Ground.set_budget t.ground b;
  Fun.protect
    ~finally:(fun () ->
      t.budget <- Budget.unlimited;
      Ground.set_budget t.ground Budget.unlimited)
    f

(* Push clauses produced by the grounder since the last sync into the
   persistent solver, straight from the clause arena. *)
let sync t =
  Dpll.ensure_nvars t.solver (Ground.nvars t.ground);
  Ground.iter_pending t.ground (fun buf off len ->
      Dpll.seed_clause_slice t.solver buf off len;
      Dpll.assert_clause_slice t.solver buf off len)

(* The grounding memo counts its traffic in [Stats.global] directly
   (it is process-wide, not per-session); [f]'s delta is mirrored into
   the per-session record here — also on a budget trip, so partial
   groundings stay accounted for. *)
let with_memo_delta st f =
  let g = Stats.global () in
  let h0 = g.Stats.memo_hits and m0 = g.Stats.memo_misses in
  Fun.protect
    ~finally:(fun () ->
      if st != g then begin
        st.Stats.memo_hits <- st.Stats.memo_hits + (g.Stats.memo_hits - h0);
        st.Stats.memo_misses <-
          st.Stats.memo_misses + (g.Stats.memo_misses - m0)
      end)
    f

let create ?stats:(st = Stats.create ()) ?(extra_signature = Logic.Signature.empty)
    ?(budget = Budget.unlimited) ?(dynamic = false) ~extra o d =
  Obs.Trace.with_span
    ~attrs:
      [ ("extra", Obs.Trace.Int extra); ("dynamic", Obs.Trace.Bool dynamic) ]
    "engine.ground"
    (fun () ->
      let t0 = Obs.Clock.now () in
      let g =
        with_memo_delta st (fun () ->
            Problem.build ~budget ~extra_signature ~assert_facts:(not dynamic)
              ~extra o d)
      in
      let assumed = Hashtbl.create (if dynamic then 64 else 1) in
      let fact_assumptions =
        if not dynamic then []
        else
          Structure.Instance.FactSet.fold
            (fun f acc ->
              let v = Ground.fact_var g f in
              Hashtbl.replace assumed f v;
              v :: acc)
            (Structure.Instance.fact_set d)
            []
      in
      let t =
        {
          ontology = o;
          instance = d;
          extra;
          dynamic;
          assumed;
          fact_assumptions;
          ground = g;
          solver = Dpll.make ~nvars:(Ground.nvars g);
          reified = Hashtbl.create 64;
          cq_formulas = [];
          signed = [];
          stats = st;
          budget;
          consistent = None;
          witness = None;
        }
      in
      Fun.protect
        ~finally:(fun () ->
          t.budget <- Budget.unlimited;
          Ground.set_budget g Budget.unlimited)
        (fun () -> sync t);
      let dt = Obs.Clock.now () -. t0 in
      tally t (fun s ->
          s.Stats.groundings <- s.Stats.groundings + 1;
          s.Stats.ground_seconds <- s.Stats.ground_seconds +. dt);
      if Obs.Trace.enabled () then
        Obs.Trace.add_attr "vars" (Obs.Trace.Int (Ground.nvars g));
      t)

(* One solver invocation under the installed budget, with counters and
   wall time credited (also on a budget trip, via protect). *)
let instrumented t n_assumptions f =
  Obs.Trace.with_span
    ~attrs:[ ("assumptions", Obs.Trace.Int n_assumptions) ]
    "engine.solve"
    (fun () ->
      let d0, p0, c0 = Dpll.counters t.solver in
      let t0 = Obs.Clock.now () in
      Fun.protect
        ~finally:(fun () ->
          let dt = Obs.Clock.now () -. t0 in
          let d1, p1, c1 = Dpll.counters t.solver in
          tally t (fun s ->
              s.Stats.solves <- s.Stats.solves + 1;
              s.Stats.decisions <- s.Stats.decisions + (d1 - d0);
              s.Stats.propagations <- s.Stats.propagations + (p1 - p0);
              s.Stats.conflicts <- s.Stats.conflicts + (c1 - c0);
              s.Stats.solve_seconds <- s.Stats.solve_seconds +. dt);
          if Obs.Trace.enabled () then begin
            Obs.Trace.add_attr "decisions" (Obs.Trace.Int (d1 - d0));
            Obs.Trace.add_attr "conflicts" (Obs.Trace.Int (c1 - c0))
          end)
        f)

(* Dynamic engines prepend the fact assumptions to every solve. *)
let all_assumptions t assumptions =
  if t.fact_assumptions == [] then assumptions
  else List.rev_append t.fact_assumptions assumptions

let run_solver t assumptions =
  let assumptions = all_assumptions t assumptions in
  instrumented t (List.length assumptions) (fun () ->
      Dpll.solve_assuming ~budget:t.budget t.solver assumptions)

(* Same, but only the verdict: no model array is built. *)
let run_solver_sat t assumptions =
  let assumptions = all_assumptions t assumptions in
  instrumented t (List.length assumptions) (fun () ->
      Dpll.sat_assuming ~budget:t.budget t.solver assumptions)

(* The literal equivalent to [f] under [env], memoized per session. New
   relations are admitted on demand (their facts are unconstrained by O
   and D, which is exactly their semantics). The memo entry is written
   only after the reification is fully emitted, so a budget trip
   mid-reification leaves no dangling entry — the next call redoes the
   (idempotent) registration and emits a fresh, complete reification. *)
let reified_lit ?(env = SMap.empty) t f =
  let key = (f, SMap.bindings env) in
  match Hashtbl.find_opt t.reified key with
  | Some l -> l
  | None ->
      if not (List.memq f t.signed) then begin
        Ground.ensure_signature t.ground (Logic.Signature.of_formula f);
        t.signed <- f :: t.signed
      end;
      let l = with_memo_delta t.stats (fun () -> Ground.reify ~env t.ground f) in
      sync t;
      Hashtbl.replace t.reified key l;
      l

let formula_of_cq t cq =
  match List.find_opt (fun (c, _) -> c == cq) t.cq_formulas with
  | Some (_, f) -> f
  | None ->
      let f = Query.Cq.to_formula cq in
      t.cq_formulas <- (cq, f) :: t.cq_formulas;
      f

let find_model ?(budget = Budget.unlimited) t =
  with_budget t budget (fun () ->
      match run_solver t [] with
      | Dpll.Unsat -> None
      | Dpll.Sat m ->
          let w = Ground.extract_model t.ground m in
          t.witness <- Some w;
          Some w)

let is_consistent ?(budget = Budget.unlimited) t =
  match t.consistent with
  | Some c -> c
  | None ->
      with_budget t budget (fun () ->
          let c = run_solver_sat t [] in
          t.consistent <- Some c;
          c)

let answer_env (q : Query.Cq.t) tuple =
  List.fold_left2
    (fun env v e -> SMap.add v e env)
    SMap.empty q.Query.Cq.answer tuple

(* A countermodel to O,D ⊨ ⋁ qᵢ(āᵢ) over this session's domain: a model
   where every pointed disjunct fails, found by assuming the negation of
   each reified instantiation. *)
let pointed_assumptions t pointed =
  List.map
    (fun (cq, tuple) ->
      let env = answer_env cq tuple in
      -reified_lit ~env t (formula_of_cq t cq))
    pointed

let countermodel_pointed ?(budget = Budget.unlimited) t pointed =
  with_budget t budget (fun () ->
      match run_solver t (pointed_assumptions t pointed) with
      | Dpll.Unsat -> None
      | Dpll.Sat m ->
          let w = Ground.extract_model t.ground m in
          t.witness <- Some w;
          Some w)

(* [w] already demonstrates O,D ⊭ ⋁ qᵢ(āᵢ): every disjunct fails on it. *)
let witness_refutes w pointed =
  List.for_all (fun (cq, tuple) -> not (Query.Cq.holds w cq tuple)) pointed

(* The certainty hot path: try the cached witness first — direct CQ
   evaluation, no solver call — and fall back to a countermodel search
   (which refreshes the witness) only when the witness satisfies some
   disjunct. Over a batch of n² candidate tuples one countermodel
   typically settles nearly all non-answers. *)
let certain_pointed ?budget t pointed =
  match t.witness with
  | Some w when witness_refutes w pointed -> false
  | _ -> Option.is_none (countermodel_pointed ?budget t pointed)

let pointed_of name q tuple =
  if List.length tuple <> Query.Ucq.arity q then
    invalid_arg (Fmt.str "Engine.%s: tuple arity mismatch" name);
  List.map (fun cq -> (cq, tuple)) (Query.Ucq.disjuncts q)

let countermodel ?budget t q tuple =
  countermodel_pointed ?budget t (pointed_of "countermodel" q tuple)

(* Certainty at THIS session's domain bound: no countermodel with
   exactly [extra t] fresh nulls. *)
let certain_ucq ?budget t q tuple =
  certain_pointed ?budget t (pointed_of "certain_ucq" q tuple)

let certain_cq ?budget t q tuple = certain_ucq ?budget t (Query.Ucq.of_cq q) tuple

let certain_disjunction ?budget t pointed = certain_pointed ?budget t pointed

let certain_formula ?(budget = Budget.unlimited) ?(env = SMap.empty) t f =
  with_budget t budget (fun () ->
      not (run_solver_sat t [ -reified_lit ~env t f ]))

(* ------------------------------------------------------------------ *)
(* Delta maintenance (dynamic engines)                                  *)
(* ------------------------------------------------------------------ *)

let is_dynamic t = t.dynamic

let delta_metric ?(by = 1) name =
  Obs.Metrics.incr ~by (Obs.Metrics.global ()) name

(* [insert_facts t facts] admits new facts into a dynamic session as
   additional assumptions. New relations are registered on demand
   (their variable blocks append after the existing ones); a fact over
   an element outside the grounded domain cannot be represented — the
   quantifier expansions would have to be redone — so the caller is told
   to rebuild. Inserting changes D upward: a cached [Some false]
   consistency verdict survives, [Some true] does not; the cached
   witness survives iff it already contains the new facts. *)
let insert_facts ?(budget = Budget.unlimited) t facts =
  Obs.Trace.with_span
    ~attrs:[ ("facts", Obs.Trace.Int (List.length facts)) ]
    "engine.delta.insert"
    (fun () ->
      if not t.dynamic then begin
        delta_metric "engine.delta.rebuilds";
        `Needs_rebuild
      end
      else
        with_budget t budget @@ fun () ->
        let fresh =
          List.sort_uniq Structure.Instance.compare_fact
            (List.filter
               (fun f -> not (Structure.Instance.mem f t.instance))
               facts)
        in
        match
          List.map
            (fun (f : Structure.Instance.fact) ->
              match Ground.fact_var t.ground f with
              | v -> (f, v)
              | exception Invalid_argument _ ->
                  Ground.ensure_signature t.ground
                    (Logic.Signature.add f.rel (List.length f.args)
                       Logic.Signature.empty);
                  (f, Ground.fact_var t.ground f))
            fresh
        with
        | exception Invalid_argument _ ->
            delta_metric "engine.delta.rebuilds";
            `Needs_rebuild
        | vars ->
            sync t;
            List.iter
              (fun (f, v) ->
                Hashtbl.replace t.assumed f v;
                t.fact_assumptions <- v :: t.fact_assumptions;
                t.instance <- Structure.Instance.add_fact f t.instance)
              vars;
            (match t.consistent with
            | Some true -> t.consistent <- None
            | _ -> ());
            (match t.witness with
            | Some w
              when List.for_all
                     (fun (f, _) -> Structure.Instance.mem f w)
                     vars ->
                ()
            | Some _ -> t.witness <- None
            | None -> ());
            delta_metric ~by:(List.length vars) "engine.delta.inserts";
            `Delta)

(* [retract_facts t facts] drops facts from a dynamic session by
   forgetting their assumptions. Retraction changes D downward: a cached
   [Some true] verdict and the cached witness (a model containing the
   old D, hence the new one) both survive; [Some false] does not. A
   retraction that vacates a domain element is reported as
   [`Needs_rebuild]: the grounding quantifies over the old domain, and
   answering over a larger domain than dom(D) would not match a session
   reopened on the shrunk instance. *)
let retract_facts ?(budget = Budget.unlimited) t facts =
  Obs.Trace.with_span
    ~attrs:[ ("facts", Obs.Trace.Int (List.length facts)) ]
    "engine.delta.retract"
    (fun () ->
      if not t.dynamic then begin
        delta_metric "engine.delta.rebuilds";
        `Needs_rebuild
      end
      else
        with_budget t budget @@ fun () ->
        let present =
          List.sort_uniq Structure.Instance.compare_fact
            (List.filter (fun f -> Structure.Instance.mem f t.instance) facts)
        in
        let shrunk =
          List.fold_left
            (fun i f -> Structure.Instance.remove_fact f i)
            t.instance present
        in
        if
          not
            (Structure.Element.Set.equal
               (Structure.Instance.domain shrunk)
               (Structure.Instance.domain t.instance))
        then begin
          delta_metric "engine.delta.rebuilds";
          `Needs_rebuild
        end
        else begin
          List.iter (fun f -> Hashtbl.remove t.assumed f) present;
          if present <> [] then begin
            t.instance <- shrunk;
            t.fact_assumptions <-
              Hashtbl.fold (fun _ v acc -> v :: acc) t.assumed [];
            match t.consistent with
            | Some false -> t.consistent <- None
            | _ -> ()
          end;
          delta_metric ~by:(List.length present) "engine.delta.retracts";
          `Delta
        end)

(* ------------------------------------------------------------------ *)
(* The session cache                                                    *)
(* ------------------------------------------------------------------ *)

(* Sessions are keyed by (ontology digest, instance digest, extra
   bound) and evicted least-recently-used. Signatures are NOT part of
   the key: sessions admit new query relations on demand. A session is
   cached only after its grounding completed, so a budget trip during
   [create] never pollutes the cache with a half-built engine. *)

type key = string * string * int

let digest_ontology o =
  Digest.string
    (Marshal.to_string
       (Logic.Ontology.sentences o, Logic.Ontology.functional o)
       [])

let digest_instance d =
  Digest.string
    (Marshal.to_string
       (Structure.Instance.facts d, Structure.Instance.domain_list d)
       [])

type cache_entry = { engine : t; mutable stamp : int  (* LRU clock *) }

(* The registry is DOMAIN-LOCAL: engines hold single-writer solver and
   grounder state, so handing one engine to two domains is never sound.
   Each worker domain grows its own LRU of sessions for the items it
   happens to process (shared-nothing, like the grounding memo);
   [clear_cache] and [set_cache_capacity] act on the calling domain
   only. See DESIGN.md §5, "Domain-locality invariants". *)
type registry = {
  sessions : (key, cache_entry) Hashtbl.t;
  mutable clock : int;
  mutable capacity : int;
}

let registry_key =
  Domain.DLS.new_key (fun () ->
      { sessions = Hashtbl.create 32; clock = 0; capacity = 16 })

let registry () = Domain.DLS.get registry_key

(* Evict least-recently-stamped sessions down to capacity (linear scan:
   the cache is small and eviction rare). *)
let evict_to r cap =
  while Hashtbl.length r.sessions > cap do
    let victim =
      Hashtbl.fold
        (fun k (e : cache_entry) acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (k, e.stamp))
        r.sessions None
    in
    match victim with
    | Some (k, _) -> Hashtbl.remove r.sessions k
    | None -> ()
  done

let set_cache_capacity n =
  let r = registry () in
  r.capacity <- max n 0;
  evict_to r r.capacity

let clear_cache () = Hashtbl.reset (registry ()).sessions
let cached_sessions () = Hashtbl.length (registry ()).sessions

let session ?stats ?extra_signature ?budget ~extra o d =
  let r = registry () in
  let key = (digest_ontology o, digest_instance d, extra) in
  r.clock <- r.clock + 1;
  match Hashtbl.find_opt r.sessions key with
  | Some e ->
      e.stamp <- r.clock;
      let t = e.engine in
      tally t (fun s -> s.Stats.cache_hits <- s.Stats.cache_hits + 1);
      Obs.Trace.event ~attrs:[ ("extra", Obs.Trace.Int extra) ] "engine.cache_hit";
      t
  | None ->
      Obs.Trace.event ~attrs:[ ("extra", Obs.Trace.Int extra) ] "engine.cache_miss";
      let t = create ?stats ?extra_signature ?budget ~extra o d in
      tally t (fun s -> s.Stats.cache_misses <- s.Stats.cache_misses + 1);
      if r.capacity > 0 then begin
        Hashtbl.replace r.sessions key { engine = t; stamp = r.clock };
        evict_to r r.capacity
      end;
      t

(* ------------------------------------------------------------------ *)
(* Iterative-deepening conveniences (Bounded-compatible semantics)      *)
(* ------------------------------------------------------------------ *)

let is_consistent_upto ?stats ?budget ?(max_extra = 2) o d =
  let rec go k =
    k <= max_extra
    && (is_consistent ?budget (session ?stats ?budget ~extra:k o d) || go (k + 1))
  in
  go 0

let certain_ucq_upto ?stats ?budget ?(max_extra = 2) o d q tuple =
  let rec go k =
    k > max_extra
    || (certain_ucq ?budget (session ?stats ?budget ~extra:k o d) q tuple
       && go (k + 1))
  in
  go 0

let certain_cq_upto ?stats ?budget ?max_extra o d q tuple =
  certain_ucq_upto ?stats ?budget ?max_extra o d (Query.Ucq.of_cq q) tuple

let certain_disjunction_upto ?stats ?budget ?(max_extra = 2) o d pointed =
  let rec go k =
    k > max_extra
    || (certain_disjunction ?budget (session ?stats ?budget ~extra:k o d) pointed
       && go (k + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Typed-outcome entry points                                           *)
(* ------------------------------------------------------------------ *)

let try_is_consistent budget t =
  Budget.protect budget
    ~partial:(fun () -> ())
    (fun () -> is_consistent ~budget t)

let try_certain_ucq budget t q tuple =
  Budget.protect budget
    ~partial:(fun () -> ())
    (fun () -> certain_ucq ~budget t q tuple)

let try_certain_cq budget t q tuple =
  try_certain_ucq budget t (Query.Ucq.of_cq q) tuple

let try_is_consistent_upto budget ?stats ?(max_extra = 2) o d =
  let completed = ref 0 in
  Budget.protect budget
    ~partial:(fun () -> !completed)
    (fun () ->
      let rec go k =
        if k > max_extra then false
        else if is_consistent ~budget (session ?stats ~budget ~extra:k o d)
        then true
        else begin
          completed := k + 1;
          go (k + 1)
        end
      in
      go 0)

let try_certain_ucq_upto budget ?stats ?(max_extra = 2) o d q tuple =
  let completed = ref 0 in
  Budget.protect budget
    ~partial:(fun () -> !completed)
    (fun () ->
      let rec go k =
        k > max_extra
        || certain_ucq ~budget (session ?stats ~budget ~extra:k o d) q tuple
           && begin
                completed := k + 1;
                go (k + 1)
              end
      in
      go 0)
