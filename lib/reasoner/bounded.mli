(** Bounded model finding and certain answers for arbitrary FO(=,
    counting) ontologies.

    Countermodels are searched over domains dom(D) ∪ {k fresh nulls}.
    Refutations are exact (any countermodel refutes); confirmations are
    "entailed up to the bound". GF and GC2 enjoy the finite model
    property, so iterative deepening converges; experiments record the
    bound they use.

    Every entry point accepts a [?budget] (default {!Budget.unlimited},
    under which nothing ever trips). The plain forms raise
    {!Budget.Exhausted} on a trip; the [try_*] forms return a typed
    {!Budget.outcome} whose partial payload is the number of deepening
    bounds fully completed before the trip. *)

(** The grounded SAT problem for (O, D) over dom(D) + [extra] nulls —
    the shared builder behind every search here (see {!Problem}). *)
val problem :
  ?budget:Budget.t ->
  ?extra_signature:Logic.Signature.t ->
  extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Ground.t

(** A model of O and D over dom(D) + [extra] nulls, if any. *)
val find_model :
  ?budget:Budget.t ->
  ?extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Structure.Instance.t option

(** Consistency of D w.r.t. O, trying 0..[max_extra] extra elements. *)
val is_consistent :
  ?budget:Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  bool

(** All models over the bounded domain (distinct fact sets). *)
val models :
  ?budget:Budget.t ->
  ?extra:int ->
  ?limit:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Structure.Instance.t list

(** A countermodel to O,D ⊨ q(ā) with exactly [extra] fresh nulls. *)
val countermodel :
  ?budget:Budget.t ->
  ?extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Ucq.t ->
  Structure.Element.t list ->
  Structure.Instance.t option

(** O,D ⊨ q(ā): no countermodel with 0..[max_extra] extra elements. *)
val certain_ucq :
  ?budget:Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Ucq.t ->
  Structure.Element.t list ->
  bool

val certain_cq :
  ?budget:Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Cq.t ->
  Structure.Element.t list ->
  bool

(** Certain truth of an FO(=, counting) formula under an assignment
    [env]: no bounded model of O and D refutes it. *)
val certain_formula :
  ?budget:Budget.t ->
  ?max_extra:int ->
  ?env:Structure.Element.t Logic.Names.SMap.t ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Logic.Formula.t ->
  bool

(** A model of O and D over dom(D)+[extra] nulls satisfying exactly the
    flagged pointed queries ((q, ā, wanted) triples). Backs the
    materializability search. *)
val pool_exact_model :
  ?budget:Budget.t ->
  ?extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (Query.Cq.t * Structure.Element.t list * bool) list ->
  Structure.Instance.t option

(** O,D ⊨ q1(ā1) ∨ … ∨ qn(ān) at exactly [extra] fresh nulls. *)
val certain_disjunction_at :
  ?budget:Budget.t ->
  extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (Query.Cq.t * Structure.Element.t list) list ->
  bool

(** O,D ⊨ q1(ā1) ∨ … ∨ qn(ān) for pointed CQs (disjunction property,
    Theorem 17). *)
val certain_disjunction :
  ?budget:Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (Query.Cq.t * Structure.Element.t list) list ->
  bool

(** {2 Typed-outcome entry points}

    On a trip, [`Timeout k] / [`Out_of_fuel k] reports that deepening
    bounds 0..k-1 were fully decided before exhaustion. *)

val try_is_consistent :
  Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (bool, int) Budget.outcome

val try_certain_ucq :
  Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Ucq.t ->
  Structure.Element.t list ->
  (bool, int) Budget.outcome

val try_certain_cq :
  Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Cq.t ->
  Structure.Element.t list ->
  (bool, int) Budget.outcome

val try_certain_disjunction :
  Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (Query.Cq.t * Structure.Element.t list) list ->
  (bool, int) Budget.outcome
