module SMap = Logic.Names.SMap
module F = Logic.Formula

(* Grounding of FO(=, counting) sentences over a fixed finite domain into
   propositional clauses. One SAT variable per possible fact; Tseitin
   auxiliaries for the structure. Distinct domain elements are distinct
   (standard names for constants; labelled nulls are kept distinct —
   models with fused nulls are covered by smaller domains). *)

type t = {
  domain : Structure.Element.t array;
  fact_ids : (Structure.Instance.fact, int) Hashtbl.t;
  mutable facts_rev : Structure.Instance.fact list;
  mutable nfacts : int;
  mutable nvars : int;
  mutable clauses : int list list;
  mutable pending : int list list;  (* clauses not yet drained by an engine *)
  mutable known : Logic.Signature.t;  (* relations with registered facts *)
  mutable budget : Budget.t;  (* checked per registered fact and clause *)
}

type env = Structure.Element.t SMap.t

exception Unbound_variable of string

(* Register every possible fact over the domain for the signature's
   relations (idempotent per relation), so model extraction sees a
   stable variable layout. *)
let register_signature t signature =
  let rec tuples k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> List.map (fun e -> e :: rest) (Array.to_list t.domain))
        (tuples (k - 1))
  in
  List.iter
    (fun (rel, arity) ->
      List.iter
        (fun args ->
          (* Registration is idempotent per fact, so a budget trip here
             leaves a prefix that a later (unbudgeted) registration of
             the same relation completes without duplication. *)
          Budget.checkpoint t.budget;
          let f = Structure.Instance.fact rel args in
          if not (Hashtbl.mem t.fact_ids f) then begin
            t.nfacts <- t.nfacts + 1;
            t.nvars <- t.nvars + 1;
            Hashtbl.replace t.fact_ids f t.nvars;
            t.facts_rev <- f :: t.facts_rev
          end)
        (tuples arity))
    (Logic.Signature.to_list signature);
  t.known <- Logic.Signature.union t.known signature

let create ?(budget = Budget.unlimited) ~domain ~signature () =
  let t =
    {
      domain = Array.of_list domain;
      fact_ids = Hashtbl.create 64;
      facts_rev = [];
      nfacts = 0;
      nvars = 0;
      clauses = [];
      pending = [];
      known = Logic.Signature.empty;
      budget;
    }
  in
  register_signature t signature;
  t

let set_budget t b = t.budget <- b

(* Admit further relations after creation (for sessions that must answer
   queries whose signature was unknown at grounding time). The new fact
   variables are appended after the existing ones; model extraction is
   unaffected because it goes through [fact_ids]. *)
let ensure_signature t signature =
  if not (Logic.Signature.subset signature t.known) then
    register_signature t signature

let nvars t = t.nvars

(* Clauses added since the last drain (in insertion order), for pushing
   into a persistent solver. *)
let drain_pending t =
  let batch = List.rev t.pending in
  t.pending <- [];
  batch

let fact_var t f =
  match Hashtbl.find_opt t.fact_ids f with
  | Some v -> v
  | None ->
      invalid_arg
        (Fmt.str "Ground.fact_var: fact %a outside the signature"
           Structure.Instance.pp_fact f)

let fresh_aux t =
  t.nvars <- t.nvars + 1;
  t.nvars

let add_clause t c =
  (* One checkpoint per emitted ground clause: this is the grounding
     cap's unit of account, and clause emission dominates grounding
     cost, so deadlines are also observed here. Charged before the
     clause lands, so [clauses] and [pending] stay in sync on a trip. *)
  Budget.charge_clause t.budget;
  t.clauses <- c :: t.clauses;
  t.pending <- c :: t.pending

(* ------------------------------------------------------------------ *)
(* Formula -> ground circuit                                            *)
(* ------------------------------------------------------------------ *)

type g =
  | GTrue
  | GFalse
  | GLit of int
  | GAnd of g list
  | GOr of g list

let gand parts =
  let rec go acc = function
    | [] -> ( match acc with [] -> GTrue | [ x ] -> x | xs -> GAnd xs)
    | GTrue :: rest -> go acc rest
    | GFalse :: _ -> GFalse
    | GAnd xs :: rest -> go acc (xs @ rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] parts

let gor parts =
  let rec go acc = function
    | [] -> ( match acc with [] -> GFalse | [ x ] -> x | xs -> GOr xs)
    | GFalse :: rest -> go acc rest
    | GTrue :: _ -> GTrue
    | GOr xs :: rest -> go acc (xs @ rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] parts

let element env = function
  | Logic.Term.Const c -> Structure.Element.Const c
  | Logic.Term.Var v -> (
      match SMap.find_opt v env with
      | Some e -> e
      | None -> raise (Unbound_variable v))

(* All subsets of size n of a list (n small). *)
let rec subsets n = function
  | _ when n = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (subsets (n - 1) rest) @ subsets n rest

let rec ground t env sign (f : F.t) =
  (* Circuit construction touches no shared state until the Tseitin
     clauses are emitted, so cancelling per grounded subformula is safe
     and keeps quantifier expansion (|domain|^|vars| recursive calls)
     responsive to deadlines. *)
  Budget.checkpoint t.budget;
  match f with
  | F.True -> if sign then GTrue else GFalse
  | F.False -> if sign then GFalse else GTrue
  | F.Atom (r, ts) ->
      let fact = Structure.Instance.fact r (List.map (element env) ts) in
      let v = fact_var t fact in
      GLit (if sign then v else -v)
  | F.Eq (a, b) ->
      let same = Structure.Element.equal (element env a) (element env b) in
      if same = sign then GTrue else GFalse
  | F.Not g -> ground t env (not sign) g
  | F.And (a, b) ->
      if sign then gand [ ground t env true a; ground t env true b ]
      else gor [ ground t env false a; ground t env false b ]
  | F.Or (a, b) ->
      if sign then gor [ ground t env true a; ground t env true b ]
      else gand [ ground t env false a; ground t env false b ]
  | F.Implies (a, b) ->
      if sign then gor [ ground t env false a; ground t env true b ]
      else gand [ ground t env true a; ground t env false b ]
  | F.Forall (vs, g) ->
      let parts = assignments t env vs (fun env' -> ground t env' sign g) in
      if sign then gand parts else gor parts
  | F.Exists (vs, g) ->
      let parts = assignments t env vs (fun env' -> ground t env' sign g) in
      if sign then gor parts else gand parts
  | F.CountGeq (n, v, g) ->
      let dom = Array.to_list t.domain in
      if sign then
        (* some n distinct witnesses all satisfy g *)
        gor
          (List.map
             (fun s ->
               gand
                 (List.map (fun e -> ground t (SMap.add v e env) true g) s))
             (subsets n dom))
      else
        (* every choice of n distinct witnesses has a failure *)
        gand
          (List.map
             (fun s ->
               gor (List.map (fun e -> ground t (SMap.add v e env) false g) s))
             (subsets n dom))

and assignments t env vs k =
  match vs with
  | [] -> [ k env ]
  | v :: rest ->
      List.concat_map
        (fun e -> assignments t (SMap.add v e env) rest k)
        (Array.to_list t.domain)

(* ------------------------------------------------------------------ *)
(* Tseitin                                                              *)
(* ------------------------------------------------------------------ *)

(* Literal equisatisfiably representing [g]. *)
let rec lit_of t g =
  match g with
  | GTrue | GFalse -> assert false (* removed by smart constructors *)
  | GLit l -> l
  | GAnd parts ->
      let ls = List.map (lit_of t) parts in
      let a = fresh_aux t in
      List.iter (fun l -> add_clause t [ -a; l ]) ls;
      add_clause t (a :: List.map (fun l -> -l) ls);
      a
  | GOr parts ->
      let ls = List.map (lit_of t) parts in
      let a = fresh_aux t in
      List.iter (fun l -> add_clause t [ -l; a ]) ls;
      add_clause t (-a :: ls);
      a

(* Assert a ground circuit at top level (avoiding an auxiliary for the
   outermost and/or). *)
let rec assert_g t g =
  match g with
  | GTrue -> ()
  | GFalse -> add_clause t []
  | GLit l -> add_clause t [ l ]
  | GAnd parts -> List.iter (assert_g t) parts
  | GOr parts -> add_clause t (List.map (lit_of t) parts)

let assert_formula ?(env = SMap.empty) t f = assert_g t (ground t env true f)
let assert_negation ?(env = SMap.empty) t f = assert_g t (ground t env false f)

(* A literal equivalent to [f] under [env] (full Tseitin equivalence),
   for projected model enumeration. *)
let reify ?(env = SMap.empty) t f =
  match ground t env true f with
  | GTrue ->
      let a = fresh_aux t in
      add_clause t [ a ];
      a
  | GFalse ->
      let a = fresh_aux t in
      add_clause t [ -a ];
      a
  | g -> lit_of t g

let assert_instance t inst =
  List.iter
    (fun f -> add_clause t [ fact_var t f ])
    (Structure.Instance.facts inst)

(* ------------------------------------------------------------------ *)
(* Solving and model extraction                                         *)
(* ------------------------------------------------------------------ *)

let model_to_instance t model =
  let base =
    Array.fold_left
      (fun inst e -> Structure.Instance.add_element e inst)
      Structure.Instance.empty t.domain
  in
  List.fold_left
    (fun inst f ->
      let v = fact_var t f in
      if model.(v - 1) then Structure.Instance.add_fact f inst else inst)
    base (List.rev t.facts_rev)

let extract_model = model_to_instance

let solve t =
  match Dpll.solve ~budget:t.budget ~nvars:t.nvars t.clauses with
  | Dpll.Unsat -> None
  | Dpll.Sat model -> Some (model_to_instance t model)

let enumerate ?(limit = max_int) t =
  let project = List.init t.nfacts (fun i -> i + 1) in
  Dpll.enumerate ~budget:t.budget ~nvars:t.nvars ~project ~limit t.clauses
  |> List.map (model_to_instance t)

(* Enumerate the distinct truth-value combinations of the given
   (reified) literals over all models. *)
let enumerate_projections ?(limit = max_int) t lits =
  Dpll.enumerate ~budget:t.budget ~nvars:t.nvars ~project:lits ~limit t.clauses
  |> List.map (fun model -> List.map (Dpll.lit_true model) lits)
