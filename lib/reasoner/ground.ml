module SMap = Logic.Names.SMap
module F = Logic.Formula
module ETbl = Structure.Element.Tbl

(* Grounding of FO(=, counting) sentences over a fixed finite domain into
   propositional clauses. One SAT variable per possible fact; Tseitin
   auxiliaries for the structure. Distinct domain elements are distinct
   (standard names for constants; labelled nulls are kept distinct —
   models with fused nulls are covered by smaller domains).

   The hot path is integer-only (see DESIGN.md, "hot-path data layout"):

   - Domain elements are interned to contiguous positions 0..|dom|-1 at
     creation, and every relation gets a dense variable block, so the
     variable of a fact R(e_0, .., e_{k-1}) is pure arithmetic —
     base_R + Σ pos(e_i)·|dom|^i (a mixed-radix tuple rank). No
     per-fact hashtable, for registration, grounding or model decoding.
   - Each formula is compiled once per assertion: quantified variables
     become integer slots into a preallocated assignment array, and
     constants and env-bound free variables are resolved to fixed
     domain positions at compile time. Quantifier expansion then loops
     over positions without allocating environments.
   - Tseitin clauses land in a growable flat [int] arena encoded as
     [len; lit_1; ..; lit_len] records, consumed by {!Dpll} as slices.
   - A bounded, process-wide memo keyed by (operation, |dom|, compiled
     formula) replays the emitted clause slice of a structurally
     identical grounding instead of re-expanding it: the compiled form
     embeds relation bases and element positions, so key equality
     guarantees the recorded literals are valid verbatim (auxiliary
     variables above the recording boundary are shifted to fresh
     ones). *)

type rel_info = {
  base : int;  (* first fact variable of the relation's block *)
  arity : int;
  count : int;  (* |dom|^arity *)
}

type t = {
  domain : Structure.Element.t array;  (* deduplicated; index = position *)
  elem_pos : int ETbl.t;  (* element -> position *)
  rels : (string, rel_info) Hashtbl.t;
  mutable rels_rev : (string * rel_info) list;  (* reverse registration order *)
  mutable nvars : int;
  mutable arena : int array;  (* [len; lits..] records *)
  mutable arena_len : int;
  mutable pending_pos : int;  (* arena offset of the first undrained clause *)
  mutable known : Logic.Signature.t;  (* relations with registered facts *)
  mutable budget : Budget.t;  (* checked per relation, subformula, clause *)
}

type env = Structure.Element.t SMap.t

exception Unbound_variable of string

let ipow b e =
  let r = ref 1 in
  for _ = 1 to e do
    r := !r * b
  done;
  !r

(* Register a dense fact-variable block per relation (idempotent per
   relation), so model extraction sees a stable variable layout. *)
let register_signature t signature =
  List.iter
    (fun (rel, arity) ->
      if not (Hashtbl.mem t.rels rel) then begin
        Budget.checkpoint t.budget;
        let count = ipow (Array.length t.domain) arity in
        let info = { base = t.nvars + 1; arity; count } in
        Hashtbl.replace t.rels rel info;
        t.rels_rev <- (rel, info) :: t.rels_rev;
        t.nvars <- t.nvars + count
      end)
    (Logic.Signature.to_list signature);
  t.known <- Logic.Signature.union t.known signature

let create ?(budget = Budget.unlimited) ~domain ~signature () =
  let seen = ETbl.create 16 in
  let deduped =
    List.filter
      (fun e ->
        if ETbl.mem seen e then false
        else begin
          ETbl.replace seen e ();
          true
        end)
      domain
  in
  let domain = Array.of_list deduped in
  let elem_pos = ETbl.create (2 * max (Array.length domain) 1) in
  Array.iteri (fun i e -> ETbl.replace elem_pos e i) domain;
  let t =
    {
      domain;
      elem_pos;
      rels = Hashtbl.create 16;
      rels_rev = [];
      nvars = 0;
      arena = Array.make 256 0;
      arena_len = 0;
      pending_pos = 0;
      known = Logic.Signature.empty;
      budget;
    }
  in
  register_signature t signature;
  t

let set_budget t b = t.budget <- b

(* Admit further relations after creation (for sessions that must answer
   queries whose signature was unknown at grounding time). The new
   relations' variable blocks are appended after the existing ones, so
   earlier bases — and hence memoized circuits — stay valid. *)
let ensure_signature t signature =
  if not (Logic.Signature.subset signature t.known) then
    register_signature t signature

let nvars t = t.nvars

let fact_var t (f : Structure.Instance.fact) =
  let outside () =
    invalid_arg
      (Fmt.str "Ground.fact_var: fact %a outside the signature"
         Structure.Instance.pp_fact f)
  in
  match Hashtbl.find_opt t.rels f.rel with
  | Some info when info.arity = List.length f.args ->
      let radix = Array.length t.domain in
      let rank = ref 0 in
      let mul = ref 1 in
      List.iter
        (fun e ->
          match ETbl.find_opt t.elem_pos e with
          | Some p ->
              rank := !rank + (p * !mul);
              mul := !mul * radix
          | None -> outside ())
        f.args;
      info.base + !rank
  | _ -> outside ()

let fresh_aux t =
  t.nvars <- t.nvars + 1;
  t.nvars

(* ------------------------------------------------------------------ *)
(* The clause arena                                                     *)
(* ------------------------------------------------------------------ *)

let arena_reserve t n =
  if t.arena_len + n > Array.length t.arena then begin
    let bigger =
      Array.make (max (t.arena_len + n) (2 * Array.length t.arena)) 0
    in
    Array.blit t.arena 0 bigger 0 t.arena_len;
    t.arena <- bigger
  end

(* One [Budget.charge_clause] per emitted ground clause: this is the
   grounding cap's unit of account, and clause emission dominates
   grounding cost, so deadlines are also observed here. Charged before
   the clause lands. *)
let emit_clause0 t =
  Budget.charge_clause t.budget;
  arena_reserve t 1;
  t.arena.(t.arena_len) <- 0;
  t.arena_len <- t.arena_len + 1

let emit_clause1 t l =
  Budget.charge_clause t.budget;
  arena_reserve t 2;
  t.arena.(t.arena_len) <- 1;
  t.arena.(t.arena_len + 1) <- l;
  t.arena_len <- t.arena_len + 2

let emit_clause2 t a b =
  Budget.charge_clause t.budget;
  arena_reserve t 3;
  t.arena.(t.arena_len) <- 2;
  t.arena.(t.arena_len + 1) <- a;
  t.arena.(t.arena_len + 2) <- b;
  t.arena_len <- t.arena_len + 3

let emit_clause_list t lits =
  Budget.charge_clause t.budget;
  let len = List.length lits in
  arena_reserve t (len + 1);
  t.arena.(t.arena_len) <- len;
  let i = ref (t.arena_len + 1) in
  List.iter
    (fun l ->
      t.arena.(!i) <- l;
      incr i)
    lits;
  t.arena_len <- !i

(* Iterate clause slices of arena.[from..t.arena_len). *)
let iter_arena t from f =
  let i = ref from in
  while !i < t.arena_len do
    let len = t.arena.(!i) in
    f t.arena (!i + 1) len;
    i := !i + len + 1
  done

let iter_clauses t f = iter_arena t 0 f

let iter_pending t f =
  iter_arena t t.pending_pos f;
  t.pending_pos <- t.arena_len

(* ------------------------------------------------------------------ *)
(* Formula compilation: variables to slots, elements to positions       *)
(* ------------------------------------------------------------------ *)

(* Terms in compiled formulas: slot index if >= 0, fixed domain
   position -(p+1) if negative (constants and env-bound free variables
   are resolved at compile time). *)
type cf =
  | CTrue
  | CFalse
  | CAtom of int * int array  (* relation base, compiled terms *)
  | CEq of int * int
  | CNot of cf
  | CAnd of cf * cf
  | COr of cf * cf
  | CImplies of cf * cf
  | CForall of int array * cf  (* slots bound by the quantifier *)
  | CExists of int array * cf
  | CCountGeq of int * int * cf  (* n, slot, body *)

(* Compile [f] under [env]; returns the compiled formula and the number
   of quantifier slots it uses. Raises [Unbound_variable] for free
   variables missing from [env], and [Invalid_argument] for relations
   or elements outside the grounding (same contract as [fact_var]). *)
let compile t env (f : F.t) =
  let nslots = ref 0 in
  let fresh_slot () =
    let s = !nslots in
    incr nslots;
    s
  in
  let position e =
    match ETbl.find_opt t.elem_pos e with
    | Some p -> p
    | None ->
        invalid_arg
          (Fmt.str "Ground: element %a outside the domain" Structure.Element.pp
             e)
  in
  let cterm cenv = function
    | Logic.Term.Const c -> -position (Structure.Element.Const c) - 1
    | Logic.Term.Var v -> (
        match SMap.find_opt v cenv with
        | Some s -> s
        | None -> (
            match SMap.find_opt v env with
            | Some e -> -position e - 1
            | None -> raise (Unbound_variable v)))
  in
  let rec go cenv (f : F.t) =
    match f with
    | F.True -> CTrue
    | F.False -> CFalse
    | F.Atom (r, ts) -> (
        let arity = List.length ts in
        match Hashtbl.find_opt t.rels r with
        | Some info when info.arity = arity ->
            CAtom (info.base, Array.of_list (List.map (cterm cenv) ts))
        | _ ->
            invalid_arg
              (Fmt.str "Ground: relation %s/%d outside the signature" r arity))
    | F.Eq (a, b) -> (
        match (cterm cenv a, cterm cenv b) with
        | x, y when x < 0 && y < 0 -> if x = y then CTrue else CFalse
        | x, y -> CEq (x, y))
    | F.Not g -> CNot (go cenv g)
    | F.And (a, b) -> CAnd (go cenv a, go cenv b)
    | F.Or (a, b) -> COr (go cenv a, go cenv b)
    | F.Implies (a, b) -> CImplies (go cenv a, go cenv b)
    | F.Forall (vs, g) ->
        let slots = List.map (fun v -> (v, fresh_slot ())) vs in
        let cenv =
          List.fold_left (fun m (v, s) -> SMap.add v s m) cenv slots
        in
        CForall (Array.of_list (List.map snd slots), go cenv g)
    | F.Exists (vs, g) ->
        let slots = List.map (fun v -> (v, fresh_slot ())) vs in
        let cenv =
          List.fold_left (fun m (v, s) -> SMap.add v s m) cenv slots
        in
        CExists (Array.of_list (List.map snd slots), go cenv g)
    | F.CountGeq (n, v, g) ->
        let s = fresh_slot () in
        CCountGeq (n, s, go (SMap.add v s cenv) g)
  in
  let cf = go SMap.empty f in
  (cf, !nslots)

(* ------------------------------------------------------------------ *)
(* Compiled formula -> ground circuit                                   *)
(* ------------------------------------------------------------------ *)

type g =
  | GTrue
  | GFalse
  | GLit of int
  | GAnd of g list
  | GOr of g list

let gand parts =
  let rec go acc = function
    | [] -> ( match acc with [] -> GTrue | [ x ] -> x | xs -> GAnd xs)
    | GTrue :: rest -> go acc rest
    | GFalse :: _ -> GFalse
    | GAnd xs :: rest -> go acc (xs @ rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] parts

let gor parts =
  let rec go acc = function
    | [] -> ( match acc with [] -> GFalse | [ x ] -> x | xs -> GOr xs)
    | GFalse :: rest -> go acc rest
    | GTrue :: _ -> GTrue
    | GOr xs :: rest -> go acc (xs @ rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] parts

(* All subsets of size n of a list (n small). *)
let rec subsets n = function
  | _ when n = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (subsets (n - 1) rest) @ subsets n rest

(* Literal equisatisfiably representing [g] (full Tseitin equivalence,
   so the literal is sound under either polarity). *)
let rec lit_of t g =
  match g with
  | GTrue | GFalse -> assert false (* removed by smart constructors *)
  | GLit l -> l
  | GAnd parts ->
      let ls = List.map (lit_of t) parts in
      let a = fresh_aux t in
      List.iter (fun l -> emit_clause2 t (-a) l) ls;
      emit_clause_list t (a :: List.map (fun l -> -l) ls);
      a
  | GOr parts ->
      let ls = List.map (lit_of t) parts in
      let a = fresh_aux t in
      List.iter (fun l -> emit_clause2 t (-l) a) ls;
      emit_clause_list t (-a :: ls);
      a

(* Reified binary or/and over literals (full equivalences), the nodes of
   the cardinality ladder below. *)
let or2 t x y =
  let a = fresh_aux t in
  emit_clause2 t (-x) a;
  emit_clause2 t (-y) a;
  emit_clause_list t [ -a; x; y ];
  a

let and2 t x y =
  let a = fresh_aux t in
  emit_clause2 t (-a) x;
  emit_clause2 t (-a) y;
  emit_clause_list t [ a; -x; -y ];
  a

(* Literal equivalent to "at least [k] of [bs] hold" (1 <= k <= |bs|),
   as a sequential-counter ladder: row.(j) is the literal for ">= j of
   the literals seen so far" (0 encodes constant false), updated per
   literal by s(i,j) = s(i-1,j) or (b_i and s(i-1,j-1)). O(|bs|*k)
   ternary nodes, against the C(|bs|,k) subset expansion. Every node is
   a full equivalence, so the result is sound under either polarity. *)
let atleast_lit t k bs =
  let row = Array.make (k + 1) 0 in
  List.iteri
    (fun i b ->
      for j = min (i + 1) k downto 2 do
        let carry = if row.(j - 1) = 0 then 0 else and2 t b row.(j - 1) in
        if row.(j) = 0 then row.(j) <- carry
        else if carry <> 0 then row.(j) <- or2 t row.(j) carry
      done;
      row.(1) <- (if row.(1) = 0 then b else or2 t row.(1) b))
    bs;
  row.(k)

(* min (C(n,k), cap + 1) without overflow, to pick the counting encoding. *)
let binom_capped n k cap =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let r = ref 1 in
    let i = ref 1 in
    while !i <= k && !r <= cap do
      r := !r * (n - k + !i) / !i;
      incr i
    done;
    !r
  end

(* Counting nodes switch from subset expansion to the ladder once the
   number of subsets passes this (subsets are slightly better for the
   solver on small nodes, and keep small-instance clause counts stable). *)
let subset_limit = 64

(* Evaluate a compiled formula to a ground circuit. [slots] is the
   preallocated assignment array (slot -> domain position), mutated in
   place by quantifier loops — no environment allocation per binding.
   Wide counting nodes reify their ladder inline (the only emission
   during evaluation); everything else touches no shared state until
   the Tseitin clauses are emitted, and a budget trip mid-evaluation
   only ever abandons whole clauses, never partial ones. *)
let rec eval t slots sign (cf : cf) =
  Budget.checkpoint t.budget;
  match cf with
  | CTrue -> if sign then GTrue else GFalse
  | CFalse -> if sign then GFalse else GTrue
  | CAtom (base, terms) ->
      let radix = Array.length t.domain in
      let rank = ref 0 in
      let mul = ref 1 in
      Array.iter
        (fun tm ->
          let p = if tm >= 0 then slots.(tm) else -tm - 1 in
          rank := !rank + (p * !mul);
          mul := !mul * radix)
        terms;
      let v = base + !rank in
      GLit (if sign then v else -v)
  | CEq (a, b) ->
      let pa = if a >= 0 then slots.(a) else -a - 1 in
      let pb = if b >= 0 then slots.(b) else -b - 1 in
      if (pa = pb) = sign then GTrue else GFalse
  | CNot g -> eval t slots (not sign) g
  | CAnd (a, b) ->
      if sign then gand [ eval t slots true a; eval t slots true b ]
      else gor [ eval t slots false a; eval t slots false b ]
  | COr (a, b) ->
      if sign then gor [ eval t slots true a; eval t slots true b ]
      else gand [ eval t slots false a; eval t slots false b ]
  | CImplies (a, b) ->
      if sign then gor [ eval t slots false a; eval t slots true b ]
      else gand [ eval t slots true a; eval t slots false b ]
  | CForall (ss, g) ->
      let parts = expand t slots ss sign g in
      if sign then gand parts else gor parts
  | CExists (ss, g) ->
      let parts = expand t slots ss sign g in
      if sign then gor parts else gand parts
  | CCountGeq (n, sl, g) ->
      let radix = Array.length t.domain in
      if n > 0 && binom_capped radix n subset_limit > subset_limit then begin
        (* Wide counting node: reify the body at each position and build
           the sequential-counter ladder instead of enumerating subsets.
           Statically-true bodies lower the threshold, statically-false
           ones drop out of the count. *)
        let fixed = ref 0 in
        let lits = ref [] in
        let nlits = ref 0 in
        for p = radix - 1 downto 0 do
          slots.(sl) <- p;
          match eval t slots true g with
          | GTrue -> incr fixed
          | GFalse -> ()
          | c ->
              lits := lit_of t c :: !lits;
              incr nlits
        done;
        let k = n - !fixed in
        if k <= 0 then if sign then GTrue else GFalse
        else if k > !nlits then if sign then GFalse else GTrue
        else
          match atleast_lit t k !lits with
          | 0 -> assert false (* k <= |lits| leaves a real ladder node *)
          | l -> GLit (if sign then l else -l)
      end
      else
        let positions = List.init radix Fun.id in
        if sign then
          (* some n distinct witnesses all satisfy g *)
          gor
            (List.map
               (fun s ->
                 gand
                   (List.map
                      (fun p ->
                        slots.(sl) <- p;
                        eval t slots true g)
                      s))
               (subsets n positions))
        else
          (* every choice of n distinct witnesses has a failure *)
          gand
            (List.map
               (fun s ->
                 gor
                   (List.map
                      (fun p ->
                        slots.(sl) <- p;
                        eval t slots false g)
                      s))
               (subsets n positions))

(* Enumerate all assignments of the quantifier slots [ss] over domain
   positions, collecting the circuit of each binding (in domain order,
   rightmost slot fastest — the order the SMap recursion produced). *)
and expand t slots ss sign g =
  let radix = Array.length t.domain in
  let nss = Array.length ss in
  let acc = ref [] in
  let rec loop i =
    if i = nss then acc := eval t slots sign g :: !acc
    else
      for p = 0 to radix - 1 do
        slots.(ss.(i)) <- p;
        loop (i + 1)
      done
  in
  loop 0;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Tseitin                                                              *)
(* ------------------------------------------------------------------ *)

(* Assert a ground circuit at top level (avoiding an auxiliary for the
   outermost and/or). *)
let rec assert_g t g =
  match g with
  | GTrue -> ()
  | GFalse -> emit_clause0 t
  | GLit l -> emit_clause1 t l
  | GAnd parts -> List.iter (assert_g t) parts
  | GOr parts -> emit_clause_list t (List.map (lit_of t) parts)

(* ------------------------------------------------------------------ *)
(* The cross-session circuit memo                                       *)
(* ------------------------------------------------------------------ *)

(* Domain-local bounded LRU over completed groundings. The key is
   (operation, |dom|, compiled formula): the compiled form embeds
   relation bases and element positions, so two equal keys ground to
   literally identical clause slices — up to the auxiliary variables,
   which are contiguous above the recording-time variable count
   ([boundary]) and are shifted to fresh variables on replay. An entry
   is recorded only after its expansion completed, so a budget trip
   mid-emission never memoizes a partial circuit; replay itself charges
   the budget per clause, so caps and deadlines keep firing. *)

type memo_entry = {
  clauses : int array;  (* the emitted arena slice, [len; lits..] records *)
  n_aux : int;  (* auxiliaries allocated by the expansion *)
  boundary : int;  (* nvars when the expansion started *)
  result : int;  (* reified literal; 0 for plain assertions *)
  mutable stamp : int;  (* LRU clock *)
}

module MemoTbl = Hashtbl.Make (struct
  type t = int * int * cf  (* operation, |dom|, compiled formula *)

  let equal = ( = )

  (* The default polymorphic hash stops after 10 meaningful nodes,
     which collides reified instantiations differing only in deep leaf
     positions; hash deeper (keys are compiled formulas, so this is
     still cheap and allocation-free). *)
  let hash k = Hashtbl.hash_param 100 256 k
end)

(* The memo is DOMAIN-LOCAL: one table, capacity and LRU clock per
   domain. The table is hot on every grounding and an unguarded shared
   Hashtbl corrupts under concurrent resize (and a mutex would serialize
   exactly the work the pool exists to spread), so each worker warms its
   own memo — shared-nothing, merged never. [clear_memo] and
   [set_memo_capacity] act on the calling domain only; see DESIGN.md §5,
   "Domain-locality invariants". *)
type memo_state = {
  table : memo_entry MemoTbl.t;
  mutable capacity : int;
  mutable clock : int;
}

let memo_key =
  Domain.DLS.new_key (fun () ->
      { table = MemoTbl.create 512; capacity = 256; clock = 0 })

let memo_state () = Domain.DLS.get memo_key

let clear_memo () = MemoTbl.reset (memo_state ()).table

let memo_size () = MemoTbl.length (memo_state ()).table

let set_memo_capacity n =
  let m = memo_state () in
  m.capacity <- max n 0;
  if m.capacity = 0 then MemoTbl.reset m.table

let memo_capacity () = (memo_state ()).capacity

(* Batch eviction: when the table crosses capacity, drop the oldest
   tenth in one stamp-ordered sweep, so workloads with more distinct
   circuits than capacity pay amortized O(log) per insert instead of a
   full-table scan per eviction. *)
let memo_evict m =
  if MemoTbl.length m.table > m.capacity then begin
    let entries =
      MemoTbl.fold (fun k e acc -> (e.stamp, k) :: acc) m.table []
    in
    let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
    let doomed = MemoTbl.length m.table - (m.capacity * 9 / 10) in
    List.iteri
      (fun i (_, k) -> if i < doomed then MemoTbl.remove m.table k)
      entries
  end

(* Replay a recorded circuit: append the clause slice to the arena,
   shifting auxiliary variables (above the recording boundary) past the
   current variable count. Fact variables (at or below the boundary)
   are valid verbatim by key equality. Auxiliaries are allocated before
   emission so a budget trip mid-replay leaves every emitted literal
   backed by an allocated variable. *)
let memo_replay t e =
  let shift = t.nvars - e.boundary in
  t.nvars <- t.nvars + e.n_aux;
  let a = e.clauses in
  let n = Array.length a in
  let i = ref 0 in
  while !i < n do
    Budget.charge_clause t.budget;
    let len = a.(!i) in
    arena_reserve t (len + 1);
    let dst = t.arena_len in
    t.arena.(dst) <- len;
    for j = 1 to len do
      let l = a.(!i + j) in
      let v = abs l in
      let v' = if v <= e.boundary then v else v + shift in
      t.arena.(dst + j) <- (if l > 0 then v' else -v')
    done;
    t.arena_len <- dst + len + 1;
    i := !i + len + 1
  done;
  if e.result = 0 then 0
  else
    let v = abs e.result in
    let v' = if v <= e.boundary then v else v + shift in
    if e.result > 0 then v' else -v'

(* Ground via the memo: replay on a hit, otherwise run [expand] (which
   evaluates and emits, returning the reified literal or 0) and record
   the emitted slice. Hits and misses are counted in [Stats.global] and
   appear in the profile table via the two span names. *)
let memoized t op cf expand =
  let m = memo_state () in
  if m.capacity = 0 then expand ()
  else begin
    let key = (op, Array.length t.domain, cf) in
    m.clock <- m.clock + 1;
    match MemoTbl.find_opt m.table key with
    | Some e ->
        e.stamp <- m.clock;
        let g = Stats.global () in
        g.Stats.memo_hits <- g.Stats.memo_hits + 1;
        Obs.Trace.with_span "ground.memo_replay" (fun () -> memo_replay t e)
    | None ->
        let g = Stats.global () in
        g.Stats.memo_misses <- g.Stats.memo_misses + 1;
        Obs.Trace.with_span "ground.memo_expand" (fun () ->
            let boundary = t.nvars in
            let start = t.arena_len in
            let result = expand () in
            let entry =
              {
                clauses = Array.sub t.arena start (t.arena_len - start);
                n_aux = t.nvars - boundary;
                boundary;
                result;
                stamp = m.clock;
              }
            in
            MemoTbl.replace m.table key entry;
            memo_evict m;
            result)
  end

(* ------------------------------------------------------------------ *)
(* Assertions                                                           *)
(* ------------------------------------------------------------------ *)

(* Operation tags for the memo key: asserting a circuit positively,
   negatively, and reifying it emit different clause sets. *)
let op_assert = 0
let op_refute = 1
let op_reify = 2

let assert_formula ?(env = SMap.empty) t f =
  let cf, nslots = compile t env f in
  ignore
    (memoized t op_assert cf (fun () ->
         let slots = Array.make (max nslots 1) 0 in
         assert_g t (eval t slots true cf);
         0))

let assert_negation ?(env = SMap.empty) t f =
  let cf, nslots = compile t env f in
  ignore
    (memoized t op_refute cf (fun () ->
         let slots = Array.make (max nslots 1) 0 in
         assert_g t (eval t slots false cf);
         0))

(* A literal equivalent to [f] under [env] (full Tseitin equivalence),
   for projected model enumeration. *)
let reify ?(env = SMap.empty) t f =
  let cf, nslots = compile t env f in
  memoized t op_reify cf (fun () ->
      let slots = Array.make (max nslots 1) 0 in
      match eval t slots true cf with
      | GTrue ->
          let a = fresh_aux t in
          emit_clause1 t a;
          a
      | GFalse ->
          let a = fresh_aux t in
          emit_clause1 t (-a);
          a
      | g -> lit_of t g)

let assert_instance t inst =
  Structure.Instance.iter_facts (fun f -> emit_clause1 t (fact_var t f)) inst

(* ------------------------------------------------------------------ *)
(* Solving and model extraction                                         *)
(* ------------------------------------------------------------------ *)

let model_to_instance t model =
  let base =
    Array.fold_left
      (fun inst e -> Structure.Instance.add_element e inst)
      Structure.Instance.empty t.domain
  in
  let radix = Array.length t.domain in
  let rec decode rank arity acc =
    if arity = 0 then List.rev acc
    else decode (rank / radix) (arity - 1) (t.domain.(rank mod radix) :: acc)
  in
  List.fold_left
    (fun inst (rel, info) ->
      let inst = ref inst in
      for rank = 0 to info.count - 1 do
        if model.(info.base + rank - 1) then
          inst :=
            Structure.Instance.add_fact
              (Structure.Instance.fact rel (decode rank info.arity []))
              !inst
      done;
      !inst)
    base
    (List.rev t.rels_rev)

let extract_model = model_to_instance

let solve t =
  match
    Dpll.solve_iter ~budget:t.budget ~nvars:t.nvars (fun f -> iter_clauses t f)
  with
  | Dpll.Unsat -> None
  | Dpll.Sat model -> Some (model_to_instance t model)

(* Every fact variable, in registration order (for projected model
   enumeration: distinct fact sets, not distinct auxiliary values). *)
let fact_vars t =
  List.concat_map
    (fun (_, info) -> List.init info.count (fun i -> info.base + i))
    (List.rev t.rels_rev)

let enumerate ?(limit = max_int) t =
  Dpll.enumerate_iter ~budget:t.budget ~nvars:t.nvars ~project:(fact_vars t)
    ~limit (fun f -> iter_clauses t f)
  |> List.map (model_to_instance t)

(* Enumerate the distinct truth-value combinations of the given
   (reified) literals over all models. *)
let enumerate_projections ?(limit = max_int) t lits =
  Dpll.enumerate_iter ~budget:t.budget ~nvars:t.nvars ~project:lits ~limit
    (fun f -> iter_clauses t f)
  |> List.map (fun model -> List.map (Dpll.lit_true model) lits)
