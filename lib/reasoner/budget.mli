(** Resource governance for the reasoning stack.

    Every procedure in this repository sits on a worst-case-exponential
    core — CDCL solving, [domain^arity] grounding, iterative-deepening
    model search — so blowups are the expected regime, not an edge case.
    A {!t} carries an optional wall-clock deadline, a propagation/conflict
    fuel counter and a grounding-clause cap, and is checked at cheap
    cancellation points threaded through {!Dpll}, {!Ground}, {!Engine},
    {!Bounded}, {!Chase} and the analyses built on them.

    Exhaustion is signalled internally by the {!Exhausted} exception,
    which the budgeted entry points of the public modules convert into a
    typed {!outcome} — callers that pass a budget to a [try_*] / [_within]
    function never see an exception, only
    [`Ok v | `Timeout partial | `Out_of_fuel partial].

    Cancellation points are placed so that raising there never corrupts
    shared state: an engine session interrupted by a trip answers later
    (unbudgeted) queries exactly like a fresh session. The test suite
    proves this with {!inject_after}, which trips exhaustion at exactly
    the n-th checkpoint so every cancellation path can be exercised
    deterministically. *)

(** Why a budget tripped. *)
type reason =
  | Timeout  (** the wall-clock deadline passed *)
  | Fuel  (** the fuel counter or the grounding-clause cap ran out *)

(** Raised by cancellation points when the budget is exhausted. Never
    escapes a budgeted public entry point ([try_*] / [_within]): those
    return an {!outcome} instead. *)
exception Exhausted of reason

type t

(** The shared never-trips budget: all checks are no-ops. This is the
    default everywhere a [?budget] parameter is omitted, so unbudgeted
    calls behave exactly as before the governor existed. *)
val unlimited : t

(** [create ?timeout ?fuel ?max_clauses ()] builds a budget.
    [timeout] is in seconds from now; [fuel] bounds the cumulative
    solver effort (propagations + conflicts); [max_clauses] caps the
    number of ground clauses emitted. Omitted dimensions are
    unlimited. *)
val create : ?timeout:float -> ?fuel:int -> ?max_clauses:int -> unit -> t

(** A fresh budget that never trips but counts checkpoints — run a
    workload under an observer to learn how many cancellation points it
    passes, then sweep {!inject_after} over them. *)
val observer : unit -> t

(** [inject_after n] trips [Exhausted reason] at exactly the [n]-th
    checkpoint (0-based), deterministically; [reason] defaults to
    {!Fuel}. For tests of the cancellation paths. *)
val inject_after : ?reason:reason -> int -> t

(** A cancellation point: counts one checkpoint, then trips on fault
    injection, a passed deadline, or an already-tripped budget. *)
val checkpoint : t -> unit

(** [spend t n] is a checkpoint that also debits [n] units of fuel. *)
val spend : t -> int -> unit

(** A checkpoint that also debits one grounding clause from the cap. *)
val charge_clause : t -> unit

(** Checkpoints passed so far (0 for {!unlimited}, which never counts). *)
val checkpoints : t -> int

(** The reason this budget tripped, if it has. *)
val tripped : t -> reason option

(** {2 Typed outcomes} *)

(** The result of a budgeted computation: either the full answer or a
    typed degradation carrying how far the procedure got. *)
type ('a, 'p) outcome = [ `Ok of 'a | `Timeout of 'p | `Out_of_fuel of 'p ]

(** [protect t ~partial f] runs [f], converting an {!Exhausted} trip of
    this budget into [`Timeout (partial ())] or [`Out_of_fuel (partial ())]
    and crediting the trip to {!Stats.global}. *)
val protect : t -> partial:(unit -> 'p) -> (unit -> 'a) -> ('a, 'p) outcome

(** Map the success value of an outcome. *)
val map : ('a -> 'b) -> ('a, 'p) outcome -> ('b, 'p) outcome

(** The trip reason of a degraded outcome, if any. *)
val outcome_reason : ('a, 'p) outcome -> reason option

val pp_reason : reason Fmt.t
