module SMap = Logic.Names.SMap

(* Bounded model finding for arbitrary uGF(=)/uGC2(=) (indeed FO)
   ontologies: search for models of O and D whose domain is dom(D) plus
   [extra] fresh labelled nulls. Sound and complete for refuting
   entailments (a countermodel is a countermodel); complete for
   establishing them only up to the domain bound. GF and GC2 have the
   finite model property, so iterative deepening converges in the limit;
   every experiment records the bound it used.

   All entry points accept a [?budget]; the plain forms raise
   [Budget.Exhausted] on a trip (never with the default unlimited
   budget), and the [try_*] forms return a typed outcome whose partial
   payload is the number of deepening bounds fully completed. *)

let problem ?budget ?extra_signature ~extra o d =
  Problem.build ?budget ?extra_signature ~extra o d

(* A model of O and D over dom(D) + [extra] nulls, if any. *)
let find_model ?budget ?(extra = 0) o d =
  Ground.solve (problem ?budget ~extra o d)

let is_consistent ?budget ?(max_extra = 2) o d =
  let rec go k =
    k <= max_extra
    && (Option.is_some (find_model ?budget ~extra:k o d) || go (k + 1))
  in
  go 0

(* All models over the bounded domain (for materializability search). *)
let models ?budget ?(extra = 0) ?limit o d =
  Ground.enumerate ?limit (problem ?budget ~extra o d)

(* ------------------------------------------------------------------ *)
(* Certain answers                                                      *)
(* ------------------------------------------------------------------ *)

let answer_env (q : Query.Cq.t) tuple =
  List.fold_left2
    (fun env v e -> SMap.add v e env)
    SMap.empty q.Query.Cq.answer tuple

(* A countermodel to O,D |= q(ā) with [extra] fresh nulls, if any. *)
let countermodel ?budget ?(extra = 0) o d (q : Query.Ucq.t) tuple =
  if List.length tuple <> Query.Ucq.arity q then
    invalid_arg "Bounded.countermodel: tuple arity mismatch";
  let g = problem ?budget ~extra_signature:(Query.Ucq.signature q) ~extra o d in
  List.iter
    (fun cq ->
      Ground.assert_negation ~env:(answer_env cq tuple) g
        (Query.Cq.to_formula cq))
    (Query.Ucq.disjuncts q);
  Ground.solve g

(* O,D |= q(ā), up to [max_extra] additional domain elements: no
   countermodel at any bound 0..max_extra. *)
let certain_ucq ?budget ?(max_extra = 2) o d q tuple =
  let rec go k =
    if k > max_extra then true
    else
      match countermodel ?budget ~extra:k o d q tuple with
      | Some _ -> false
      | None -> go (k + 1)
  in
  go 0

let certain_cq ?budget ?max_extra o d q tuple =
  certain_ucq ?budget ?max_extra o d (Query.Ucq.of_cq q) tuple

(* Certain truth of an arbitrary FO(=, counting) formula under an
   assignment: no bounded model of O and D refutes it. Used for
   non-query conditions such as the (=1 P) markers of Section 7. *)
let certain_formula ?budget ?(max_extra = 2) ?(env = SMap.empty) o d f =
  let rec go k =
    if k > max_extra then true
    else begin
      let g =
        problem ?budget ~extra_signature:(Logic.Signature.of_formula f)
          ~extra:k o d
      in
      Ground.assert_negation ~env g f;
      match Ground.solve g with Some _ -> false | None -> go (k + 1)
    end
  in
  go 0

(* A model of O and D over dom(D)+extra nulls satisfying exactly the
   flagged pointed queries: entries (q, ā, true) are asserted, entries
   (q, ā, false) refuted. Used by the materializability search. *)
let pool_exact_model ?budget ?(extra = 0) o d flagged =
  let sig_q =
    List.fold_left
      (fun s (q, _, _) -> Logic.Signature.union s (Query.Cq.signature q))
      Logic.Signature.empty flagged
  in
  let g = problem ?budget ~extra_signature:sig_q ~extra o d in
  List.iter
    (fun (q, tuple, wanted) ->
      let env = answer_env q tuple in
      let f = Query.Cq.to_formula q in
      if wanted then Ground.assert_formula ~env g f
      else Ground.assert_negation ~env g f)
    flagged;
  Ground.solve g

(* One bound of the certain-disjunction test (Theorem 17). *)
let certain_disjunction_at ?budget ~extra o d pointed =
  let sig_q =
    List.fold_left
      (fun s (q, _) -> Logic.Signature.union s (Query.Cq.signature q))
      Logic.Signature.empty pointed
  in
  let g = problem ?budget ~extra_signature:sig_q ~extra o d in
  List.iter
    (fun (cq, tuple) ->
      Ground.assert_negation ~env:(answer_env cq tuple) g
        (Query.Cq.to_formula cq))
    pointed;
  Option.is_none (Ground.solve g)

(* Certain disjunction: O,D |= q1(ā1) ∨ … ∨ qn(ān) for *pointed* queries
   (used for the disjunction property, Theorem 17). *)
let certain_disjunction ?budget ?(max_extra = 2) o d pointed =
  let rec go k =
    k > max_extra
    || (certain_disjunction_at ?budget ~extra:k o d pointed && go (k + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Typed-outcome entry points                                           *)
(* ------------------------------------------------------------------ *)

(* Each iterative-deepening loop reports, on a trip, how many bounds it
   completed: [`Timeout k] means bounds 0..k-1 are fully decided. *)

let deepening budget max_extra step =
  let completed = ref 0 in
  Budget.protect budget
    ~partial:(fun () -> !completed)
    (fun () ->
      let rec go k =
        if k > max_extra then true
        else if step k then begin
          completed := k + 1;
          go (k + 1)
        end
        else false
      in
      go 0)

let try_is_consistent budget ?(max_extra = 2) o d =
  (* consistency deepening stops at the first SAT bound *)
  let completed = ref 0 in
  Budget.protect budget
    ~partial:(fun () -> !completed)
    (fun () ->
      let rec go k =
        if k > max_extra then false
        else if Option.is_some (find_model ~budget ~extra:k o d) then true
        else begin
          completed := k + 1;
          go (k + 1)
        end
      in
      go 0)

let try_certain_ucq budget ?(max_extra = 2) o d q tuple =
  deepening budget max_extra (fun k ->
      Option.is_none (countermodel ~budget ~extra:k o d q tuple))

let try_certain_cq budget ?max_extra o d q tuple =
  try_certain_ucq budget ?max_extra o d (Query.Ucq.of_cq q) tuple

let try_certain_disjunction budget ?(max_extra = 2) o d pointed =
  deepening budget max_extra (fun k ->
      certain_disjunction_at ~budget ~extra:k o d pointed)
