(** The incremental certain-answer engine: ground (O, D, extra fresh
    nulls) once into a persistent CDCL solver, then answer per-tuple
    certainty queries by solving under assumption literals (the negated
    reified query instantiation). Learned clauses and query reifications
    are kept for the session's lifetime, so batches of tuple checks over
    the same (O, D) pay for one grounding.

    Semantics match {!Bounded} exactly: a session at bound [extra]
    searches countermodels over dom(D) plus [extra] labelled nulls; the
    [_upto] helpers reproduce the iterative-deepening ceilings.

    Every operation accepts a [?budget] (default {!Budget.unlimited}).
    The plain forms raise {!Budget.Exhausted} on a trip; the [try_*]
    forms return a typed {!Budget.outcome}. A trip never corrupts a
    session: cancellation points sit where the solver's invariants hold
    and partially-emitted reifications are unreferenced definitional
    fragments, so the session keeps answering later queries exactly like
    a fresh engine. *)

type t

(** Ground (O, D) with exactly [extra] fresh nulls. [extra_signature]
    pre-registers further relations (query relations are also admitted
    on demand later). [stats] defaults to a fresh per-session record;
    every update is mirrored into {!Stats.global}. May raise
    {!Budget.Exhausted} while grounding when budgeted.

    With [~dynamic:true] the instance's facts are carried as persistent
    solver assumptions (their dense-rank fact variables) instead of unit
    clauses, enabling {!insert_facts} / {!retract_facts} without a
    solver rebuild. Dynamic engines mutate their instance in place and
    must not enter the keyed {!session} cache. *)
val create :
  ?stats:Stats.t ->
  ?extra_signature:Logic.Signature.t ->
  ?budget:Budget.t ->
  ?dynamic:bool ->
  extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  t

val ontology : t -> Logic.Ontology.t
val instance : t -> Structure.Instance.t
val extra : t -> int
val stats : t -> Stats.t

(** A model of O and D over the session domain, if any. *)
val find_model : ?budget:Budget.t -> t -> Structure.Instance.t option

(** Memoized: solved once per session (only a completed verdict is
    memoized), sound because query reifications are definitional
    extensions. *)
val is_consistent : ?budget:Budget.t -> t -> bool

(** A countermodel to O,D ⊨ q(ā) over the session domain, if any. *)
val countermodel :
  ?budget:Budget.t ->
  t ->
  Query.Ucq.t ->
  Structure.Element.t list ->
  Structure.Instance.t option

(** Certainty at this session's exact domain bound. *)
val certain_ucq :
  ?budget:Budget.t -> t -> Query.Ucq.t -> Structure.Element.t list -> bool

val certain_cq :
  ?budget:Budget.t -> t -> Query.Cq.t -> Structure.Element.t list -> bool

(** O,D ⊨ q₁(ā₁) ∨ … ∨ qₙ(āₙ) at this session's bound. *)
val certain_disjunction :
  ?budget:Budget.t -> t -> (Query.Cq.t * Structure.Element.t list) list -> bool

(** Certain truth of an FO(=, counting) formula under an assignment. *)
val certain_formula :
  ?budget:Budget.t ->
  ?env:Structure.Element.t Logic.Names.SMap.t ->
  t ->
  Logic.Formula.t ->
  bool

(** {2 Delta maintenance}

    Only engines created with [~dynamic:true] maintain deltas; both
    operations answer [`Needs_rebuild] on static engines, on facts over
    elements outside the grounded domain, and on retractions that would
    vacate a domain element (the grounding quantifies over the original
    domain, so shrinking it requires a reopen to keep verdicts identical
    to a fresh session). On [`Delta] the engine's instance, memoized
    consistency verdict and cached witness are all kept consistent, and
    [engine.delta.*] spans and metrics are emitted. *)

val is_dynamic : t -> bool

(** Add facts as new assumptions. New relations are admitted on demand;
    already-present facts are ignored. *)
val insert_facts :
  ?budget:Budget.t ->
  t ->
  Structure.Instance.fact list ->
  [ `Delta | `Needs_rebuild ]

(** Drop facts by forgetting their assumptions. Absent facts are
    ignored. *)
val retract_facts :
  ?budget:Budget.t ->
  t ->
  Structure.Instance.fact list ->
  [ `Delta | `Needs_rebuild ]

(** {2 The session cache}

    The registry is domain-local: an engine holds single-writer solver
    and grounder state, so engines are never shared across domains —
    each worker domain keeps its own LRU, and {!set_cache_capacity} /
    {!clear_cache} act on the calling domain only.

    Sessions are cached LRU, keyed by (ontology digest, instance digest,
    extra bound); hits and misses are recorded in the stats records. A
    session enters the cache only after its grounding completed, so a
    budget trip during construction never caches a half-built engine. *)

(** Fetch or build the session for (O, D, extra). *)
val session :
  ?stats:Stats.t ->
  ?extra_signature:Logic.Signature.t ->
  ?budget:Budget.t ->
  extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  t

val set_cache_capacity : int -> unit
val clear_cache : unit -> unit

(** Number of currently cached sessions. *)
val cached_sessions : unit -> int

(** {2 Iterative-deepening conveniences}

    Same verdicts as the corresponding {!Bounded} entry points, but
    every bound k in 0..max_extra runs on a (cached) session. *)

val is_consistent_upto :
  ?stats:Stats.t ->
  ?budget:Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  bool

val certain_ucq_upto :
  ?stats:Stats.t ->
  ?budget:Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Ucq.t ->
  Structure.Element.t list ->
  bool

val certain_cq_upto :
  ?stats:Stats.t ->
  ?budget:Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Cq.t ->
  Structure.Element.t list ->
  bool

val certain_disjunction_upto :
  ?stats:Stats.t ->
  ?budget:Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (Query.Cq.t * Structure.Element.t list) list ->
  bool

(** {2 Typed-outcome entry points}

    Session-level forms carry no meaningful partial (unit); the [_upto]
    forms report how many deepening bounds completed before the trip. *)

val try_is_consistent : Budget.t -> t -> (bool, unit) Budget.outcome

val try_certain_ucq :
  Budget.t ->
  t ->
  Query.Ucq.t ->
  Structure.Element.t list ->
  (bool, unit) Budget.outcome

val try_certain_cq :
  Budget.t ->
  t ->
  Query.Cq.t ->
  Structure.Element.t list ->
  (bool, unit) Budget.outcome

val try_is_consistent_upto :
  Budget.t ->
  ?stats:Stats.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (bool, int) Budget.outcome

val try_certain_ucq_upto :
  Budget.t ->
  ?stats:Stats.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Ucq.t ->
  Structure.Element.t list ->
  (bool, int) Budget.outcome
