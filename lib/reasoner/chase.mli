(** The restricted chase for existential rules (TGDs) and equality
    generating dependencies. For Horn ontologies the chase result is a
    universal model, hence computes certain answers exactly. *)

type rule = {
  name : string;
  body : Query.Cq.atom list;
  head : Query.Cq.atom list;
}

type egd = {
  ename : string;
  ebody : Query.Cq.atom list;
  left : string;
  right : string;
}

val rule : ?name:string -> body:Query.Cq.atom list -> head:Query.Cq.atom list -> unit -> rule

val egd :
  ?name:string ->
  body:Query.Cq.atom list ->
  left:string ->
  right:string ->
  unit ->
  egd

exception Egd_failure of string

type result = {
  instance : Structure.Instance.t;
  saturated : bool;
}

(** Run the restricted chase for at most [max_rounds] rounds. Budget
    checkpoints sit between rule triggers, where the chased instance is
    a sound prefix of the universal model.
    @raise Egd_failure when an EGD equates distinct constants.
    @raise Budget.Exhausted on a budget trip. *)
val run :
  ?budget:Budget.t ->
  ?max_rounds:int ->
  ?egds:egd list ->
  rule list ->
  Structure.Instance.t ->
  result

(** Typed form of {!run}: on a trip the partial payload is the chase
    state after the last fully completed round — a sound
    under-approximation of the universal model. *)
val try_run :
  Budget.t ->
  ?max_rounds:int ->
  ?egds:egd list ->
  rule list ->
  Structure.Instance.t ->
  (result, result) Budget.outcome

(** Certain answer over the chase result; inconsistent instances entail
    everything. *)
val certain_cq :
  ?budget:Budget.t ->
  ?max_rounds:int ->
  ?egds:egd list ->
  rule list ->
  Structure.Instance.t ->
  Query.Cq.t ->
  Structure.Element.t list ->
  bool
