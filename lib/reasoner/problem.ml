(* The shared grounding-problem builder: both the one-shot bounded model
   finder (Bounded) and the incremental engine (Engine) search models of
   (O, D) over dom(D) plus [extra] fresh labelled nulls. This module is
   the single place that sets up that domain, the joint signature and
   the base assertions. *)

let domain ~extra d =
  let nulls = Structure.Instance.fresh_nulls extra d in
  let dom = Structure.Instance.domain_list d @ nulls in
  (* Interpretations are non-empty. *)
  if dom = [] then [ Structure.Element.Const "e0" ] else dom

let signature ?(extra_signature = Logic.Signature.empty) o d =
  Logic.Signature.union
    (Logic.Ontology.signature o)
    (Logic.Signature.union (Structure.Instance.signature d) extra_signature)

let build ?budget ?extra_signature ?(assert_facts = true) ~extra o d =
  Obs.Trace.with_span ~attrs:[ ("extra", Obs.Trace.Int extra) ] "ground.build"
  @@ fun () ->
  let dom = domain ~extra d in
  let g =
    Ground.create ?budget ~domain:dom
      ~signature:(signature ?extra_signature o d)
      ()
  in
  (* Dynamic engines assert D's facts as solver assumptions instead of
     unit clauses, so retraction is a dropped assumption, not a rebuild. *)
  if assert_facts then Ground.assert_instance g d;
  List.iter (Ground.assert_formula g) (Logic.Ontology.all_sentences o);
  if Obs.Trace.enabled () then begin
    Obs.Trace.add_attr "domain" (Obs.Trace.Int (List.length dom));
    Obs.Trace.add_attr "vars" (Obs.Trace.Int (Ground.nvars g))
  end;
  g
