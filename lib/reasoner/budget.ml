(* Resource governance: a budget value checked at cheap cancellation
   points throughout the reasoning stack. The design constraints:

   - The unbudgeted path must stay free: [unlimited] is inactive, so a
     checkpoint on it is a single load and branch.
   - Checkpoint counting must be deterministic (no wall-clock input), so
     [inject_after n] reproduces the exact same trip point on every run;
     only the deadline comparison reads the clock, and the count it is
     compared at does not depend on it.
   - Cancellation points are placed only where raising leaves shared
     structures (the CDCL solver, a grounding session) in a state from
     which later unbudgeted calls compute correct answers. *)

type reason = Timeout | Fuel

exception Exhausted of reason

let label_of_reason = function Timeout -> "timeout" | Fuel -> "out_of_fuel"

(* Spans interrupted by a trip get the reason as their status: the
   classifier keeps [Obs] ignorant of this module's exception type. *)
let () =
  Obs.Trace.register_exn_label (function
    | Exhausted r -> Some (label_of_reason r)
    | _ -> None)

type t = {
  active : bool;  (* inactive budgets never count and never trip *)
  deadline : float option;  (* absolute Unix.gettimeofday deadline *)
  fuel_limited : bool;
  mutable fuel : int;  (* remaining, when fuel_limited *)
  clause_limited : bool;
  mutable clauses : int;  (* remaining clause allowance *)
  inject_at : int;  (* checkpoint index to trip at; -1 for none *)
  inject_reason : reason;
  mutable count : int;
  mutable tripped : reason option;
}

let make ~active ?deadline ?fuel ?max_clauses ?(inject_at = -1)
    ?(inject_reason = Fuel) () =
  {
    active;
    deadline;
    fuel_limited = Option.is_some fuel;
    fuel = Option.value fuel ~default:max_int;
    clause_limited = Option.is_some max_clauses;
    clauses = Option.value max_clauses ~default:max_int;
    inject_at;
    inject_reason;
    count = 0;
    tripped = None;
  }

let unlimited = make ~active:false ()

let create ?timeout ?fuel ?max_clauses () =
  make ~active:true
    ?deadline:(Option.map (fun s -> Unix.gettimeofday () +. s) timeout)
    ?fuel ?max_clauses ()

let observer () = make ~active:true ()

let inject_after ?(reason = Fuel) n =
  make ~active:true ~inject_at:(max n 0) ~inject_reason:reason ()

let trip t reason =
  t.tripped <- Some reason;
  raise (Exhausted reason)

(* The deadline is polled once every [deadline_mask + 1] checkpoints:
   checkpoints are frequent enough (per emitted clause, per CDCL
   conflict/decision round) that the extra latency is microseconds,
   while keeping the clock off the hot path. *)
let deadline_mask = 63

let checkpoint t =
  if t.active then begin
    (match t.tripped with Some r -> raise (Exhausted r) | None -> ());
    let n = t.count in
    t.count <- n + 1;
    if n = t.inject_at then trip t t.inject_reason;
    match t.deadline with
    | Some d when n land deadline_mask = 0 && Unix.gettimeofday () > d ->
        trip t Timeout
    | _ -> ()
  end

let spend t n =
  checkpoint t;
  if t.active && t.fuel_limited then begin
    t.fuel <- t.fuel - n;
    if t.fuel < 0 then trip t Fuel
  end

let charge_clause t =
  checkpoint t;
  if t.active && t.clause_limited then begin
    t.clauses <- t.clauses - 1;
    if t.clauses < 0 then trip t Fuel
  end

let checkpoints t = t.count
let tripped t = t.tripped

(* ------------------------------------------------------------------ *)
(* Typed outcomes                                                       *)
(* ------------------------------------------------------------------ *)

type ('a, 'p) outcome = [ `Ok of 'a | `Timeout of 'p | `Out_of_fuel of 'p ]

let protect t ~partial f =
  try `Ok (f ())
  with Exhausted r when t.tripped = Some r ->
    let s = Stats.global () in
    (* The inner spans already unwound (closed with the classifier
       label); the event and status land on the still-open enclosing
       span — for a traced query, its root. *)
    Obs.Trace.event
      ~attrs:[ ("reason", Obs.Trace.Str (label_of_reason r)) ]
      "budget_trip";
    Obs.Trace.set_status (label_of_reason r);
    (match r with
    | Timeout ->
        s.Stats.budget_timeouts <- s.Stats.budget_timeouts + 1;
        `Timeout (partial ())
    | Fuel ->
        s.Stats.budget_fuel_trips <- s.Stats.budget_fuel_trips + 1;
        `Out_of_fuel (partial ()))

let map f = function
  | `Ok v -> `Ok (f v)
  | (`Timeout _ | `Out_of_fuel _) as d -> d

let outcome_reason = function
  | `Ok _ -> None
  | `Timeout _ -> Some Timeout
  | `Out_of_fuel _ -> Some Fuel

let pp_reason ppf = function
  | Timeout -> Fmt.string ppf "timeout"
  | Fuel -> Fmt.string ppf "out of fuel"
