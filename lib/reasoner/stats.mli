(** Instrumentation counters threaded through the incremental engine:
    groundings built, solver invocations, CDCL effort
    (decisions/propagations/conflicts), session-cache hits/misses, and
    wall time per phase. *)

type t = {
  mutable groundings : int;  (** SAT groundings built from scratch *)
  mutable solves : int;  (** solver invocations (incl. assumption solves) *)
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable cache_hits : int;  (** session-cache lookups that reused an engine *)
  mutable cache_misses : int;  (** lookups that had to ground *)
  mutable memo_hits : int;  (** grounding-memo replays of a compiled circuit *)
  mutable memo_misses : int;  (** grounding-memo expansions from scratch *)
  mutable budget_timeouts : int;  (** budget trips on a wall-clock deadline *)
  mutable budget_fuel_trips : int;  (** budget trips on fuel / clause caps *)
  mutable ground_seconds : float;  (** wall time spent grounding *)
  mutable solve_seconds : float;  (** wall time spent in the solver *)
}

val create : unit -> t

(** The calling domain's default record; every engine operation run on
    that domain is mirrored here. Domain-local so parallel workers never
    contend (or tear) on the counters — aggregate across workers by
    summing per-item snapshots ({!add}) at join, as the corpus runner
    does. *)
val global : unit -> t

val reset : t -> unit
val copy : t -> t

(** [add ~into t] accumulates [t]'s counters into [into]. *)
val add : into:t -> t -> unit

(** [timed credit f] runs [f], passing its wall time to [credit]. *)
val timed : (float -> unit) -> (unit -> 'a) -> 'a

val pp : t Fmt.t

(** One-line JSON object with every field of {!t}.

    The schema is stable — bench and CI consumers select keys with jq,
    so adding a field is fine but renaming or removing one is a
    breaking change. Keys (snake_case, in emission order):

    - ["groundings"], ["solves"], ["decisions"], ["propagations"],
      ["conflicts"] : integers
    - ["cache_hits"], ["cache_misses"] : integers
    - ["memo_hits"], ["memo_misses"] : integers (grounding-memo traffic)
    - ["budget_timeouts"], ["budget_fuel_trips"] : integers
    - ["ground_seconds"], ["solve_seconds"] : numbers (seconds, 6
      decimal places) *)
val to_json : t -> string

(** [publish ?prefix ?into t] writes a snapshot of [t] into an
    {!Obs.Metrics} registry (default {!Obs.Metrics.global}) as
    [<prefix>.<field>] — e.g. ["reasoner.cache_hits"] — using the same
    snake_case field names as {!to_json}. Writes are absolute, so
    publishing repeatedly is idempotent rather than accumulating. *)
val publish : ?prefix:string -> ?into:Obs.Metrics.t -> t -> unit
