(* Instrumentation counters for the reasoner. One record is threaded
   through the incremental engine (and mirrored into [global]) so that
   callers — the CLI's --stats flag, the bench harness, tests — can see
   how much work a workload really did: groundings built, solver
   invocations, raw CDCL effort, session-cache effectiveness, and wall
   time split by phase. *)

type t = {
  mutable groundings : int;
  mutable solves : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable budget_timeouts : int;
  mutable budget_fuel_trips : int;
  mutable ground_seconds : float;
  mutable solve_seconds : float;
}

let create () =
  {
    groundings = 0;
    solves = 0;
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    cache_hits = 0;
    cache_misses = 0;
    memo_hits = 0;
    memo_misses = 0;
    budget_timeouts = 0;
    budget_fuel_trips = 0;
    ground_seconds = 0.0;
    solve_seconds = 0.0;
  }

(* The default record, one per domain: every engine operation on that
   domain is mirrored here so a front end can report totals without
   holding every session. Domain-local (rather than one process-wide
   record) because the counters are plain mutable ints — concurrent
   workers would tear and lose updates; the corpus runner instead sums
   per-item snapshots in submission order at join. *)
let global_key = Domain.DLS.new_key create
let global () = Domain.DLS.get global_key

let reset t =
  t.groundings <- 0;
  t.solves <- 0;
  t.decisions <- 0;
  t.propagations <- 0;
  t.conflicts <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.memo_hits <- 0;
  t.memo_misses <- 0;
  t.budget_timeouts <- 0;
  t.budget_fuel_trips <- 0;
  t.ground_seconds <- 0.0;
  t.solve_seconds <- 0.0

let copy t = { t with groundings = t.groundings }

let add ~into t =
  into.groundings <- into.groundings + t.groundings;
  into.solves <- into.solves + t.solves;
  into.decisions <- into.decisions + t.decisions;
  into.propagations <- into.propagations + t.propagations;
  into.conflicts <- into.conflicts + t.conflicts;
  into.cache_hits <- into.cache_hits + t.cache_hits;
  into.cache_misses <- into.cache_misses + t.cache_misses;
  into.memo_hits <- into.memo_hits + t.memo_hits;
  into.memo_misses <- into.memo_misses + t.memo_misses;
  into.budget_timeouts <- into.budget_timeouts + t.budget_timeouts;
  into.budget_fuel_trips <- into.budget_fuel_trips + t.budget_fuel_trips;
  into.ground_seconds <- into.ground_seconds +. t.ground_seconds;
  into.solve_seconds <- into.solve_seconds +. t.solve_seconds

let now = Obs.Clock.now

(* Run [f], crediting its wall time via [credit]. *)
let timed credit f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> credit (now () -. t0)) f

let pp ppf t =
  Fmt.pf ppf
    "@[<v>groundings:   %d (%.4fs)@ solves:       %d (%.4fs)@ decisions:    \
     %d@ propagations: %d@ conflicts:    %d@ cache:        %d hit(s), %d \
     miss(es)@ ground memo:  %d hit(s), %d miss(es)@ budget trips: %d \
     timeout(s), %d fuel@]"
    t.groundings t.ground_seconds t.solves t.solve_seconds t.decisions
    t.propagations t.conflicts t.cache_hits t.cache_misses t.memo_hits
    t.memo_misses t.budget_timeouts t.budget_fuel_trips

(* Field order and key names are the documented schema (stats.mli):
   keep both stable — bench/CI consumers select keys with jq. *)
let to_json t =
  Printf.sprintf
    "{\"groundings\":%d,\"solves\":%d,\"decisions\":%d,\"propagations\":%d,\
     \"conflicts\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\
     \"memo_hits\":%d,\"memo_misses\":%d,\
     \"budget_timeouts\":%d,\"budget_fuel_trips\":%d,\
     \"ground_seconds\":%.6f,\"solve_seconds\":%.6f}"
    t.groundings t.solves t.decisions t.propagations t.conflicts t.cache_hits
    t.cache_misses t.memo_hits t.memo_misses t.budget_timeouts
    t.budget_fuel_trips t.ground_seconds t.solve_seconds

(* Publish a snapshot into a metrics registry under [prefix].<field>,
   with the same snake_case field names as the JSON schema. Absolute
   writes, so re-publication is idempotent. *)
let publish ?(prefix = "reasoner") ?(into = Obs.Metrics.global ()) t =
  let count name v = Obs.Metrics.set_count into (prefix ^ "." ^ name) v in
  count "groundings" t.groundings;
  count "solves" t.solves;
  count "decisions" t.decisions;
  count "propagations" t.propagations;
  count "conflicts" t.conflicts;
  count "cache_hits" t.cache_hits;
  count "cache_misses" t.cache_misses;
  count "memo_hits" t.memo_hits;
  count "memo_misses" t.memo_misses;
  count "budget_timeouts" t.budget_timeouts;
  count "budget_fuel_trips" t.budget_fuel_trips;
  Obs.Metrics.set into (prefix ^ ".ground_seconds") t.ground_seconds;
  Obs.Metrics.set into (prefix ^ ".solve_seconds") t.solve_seconds
