(* A CDCL SAT solver: two-watched-literal propagation, 1-UIP conflict
   analysis with non-chronological backjumping, VSIDS branching with
   phase saving, and geometric restarts. Literals are non-zero integers
   ±v for 1-based variables.

   The solver is persistent and incremental: it survives across solves,
   accepts new variables and clauses between calls (keeping its learned
   clauses), and solves under assumption literals — assumptions are
   planted as the first decision levels, MiniSat-style, so refuting a
   query instantiation needs no clause retraction. The one-shot [solve]
   used by the bounded model finder is a thin wrapper. *)

type result =
  | Sat of bool array  (** index v-1 holds the value of variable v *)
  | Unsat

type t = {
  mutable nvars : int;
  mutable clauses : int array array;  (* original + learned *)
  mutable nclauses : int;
  mutable watches : int list array;  (* literal index -> clause indices *)
  mutable assign : int array;  (* 0 / 1 / -1 *)
  mutable level : int array;
  mutable reason : int array;  (* clause index or -1 *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array;  (* start of each decision level in trail *)
  mutable decision_level : int;
  mutable qhead : int;
  mutable activity : float array;
  mutable var_inc : float;
  mutable heap : int array;  (* binary max-heap of variables by activity *)
  mutable heap_pos : int array;  (* var -> index in heap, -1 if absent *)
  mutable heap_size : int;
  mutable heap_dirty : bool;  (* bulk activity writes since last rebuild *)
  mutable phase : bool array;
  mutable seen : bool array;  (* scratch for conflict analysis *)
  mutable scratch : int array;  (* scratch for clause simplification *)
  mutable broken : bool;  (* refuted at level 0: permanently unsat *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
}

let lit_index l = if l > 0 then 2 * (l - 1) else (2 * (-l - 1)) + 1
let lit_var l = abs l - 1

let value s l =
  let v = s.assign.(lit_var l) in
  if v = 0 then 0 else if (l > 0) = (v = 1) then 1 else -1

let make ~nvars =
  {
    nvars;
    clauses = Array.make 16 [||];
    nclauses = 0;
    watches = Array.make (max (2 * nvars) 2) [];
    assign = Array.make (max nvars 1) 0;
    level = Array.make (max nvars 1) 0;
    reason = Array.make (max nvars 1) (-1);
    trail = Array.make (max nvars 1) 0;
    trail_size = 0;
    trail_lim = Array.make (max nvars 1) 0;
    decision_level = 0;
    qhead = 0;
    activity = Array.make (max nvars 1) 0.0;
    var_inc = 1.0;
    (* all activities start equal (0), so the identity layout is a
       well-formed heap over the initial variables *)
    heap = Array.init (max nvars 1) (fun i -> i);
    heap_pos = Array.init (max nvars 1) (fun i -> if i < nvars then i else -1);
    heap_size = nvars;
    heap_dirty = false;
    phase = Array.make (max nvars 1) false;
    seen = Array.make (max nvars 1) false;
    scratch = Array.make 16 0;
    broken = false;
    n_decisions = 0;
    n_propagations = 0;
    n_conflicts = 0;
  }

let grow_array a n def =
  if Array.length a >= n then a
  else begin
    let bigger = Array.make (max n (2 * Array.length a)) def in
    Array.blit a 0 bigger 0 (Array.length a);
    bigger
  end

(* The VSIDS order heap: a binary max-heap of unassigned variables by
   activity, so [decide] is O(log n) instead of a scan over all
   variables. Deletion is lazy — a variable assigned by propagation
   stays in the heap until [decide] pops and skips it; [cancel_until]
   re-inserts the variables it unassigns. *)

let heap_swap s i j =
  let u = s.heap.(i) and v = s.heap.(j) in
  s.heap.(i) <- v;
  s.heap.(j) <- u;
  s.heap_pos.(v) <- i;
  s.heap_pos.(u) <- j

let heap_sift_up s i =
  let i = ref i in
  let continue = ref (!i > 0) in
  while !continue do
    let p = (!i - 1) / 2 in
    if s.activity.(s.heap.(!i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s !i p;
      i := p;
      continue := !i > 0
    end
    else continue := false
  done

let heap_sift_down s i =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= s.heap_size then continue := false
    else begin
      let r = l + 1 in
      let c =
        if r < s.heap_size && s.activity.(s.heap.(r)) > s.activity.(s.heap.(l))
        then r
        else l
      in
      if s.activity.(s.heap.(c)) > s.activity.(s.heap.(!i)) then begin
        heap_swap s !i c;
        i := c
      end
      else continue := false
    end
  done

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_sift_up s (s.heap_size - 1)
  end

(* Remove and return the maximum-activity variable (heap non-empty). *)
let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    let w = s.heap.(s.heap_size) in
    s.heap.(0) <- w;
    s.heap_pos.(w) <- 0;
    heap_sift_down s 0
  end;
  v

(* Repair the heap order for [v] after its activity increased. *)
let heap_update s v = if s.heap_pos.(v) >= 0 then heap_sift_up s s.heap_pos.(v)

(* Rebuild from every unassigned variable — for callers that overwrite
   activities in bulk (one-shot seeding) rather than through [bump]. *)
let heap_rebuild s =
  Array.fill s.heap_pos 0 (Array.length s.heap_pos) (-1);
  s.heap_size <- 0;
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = 0 then begin
      s.heap.(s.heap_size) <- v;
      s.heap_pos.(v) <- s.heap_size;
      s.heap_size <- s.heap_size + 1
    end
  done;
  for i = (s.heap_size / 2) - 1 downto 0 do
    heap_sift_down s i
  done

(* Admit variables 1..n (idempotent; arrays are reallocated lazily). *)
let ensure_nvars s n =
  if n > s.nvars then begin
    s.watches <- grow_array s.watches (2 * n) [];
    s.assign <- grow_array s.assign n 0;
    s.level <- grow_array s.level n 0;
    s.reason <- grow_array s.reason n (-1);
    s.trail <- grow_array s.trail n 0;
    s.activity <- grow_array s.activity n 0.0;
    s.phase <- grow_array s.phase n false;
    s.seen <- grow_array s.seen n false;
    s.heap <- grow_array s.heap n 0;
    s.heap_pos <- grow_array s.heap_pos n (-1);
    let first = s.nvars in
    s.nvars <- n;
    for v = first to n - 1 do
      heap_insert s v
    done
  end

(* Decision levels can exceed nvars when assumptions open dummy levels. *)
let ensure_levels s n = s.trail_lim <- grow_array s.trail_lim n 0

let counters s = (s.n_decisions, s.n_propagations, s.n_conflicts)

let grow_clauses s =
  if s.nclauses = Array.length s.clauses then begin
    let bigger = Array.make (2 * Array.length s.clauses) [||] in
    Array.blit s.clauses 0 bigger 0 s.nclauses;
    s.clauses <- bigger
  end

(* Enqueue an implied (or decided) literal. *)
let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- (if l > 0 then 1 else -1);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

(* Attach a clause (index ci) to its two watchers. *)
let attach s ci =
  let c = s.clauses.(ci) in
  if Array.length c >= 2 then begin
    s.watches.(lit_index c.(0)) <- ci :: s.watches.(lit_index c.(0));
    s.watches.(lit_index c.(1)) <- ci :: s.watches.(lit_index c.(1))
  end

let cancel_until s lvl =
  if s.decision_level > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = lit_var s.trail.(i) in
      s.phase.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- 0;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.decision_level <- lvl
  end

let ensure_scratch s n =
  if Array.length s.scratch < n then
    s.scratch <- Array.make (max n (2 * Array.length s.scratch)) 0

(* Sort scratch.[0..len) by (|l|, l): this order puts duplicate
   literals and complementary pairs adjacent (with -v just before v).
   Insertion sort for the short clauses that dominate; long clauses
   (counting-quantifier disjunctions reach thousands of literals) would
   make it quadratic, so they go through the standard sort instead. *)
let lit_order x y =
  let kx = abs x and ky = abs y in
  if kx <> ky then compare kx ky else compare x y

let sort_scratch buf len =
  if len > 24 then begin
    let a = Array.sub buf 0 len in
    Array.fast_sort lit_order a;
    Array.blit a 0 buf 0 len
  end
  else
    for i = 1 to len - 1 do
      let x = buf.(i) in
      let kx = abs x in
      let j = ref (i - 1) in
      while
        !j >= 0
        &&
        let y = buf.(!j) in
        let ky = abs y in
        ky > kx || (ky = kx && y > x)
      do
        buf.(!j + 1) <- buf.(!j);
        decr j
      done;
      buf.(!j + 1) <- x
    done

(* One adjacent scan over the sorted buffer: compact away duplicates in
   place, and report a tautology (v and -v both present) as -1. *)
let dedup_scan buf len =
  if len = 0 then 0
  else begin
    let m = ref 1 in
    let taut = ref false in
    (try
       for i = 1 to len - 1 do
         let l = buf.(i) in
         let prev = buf.(!m - 1) in
         if l = prev then ()
         else if l = -prev then begin
           taut := true;
           raise Exit
         end
         else begin
           buf.(!m) <- l;
           incr m
         end
       done
     with Exit -> ());
    if !taut then -1 else !m
  end

(* The shared level-0 assertion core over scratch.[0..len): sort,
   dedup/tautology-scan, then simplify against the permanent assignment
   (satisfied clauses dropped, falsified literals removed). The caller
   has already cancelled open decision levels and checked [broken]. *)
let assert_scratch s len =
  sort_scratch s.scratch len;
  let m = dedup_scan s.scratch len in
  if m >= 0 then begin
    (* abs-sorted, so the last literal carries the largest variable *)
    if m > 0 then ensure_nvars s (abs s.scratch.(m - 1) + 1);
    let sat = ref false in
    let k = ref 0 in
    for i = 0 to m - 1 do
      let l = s.scratch.(i) in
      match value s l with
      | 1 -> sat := true
      | 0 ->
          s.scratch.(!k) <- l;
          incr k
      | _ -> ()
    done;
    if not !sat then begin
      match !k with
      | 0 -> s.broken <- true
      | 1 -> enqueue s s.scratch.(0) (-1)
      | k ->
          grow_clauses s;
          s.clauses.(s.nclauses) <- Array.sub s.scratch 0 k;
          attach s s.nclauses;
          s.nclauses <- s.nclauses + 1
    end
  end

(* Assert a clause at level 0, simplifying against the permanent
   (level-0) assignment. Any open decision levels are cancelled first,
   so this is safe between solves. *)
let assert_clause s lits =
  cancel_until s 0;
  if not s.broken then begin
    let len = List.length lits in
    ensure_scratch s len;
    List.iteri (fun i l -> s.scratch.(i) <- l) lits;
    assert_scratch s len
  end

(* Same, from a [len]-literal slice of a flat buffer at [off] (the
   grounder's clause arena) — no intermediate list. *)
let assert_clause_slice s a off len =
  cancel_until s 0;
  if not s.broken then begin
    ensure_scratch s len;
    Array.blit a off s.scratch 0 len;
    assert_scratch s len
  end

(* Seed branching activity from a clause (Jeroslow-Wang-ish weights),
   for solvers built incrementally rather than via one-shot [solve]. *)
let seed_clause s c =
  let w = 2.0 ** float_of_int (-min (List.length c) 30) in
  List.iter
    (fun l ->
      ensure_nvars s (lit_var l + 1);
      s.activity.(lit_var l) <- s.activity.(lit_var l) +. w)
    c;
  s.heap_dirty <- true

let seed_clause_slice s a off len =
  let w = 2.0 ** float_of_int (-min len 30) in
  for i = off to off + len - 1 do
    let l = a.(i) in
    ensure_nvars s (lit_var l + 1);
    s.activity.(lit_var l) <- s.activity.(lit_var l) +. w
  done;
  s.heap_dirty <- true

(* Two-watched-literal unit propagation; returns the conflicting clause
   index, or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict = -1 && s.qhead < s.trail_size do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    let falsified = -l in
    let wi = lit_index falsified in
    let watching = s.watches.(wi) in
    s.watches.(wi) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest ->
          let c = s.clauses.(ci) in
          (* normalise so that c.(1) = falsified *)
          if c.(0) = falsified then begin
            c.(0) <- c.(1);
            c.(1) <- falsified
          end;
          if value s c.(0) = 1 then begin
            (* already satisfied: keep watching *)
            s.watches.(wi) <- ci :: s.watches.(wi);
            go rest
          end
          else begin
            (* look for a new watch *)
            let n = Array.length c in
            let rec find k =
              if k >= n then -1 else if value s c.(k) <> -1 then k else find (k + 1)
            in
            let k = find 2 in
            if k >= 0 then begin
              c.(1) <- c.(k);
              c.(k) <- falsified;
              s.watches.(lit_index c.(1)) <- ci :: s.watches.(lit_index c.(1));
              go rest
            end
            else begin
              (* unit or conflicting *)
              s.watches.(wi) <- ci :: s.watches.(wi);
              match value s c.(0) with
              | -1 ->
                  conflict := ci;
                  (* keep the remaining watchers *)
                  List.iter
                    (fun cj -> s.watches.(wi) <- cj :: s.watches.(wi))
                    rest
              | 0 ->
                  enqueue s c.(0) ci;
                  go rest
              | _ -> go rest
            end
          end
    in
    go watching
  done;
  !conflict

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  heap_update s v;
  if s.activity.(v) > 1e100 then begin
    (* uniform rescale: relative order unchanged, heap stays valid *)
    for u = 0 to s.nvars - 1 do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay s = s.var_inc <- s.var_inc /. 0.95

(* 1-UIP conflict analysis: learned clause + backjump level. *)
let analyze s conflict_ci =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref 0 (* the asserting literal, set below *) in
  let idx = ref (s.trail_size - 1) in
  let reason_lits ci skip =
    Array.to_list s.clauses.(ci) |> List.filter (fun l -> l <> skip)
  in
  let process lits =
    List.iter
      (fun l ->
        let v = lit_var l in
        if (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          bump s v;
          if s.level.(v) >= s.decision_level then incr counter
          else learned := l :: !learned
        end)
      lits
  in
  process (Array.to_list s.clauses.(conflict_ci));
  let continue = ref true in
  while !continue do
    (* find next seen literal on the trail *)
    while not s.seen.(lit_var s.trail.(!idx)) do
      decr idx
    done;
    let l = s.trail.(!idx) in
    let v = lit_var l in
    s.seen.(v) <- false;
    decr counter;
    decr idx;
    if !counter = 0 then begin
      p := -l;
      continue := false
    end
    else process (reason_lits s.reason.(v) l)
  done;
  let lits = !p :: !learned in
  List.iter (fun l -> s.seen.(lit_var l) <- false) !learned;
  let backjump =
    List.fold_left
      (fun m l -> if l = !p then m else max m (s.level.(lit_var l)))
      0 !learned
  in
  (Array.of_list lits, backjump)

let decide s =
  let best = ref (-1) in
  while !best = -1 && s.heap_size > 0 do
    let v = heap_pop s in
    if s.assign.(v) = 0 then best := v
  done;
  if !best = -1 then None
  else begin
    let v = !best in
    ensure_levels s (s.decision_level + 1);
    s.trail_lim.(s.decision_level) <- s.trail_size;
    s.decision_level <- s.decision_level + 1;
    s.n_decisions <- s.n_decisions + 1;
    enqueue s (if s.phase.(v) then v + 1 else -(v + 1)) (-1);
    Some v
  end

(* Record a learned clause and enqueue its asserting literal (position
   0). Position 1 is set to a literal of maximal level so the watch
   invariant holds after backjumping. Returns false on refutation. *)
let record_learned s lits =
  match Array.length lits with
  | 0 -> false
  | 1 -> (
      match value s lits.(0) with
      | 1 -> true
      | -1 -> false
      | _ ->
          enqueue s lits.(0) (-1);
          true)
  | n ->
      let best = ref 1 in
      for k = 2 to n - 1 do
        if s.level.(lit_var lits.(k)) > s.level.(lit_var lits.(!best)) then
          best := k
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- tmp;
      grow_clauses s;
      s.clauses.(s.nclauses) <- lits;
      attach s s.nclauses;
      enqueue s lits.(0) s.nclauses;
      s.nclauses <- s.nclauses + 1;
      true

(* The CDCL loop, with [assumptions] planted as the first decision
   levels (one level per assumption, dummy levels for assumptions that
   are already true — MiniSat-style). Restarts cancel to level 0 and the
   assumptions are simply re-planted. An assumption found false against
   the level-0-closed prefix refutes the query without poisoning the
   solver: [broken] is only set by genuine level-0 conflicts. *)
let search ?(budget = Budget.unlimited) s assumptions =
  Obs.Trace.with_span
    ~attrs:[ ("vars", Obs.Trace.Int s.nvars) ]
    "dpll.solve"
  @@ fun () ->
  let assumptions = Array.of_list assumptions in
  Array.iter (fun l -> ensure_nvars s (lit_var l + 1)) assumptions;
  ensure_levels s (Array.length assumptions + s.nvars + 1);
  cancel_until s 0;
  if s.heap_dirty then begin
    (* bulk seeding bypassed per-write heap repair; one rebuild here *)
    heap_rebuild s;
    s.heap_dirty <- false
  end;
  if s.broken then false
  else begin
    let restart_budget = ref 100 in
    let conflicts = ref 0 in
    (* Budget checkpoints sit between propagation/decision rounds, where
       the solver's invariants hold: an [Exhausted] raised here leaves a
       consistent trail that the next call simply cancels to level 0, so
       an interrupted solver stays reusable. Fuel is debited by the
       actual CDCL effort (propagations + conflicts) since the previous
       checkpoint. *)
    let effort = ref (s.n_propagations + s.n_conflicts) in
    let tick () =
      let now = s.n_propagations + s.n_conflicts in
      let spent = now - !effort in
      effort := now;
      Budget.spend budget spent
    in
    let rec loop () =
      tick ();
      let conflict = propagate s in
      if conflict >= 0 then begin
        incr conflicts;
        s.n_conflicts <- s.n_conflicts + 1;
        if s.decision_level = 0 then begin
          s.broken <- true;
          false
        end
        else begin
          let learned, backjump = analyze s conflict in
          cancel_until s backjump;
          decay s;
          if not (record_learned s learned) then begin
            s.broken <- true;
            false
          end
          else if !conflicts >= !restart_budget then begin
            restart_budget := !restart_budget + (!restart_budget / 2);
            cancel_until s 0;
            (* Level 0 after a cancel: a safe boundary for a clock read. *)
            Obs.Trace.event
              ~attrs:[ ("conflicts", Obs.Trace.Int !conflicts) ]
              "dpll.restart";
            loop ()
          end
          else loop ()
        end
      end
      else if s.decision_level < Array.length assumptions then begin
        (* plant the next assumption as a decision *)
        let p = assumptions.(s.decision_level) in
        match value s p with
        | -1 -> false (* conflicts with the assumptions: not [broken] *)
        | 1 ->
            (* already true: open a dummy level to keep the
               level <-> assumption-index correspondence *)
            s.trail_lim.(s.decision_level) <- s.trail_size;
            s.decision_level <- s.decision_level + 1;
            loop ()
        | _ ->
            s.trail_lim.(s.decision_level) <- s.trail_size;
            s.decision_level <- s.decision_level + 1;
            enqueue s p (-1);
            loop ()
      end
      else
        match decide s with
        | None -> true (* full assignment: satisfying, left on the trail *)
        | Some _ -> loop ()
    in
    let r = loop () in
    if Obs.Trace.enabled () then
      Obs.Trace.add_attr "budget_checkpoints"
        (Obs.Trace.Int (Budget.checkpoints budget));
    r
  end

(* Satisfiability under assumptions without materializing the model —
   the engine's per-tuple certainty path discards it anyway. *)
let sat_assuming ?budget s assumptions = search ?budget s assumptions

let solve_assuming ?budget s assumptions =
  if search ?budget s assumptions then
    Sat (Array.init s.nvars (fun v -> s.assign.(v) = 1))
  else Unsat

let is_broken s = s.broken

(* ------------------------------------------------------------------ *)
(* One-shot interface (bounded model finder, tests)                     *)
(* ------------------------------------------------------------------ *)

let solve ?budget ~nvars clauses =
  let s = make ~nvars in
  (* seed activities with occurrence counts for a Jeroslow-Wang-ish
     initial order and initial phases *)
  let pos = Array.make (max nvars 1) 0.0
  and neg = Array.make (max nvars 1) 0.0 in
  List.iter
    (fun c ->
      let w = 2.0 ** float_of_int (-min (List.length c) 30) in
      List.iter
        (fun l ->
          if l > 0 then pos.(lit_var l) <- pos.(lit_var l) +. w
          else neg.(lit_var l) <- neg.(lit_var l) +. w)
        c)
    clauses;
  for v = 0 to nvars - 1 do
    s.activity.(v) <- pos.(v) +. neg.(v);
    s.phase.(v) <- pos.(v) >= neg.(v)
  done;
  s.heap_dirty <- true;
  List.iter (fun c -> assert_clause s c) clauses;
  solve_assuming ?budget s []

(* Same one-shot solve over a clause *iterator*: [iter f] must call
   [f buf off len] once per clause, where the clause is the literal
   slice buf.[off..off+len) — the grounder's flat arena feeds this
   directly, with no per-clause list. Iterated twice (phase/activity
   seeding, then assertion), so [iter] must be re-runnable. *)
let solve_iter ?budget ~nvars iter =
  let s = make ~nvars in
  let pos = Array.make (max nvars 1) 0.0
  and neg = Array.make (max nvars 1) 0.0 in
  iter (fun (buf : int array) off len ->
      let w = 2.0 ** float_of_int (-min len 30) in
      for i = off to off + len - 1 do
        let l = buf.(i) in
        if l > 0 then pos.(lit_var l) <- pos.(lit_var l) +. w
        else neg.(lit_var l) <- neg.(lit_var l) +. w
      done);
  for v = 0 to nvars - 1 do
    s.activity.(v) <- pos.(v) +. neg.(v);
    s.phase.(v) <- pos.(v) >= neg.(v)
  done;
  s.heap_dirty <- true;
  iter (fun buf off len -> assert_clause_slice s buf off len);
  solve_assuming ?budget s []

let lit_true model l = if l > 0 then model.(l - 1) else not model.(-l - 1)

(* The shared projected-enumeration loop: each found projection is
   blocked by a new clause, learned clauses kept throughout. *)
let enumerate_loop ~budget ~project ~limit s =
  let rec go acc n =
    if n >= limit then List.rev acc
    else
      match solve_assuming ~budget s [] with
      | Unsat -> List.rev acc
      | Sat model ->
          let blocking =
            List.map (fun l -> if lit_true model l then -l else l) project
          in
          if blocking = [] then List.rev (model :: acc)
          else begin
            assert_clause s blocking;
            go (model :: acc) (n + 1)
          end
  in
  go [] 0

(* Enumerate satisfying assignments projected to the [project]ed
   literals. Incremental: one persistent solver underneath. *)
let enumerate ?(budget = Budget.unlimited) ~nvars ~project ?(limit = max_int)
    clauses =
  let s = make ~nvars in
  List.iter (fun c -> seed_clause s c) clauses;
  List.iter (fun c -> assert_clause s c) clauses;
  enumerate_loop ~budget ~project ~limit s

(* [enumerate] over a clause iterator (see {!solve_iter}). *)
let enumerate_iter ?(budget = Budget.unlimited) ~nvars ~project
    ?(limit = max_int) iter =
  let s = make ~nvars in
  iter (fun (buf : int array) off len ->
      seed_clause_slice s buf off len;
      assert_clause_slice s buf off len);
  enumerate_loop ~budget ~project ~limit s
