(* A CDCL SAT solver: two-watched-literal propagation, 1-UIP conflict
   analysis with non-chronological backjumping, VSIDS branching with
   phase saving, and geometric restarts. Literals are non-zero integers
   ±v for 1-based variables.

   The solver is persistent and incremental: it survives across solves,
   accepts new variables and clauses between calls (keeping its learned
   clauses), and solves under assumption literals — assumptions are
   planted as the first decision levels, MiniSat-style, so refuting a
   query instantiation needs no clause retraction. The one-shot [solve]
   used by the bounded model finder is a thin wrapper. *)

type result =
  | Sat of bool array  (** index v-1 holds the value of variable v *)
  | Unsat

type t = {
  mutable nvars : int;
  mutable clauses : int array array;  (* original + learned *)
  mutable nclauses : int;
  mutable watches : int list array;  (* literal index -> clause indices *)
  mutable assign : int array;  (* 0 / 1 / -1 *)
  mutable level : int array;
  mutable reason : int array;  (* clause index or -1 *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array;  (* start of each decision level in trail *)
  mutable decision_level : int;
  mutable qhead : int;
  mutable activity : float array;
  mutable var_inc : float;
  mutable phase : bool array;
  mutable seen : bool array;  (* scratch for conflict analysis *)
  mutable broken : bool;  (* refuted at level 0: permanently unsat *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
}

let lit_index l = if l > 0 then 2 * (l - 1) else (2 * (-l - 1)) + 1
let lit_var l = abs l - 1

let value s l =
  let v = s.assign.(lit_var l) in
  if v = 0 then 0 else if (l > 0) = (v = 1) then 1 else -1

let make ~nvars =
  {
    nvars;
    clauses = Array.make 16 [||];
    nclauses = 0;
    watches = Array.make (max (2 * nvars) 2) [];
    assign = Array.make (max nvars 1) 0;
    level = Array.make (max nvars 1) 0;
    reason = Array.make (max nvars 1) (-1);
    trail = Array.make (max nvars 1) 0;
    trail_size = 0;
    trail_lim = Array.make (max nvars 1) 0;
    decision_level = 0;
    qhead = 0;
    activity = Array.make (max nvars 1) 0.0;
    var_inc = 1.0;
    phase = Array.make (max nvars 1) false;
    seen = Array.make (max nvars 1) false;
    broken = false;
    n_decisions = 0;
    n_propagations = 0;
    n_conflicts = 0;
  }

let grow_array a n def =
  if Array.length a >= n then a
  else begin
    let bigger = Array.make (max n (2 * Array.length a)) def in
    Array.blit a 0 bigger 0 (Array.length a);
    bigger
  end

(* Admit variables 1..n (idempotent; arrays are reallocated lazily). *)
let ensure_nvars s n =
  if n > s.nvars then begin
    s.watches <- grow_array s.watches (2 * n) [];
    s.assign <- grow_array s.assign n 0;
    s.level <- grow_array s.level n 0;
    s.reason <- grow_array s.reason n (-1);
    s.trail <- grow_array s.trail n 0;
    s.activity <- grow_array s.activity n 0.0;
    s.phase <- grow_array s.phase n false;
    s.seen <- grow_array s.seen n false;
    s.nvars <- n
  end

(* Decision levels can exceed nvars when assumptions open dummy levels. *)
let ensure_levels s n = s.trail_lim <- grow_array s.trail_lim n 0

let counters s = (s.n_decisions, s.n_propagations, s.n_conflicts)

let grow_clauses s =
  if s.nclauses = Array.length s.clauses then begin
    let bigger = Array.make (2 * Array.length s.clauses) [||] in
    Array.blit s.clauses 0 bigger 0 s.nclauses;
    s.clauses <- bigger
  end

(* Enqueue an implied (or decided) literal. *)
let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- (if l > 0 then 1 else -1);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

(* Attach a clause (index ci) to its two watchers. *)
let attach s ci =
  let c = s.clauses.(ci) in
  if Array.length c >= 2 then begin
    s.watches.(lit_index c.(0)) <- ci :: s.watches.(lit_index c.(0));
    s.watches.(lit_index c.(1)) <- ci :: s.watches.(lit_index c.(1))
  end

let cancel_until s lvl =
  if s.decision_level > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = lit_var s.trail.(i) in
      s.phase.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- 0;
      s.reason.(v) <- -1
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.decision_level <- lvl
  end

(* Assert a clause at level 0, simplifying against the permanent
   (level-0) assignment: satisfied clauses are dropped, falsified
   literals removed. Any open decision levels are cancelled first, so
   this is safe between solves. *)
let assert_clause s lits =
  cancel_until s 0;
  if not s.broken then begin
    let c = List.sort_uniq compare lits in
    if List.exists (fun l -> List.mem (-l) c) c then () (* tautology *)
    else begin
      List.iter (fun l -> ensure_nvars s (lit_var l + 1)) c;
      if not (List.exists (fun l -> value s l = 1) c) then begin
        match List.filter (fun l -> value s l <> -1) c with
        | [] -> s.broken <- true
        | [ l ] -> enqueue s l (-1)
        | simplified ->
            grow_clauses s;
            s.clauses.(s.nclauses) <- Array.of_list simplified;
            attach s s.nclauses;
            s.nclauses <- s.nclauses + 1
      end
    end
  end

(* Seed branching activity from a clause (Jeroslow-Wang-ish weights),
   for solvers built incrementally rather than via one-shot [solve]. *)
let seed_clause s c =
  let w = 2.0 ** float_of_int (-min (List.length c) 30) in
  List.iter
    (fun l ->
      ensure_nvars s (lit_var l + 1);
      s.activity.(lit_var l) <- s.activity.(lit_var l) +. w)
    c

(* Two-watched-literal unit propagation; returns the conflicting clause
   index, or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict = -1 && s.qhead < s.trail_size do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    let falsified = -l in
    let wi = lit_index falsified in
    let watching = s.watches.(wi) in
    s.watches.(wi) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest ->
          let c = s.clauses.(ci) in
          (* normalise so that c.(1) = falsified *)
          if c.(0) = falsified then begin
            c.(0) <- c.(1);
            c.(1) <- falsified
          end;
          if value s c.(0) = 1 then begin
            (* already satisfied: keep watching *)
            s.watches.(wi) <- ci :: s.watches.(wi);
            go rest
          end
          else begin
            (* look for a new watch *)
            let n = Array.length c in
            let rec find k =
              if k >= n then -1 else if value s c.(k) <> -1 then k else find (k + 1)
            in
            let k = find 2 in
            if k >= 0 then begin
              c.(1) <- c.(k);
              c.(k) <- falsified;
              s.watches.(lit_index c.(1)) <- ci :: s.watches.(lit_index c.(1));
              go rest
            end
            else begin
              (* unit or conflicting *)
              s.watches.(wi) <- ci :: s.watches.(wi);
              match value s c.(0) with
              | -1 ->
                  conflict := ci;
                  (* keep the remaining watchers *)
                  List.iter
                    (fun cj -> s.watches.(wi) <- cj :: s.watches.(wi))
                    rest
              | 0 ->
                  enqueue s c.(0) ci;
                  go rest
              | _ -> go rest
            end
          end
    in
    go watching
  done;
  !conflict

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 0 to s.nvars - 1 do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay s = s.var_inc <- s.var_inc /. 0.95

(* 1-UIP conflict analysis: learned clause + backjump level. *)
let analyze s conflict_ci =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref 0 (* the asserting literal, set below *) in
  let idx = ref (s.trail_size - 1) in
  let reason_lits ci skip =
    Array.to_list s.clauses.(ci) |> List.filter (fun l -> l <> skip)
  in
  let process lits =
    List.iter
      (fun l ->
        let v = lit_var l in
        if (not s.seen.(v)) && s.level.(v) > 0 then begin
          s.seen.(v) <- true;
          bump s v;
          if s.level.(v) >= s.decision_level then incr counter
          else learned := l :: !learned
        end)
      lits
  in
  process (Array.to_list s.clauses.(conflict_ci));
  let continue = ref true in
  while !continue do
    (* find next seen literal on the trail *)
    while not s.seen.(lit_var s.trail.(!idx)) do
      decr idx
    done;
    let l = s.trail.(!idx) in
    let v = lit_var l in
    s.seen.(v) <- false;
    decr counter;
    decr idx;
    if !counter = 0 then begin
      p := -l;
      continue := false
    end
    else process (reason_lits s.reason.(v) l)
  done;
  let lits = !p :: !learned in
  List.iter (fun l -> s.seen.(lit_var l) <- false) !learned;
  let backjump =
    List.fold_left
      (fun m l -> if l = !p then m else max m (s.level.(lit_var l)))
      0 !learned
  in
  (Array.of_list lits, backjump)

let decide s =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  if !best = -1 then None
  else begin
    let v = !best in
    ensure_levels s (s.decision_level + 1);
    s.trail_lim.(s.decision_level) <- s.trail_size;
    s.decision_level <- s.decision_level + 1;
    s.n_decisions <- s.n_decisions + 1;
    enqueue s (if s.phase.(v) then v + 1 else -(v + 1)) (-1);
    Some v
  end

(* Record a learned clause and enqueue its asserting literal (position
   0). Position 1 is set to a literal of maximal level so the watch
   invariant holds after backjumping. Returns false on refutation. *)
let record_learned s lits =
  match Array.length lits with
  | 0 -> false
  | 1 -> (
      match value s lits.(0) with
      | 1 -> true
      | -1 -> false
      | _ ->
          enqueue s lits.(0) (-1);
          true)
  | n ->
      let best = ref 1 in
      for k = 2 to n - 1 do
        if s.level.(lit_var lits.(k)) > s.level.(lit_var lits.(!best)) then
          best := k
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- tmp;
      grow_clauses s;
      s.clauses.(s.nclauses) <- lits;
      attach s s.nclauses;
      enqueue s lits.(0) s.nclauses;
      s.nclauses <- s.nclauses + 1;
      true

(* The CDCL loop, with [assumptions] planted as the first decision
   levels (one level per assumption, dummy levels for assumptions that
   are already true — MiniSat-style). Restarts cancel to level 0 and the
   assumptions are simply re-planted. An assumption found false against
   the level-0-closed prefix refutes the query without poisoning the
   solver: [broken] is only set by genuine level-0 conflicts. *)
let solve_assuming ?(budget = Budget.unlimited) s assumptions =
  Obs.Trace.with_span
    ~attrs:[ ("vars", Obs.Trace.Int s.nvars) ]
    "dpll.solve"
  @@ fun () ->
  let assumptions = Array.of_list assumptions in
  Array.iter (fun l -> ensure_nvars s (lit_var l + 1)) assumptions;
  ensure_levels s (Array.length assumptions + s.nvars + 1);
  cancel_until s 0;
  if s.broken then Unsat
  else begin
    let restart_budget = ref 100 in
    let conflicts = ref 0 in
    (* Budget checkpoints sit between propagation/decision rounds, where
       the solver's invariants hold: an [Exhausted] raised here leaves a
       consistent trail that the next call simply cancels to level 0, so
       an interrupted solver stays reusable. Fuel is debited by the
       actual CDCL effort (propagations + conflicts) since the previous
       checkpoint. *)
    let effort = ref (s.n_propagations + s.n_conflicts) in
    let tick () =
      let now = s.n_propagations + s.n_conflicts in
      let spent = now - !effort in
      effort := now;
      Budget.spend budget spent
    in
    let rec loop () =
      tick ();
      let conflict = propagate s in
      if conflict >= 0 then begin
        incr conflicts;
        s.n_conflicts <- s.n_conflicts + 1;
        if s.decision_level = 0 then begin
          s.broken <- true;
          Unsat
        end
        else begin
          let learned, backjump = analyze s conflict in
          cancel_until s backjump;
          decay s;
          if not (record_learned s learned) then begin
            s.broken <- true;
            Unsat
          end
          else if !conflicts >= !restart_budget then begin
            restart_budget := !restart_budget + (!restart_budget / 2);
            cancel_until s 0;
            (* Level 0 after a cancel: a safe boundary for a clock read. *)
            Obs.Trace.event
              ~attrs:[ ("conflicts", Obs.Trace.Int !conflicts) ]
              "dpll.restart";
            loop ()
          end
          else loop ()
        end
      end
      else if s.decision_level < Array.length assumptions then begin
        (* plant the next assumption as a decision *)
        let p = assumptions.(s.decision_level) in
        match value s p with
        | -1 -> Unsat (* conflicts with the assumptions: not [broken] *)
        | 1 ->
            (* already true: open a dummy level to keep the
               level <-> assumption-index correspondence *)
            s.trail_lim.(s.decision_level) <- s.trail_size;
            s.decision_level <- s.decision_level + 1;
            loop ()
        | _ ->
            s.trail_lim.(s.decision_level) <- s.trail_size;
            s.decision_level <- s.decision_level + 1;
            enqueue s p (-1);
            loop ()
      end
      else
        match decide s with
        | None -> Sat (Array.init s.nvars (fun v -> s.assign.(v) = 1))
        | Some _ -> loop ()
    in
    let r = loop () in
    if Obs.Trace.enabled () then
      Obs.Trace.add_attr "budget_checkpoints"
        (Obs.Trace.Int (Budget.checkpoints budget));
    r
  end

let is_broken s = s.broken

(* ------------------------------------------------------------------ *)
(* One-shot interface (bounded model finder, tests)                     *)
(* ------------------------------------------------------------------ *)

let solve ?budget ~nvars clauses =
  let s = make ~nvars in
  (* seed activities with occurrence counts for a Jeroslow-Wang-ish
     initial order and initial phases *)
  let pos = Array.make (max nvars 1) 0.0
  and neg = Array.make (max nvars 1) 0.0 in
  List.iter
    (fun c ->
      let w = 2.0 ** float_of_int (-min (List.length c) 30) in
      List.iter
        (fun l ->
          if l > 0 then pos.(lit_var l) <- pos.(lit_var l) +. w
          else neg.(lit_var l) <- neg.(lit_var l) +. w)
        c)
    clauses;
  for v = 0 to nvars - 1 do
    s.activity.(v) <- pos.(v) +. neg.(v);
    s.phase.(v) <- pos.(v) >= neg.(v)
  done;
  List.iter (fun c -> assert_clause s c) clauses;
  solve_assuming ?budget s []

let lit_true model l = if l > 0 then model.(l - 1) else not model.(-l - 1)

(* Enumerate satisfying assignments projected to the [project]ed
   literals. Incremental: one persistent solver, each found projection
   blocked by a new clause, learned clauses kept throughout. *)
let enumerate ?(budget = Budget.unlimited) ~nvars ~project ?(limit = max_int)
    clauses =
  let s = make ~nvars in
  List.iter (fun c -> seed_clause s c) clauses;
  List.iter (fun c -> assert_clause s c) clauses;
  let rec go acc n =
    if n >= limit then List.rev acc
    else
      match solve_assuming ~budget s [] with
      | Unsat -> List.rev acc
      | Sat model ->
          let blocking =
            List.map (fun l -> if lit_true model l then -l else l) project
          in
          if blocking = [] then List.rev (model :: acc)
          else begin
            assert_clause s blocking;
            go (model :: acc) (n + 1)
          end
  in
  go [] 0
