(* Minimal JSON rendering shared by the exporters (the toolchain ships
   no JSON library). Only what traces and metrics need: escaped
   strings, objects and arrays from already-rendered members. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* [members] are already-rendered JSON values. *)
let obj members =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> escape k ^ ":" ^ v) members)
  ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f
