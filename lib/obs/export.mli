(** Exporters for a filled {!Trace} collector. *)

type format =
  | Chrome  (** Chrome trace-event JSON: chrome://tracing, Perfetto *)
  | Jsonl  (** one span (then one event) per line *)

(** ["chrome"] / ["jsonl"]. *)
val format_of_string : string -> format option

(** The Chrome trace-event rendering: a JSON object whose
    ["traceEvents"] array holds one complete ("X") event per span —
    [args] carrying [span_id], [parent_id], the span attributes and
    [status] — and one instant ("i") event per retained ring-buffer
    event. Timestamps are microseconds from the collector's earliest
    record. *)
val chrome : Trace.t -> string

(** One JSON object per line: spans first (in opening order), then the
    retained events. *)
val jsonl : Trace.t -> string

val render : format -> Trace.t -> string

(** Render and write to [path]. *)
val to_file : format -> Trace.t -> string -> unit

(** {2 Per-phase profile} *)

type profile_row = {
  pname : string;  (** span name *)
  count : int;
  total_s : float;  (** summed span durations *)
  self_s : float;  (** total minus time spent in direct children *)
}

(** Aggregate spans by name, sorted by descending self time. *)
val profile : Trace.t -> profile_row list

val pp_profile : profile_row list Fmt.t
