(* Hierarchical tracing: spans (named intervals with attributes and a
   parent) plus a bounded ring buffer of instant events. One collector
   is installed per domain; when none is installed every entry point
   is a no-op whose cost is a DLS load and branch — the reasoning
   stack is instrumented unconditionally and relies on this.

   Invariants the exporters and tests lean on:
   - timestamps come only from Obs.Clock (monotone), and only at span
     open/close and event emission — never from inside solver-critical
     sections (the instrumented modules guarantee the placement, this
     module guarantees there is no other clock read);
   - every span opened by [with_span] is closed exactly once, on both
     the normal and the exceptional exit (so traces of budget-tripped
     runs have no dangling spans);
   - span ids are dense 0..n-1 in opening order, and a child's id is
     greater than its parent's. *)

type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

let pp_attr ppf = function
  | Str s -> Fmt.string ppf s
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Bool b -> Fmt.bool ppf b

type span = {
  id : int;
  parent : int;  (* -1 for roots *)
  name : string;
  start_s : float;  (* Clock.now at open *)
  mutable dur_s : float;  (* -1.0 while open *)
  mutable attrs : (string * attr) list;  (* reverse insertion order *)
  mutable status : string option;  (* None = ok *)
}

type event = {
  ts_s : float;
  span_id : int;  (* enclosing open span, -1 if none *)
  ename : string;
  eattrs : (string * attr) list;
}

type t = {
  mutable spans : span array;
  mutable nspans : int;
  ring : event option array;
  mutable nevents : int;  (* total ever emitted; ring keeps the tail *)
  mutable stack : int list;  (* open span ids, innermost first *)
}

let default_ring_capacity = 4096

let create ?(ring_capacity = default_ring_capacity) () =
  {
    spans = [||];
    nspans = 0;
    ring = Array.make (max ring_capacity 1) None;
    nevents = 0;
    stack = [];
  }

(* ------------------------------------------------------------------ *)
(* The ambient collector                                                *)
(* ------------------------------------------------------------------ *)

(* The installed collector is DOMAIN-LOCAL: a collector is a
   single-writer structure (span array, stack, ring), so sharing one
   across domains would race on every record. Each worker domain starts
   with no collector; a parallel runner that wants worker traces runs
   each item under [collect] on the worker and merges the per-item
   collectors into the parent's at join via [absorb] (tagging the
   adopted roots with a [domain] attribute). See DESIGN.md §5,
   "Domain-locality invariants". *)

let state : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install c = Domain.DLS.set state (Some c)

let uninstall () =
  let c = Domain.DLS.get state in
  Domain.DLS.set state None;
  c

let active () = Domain.DLS.get state
let enabled () = Option.is_some (Domain.DLS.get state)

(* [collect f] runs [f] under a fresh installed collector and returns
   its result together with the collector (uninstalled again), restoring
   whatever was installed before. *)
let collect ?ring_capacity f =
  let previous = Domain.DLS.get state in
  let c = create ?ring_capacity () in
  Domain.DLS.set state (Some c);
  let r =
    Fun.protect ~finally:(fun () -> Domain.DLS.set state previous) f
  in
  (r, c)

(* Classifiers mapping exceptions to span-status labels, registered by
   client libraries (e.g. Reasoner.Budget maps its Exhausted trips to
   "timeout"/"out_of_fuel"). First match wins; the fallback is the
   printed exception. Registration happens at module initialisation on
   the main domain, before any worker can spawn — spawned domains
   observe the completed list through the domain-spawn happens-before
   edge, so the plain ref is safe. *)
let exn_labels : (exn -> string option) list ref = ref []
let register_exn_label f = exn_labels := f :: !exn_labels

let label_of_exn exn =
  match List.find_map (fun f -> f exn) !exn_labels with
  | Some l -> l
  | None -> Printexc.to_string exn

(* ------------------------------------------------------------------ *)
(* Recording                                                            *)
(* ------------------------------------------------------------------ *)

let grow c =
  if c.nspans = Array.length c.spans then begin
    let cap = max 64 (2 * Array.length c.spans) in
    let bigger =
      Array.make cap
        { id = -1; parent = -1; name = ""; start_s = 0.0; dur_s = 0.0;
          attrs = []; status = None }
    in
    Array.blit c.spans 0 bigger 0 c.nspans;
    c.spans <- bigger
  end

let open_span c name attrs =
  grow c;
  let id = c.nspans in
  let parent = match c.stack with [] -> -1 | p :: _ -> p in
  c.spans.(id) <-
    { id; parent; name; start_s = Clock.now (); dur_s = -1.0;
      attrs = List.rev attrs; status = None };
  c.nspans <- id + 1;
  c.stack <- id :: c.stack;
  id

let close_span c id status =
  let s = c.spans.(id) in
  if s.dur_s < 0.0 then begin
    s.dur_s <- Clock.now () -. s.start_s;
    (match status with
    | Some _ when s.status = None -> s.status <- status
    | _ -> ())
  end;
  (* Pop through [id]: with_span pairs opens and closes, so the stack
     prefix above [id] can only be spans abandoned by an exception that
     bypassed their closer — close them too rather than leak them. *)
  let rec pop = function
    | [] -> []
    | top :: rest ->
        if top = id then rest
        else begin
          let o = c.spans.(top) in
          if o.dur_s < 0.0 then o.dur_s <- Clock.now () -. o.start_s;
          pop rest
        end
  in
  c.stack <- pop c.stack

let with_span ?(attrs = []) name f =
  match Domain.DLS.get state with
  | None -> f ()
  | Some c -> (
      let id = open_span c name attrs in
      match f () with
      | v ->
          close_span c id None;
          v
      | exception exn ->
          close_span c id (Some (label_of_exn exn));
          raise exn)

let event ?(attrs = []) name =
  match Domain.DLS.get state with
  | None -> ()
  | Some c ->
      let span_id = match c.stack with [] -> -1 | s :: _ -> s in
      let e = { ts_s = Clock.now (); span_id; ename = name; eattrs = attrs } in
      c.ring.(c.nevents mod Array.length c.ring) <- Some e;
      c.nevents <- c.nevents + 1

let add_attr name v =
  match Domain.DLS.get state with
  | None -> ()
  | Some c -> (
      match c.stack with
      | [] -> ()
      | id :: _ ->
          let s = c.spans.(id) in
          s.attrs <- (name, v) :: s.attrs)

let set_status status =
  match Domain.DLS.get state with
  | None -> ()
  | Some c -> (
      match c.stack with
      | [] -> ()
      | id :: _ -> c.spans.(id).status <- Some status)

(* ------------------------------------------------------------------ *)
(* Introspection                                                        *)
(* ------------------------------------------------------------------ *)

let spans c = Array.to_list (Array.sub c.spans 0 c.nspans)

let events c =
  let cap = Array.length c.ring in
  let first = max 0 (c.nevents - cap) in
  List.filter_map
    (fun i -> c.ring.(i mod cap))
    (List.init (c.nevents - first) (fun k -> first + k))

let dropped_events c = max 0 (c.nevents - Array.length c.ring)
let span_count c = c.nspans
let open_spans c = List.length c.stack

(* Structural well-formedness: every span closed, parents opened before
   and closed after their children (within float resolution), parent
   ids smaller than child ids. *)
let well_formed c =
  c.stack = []
  && List.for_all
       (fun s ->
         s.dur_s >= 0.0
         && (s.parent = -1
            || s.parent < s.id
               &&
               let p = c.spans.(s.parent) in
               p.start_s <= s.start_s
               && p.start_s +. p.dur_s >= s.start_s +. s.dur_s))
       (spans c)

(* ------------------------------------------------------------------ *)
(* Cross-collector merge                                                *)
(* ------------------------------------------------------------------ *)

(* [absorb ~into child] appends [child]'s record into [into]: span ids
   shift by [into]'s span count (keeping them dense, in adoption order,
   with parent < id), [child]'s roots become children of [into]'s
   innermost open span (or roots, if none is open) and carry [attrs] —
   the parallel runner tags them with the worker's domain index and the
   item name. Events replay oldest-first with remapped span ids.
   Timestamps need no adjustment: Clock.now is monotone across domains.
   [child] must be quiescent (its recording run finished) and is not
   modified. *)
let absorb ?(attrs = []) ~into child =
  let off = into.nspans in
  let adopt = match into.stack with [] -> -1 | p :: _ -> p in
  for i = 0 to child.nspans - 1 do
    grow into;
    let s = child.spans.(i) in
    let root = s.parent = -1 in
    into.spans.(into.nspans) <-
      {
        s with
        id = s.id + off;
        parent = (if root then adopt else s.parent + off);
        attrs = (if root then List.rev_append attrs s.attrs else s.attrs);
      };
    into.nspans <- into.nspans + 1
  done;
  List.iter
    (fun e ->
      let span_id = if e.span_id = -1 then adopt else e.span_id + off in
      into.ring.(into.nevents mod Array.length into.ring) <-
        Some { e with span_id };
      into.nevents <- into.nevents + 1)
    (events child)
