(* Leveled structured logging for the long-lived processes (the serve
   daemon). Records go to one out_channel (stderr by default) in either
   human text or newline-JSON; the JSON path reuses Obs.Json so records
   are parseable with the same tooling as the wire protocol. A single
   mutex serializes emission — logging is cold-path by design (the hot
   request path records metrics/spans, not log lines). *)

type level = Debug | Info | Warn | Error
type format = Text | Json

type field =
  | Str of string * string
  | Int of string * int
  | Float of string * float
  | Bool of string * bool

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type config = {
  mutable min_level : level;
  mutable fmt : format;
  mutable out : out_channel;
}

let cfg = { min_level = Info; fmt = Text; out = stderr }
let mutex = Mutex.create ()

let set_level l = cfg.min_level <- l
let set_format f = cfg.fmt <- f
let set_out oc = cfg.out <- oc
let level () = cfg.min_level

let enabled l = severity l >= severity cfg.min_level

let field_json = function
  | Str (k, v) -> (k, Json.escape v)
  | Int (k, v) -> (k, string_of_int v)
  | Float (k, v) -> (k, Json.number v)
  | Bool (k, v) -> (k, string_of_bool v)

let field_text = function
  | Str (k, v) ->
      if String.contains v ' ' then Printf.sprintf "%s=%S" k v
      else Printf.sprintf "%s=%s" k v
  | Int (k, v) -> Printf.sprintf "%s=%d" k v
  | Float (k, v) -> Printf.sprintf "%s=%g" k v
  | Bool (k, v) -> Printf.sprintf "%s=%b" k v

let render level msg fields =
  match cfg.fmt with
  | Json ->
      let members =
        ("ts", Json.number (Clock.now ()))
        :: ("level", Json.escape (level_to_string level))
        :: ("msg", Json.escape msg)
        :: List.map field_json fields
      in
      Json.obj members
  | Text ->
      let parts =
        Printf.sprintf "omqd: [%s] %s" (level_to_string level) msg
        :: List.map field_text fields
      in
      String.concat " " parts

let log ?(fields = []) level msg =
  if enabled level then begin
    let line = render level msg fields in
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        output_string cfg.out line;
        output_char cfg.out '\n';
        flush cfg.out)
  end

let debug ?fields msg = log ?fields Debug msg
let info ?fields msg = log ?fields Info msg
let warn ?fields msg = log ?fields Warn msg
let error ?fields msg = log ?fields Error msg
