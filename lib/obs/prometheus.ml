(* Prometheus text exposition (format 0.0.4) over Metrics registries.

   The registry speaks dotted snake_case ("serve.journal.appends");
   Prometheus names are [a-zA-Z_:][a-zA-Z0-9_:]*, so every other
   character is mapped to '_' and counters get the conventional
   "_total" suffix ("serve_journal_appends_total"). The mapping is
   documented in DESIGN.md — renaming either side is a schema change
   for scrapers. *)

let mangle name =
  let b = Buffer.create (String.length name + 8) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
          if i = 0 then Buffer.add_char b '_';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let counter_name name =
  let m = mangle name in
  if
    String.length m >= 6
    && String.sub m (String.length m - 6) 6 = "_total"
  then m
  else m ^ "_total"

(* HELP text: escape backslash and newline. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Label values: escape backslash, double quote and newline. *)
let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (mangle k) (escape_label v))
             labels)
      ^ "}"

(* %g prints the 1-2.5-5 bucket bounds exactly ("2.5e-06", "0.1"). *)
let bound_str v = Printf.sprintf "%g" v

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

type kind = KCounter | KGauge | KHistogram

let kind_of t name =
  match Metrics.counter_value t name with
  | Some _ -> Some KCounter
  | None -> (
      match Metrics.gauge_value t name with
      | Some _ -> Some KGauge
      | None -> (
          match Metrics.histogram_stats t name with
          | Some _ -> Some KHistogram
          | None -> None))

let type_str = function
  | KCounter -> "counter"
  | KGauge -> "gauge"
  | KHistogram -> "histogram"

(* One exposition document over several registries distinguished by
   label sets (the daemon scrapes its loop registry unlabelled and one
   snapshot-merged registry per worker as domain="i"). All samples of
   a name are grouped under a single HELP/TYPE block, as the format
   requires. *)
let render ?(help = fun _ -> None) sources =
  let buf = Buffer.create 4096 in
  (* Stable name order: union of all source names, sorted. *)
  let all_names =
    List.sort_uniq compare
      (List.concat_map (fun (_, t) -> Metrics.names t) sources)
  in
  List.iter
    (fun name ->
      (* The first source that has the name fixes its kind; sources
         disagreeing on kind for the same name would produce an invalid
         document, so mismatching samples are skipped. *)
      let kind =
        List.find_map (fun (_, t) -> kind_of t name) sources
      in
      match kind with
      | None -> ()
      | Some kind ->
          let pname =
            match kind with
            | KCounter -> counter_name name
            | KGauge | KHistogram -> mangle name
          in
          let help_text =
            match help name with Some h -> h | None -> "omq metric " ^ name
          in
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" pname (escape_help help_text));
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s %s\n" pname (type_str kind));
          List.iter
            (fun (labels, t) ->
              match (kind, kind_of t name) with
              | KCounter, Some KCounter ->
                  let v = Option.get (Metrics.counter_value t name) in
                  Buffer.add_string buf
                    (Printf.sprintf "%s%s %d\n" pname (render_labels labels) v)
              | KGauge, Some KGauge ->
                  let v = Option.get (Metrics.gauge_value t name) in
                  Buffer.add_string buf
                    (Printf.sprintf "%s%s %s\n" pname (render_labels labels)
                       (float_str v))
              | KHistogram, Some KHistogram ->
                  let count, sum, _, _ =
                    Option.get (Metrics.histogram_stats t name)
                  in
                  let buckets =
                    Option.get (Metrics.histogram_buckets t name)
                  in
                  let cum = ref 0 in
                  Array.iteri
                    (fun i n ->
                      if i < Array.length Metrics.bucket_bounds then begin
                        cum := !cum + n;
                        let labels =
                          labels
                          @ [ ("le", bound_str Metrics.bucket_bounds.(i)) ]
                        in
                        Buffer.add_string buf
                          (Printf.sprintf "%s_bucket%s %d\n" pname
                             (render_labels labels) !cum)
                      end)
                    buckets;
                  let inf_labels = labels @ [ ("le", "+Inf") ] in
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" pname
                       (render_labels inf_labels) count);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_sum%s %s\n" pname
                       (render_labels labels) (float_str sum));
                  Buffer.add_string buf
                    (Printf.sprintf "%s_count%s %d\n" pname
                       (render_labels labels) count)
              | _ -> ())
            sources)
    all_names;
  Buffer.contents buf
