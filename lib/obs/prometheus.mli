(** Prometheus text exposition (format 0.0.4) for {!Metrics}
    registries.

    Naming: dotted registry names map to ['_']-separated Prometheus
    names (every character outside [[a-zA-Z0-9_:]] becomes ['_']);
    counters additionally get the conventional ["_total"] suffix, so
    ["serve.requests"] is scraped as ["serve_requests_total"].
    Histograms render cumulative ["_bucket{le=...}"] series over
    {!Metrics.bucket_bounds} plus ["_sum"]/["_count"]. *)

(** Map a dotted metric name to its Prometheus name (no kind suffix). *)
val mangle : string -> string

(** Prometheus name of a counter (mangled, ["_total"]-suffixed). *)
val counter_name : string -> string

(** [render sources] renders one exposition document over several
    registries distinguished by their label sets (e.g. the daemon's
    loop registry unlabelled plus one registry per worker labelled
    [domain="i"]). Samples sharing a name are grouped under a single
    [# HELP]/[# TYPE] block. [help] supplies help text per dotted
    name; the default help is ["omq metric <name>"]. *)
val render :
  ?help:(string -> string option) ->
  ((string * string) list * Metrics.t) list ->
  string
