(** The repository's clock: monotone wall time in seconds.

    All elapsed-time measurement goes through this module (enforced by
    the CI lint forbidding [Unix.gettimeofday] elsewhere, except
    [Reasoner.Budget], whose deadlines are genuine wall-clock
    contracts). The value is clamped to never decrease, so durations
    derived from two reads are non-negative even across clock steps. *)

(** Seconds since the Unix epoch, monotone non-decreasing across calls. *)
val now : unit -> float

(** [timed f] runs [f], returning its result and its wall time. *)
val timed : (unit -> 'a) -> ('a * float)
