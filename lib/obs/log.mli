(** Leveled structured logging for long-lived processes.

    One process-global sink (stderr by default), two formats: [Text]
    (["omqd: [level] msg k=v ..."]) and [Json] (one object per line:
    [{"ts":..,"level":..,"msg":..,<fields>}], rendered with
    {!Obs.Json} so ["--log-format json"] stderr is machine-parseable
    end to end). Emission is mutex-serialized; logging is meant for
    the cold path — the hot request path records metrics and spans. *)

type level = Debug | Info | Warn | Error
type format = Text | Json

type field =
  | Str of string * string
  | Int of string * int
  | Float of string * float
  | Bool of string * bool

val level_to_string : level -> string
val level_of_string : string -> level option
val format_of_string : string -> format option

val set_level : level -> unit
val set_format : format -> unit

(** Redirect records (tests). *)
val set_out : out_channel -> unit

val level : unit -> level

(** [enabled l] — would a record at level [l] be emitted? *)
val enabled : level -> bool

val log : ?fields:field list -> level -> string -> unit
val debug : ?fields:field list -> string -> unit
val info : ?fields:field list -> string -> unit
val warn : ?fields:field list -> string -> unit
val error : ?fields:field list -> string -> unit
