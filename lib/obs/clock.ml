(* The one clock of the repository. Everything that measures elapsed
   time — span boundaries, Stats phase seconds, bench table timings —
   reads it from here, so the "no wall-clock reads outside lib/obs"
   lint has a single sanctioned home. The only other sanctioned caller
   is Reasoner.Budget, whose deadlines are *wall-clock* contracts with
   the user and must not be monotone-clamped.

   [now] is monotone: raw gettimeofday can step backwards under NTP
   adjustment, and a negative span duration would corrupt every trace
   consumer (Perfetto rejects the file), so we clamp against the last
   value handed out. *)

let last = ref 0.0

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

(* Run [f] and return its result with its wall time. *)
let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
