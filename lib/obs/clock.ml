(* The one clock of the repository. Everything that measures elapsed
   time — span boundaries, Stats phase seconds, bench table timings —
   reads it from here, so the "no wall-clock reads outside lib/obs"
   lint has a single sanctioned home. The only other sanctioned caller
   is Reasoner.Budget, whose deadlines are *wall-clock* contracts with
   the user and must not be monotone-clamped.

   [now] is monotone: raw gettimeofday can step backwards under NTP
   adjustment, and a negative span duration would corrupt every trace
   consumer (Perfetto rejects the file), so we clamp against the last
   value handed out. The clamp is an [Atomic] so the guarantee holds
   across domains — per-worker trace collectors are merged into one
   timeline at pool join, and the merged file must stay monotone too. *)

let last = Atomic.make 0.0

let rec clamp t =
  let l = Atomic.get last in
  if t <= l then l
  else if Atomic.compare_and_set last l t then t
  else clamp t

let now () = clamp (Unix.gettimeofday ())

(* Run [f] and return its result with its wall time. *)
let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
