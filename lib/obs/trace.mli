(** Hierarchical spans with monotonic timestamps, attributes and a
    bounded event ring buffer.

    A {!t} is a collector. At most one is installed per domain
    ({!install} — the ambient slot is domain-local state, so worker
    domains trace independently and merge via {!absorb}); when none is,
    every recording entry point
    ({!with_span}, {!event}, {!add_attr}, {!set_status}) is a no-op
    costing a single load and branch, so the reasoning stack carries its
    instrumentation unconditionally.

    Collector invariants (relied on by {!Export} and the test suite):
    timestamps are read only from {!Clock} and only at span boundaries
    and event emission; every span opened by {!with_span} is closed
    exactly once, including on the exceptional exit (budget-tripped runs
    export with no dangling spans); span ids are dense [0..n-1] in
    opening order with [parent < id]. *)

type attr = Str of string | Int of int | Float of float | Bool of bool

val pp_attr : attr Fmt.t

type span = {
  id : int;
  parent : int;  (** -1 for roots *)
  name : string;
  start_s : float;  (** {!Clock.now} at open *)
  mutable dur_s : float;  (** duration in seconds; -1.0 while open *)
  mutable attrs : (string * attr) list;  (** reverse insertion order *)
  mutable status : string option;  (** [None] = ok; e.g. ["timeout"] *)
}

type event = {
  ts_s : float;
  span_id : int;  (** the enclosing open span, -1 at top level *)
  ename : string;
  eattrs : (string * attr) list;
}

type t

(** [create ()] builds an empty collector. [ring_capacity] bounds the
    event buffer (default 4096): once full, the oldest events are
    overwritten and counted in {!dropped_events}. Spans are unbounded. *)
val create : ?ring_capacity:int -> unit -> t

(** {2 The ambient collector} *)

val install : t -> unit

(** Remove and return the installed collector, if any. *)
val uninstall : unit -> t option

val active : unit -> t option
val enabled : unit -> bool

(** [collect f] runs [f] under a fresh installed collector, restores the
    previously installed one (even on an exception), and returns [f]'s
    result with the filled collector. *)
val collect : ?ring_capacity:int -> (unit -> 'a) -> 'a * t

(** Register a classifier mapping exceptions to span-status labels
    (first matching classifier wins; fallback is the printed
    exception). Used by [Reasoner.Budget] to label trip unwinds
    ["timeout"] / ["out_of_fuel"]. *)
val register_exn_label : (exn -> string option) -> unit

(** {2 Recording} *)

(** [with_span name f] runs [f] inside a fresh span, a child of the
    innermost open span. The span is closed when [f] returns or raises;
    on a raise its status is set from the registered exception
    classifiers. No-op (just [f ()]) when no collector is installed. *)
val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

(** Record an instant event in the ring buffer, attached to the
    innermost open span. *)
val event : ?attrs:(string * attr) list -> string -> unit

(** Attach an attribute to the innermost open span. *)
val add_attr : string -> attr -> unit

(** Set the status of the innermost open span (kept on close unless the
    close itself carries a status and none was set). *)
val set_status : string -> unit

(** {2 Merging} *)

(** [absorb ~into child] appends the finished collector [child]'s spans
    and events into [into]: span ids are shifted past [into]'s
    (staying dense with [parent < id]), [child]'s root spans are
    adopted by [into]'s innermost open span (or become roots) and are
    tagged with [attrs]. Used by the parallel corpus runner to merge
    per-worker collectors into the parent's at pool join, tagging each
    adopted root with its [domain] index. Timestamps are comparable
    across collectors because {!Clock.now} is monotone across domains. *)
val absorb : ?attrs:(string * attr) list -> into:t -> t -> unit

(** {2 Introspection} *)

(** All spans in opening order (closed and still-open ones). *)
val spans : t -> span list

(** Retained events, oldest first. *)
val events : t -> event list

(** Events overwritten by ring-buffer wraparound. *)
val dropped_events : t -> int

val span_count : t -> int

(** Number of currently open spans (0 once tracing has unwound). *)
val open_spans : t -> int

(** Every span closed; children contained in their parents. *)
val well_formed : t -> bool
