(** Minimal JSON rendering for the exporters. *)

(** A JSON string literal (quoted, escaped). *)
val escape : string -> string

(** An object from already-rendered member values. *)
val obj : (string * string) list -> string

(** An array from already-rendered items. *)
val arr : string list -> string

(** A JSON number (integral floats render without a fraction). *)
val number : float -> string
