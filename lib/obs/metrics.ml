(* A named metrics registry: monotonic counters, last-value gauges and
   summary histograms (count/sum/min/max). Names are stable snake_case
   (dots for namespacing) — they become JSON keys, so renaming one is a
   schema change for every consumer of BENCH_*.json. *)

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

(* The default registry, one per domain: Stats publication and the
   bench harness both write here by default. A registry is a plain
   hashtable of mutable cells, so sharing one across domains would race
   on every write; giving each domain its own (merged explicitly by
   whoever joins the domains, if they care) keeps the hot increment
   path lock-free. *)
let global_key = Domain.DLS.new_key create
let global () = Domain.DLS.get global_key

let reset t = Hashtbl.reset t.table

let find_or_add t name build =
  match Hashtbl.find_opt t.table name with
  | Some m -> m
  | None ->
      let m = build () in
      Hashtbl.replace t.table name m;
      m

let incr ?(by = 1) t name =
  match find_or_add t name (fun () -> Counter (ref 0)) with
  | Counter r -> r := !r + by
  | Gauge _ | Histogram _ -> invalid_arg ("Metrics.incr: " ^ name ^ " is not a counter")

(* Absolute write, for publishing snapshots of externally-held counters
   (Reasoner.Stats): re-publication must not double count. *)
let set_count t name v =
  match find_or_add t name (fun () -> Counter (ref v)) with
  | Counter r -> r := v
  | Gauge _ | Histogram _ ->
      invalid_arg ("Metrics.set_count: " ^ name ^ " is not a counter")

let set t name v =
  match find_or_add t name (fun () -> Gauge (ref v)) with
  | Gauge r -> r := v
  | Counter _ | Histogram _ -> invalid_arg ("Metrics.set: " ^ name ^ " is not a gauge")

let observe t name v =
  match
    find_or_add t name (fun () ->
        Histogram { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity })
  with
  | Histogram h ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v
  | Counter _ | Gauge _ ->
      invalid_arg ("Metrics.observe: " ^ name ^ " is not a histogram")

let counter_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter r) -> Some !r
  | _ -> None

let gauge_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge r) -> Some !r
  | _ -> None

let histogram_stats t name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> Some (h.count, h.sum, h.min_v, h.max_v)
  | _ -> None

let names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let is_empty t = Hashtbl.length t.table = 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

(* %.17g round-trips every float; counters stay integers. *)
let json_of_metric = function
  | Counter r -> string_of_int !r
  | Gauge r -> Printf.sprintf "%.17g" !r
  | Histogram h ->
      if h.count = 0 then "{\"count\":0,\"sum\":0}"
      else
        Printf.sprintf
          "{\"count\":%d,\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g,\"mean\":%.17g}"
          h.count h.sum h.min_v h.max_v
          (h.sum /. float_of_int h.count)

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Json.escape name);
      Buffer.add_char b ':';
      Buffer.add_string b (json_of_metric (Hashtbl.find t.table name)))
    (names t);
  Buffer.add_char b '}';
  Buffer.contents b

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf name ->
         match Hashtbl.find t.table name with
         | Counter r -> Fmt.pf ppf "%-40s %d" name !r
         | Gauge r -> Fmt.pf ppf "%-40s %g" name !r
         | Histogram h ->
             if h.count = 0 then Fmt.pf ppf "%-40s (empty)" name
             else
               Fmt.pf ppf "%-40s n=%d sum=%g min=%g max=%g" name h.count h.sum
                 h.min_v h.max_v))
    (names t)
