(* A named metrics registry: monotonic counters, last-value gauges and
   bucketed histograms (count/sum/min/max plus log-spaced buckets for
   quantile estimation). Names are stable snake_case (dots for
   namespacing) — they become JSON keys, so renaming one is a schema
   change for every consumer of BENCH_*.json. *)

(* Log-spaced bucket upper bounds shared by every histogram: 1-2.5-5
   steps over nine decades, 1e-6 .. 1e3. Latencies are seconds, so this
   spans a microsecond to a quarter hour; the shared static layout is
   what makes cross-domain merge an elementwise sum. *)
let bucket_bounds =
  let bounds = ref [] in
  for e = 2 downto -6 do
    let d = 10.0 ** float_of_int e in
    bounds := (1.0 *. d) :: (2.5 *. d) :: (5.0 *. d) :: !bounds
  done;
  Array.of_list (!bounds @ [ 1000.0 ])

let n_buckets = Array.length bucket_bounds + 1 (* + overflow *)

(* Index of the first bound >= v, or the overflow slot. The bounds
   array is tiny (28 entries) and the scan is branch-predictable, so a
   linear walk beats binary search in practice. *)
let bucket_index v =
  let n = Array.length bucket_bounds in
  let i = ref 0 in
  while !i < n && v > bucket_bounds.(!i) do
    incr i
  done;
  !i

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array; (* buckets.(i) = observations <= bucket_bounds.(i) *)
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

(* The default registry, one per domain: Stats publication and the
   bench harness both write here by default. A registry is a plain
   hashtable of mutable cells, so sharing one across domains would race
   on every write; giving each domain its own (merged explicitly by
   whoever joins the domains, if they care) keeps the hot increment
   path lock-free. *)
let global_key = Domain.DLS.new_key create
let global () = Domain.DLS.get global_key

let reset t = Hashtbl.reset t.table

let find_or_add t name build =
  match Hashtbl.find_opt t.table name with
  | Some m -> m
  | None ->
      let m = build () in
      Hashtbl.replace t.table name m;
      m

let incr ?(by = 1) t name =
  match find_or_add t name (fun () -> Counter (ref 0)) with
  | Counter r -> r := !r + by
  | Gauge _ | Histogram _ -> invalid_arg ("Metrics.incr: " ^ name ^ " is not a counter")

(* Absolute write, for publishing snapshots of externally-held counters
   (Reasoner.Stats): re-publication must not double count. *)
let set_count t name v =
  match find_or_add t name (fun () -> Counter (ref v)) with
  | Counter r -> r := v
  | Gauge _ | Histogram _ ->
      invalid_arg ("Metrics.set_count: " ^ name ^ " is not a counter")

let set t name v =
  match find_or_add t name (fun () -> Gauge (ref v)) with
  | Gauge r -> r := v
  | Counter _ | Histogram _ -> invalid_arg ("Metrics.set: " ^ name ^ " is not a gauge")

let new_histogram () =
  Histogram
    {
      count = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
      buckets = Array.make n_buckets 0;
    }

let observe t name v =
  match find_or_add t name new_histogram with
  | Histogram h ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      let i = bucket_index v in
      h.buckets.(i) <- h.buckets.(i) + 1
  | Counter _ | Gauge _ ->
      invalid_arg ("Metrics.observe: " ^ name ^ " is not a histogram")

let counter_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter r) -> Some !r
  | _ -> None

let gauge_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge r) -> Some !r
  | _ -> None

let histogram_stats t name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> Some (h.count, h.sum, h.min_v, h.max_v)
  | _ -> None

let histogram_buckets t name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> Some (Array.copy h.buckets)
  | _ -> None

(* Prometheus-style quantile estimate: find the bucket holding the
   q-rank observation, then interpolate linearly inside it. The
   estimate is clamped to the recorded [min, max], which both tightens
   the tails and makes single-observation histograms exact. *)
let quantile t name q =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) when h.count > 0 ->
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank = q *. float_of_int h.count in
      let cum = ref 0 in
      let i = ref 0 in
      let n = Array.length h.buckets in
      while !i < n - 1 && float_of_int (!cum + h.buckets.(!i)) < rank do
        cum := !cum + h.buckets.(!i);
        i := !i + 1
      done;
      let lo = if !i = 0 then 0.0 else bucket_bounds.(!i - 1) in
      let hi =
        if !i >= Array.length bucket_bounds then h.max_v
        else bucket_bounds.(!i)
      in
      let in_bucket = h.buckets.(!i) in
      let est =
        if in_bucket = 0 then hi
        else
          let frac = (rank -. float_of_int !cum) /. float_of_int in_bucket in
          lo +. ((hi -. lo) *. frac)
      in
      let est = if est < h.min_v then h.min_v else est in
      let est = if est > h.max_v then h.max_v else est in
      Some est
  | _ -> None

let names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let is_empty t = Hashtbl.length t.table = 0

(* ------------------------------------------------------------------ *)
(* Snapshots and cross-domain merge                                     *)
(* ------------------------------------------------------------------ *)

(* A snapshot is a deep copy taken on the owning domain; once taken it
   is immutable by convention (nothing in this module mutates one), so
   it can be handed to another domain — e.g. shipped in a completion
   message from a worker to the select loop — without racing the DLS
   registry it came from. *)
type snapshot = (string * metric) list

let snapshot t =
  List.map
    (fun name ->
      let copy =
        match Hashtbl.find t.table name with
        | Counter r -> Counter (ref !r)
        | Gauge r -> Gauge (ref !r)
        | Histogram h ->
            Histogram { h with buckets = Array.copy h.buckets }
      in
      (name, copy))
    (names t)

let merge_into t (snap : snapshot) =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter r -> incr ~by:!r t name
      | Gauge r -> set t name !r
      | Histogram h -> (
          match find_or_add t name new_histogram with
          | Histogram dst ->
              dst.count <- dst.count + h.count;
              dst.sum <- dst.sum +. h.sum;
              if h.min_v < dst.min_v then dst.min_v <- h.min_v;
              if h.max_v > dst.max_v then dst.max_v <- h.max_v;
              Array.iteri
                (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n)
                h.buckets
          | Counter _ | Gauge _ ->
              invalid_arg ("Metrics.merge: " ^ name ^ " is not a histogram")))
    snap

let merge_snapshots snaps =
  let t = create () in
  List.iter (merge_into t) snaps;
  t

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

(* %.17g round-trips every float; counters stay integers. *)
let json_of_metric = function
  | Counter r -> string_of_int !r
  | Gauge r -> Printf.sprintf "%.17g" !r
  | Histogram h ->
      if h.count = 0 then "{\"count\":0,\"sum\":0}"
      else
        Printf.sprintf
          "{\"count\":%d,\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g,\"mean\":%.17g}"
          h.count h.sum h.min_v h.max_v
          (h.sum /. float_of_int h.count)

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Json.escape name);
      Buffer.add_char b ':';
      Buffer.add_string b (json_of_metric (Hashtbl.find t.table name)))
    (names t);
  Buffer.add_char b '}';
  Buffer.contents b

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf name ->
         match Hashtbl.find t.table name with
         | Counter r -> Fmt.pf ppf "%-40s %d" name !r
         | Gauge r -> Fmt.pf ppf "%-40s %g" name !r
         | Histogram h ->
             if h.count = 0 then Fmt.pf ppf "%-40s (empty)" name
             else
               Fmt.pf ppf "%-40s n=%d sum=%g min=%g max=%g" name h.count h.sum
                 h.min_v h.max_v))
    (names t)
