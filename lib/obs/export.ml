(* Exporters for a filled Trace collector:

   - [chrome]: the Chrome trace-event format (JSON object with a
     "traceEvents" array of complete "X" events and instant "i"
     events), loadable in chrome://tracing and Perfetto;
   - [jsonl]: one span per line, for grep/jq pipelines;
   - [profile]: the per-phase self/total wall-time aggregation behind
     `omq_tool --profile`.

   Timestamps are exported in microseconds relative to the earliest
   span/event of the collector, so traces are stable under re-runs up
   to durations. *)

type format = Chrome | Jsonl

let format_of_string = function
  | "chrome" -> Some Chrome
  | "jsonl" -> Some Jsonl
  | _ -> None

let attr_json = function
  | Trace.Str s -> Json.escape s
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Json.number f
  | Trace.Bool b -> if b then "true" else "false"

let args_json attrs status =
  Json.obj
    ((match status with
     | Some st -> [ ("status", Json.escape st) ]
     | None -> [])
    @ List.rev_map (fun (k, v) -> (k, attr_json v)) attrs)

(* Category: the dotted prefix of the span name ("engine.solve" ->
   "engine"), which Perfetto uses for colouring and filtering. *)
let category name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let epoch c =
  List.fold_left
    (fun t0 (s : Trace.span) -> Float.min t0 s.start_s)
    (List.fold_left
       (fun t0 (e : Trace.event) -> Float.min t0 e.ts_s)
       infinity (Trace.events c))
    (Trace.spans c)

let us t0 t = (t -. t0) *. 1e6

let chrome c =
  let t0 = epoch c in
  let span_events =
    List.map
      (fun (s : Trace.span) ->
        Json.obj
          [
            ("name", Json.escape s.name);
            ("cat", Json.escape (category s.name));
            ("ph", Json.escape "X");
            ("ts", Json.number (us t0 s.start_s));
            ("dur", Json.number (Float.max 0.0 s.dur_s *. 1e6));
            ("pid", "1");
            ("tid", "1");
            ( "args",
              args_json
                (("span_id", Trace.Int s.id)
                :: ("parent_id", Trace.Int s.parent)
                :: s.attrs)
                s.status );
          ])
      (Trace.spans c)
  in
  let instant_events =
    List.map
      (fun (e : Trace.event) ->
        Json.obj
          [
            ("name", Json.escape e.ename);
            ("cat", Json.escape "event");
            ("ph", Json.escape "i");
            ("ts", Json.number (us t0 e.ts_s));
            ("s", Json.escape "t");
            ("pid", "1");
            ("tid", "1");
            ("args", args_json (("span_id", Trace.Int e.span_id) :: e.eattrs) None);
          ])
      (Trace.events c)
  in
  Json.obj
    [
      ("traceEvents", Json.arr (span_events @ instant_events));
      ("displayTimeUnit", Json.escape "ms");
      ("otherData",
       Json.obj
         [
           ("spans", string_of_int (Trace.span_count c));
           ("events_retained", string_of_int (List.length (Trace.events c)));
           ("events_dropped", string_of_int (Trace.dropped_events c));
         ]);
    ]

(* One span per line: {"name","span_id","parent_id","start_us","dur_us",
   "status"?, ...attrs}. Events follow as {"event":...} lines. *)
let jsonl c =
  let t0 = epoch c in
  let b = Buffer.create 1024 in
  List.iter
    (fun (s : Trace.span) ->
      Buffer.add_string b
        (Json.obj
           ([
              ("name", Json.escape s.name);
              ("span_id", string_of_int s.id);
              ("parent_id", string_of_int s.parent);
              ("start_us", Json.number (us t0 s.start_s));
              ("dur_us", Json.number (Float.max 0.0 s.dur_s *. 1e6));
            ]
           @ (match s.status with
             | Some st -> [ ("status", Json.escape st) ]
             | None -> [])
           @ List.rev_map (fun (k, v) -> (k, attr_json v)) s.attrs));
      Buffer.add_char b '\n')
    (Trace.spans c);
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string b
        (Json.obj
           ([
              ("event", Json.escape e.ename);
              ("span_id", string_of_int e.span_id);
              ("ts_us", Json.number (us t0 e.ts_s));
            ]
           @ List.map (fun (k, v) -> (k, attr_json v)) e.eattrs));
      Buffer.add_char b '\n')
    (Trace.events c);
  Buffer.contents b

let render = function Chrome -> chrome | Jsonl -> jsonl

let to_file fmt c path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render fmt c))

(* ------------------------------------------------------------------ *)
(* The profile table                                                    *)
(* ------------------------------------------------------------------ *)

type profile_row = {
  pname : string;
  count : int;
  total_s : float;  (* sum of span durations *)
  self_s : float;  (* total minus time in direct children *)
}

let profile c =
  let spans = Trace.spans c in
  let self = Hashtbl.create 16 in
  (* self time: subtract each span's duration from its parent's credit *)
  let credit = Array.of_list (List.map (fun (s : Trace.span) -> Float.max 0.0 s.dur_s) spans) in
  List.iter
    (fun (s : Trace.span) ->
      if s.parent >= 0 then
        credit.(s.parent) <- credit.(s.parent) -. Float.max 0.0 s.dur_s)
    spans;
  List.iter
    (fun (s : Trace.span) ->
      let total, slf, n =
        Option.value (Hashtbl.find_opt self s.name) ~default:(0.0, 0.0, 0)
      in
      Hashtbl.replace self s.name
        (total +. Float.max 0.0 s.dur_s, slf +. credit.(s.id), n + 1))
    spans;
  Hashtbl.fold
    (fun pname (total_s, self_s, count) acc ->
      { pname; count; total_s; self_s } :: acc)
    self []
  |> List.sort (fun a b -> compare b.self_s a.self_s)

let pp_profile ppf rows =
  Fmt.pf ppf "%-28s %8s %12s %12s@." "phase" "count" "self(s)" "total(s)";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-28s %8d %12.6f %12.6f@." r.pname r.count
        (Float.max 0.0 r.self_s) r.total_s)
    rows
