(** A named counter/gauge/histogram registry.

    Metric names are stable snake_case with dots for namespacing (e.g.
    ["engine.cache_hits"], ["bench.engine.chain8.speedup"]) — they
    become the keys of the exported JSON objects ([BENCH_omq.json]),
    so renaming one is a schema change for downstream consumers.

    Counters are monotonic ints, gauges hold the last value set,
    histograms keep a summary (count/sum/min/max/mean) plus log-spaced
    buckets for quantile estimation. Re-using a name with a different
    metric kind raises [Invalid_argument]. *)

type t

val create : unit -> t

(** The default registry — one per domain ({!Reasoner.Stats}
    publication and the bench harness write here by default). Being
    domain-local keeps writes race-free without a lock; a parallel
    runner that wants one view merges per-domain snapshots itself. *)
val global : unit -> t

val reset : t -> unit

(** Add to a counter (created at 0 on first use). *)
val incr : ?by:int -> t -> string -> unit

(** Set a counter to an absolute value — for publishing snapshots of
    externally-held counters, where re-publication must not double
    count. *)
val set_count : t -> string -> int -> unit

(** Set a gauge. *)
val set : t -> string -> float -> unit

(** Record one observation into a histogram. *)
val observe : t -> string -> float -> unit

val counter_value : t -> string -> int option
val gauge_value : t -> string -> float option

(** [(count, sum, min, max)] of a histogram, if present. *)
val histogram_stats : t -> string -> (int * float * float * float) option

(** The static log-spaced bucket upper bounds shared by every histogram
    (1-2.5-5 steps per decade over 1e-6 .. 1e3, seconds). The shared
    layout is what makes {!merge_snapshots} an elementwise sum. *)
val bucket_bounds : float array

(** Per-bucket observation counts of a histogram (a fresh copy; index
    [i] counts observations [<= bucket_bounds.(i)], with one final
    overflow slot). *)
val histogram_buckets : t -> string -> int array option

(** [quantile t name q] estimates the [q]-quantile ([0..1]) of a
    histogram by linear interpolation inside the bucket holding the
    q-rank observation, clamped to the recorded min/max. [None] if the
    name is not a histogram or has no observations. *)
val quantile : t -> string -> float -> float option

(** An immutable deep copy of a registry, safe to hand across domains.
    Take it on the domain that owns the registry (e.g. inside a worker
    job) and merge it wherever the aggregate view lives. *)
type snapshot

val snapshot : t -> snapshot

(** Merge one snapshot into an existing registry: counters add, gauges
    take the snapshot's value, histograms sum count/sum/buckets and
    widen min/max. *)
val merge_into : t -> snapshot -> unit

(** Fold a list of snapshots into a fresh registry ([merge_into] left
    to right, so later gauges win). Equivalent to having replayed all
    the underlying operations into one registry, for every metric kind
    except gauges (last write wins by list order). *)
val merge_snapshots : snapshot list -> t

(** Registered metric names, sorted. *)
val names : t -> string list

val is_empty : t -> bool

(** One flat JSON object; counters are integers, gauges numbers,
    histograms [{"count","sum","min","max","mean"}] sub-objects. *)
val to_json : t -> string

val pp : t Fmt.t
