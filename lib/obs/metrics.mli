(** A named counter/gauge/histogram registry.

    Metric names are stable snake_case with dots for namespacing (e.g.
    ["engine.cache_hits"], ["bench.engine.chain8.speedup"]) — they
    become the keys of the exported JSON objects ([BENCH_omq.json]),
    so renaming one is a schema change for downstream consumers.

    Counters are monotonic ints, gauges hold the last value set,
    histograms keep a summary (count/sum/min/max/mean). Re-using a name
    with a different metric kind raises [Invalid_argument]. *)

type t

val create : unit -> t

(** The default registry — one per domain ({!Reasoner.Stats}
    publication and the bench harness write here by default). Being
    domain-local keeps writes race-free without a lock; a parallel
    runner that wants one view merges per-domain snapshots itself. *)
val global : unit -> t

val reset : t -> unit

(** Add to a counter (created at 0 on first use). *)
val incr : ?by:int -> t -> string -> unit

(** Set a counter to an absolute value — for publishing snapshots of
    externally-held counters, where re-publication must not double
    count. *)
val set_count : t -> string -> int -> unit

(** Set a gauge. *)
val set : t -> string -> float -> unit

(** Record one observation into a histogram. *)
val observe : t -> string -> float -> unit

val counter_value : t -> string -> int option
val gauge_value : t -> string -> float option

(** [(count, sum, min, max)] of a histogram, if present. *)
val histogram_stats : t -> string -> (int * float * float * float) option

(** Registered metric names, sorted. *)
val names : t -> string list

val is_empty : t -> bool

(** One flat JSON object; counters are integers, gauges numbers,
    histograms [{"count","sum","min","max","mean"}] sub-objects. *)
val to_json : t -> string

val pp : t Fmt.t
