(** Seeded random instance generation for tests and experiments. *)

(** [elements n] is the constants c0 … c{n-1}. *)
val elements : int -> Element.t list

(** All [k]-tuples over a domain. *)
val tuples : Element.t list -> int -> Element.t list list

(** [instance ~rng ~signature ~size ~p] draws each possible fact over
    [size] constants independently with probability [p]. *)
val instance :
  rng:Random.State.t ->
  signature:Logic.Signature.t ->
  size:int ->
  p:float ->
  Instance.t

(** [large ~rng ~nfacts ()] draws a large sparse instance directly (no
    tuple-space enumeration): [nfacts] binary facts uniformly over
    [nrels] relations r0… on [nconst] constants c0…, plus unary concepts
    C0…C{nunary-1} holding each constant with probability [unary_p].
    Deterministic given the rng state; duplicate draws collapse, so the
    binary fact count is approximately (just under) [nfacts]. *)
val large :
  rng:Random.State.t ->
  ?nconst:int ->
  ?nrels:int ->
  ?nunary:int ->
  ?unary_p:float ->
  nfacts:int ->
  unit ->
  Instance.t

(** As {!instance} but guarantees at least one fact when the signature is
    non-empty. *)
val nonempty_instance :
  rng:Random.State.t ->
  signature:Logic.Signature.t ->
  size:int ->
  p:float ->
  Instance.t
