(* A small text format for instances: one fact per line, [R(a,b)] with
   optional trailing dot; '#' starts a comment. *)

exception Parse_error of { line : int; message : string }

let error line message = raise (Parse_error { line; message })

let parse_fact ~line s =
  match String.index_opt s '(' with
  | None -> error line "expected R(a,...)"
  | Some i ->
      let rel = String.trim (String.sub s 0 i) in
      if rel = "" then error line "empty relation name";
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let rest = String.trim rest in
      let rest =
        match String.rindex_opt rest ')' with
        | Some j when j = String.length rest - 1 ->
            String.sub rest 0 (String.length rest - 1)
        | _ -> error line "missing closing parenthesis"
      in
      let args =
        String.split_on_char ',' rest
        |> List.map String.trim
        |> List.filter (fun a -> a <> "")
      in
      if args = [] then error line "a fact needs at least one argument";
      Instance.fact rel (List.map (fun a -> Element.Const a) args)

let instance_of_string text =
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun (inst, n) raw ->
      let line = n + 1 in
      let s = String.trim raw in
      let s =
        match String.index_opt s '#' with
        | Some i -> String.trim (String.sub s 0 i)
        | None -> s
      in
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '.' then
          String.trim (String.sub s 0 (String.length s - 1))
        else s
      in
      if s = "" then (inst, line)
      else (Instance.add_fact (parse_fact ~line s) inst, line))
    (Instance.empty, 0) lines
  |> fst

(* Non-raising form: malformed input is data, not an exception. *)
let instance_of_string_result text =
  match instance_of_string text with
  | inst -> Ok inst
  | exception Parse_error { line; message } ->
      Error (Printf.sprintf "line %d: %s" line message)
