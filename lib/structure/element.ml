type t =
  | Const of string
  | Null of int

let compare = Stdlib.compare
let equal a b = compare a b = 0
let is_null = function Null _ -> true | Const _ -> false
let is_const e = not (is_null e)

let pp ppf = function
  | Const c -> Fmt.string ppf c
  | Null n -> Fmt.pf ppf "_n%d" n

let to_string e = Fmt.str "%a" pp e

(* An equal-consistent hash for hashtables keyed by elements; the odd
   constant keeps Null n clear of small-string hashes. *)
let hash = function
  | Const c -> Hashtbl.hash c
  | Null n -> 0x2f0ed515 lxor n

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
