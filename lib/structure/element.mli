(** Domain elements of instances and interpretations: data constants and
    labelled nulls (Section 2 of the paper). *)

type t =
  | Const of string
  | Null of int

val compare : t -> t -> int
val equal : t -> t -> bool
val is_null : t -> bool
val is_const : t -> bool
val pp : t Fmt.t
val to_string : t -> string

(** Hash consistent with {!equal}, for {!Tbl}. *)
val hash : t -> int

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** Hashtables keyed by elements (used for domain-position interning in
    the grounder). *)
module Tbl : Hashtbl.S with type key = t
