module SMap = Logic.Names.SMap

type fact = { rel : string; args : Element.t list }

(* Per-domain relation-name pool: facts built through [fact]/[add_fact]
   share one string per relation name, so the hot comparison path can
   settle most [rel] comparisons by physical equality instead of a byte
   compare. Domain-local so worker domains share nothing. *)
let pool_key :
    (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let intern_rel s =
  let pool = Domain.DLS.get pool_key in
  match Hashtbl.find_opt pool s with
  | Some s' -> s'
  | None ->
      Hashtbl.add pool s s;
      s

let fact rel args = { rel = intern_rel rel; args }

(* Same order as the polymorphic [Stdlib.compare] on the record:
   [rel] first (byte-lexicographic), then [args] element-wise. *)
let compare_fact a b =
  if a == b then 0
  else
    let c = if a.rel == b.rel then 0 else String.compare a.rel b.rel in
    if c <> 0 then c else List.compare Element.compare a.args b.args

module FactSet = Set.Make (struct
  type t = fact

  let compare = compare_fact
end)

type t = {
  uid : int;
  facts : FactSet.t;
  domain : Element.Set.t;
  incidence : FactSet.t Element.Map.t;
  signature : Logic.Signature.t;
}

(* Every structurally new value goes through [mk] and receives a fresh
   [uid]; operations that leave the value unchanged return the original
   record (same uid). Per-domain evaluation caches key on this id, so it
   must never be reused across distinct values. *)
let next_uid = Atomic.make 1

let mk ~facts ~domain ~incidence ~signature =
  { uid = Atomic.fetch_and_add next_uid 1; facts; domain; incidence; signature }

let empty =
  mk ~facts:FactSet.empty ~domain:Element.Set.empty
    ~incidence:Element.Map.empty ~signature:Logic.Signature.empty

let uid t = t.uid

let add_element e t =
  if Element.Set.mem e t.domain then t
  else
    mk ~facts:t.facts
      ~domain:(Element.Set.add e t.domain)
      ~incidence:t.incidence ~signature:t.signature

let add_fact f t =
  if FactSet.mem f t.facts then t
  else
    let rel = intern_rel f.rel in
    let f = if rel == f.rel then f else { f with rel } in
    let domain =
      List.fold_left (fun d e -> Element.Set.add e d) t.domain f.args
    in
    let incidence =
      List.fold_left
        (fun m e ->
          let cur =
            Option.value (Element.Map.find_opt e m) ~default:FactSet.empty
          in
          Element.Map.add e (FactSet.add f cur) m)
        t.incidence f.args
    in
    mk
      ~facts:(FactSet.add f t.facts)
      ~domain ~incidence
      ~signature:(Logic.Signature.add f.rel (List.length f.args) t.signature)

let remove_fact f t =
  if not (FactSet.mem f t.facts) then t
  else
    let facts = FactSet.remove f t.facts in
    (* An element leaves the domain when its last incident fact goes;
       elements without an incidence entry were added via [add_element]
       and stay. *)
    let domain, incidence =
      List.fold_left
        (fun (dom, inc) e ->
          match Element.Map.find_opt e inc with
          | None -> (dom, inc)
          | Some fs ->
              let fs = FactSet.remove f fs in
              if FactSet.is_empty fs then
                (Element.Set.remove e dom, Element.Map.remove e inc)
              else (dom, Element.Map.add e fs inc))
        (t.domain, t.incidence)
        (List.sort_uniq Element.compare f.args)
    in
    mk ~facts ~domain ~incidence ~signature:t.signature

let of_facts fs = List.fold_left (fun t f -> add_fact f t) empty fs

let of_list l = of_facts (List.map (fun (r, args) -> fact r args) l)

let facts t = FactSet.elements t.facts
let iter_facts f t = FactSet.iter f t.facts
let fact_set t = t.facts
let mem f t = FactSet.mem f t.facts
let domain t = t.domain
let domain_list t = Element.Set.elements t.domain
let cardinal t = FactSet.cardinal t.facts
let domain_size t = Element.Set.cardinal t.domain
let signature t = t.signature

let incident e t =
  match Element.Map.find_opt e t.incidence with
  | Some fs -> FactSet.elements fs
  | None -> []

let tuples rel t =
  FactSet.fold
    (fun f acc -> if f.rel = rel then f.args :: acc else acc)
    t.facts []

let union a b =
  let base =
    if Element.Set.subset b.domain a.domain then a
    else
      mk ~facts:a.facts
        ~domain:(Element.Set.union a.domain b.domain)
        ~incidence:a.incidence ~signature:a.signature
  in
  FactSet.fold (fun f t -> add_fact f t) b.facts base

let subset a b = FactSet.subset a.facts b.facts

let restrict elems t =
  let keep f = List.for_all (fun e -> Element.Set.mem e elems) f.args in
  let base =
    mk ~facts:FactSet.empty
      ~domain:(Element.Set.inter elems t.domain)
      ~incidence:Element.Map.empty ~signature:Logic.Signature.empty
  in
  FactSet.fold (fun f acc -> if keep f then add_fact f acc else acc) t.facts base

let map_elements h t =
  let base =
    mk ~facts:FactSet.empty
      ~domain:(Element.Set.map h t.domain)
      ~incidence:Element.Map.empty ~signature:Logic.Signature.empty
  in
  FactSet.fold
    (fun f acc -> add_fact { f with args = List.map h f.args } acc)
    t.facts base

let max_null t =
  Element.Set.fold
    (fun e m -> match e with Element.Null n -> max n m | Element.Const _ -> m)
    t.domain (-1)

let fresh_nulls n t =
  let base = max_null t + 1 in
  List.init n (fun i -> Element.Null (base + i))

let constants t = Element.Set.filter Element.is_const t.domain

(* Rename nulls of [b] so that they are disjoint from those of [a]. *)
let shift_nulls_away ~from:a b =
  let offset = max_null a + 1 in
  if offset = 0 then b
  else
    map_elements
      (function
        | Element.Null n -> Element.Null (n + offset)
        | Element.Const _ as e -> e)
      b

let disjoint_union a b =
  (* Disjoint union in the model-theoretic sense: both domains are made
     disjoint by tagging constants and shifting nulls. *)
  let tag prefix = function
    | Element.Const c -> Element.Const (prefix ^ c)
    | Element.Null _ as e -> e
  in
  let a' = map_elements (tag "l:") a in
  let b' = shift_nulls_away ~from:a' (map_elements (tag "r:") b) in
  union a' b'

let equal a b = FactSet.equal a.facts b.facts && Element.Set.equal a.domain b.domain

let pp_fact ppf f =
  Fmt.pf ppf "%s(%a)" f.rel Fmt.(list ~sep:comma Element.pp) f.args

let pp ppf t =
  Fmt.pf ppf "@[<hv>{%a}@]" Fmt.(list ~sep:semi pp_fact) (facts t)
