module SMap = Logic.Names.SMap

type fact = { rel : string; args : Element.t list }

let fact rel args = { rel; args }

let compare_fact = Stdlib.compare

module FactSet = Set.Make (struct
  type t = fact

  let compare = compare_fact
end)

type t = {
  facts : FactSet.t;
  domain : Element.Set.t;
  incidence : FactSet.t Element.Map.t;
  signature : Logic.Signature.t;
}

let empty =
  {
    facts = FactSet.empty;
    domain = Element.Set.empty;
    incidence = Element.Map.empty;
    signature = Logic.Signature.empty;
  }

let add_element e t = { t with domain = Element.Set.add e t.domain }

let add_fact f t =
  if FactSet.mem f t.facts then t
  else
    let domain =
      List.fold_left (fun d e -> Element.Set.add e d) t.domain f.args
    in
    let incidence =
      List.fold_left
        (fun m e ->
          let cur =
            Option.value (Element.Map.find_opt e m) ~default:FactSet.empty
          in
          Element.Map.add e (FactSet.add f cur) m)
        t.incidence f.args
    in
    {
      facts = FactSet.add f t.facts;
      domain;
      incidence;
      signature = Logic.Signature.add f.rel (List.length f.args) t.signature;
    }

let of_facts fs = List.fold_left (fun t f -> add_fact f t) empty fs

let of_list l = of_facts (List.map (fun (r, args) -> fact r args) l)

let facts t = FactSet.elements t.facts
let iter_facts f t = FactSet.iter f t.facts
let fact_set t = t.facts
let mem f t = FactSet.mem f t.facts
let domain t = t.domain
let domain_list t = Element.Set.elements t.domain
let cardinal t = FactSet.cardinal t.facts
let domain_size t = Element.Set.cardinal t.domain
let signature t = t.signature

let incident e t =
  match Element.Map.find_opt e t.incidence with
  | Some fs -> FactSet.elements fs
  | None -> []

let tuples rel t =
  FactSet.fold
    (fun f acc -> if f.rel = rel then f.args :: acc else acc)
    t.facts []

let union a b = FactSet.fold (fun f t -> add_fact f t) b.facts
    { a with domain = Element.Set.union a.domain b.domain }

let subset a b = FactSet.subset a.facts b.facts

let restrict elems t =
  let keep f = List.for_all (fun e -> Element.Set.mem e elems) f.args in
  let base =
    { empty with domain = Element.Set.inter elems t.domain }
  in
  FactSet.fold (fun f acc -> if keep f then add_fact f acc else acc) t.facts base

let map_elements h t =
  let base = { empty with domain = Element.Set.map h t.domain } in
  FactSet.fold
    (fun f acc -> add_fact { f with args = List.map h f.args } acc)
    t.facts base

let max_null t =
  Element.Set.fold
    (fun e m -> match e with Element.Null n -> max n m | Element.Const _ -> m)
    t.domain (-1)

let fresh_nulls n t =
  let base = max_null t + 1 in
  List.init n (fun i -> Element.Null (base + i))

let constants t = Element.Set.filter Element.is_const t.domain

(* Rename nulls of [b] so that they are disjoint from those of [a]. *)
let shift_nulls_away ~from:a b =
  let offset = max_null a + 1 in
  if offset = 0 then b
  else
    map_elements
      (function
        | Element.Null n -> Element.Null (n + offset)
        | Element.Const _ as e -> e)
      b

let disjoint_union a b =
  (* Disjoint union in the model-theoretic sense: both domains are made
     disjoint by tagging constants and shifting nulls. *)
  let tag prefix = function
    | Element.Const c -> Element.Const (prefix ^ c)
    | Element.Null _ as e -> e
  in
  let a' = map_elements (tag "l:") a in
  let b' = shift_nulls_away ~from:a' (map_elements (tag "r:") b) in
  union a' b'

let equal a b = FactSet.equal a.facts b.facts && Element.Set.equal a.domain b.domain

let pp_fact ppf f =
  Fmt.pf ppf "%s(%a)" f.rel Fmt.(list ~sep:comma Element.pp) f.args

let pp ppf t =
  Fmt.pf ppf "@[<hv>{%a}@]" Fmt.(list ~sep:semi pp_fact) (facts t)
