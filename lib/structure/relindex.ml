(* Per-relation argument indexes over dense element ids.

   An index is an immutable-by-construction snapshot of one instance:
   elements are interned into dense ids (in [Element.compare] order, so
   everything downstream is deterministic), and each relation's tuples
   live in one flat [int array] in fact-set order. Access patterns
   (hexastore-style: a bitmask of bound argument positions) get their
   hash table lazily — a pattern is scanned linearly until it has been
   probed often enough on a large enough relation to pay for a build. *)

(* A relation stays scan-only below this many tuples. *)
let scan_cutoff = 32

(* Probes of one (relation, mask) pattern before its hash table is built. *)
let probe_cutoff = 2

type pattern = {
  mutable probes : int;
  mutable table : (int array, int list) Hashtbl.t option;
      (* key = bound values in position order; value = ascending row offsets *)
}

type rel = {
  arity : int;
  ntuples : int;
  rows : int array;  (* ntuples * arity dense ids, in fact-set order *)
  distinct : int array;  (* per-position distinct-value counts *)
  patterns : (int, pattern) Hashtbl.t;  (* bound-position mask -> state *)
}

type t = {
  for_uid : int;
  elems : Element.t array;  (* dense id -> element, in Element.compare order *)
  ids : int Element.Tbl.t;
  rels : (string, rel) Hashtbl.t;
  mutable tables_built : int;
}

let for_uid t = t.for_uid
let tables_built t = t.tables_built

let build inst =
  let elems = Array.of_list (Instance.domain_list inst) in
  let n = Array.length elems in
  let ids = Element.Tbl.create (max 16 n) in
  Array.iteri (fun i e -> Element.Tbl.replace ids e i) elems;
  (* Group argument tuples per relation, preserving fact-set order. *)
  let groups : (string, Element.t list list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Instance.iter_facts
    (fun f ->
      match Hashtbl.find_opt groups f.Instance.rel with
      | Some l -> l := f.Instance.args :: !l
      | None -> Hashtbl.add groups f.Instance.rel (ref [ f.Instance.args ]))
    inst;
  let rels = Hashtbl.create (Hashtbl.length groups) in
  let seen = Array.make (max 1 n) 0 in
  let stamp = ref 0 in
  Hashtbl.iter
    (fun rname tuples ->
      let tuples = !tuples in
      let ntuples = List.length tuples in
      let arity =
        match tuples with args :: _ -> List.length args | [] -> 0
      in
      let rows = Array.make (max 1 (ntuples * arity)) (-1) in
      (* [tuples] is in reverse fact-set order; fill from the back. *)
      let row = ref (ntuples - 1) in
      List.iter
        (fun args ->
          let base = !row * arity in
          List.iteri
            (fun p e -> rows.((base + p)) <- Element.Tbl.find ids e)
            args;
          decr row)
        tuples;
      let distinct = Array.make (max 1 arity) 0 in
      for p = 0 to arity - 1 do
        incr stamp;
        let count = ref 0 in
        for r = 0 to ntuples - 1 do
          let id = rows.((r * arity) + p) in
          if seen.(id) <> !stamp then begin
            seen.(id) <- !stamp;
            incr count
          end
        done;
        distinct.(p) <- !count
      done;
      Hashtbl.replace rels rname
        { arity; ntuples; rows; distinct; patterns = Hashtbl.create 4 })
    groups;
  { for_uid = Instance.uid inst; elems; ids; rels; tables_built = 0 }

(* Bounded per-domain cache keyed by [Instance.uid] (globally unique, so
   there is no cross-domain aliasing even though each domain caches
   independently — worker domains share nothing). *)
let cache_capacity = 8

let cache_key : (int, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create cache_capacity)

let of_instance inst =
  let cache = Domain.DLS.get cache_key in
  let uid = Instance.uid inst in
  match Hashtbl.find_opt cache uid with
  | Some idx -> idx
  | None ->
      let idx = build inst in
      if Hashtbl.length cache >= cache_capacity then Hashtbl.reset cache;
      Hashtbl.add cache uid idx;
      idx

let cached inst =
  Hashtbl.find_opt (Domain.DLS.get cache_key) (Instance.uid inst)

(* Incremental refresh: the index for an instance that differs from
   [t]'s by a few facts. Only the touched relations' row arrays are
   rebuilt (from [inst], so the caller's added/removed lists need not be
   exact — they only say which relations changed); the interned-element
   tables and every untouched relation are shared with [t]. Sharing the
   intern table is what makes this cheap, and also what makes it refuse
   facts over elements [t] never interned ([None]: fall back to a full
   [build]). Elements that vanish from the instance stay interned — a
   dense id without rows can never match, so lookups behave as for a
   fresh build. The result is registered in the domain's cache, so a
   later [of_instance] on [inst] hits. *)
let update t ~added ~removed inst =
  let interned (f : Instance.fact) =
    List.for_all (fun e -> Element.Tbl.mem t.ids e) f.args
  in
  let valid =
    List.for_all
      (fun (f : Instance.fact) -> interned f && Instance.mem f inst)
      added
    && List.for_all
         (fun (f : Instance.fact) -> not (Instance.mem f inst))
         removed
  in
  if not valid then None
  else begin
    (* Group the change per relation. *)
    let by_rel fs =
      let tbl : (string, Instance.fact list ref) Hashtbl.t =
        Hashtbl.create 4
      in
      List.iter
        (fun (f : Instance.fact) ->
          match Hashtbl.find_opt tbl f.rel with
          | Some l -> l := f :: !l
          | None -> Hashtbl.add tbl f.rel (ref [ f ]))
        fs;
      tbl
    in
    let adds = by_rel added and rems = by_rel removed in
    let touched = Hashtbl.create 4 in
    Hashtbl.iter (fun r _ -> Hashtbl.replace touched r ()) adds;
    Hashtbl.iter (fun r _ -> Hashtbl.replace touched r ()) rems;
    let rels = Hashtbl.copy t.rels in
    let nelems = Array.length t.elems in
    let seen = Array.make (max 1 nelems) 0 in
    let stamp = ref 0 in
    Hashtbl.iter
      (fun rname () ->
        let of_tbl tbl =
          match Hashtbl.find_opt tbl rname with Some l -> !l | None -> []
        in
        let radds = of_tbl adds and rrems = of_tbl rems in
        let old_rows, old_n, arity =
          match Hashtbl.find_opt t.rels rname with
          | Some r -> (r.rows, r.ntuples, r.arity)
          | None -> (
              ( [||],
                0,
                match radds with
                | f :: _ -> List.length f.Instance.args
                | [] -> 0 ))
        in
        (* Mark removed rows (each removed fact matches at most one row:
           instances are fact sets). *)
        let keep = Array.make (max 1 old_n) true in
        let removed_count = ref 0 in
        List.iter
          (fun (f : Instance.fact) ->
            match
              List.map (fun e -> Element.Tbl.find_opt t.ids e) f.args
            with
            | key when List.for_all Option.is_some key ->
                let key = Array.of_list (List.map Option.get key) in
                if Array.length key = arity then begin
                  let r = ref 0 and found = ref false in
                  while (not !found) && !r < old_n do
                    let base = !r * arity in
                    let eq = ref keep.(!r) in
                    for p = 0 to arity - 1 do
                      if old_rows.(base + p) <> key.(p) then eq := false
                    done;
                    if !eq then begin
                      keep.(!r) <- false;
                      incr removed_count;
                      found := true
                    end;
                    incr r
                  done
                end
            | _ -> () (* never interned: cannot be a row *))
          rrems;
        let ntuples = old_n - !removed_count + List.length radds in
        if ntuples = 0 then Hashtbl.remove rels rname
        else begin
          let rows = Array.make (max 1 (ntuples * arity)) (-1) in
          let w = ref 0 in
          for r = 0 to old_n - 1 do
            if keep.(r) then begin
              Array.blit old_rows (r * arity) rows (!w * arity) arity;
              incr w
            end
          done;
          List.iter
            (fun (f : Instance.fact) ->
              let base = !w * arity in
              List.iteri
                (fun p e -> rows.(base + p) <- Element.Tbl.find t.ids e)
                f.args;
              incr w)
            radds;
          let distinct = Array.make (max 1 arity) 0 in
          for p = 0 to arity - 1 do
            incr stamp;
            let count = ref 0 in
            for r = 0 to ntuples - 1 do
              let id = rows.((r * arity) + p) in
              if seen.(id) <> !stamp then begin
                seen.(id) <- !stamp;
                incr count
              end
            done;
            distinct.(p) <- !count
          done;
          Hashtbl.replace rels rname
            { arity; ntuples; rows; distinct; patterns = Hashtbl.create 4 }
        end)
      touched;
    let t' = { t with for_uid = Instance.uid inst; rels } in
    let cache = Domain.DLS.get cache_key in
    if Hashtbl.length cache >= cache_capacity then Hashtbl.reset cache;
    Hashtbl.replace cache t'.for_uid t';
    Some t'
  end

(* id of an element, or -2 when it does not occur in the instance (no
   row can ever match -2: all row entries are >= 0). *)
let id_of t e =
  match Element.Tbl.find_opt t.ids e with Some i -> i | None -> -2

let elem_of t i = t.elems.(i)
let cardinality t r =
  match Hashtbl.find_opt t.rels r with Some ri -> ri.ntuples | None -> 0

let arity t r =
  match Hashtbl.find_opt t.rels r with Some ri -> Some ri.arity | None -> None

let distinct_at t r p =
  match Hashtbl.find_opt t.rels r with
  | Some ri when p < Array.length ri.distinct -> ri.distinct.(p)
  | _ -> 0

let key_of_pat ~arity ~mask pat =
  let k = Array.make (max 1 arity) 0 in
  let j = ref 0 in
  for p = 0 to arity - 1 do
    if mask land (1 lsl p) <> 0 then begin
      k.(!j) <- pat.(p);
      incr j
    end
  done;
  Array.sub k 0 !j

let scan ri ~mask ~pat f =
  let arity = ri.arity in
  for r = 0 to ri.ntuples - 1 do
    let base = r * arity in
    let ok = ref true in
    for p = 0 to arity - 1 do
      if !ok && mask land (1 lsl p) <> 0 && ri.rows.(base + p) <> pat.(p)
      then ok := false
    done;
    if !ok then f ri.rows base
  done

let build_table t ri ~mask =
  let arity = ri.arity in
  let tbl = Hashtbl.create (max 16 ri.ntuples) in
  (* Walk rows backwards so each bucket list ends up in ascending row
     order — lookups then iterate in the same order a scan would. *)
  for r = ri.ntuples - 1 downto 0 do
    let base = r * arity in
    let k = Array.make (max 1 arity) 0 in
    let j = ref 0 in
    for p = 0 to arity - 1 do
      if mask land (1 lsl p) <> 0 then begin
        k.(!j) <- ri.rows.(base + p);
        incr j
      end
    done;
    let key = Array.sub k 0 !j in
    let cur = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
    Hashtbl.replace tbl key (base :: cur)
  done;
  t.tables_built <- t.tables_built + 1;
  tbl

(* [iter_matches t r ~pat f] calls [f rows base] for every tuple of [r]
   matching [pat] (entries >= 0 are required values, -1 positions are
   free), in ascending row order. [pat] entries of -2 (bound to an
   element absent from the instance) match nothing. Exceptions raised by
   [f] propagate, which is how callers stop early. *)
let iter_matches t r ~pat f =
  match Hashtbl.find_opt t.rels r with
  | None -> ()
  | Some ri ->
      let arity = ri.arity in
      let mask = ref 0 in
      let impossible = ref false in
      for p = 0 to arity - 1 do
        if pat.(p) = -2 then impossible := true
        else if pat.(p) >= 0 then mask := !mask lor (1 lsl p)
      done;
      if !impossible then ()
      else
        let mask = !mask in
        if mask = 0 || ri.ntuples <= scan_cutoff then scan ri ~mask ~pat f
        else begin
          let state =
            match Hashtbl.find_opt ri.patterns mask with
            | Some s -> s
            | None ->
                let s = { probes = 0; table = None } in
                Hashtbl.add ri.patterns mask s;
                s
          in
          state.probes <- state.probes + 1;
          if state.table = None && state.probes > probe_cutoff then
            state.table <- Some (build_table t ri ~mask);
          match state.table with
          | Some tbl -> (
              match Hashtbl.find_opt tbl (key_of_pat ~arity ~mask pat) with
              | Some bases -> List.iter (fun base -> f ri.rows base) bases
              | None -> ())
          | None -> scan ri ~mask ~pat f
        end
