(* Per-relation argument indexes over dense element ids.

   An index is an immutable-by-construction snapshot of one instance:
   elements are interned into dense ids (in [Element.compare] order, so
   everything downstream is deterministic), and each relation's tuples
   live in one flat [int array] in fact-set order. Access patterns
   (hexastore-style: a bitmask of bound argument positions) get their
   hash table lazily — a pattern is scanned linearly until it has been
   probed often enough on a large enough relation to pay for a build. *)

(* A relation stays scan-only below this many tuples. *)
let scan_cutoff = 32

(* Probes of one (relation, mask) pattern before its hash table is built. *)
let probe_cutoff = 2

type pattern = {
  mutable probes : int;
  mutable table : (int array, int list) Hashtbl.t option;
      (* key = bound values in position order; value = ascending row offsets *)
}

type rel = {
  arity : int;
  ntuples : int;
  rows : int array;  (* ntuples * arity dense ids, in fact-set order *)
  distinct : int array;  (* per-position distinct-value counts *)
  patterns : (int, pattern) Hashtbl.t;  (* bound-position mask -> state *)
}

type t = {
  for_uid : int;
  elems : Element.t array;  (* dense id -> element, in Element.compare order *)
  ids : int Element.Tbl.t;
  rels : (string, rel) Hashtbl.t;
  mutable tables_built : int;
}

let for_uid t = t.for_uid
let tables_built t = t.tables_built

let build inst =
  let elems = Array.of_list (Instance.domain_list inst) in
  let n = Array.length elems in
  let ids = Element.Tbl.create (max 16 n) in
  Array.iteri (fun i e -> Element.Tbl.replace ids e i) elems;
  (* Group argument tuples per relation, preserving fact-set order. *)
  let groups : (string, Element.t list list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Instance.iter_facts
    (fun f ->
      match Hashtbl.find_opt groups f.Instance.rel with
      | Some l -> l := f.Instance.args :: !l
      | None -> Hashtbl.add groups f.Instance.rel (ref [ f.Instance.args ]))
    inst;
  let rels = Hashtbl.create (Hashtbl.length groups) in
  let seen = Array.make (max 1 n) 0 in
  let stamp = ref 0 in
  Hashtbl.iter
    (fun rname tuples ->
      let tuples = !tuples in
      let ntuples = List.length tuples in
      let arity =
        match tuples with args :: _ -> List.length args | [] -> 0
      in
      let rows = Array.make (max 1 (ntuples * arity)) (-1) in
      (* [tuples] is in reverse fact-set order; fill from the back. *)
      let row = ref (ntuples - 1) in
      List.iter
        (fun args ->
          let base = !row * arity in
          List.iteri
            (fun p e -> rows.((base + p)) <- Element.Tbl.find ids e)
            args;
          decr row)
        tuples;
      let distinct = Array.make (max 1 arity) 0 in
      for p = 0 to arity - 1 do
        incr stamp;
        let count = ref 0 in
        for r = 0 to ntuples - 1 do
          let id = rows.((r * arity) + p) in
          if seen.(id) <> !stamp then begin
            seen.(id) <- !stamp;
            incr count
          end
        done;
        distinct.(p) <- !count
      done;
      Hashtbl.replace rels rname
        { arity; ntuples; rows; distinct; patterns = Hashtbl.create 4 })
    groups;
  { for_uid = Instance.uid inst; elems; ids; rels; tables_built = 0 }

(* Bounded per-domain cache keyed by [Instance.uid] (globally unique, so
   there is no cross-domain aliasing even though each domain caches
   independently — worker domains share nothing). *)
let cache_capacity = 8

let cache_key : (int, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create cache_capacity)

let of_instance inst =
  let cache = Domain.DLS.get cache_key in
  let uid = Instance.uid inst in
  match Hashtbl.find_opt cache uid with
  | Some idx -> idx
  | None ->
      let idx = build inst in
      if Hashtbl.length cache >= cache_capacity then Hashtbl.reset cache;
      Hashtbl.add cache uid idx;
      idx

(* id of an element, or -2 when it does not occur in the instance (no
   row can ever match -2: all row entries are >= 0). *)
let id_of t e =
  match Element.Tbl.find_opt t.ids e with Some i -> i | None -> -2

let elem_of t i = t.elems.(i)
let cardinality t r =
  match Hashtbl.find_opt t.rels r with Some ri -> ri.ntuples | None -> 0

let arity t r =
  match Hashtbl.find_opt t.rels r with Some ri -> Some ri.arity | None -> None

let distinct_at t r p =
  match Hashtbl.find_opt t.rels r with
  | Some ri when p < Array.length ri.distinct -> ri.distinct.(p)
  | _ -> 0

let key_of_pat ~arity ~mask pat =
  let k = Array.make (max 1 arity) 0 in
  let j = ref 0 in
  for p = 0 to arity - 1 do
    if mask land (1 lsl p) <> 0 then begin
      k.(!j) <- pat.(p);
      incr j
    end
  done;
  Array.sub k 0 !j

let scan ri ~mask ~pat f =
  let arity = ri.arity in
  for r = 0 to ri.ntuples - 1 do
    let base = r * arity in
    let ok = ref true in
    for p = 0 to arity - 1 do
      if !ok && mask land (1 lsl p) <> 0 && ri.rows.(base + p) <> pat.(p)
      then ok := false
    done;
    if !ok then f ri.rows base
  done

let build_table t ri ~mask =
  let arity = ri.arity in
  let tbl = Hashtbl.create (max 16 ri.ntuples) in
  (* Walk rows backwards so each bucket list ends up in ascending row
     order — lookups then iterate in the same order a scan would. *)
  for r = ri.ntuples - 1 downto 0 do
    let base = r * arity in
    let k = Array.make (max 1 arity) 0 in
    let j = ref 0 in
    for p = 0 to arity - 1 do
      if mask land (1 lsl p) <> 0 then begin
        k.(!j) <- ri.rows.(base + p);
        incr j
      end
    done;
    let key = Array.sub k 0 !j in
    let cur = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
    Hashtbl.replace tbl key (base :: cur)
  done;
  t.tables_built <- t.tables_built + 1;
  tbl

(* [iter_matches t r ~pat f] calls [f rows base] for every tuple of [r]
   matching [pat] (entries >= 0 are required values, -1 positions are
   free), in ascending row order. [pat] entries of -2 (bound to an
   element absent from the instance) match nothing. Exceptions raised by
   [f] propagate, which is how callers stop early. *)
let iter_matches t r ~pat f =
  match Hashtbl.find_opt t.rels r with
  | None -> ()
  | Some ri ->
      let arity = ri.arity in
      let mask = ref 0 in
      let impossible = ref false in
      for p = 0 to arity - 1 do
        if pat.(p) = -2 then impossible := true
        else if pat.(p) >= 0 then mask := !mask lor (1 lsl p)
      done;
      if !impossible then ()
      else
        let mask = !mask in
        if mask = 0 || ri.ntuples <= scan_cutoff then scan ri ~mask ~pat f
        else begin
          let state =
            match Hashtbl.find_opt ri.patterns mask with
            | Some s -> s
            | None ->
                let s = { probes = 0; table = None } in
                Hashtbl.add ri.patterns mask s;
                s
          in
          state.probes <- state.probes + 1;
          if state.table = None && state.probes > probe_cutoff then
            state.table <- Some (build_table t ri ~mask);
          match state.table with
          | Some tbl -> (
              match Hashtbl.find_opt tbl (key_of_pat ~arity ~mask pat) with
              | Some bases -> List.iter (fun base -> f ri.rows base) bases
              | None -> ())
          | None -> scan ri ~mask ~pat f
        end
