(* Seeded random instance generation, used by tests, the invariance
   checker and the benchmark harness. *)

let elements n = List.init n (fun i -> Element.Const (Printf.sprintf "c%d" i))

let rec tuples dom k =
  if k = 0 then [ [] ]
  else
    List.concat_map (fun rest -> List.map (fun e -> e :: rest) dom) (tuples dom (k - 1))

(* A random instance over [signature] with [size] constants: each possible
   fact is included independently with probability [p]. *)
let instance ~rng ~signature ~size ~p =
  let dom = elements size in
  let base =
    List.fold_left (fun t e -> Instance.add_element e t) Instance.empty dom
  in
  List.fold_left
    (fun inst (rel, arity) ->
      List.fold_left
        (fun inst args ->
          if Random.State.float rng 1.0 < p then
            Instance.add_fact (Instance.fact rel args) inst
          else inst)
        inst (tuples dom arity))
    base
    (Logic.Signature.to_list signature)

(* Large sparse instances (10^5–10^6 facts): [instance] enumerates the
   full tuple space so it only scales to toy sizes. Here we draw facts
   directly: [nfacts] binary facts spread uniformly over [nrels]
   relations r0…, plus sparse unary "concept" relations C0… holding each
   constant with probability [unary_p]. Deterministic given the rng
   state; duplicates among the draws collapse in the fact set, so the
   result holds approximately (just under) [nfacts] binary facts. *)
let large ~rng ?(nconst = 3000) ?(nrels = 4) ?(nunary = 4) ?(unary_p = 0.02)
    ~nfacts () =
  let const i = Element.Const ("c" ^ string_of_int i) in
  let inst = ref Instance.empty in
  for _ = 1 to nfacts do
    let r = "r" ^ string_of_int (Random.State.int rng nrels) in
    let a = const (Random.State.int rng nconst)
    and b = const (Random.State.int rng nconst) in
    inst := Instance.add_fact (Instance.fact r [ a; b ]) !inst
  done;
  for c = 0 to nconst - 1 do
    for u = 0 to nunary - 1 do
      if Random.State.float rng 1.0 < unary_p then
        inst :=
          Instance.add_fact
            (Instance.fact ("C" ^ string_of_int u) [ const c ])
            !inst
    done
  done;
  !inst

(* A random connected-ish instance: as [instance] but guarantees at least
   one fact (instances are non-empty sets of facts). *)
let nonempty_instance ~rng ~signature ~size ~p =
  let rec go tries =
    let inst = instance ~rng ~signature ~size ~p in
    if Instance.cardinal inst > 0 || tries > 20 then inst
    else go (tries + 1)
  in
  let inst = go 0 in
  if Instance.cardinal inst > 0 then inst
  else
    (* Force one fact on the first relation. *)
    match Logic.Signature.to_list signature with
    | [] -> inst
    | (rel, arity) :: _ ->
        let dom = elements (max size 1) in
        let args = List.init arity (fun i -> List.nth dom (i mod List.length dom)) in
        Instance.add_fact (Instance.fact rel args) inst
