(** Database instances and interpretations (Section 2).

    An instance is a finite set of facts over constants; an interpretation
    may additionally contain labelled nulls and isolated domain elements.
    Both are represented by this one type. *)

type fact = { rel : string; args : Element.t list }

(** [fact r args] builds a fact with [r] interned into a per-domain
    relation-name pool, so [compare_fact] settles the name comparison by
    physical equality on the hot path. *)
val fact : string -> Element.t list -> fact

val compare_fact : fact -> fact -> int

module FactSet : Set.S with type elt = fact

type t

val empty : t

(** Stable identity of this immutable value. Two structurally distinct
    instances never share a uid, and any operation that changes the facts
    or the domain returns a value with a fresh uid (operations that leave
    the value unchanged may return the original record). Per-domain
    evaluation-index caches ([Relindex]) key on this. *)
val uid : t -> int

(** [add_element e t] adds an (possibly isolated) element to the domain. *)
val add_element : Element.t -> t -> t

val add_fact : fact -> t -> t

(** [remove_fact f t] deletes [f]; elements whose last incident fact was
    [f] leave the domain (isolated elements added via [add_element] are
    kept). The signature is unchanged. No-op when [f] is absent. *)
val remove_fact : fact -> t -> t

val of_facts : fact list -> t

(** [of_list [(r, args); ...]] builds an instance from labelled tuples. *)
val of_list : (string * Element.t list) list -> t

val facts : t -> fact list

(** Iterate the facts without materialising a list. *)
val iter_facts : (fact -> unit) -> t -> unit

val fact_set : t -> FactSet.t
val mem : fact -> t -> bool
val domain : t -> Element.Set.t
val domain_list : t -> Element.t list
val cardinal : t -> int
val domain_size : t -> int
val signature : t -> Logic.Signature.t

(** [incident e t] is the list of facts of [t] mentioning [e]. *)
val incident : Element.t -> t -> fact list

(** [tuples r t] lists the argument tuples of relation [r]. *)
val tuples : string -> t -> Element.t list list

val union : t -> t -> t

(** [subset a b] holds iff every fact of [a] is a fact of [b]
    (i.e. [b] is a model of the instance [a]). *)
val subset : t -> t -> bool

(** [restrict s t] is the subinterpretation of [t] induced by [s]. *)
val restrict : Element.Set.t -> t -> t

(** [map_elements h t] applies [h] to every element. *)
val map_elements : (Element.t -> Element.t) -> t -> t

(** Largest null index occurring in the domain, or [-1]. *)
val max_null : t -> int

(** [fresh_nulls n t] returns [n] nulls not occurring in [t]. *)
val fresh_nulls : int -> t -> Element.t list

val constants : t -> Element.Set.t

(** [shift_nulls_away ~from:a b] renames the nulls of [b] apart from
    those of [a]. *)
val shift_nulls_away : from:t -> t -> t

(** Model-theoretic disjoint union: domains are made disjoint by tagging
    constants with ["l:"] / ["r:"] and shifting nulls. *)
val disjoint_union : t -> t -> t

val equal : t -> t -> bool
val pp_fact : fact Fmt.t
val pp : t Fmt.t
