(* Selectivity-ordered join evaluation over [Relindex].

   A conjunctive body is a list of atoms over integer variables and
   constant elements. The planner greedily orders atoms: cheapest
   estimated row count first (relation cardinality divided by the
   distinct counts of the bound positions), ties broken by fewest
   unbound variables, then smallest relation, then original atom index —
   a pure function of the atoms and the index statistics, so plans are
   deterministic. Execution is a depth-first join over the ordered
   atoms; each atom's bound positions form an access pattern served by
   [Relindex] (adaptive linear scan → hash lookup). *)

type term = Const of Element.t | Var of int
type atom = { rel : string; args : term array }

let atom rel args = { rel; args = Array.of_list args }

(* Per-domain switch: when off, callers fall back to their pre-planner
   naive paths. Exists so the equivalence suite and the bench can run
   both pipelines wholesale. *)
let enabled_key = Domain.DLS.new_key (fun () -> true)
let planner_enabled () = Domain.DLS.get enabled_key
let set_planner_enabled b = Domain.DLS.set enabled_key b

let with_planner b f =
  let prev = planner_enabled () in
  set_planner_enabled b;
  Fun.protect ~finally:(fun () -> set_planner_enabled prev) f

type access = Membership | Lookup | Scan

let access_label = function
  | Membership -> "membership"
  | Lookup -> "lookup"
  | Scan -> "scan"

type step = {
  atom_ix : int;
  mask : int;  (* positions bound at entry (constants or bound vars) *)
  est : float;  (* estimated matching rows *)
  access : access;
  rel_size : int;
}

type plan = { atoms : atom array; order : step list; nvars : int }

let nvars_of ~bound atoms =
  let m = ref (-1) in
  List.iter (fun v -> if v > !m then m := v) bound;
  List.iter
    (fun a ->
      Array.iter (function Var v when v > !m -> m := v | _ -> ()) a.args)
    atoms;
  !m + 1

let pp_term ppf = function
  | Const e -> Element.pp ppf e
  | Var v -> Fmt.pf ppf "?%d" v

(* No break hints: the rendering is embedded in single-line JSON. *)
let pp_atom ppf a =
  Fmt.pf ppf "%s(%a)" a.rel Fmt.(array ~sep:(any ",") pp_term) a.args

(* Estimated rows + access for [a] given the currently bound vars. *)
let estimate idx boundv a =
  let card = Relindex.cardinality idx a.rel in
  let arity = Array.length a.args in
  let mask = ref 0 in
  let unbound = ref 0 in
  let seen_unbound = Hashtbl.create 4 in
  Array.iteri
    (fun p t ->
      match t with
      | Const _ -> mask := !mask lor (1 lsl p)
      | Var v ->
          if v < Array.length boundv && boundv.(v) then
            mask := !mask lor (1 lsl p)
          else if not (Hashtbl.mem seen_unbound v) then begin
            Hashtbl.add seen_unbound v ();
            incr unbound
          end)
    a.args;
  let est =
    if card = 0 then 0.0
    else begin
      let e = ref (float_of_int card) in
      for p = 0 to arity - 1 do
        if !mask land (1 lsl p) <> 0 then
          e := !e /. float_of_int (max 1 (Relindex.distinct_at idx a.rel p))
      done;
      !e
    end
  in
  let access =
    if arity > 0 && !mask = (1 lsl arity) - 1 then Membership
    else if !mask = 0 then Scan
    else Lookup
  in
  (est, !mask, !unbound, access, card)

(* Spans are emitted once per distinct body shape per domain — plan
   construction sits inside per-tuple hot loops, so unconditional spans
   would flood the collector. *)
let span_seen_key : (string, unit) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let emit_plan_span plan =
  let fp =
    Fmt.str "%a|%a"
      Fmt.(array ~sep:semi pp_atom)
      plan.atoms
      Fmt.(list ~sep:comma (using (fun s -> s.atom_ix) int))
      plan.order
  in
  let seen = Domain.DLS.get span_seen_key in
  if not (Hashtbl.mem seen fp) then begin
    if Hashtbl.length seen >= 512 then Hashtbl.reset seen;
    Hashtbl.add seen fp ();
    let order =
      String.concat ","
        (List.map (fun s -> string_of_int s.atom_ix) plan.order)
    in
    let accesses =
      String.concat ","
        (List.map (fun s -> access_label s.access) plan.order)
    in
    let est = List.fold_left (fun acc s -> acc +. s.est) 0.0 plan.order in
    Obs.Trace.with_span "eval.plan"
      ~attrs:
        [
          ("atoms", Obs.Trace.Int (Array.length plan.atoms));
          ("nvars", Obs.Trace.Int plan.nvars);
          ("order", Obs.Trace.Str order);
          ("access", Obs.Trace.Str accesses);
          ("est_rows", Obs.Trace.Float est);
        ]
      (fun () -> ())
  end

let make_plan idx ?(bound = []) atoms =
  let nvars = nvars_of ~bound atoms in
  let atoms_a = Array.of_list atoms in
  let boundv = Array.make (max 1 nvars) false in
  List.iter (fun v -> boundv.(v) <- true) bound;
  let remaining = ref (List.init (Array.length atoms_a) Fun.id) in
  let order = ref [] in
  while !remaining <> [] do
    let best = ref None in
    List.iter
      (fun ix ->
        let est, mask, unbound, access, card =
          estimate idx boundv atoms_a.(ix)
        in
        let key = (est, unbound, card, ix) in
        let better =
          match !best with
          | None -> true
          | Some (k, _, _, _, _) -> compare key k < 0
        in
        if better then best := Some (key, ix, mask, est, (access, card)))
      !remaining;
    match !best with
    | None -> ()
    | Some (_, ix, mask, est, (access, card)) ->
        order :=
          { atom_ix = ix; mask; est; access; rel_size = card } :: !order;
        remaining := List.filter (fun j -> j <> ix) !remaining;
        Array.iter
          (function Var v -> boundv.(v) <- true | Const _ -> ())
          atoms_a.(ix).args
  done;
  let plan = { atoms = atoms_a; order = List.rev !order; nvars } in
  if Obs.Trace.enabled () then emit_plan_span plan;
  plan

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let explain_json plan =
  let step_json s =
    let a = plan.atoms.(s.atom_ix) in
    let bound =
      let l = ref [] in
      for p = Array.length a.args - 1 downto 0 do
        if s.mask land (1 lsl p) <> 0 then l := string_of_int p :: !l
      done;
      String.concat "," !l
    in
    Printf.sprintf
      "{\"atom\":%d,\"body\":\"%s\",\"rel\":\"%s\",\"access\":\"%s\",\"bound\":[%s],\"est_rows\":%g,\"rel_size\":%d}"
      s.atom_ix
      (json_escape (Fmt.str "%a" pp_atom a))
      (json_escape a.rel) (access_label s.access) bound s.est s.rel_size
  in
  Printf.sprintf "{\"nvars\":%d,\"atoms\":%d,\"order\":[%s]}" plan.nvars
    (Array.length plan.atoms)
    (String.concat "," (List.map step_json plan.order))

exception Stop

(* [fold idx plan ~bindings f init] enumerates all assignments of the
   plan's variables satisfying every atom, depth-first in plan order.
   [bindings] pre-binds variables (e.g. answer tuples, chase-delta
   pins); every variable in [0, nvars) must occur in some atom or in
   [bindings] — isolated variables are the caller's business. [f]
   receives the full assignment as an array indexed by variable and the
   accumulator, and returns [(stop, acc)]. Enumeration order is a pure
   function of the plan and the index, hence deterministic. *)
let fold idx plan ~bindings f init =
  let nvars = plan.nvars in
  let ba = Array.make (max 1 nvars) (-1) in
  let init_elem = Array.make (max 1 nvars) None in
  List.iter
    (fun (v, e) ->
      ba.(v) <- Relindex.id_of idx e;
      init_elem.(v) <- Some e)
    bindings;
  let steps = Array.of_list plan.order in
  let nsteps = Array.length steps in
  let acc = ref init in
  let sol = Array.make (max 1 nvars) (Element.Null min_int) in
  let rec go k =
    if k = nsteps then begin
      for v = 0 to nvars - 1 do
        sol.(v) <-
          (if ba.(v) >= 0 then Relindex.elem_of idx ba.(v)
           else
             match init_elem.(v) with
             | Some e -> e
             | None -> Element.Null min_int)
      done;
      let stop, acc' = f sol !acc in
      acc := acc';
      if stop then raise_notrace Stop
    end
    else begin
      let st = steps.(k) in
      let a = plan.atoms.(st.atom_ix) in
      let arity = Array.length a.args in
      let pat = Array.make (max 1 arity) (-1) in
      let impossible = ref false in
      for p = 0 to arity - 1 do
        match a.args.(p) with
        | Const e ->
            let id = Relindex.id_of idx e in
            if id < 0 then impossible := true else pat.(p) <- id
        | Var v ->
            if ba.(v) = -2 then impossible := true
            else if ba.(v) >= 0 then pat.(p) <- ba.(v)
      done;
      if not !impossible then
        Relindex.iter_matches idx a.rel ~pat (fun rows base ->
            let touched = ref [] in
            let ok = ref true in
            for p = 0 to arity - 1 do
              if !ok then
                match a.args.(p) with
                | Var v ->
                    let id = rows.(base + p) in
                    if ba.(v) < 0 then begin
                      ba.(v) <- id;
                      touched := v :: !touched
                    end
                    else if ba.(v) <> id then ok := false
                | Const _ -> ()
            done;
            if !ok then go (k + 1);
            List.iter (fun v -> ba.(v) <- -1) !touched)
    end
  in
  (try go 0 with Stop -> ());
  !acc

let exists idx plan ~bindings =
  fold idx plan ~bindings (fun _ _ -> (true, true)) false
