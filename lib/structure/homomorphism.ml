module ESet = Element.Set
module EMap = Element.Map

type map = Element.t EMap.t

let apply m e = Option.value (EMap.find_opt e m) ~default:e

let is_homomorphism m ~source ~target =
  List.for_all
    (fun (f : Instance.fact) ->
      Instance.mem { f with args = List.map (apply m) f.args } target)
    (Instance.facts source)
  && EMap.for_all (fun _ v -> ESet.mem v (Instance.domain target)) m

(* Order the unassigned source elements so that each element is, as far as
   possible, connected to the previously chosen ones: this makes candidate
   filtering through incident facts effective. *)
let search_order source fixed =
  let g = Gaifman.of_instance source in
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let push e =
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.replace seen e ();
      if not (EMap.mem e fixed) then order := e :: !order
    end
  in
  let rec bfs frontier =
    match frontier with
    | [] -> ()
    | e :: rest ->
        let nbrs =
          ESet.elements
            (ESet.filter
               (fun v -> not (Hashtbl.mem seen v))
               (Gaifman.neighbours g e))
        in
        List.iter push nbrs;
        bfs (rest @ nbrs)
  in
  EMap.iter (fun e _ -> Hashtbl.replace seen e ()) fixed;
  bfs (List.map fst (EMap.bindings fixed));
  ESet.iter
    (fun e ->
      if not (Hashtbl.mem seen e) then begin
        push e;
        bfs [ e ]
      end)
    (Instance.domain source);
  List.rev !order

(* Candidate images for [e] given partial map [m]: pick the incident fact
   with the fewest unassigned argument positions and collect the values
   of matching target tuples at [e]'s positions. *)
let candidates source target m e =
  let restrict_by (f : Instance.fact) =
    let tuples = Instance.tuples f.rel target in
    List.fold_left
      (fun acc tuple ->
        let ok = ref true in
        let img_of_e = ref None in
        List.iteri
          (fun i a ->
            let tv = List.nth tuple i in
            match EMap.find_opt a m with
            | Some v -> if not (Element.equal v tv) then ok := false
            | None ->
                if Element.equal a e then
                  match !img_of_e with
                  | None -> img_of_e := Some tv
                  | Some v -> if not (Element.equal v tv) then ok := false)
          f.args;
        match (!ok, !img_of_e) with
        | true, Some v -> ESet.add v acc
        | _ -> acc)
      ESet.empty tuples
  in
  let best =
    List.fold_left
      (fun best (f : Instance.fact) ->
        let unassigned =
          List.length
            (List.filter
               (fun a -> (not (EMap.mem a m)) && not (Element.equal a e))
               f.args)
        in
        match best with
        | Some (u, _) when u <= unassigned -> best
        | _ -> Some (unassigned, f))
      None
      (Instance.incident e source)
  in
  match best with
  | Some (_, f) -> restrict_by f
  | None -> Instance.domain target

(* Check all source facts mentioning [e] whose arguments are now fully
   assigned. *)
let consistent source target m e =
  List.for_all
    (fun (f : Instance.fact) ->
      match
        List.fold_left
          (fun acc a ->
            match acc with
            | None -> None
            | Some imgs -> (
                match EMap.find_opt a m with
                | Some v -> Some (v :: imgs)
                | None -> None))
          (Some []) f.args
      with
      | None -> true
      | Some rev_imgs ->
          Instance.mem { f with args = List.rev rev_imgs } target)
    (Instance.incident e source)

let fold_naive ?(fixed = EMap.empty) ?(injective = false) ~source ~target f
    init =
  let order = search_order source fixed in
  let acc = ref init in
  let continue = ref true in
  let used = EMap.fold (fun _ v s -> ESet.add v s) fixed ESet.empty in
  let rec go m used = function
    | [] ->
        let stop, acc' = f m !acc in
        acc := acc';
        if stop then continue := false
    | e :: rest ->
        let cands = candidates source target m e in
        ESet.iter
          (fun v ->
            if !continue && not (injective && ESet.mem v used) then begin
              let m' = EMap.add e v m in
              if consistent source target m' e then
                go m' (ESet.add v used) rest
            end)
          cands
  in
  let fixed_ok =
    EMap.for_all
      (fun e v ->
        ESet.mem v (Instance.domain target)
        && ESet.mem e (Instance.domain source)
        && consistent source target fixed e)
      fixed
  in
  if fixed_ok then go fixed used order;
  !acc

(* Planner-backed enumeration: source elements that occur in facts
   become join variables over the target's [Relindex]; source elements
   with no incident fact ("isolated") are unconstrained and range over
   the whole target domain, exactly as the naive path's [candidates]
   fallback. Solutions come in plan order, deterministically. *)
let fold_eval ~fixed ~source ~target f init =
  let fixed_ok =
    EMap.for_all
      (fun e v ->
        ESet.mem v (Instance.domain target)
        && ESet.mem e (Instance.domain source))
      fixed
  in
  if not fixed_ok then init
  else begin
    let idx = Relindex.of_instance target in
    let var_of = Element.Tbl.create 16 in
    let nvars = ref 0 in
    let atoms =
      List.map
        (fun (fct : Instance.fact) ->
          Eval.atom fct.rel
            (List.map
               (fun e ->
                 match Element.Tbl.find_opt var_of e with
                 | Some v -> Eval.Var v
                 | None ->
                     let v = !nvars in
                     incr nvars;
                     Element.Tbl.add var_of e v;
                     Eval.Var v)
               fct.args))
        (Instance.facts source)
    in
    let isolated =
      List.filter
        (fun e -> not (Element.Tbl.mem var_of e))
        (Instance.domain_list source)
    in
    let bindings =
      EMap.fold
        (fun e v acc ->
          match Element.Tbl.find_opt var_of e with
          | Some var -> (var, v) :: acc
          | None -> acc)
        fixed []
    in
    let plan = Eval.make_plan idx ~bound:(List.map fst bindings) atoms in
    let inv = Array.make (max 1 !nvars) (Element.Null min_int) in
    Element.Tbl.iter (fun e v -> inv.(v) <- e) var_of;
    let target_dom = Instance.domain_list target in
    let continue = ref true in
    let acc = ref init in
    let emit m =
      let stop, acc' = f m !acc in
      acc := acc';
      if stop then continue := false
    in
    let rec extend m = function
      | [] -> emit m
      | e :: rest -> (
          match EMap.find_opt e fixed with
          | Some v -> extend (EMap.add e v m) rest
          | None ->
              List.iter
                (fun v -> if !continue then extend (EMap.add e v m) rest)
                target_dom)
    in
    Eval.fold idx plan ~bindings
      (fun sol () ->
        let m = ref EMap.empty in
        for v = 0 to !nvars - 1 do
          m := EMap.add inv.(v) sol.(v) !m
        done;
        extend !m isolated;
        ((not !continue), ()))
      ();
    !acc
  end

let fold ?(fixed = EMap.empty) ?(injective = false) ~source ~target f init =
  if (not injective) && Eval.planner_enabled () then
    fold_eval ~fixed ~source ~target f init
  else fold_naive ~fixed ~injective ~source ~target f init

let find ?(fixed = EMap.empty) ?(injective = false) ~source ~target () =
  fold ~fixed ~injective ~source ~target (fun m _ -> (true, Some m)) None

let exists ?(fixed = EMap.empty) ?(injective = false) ~source ~target () =
  Option.is_some (find ~fixed ~injective ~source ~target ())

let all ?(fixed = EMap.empty) ?(injective = false) ?limit ~source ~target () =
  let res =
    fold ~fixed ~injective ~source ~target
      (fun m acc ->
        let acc = m :: acc in
        match limit with
        | Some l when List.length acc >= l -> (true, acc)
        | _ -> (false, acc))
      []
  in
  List.rev res

let fixed_identity elems =
  ESet.fold (fun e m -> EMap.add e e m) elems EMap.empty
