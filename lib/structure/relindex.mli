(** Per-relation argument indexes over dense element ids.

    A {!t} is an immutable snapshot of one {!Instance.t}: elements are
    interned into dense ids in [Element.compare] order and each
    relation's tuples live in a flat row array in fact-set order, so all
    iteration orders are deterministic. Access patterns (bitmask of
    bound argument positions, hexastore-style) acquire a hash table
    lazily: a pattern is scanned until it has been probed more than a
    small cutoff on a relation large enough to pay for the build.

    Indexes are cached per domain ([Domain.DLS], bounded) keyed by
    {!Instance.uid}; since any instance mutation yields a fresh uid the
    cache can never serve a stale index, and since the cache is
    domain-local the same instance may be indexed independently by
    concurrent worker domains without sharing. *)

type t

(** Build or fetch the cached index for this instance (per-domain cache
    keyed by {!Instance.uid}). *)
val of_instance : Instance.t -> t

(** Build an index bypassing the cache (used by tests). *)
val build : Instance.t -> t

(** The cached index for this instance on the calling domain, if any —
    without building one. *)
val cached : Instance.t -> t option

(** [update t ~added ~removed inst] is the index for [inst], an instance
    differing from the one [t] indexes by the given facts: only the
    touched relations are rebuilt (from [inst]), the interned-element
    tables and untouched relations are shared with [t]. [None] when an
    added fact mentions an element [t] never interned — fall back to a
    full build. The result is registered in the calling domain's cache,
    so a subsequent {!of_instance} on [inst] hits. This is what keeps
    the incremental Datalog rounds from paying an O(instance) index
    rebuild per round. *)
val update :
  t ->
  added:Instance.fact list ->
  removed:Instance.fact list ->
  Instance.t ->
  t option

(** The {!Instance.uid} this index was built from. *)
val for_uid : t -> int

(** Number of pattern hash tables built so far — observable measure of
    the adaptive scan→hash switchover. *)
val tables_built : t -> int

(** Dense id of an element, or [-2] when it does not occur in the
    instance (no row entry is negative, so [-2] can never match). *)
val id_of : t -> Element.t -> int

val elem_of : t -> int -> Element.t

(** Tuple count of a relation (0 when absent). *)
val cardinality : t -> string -> int

(** Arity of a relation as stored, if present. *)
val arity : t -> string -> int option

(** Distinct values at an argument position (0 when absent). *)
val distinct_at : t -> string -> int -> int

(** [iter_matches t r ~pat f] calls [f rows base] for every tuple of
    [r] whose entries agree with [pat] ([pat.(p) >= 0] requires that
    value at position [p]; [-1] leaves it free; [-2] matches nothing),
    in ascending row order; the tuple occupies
    [rows.(base) .. rows.(base + arity - 1)]. Exceptions raised by [f]
    propagate (callers use this to stop early). *)
val iter_matches : t -> string -> pat:int array -> (int array -> int -> unit) -> unit
