(** Homomorphisms between instances/interpretations (Section 2), found by
    backtracking search with fact-based candidate filtering. *)

type map = Element.t Element.Map.t

(** [apply m e] looks up [e], defaulting to [e] itself. *)
val apply : map -> Element.t -> Element.t

(** [is_homomorphism m ~source ~target] checks that [m] maps every fact of
    [source] to a fact of [target]. *)
val is_homomorphism : map -> source:Instance.t -> target:Instance.t -> bool

(** [fold ~source ~target f init] enumerates homomorphisms extending
    [fixed]; [f] returns [(stop, acc)]. Backed by the {!Eval} join
    planner when {!Eval.planner_enabled} (the default); [injective]
    searches always use the naive backtracking path. *)
val fold :
  ?fixed:map ->
  ?injective:bool ->
  source:Instance.t ->
  target:Instance.t ->
  (map -> 'a -> bool * 'a) ->
  'a ->
  'a

(** The pre-planner backtracking enumeration, kept as the reference
    implementation for the equivalence suite and as the [injective]
    path. Same contract as {!fold}. *)
val fold_naive :
  ?fixed:map ->
  ?injective:bool ->
  source:Instance.t ->
  target:Instance.t ->
  (map -> 'a -> bool * 'a) ->
  'a ->
  'a

(** First homomorphism extending [fixed], if any. *)
val find :
  ?fixed:map ->
  ?injective:bool ->
  source:Instance.t ->
  target:Instance.t ->
  unit ->
  map option

val exists :
  ?fixed:map ->
  ?injective:bool ->
  source:Instance.t ->
  target:Instance.t ->
  unit ->
  bool

(** All homomorphisms (up to [limit] if given). *)
val all :
  ?fixed:map ->
  ?injective:bool ->
  ?limit:int ->
  source:Instance.t ->
  target:Instance.t ->
  unit ->
  map list

(** Identity map on a set of elements, for use as [fixed] (homomorphisms
    preserving a set of constants). *)
val fixed_identity : Element.Set.t -> map
