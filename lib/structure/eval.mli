(** Selectivity-ordered join evaluation over {!Relindex}.

    Conjunctive bodies are atom lists over integer variables and
    constant elements. {!make_plan} orders atoms greedily — smallest
    estimated row count (cardinality over bound-position distinct
    counts) first, ties broken by fewest unbound variables, smallest
    relation, then original index — a pure function of the atoms and
    index statistics, so plans and enumeration orders are
    deterministic. {!fold} executes the plan depth-first, serving each
    atom's bound positions through the index's adaptive scan→hash
    access paths. *)

type term = Const of Element.t | Var of int
type atom = { rel : string; args : term array }

val atom : string -> term list -> atom

(** {2 Per-domain switch}

    When off, callers ({!Homomorphism}, [Query.Cq], the chase, semi-
    naive Datalog) fall back to their pre-planner naive paths. Exists so
    the equivalence suite and the bench can run both pipelines. *)

val planner_enabled : unit -> bool
val set_planner_enabled : bool -> unit

(** Run [f] with the switch set, restoring the previous value. *)
val with_planner : bool -> (unit -> 'a) -> 'a

type access = Membership | Lookup | Scan

type step = {
  atom_ix : int;  (** index into the original atom list *)
  mask : int;  (** argument positions bound when this atom runs *)
  est : float;  (** estimated matching rows *)
  access : access;
  rel_size : int;
}

type plan = { atoms : atom array; order : step list; nvars : int }

(** [make_plan idx ?bound atoms] plans the join with the variables in
    [bound] treated as already bound (they will be pre-bound at
    execution). Emits an [eval.plan] span when tracing is enabled, at
    most once per distinct body shape per domain. *)
val make_plan : Relindex.t -> ?bound:int list -> atom list -> plan

(** The chosen order, access paths and estimates as a JSON object. *)
val explain_json : plan -> string

(** Escape a string for inclusion in a JSON string literal (used by
    callers composing {!explain_json} into larger objects). *)
val json_escape : string -> string

(** [fold idx plan ~bindings f init] enumerates every assignment of the
    plan's variables satisfying all atoms, depth-first in plan order.
    [bindings] pre-binds variables; every variable below [plan.nvars]
    must occur in an atom or in [bindings]. [f] gets the assignment
    (array indexed by variable — valid only during the call) and the
    accumulator, returning [(stop, acc)]. *)
val fold :
  Relindex.t ->
  plan ->
  bindings:(int * Element.t) list ->
  (Element.t array -> 'a -> bool * 'a) ->
  'a ->
  'a

val exists : Relindex.t -> plan -> bindings:(int * Element.t) list -> bool

val pp_atom : atom Fmt.t
