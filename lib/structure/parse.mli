(** Text format for instances: one fact [R(a,b)] per line, optional
    trailing dot, ['#'] comments. *)

exception Parse_error of { line : int; message : string }

val instance_of_string : string -> Instance.t

(** Non-raising form; [Error] carries ["line N: message"]. *)
val instance_of_string_result : string -> (Instance.t, string) result
