(** The long-lived OMQ daemon behind [omq_tool serve].

    One event-loop domain owns every socket and every piece of serving
    state; [jobs] worker domains own the reasoning. Requests are
    newline-delimited {!Omq.Protocol} frames; sessions are routed
    {e sticky}: a session is pinned at open to one worker (round-robin)
    and every later request for it runs on that same worker, so the
    engines it grounded, the circuit memo and the rest of the worker's
    {!Domain.DLS} state stay hot — and are never touched from two
    domains (the engines are single-domain mutable state; stickiness is
    a correctness invariant, not just a cache policy).

    Resource governance: each request runs under a fresh
    {!Reasoner.Budget} built from the request's {!Omq.Protocol.budget_spec}
    clamped dimension-wise to the daemon's admission caps ([caps]); the
    deadline starts when the request starts executing on its worker. A
    tripped budget degrades that one request to a typed
    [Partial]/[Decide_partial] response (outcome ["timeout"] /
    ["out_of_fuel"], the wire twin of exit codes 124/125) — the daemon,
    the session and every other request are unaffected.

    Observability: when [trace] is set, every request runs under a
    private collector on its worker, absorbed into the daemon's ambient
    collector in completion order as a ["serve.request"] span tagged
    with the worker's [domain]; the merged trace is exported to the
    given file on shutdown. *)

type addr =
  | Unix_path of string  (** Unix domain socket; unlinked on shutdown *)
  | Tcp of string * int  (** bind host (numeric or name) and port *)

val pp_addr : addr Fmt.t

type config = {
  addr : addr;
  jobs : int;  (** worker domains (clamped to >= 1) *)
  caps : Omq.Protocol.budget_spec;
      (** admission caps: per-request budgets are clamped to these *)
  max_frame : int;  (** request frames longer than this are rejected
                        ([frame_too_large]) and the rest of the
                        oversized line is discarded *)
  trace : (Obs.Export.format * string) option;
  log : bool;  (** startup/shutdown notes on stderr *)
}

val default_max_frame : int

(** [run cfg] serves until a [shutdown] request: accepts connections,
    answers every in-flight request, flushes, closes and returns
    [Ok ()]. [ready] is called once listening (before the first
    accept) — for embedding the daemon in a test or bench harness.
    Setup failures (bind, listen) return [Error]. *)
val run : ?ready:(unit -> unit) -> config -> (unit, string) result
