(** The long-lived OMQ daemon behind [omq_tool serve].

    One event-loop domain owns every socket and every piece of serving
    state; [jobs] worker domains own the reasoning. Requests are
    newline-delimited {!Omq.Protocol} frames; sessions are routed
    {e sticky}: a session is pinned at open to one worker (round-robin)
    and every later request for it runs on that same worker, so the
    engines it grounded, the circuit memo and the rest of the worker's
    {!Domain.DLS} state stay hot — and are never touched from two
    domains (the engines are single-domain mutable state; stickiness is
    a correctness invariant, not just a cache policy).

    Resource governance: each request runs under a fresh
    {!Reasoner.Budget} built from the request's {!Omq.Protocol.budget_spec}
    clamped dimension-wise to the daemon's admission caps ([caps]); the
    deadline starts when the request starts executing on its worker. A
    tripped budget degrades that one request to a typed
    [Partial]/[Decide_partial] response (outcome ["timeout"] /
    ["out_of_fuel"], the wire twin of exit codes 124/125) — the daemon,
    the session and every other request are unaffected.

    Fault tolerance (see DESIGN.md for the invariants):
    - {e journal-before-ack}: with [journal] set, every open / insert /
      close is appended to the {!Journal} and fsync'd before its
      acknowledgement is queued; on startup the journal's live sessions
      are replayed before the first accept, so a killed-and-restarted
      daemon answers every acknowledged session identically. The
      journal is compacted to one open per live session past
      [journal_compact] bytes.
    - {e supervision}: with [supervise] set, a worker whose current job
      has run longer than the deadline is quarantined
      ({!Parallel.Service.replace}); its in-flight requests fail with
      the retryable [worker_lost], and its sessions are rebuilt from
      their in-memory logs on the fresh domain (works without a disk
      journal). [serve.supervision.*] counters land in
      [Obs.Metrics.global].
    - {e hardened edges}: requests beyond [max_inflight] are shed with
      the retryable [overloaded]; a connection whose unsent output
      exceeds [max_outbuf] bytes (a reader that stopped reading) is
      disconnected.
    - {e chaos}: a {!Chaos} plan, if given, injects deterministic
      faults at the read/write/accept boundary and can poison worker
      jobs — test/bench only.

    Observability: when [trace] is set, every request runs under a
    private collector on its worker, absorbed into the daemon's ambient
    collector in completion order as a ["serve.request"] span tagged
    with the worker's [domain]; startup replay is a ["serve.recovery"]
    span. The merged trace is exported to the given file on shutdown. *)

type addr =
  | Unix_path of string  (** Unix domain socket; unlinked on shutdown *)
  | Tcp of string * int  (** bind host (numeric or name) and port *)

val pp_addr : addr Fmt.t

type config = {
  addr : addr;
  jobs : int;  (** worker domains (clamped to >= 1) *)
  caps : Omq.Protocol.budget_spec;
      (** admission caps: per-request budgets are clamped to these *)
  max_frame : int;  (** request frames longer than this are rejected
                        ([frame_too_large]) and the rest of the
                        oversized line is discarded *)
  trace : (Obs.Export.format * string) option;
  log : bool;  (** startup/shutdown notes on stderr *)
  journal : string option;  (** journal directory; [None] = no journal *)
  journal_compact : int;  (** compact past this many bytes; <= 0 never *)
  supervise : float option;
      (** quarantine a worker busy on one job longer than this (s) *)
  max_inflight : int option;  (** admission cap; [None] = unbounded *)
  max_outbuf : int;  (** disconnect a conn whose unsent output exceeds this *)
  shutdown_grace : float;  (** drain deadline after shutdown/signal (s) *)
  signals : bool;
      (** route SIGTERM/SIGINT through graceful shutdown, and dump the
          flight recorder on SIGUSR1 *)
  chaos : Chaos.t option;
  metrics_addr : addr option;
      (** serve Prometheus text exposition on [GET /metrics] (and the
          telemetry dump on [GET /telemetry]) at this address, plain
          HTTP/1.0 on the same select loop; [None] = no endpoint *)
  telemetry : bool;
      (** flight recorder + request-latency histogram + batched
          per-worker GC sampling (first job, then every 32nd); off
          leaves one load+branch per completion *)
  flight_dump : string option;
      (** SIGUSR1 dump target; [None] = one JSON line on stderr *)
  flight_capacity : int;  (** flight-recorder ring size *)
}

(** Daemon build version, reported in [stats] / telemetry dumps. *)
val version : string

(** Build a {!config}; every field but [addr] has the serving default
    ([jobs = 1], no caps, {!default_max_frame}, no trace, quiet, no
    journal, {!default_journal_compact}, no supervision, unbounded
    admission, {!default_max_outbuf}, {!default_shutdown_grace}, no
    signal handlers, no chaos, no metrics endpoint, telemetry on,
    flight dump to stderr, {!Telemetry.default_capacity}). *)
val config :
  addr:addr ->
  ?jobs:int ->
  ?caps:Omq.Protocol.budget_spec ->
  ?max_frame:int ->
  ?trace:Obs.Export.format * string ->
  ?log:bool ->
  ?journal:string ->
  ?journal_compact:int ->
  ?supervise:float ->
  ?max_inflight:int ->
  ?max_outbuf:int ->
  ?shutdown_grace:float ->
  ?signals:bool ->
  ?chaos:Chaos.t ->
  ?metrics_addr:addr ->
  ?telemetry:bool ->
  ?flight_dump:string ->
  ?flight_capacity:int ->
  unit ->
  config

val default_max_frame : int
val default_max_outbuf : int
val default_journal_compact : int
val default_shutdown_grace : float

(** [run cfg] serves until a [shutdown] request (or, with [signals], a
    SIGTERM/SIGINT): accepts connections, answers every in-flight
    request, flushes, closes and returns [Ok ()]. [ready] is called
    once listening and once journal replay has finished (before the
    first accept) — for embedding the daemon in a test or bench
    harness. Setup failures (bind, listen) return [Error]. *)
val run : ?ready:(unit -> unit) -> config -> (unit, string) result
