module P = Omq.Protocol

type spec = {
  open_req : P.request;
  make_eval : session:int -> P.request;
  expected : string option;
}

type summary = {
  clients : int;
  queries_per_client : int;
  total : int;
  ok : int;
  tripped : int;
  errors : int;
  mismatches : int;
  connect_failures : int;
  io_failures : int;
  seconds : float;
  throughput_rps : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

(* Only setup errors that make the whole run meaningless are fatal
   (unresolvable address, every response stalled); a single client's
   connect or I/O failure is counted and the rest of the fleet keeps
   going — chaos benches measure degradation, they must not abort on
   the first injected fault. *)
exception Fail of string

let failf fmt = Fmt.kstr (fun m -> raise (Fail m)) fmt

type cstate = {
  index : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  spec : spec;
  mutable session : int;
  mutable got : int;  (** evals answered *)
  mutable sent_at : float;
  mutable next_id : int;
  mutable phase : [ `Opening | `Running | `Done ];
}

let sockaddr_of = function
  | Daemon.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Daemon.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failf "cannot resolve %s" host)
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))

let rng = lazy (Random.State.make_self_init ())

let backoff_sleep n =
  let d = Float.min 1.0 (0.02 *. (2.0 ** float_of_int n)) in
  let r = Random.State.float (Lazy.force rng) 1.0 in
  Unix.sleepf ((d /. 2.) +. (r *. d /. 2.))

let connect addr =
  let domain, sa = sockaddr_of addr in
  let rec go n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> Some fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        let retryable =
          match e with
          | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.ECONNRESET ->
              true
          | _ -> false
        in
        if retryable && n < 49 then begin
          backoff_sleep n;
          go (n + 1)
        end
        else None
  in
  go 0

let write_all fd s =
  let len = String.length s in
  let rec go pos =
    if pos < len then
      match Unix.write_substring fd s pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (e, _, _) ->
          Error (Unix.error_message e)
    else Ok ()
  in
  go 0

(* Latencies go through the same bucketed histogram as the daemon's
   serve.request.seconds — one code path for quantiles on both sides of
   the wire, at O(buckets) memory instead of one float per request. *)
let lat_metric = "loadgen.request.seconds"

let run addr specs ~queries =
  if specs = [] then Error "loadgen: no clients"
  else if queries < 1 then Error "loadgen: queries must be >= 1"
  else
    try
      let connect_failures = ref 0 and io_failures = ref 0 in
      let clients =
        List.concat
          (List.mapi
             (fun index spec ->
               match connect addr with
               | None ->
                   incr connect_failures;
                   []
               | Some fd ->
                   [
                     {
                       index;
                       fd;
                       inbuf = Buffer.create 512;
                       spec;
                       session = -1;
                       got = 0;
                       sent_at = 0.0;
                       next_id = 0;
                       phase = `Opening;
                     };
                   ])
             specs)
      in
      let reg = Obs.Metrics.create () in
      let ok = ref 0 and tripped = ref 0 and errors = ref 0 in
      let mismatches = ref 0 in
      let t0 = Obs.Clock.now () in
      let finish c =
        c.phase <- `Done;
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      in
      (* An I/O or framing failure kills this one client, not the run. *)
      let io_fail c =
        incr io_failures;
        finish c
      in
      let send c req =
        let id = c.next_id in
        c.next_id <- id + 1;
        match write_all c.fd (P.render_request ~id req ^ "\n") with
        | Ok () -> ()
        | Error _ -> io_fail c
      in
      let send_eval c =
        c.sent_at <- Obs.Clock.now ();
        send c (c.spec.make_eval ~session:c.session)
      in
      List.iter (fun c -> send c c.spec.open_req) clients;
      let handle_line c line =
        match P.parse_response line with
        | Error (_, (_, _)) -> io_fail c
        | Ok (_, resp) -> (
            match c.phase with
            | `Opening -> (
                match resp with
                | P.Opened { session } ->
                    c.session <- session;
                    c.phase <- `Running;
                    send_eval c
                | P.Rejected _ ->
                    incr errors;
                    finish c
                | _ -> io_fail c)
            | `Running ->
                let lat = Obs.Clock.now () -. c.sent_at in
                Obs.Metrics.observe reg lat_metric lat;
                (match resp with
                | P.Evaled _ -> incr ok
                | P.Partial _ | P.Decide_partial _ -> incr tripped
                | _ -> incr errors);
                (match c.spec.expected with
                | Some want ->
                    if P.render_response resp <> want then incr mismatches
                | None -> ());
                c.got <- c.got + 1;
                if c.got >= queries then finish c else send_eval c
            | `Done -> ())
      in
      let process c =
        let chunk = Bytes.create 65536 in
        (match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 -> io_fail c
        | n -> Buffer.add_subbytes c.inbuf chunk 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (_, _, _) -> io_fail c);
        let rec lines () =
          if c.phase <> `Done then begin
            let data = Buffer.contents c.inbuf in
            match String.index_opt data '\n' with
            | Some i ->
                let line = String.sub data 0 i in
                Buffer.clear c.inbuf;
                Buffer.add_substring c.inbuf data (i + 1)
                  (String.length data - i - 1);
                handle_line c line;
                lines ()
            | None -> ()
          end
        in
        lines ()
      in
      let rec loop () =
        let live = List.filter (fun c -> c.phase <> `Done) clients in
        if live <> [] then begin
          let fds = List.map (fun c -> c.fd) live in
          match Unix.select fds [] [] 30.0 with
          | [], _, _ -> failf "daemon stalled: no response within 30s"
          | rs, _, _ ->
              List.iter (fun c -> if List.mem c.fd rs then process c) live;
              loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        end
      in
      loop ();
      let seconds = Obs.Clock.now () -. t0 in
      let total, sum, _, max_v =
        Option.value ~default:(0, 0.0, 0.0, 0.0)
          (Obs.Metrics.histogram_stats reg lat_metric)
      in
      let ms x = 1000.0 *. x in
      let q p = ms (Option.value ~default:0.0 (Obs.Metrics.quantile reg lat_metric p)) in
      Ok
        {
          clients = List.length specs;
          queries_per_client = queries;
          total;
          ok = !ok;
          tripped = !tripped;
          errors = !errors;
          mismatches = !mismatches;
          connect_failures = !connect_failures;
          io_failures = !io_failures;
          seconds;
          throughput_rps =
            (if seconds > 0.0 then float_of_int total /. seconds else 0.0);
          mean_ms =
            (if total = 0 then 0.0 else ms (sum /. float_of_int total));
          p50_ms = q 0.50;
          p95_ms = q 0.95;
          p99_ms = q 0.99;
          max_ms = (if total = 0 then 0.0 else ms max_v);
        }
    with Fail m -> Error m

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>%d client(s) x %d quer%s: %d answered (%d ok, %d tripped, %d \
     error(s), %d mismatch(es))@,\
     failures: %d connect, %d io@,\
     %.3f s wall, %.1f req/s@,\
     latency ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f@]"
    s.clients s.queries_per_client
    (if s.queries_per_client = 1 then "y" else "ies")
    s.total s.ok s.tripped s.errors s.mismatches s.connect_failures
    s.io_failures s.seconds s.throughput_rps s.mean_ms s.p50_ms s.p95_ms
    s.p99_ms s.max_ms
