module P = Omq.Protocol

type t = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable next_id : int;
  mutable closed : bool;
}

(* Jittered exponential backoff: attempt [n] sleeps uniformly in
   [d/2, d] for d = min(1s, base * 2^n) — equal jitter, so concurrent
   clients spread out instead of thundering back in lockstep. *)
let rng = lazy (Random.State.make_self_init ())

let backoff_sleep ~base n =
  let d = Float.min 1.0 (base *. (2.0 ** float_of_int n)) in
  let r = Random.State.float (Lazy.force rng) 1.0 in
  Unix.sleepf ((d /. 2.) +. (r *. d /. 2.))

let sockaddr_of = function
  | Daemon.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Daemon.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))

let connect ?(attempts = 50) ?(base_delay = 0.02) addr =
  match sockaddr_of addr with
  | exception Not_found -> Error (Fmt.str "cannot resolve %a" Daemon.pp_addr addr)
  | domain, sa ->
      let rec go n =
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match Unix.connect fd sa with
        | () -> Ok { fd; inbuf = Buffer.create 512; next_id = 0; closed = false }
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            let retryable =
              match e with
              | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN
              | Unix.ECONNRESET ->
                  true
              | _ -> false
            in
            if retryable && n < attempts - 1 then begin
              backoff_sleep ~base:base_delay n;
              go (n + 1)
            end
            else
              Error
                (Fmt.str "connect %a: %s" Daemon.pp_addr addr
                   (Unix.error_message e))
      in
      go 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all t s =
  let len = String.length s in
  let rec go pos =
    if pos >= len then Ok ()
    else
      match Unix.write_substring t.fd s pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (e, _, _) ->
          Error (Fmt.str "write: %s" (Unix.error_message e))
  in
  go 0

(* One line from the connection, buffering any tail for the next read. *)
let read_line t =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let data = Buffer.contents t.inbuf in
    match String.index_opt data '\n' with
    | Some i ->
        let line = String.sub data 0 i in
        Buffer.clear t.inbuf;
        Buffer.add_substring t.inbuf data (i + 1) (String.length data - i - 1);
        Ok line
    | None -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "connection closed by server"
        | n ->
            Buffer.add_subbytes t.inbuf chunk 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Fmt.str "read: %s" (Unix.error_message e)))
  in
  go ()

let ( let* ) = Result.bind

let raw t line =
  let* () = write_all t (line ^ "\n") in
  read_line t

(* Retryable rejections (overloaded / worker_lost) are the daemon's
   promise that the request had no effect; resending the {e same} frame
   — same id — is the idempotent retry the protocol contract allows. *)
let call ?(retries = 0) ?(base_delay = 0.02) t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  let frame = P.render_request ~id req ^ "\n" in
  let rec attempt n =
    let* () = write_all t frame in
    let rec await () =
      let* line = read_line t in
      match P.parse_response line with
      | Ok (Some rid, resp) when rid = id -> Ok resp
      | Ok (_, _) -> await ()
      | Error (_, (_, msg)) -> Error (Fmt.str "bad response frame: %s" msg)
    in
    let* resp = await () in
    match resp with
    | P.Rejected { kind; _ } when P.retryable kind && n < retries ->
        backoff_sleep ~base:base_delay n;
        attempt (n + 1)
    | _ -> Ok resp
  in
  attempt 0
