(* One Random.State drives every decision, in consultation order. The
   daemon's event loop is single-threaded, so consultations are totally
   ordered and a (seed, workload) pair replays exactly. [poison_now] is
   also called from the event loop (at submit time, not on the worker),
   keeping that ordering intact. *)

type t = {
  rng : Random.State.t;
  torn_read : float;
  drop_read : float;
  short_write : float;
  stall_write : float;
  drop_accept : float;
  mutable poison : (int * int) option;  (* remaining job starts, worker *)
  mutable n_torn : int;
  mutable n_drop_read : int;
  mutable n_short : int;
  mutable n_stall : int;
  mutable n_drop_accept : int;
  mutable n_poisoned : int;
}

let create ~seed ?(torn_read = 0.) ?(drop_read = 0.) ?(short_write = 0.)
    ?(stall_write = 0.) ?(drop_accept = 0.) ?poison () =
  {
    rng = Random.State.make [| seed |];
    torn_read;
    drop_read;
    short_write;
    stall_write;
    drop_accept;
    poison;
    n_torn = 0;
    n_drop_read = 0;
    n_short = 0;
    n_stall = 0;
    n_drop_accept = 0;
    n_poisoned = 0;
  }

let hit t p = p > 0. && Random.State.float t.rng 1.0 < p

let on_read t ~avail =
  if hit t t.drop_read then begin
    t.n_drop_read <- t.n_drop_read + 1;
    `Drop
  end
  else if avail > 1 && hit t t.torn_read then begin
    t.n_torn <- t.n_torn + 1;
    `Deliver (1 + Random.State.int t.rng (avail - 1))
  end
  else `Deliver avail

let on_write t ~len =
  if hit t t.stall_write then begin
    t.n_stall <- t.n_stall + 1;
    `Stall
  end
  else if len > 1 && hit t t.short_write then begin
    t.n_short <- t.n_short + 1;
    `Write (1 + Random.State.int t.rng (len - 1))
  end
  else `Write len

let on_accept t =
  if hit t t.drop_accept then begin
    t.n_drop_accept <- t.n_drop_accept + 1;
    `Drop
  end
  else `Accept

let poison_now t ~worker =
  match t.poison with
  | Some (0, w) when w = worker ->
      t.poison <- None;
      t.n_poisoned <- t.n_poisoned + 1;
      true
  | Some (n, w) when w = worker ->
      t.poison <- Some (n - 1, w);
      false
  | _ -> false

let block () =
  let m = Mutex.create () and c = Condition.create () in
  Mutex.lock m;
  let rec wait () =
    Condition.wait c m;
    wait ()
  in
  wait ()

let injected t =
  (t.n_torn, t.n_drop_read, t.n_short, t.n_stall, t.n_drop_accept, t.n_poisoned)
