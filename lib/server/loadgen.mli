(** Load generator for the serve daemon: N concurrent clients, each
    opening one session and issuing M evals back to back (one request
    in flight per client — closed-loop load), multiplexed on a single
    [select] loop so the generator itself needs no threads or domains.

    Latency is measured per eval with {!Obs.Clock} from write to decoded
    response. When a spec carries [expected] (the
    {!Omq.Protocol.render_response} string of the answer, without an
    ["id"]), every response is re-rendered id-less and compared byte for
    byte — the bench's proof that served answers are identical to the
    sequential CLI's. *)

type spec = {
  open_req : Omq.Protocol.request;  (** must be an [Open_session] *)
  make_eval : session:int -> Omq.Protocol.request;
  expected : string option;
      (** id-less rendering every eval response must equal *)
}

type summary = {
  clients : int;
  queries_per_client : int;
  total : int;  (** evals answered (excludes the opens) *)
  ok : int;  (** complete [Evaled] responses *)
  tripped : int;  (** budget-tripped partials *)
  errors : int;  (** typed rejections *)
  mismatches : int;  (** responses differing from [expected] *)
  seconds : float;  (** wall time, first open to last response *)
  throughput_rps : float;  (** total / seconds *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

(** [run addr specs ~queries] drives one client per spec. [Error] when a
    connection cannot be established, an open fails, a frame cannot be
    decoded, or the daemon stalls (no progress for 30 s). *)
val run :
  Daemon.addr -> spec list -> queries:int -> (summary, string) result

val pp_summary : summary Fmt.t
