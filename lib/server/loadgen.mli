(** Load generator for the serve daemon: N concurrent clients, each
    opening one session and issuing M evals back to back (one request
    in flight per client — closed-loop load), multiplexed on a single
    [select] loop so the generator itself needs no threads or domains.

    Latency is measured per eval with {!Obs.Clock} from write to decoded
    response. When a spec carries [expected] (the
    {!Omq.Protocol.render_response} string of the answer, without an
    ["id"]), every response is re-rendered id-less and compared byte for
    byte — the bench's proof that served answers are identical to the
    sequential CLI's. *)

type spec = {
  open_req : Omq.Protocol.request;  (** must be an [Open_session] *)
  make_eval : session:int -> Omq.Protocol.request;
  expected : string option;
      (** id-less rendering every eval response must equal *)
}

type summary = {
  clients : int;  (** specs given, whether or not they connected *)
  queries_per_client : int;
  total : int;  (** evals answered (excludes the opens) *)
  ok : int;  (** complete [Evaled] responses *)
  tripped : int;  (** budget-tripped partials *)
  errors : int;  (** typed rejections *)
  mismatches : int;  (** responses differing from [expected] *)
  connect_failures : int;  (** clients that never established a connection *)
  io_failures : int;
      (** clients dropped mid-run: EOF, read/write error, undecodable
          frame — each ends that one client, never the run *)
  seconds : float;  (** wall time, first open to last response *)
  throughput_rps : float;  (** total / seconds *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

(** [run addr specs ~queries] drives one client per spec. Per-client
    faults — a connection that cannot be established, an EOF or I/O
    error mid-run, an undecodable frame — end that client and are
    counted in [connect_failures] / [io_failures]; the run carries on
    with the survivors (a run where every client failed still returns
    [Ok] with [total = 0]). [Error] is reserved for an unresolvable
    address, an empty spec list, or a full stall (no response anywhere
    for 30 s). *)
val run :
  Daemon.addr -> spec list -> queries:int -> (summary, string) result

val pp_summary : summary Fmt.t
