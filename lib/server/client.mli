(** A blocking client for the {!Omq.Protocol} wire format — the CLI's
    [omq_tool request], the load generator and the test suite all speak
    through it. One request in flight at a time: {!call} assigns a fresh
    ["id"], writes one frame and reads until the response echoing that
    id arrives (unsolicited frames with other ids are discarded). *)

type t

(** [connect addr] dials the daemon. Refused/missing endpoints are
    retried up to [attempts] times (default 50) with jittered
    exponential backoff: attempt [n] sleeps uniformly in [[d/2, d]] for
    [d = min 1.0 (base_delay * 2^n)] ([base_delay] default 0.02 s) —
    daemons start asynchronously, and jitter keeps a fleet of clients
    from reconnecting in lockstep. *)
val connect :
  ?attempts:int -> ?base_delay:float -> Daemon.addr -> (t, string) result

(** Send [request], return the matching decoded response. [Error] on
    I/O failure, EOF, or an undecodable frame.

    A {!Omq.Protocol.retryable} rejection ([overloaded] /
    [worker_lost]) is the daemon's promise that the request had no
    effect; with [retries > 0] (default 0) such a rejection is retried
    up to that many times by resending the {e same} frame — same id —
    after the same jittered backoff as {!connect}. The first
    non-retryable response (or the last retryable one when retries run
    out) is returned. *)
val call :
  ?retries:int ->
  ?base_delay:float ->
  t ->
  Omq.Protocol.request ->
  (Omq.Protocol.response, string) result

(** Escape hatch for protocol testing: send [line] verbatim (one frame;
    the newline is appended) and return the next response line raw. *)
val raw : t -> string -> (string, string) result

val close : t -> unit
