(** A blocking client for the {!Omq.Protocol} wire format — the CLI's
    [omq_tool request], the load generator and the test suite all speak
    through it. One request in flight at a time: {!call} assigns a fresh
    ["id"], writes one frame and reads until the response echoing that
    id arrives (unsolicited frames with other ids are discarded). *)

type t

(** [connect addr] dials the daemon. [attempts] (default 50) retries a
    refused/missing endpoint every 100 ms — daemons start
    asynchronously. *)
val connect : ?attempts:int -> Daemon.addr -> (t, string) result

(** Send [request], return the matching decoded response. [Error] on
    I/O failure, EOF, or an undecodable frame. *)
val call : t -> Omq.Protocol.request -> (Omq.Protocol.response, string) result

(** Escape hatch for protocol testing: send [line] verbatim (one frame;
    the newline is appended) and return the next response line raw. *)
val raw : t -> string -> (string, string) result

val close : t -> unit
