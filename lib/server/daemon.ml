(* The serve event loop.

   Single-owner architecture: this domain owns the listening socket,
   every connection, the session table, the journal and the
   served/error counters — no lock guards any of them. The only
   concurrency is the [Parallel.Service]: jobs run on worker domains
   and come back through its completion queue, which the loop drains at
   the top of every iteration; a one-byte self-pipe write (the
   service's [wakeup]) makes [select] return promptly when a completion
   lands.

   Sticky routing: a session's worker index is chosen round-robin at
   [open_session] and stored in the session record; every subsequent
   [eval] / [insert_facts] for it is submitted to that same mailbox.
   Combined with the per-mailbox FIFO this serialises all work of one
   session on one domain — required, because the engines live in that
   domain's DLS and are not movable.

   Crash-only discipline: every state-changing acknowledgement (open /
   insert / close) is journalled and fsync'd *before* the response
   bytes are queued (journal-before-ack), so after a kill -9 the
   journal replay reconstructs exactly the acknowledged state — an
   operation that was journalled but not acked is replayed harmlessly
   (the client never saw the ack and retries); one acked but not
   journalled cannot exist. Worker supervision rides the same
   machinery: a wedged worker domain is abandoned
   ([Parallel.Service.replace]), its in-flight requests fail with the
   retryable [Worker_lost], and its sessions are rebuilt on the fresh
   domain from their in-memory logs (the journal's mirror, kept even
   when no --journal is configured). *)

module P = Omq.Protocol
module S = Reasoner.Stats

type addr = Unix_path of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_path p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "%s:%d" h p

type config = {
  addr : addr;
  jobs : int;
  caps : P.budget_spec;
  max_frame : int;
  trace : (Obs.Export.format * string) option;
  log : bool;
  journal : string option;
  journal_compact : int;
  supervise : float option;
  max_inflight : int option;
  max_outbuf : int;
  shutdown_grace : float;
  signals : bool;
  chaos : Chaos.t option;
}

let default_max_frame = 8 * 1024 * 1024
let default_max_outbuf = 64 * 1024 * 1024
let default_journal_compact = 1024 * 1024
let default_shutdown_grace = 10.0

let config ~addr ?(jobs = 1) ?(caps = P.no_budget)
    ?(max_frame = default_max_frame) ?trace ?(log = false) ?journal
    ?(journal_compact = default_journal_compact) ?supervise ?max_inflight
    ?(max_outbuf = default_max_outbuf)
    ?(shutdown_grace = default_shutdown_grace) ?(signals = false) ?chaos () =
  {
    addr;
    jobs;
    caps;
    max_frame;
    trace;
    log;
    journal;
    journal_compact;
    supervise;
    max_inflight;
    max_outbuf;
    shutdown_grace;
    signals;
    chaos;
  }

let metric ?by name = Obs.Metrics.incr ?by (Obs.Metrics.global ()) name

(* ------------------------------------------------------------------ *)
(* Serving state *)

type sess = {
  omq : Omq.t;
  session : Omq.session;
  worker : int;  (** the one domain allowed to touch this session *)
  max_extra : int;
  mutable log : Journal.entry list;
      (** newest first; the head is the entry that acknowledges the
          latest state change, the reverse of the whole list is the
          session's replayable history *)
}

(* Session-table effect a completed job carries back to the loop. [New]
   always registers (it is the open that created the id); [Refresh] only
   replaces a still-live session, so an insert racing a close cannot
   resurrect it. *)
type reg = New of int * sess | Refresh of int * sess

type completion = {
  token : int;
  resp : P.response;
  register : reg option;
  worker : int;
  wstats : S.t;  (** cumulative snapshot of the worker's Stats.global *)
  trace : Obs.Trace.t option;
}

(* What the loop remembers about a submitted job. A completion whose
   token is no longer here was already failed by a quarantine — its
   (impossible, see Service's abandonment protocol) late result must be
   dropped, not double-answered. [replay_sid] marks journal/log replay
   jobs: no journalling, no response, just session resurrection. *)
type pend = {
  conn_id : int;  (** -1 for replay jobs *)
  rid : int option;
  worker : int;
  replay_sid : int option;
}

type conn = {
  id : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  stash : Buffer.t;
      (** chaos only: bytes read but withheld by a torn-read fault,
          delivered (possibly torn again) on later loop iterations *)
  mutable discarding : bool;  (** inside an oversized line: drop to \n *)
  mutable out : string;
  mutable outpos : int;
}

type state = {
  cfg : config;
  service : completion Parallel.Service.t;
  tracing : bool;
  sessions : (int, sess) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;
  pending : (int, pend) Hashtbl.t;  (** token -> submitted job *)
  replaying : (int, unit) Hashtbl.t;
      (** sids being rebuilt after a quarantine or at startup; requests
          for them are rejected with the retryable [Worker_lost] *)
  worker_stats : S.t array;
  start_s : float;
  mutable journal : Journal.t option;
  mutable next_sid : int;
  mutable next_conn_id : int;
  mutable next_token : int;
  mutable rr : int;
  mutable served : int;
  mutable errors : int;
  mutable shutting : bool;
  mutable shut_deadline : float;
}

(* ------------------------------------------------------------------ *)
(* Output: per-connection pending string + cursor, flushed as far as the
   socket accepts; the loop selects-for-write while any remains. *)

let pending_out conn = String.length conn.out > conn.outpos

let close_conn st conn =
  Hashtbl.remove st.conns conn.id;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let rec try_flush st conn =
  let len = String.length conn.out - conn.outpos in
  if len > 0 then
    let decision =
      match st.cfg.chaos with
      | None -> `Write len
      | Some ch -> Chaos.on_write ch ~len
    in
    match decision with
    | `Stall -> ()
    | `Drop -> close_conn st conn
    | `Write k -> (
        match Unix.write_substring conn.fd conn.out conn.outpos k with
        | 0 -> ()
        | n ->
            conn.outpos <- conn.outpos + n;
            (* after a chaos short write, stop: the remainder waits for
               the next select-for-write, like a real partial write *)
            if n = k && k = len then try_flush st conn
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> try_flush st conn
        | exception Unix.Unix_error _ -> close_conn st conn)

let respond st conn rid resp =
  st.served <- st.served + 1;
  (match resp with P.Rejected _ -> st.errors <- st.errors + 1 | _ -> ());
  let line = P.render_response ?id:rid resp ^ "\n" in
  let rest =
    if conn.outpos = 0 then conn.out
    else String.sub conn.out conn.outpos (String.length conn.out - conn.outpos)
  in
  conn.out <- rest ^ line;
  conn.outpos <- 0;
  try_flush st conn;
  (* A reader that stopped draining must not grow our heap without
     bound: past the cap the connection is shed. Its session (if any)
     stays live — only the transport is dropped. *)
  if
    Hashtbl.mem st.conns conn.id
    && String.length conn.out - conn.outpos > st.cfg.max_outbuf
  then begin
    metric "serve.shed.slow_disconnects";
    close_conn st conn
  end

(* ------------------------------------------------------------------ *)
(* Input loading from request payload strings; the same error-message
   shape as omq_tool's file loaders, with the field name as "file". *)

let load_tbox_text text =
  try Ok (Dl.Parser.parse_tbox text) with
  | Dl.Parser.Parse_error { line; message } ->
      Error (Printf.sprintf "ontology:%d: %s" line message)
  | Dl.Lexer.Lex_error { line; col; message } ->
      Error (Printf.sprintf "ontology:%d:%d: %s" line col message)

let load_instance_text what text =
  try Ok (Structure.Parse.instance_of_string text) with
  | Structure.Parse.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" what line message)

let load_query_text text =
  try Ok (Query.Parse.ucq_of_string text)
  with Query.Parse.Parse_error m -> Error (Printf.sprintf "query: %s" m)

let element_name e = Fmt.str "%a" Structure.Element.pp e

(* ------------------------------------------------------------------ *)
(* Budgets and stats *)

let omin cmp a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if cmp a b <= 0 then a else b)

let clamp (caps : P.budget_spec) (want : P.budget_spec) : P.budget_spec =
  {
    timeout_s = omin Float.compare want.timeout_s caps.timeout_s;
    fuel = omin Int.compare want.fuel caps.fuel;
    max_clauses = omin Int.compare want.max_clauses caps.max_clauses;
  }

let budget_of_spec (spec : P.budget_spec) =
  match spec with
  | { timeout_s = None; fuel = None; max_clauses = None } ->
      Reasoner.Budget.unlimited
  | { timeout_s; fuel; max_clauses } ->
      Reasoner.Budget.create ?timeout:timeout_s ?fuel ?max_clauses ()

let stats_delta (a : S.t) (b : S.t) : S.t =
  let d = S.create () in
  d.groundings <- b.groundings - a.groundings;
  d.solves <- b.solves - a.solves;
  d.decisions <- b.decisions - a.decisions;
  d.propagations <- b.propagations - a.propagations;
  d.conflicts <- b.conflicts - a.conflicts;
  d.cache_hits <- b.cache_hits - a.cache_hits;
  d.cache_misses <- b.cache_misses - a.cache_misses;
  d.memo_hits <- b.memo_hits - a.memo_hits;
  d.memo_misses <- b.memo_misses - a.memo_misses;
  d.budget_timeouts <- b.budget_timeouts - a.budget_timeouts;
  d.budget_fuel_trips <- b.budget_fuel_trips - a.budget_fuel_trips;
  d.ground_seconds <- b.ground_seconds -. a.ground_seconds;
  d.solve_seconds <- b.solve_seconds -. a.solve_seconds;
  d

(* Stats cross the wire as the Stats.to_json object, re-parsed into the
   protocol's Json so responses round-trip exactly. *)
let stats_json st =
  match P.Json.parse (S.to_json st) with Ok j -> j | Error _ -> P.Json.Null

(* ------------------------------------------------------------------ *)
(* Worker jobs. Each returns (response, session-table effect); raising
   is reserved for bugs and is mapped to a typed Internal response by
   [submit_job], never to a daemon crash. *)

let outcome_of = function
  | P.Partial { reason; _ } | P.Decide_partial { reason; _ } ->
      P.reason_name reason
  | P.Rejected _ -> "error"
  | _ -> "ok"

let new_token st =
  let t = st.next_token in
  st.next_token <- t + 1;
  t

(* Submit a job and remember it in the pending table. [conn_id = -1]
   with [replay_sid = Some _] is a replay job: it answers nobody, it
   just rebuilds a session. Chaos worker poisoning hooks in here — the
   decision is taken on the loop domain (keeping the fault plan's
   decision stream totally ordered); the poisoned job wedges forever,
   exactly what supervision must detect. Replay jobs are never
   poisoned: recovery must make progress. *)
let submit_raw st ~conn_id ~rid ~worker ~replay_sid ~op make =
  let token = new_token st in
  Hashtbl.replace st.pending token { conn_id; rid; worker; replay_sid };
  let tracing = st.tracing in
  let make =
    match st.cfg.chaos with
    | Some ch when replay_sid = None && Chaos.poison_now ch ~worker ->
        fun () -> Chaos.block ()
    | _ -> make
  in
  Parallel.Service.submit st.service ~worker (fun () ->
      let job () =
        try make () with
        | e ->
            ( P.Rejected { kind = P.Internal; message = Printexc.to_string e },
              None )
      in
      let (resp, register), trace =
        if tracing then
          let r, col =
            Obs.Trace.collect (fun () ->
                Obs.Trace.with_span
                  ~attrs:[ ("op", Obs.Trace.Str op) ]
                  "serve.request"
                  (fun () ->
                    let ((resp, _) as r) = job () in
                    Obs.Trace.add_attr "outcome"
                      (Obs.Trace.Str (outcome_of resp));
                    r))
          in
          (r, Some col)
        else (job (), None)
      in
      { token; resp; register; worker; wstats = S.copy (S.global ()); trace })

let submit_job st conn rid ~worker ~op make =
  submit_raw st ~conn_id:conn.id ~rid ~worker ~replay_sid:None ~op make

let open_job ~sid ~worker ~ontology ~data ~query ~max_extra () =
  let ( let* ) r f =
    match r with
    | Ok v -> f v
    | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  in
  let* tbox = load_tbox_text ontology in
  let* inst = load_instance_text "data" data in
  let* q = load_query_text query in
  let omq = Omq.of_tbox tbox q in
  let session = Omq.open_session ~max_extra omq inst in
  let log = [ Journal.Open { sid; ontology; data; query; max_extra } ] in
  ( P.Opened { session = sid },
    Some (New (sid, { omq; session; worker; max_extra; log })) )

let eval_job st (se : sess) (want : P.budget_spec) want_stats () =
  let budget = budget_of_spec (clamp st.cfg.caps want) in
  let g = S.global () in
  let before = S.copy g in
  let boolean = Query.Ucq.is_boolean se.omq.Omq.query in
  let names = List.map (List.map element_name) in
  let stats () =
    if want_stats then Some (stats_json (stats_delta before (S.copy g)))
    else None
  in
  let partial reason (p : Omq.Session.partial_answers) =
    let resume_from =
      match p.Omq.Session.undecided () with
      | Seq.Nil -> None
      | Seq.Cons (t, _) -> Some (List.map element_name t)
    in
    P.Partial
      {
        reason;
        certified = names p.Omq.Session.certified;
        resume_from;
        stats = stats ();
      }
  in
  let complete consistent answers =
    P.Evaled
      {
        result = { P.consistent; boolean; tuples = names answers };
        stats = stats ();
      }
  in
  let no_partial = { Omq.Session.certified = []; undecided = Seq.empty } in
  let resp =
    match Omq.Session.is_consistent_within budget se.session with
    | `Timeout () -> partial Reasoner.Budget.Timeout no_partial
    | `Out_of_fuel () -> partial Reasoner.Budget.Fuel no_partial
    | `Ok false -> complete false []
    | `Ok true -> (
        match Omq.Session.certain_answers_within budget se.session with
        | `Ok answers -> complete true answers
        | `Timeout p -> partial Reasoner.Budget.Timeout p
        | `Out_of_fuel p -> partial Reasoner.Budget.Fuel p)
  in
  (resp, None)

let classify_job ontology () =
  match load_tbox_text ontology with
  | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  | Ok tbox ->
      let o = Dl.Translate.tbox tbox in
      let fragment = Option.map Gf.Fragment.name (Gf.Fragment.of_ontology o) in
      let ev = Classify.Landscape.of_tbox tbox in
      ( P.Classified
          {
            dl_name = Dl.Tbox.name tbox;
            depth = Dl.Tbox.depth tbox;
            fragment;
            status = Fmt.str "%a" Classify.Landscape.pp_status ev.status;
            evidence_fragment = ev.Classify.Landscape.fragment;
            source = ev.Classify.Landscape.source;
          },
        None )

let insert_job (se : sess) sid facts () =
  match load_instance_text "facts" facts with
  | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  | Ok extra ->
      let union = Structure.Instance.union (Omq.Session.instance se.session) extra in
      let session = Omq.open_session ~max_extra:se.max_extra se.omq union in
      ( P.Inserted { session = sid; total_facts = Structure.Instance.cardinal union },
        Some
          (Refresh
             ( sid,
               { se with session; log = Journal.Insert { sid; facts } :: se.log }
             )) )

(* ------------------------------------------------------------------ *)
(* Journal plumbing (all on the loop domain) *)

let journal_append st entry =
  match st.journal with
  | None -> Ok ()
  | Some j -> (
      try
        Journal.append j entry;
        metric "serve.journal.appends";
        Ok ()
      with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

(* A session's whole history folded to one Open on its union data —
   what compaction writes and what replay re-opens. *)
let folded_entry sid (se : sess) =
  match Journal.live_sessions (List.rev se.log) with
  | [ (_, (ontology, data, query, max_extra), _) ] ->
      Journal.Open { sid; ontology; data; query; max_extra }
  | _ -> Journal.Open { sid; ontology = ""; data = ""; query = ""; max_extra = 0 }

let maybe_compact st =
  match st.journal with
  | Some j
    when st.cfg.journal_compact > 0 && Journal.size j > st.cfg.journal_compact
    -> (
      let sids =
        List.sort compare
          (Hashtbl.fold (fun sid _ acc -> sid :: acc) st.sessions [])
      in
      let folded =
        List.map (fun sid -> (sid, folded_entry sid (Hashtbl.find st.sessions sid))) sids
      in
      try
        Journal.compact j (List.map snd folded);
        List.iter
          (fun (sid, e) -> (Hashtbl.find st.sessions sid).log <- [ e ])
          folded;
        metric "serve.journal.compactions"
      with Unix.Unix_error (e, _, _) ->
        if st.cfg.log then
          Fmt.epr "omqd: journal compaction failed: %s@." (Unix.error_message e))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Request dispatch (on the loop domain) *)

let unknown_session sid =
  P.Rejected
    {
      kind = P.Unknown_session;
      message = Printf.sprintf "no session %d" sid;
    }

let replay_pending sid =
  P.Rejected
    {
      kind = P.Worker_lost;
      message = Printf.sprintf "session %d is being replayed; retry" sid;
    }

let server_stats st =
  let total = S.create () in
  Array.iter (fun w -> S.add ~into:total w) st.worker_stats;
  P.Server_stats
    {
      uptime_s = Obs.Clock.now () -. st.start_s;
      sessions = Hashtbl.length st.sessions;
      served = st.served;
      errors = st.errors;
      reasoner = stats_json total;
    }

let next_worker st =
  let w = st.rr mod Parallel.Service.jobs st.service in
  st.rr <- st.rr + 1;
  w

(* Admission control: shed rather than queue without bound. The
   rejection is [Overloaded] — retryable, the request was never
   submitted. *)
let shed st =
  match st.cfg.max_inflight with
  | Some cap when Parallel.Service.in_flight st.service >= cap ->
      metric "serve.shed.overloaded";
      true
  | _ -> false

let overloaded =
  P.Rejected { kind = P.Overloaded; message = "server overloaded; retry" }

let dispatch st conn rid (req : P.request) =
  match req with
  | P.Open_session { ontology; data; query; max_extra } ->
      if shed st then respond st conn rid overloaded
      else begin
        let sid = st.next_sid in
        st.next_sid <- sid + 1;
        let worker = next_worker st in
        submit_job st conn rid ~worker ~op:"open_session"
          (open_job ~sid ~worker ~ontology ~data ~query ~max_extra)
      end
  | P.Close_session { session } ->
      if Hashtbl.mem st.replaying session then
        respond st conn rid (replay_pending session)
      else if Hashtbl.mem st.sessions session then begin
        match journal_append st (Journal.Close { sid = session }) with
        | Ok () ->
            Hashtbl.remove st.sessions session;
            respond st conn rid (P.Closed { session })
        | Error msg ->
            respond st conn rid
              (P.Rejected
                 { kind = P.Internal; message = "journal append failed: " ^ msg })
      end
      else respond st conn rid (unknown_session session)
  | P.Eval { session; budget; want_stats } -> (
      if Hashtbl.mem st.replaying session then
        respond st conn rid (replay_pending session)
      else
        match Hashtbl.find_opt st.sessions session with
        | None -> respond st conn rid (unknown_session session)
        | Some se ->
            if shed st then respond st conn rid overloaded
            else
              submit_job st conn rid ~worker:se.worker ~op:"eval"
                (eval_job st se budget want_stats))
  | P.Classify { ontology } ->
      if shed st then respond st conn rid overloaded
      else
        submit_job st conn rid ~worker:(next_worker st) ~op:"classify"
          (classify_job ontology)
  | P.Insert_facts { session; facts } -> (
      if Hashtbl.mem st.replaying session then
        respond st conn rid (replay_pending session)
      else
        match Hashtbl.find_opt st.sessions session with
        | None -> respond st conn rid (unknown_session session)
        | Some se ->
            if shed st then respond st conn rid overloaded
            else
              submit_job st conn rid ~worker:se.worker ~op:"insert_facts"
                (insert_job se session facts))
  | P.Stats -> respond st conn rid (server_stats st)
  | P.Shutdown ->
      st.shutting <- true;
      st.shut_deadline <- Obs.Clock.now () +. st.cfg.shutdown_grace;
      respond st conn rid P.Shutdown_ack

let handle_frame st conn line =
  match P.parse_request line with
  | Error (rid, (kind, message)) ->
      respond st conn rid (P.Rejected { kind; message })
  | Ok (rid, P.Shutdown) -> dispatch st conn rid P.Shutdown
  | Ok (rid, req) ->
      if st.shutting then
        respond st conn rid
          (P.Rejected
             { kind = P.Shutting_down; message = "daemon is shutting down" })
      else dispatch st conn rid req

(* ------------------------------------------------------------------ *)
(* Framing: split the input buffer on newlines; a line longer than
   [max_frame] gets one typed rejection and is otherwise discarded (the
   [discarding] flag skips its tail without buffering it), keeping the
   connection usable. *)

let too_large st =
  P.Rejected
    {
      kind = P.Frame_too_large;
      message =
        Printf.sprintf "frame exceeds %d bytes" st.cfg.max_frame;
    }

let rec process_frames st conn =
  let data = Buffer.contents conn.inbuf in
  match String.index_opt data '\n' with
  | Some i ->
      let line = String.sub data 0 i in
      let rest = String.sub data (i + 1) (String.length data - i - 1) in
      Buffer.clear conn.inbuf;
      Buffer.add_string conn.inbuf rest;
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r'
        then String.sub line 0 (String.length line - 1)
        else line
      in
      if conn.discarding then conn.discarding <- false
      else if String.length line > st.cfg.max_frame then
        respond st conn None (too_large st)
      else if String.trim line <> "" then handle_frame st conn line;
      if Hashtbl.mem st.conns conn.id then process_frames st conn
  | None ->
      if (not conn.discarding) && Buffer.length conn.inbuf > st.cfg.max_frame
      then begin
        Buffer.clear conn.inbuf;
        conn.discarding <- true;
        respond st conn None (too_large st)
      end

(* Deliver (a chaos-chosen prefix of) a connection's stashed bytes into
   its input buffer. Bytes withheld here come back on a later loop
   iteration — exactly a frame torn across select wakeups. *)
let deliver_stash st conn =
  match st.cfg.chaos with
  | None -> ()
  | Some ch ->
      let avail = Buffer.length conn.stash in
      if avail > 0 && Hashtbl.mem st.conns conn.id then (
        match Chaos.on_read ch ~avail with
        | `Drop -> close_conn st conn
        | `Deliver k ->
            let data = Buffer.contents conn.stash in
            Buffer.clear conn.stash;
            Buffer.add_substring conn.inbuf data 0 k;
            if k < avail then Buffer.add_substring conn.stash data k (avail - k);
            process_frames st conn)

let handle_readable st conn =
  let buf = Bytes.create 65536 in
  let rec go () =
    if Hashtbl.mem st.conns conn.id then
      match Unix.read conn.fd buf 0 (Bytes.length buf) with
      | 0 -> close_conn st conn
      | n ->
          (match st.cfg.chaos with
          | None ->
              Buffer.add_subbytes conn.inbuf buf 0 n;
              process_frames st conn
          | Some _ ->
              (* append behind any withheld bytes to preserve order *)
              Buffer.add_subbytes conn.stash buf 0 n;
              deliver_stash st conn);
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> close_conn st conn
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Completions, replay and supervision *)

let submit_replay st ~sid ~worker ~ontology ~data ~query ~max_extra =
  Hashtbl.replace st.replaying sid ();
  submit_raw st ~conn_id:(-1) ~rid:None ~worker ~replay_sid:(Some sid)
    ~op:"replay_session"
    (open_job ~sid ~worker ~ontology ~data ~query ~max_extra)

let handle_completion st (c : completion) =
  match Hashtbl.find_opt st.pending c.token with
  | None -> () (* already failed by a quarantine; drop the late result *)
  | Some p -> (
      Hashtbl.remove st.pending c.token;
      st.worker_stats.(c.worker) <- c.wstats;
      (match c.trace with
      | Some col -> (
          match Obs.Trace.active () with
          | Some into ->
              Obs.Trace.absorb ~attrs:[ ("domain", Obs.Trace.Int c.worker) ]
                ~into col
          | None -> ())
      | None -> ());
      match p.replay_sid with
      | Some sid -> (
          Hashtbl.remove st.replaying sid;
          match c.register with
          | Some (New (s, se)) -> Hashtbl.replace st.sessions s se
          | Some (Refresh _) | None ->
              (* replay failed: the session is gone for good *)
              Hashtbl.remove st.sessions sid;
              metric "serve.supervision.sessions_lost";
              if st.cfg.log then
                Fmt.epr "omqd: session %d lost (replay failed: %s)@." sid
                  (match c.resp with
                  | P.Rejected { message; _ } -> message
                  | _ -> "unexpected response"))
      | None ->
          (* Journal-before-ack: the entry that acknowledges the state
             change (the head of the registered session's log) must be
             durable before the response bytes exist. On journal
             failure the op is not applied and not acked. *)
          let resp = ref c.resp in
          (match c.register with
          | Some reg -> (
              let se = match reg with New (_, se) | Refresh (_, se) -> se in
              match journal_append st (List.hd se.log) with
              | Ok () ->
                  (match reg with
                  | New (sid, se) -> Hashtbl.replace st.sessions sid se
                  | Refresh (sid, se) ->
                      if Hashtbl.mem st.sessions sid then
                        Hashtbl.replace st.sessions sid se);
                  maybe_compact st
              | Error msg ->
                  resp :=
                    P.Rejected
                      {
                        kind = P.Internal;
                        message = "journal append failed: " ^ msg;
                      })
          | None -> ());
          (match Hashtbl.find_opt st.conns p.conn_id with
          | Some conn -> respond st conn p.rid !resp
          | None -> ()))

(* Abandon worker [w]'s domain, fail everything routed to it with the
   retryable [Worker_lost], and rebuild its sessions from their
   in-memory logs on a fresh domain at the same index (sticky pins stay
   valid). Requests arriving for a session mid-replay are rejected
   retryable until its replay completion registers. *)
let quarantine st w =
  let _discarded = Parallel.Service.replace st.service ~worker:w in
  metric "serve.supervision.quarantines";
  if st.cfg.log then Fmt.epr "omqd: worker %d quarantined@." w;
  let victims =
    Hashtbl.fold
      (fun tok p acc -> if p.worker = w then (tok, p) :: acc else acc)
      st.pending []
  in
  List.iter
    (fun (tok, p) ->
      Hashtbl.remove st.pending tok;
      match p.replay_sid with
      | Some sid ->
          (* a replay job itself was lost; the session scan below
             resubmits it (or counts it lost if the record is gone) *)
          Hashtbl.remove st.replaying sid;
          if not (Hashtbl.mem st.sessions sid) then
            metric "serve.supervision.sessions_lost"
      | None -> (
          metric "serve.supervision.requests_failed";
          match Hashtbl.find_opt st.conns p.conn_id with
          | Some conn ->
              respond st conn p.rid
                (P.Rejected
                   {
                     kind = P.Worker_lost;
                     message = "worker quarantined; retry";
                   })
          | None -> ()))
    victims;
  Hashtbl.iter
    (fun sid (se : sess) ->
      if se.worker = w && not (Hashtbl.mem st.replaying sid) then begin
        metric "serve.supervision.sessions_replayed";
        match folded_entry sid se with
        | Journal.Open { ontology; data; query; max_extra; _ } ->
            submit_replay st ~sid ~worker:w ~ontology ~data ~query ~max_extra
        | _ -> ()
      end)
    st.sessions

let supervise st =
  match st.cfg.supervise with
  | None -> ()
  | Some deadline ->
      let now = Obs.Clock.now () in
      for w = 0 to Parallel.Service.jobs st.service - 1 do
        match Parallel.Service.busy_since st.service ~worker:w with
        | Some t when now -. t > deadline -> quarantine st w
        | _ -> ()
      done

(* ------------------------------------------------------------------ *)
(* Socket setup and the loop *)

let listen_on = function
  | Unix_path path ->
      if Sys.file_exists path then begin
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
      end;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      fd
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      fd

let all_conns st = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns []

let no_pending_out st =
  Hashtbl.fold (fun _ c ok -> ok && not (pending_out c)) st.conns true

let any_stash st =
  Hashtbl.fold (fun _ c any -> any || Buffer.length c.stash > 0) st.conns false

let run ?(ready = fun () -> ()) cfg =
  let prev_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore_pipe () =
    match prev_pipe with
    | Some h -> (
        try Sys.set_signal Sys.sigpipe h
        with Invalid_argument _ | Sys_error _ -> ())
    | None -> ()
  in
  match listen_on cfg.addr with
  | exception Unix.Unix_error (e, fn, _) ->
      restore_pipe ();
      Error
        (Fmt.str "cannot listen on %a: %s (%s)" pp_addr cfg.addr
           (Unix.error_message e) fn)
  | exception Not_found ->
      restore_pipe ();
      Error (Fmt.str "cannot resolve %a" pp_addr cfg.addr)
  | listen_fd ->
      let pipe_r, pipe_w = Unix.pipe () in
      Unix.set_nonblock pipe_r;
      Unix.set_nonblock pipe_w;
      let wake_byte = Bytes.make 1 '!' in
      let wakeup () =
        try ignore (Unix.single_write pipe_w wake_byte 0 1)
        with Unix.Unix_error _ -> ()
      in
      (* SIGTERM/SIGINT route through the same graceful path as the
         shutdown wire op: the handler only flips a flag and nudges the
         self-pipe; the loop does the rest. *)
      let sig_requested = ref false in
      let prev_sigs =
        if cfg.signals then
          List.filter_map
            (fun s ->
              try
                Some
                  ( s,
                    Sys.signal s
                      (Sys.Signal_handle
                         (fun _ ->
                           sig_requested := true;
                           wakeup ())) )
              with Invalid_argument _ | Sys_error _ -> None)
            [ Sys.sigterm; Sys.sigint ]
        else []
      in
      let restore_sigs () =
        List.iter
          (fun (s, h) ->
            try Sys.set_signal s h
            with Invalid_argument _ | Sys_error _ -> ())
          prev_sigs
      in
      let root =
        match cfg.trace with
        | None -> None
        | Some _ ->
            let c = Obs.Trace.create () in
            Obs.Trace.install c;
            Some c
      in
      let service =
        Parallel.Service.create ~jobs:cfg.jobs ~wakeup ~clock:Obs.Clock.now ()
      in
      let jobs = Parallel.Service.jobs service in
      let st =
        {
          cfg;
          service;
          tracing = Option.is_some root;
          sessions = Hashtbl.create 31;
          conns = Hashtbl.create 31;
          pending = Hashtbl.create 31;
          replaying = Hashtbl.create 7;
          worker_stats = Array.init jobs (fun _ -> S.create ());
          start_s = Obs.Clock.now ();
          journal = None;
          next_sid = 0;
          next_conn_id = 0;
          next_token = 0;
          rr = 0;
          served = 0;
          errors = 0;
          shutting = false;
          shut_deadline = 0.0;
        }
      in
      let drain_pipe () =
        let b = Bytes.create 256 in
        let rec go () =
          match Unix.read pipe_r b 0 (Bytes.length b) with
          | 0 -> ()
          | _ -> go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        in
        go ()
      in
      (* Startup recovery: replay the journal's live sessions before
         accepting the first connection, so a restarted daemon answers
         exactly like the one that died. *)
      let recover () =
        match cfg.journal with
        | None -> ()
        | Some dir ->
            let entries, status = Journal.load dir in
            (match status with
            | `Ok -> ()
            | `Corrupt msg ->
                if cfg.log then Fmt.epr "omqd: journal: %s (entry skipped)@." msg);
            st.journal <- Some (Journal.open_ dir);
            st.next_sid <- Journal.max_sid entries + 1;
            let live = Journal.live_sessions entries in
            let g = Obs.Metrics.global () in
            Obs.Metrics.set_count g "serve.recovery.sessions" (List.length live);
            Obs.Metrics.set_count g "serve.recovery.entries"
              (List.fold_left (fun n (_, _, k) -> n + k) 0 live);
            if live <> [] then
              Obs.Trace.with_span
                ~attrs:
                  [
                    ("sessions", Obs.Trace.Int (List.length live));
                    ("entries", Obs.Trace.Int (List.length entries));
                  ]
                "serve.recovery"
                (fun () ->
                  List.iter
                    (fun (sid, (ontology, data, query, max_extra), _) ->
                      let worker = next_worker st in
                      submit_replay st ~sid ~worker ~ontology ~data ~query
                        ~max_extra)
                    live;
                  while Hashtbl.length st.replaying > 0 do
                    List.iter (handle_completion st)
                      (Parallel.Service.drain service);
                    if Hashtbl.length st.replaying > 0 then
                      match Unix.select [ pipe_r ] [] [] 0.05 with
                      | rs, _, _ -> if rs <> [] then drain_pipe ()
                      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  done);
            if cfg.log then
              Fmt.epr "omqd: recovered %d session%s from %s@."
                (Hashtbl.length st.sessions)
                (if Hashtbl.length st.sessions = 1 then "" else "s")
                dir
      in
      if cfg.log then
        Fmt.epr "omqd: listening on %a (%d worker%s)@." pp_addr cfg.addr jobs
          (if jobs = 1 then "" else "s");
      let rec accept_all () =
        match Unix.accept listen_fd with
        | cfd, _ -> (
            match
              match cfg.chaos with
              | Some ch -> Chaos.on_accept ch
              | None -> `Accept
            with
            | `Drop ->
                (try Unix.close cfd with Unix.Unix_error _ -> ());
                accept_all ()
            | `Accept ->
                Unix.set_nonblock cfd;
                let id = st.next_conn_id in
                st.next_conn_id <- id + 1;
                Hashtbl.replace st.conns id
                  {
                    id;
                    fd = cfd;
                    inbuf = Buffer.create 512;
                    stash = Buffer.create 0;
                    discarding = false;
                    out = "";
                    outpos = 0;
                  };
                accept_all ())
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_all ()
        | exception Unix.Unix_error _ -> ()
      in
      let rec loop () =
        List.iter (handle_completion st) (Parallel.Service.drain service);
        supervise st;
        if !sig_requested && not st.shutting then begin
          st.shutting <- true;
          st.shut_deadline <- Obs.Clock.now () +. cfg.shutdown_grace;
          if cfg.log then Fmt.epr "omqd: signal received, draining@."
        end;
        if any_stash st then
          List.iter (fun c -> deliver_stash st c) (all_conns st);
        let drained =
          st.shutting
          && Parallel.Service.in_flight service = 0
          && no_pending_out st
        in
        let expired = st.shutting && Obs.Clock.now () > st.shut_deadline in
        if not (drained || expired) then begin
          let conns = all_conns st in
          let rds =
            (pipe_r :: (if st.shutting then [] else [ listen_fd ]))
            @ List.map (fun c -> c.fd) conns
          in
          let wrs =
            List.filter_map
              (fun c -> if pending_out c then Some c.fd else None)
              conns
          in
          let timeout =
            if any_stash st then 0.0
            else
              match cfg.supervise with
              | Some d when Parallel.Service.in_flight service > 0 ->
                  Float.min 0.5 (Float.max (d /. 4.) 0.005)
              | _ -> 0.5
          in
          (match Unix.select rds wrs [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | rs, ws, _ ->
              if List.mem pipe_r rs then drain_pipe ();
              if (not st.shutting) && List.mem listen_fd rs then accept_all ();
              List.iter
                (fun c ->
                  if Hashtbl.mem st.conns c.id && List.mem c.fd ws then
                    try_flush st c)
                conns;
              List.iter
                (fun c ->
                  if Hashtbl.mem st.conns c.id && List.mem c.fd rs then
                    handle_readable st c)
                conns);
          loop ()
        end
      in
      let result =
        match
          recover ();
          ready ();
          loop ()
        with
        | () -> Ok ()
        | exception e -> Error (Printexc.to_string e)
      in
      (* A worker still busy here is wedged (a drained exit implies an
         idle service): abandon it so shutdown's joins cannot hang. *)
      for w = 0 to jobs - 1 do
        if Parallel.Service.busy_since service ~worker:w <> None then
          ignore (Parallel.Service.replace service ~worker:w)
      done;
      (try Parallel.Service.shutdown service with _ -> ());
      (match st.journal with Some j -> Journal.close j | None -> ());
      (match cfg.chaos with
      | Some ch ->
          let torn, dropr, short, stall, dropa, poisoned = Chaos.injected ch in
          let g = Obs.Metrics.global () in
          Obs.Metrics.set_count g "serve.chaos.torn_reads" torn;
          Obs.Metrics.set_count g "serve.chaos.drop_reads" dropr;
          Obs.Metrics.set_count g "serve.chaos.short_writes" short;
          Obs.Metrics.set_count g "serve.chaos.stall_writes" stall;
          Obs.Metrics.set_count g "serve.chaos.drop_accepts" dropa;
          Obs.Metrics.set_count g "serve.chaos.poisoned" poisoned
      | None -> ());
      List.iter (fun c -> close_conn st c) (all_conns st);
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.close pipe_r with Unix.Unix_error _ -> ());
      (try Unix.close pipe_w with Unix.Unix_error _ -> ());
      (match cfg.addr with
      | Unix_path p -> (
          try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      | Tcp _ -> ());
      let result =
        match (root, cfg.trace) with
        | Some c, Some (fmt, path) -> (
            ignore (Obs.Trace.uninstall ());
            match Obs.Export.to_file fmt c path with
            | () -> result
            | exception Sys_error m -> (
                match result with Ok () -> Error m | Error _ -> result))
        | Some _, None | None, _ -> result
      in
      if cfg.log then Fmt.epr "omqd: shut down@.";
      restore_sigs ();
      restore_pipe ();
      result
