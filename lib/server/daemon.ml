(* The serve event loop.

   Single-owner architecture: this domain owns the listening socket,
   every connection, the session table and the served/error counters —
   no lock guards any of them. The only concurrency is the
   [Parallel.Service]: jobs run on worker domains and come back through
   its completion queue, which the loop drains at the top of every
   iteration; a one-byte self-pipe write (the service's [wakeup]) makes
   [select] return promptly when a completion lands.

   Sticky routing: a session's worker index is chosen round-robin at
   [open_session] and stored in the session record; every subsequent
   [eval] / [insert_facts] for it is submitted to that same mailbox.
   Combined with the per-mailbox FIFO this serialises all work of one
   session on one domain — required, because the engines live in that
   domain's DLS and are not movable. *)

module P = Omq.Protocol
module S = Reasoner.Stats

type addr = Unix_path of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_path p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "%s:%d" h p

type config = {
  addr : addr;
  jobs : int;
  caps : P.budget_spec;
  max_frame : int;
  trace : (Obs.Export.format * string) option;
  log : bool;
}

let default_max_frame = 8 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Serving state *)

type sess = {
  omq : Omq.t;
  session : Omq.session;
  worker : int;  (** the one domain allowed to touch this session *)
  max_extra : int;
}

(* Session-table effect a completed job carries back to the loop. [New]
   always registers (it is the open that created the id); [Refresh] only
   replaces a still-live session, so an insert racing a close cannot
   resurrect it. *)
type reg = New of int * sess | Refresh of int * sess

type completion = {
  conn_id : int;
  rid : int option;
  resp : P.response;
  register : reg option;
  worker : int;
  wstats : S.t;  (** cumulative snapshot of the worker's Stats.global *)
  trace : Obs.Trace.t option;
}

type conn = {
  id : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable discarding : bool;  (** inside an oversized line: drop to \n *)
  mutable out : string;
  mutable outpos : int;
}

type state = {
  cfg : config;
  service : completion Parallel.Service.t;
  tracing : bool;
  sessions : (int, sess) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;
  worker_stats : S.t array;
  start_s : float;
  mutable next_sid : int;
  mutable next_conn_id : int;
  mutable rr : int;
  mutable served : int;
  mutable errors : int;
  mutable shutting : bool;
  mutable shut_deadline : float;
}

(* ------------------------------------------------------------------ *)
(* Output: per-connection pending string + cursor, flushed as far as the
   socket accepts; the loop selects-for-write while any remains. *)

let pending conn = String.length conn.out > conn.outpos

let close_conn st conn =
  Hashtbl.remove st.conns conn.id;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let rec try_flush st conn =
  let len = String.length conn.out - conn.outpos in
  if len > 0 then
    match Unix.write_substring conn.fd conn.out conn.outpos len with
    | 0 -> ()
    | n ->
        conn.outpos <- conn.outpos + n;
        try_flush st conn
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> try_flush st conn
    | exception Unix.Unix_error _ -> close_conn st conn

let respond st conn rid resp =
  st.served <- st.served + 1;
  (match resp with P.Rejected _ -> st.errors <- st.errors + 1 | _ -> ());
  let line = P.render_response ?id:rid resp ^ "\n" in
  let rest =
    if conn.outpos = 0 then conn.out
    else String.sub conn.out conn.outpos (String.length conn.out - conn.outpos)
  in
  conn.out <- rest ^ line;
  conn.outpos <- 0;
  try_flush st conn

(* ------------------------------------------------------------------ *)
(* Input loading from request payload strings; the same error-message
   shape as omq_tool's file loaders, with the field name as "file". *)

let load_tbox_text text =
  try Ok (Dl.Parser.parse_tbox text) with
  | Dl.Parser.Parse_error { line; message } ->
      Error (Printf.sprintf "ontology:%d: %s" line message)
  | Dl.Lexer.Lex_error { line; col; message } ->
      Error (Printf.sprintf "ontology:%d:%d: %s" line col message)

let load_instance_text what text =
  try Ok (Structure.Parse.instance_of_string text) with
  | Structure.Parse.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" what line message)

let load_query_text text =
  try Ok (Query.Parse.ucq_of_string text)
  with Query.Parse.Parse_error m -> Error (Printf.sprintf "query: %s" m)

let element_name e = Fmt.str "%a" Structure.Element.pp e

(* ------------------------------------------------------------------ *)
(* Budgets and stats *)

let omin cmp a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if cmp a b <= 0 then a else b)

let clamp (caps : P.budget_spec) (want : P.budget_spec) : P.budget_spec =
  {
    timeout_s = omin Float.compare want.timeout_s caps.timeout_s;
    fuel = omin Int.compare want.fuel caps.fuel;
    max_clauses = omin Int.compare want.max_clauses caps.max_clauses;
  }

let budget_of_spec (spec : P.budget_spec) =
  match spec with
  | { timeout_s = None; fuel = None; max_clauses = None } ->
      Reasoner.Budget.unlimited
  | { timeout_s; fuel; max_clauses } ->
      Reasoner.Budget.create ?timeout:timeout_s ?fuel ?max_clauses ()

let stats_delta (a : S.t) (b : S.t) : S.t =
  let d = S.create () in
  d.groundings <- b.groundings - a.groundings;
  d.solves <- b.solves - a.solves;
  d.decisions <- b.decisions - a.decisions;
  d.propagations <- b.propagations - a.propagations;
  d.conflicts <- b.conflicts - a.conflicts;
  d.cache_hits <- b.cache_hits - a.cache_hits;
  d.cache_misses <- b.cache_misses - a.cache_misses;
  d.memo_hits <- b.memo_hits - a.memo_hits;
  d.memo_misses <- b.memo_misses - a.memo_misses;
  d.budget_timeouts <- b.budget_timeouts - a.budget_timeouts;
  d.budget_fuel_trips <- b.budget_fuel_trips - a.budget_fuel_trips;
  d.ground_seconds <- b.ground_seconds -. a.ground_seconds;
  d.solve_seconds <- b.solve_seconds -. a.solve_seconds;
  d

(* Stats cross the wire as the Stats.to_json object, re-parsed into the
   protocol's Json so responses round-trip exactly. *)
let stats_json st =
  match P.Json.parse (S.to_json st) with Ok j -> j | Error _ -> P.Json.Null

(* ------------------------------------------------------------------ *)
(* Worker jobs. Each returns (response, session-table effect); raising
   is reserved for bugs and is mapped to a typed Internal response by
   [submit_job], never to a daemon crash. *)

let outcome_of = function
  | P.Partial { reason; _ } | P.Decide_partial { reason; _ } ->
      P.reason_name reason
  | P.Rejected _ -> "error"
  | _ -> "ok"

let submit_job st conn rid ~worker ~op make =
  let conn_id = conn.id in
  let tracing = st.tracing in
  Parallel.Service.submit st.service ~worker (fun () ->
      let job () =
        try make () with
        | e ->
            ( P.Rejected
                { kind = P.Internal; message = Printexc.to_string e },
              None )
      in
      let (resp, register), trace =
        if tracing then
          let r, col =
            Obs.Trace.collect (fun () ->
                Obs.Trace.with_span
                  ~attrs:[ ("op", Obs.Trace.Str op) ]
                  "serve.request"
                  (fun () ->
                    let ((resp, _) as r) = job () in
                    Obs.Trace.add_attr "outcome"
                      (Obs.Trace.Str (outcome_of resp));
                    r))
          in
          (r, Some col)
        else (job (), None)
      in
      { conn_id; rid; resp; register; worker; wstats = S.copy (S.global ()); trace })

let open_job ~sid ~worker ~ontology ~data ~query ~max_extra () =
  let ( let* ) r f =
    match r with
    | Ok v -> f v
    | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  in
  let* tbox = load_tbox_text ontology in
  let* inst = load_instance_text "data" data in
  let* q = load_query_text query in
  let omq = Omq.of_tbox tbox q in
  let session = Omq.open_session ~max_extra omq inst in
  (P.Opened { session = sid }, Some (New (sid, { omq; session; worker; max_extra })))

let eval_job st (se : sess) (want : P.budget_spec) want_stats () =
  let budget = budget_of_spec (clamp st.cfg.caps want) in
  let g = S.global () in
  let before = S.copy g in
  let boolean = Query.Ucq.is_boolean se.omq.Omq.query in
  let names = List.map (List.map element_name) in
  let stats () =
    if want_stats then Some (stats_json (stats_delta before (S.copy g)))
    else None
  in
  let partial reason (p : Omq.Session.partial_answers) =
    let resume_from =
      match p.Omq.Session.undecided () with
      | Seq.Nil -> None
      | Seq.Cons (t, _) -> Some (List.map element_name t)
    in
    P.Partial
      {
        reason;
        certified = names p.Omq.Session.certified;
        resume_from;
        stats = stats ();
      }
  in
  let complete consistent answers =
    P.Evaled
      {
        result = { P.consistent; boolean; tuples = names answers };
        stats = stats ();
      }
  in
  let no_partial = { Omq.Session.certified = []; undecided = Seq.empty } in
  let resp =
    match Omq.Session.is_consistent_within budget se.session with
    | `Timeout () -> partial Reasoner.Budget.Timeout no_partial
    | `Out_of_fuel () -> partial Reasoner.Budget.Fuel no_partial
    | `Ok false -> complete false []
    | `Ok true -> (
        match Omq.Session.certain_answers_within budget se.session with
        | `Ok answers -> complete true answers
        | `Timeout p -> partial Reasoner.Budget.Timeout p
        | `Out_of_fuel p -> partial Reasoner.Budget.Fuel p)
  in
  (resp, None)

let classify_job ontology () =
  match load_tbox_text ontology with
  | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  | Ok tbox ->
      let o = Dl.Translate.tbox tbox in
      let fragment = Option.map Gf.Fragment.name (Gf.Fragment.of_ontology o) in
      let ev = Classify.Landscape.of_tbox tbox in
      ( P.Classified
          {
            dl_name = Dl.Tbox.name tbox;
            depth = Dl.Tbox.depth tbox;
            fragment;
            status = Fmt.str "%a" Classify.Landscape.pp_status ev.status;
            evidence_fragment = ev.Classify.Landscape.fragment;
            source = ev.Classify.Landscape.source;
          },
        None )

let insert_job (se : sess) sid facts () =
  match load_instance_text "facts" facts with
  | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  | Ok extra ->
      let union = Structure.Instance.union (Omq.Session.instance se.session) extra in
      let session = Omq.open_session ~max_extra:se.max_extra se.omq union in
      ( P.Inserted { session = sid; total_facts = Structure.Instance.cardinal union },
        Some (Refresh (sid, { se with session })) )

(* ------------------------------------------------------------------ *)
(* Request dispatch (on the loop domain) *)

let unknown_session sid =
  P.Rejected
    {
      kind = P.Unknown_session;
      message = Printf.sprintf "no session %d" sid;
    }

let server_stats st =
  let total = S.create () in
  Array.iter (fun w -> S.add ~into:total w) st.worker_stats;
  P.Server_stats
    {
      uptime_s = Obs.Clock.now () -. st.start_s;
      sessions = Hashtbl.length st.sessions;
      served = st.served;
      errors = st.errors;
      reasoner = stats_json total;
    }

let next_worker st =
  let w = st.rr mod Parallel.Service.jobs st.service in
  st.rr <- st.rr + 1;
  w

let shutdown_grace_s = 10.0

let dispatch st conn rid (req : P.request) =
  match req with
  | P.Open_session { ontology; data; query; max_extra } ->
      let sid = st.next_sid in
      st.next_sid <- sid + 1;
      let worker = next_worker st in
      submit_job st conn rid ~worker ~op:"open_session"
        (open_job ~sid ~worker ~ontology ~data ~query ~max_extra)
  | P.Close_session { session } ->
      if Hashtbl.mem st.sessions session then begin
        Hashtbl.remove st.sessions session;
        respond st conn rid (P.Closed { session })
      end
      else respond st conn rid (unknown_session session)
  | P.Eval { session; budget; want_stats } -> (
      match Hashtbl.find_opt st.sessions session with
      | None -> respond st conn rid (unknown_session session)
      | Some se ->
          submit_job st conn rid ~worker:se.worker ~op:"eval"
            (eval_job st se budget want_stats))
  | P.Classify { ontology } ->
      submit_job st conn rid ~worker:(next_worker st) ~op:"classify"
        (classify_job ontology)
  | P.Insert_facts { session; facts } -> (
      match Hashtbl.find_opt st.sessions session with
      | None -> respond st conn rid (unknown_session session)
      | Some se ->
          submit_job st conn rid ~worker:se.worker ~op:"insert_facts"
            (insert_job se session facts))
  | P.Stats -> respond st conn rid (server_stats st)
  | P.Shutdown ->
      st.shutting <- true;
      st.shut_deadline <- Obs.Clock.now () +. shutdown_grace_s;
      respond st conn rid P.Shutdown_ack

let handle_frame st conn line =
  match P.parse_request line with
  | Error (rid, (kind, message)) ->
      respond st conn rid (P.Rejected { kind; message })
  | Ok (rid, P.Shutdown) -> dispatch st conn rid P.Shutdown
  | Ok (rid, req) ->
      if st.shutting then
        respond st conn rid
          (P.Rejected
             { kind = P.Shutting_down; message = "daemon is shutting down" })
      else dispatch st conn rid req

(* ------------------------------------------------------------------ *)
(* Framing: split the input buffer on newlines; a line longer than
   [max_frame] gets one typed rejection and is otherwise discarded (the
   [discarding] flag skips its tail without buffering it), keeping the
   connection usable. *)

let too_large st =
  P.Rejected
    {
      kind = P.Frame_too_large;
      message =
        Printf.sprintf "frame exceeds %d bytes" st.cfg.max_frame;
    }

let rec process_frames st conn =
  let data = Buffer.contents conn.inbuf in
  match String.index_opt data '\n' with
  | Some i ->
      let line = String.sub data 0 i in
      let rest = String.sub data (i + 1) (String.length data - i - 1) in
      Buffer.clear conn.inbuf;
      Buffer.add_string conn.inbuf rest;
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r'
        then String.sub line 0 (String.length line - 1)
        else line
      in
      if conn.discarding then conn.discarding <- false
      else if String.length line > st.cfg.max_frame then
        respond st conn None (too_large st)
      else if String.trim line <> "" then handle_frame st conn line;
      if Hashtbl.mem st.conns conn.id then process_frames st conn
  | None ->
      if (not conn.discarding) && Buffer.length conn.inbuf > st.cfg.max_frame
      then begin
        Buffer.clear conn.inbuf;
        conn.discarding <- true;
        respond st conn None (too_large st)
      end

let handle_readable st conn =
  let buf = Bytes.create 65536 in
  let rec go () =
    if Hashtbl.mem st.conns conn.id then
      match Unix.read conn.fd buf 0 (Bytes.length buf) with
      | 0 -> close_conn st conn
      | n ->
          Buffer.add_subbytes conn.inbuf buf 0 n;
          process_frames st conn;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> close_conn st conn
  in
  go ()

let handle_completion st (c : completion) =
  (match c.register with
  | Some (New (sid, se)) -> Hashtbl.replace st.sessions sid se
  | Some (Refresh (sid, se)) ->
      if Hashtbl.mem st.sessions sid then Hashtbl.replace st.sessions sid se
  | None -> ());
  st.worker_stats.(c.worker) <- c.wstats;
  (match c.trace with
  | Some col -> (
      match Obs.Trace.active () with
      | Some into ->
          Obs.Trace.absorb ~attrs:[ ("domain", Obs.Trace.Int c.worker) ] ~into
            col
      | None -> ())
  | None -> ());
  match Hashtbl.find_opt st.conns c.conn_id with
  | Some conn -> respond st conn c.rid c.resp
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Socket setup and the loop *)

let listen_on = function
  | Unix_path path ->
      if Sys.file_exists path then begin
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
      end;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      fd
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      fd

let all_conns st = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns []
let no_pending st = Hashtbl.fold (fun _ c ok -> ok && not (pending c)) st.conns true

let run ?(ready = fun () -> ()) cfg =
  let prev_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore_pipe () =
    match prev_pipe with
    | Some h -> (
        try Sys.set_signal Sys.sigpipe h
        with Invalid_argument _ | Sys_error _ -> ())
    | None -> ()
  in
  match listen_on cfg.addr with
  | exception Unix.Unix_error (e, fn, _) ->
      restore_pipe ();
      Error
        (Fmt.str "cannot listen on %a: %s (%s)" pp_addr cfg.addr
           (Unix.error_message e) fn)
  | exception Not_found ->
      restore_pipe ();
      Error (Fmt.str "cannot resolve %a" pp_addr cfg.addr)
  | listen_fd ->
      let pipe_r, pipe_w = Unix.pipe () in
      Unix.set_nonblock pipe_r;
      Unix.set_nonblock pipe_w;
      let wake_byte = Bytes.make 1 '!' in
      let wakeup () =
        try ignore (Unix.single_write pipe_w wake_byte 0 1)
        with Unix.Unix_error _ -> ()
      in
      let root =
        match cfg.trace with
        | None -> None
        | Some _ ->
            let c = Obs.Trace.create () in
            Obs.Trace.install c;
            Some c
      in
      let service = Parallel.Service.create ~jobs:cfg.jobs ~wakeup () in
      let jobs = Parallel.Service.jobs service in
      let st =
        {
          cfg;
          service;
          tracing = Option.is_some root;
          sessions = Hashtbl.create 31;
          conns = Hashtbl.create 31;
          worker_stats = Array.init jobs (fun _ -> S.create ());
          start_s = Obs.Clock.now ();
          next_sid = 0;
          next_conn_id = 0;
          rr = 0;
          served = 0;
          errors = 0;
          shutting = false;
          shut_deadline = 0.0;
        }
      in
      if cfg.log then
        Fmt.epr "omqd: listening on %a (%d worker%s)@." pp_addr cfg.addr jobs
          (if jobs = 1 then "" else "s");
      let drain_pipe () =
        let b = Bytes.create 256 in
        let rec go () =
          match Unix.read pipe_r b 0 (Bytes.length b) with
          | 0 -> ()
          | _ -> go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        in
        go ()
      in
      let rec accept_all () =
        match Unix.accept listen_fd with
        | cfd, _ ->
            Unix.set_nonblock cfd;
            let id = st.next_conn_id in
            st.next_conn_id <- id + 1;
            Hashtbl.replace st.conns id
              {
                id;
                fd = cfd;
                inbuf = Buffer.create 512;
                discarding = false;
                out = "";
                outpos = 0;
              };
            accept_all ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_all ()
        | exception Unix.Unix_error _ -> ()
      in
      let rec loop () =
        List.iter (handle_completion st) (Parallel.Service.drain service);
        let drained =
          st.shutting
          && Parallel.Service.in_flight service = 0
          && no_pending st
        in
        let expired = st.shutting && Obs.Clock.now () > st.shut_deadline in
        if not (drained || expired) then begin
          let conns = all_conns st in
          let rds =
            (pipe_r :: (if st.shutting then [] else [ listen_fd ]))
            @ List.map (fun c -> c.fd) conns
          in
          let wrs =
            List.filter_map
              (fun c -> if pending c then Some c.fd else None)
              conns
          in
          (match Unix.select rds wrs [] 0.5 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | rs, ws, _ ->
              if List.mem pipe_r rs then drain_pipe ();
              if (not st.shutting) && List.mem listen_fd rs then accept_all ();
              List.iter
                (fun c ->
                  if Hashtbl.mem st.conns c.id && List.mem c.fd ws then
                    try_flush st c)
                conns;
              List.iter
                (fun c ->
                  if Hashtbl.mem st.conns c.id && List.mem c.fd rs then
                    handle_readable st c)
                conns);
          loop ()
        end
      in
      ready ();
      let result =
        match loop () with
        | () -> Ok ()
        | exception e -> Error (Printexc.to_string e)
      in
      (try Parallel.Service.shutdown service
       with _ -> ());
      List.iter (fun c -> close_conn st c) (all_conns st);
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.close pipe_r with Unix.Unix_error _ -> ());
      (try Unix.close pipe_w with Unix.Unix_error _ -> ());
      (match cfg.addr with
      | Unix_path p -> (
          try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      | Tcp _ -> ());
      let result =
        match (root, cfg.trace) with
        | Some c, Some (fmt, path) -> (
            ignore (Obs.Trace.uninstall ());
            match Obs.Export.to_file fmt c path with
            | () -> result
            | exception Sys_error m -> (
                match result with Ok () -> Error m | Error _ -> result))
        | Some _, None | None, _ -> result
      in
      if cfg.log then Fmt.epr "omqd: shut down@.";
      restore_pipe ();
      result
