(* The serve event loop.

   Single-owner architecture: this domain owns the listening socket,
   every connection, the session table, the journal and the
   served/error counters — no lock guards any of them. The only
   concurrency is the [Parallel.Service]: jobs run on worker domains
   and come back through its completion queue, which the loop drains at
   the top of every iteration; a one-byte self-pipe write (the
   service's [wakeup]) makes [select] return promptly when a completion
   lands.

   Sticky routing: a session's worker index is chosen round-robin at
   [open_session] and stored in the session record; every subsequent
   [eval] / [insert_facts] for it is submitted to that same mailbox.
   Combined with the per-mailbox FIFO this serialises all work of one
   session on one domain — required, because the engines live in that
   domain's DLS and are not movable.

   Crash-only discipline: every state-changing acknowledgement (open /
   insert / close) is journalled and fsync'd *before* the response
   bytes are queued (journal-before-ack), so after a kill -9 the
   journal replay reconstructs exactly the acknowledged state — an
   operation that was journalled but not acked is replayed harmlessly
   (the client never saw the ack and retries); one acked but not
   journalled cannot exist. Worker supervision rides the same
   machinery: a wedged worker domain is abandoned
   ([Parallel.Service.replace]), its in-flight requests fail with the
   retryable [Worker_lost], and its sessions are rebuilt on the fresh
   domain from their in-memory logs (the journal's mirror, kept even
   when no --journal is configured). *)

module P = Omq.Protocol
module S = Reasoner.Stats

type addr = Unix_path of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_path p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "%s:%d" h p

type config = {
  addr : addr;
  jobs : int;
  caps : P.budget_spec;
  max_frame : int;
  trace : (Obs.Export.format * string) option;
  log : bool;
  journal : string option;
  journal_compact : int;
  supervise : float option;
  max_inflight : int option;
  max_outbuf : int;
  shutdown_grace : float;
  signals : bool;
  chaos : Chaos.t option;
  metrics_addr : addr option;
  telemetry : bool;
  flight_dump : string option;
  flight_capacity : int;
}

let version = "0.9.0"
let default_max_frame = 8 * 1024 * 1024
let default_max_outbuf = 64 * 1024 * 1024
let default_journal_compact = 1024 * 1024
let default_shutdown_grace = 10.0

let config ~addr ?(jobs = 1) ?(caps = P.no_budget)
    ?(max_frame = default_max_frame) ?trace ?(log = false) ?journal
    ?(journal_compact = default_journal_compact) ?supervise ?max_inflight
    ?(max_outbuf = default_max_outbuf)
    ?(shutdown_grace = default_shutdown_grace) ?(signals = false) ?chaos
    ?metrics_addr ?(telemetry = true) ?flight_dump
    ?(flight_capacity = Telemetry.default_capacity) () =
  {
    addr;
    jobs;
    caps;
    max_frame;
    trace;
    log;
    journal;
    journal_compact;
    supervise;
    max_inflight;
    max_outbuf;
    shutdown_grace;
    signals;
    chaos;
    metrics_addr;
    telemetry;
    flight_dump;
    flight_capacity;
  }

let metric ?by name = Obs.Metrics.incr ?by (Obs.Metrics.global ()) name

(* ------------------------------------------------------------------ *)
(* Serving state *)

type sess = {
  omq : Omq.t;
  session : Omq.session;
  worker : int;  (** the one domain allowed to touch this session *)
  max_extra : int;
  mutable log : Journal.entry list;
      (** newest first; the head is the entry that acknowledges the
          latest state change, the reverse of the whole list is the
          session's replayable history *)
}

(* Session-table effect a completed job carries back to the loop. [New]
   always registers (it is the open that created the id); [Refresh] only
   replaces a still-live session, so an insert racing a close cannot
   resurrect it. *)
type reg = New of int * sess | Refresh of int * sess

type completion = {
  token : int;
  resp : P.response;
  register : reg option;
  worker : int;
  wstats : S.t;  (** cumulative snapshot of the worker's Stats.global *)
  msnap : Obs.Metrics.snapshot option;
      (** the worker's metrics registry (GC gauges included), snapshot
          at completion on the worker — the loop merges it at scrape
          time instead of racing the worker's DLS *)
  trace : Obs.Trace.t option;
}

(* What the loop remembers about a submitted job. A completion whose
   token is no longer here was already failed by a quarantine — its
   (impossible, see Service's abandonment protocol) late result must be
   dropped, not double-answered. [replay_sid] marks journal/log replay
   jobs: no journalling, no response, just session resurrection. *)
type pend = {
  conn_id : int;  (** -1 for replay jobs *)
  rid : int option;
  worker : int;
  replay_sid : int option;
  op : string;
  sid : int;  (** session the request addresses; -1 = none *)
  submitted_s : float;  (** loop-clock submit time, for flight dur *)
}

type conn = {
  id : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  stash : Buffer.t;
      (** chaos only: bytes read but withheld by a torn-read fault,
          delivered (possibly torn again) on later loop iterations *)
  mutable discarding : bool;  (** inside an oversized line: drop to \n *)
  mutable out : string;
  mutable outpos : int;
}

(* A /metrics scrape connection: plain HTTP/1.0 on the same select
   loop. One request, one response, close. *)
type hconn = {
  hid : int;
  hfd : Unix.file_descr;
  hin : Buffer.t;
  mutable hout : string;
  mutable houtpos : int;
}

type state = {
  cfg : config;
  service : completion Parallel.Service.t;
  tracing : bool;
  sessions : (int, sess) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;
  pending : (int, pend) Hashtbl.t;  (** token -> submitted job *)
  replaying : (int, unit) Hashtbl.t;
      (** sids being rebuilt after a quarantine or at startup; requests
          for them are rejected with the retryable [Worker_lost] *)
  worker_stats : S.t array;
  worker_msnaps : Obs.Metrics.snapshot option array;
      (** latest per-worker metrics snapshot (GC gauges etc.) *)
  served_by_worker : int array;
  flight : Telemetry.t;
  http : (int, hconn) Hashtbl.t;
  mutable next_hid : int;
  start_s : float;
  mutable journal : Journal.t option;
  mutable next_sid : int;
  mutable next_conn_id : int;
  mutable next_token : int;
  mutable rr : int;
  mutable served : int;
  mutable errors : int;
  mutable shutting : bool;
  mutable shut_deadline : float;
}

(* ------------------------------------------------------------------ *)
(* Output: per-connection pending string + cursor, flushed as far as the
   socket accepts; the loop selects-for-write while any remains. *)

let pending_out conn = String.length conn.out > conn.outpos

let close_conn st conn =
  Hashtbl.remove st.conns conn.id;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let rec try_flush st conn =
  let len = String.length conn.out - conn.outpos in
  if len > 0 then
    let decision =
      match st.cfg.chaos with
      | None -> `Write len
      | Some ch -> Chaos.on_write ch ~len
    in
    match decision with
    | `Stall -> ()
    | `Drop -> close_conn st conn
    | `Write k -> (
        match Unix.write_substring conn.fd conn.out conn.outpos k with
        | 0 -> ()
        | n ->
            conn.outpos <- conn.outpos + n;
            (* after a chaos short write, stop: the remainder waits for
               the next select-for-write, like a real partial write *)
            if n = k && k = len then try_flush st conn
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> try_flush st conn
        | exception Unix.Unix_error _ -> close_conn st conn)

let respond st conn rid resp =
  st.served <- st.served + 1;
  (match resp with P.Rejected _ -> st.errors <- st.errors + 1 | _ -> ());
  let line = P.render_response ?id:rid resp ^ "\n" in
  let rest =
    if conn.outpos = 0 then conn.out
    else String.sub conn.out conn.outpos (String.length conn.out - conn.outpos)
  in
  conn.out <- rest ^ line;
  conn.outpos <- 0;
  try_flush st conn;
  (* A reader that stopped draining must not grow our heap without
     bound: past the cap the connection is shed. Its session (if any)
     stays live — only the transport is dropped. *)
  if
    Hashtbl.mem st.conns conn.id
    && String.length conn.out - conn.outpos > st.cfg.max_outbuf
  then begin
    metric "serve.shed.slow_disconnects";
    close_conn st conn
  end

(* ------------------------------------------------------------------ *)
(* Input loading from request payload strings; the same error-message
   shape as omq_tool's file loaders, with the field name as "file". *)

let load_tbox_text text =
  try Ok (Dl.Parser.parse_tbox text) with
  | Dl.Parser.Parse_error { line; message } ->
      Error (Printf.sprintf "ontology:%d: %s" line message)
  | Dl.Lexer.Lex_error { line; col; message } ->
      Error (Printf.sprintf "ontology:%d:%d: %s" line col message)

let load_instance_text what text =
  try Ok (Structure.Parse.instance_of_string text) with
  | Structure.Parse.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" what line message)

let load_query_text text =
  try Ok (Query.Parse.ucq_of_string text)
  with Query.Parse.Parse_error m -> Error (Printf.sprintf "query: %s" m)

let element_name e = Fmt.str "%a" Structure.Element.pp e

(* ------------------------------------------------------------------ *)
(* Budgets and stats *)

let omin cmp a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if cmp a b <= 0 then a else b)

let clamp (caps : P.budget_spec) (want : P.budget_spec) : P.budget_spec =
  {
    timeout_s = omin Float.compare want.timeout_s caps.timeout_s;
    fuel = omin Int.compare want.fuel caps.fuel;
    max_clauses = omin Int.compare want.max_clauses caps.max_clauses;
  }

let budget_of_spec (spec : P.budget_spec) =
  match spec with
  | { timeout_s = None; fuel = None; max_clauses = None } ->
      Reasoner.Budget.unlimited
  | { timeout_s; fuel; max_clauses } ->
      Reasoner.Budget.create ?timeout:timeout_s ?fuel ?max_clauses ()

let stats_delta (a : S.t) (b : S.t) : S.t =
  let d = S.create () in
  d.groundings <- b.groundings - a.groundings;
  d.solves <- b.solves - a.solves;
  d.decisions <- b.decisions - a.decisions;
  d.propagations <- b.propagations - a.propagations;
  d.conflicts <- b.conflicts - a.conflicts;
  d.cache_hits <- b.cache_hits - a.cache_hits;
  d.cache_misses <- b.cache_misses - a.cache_misses;
  d.memo_hits <- b.memo_hits - a.memo_hits;
  d.memo_misses <- b.memo_misses - a.memo_misses;
  d.budget_timeouts <- b.budget_timeouts - a.budget_timeouts;
  d.budget_fuel_trips <- b.budget_fuel_trips - a.budget_fuel_trips;
  d.ground_seconds <- b.ground_seconds -. a.ground_seconds;
  d.solve_seconds <- b.solve_seconds -. a.solve_seconds;
  d

(* Stats cross the wire as the Stats.to_json object, re-parsed into the
   protocol's Json so responses round-trip exactly. *)
let stats_json st =
  match P.Json.parse (S.to_json st) with Ok j -> j | Error _ -> P.Json.Null

(* ------------------------------------------------------------------ *)
(* Worker jobs. Each returns (response, session-table effect); raising
   is reserved for bugs and is mapped to a typed Internal response by
   [submit_job], never to a daemon crash. *)

let outcome_of = function
  | P.Partial { reason; _ } | P.Decide_partial { reason; _ } ->
      P.reason_name reason
  | P.Rejected _ -> "error"
  | _ -> "ok"

let new_token st =
  let t = st.next_token in
  st.next_token <- t + 1;
  t

(* Submit a job and remember it in the pending table. [conn_id = -1]
   with [replay_sid = Some _] is a replay job: it answers nobody, it
   just rebuilds a session. Chaos worker poisoning hooks in here — the
   decision is taken on the loop domain (keeping the fault plan's
   decision stream totally ordered); the poisoned job wedges forever,
   exactly what supervision must detect. Replay jobs are never
   poisoned: recovery must make progress. *)
(* GC sampling cadence on a worker: job 0, then every Nth. The counter
   is DLS so each worker domain ticks its own. *)
let gc_sample_every = 32
let gc_sample_tick = Domain.DLS.new_key (fun () -> ref 0)

let tick_gc_sample () =
  let c = Domain.DLS.get gc_sample_tick in
  let n = !c in
  c := n + 1;
  n mod gc_sample_every = 0

let submit_raw st ~conn_id ~rid ~worker ~replay_sid ?(sid = -1) ~op make =
  let token = new_token st in
  Hashtbl.replace st.pending token
    {
      conn_id;
      rid;
      worker;
      replay_sid;
      op;
      sid;
      submitted_s = Obs.Clock.now ();
    };
  let tracing = st.tracing in
  let telemetry = Telemetry.enabled st.flight in
  let make =
    match st.cfg.chaos with
    | Some ch when replay_sid = None && Chaos.poison_now ch ~worker ->
        fun () -> Chaos.block ()
    | _ -> make
  in
  Parallel.Service.submit st.service ~worker (fun () ->
      let job () =
        try make () with
        | e ->
            ( P.Rejected { kind = P.Internal; message = Printexc.to_string e },
              None )
      in
      let (resp, register), trace =
        if tracing then
          let r, col =
            Obs.Trace.collect (fun () ->
                Obs.Trace.with_span
                  ~attrs:[ ("op", Obs.Trace.Str op) ]
                  "serve.request"
                  (fun () ->
                    let ((resp, _) as r) = job () in
                    Obs.Trace.add_attr "outcome"
                      (Obs.Trace.Str (outcome_of resp));
                    r))
          in
          (r, Some col)
        else (job (), None)
      in
      (* Per-request-batch GC sampling (the instrument ROADMAP item 3
         asks for): quick_stat is cheap and runs on the worker, so the
         gauges land in the worker's own DLS registry; the snapshot
         ships the whole registry to the loop in the completion.
         Sampling every completion would tax the hot path (and, on
         starved hosts, amplify domain thrash), so each worker samples
         its first job and then every [gc_sample_every]th; the loop
         keeps the last shipped snapshot in between. *)
      let msnap =
        if telemetry && tick_gc_sample () then begin
          let g = Obs.Metrics.global () in
          let q = Gc.quick_stat () in
          Obs.Metrics.set g "gc.major_words" q.Gc.major_words;
          Obs.Metrics.set g "gc.minor_collections"
            (float_of_int q.Gc.minor_collections);
          Some (Obs.Metrics.snapshot g)
        end
        else None
      in
      { token; resp; register; worker; wstats = S.copy (S.global ()); msnap; trace })

let submit_job st conn rid ~worker ?sid ~op make =
  submit_raw st ~conn_id:conn.id ~rid ~worker ~replay_sid:None ?sid ~op make

let open_job ~sid ~worker ~ontology ~data ~query ~max_extra () =
  let ( let* ) r f =
    match r with
    | Ok v -> f v
    | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  in
  let* tbox = load_tbox_text ontology in
  let* inst = load_instance_text "data" data in
  let* q = load_query_text query in
  let omq = Omq.of_tbox tbox q in
  (* Daemon sessions are updatable: their engines carry fact assumptions
     so insert_facts/retract_facts delta-maintain instead of reopening. *)
  let session = Omq.open_session ~max_extra ~updatable:true omq inst in
  let log = [ Journal.Open { sid; ontology; data; query; max_extra } ] in
  ( P.Opened { session = sid },
    Some (New (sid, { omq; session; worker; max_extra; log })) )

let eval_job st (se : sess) (want : P.budget_spec) want_stats () =
  let budget = budget_of_spec (clamp st.cfg.caps want) in
  let g = S.global () in
  let before = S.copy g in
  let boolean = Query.Ucq.is_boolean se.omq.Omq.query in
  let names = List.map (List.map element_name) in
  let stats () =
    if want_stats then Some (stats_json (stats_delta before (S.copy g)))
    else None
  in
  let partial reason (p : Omq.Session.partial_answers) =
    let resume_from =
      match p.Omq.Session.undecided () with
      | Seq.Nil -> None
      | Seq.Cons (t, _) -> Some (List.map element_name t)
    in
    P.Partial
      {
        reason;
        certified = names p.Omq.Session.certified;
        resume_from;
        stats = stats ();
      }
  in
  let complete consistent answers =
    P.Evaled
      {
        result = { P.consistent; boolean; tuples = names answers };
        stats = stats ();
      }
  in
  let no_partial = { Omq.Session.certified = []; undecided = Seq.empty } in
  let resp =
    match Omq.Session.is_consistent_within budget se.session with
    | `Timeout () -> partial Reasoner.Budget.Timeout no_partial
    | `Out_of_fuel () -> partial Reasoner.Budget.Fuel no_partial
    | `Ok false -> complete false []
    | `Ok true -> (
        match Omq.Session.certain_answers_within budget se.session with
        | `Ok answers -> complete true answers
        | `Timeout p -> partial Reasoner.Budget.Timeout p
        | `Out_of_fuel p -> partial Reasoner.Budget.Fuel p)
  in
  (resp, None)

let classify_job ontology () =
  match load_tbox_text ontology with
  | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  | Ok tbox ->
      let o = Dl.Translate.tbox tbox in
      let fragment = Option.map Gf.Fragment.name (Gf.Fragment.of_ontology o) in
      let ev = Classify.Landscape.of_tbox tbox in
      ( P.Classified
          {
            dl_name = Dl.Tbox.name tbox;
            depth = Dl.Tbox.depth tbox;
            fragment;
            status = Fmt.str "%a" Classify.Landscape.pp_status ev.status;
            evidence_fragment = ev.Classify.Landscape.fragment;
            source = ev.Classify.Landscape.source;
          },
        None )

(* Insert/retract delta-maintain the session's engines where possible
   (Omq.Session falls back to a reopen when not); the strategy taken is
   counted on the worker's registry and ships with the completion
   snapshot. *)
let insert_job (se : sess) sid facts () =
  match load_instance_text "facts" facts with
  | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  | Ok extra ->
      let session, strategy =
        Omq.Session.insert_facts se.session (Structure.Instance.facts extra)
      in
      (match strategy with
      | `Delta -> metric "serve.delta.inserts"
      | `Reopen -> metric "serve.delta.reopens");
      ( P.Inserted
          {
            session = sid;
            total_facts =
              Structure.Instance.cardinal (Omq.Session.instance session);
          },
        Some
          (Refresh
             ( sid,
               { se with session; log = Journal.Insert { sid; facts } :: se.log }
             )) )

let retract_job (se : sess) sid facts () =
  match load_instance_text "facts" facts with
  | Error msg -> (P.Rejected { kind = P.Bad_request; message = msg }, None)
  | Ok gone ->
      let session, strategy =
        Omq.Session.retract_facts se.session (Structure.Instance.facts gone)
      in
      (match strategy with
      | `Delta -> metric "serve.delta.retracts"
      | `Reopen -> metric "serve.delta.reopens");
      ( P.Retracted
          {
            session = sid;
            total_facts =
              Structure.Instance.cardinal (Omq.Session.instance session);
          },
        Some
          (Refresh
             ( sid,
               {
                 se with
                 session;
                 log = Journal.Retract { sid; facts } :: se.log;
               } )) )

(* ------------------------------------------------------------------ *)
(* Journal plumbing (all on the loop domain) *)

let journal_append st entry =
  match st.journal with
  | None -> Ok ()
  | Some j -> (
      try
        Journal.append j entry;
        metric "serve.journal.appends";
        Ok ()
      with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

(* A session's whole history folded to one Open on its union data —
   what compaction writes and what replay re-opens. *)
let folded_entry sid (se : sess) =
  match Journal.live_sessions (List.rev se.log) with
  | [ (_, (ontology, data, query, max_extra), _) ] ->
      Journal.Open { sid; ontology; data; query; max_extra }
  | _ -> Journal.Open { sid; ontology = ""; data = ""; query = ""; max_extra = 0 }

let maybe_compact st =
  match st.journal with
  | Some j
    when st.cfg.journal_compact > 0 && Journal.size j > st.cfg.journal_compact
    -> (
      let sids =
        List.sort compare
          (Hashtbl.fold (fun sid _ acc -> sid :: acc) st.sessions [])
      in
      let folded =
        List.map (fun sid -> (sid, folded_entry sid (Hashtbl.find st.sessions sid))) sids
      in
      try
        Journal.compact j (List.map snd folded);
        List.iter
          (fun (sid, e) -> (Hashtbl.find st.sessions sid).log <- [ e ])
          folded;
        metric "serve.journal.compactions"
      with Unix.Unix_error (e, _, _) ->
        if st.cfg.log then
          Obs.Log.error "journal compaction failed"
            ~fields:[ Obs.Log.Str ("error", Unix.error_message e) ])
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Request dispatch (on the loop domain) *)

let unknown_session sid =
  P.Rejected
    {
      kind = P.Unknown_session;
      message = Printf.sprintf "no session %d" sid;
    }

let replay_pending sid =
  P.Rejected
    {
      kind = P.Worker_lost;
      message = Printf.sprintf "session %d is being replayed; retry" sid;
    }

(* The daemon-side serve.* counters (journal, shed, supervision, chaos)
   as one flat JSON object, read out of the loop registry. *)
let serve_counters () =
  let g = Obs.Metrics.global () in
  let members =
    List.filter_map
      (fun name ->
        if String.length name >= 6 && String.sub name 0 6 = "serve." then
          match Obs.Metrics.counter_value g name with
          | Some v -> Some (name, P.Json.Num (float_of_int v))
          | None -> None
        else None)
      (Obs.Metrics.names g)
  in
  P.Json.Obj members

let journal_entry_count () =
  Option.value ~default:0
    (Obs.Metrics.counter_value (Obs.Metrics.global ()) "serve.journal.appends")

let server_stats st =
  let total = S.create () in
  Array.iter (fun w -> S.add ~into:total w) st.worker_stats;
  P.Server_stats
    {
      uptime_s = Obs.Clock.now () -. st.start_s;
      server_version = version;
      sessions = Hashtbl.length st.sessions;
      served = st.served;
      errors = st.errors;
      inflight = Parallel.Service.in_flight st.service;
      journal_bytes =
        (match st.journal with Some j -> Journal.size j | None -> 0);
      journal_entries = journal_entry_count ();
      counters = serve_counters ();
      reasoner = stats_json total;
    }

(* ------------------------------------------------------------------ *)
(* Live telemetry: the dump payload (SIGUSR1 + dump_telemetry) and the
   Prometheus scrape. Both run on the loop domain over loop-owned
   state; worker registries enter only as completion-shipped
   snapshots, never by touching another domain's DLS. *)

let worker_sessions st w =
  Hashtbl.fold
    (fun _ (se : sess) n -> if se.worker = w then n + 1 else n)
    st.sessions 0

(* Gauge lookup inside a shipped snapshot: merge it into a scratch
   registry (snapshots are tiny — a handful of gauges). *)
let snap_gauge snap name =
  match snap with
  | None -> None
  | Some snap ->
      Obs.Metrics.gauge_value (Obs.Metrics.merge_snapshots [ snap ]) name

let quantile_ms name q =
  Obs.Metrics.quantile (Obs.Metrics.global ()) name q
  |> Option.map (fun s -> s *. 1000.0)

let jnum_opt = function
  | Some v -> Obs.Json.number v
  | None -> "null"

let telemetry_json st =
  let now = Obs.Clock.now () in
  let jobs = Parallel.Service.jobs st.service in
  let worker_row w =
    let snap = st.worker_msnaps.(w) in
    Obs.Json.obj
      [
        ("domain", string_of_int w);
        ("sessions", string_of_int (worker_sessions st w));
        ("requests", string_of_int st.served_by_worker.(w));
        ( "busy_s",
          match Parallel.Service.busy_since st.service ~worker:w with
          | Some t -> Obs.Json.number (now -. t)
          | None -> "null" );
        ("gc_major_words", jnum_opt (snap_gauge snap "gc.major_words"));
        ( "gc_minor_collections",
          jnum_opt (snap_gauge snap "gc.minor_collections") );
      ]
  in
  let extra =
    [
      ("ts", Obs.Json.number now);
      ("version", Obs.Json.escape version);
      ("uptime_s", Obs.Json.number (now -. st.start_s));
      ("sessions", string_of_int (Hashtbl.length st.sessions));
      ("inflight", string_of_int (Parallel.Service.in_flight st.service));
      ("served", string_of_int st.served);
      ("errors", string_of_int st.errors);
      ("journal_bytes",
       string_of_int
         (match st.journal with Some j -> Journal.size j | None -> 0));
      ("journal_entries", string_of_int (journal_entry_count ()));
      ("p50_ms", jnum_opt (quantile_ms "serve.request.seconds" 0.50));
      ("p95_ms", jnum_opt (quantile_ms "serve.request.seconds" 0.95));
      ("p99_ms", jnum_opt (quantile_ms "serve.request.seconds" 0.99));
      ("workers", Obs.Json.arr (List.init jobs worker_row));
    ]
  in
  Telemetry.to_json ~extra st.flight

(* The exposition: the loop registry (request counters/latency
   histogram, shed/journal/supervision counters, loop GC) unlabelled,
   plus each worker's last snapshot as domain="i". Point-in-time
   gauges are refreshed here, at scrape time. *)
let scrape st =
  let g = Obs.Metrics.global () in
  let now = Obs.Clock.now () in
  Obs.Metrics.set g "serve.uptime_seconds" (now -. st.start_s);
  Obs.Metrics.set g "serve.sessions" (float_of_int (Hashtbl.length st.sessions));
  Obs.Metrics.set g "serve.inflight"
    (float_of_int (Parallel.Service.in_flight st.service));
  Obs.Metrics.set g "serve.connections"
    (float_of_int (Hashtbl.length st.conns));
  let q = Gc.quick_stat () in
  Obs.Metrics.set g "gc.major_words" q.Gc.major_words;
  Obs.Metrics.set g "gc.minor_collections" (float_of_int q.Gc.minor_collections);
  let workers =
    List.filter_map
      (fun w ->
        match st.worker_msnaps.(w) with
        | None -> None
        | Some snap ->
            Some
              ( [ ("domain", string_of_int w) ],
                Obs.Metrics.merge_snapshots [ snap ] ))
      (List.init (Array.length st.worker_msnaps) Fun.id)
  in
  Obs.Prometheus.render (([], g) :: workers)

(* ------------------------------------------------------------------ *)
(* The /metrics HTTP listener: HTTP/1.0, GET only, close after one
   response — small enough to live on the select loop without an HTTP
   dependency. *)

let close_http st (h : hconn) =
  Hashtbl.remove st.http h.hid;
  try Unix.close h.hfd with Unix.Unix_error _ -> ()

let http_pending_out (h : hconn) = String.length h.hout > h.houtpos

let try_flush_http st (h : hconn) =
  let rec go () =
    let len = String.length h.hout - h.houtpos in
    if len = 0 then close_http st h
    else
      match Unix.write_substring h.hfd h.hout h.houtpos len with
      | 0 -> ()
      | n ->
          h.houtpos <- h.houtpos + n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> close_http st h
  in
  go ()

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let contains_blank_line s =
  let n = String.length s in
  let rec go i =
    if i >= n then false
    else if s.[i] = '\n' then
      if i + 1 < n && s.[i + 1] = '\n' then true
      else if i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n' then true
      else go (i + 1)
    else go (i + 1)
  in
  go 0

let http_route st line =
  match String.split_on_char ' ' line with
  | meth :: path :: _ ->
      let path =
        match String.index_opt path '?' with
        | Some i -> String.sub path 0 i
        | None -> path
      in
      if meth <> "GET" then
        http_response ~status:"405 Method Not Allowed"
          ~content_type:"text/plain" "method not allowed\n"
      else if path = "/metrics" then
        http_response ~status:"200 OK"
          ~content_type:"text/plain; version=0.0.4; charset=utf-8" (scrape st)
      else if path = "/telemetry" then
        http_response ~status:"200 OK" ~content_type:"application/json"
          (telemetry_json st ^ "\n")
      else
        http_response ~status:"404 Not Found" ~content_type:"text/plain"
          "not found; try /metrics or /telemetry\n"
  | _ ->
      http_response ~status:"400 Bad Request" ~content_type:"text/plain"
        "bad request\n"

let handle_http_readable st (h : hconn) =
  let buf = Bytes.create 4096 in
  let rec go () =
    if Hashtbl.mem st.http h.hid then
      match Unix.read h.hfd buf 0 (Bytes.length buf) with
      | 0 -> if not (http_pending_out h) then close_http st h
      | n ->
          Buffer.add_subbytes h.hin buf 0 n;
          (* a request buffer that never completes must not grow without
             bound *)
          if Buffer.length h.hin > 16384 then close_http st h
          else begin
            let data = Buffer.contents h.hin in
            if h.hout = "" && contains_blank_line data then begin
              let line =
                match String.index_opt data '\n' with
                | Some i ->
                    let l = String.sub data 0 i in
                    if l <> "" && l.[String.length l - 1] = '\r' then
                      String.sub l 0 (String.length l - 1)
                    else l
                | None -> data
              in
              h.hout <- http_route st line;
              try_flush_http st h
            end;
            go ()
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> close_http st h
  in
  go ()

let next_worker st =
  let w = st.rr mod Parallel.Service.jobs st.service in
  st.rr <- st.rr + 1;
  w

(* Admission control: shed rather than queue without bound. The
   rejection is [Overloaded] — retryable, the request was never
   submitted. *)
let shed st =
  match st.cfg.max_inflight with
  | Some cap when Parallel.Service.in_flight st.service >= cap ->
      metric "serve.shed.overloaded";
      true
  | _ -> false

let overloaded =
  P.Rejected { kind = P.Overloaded; message = "server overloaded; retry" }

let dispatch st conn rid (req : P.request) =
  match req with
  | P.Open_session { ontology; data; query; max_extra } ->
      if shed st then respond st conn rid overloaded
      else begin
        let sid = st.next_sid in
        st.next_sid <- sid + 1;
        let worker = next_worker st in
        submit_job st conn rid ~worker ~sid ~op:"open_session"
          (open_job ~sid ~worker ~ontology ~data ~query ~max_extra)
      end
  | P.Close_session { session } ->
      if Hashtbl.mem st.replaying session then
        respond st conn rid (replay_pending session)
      else if Hashtbl.mem st.sessions session then begin
        match journal_append st (Journal.Close { sid = session }) with
        | Ok () ->
            Hashtbl.remove st.sessions session;
            respond st conn rid (P.Closed { session })
        | Error msg ->
            respond st conn rid
              (P.Rejected
                 { kind = P.Internal; message = "journal append failed: " ^ msg })
      end
      else respond st conn rid (unknown_session session)
  | P.Eval { session; budget; want_stats } -> (
      if Hashtbl.mem st.replaying session then
        respond st conn rid (replay_pending session)
      else
        match Hashtbl.find_opt st.sessions session with
        | None -> respond st conn rid (unknown_session session)
        | Some se ->
            if shed st then respond st conn rid overloaded
            else
              submit_job st conn rid ~worker:se.worker ~sid:session ~op:"eval"
                (eval_job st se budget want_stats))
  | P.Classify { ontology } ->
      if shed st then respond st conn rid overloaded
      else
        submit_job st conn rid ~worker:(next_worker st) ~op:"classify"
          (classify_job ontology)
  | P.Insert_facts { session; facts } -> (
      if Hashtbl.mem st.replaying session then
        respond st conn rid (replay_pending session)
      else
        match Hashtbl.find_opt st.sessions session with
        | None -> respond st conn rid (unknown_session session)
        | Some se ->
            if shed st then respond st conn rid overloaded
            else
              submit_job st conn rid ~worker:se.worker ~sid:session
                ~op:"insert_facts" (insert_job se session facts))
  | P.Retract_facts { session; facts } -> (
      if Hashtbl.mem st.replaying session then
        respond st conn rid (replay_pending session)
      else
        match Hashtbl.find_opt st.sessions session with
        | None -> respond st conn rid (unknown_session session)
        | Some se ->
            if shed st then respond st conn rid overloaded
            else
              submit_job st conn rid ~worker:se.worker ~sid:session
                ~op:"retract_facts" (retract_job se session facts))
  | P.Stats -> respond st conn rid (server_stats st)
  | P.Dump_telemetry ->
      let telemetry =
        match P.Json.parse (telemetry_json st) with
        | Ok j -> j
        | Error _ -> P.Json.Null
      in
      respond st conn rid (P.Telemetry { telemetry })
  | P.Shutdown ->
      st.shutting <- true;
      st.shut_deadline <- Obs.Clock.now () +. st.cfg.shutdown_grace;
      respond st conn rid P.Shutdown_ack

let handle_frame st conn line =
  match P.parse_request line with
  | Error (rid, (kind, message)) ->
      respond st conn rid (P.Rejected { kind; message })
  | Ok (rid, P.Shutdown) -> dispatch st conn rid P.Shutdown
  | Ok (rid, req) ->
      if st.shutting then
        respond st conn rid
          (P.Rejected
             { kind = P.Shutting_down; message = "daemon is shutting down" })
      else dispatch st conn rid req

(* ------------------------------------------------------------------ *)
(* Framing: split the input buffer on newlines; a line longer than
   [max_frame] gets one typed rejection and is otherwise discarded (the
   [discarding] flag skips its tail without buffering it), keeping the
   connection usable. *)

let too_large st =
  P.Rejected
    {
      kind = P.Frame_too_large;
      message =
        Printf.sprintf "frame exceeds %d bytes" st.cfg.max_frame;
    }

let rec process_frames st conn =
  let data = Buffer.contents conn.inbuf in
  match String.index_opt data '\n' with
  | Some i ->
      let line = String.sub data 0 i in
      let rest = String.sub data (i + 1) (String.length data - i - 1) in
      Buffer.clear conn.inbuf;
      Buffer.add_string conn.inbuf rest;
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r'
        then String.sub line 0 (String.length line - 1)
        else line
      in
      if conn.discarding then conn.discarding <- false
      else if String.length line > st.cfg.max_frame then
        respond st conn None (too_large st)
      else if String.trim line <> "" then handle_frame st conn line;
      if Hashtbl.mem st.conns conn.id then process_frames st conn
  | None ->
      if (not conn.discarding) && Buffer.length conn.inbuf > st.cfg.max_frame
      then begin
        Buffer.clear conn.inbuf;
        conn.discarding <- true;
        respond st conn None (too_large st)
      end

(* Deliver (a chaos-chosen prefix of) a connection's stashed bytes into
   its input buffer. Bytes withheld here come back on a later loop
   iteration — exactly a frame torn across select wakeups. *)
let deliver_stash st conn =
  match st.cfg.chaos with
  | None -> ()
  | Some ch ->
      let avail = Buffer.length conn.stash in
      if avail > 0 && Hashtbl.mem st.conns conn.id then (
        match Chaos.on_read ch ~avail with
        | `Drop -> close_conn st conn
        | `Deliver k ->
            let data = Buffer.contents conn.stash in
            Buffer.clear conn.stash;
            Buffer.add_substring conn.inbuf data 0 k;
            if k < avail then Buffer.add_substring conn.stash data k (avail - k);
            process_frames st conn)

let handle_readable st conn =
  let buf = Bytes.create 65536 in
  let rec go () =
    if Hashtbl.mem st.conns conn.id then
      match Unix.read conn.fd buf 0 (Bytes.length buf) with
      | 0 -> close_conn st conn
      | n ->
          (match st.cfg.chaos with
          | None ->
              Buffer.add_subbytes conn.inbuf buf 0 n;
              process_frames st conn
          | Some _ ->
              (* append behind any withheld bytes to preserve order *)
              Buffer.add_subbytes conn.stash buf 0 n;
              deliver_stash st conn);
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> close_conn st conn
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Completions, replay and supervision *)

let submit_replay st ~sid ~worker ~ontology ~data ~query ~max_extra =
  Hashtbl.replace st.replaying sid ();
  submit_raw st ~conn_id:(-1) ~rid:None ~worker ~replay_sid:(Some sid) ~sid
    ~op:"replay_session"
    (open_job ~sid ~worker ~ontology ~data ~query ~max_extra)

let handle_completion st (c : completion) =
  match Hashtbl.find_opt st.pending c.token with
  | None -> () (* already failed by a quarantine; drop the late result *)
  | Some p -> (
      Hashtbl.remove st.pending c.token;
      st.worker_stats.(c.worker) <- c.wstats;
      (* One load + branch when telemetry is off; otherwise the flight
         record, the latency histogram and the per-worker snapshot. *)
      if Telemetry.enabled st.flight then begin
        let now = Obs.Clock.now () in
        let dur_s = now -. p.submitted_s in
        let g = Obs.Metrics.global () in
        Obs.Metrics.incr g "serve.requests";
        Obs.Metrics.observe g "serve.request.seconds" dur_s;
        st.served_by_worker.(c.worker) <- st.served_by_worker.(c.worker) + 1;
        (match c.msnap with
        | Some _ -> st.worker_msnaps.(c.worker) <- c.msnap
        | None -> ());
        Telemetry.record st.flight
          {
            Telemetry.ts_s = now;
            op = (if p.replay_sid <> None then "recovery" else p.op);
            outcome = outcome_of c.resp;
            worker = c.worker;
            session = p.sid;
            dur_s;
          }
      end;
      (match c.trace with
      | Some col -> (
          match Obs.Trace.active () with
          | Some into ->
              Obs.Trace.absorb ~attrs:[ ("domain", Obs.Trace.Int c.worker) ]
                ~into col
          | None -> ())
      | None -> ());
      match p.replay_sid with
      | Some sid -> (
          Hashtbl.remove st.replaying sid;
          match c.register with
          | Some (New (s, se)) -> Hashtbl.replace st.sessions s se
          | Some (Refresh _) | None ->
              (* replay failed: the session is gone for good *)
              Hashtbl.remove st.sessions sid;
              metric "serve.supervision.sessions_lost";
              if st.cfg.log then
                Obs.Log.warn "session lost: replay failed"
                  ~fields:
                    [
                      Obs.Log.Int ("session", sid);
                      Obs.Log.Str
                        ( "error",
                          match c.resp with
                          | P.Rejected { message; _ } -> message
                          | _ -> "unexpected response" );
                    ])
      | None ->
          (* Journal-before-ack: the entry that acknowledges the state
             change (the head of the registered session's log) must be
             durable before the response bytes exist. On journal
             failure the op is not applied and not acked. *)
          let resp = ref c.resp in
          (match c.register with
          | Some reg -> (
              let se = match reg with New (_, se) | Refresh (_, se) -> se in
              match journal_append st (List.hd se.log) with
              | Ok () ->
                  (match reg with
                  | New (sid, se) -> Hashtbl.replace st.sessions sid se
                  | Refresh (sid, se) ->
                      if Hashtbl.mem st.sessions sid then
                        Hashtbl.replace st.sessions sid se);
                  maybe_compact st
              | Error msg ->
                  resp :=
                    P.Rejected
                      {
                        kind = P.Internal;
                        message = "journal append failed: " ^ msg;
                      })
          | None -> ());
          (match Hashtbl.find_opt st.conns p.conn_id with
          | Some conn -> respond st conn p.rid !resp
          | None -> ()))

(* Abandon worker [w]'s domain, fail everything routed to it with the
   retryable [Worker_lost], and rebuild its sessions from their
   in-memory logs on a fresh domain at the same index (sticky pins stay
   valid). Requests arriving for a session mid-replay are rejected
   retryable until its replay completion registers. *)
let quarantine st w =
  let _discarded = Parallel.Service.replace st.service ~worker:w in
  metric "serve.supervision.quarantines";
  if st.cfg.log then
    Obs.Log.warn "worker quarantined" ~fields:[ Obs.Log.Int ("worker", w) ];
  let victims =
    Hashtbl.fold
      (fun tok p acc -> if p.worker = w then (tok, p) :: acc else acc)
      st.pending []
  in
  List.iter
    (fun (tok, p) ->
      Hashtbl.remove st.pending tok;
      match p.replay_sid with
      | Some sid ->
          (* a replay job itself was lost; the session scan below
             resubmits it (or counts it lost if the record is gone) *)
          Hashtbl.remove st.replaying sid;
          if not (Hashtbl.mem st.sessions sid) then
            metric "serve.supervision.sessions_lost"
      | None -> (
          metric "serve.supervision.requests_failed";
          match Hashtbl.find_opt st.conns p.conn_id with
          | Some conn ->
              respond st conn p.rid
                (P.Rejected
                   {
                     kind = P.Worker_lost;
                     message = "worker quarantined; retry";
                   })
          | None -> ()))
    victims;
  Hashtbl.iter
    (fun sid (se : sess) ->
      if se.worker = w && not (Hashtbl.mem st.replaying sid) then begin
        metric "serve.supervision.sessions_replayed";
        match folded_entry sid se with
        | Journal.Open { ontology; data; query; max_extra; _ } ->
            submit_replay st ~sid ~worker:w ~ontology ~data ~query ~max_extra
        | _ -> ()
      end)
    st.sessions

let supervise st =
  match st.cfg.supervise with
  | None -> ()
  | Some deadline ->
      let now = Obs.Clock.now () in
      for w = 0 to Parallel.Service.jobs st.service - 1 do
        match Parallel.Service.busy_since st.service ~worker:w with
        | Some t when now -. t > deadline -> quarantine st w
        | _ -> ()
      done

(* ------------------------------------------------------------------ *)
(* Socket setup and the loop *)

let listen_on = function
  | Unix_path path ->
      if Sys.file_exists path then begin
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
      end;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      fd
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      fd

let all_conns st = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns []
let all_http st = Hashtbl.fold (fun _ h acc -> h :: acc) st.http []

let no_pending_out st =
  Hashtbl.fold (fun _ c ok -> ok && not (pending_out c)) st.conns true

let any_stash st =
  Hashtbl.fold (fun _ c any -> any || Buffer.length c.stash > 0) st.conns false

let run ?(ready = fun () -> ()) cfg =
  let prev_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore_pipe () =
    match prev_pipe with
    | Some h -> (
        try Sys.set_signal Sys.sigpipe h
        with Invalid_argument _ | Sys_error _ -> ())
    | None -> ()
  in
  (* Both listeners bind before serving starts: a misconfigured
     --metrics-addr is a startup error, not a silently absent scrape
     endpoint. *)
  let bind_both () =
    let which = ref cfg.addr in
    try
      let fd = listen_on cfg.addr in
      match cfg.metrics_addr with
      | None -> Ok (fd, None)
      | Some a -> (
          which := a;
          match listen_on a with
          | mfd -> Ok (fd, Some mfd)
          | exception e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              raise e)
    with
    | Unix.Unix_error (e, fn, _) ->
        Error
          (Fmt.str "cannot listen on %a: %s (%s)" pp_addr !which
             (Unix.error_message e) fn)
    | Not_found -> Error (Fmt.str "cannot resolve %a" pp_addr !which)
  in
  match bind_both () with
  | Error msg ->
      restore_pipe ();
      Error msg
  | Ok (listen_fd, metrics_fd) ->
      let pipe_r, pipe_w = Unix.pipe () in
      Unix.set_nonblock pipe_r;
      Unix.set_nonblock pipe_w;
      let wake_byte = Bytes.make 1 '!' in
      let wakeup () =
        try ignore (Unix.single_write pipe_w wake_byte 0 1)
        with Unix.Unix_error _ -> ()
      in
      (* SIGTERM/SIGINT route through the same graceful path as the
         shutdown wire op: the handler only flips a flag and nudges the
         self-pipe; the loop does the rest. *)
      let sig_requested = ref false in
      (* SIGUSR1 = "dump the flight recorder": the handler only flips a
         flag; the loop writes the dump between iterations. *)
      let usr1_requested = ref false in
      let install s flag =
        try
          Some
            ( s,
              Sys.signal s
                (Sys.Signal_handle
                   (fun _ ->
                     flag := true;
                     wakeup ())) )
        with Invalid_argument _ | Sys_error _ -> None
      in
      let prev_sigs =
        if cfg.signals then
          List.filter_map Fun.id
            [
              install Sys.sigterm sig_requested;
              install Sys.sigint sig_requested;
              install Sys.sigusr1 usr1_requested;
            ]
        else []
      in
      let restore_sigs () =
        List.iter
          (fun (s, h) ->
            try Sys.set_signal s h
            with Invalid_argument _ | Sys_error _ -> ())
          prev_sigs
      in
      let root =
        match cfg.trace with
        | None -> None
        | Some _ ->
            let c = Obs.Trace.create () in
            Obs.Trace.install c;
            Some c
      in
      let service =
        Parallel.Service.create ~jobs:cfg.jobs ~wakeup ~clock:Obs.Clock.now ()
      in
      let jobs = Parallel.Service.jobs service in
      let st =
        {
          cfg;
          service;
          tracing = Option.is_some root;
          sessions = Hashtbl.create 31;
          conns = Hashtbl.create 31;
          pending = Hashtbl.create 31;
          replaying = Hashtbl.create 7;
          worker_stats = Array.init jobs (fun _ -> S.create ());
          worker_msnaps = Array.make jobs None;
          served_by_worker = Array.make jobs 0;
          flight =
            (let f = Telemetry.create ~capacity:cfg.flight_capacity () in
             Telemetry.set_enabled f cfg.telemetry;
             f);
          http = Hashtbl.create 7;
          next_hid = 0;
          start_s = Obs.Clock.now ();
          journal = None;
          next_sid = 0;
          next_conn_id = 0;
          next_token = 0;
          rr = 0;
          served = 0;
          errors = 0;
          shutting = false;
          shut_deadline = 0.0;
        }
      in
      let drain_pipe () =
        let b = Bytes.create 256 in
        let rec go () =
          match Unix.read pipe_r b 0 (Bytes.length b) with
          | 0 -> ()
          | _ -> go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        in
        go ()
      in
      (* Startup recovery: replay the journal's live sessions before
         accepting the first connection, so a restarted daemon answers
         exactly like the one that died. *)
      let recover () =
        match cfg.journal with
        | None -> ()
        | Some dir ->
            let entries, status = Journal.load dir in
            (match status with
            | `Ok -> ()
            | `Corrupt msg ->
                if cfg.log then
                  Obs.Log.warn "journal entry skipped"
                    ~fields:[ Obs.Log.Str ("error", msg) ]);
            st.journal <- Some (Journal.open_ dir);
            st.next_sid <- Journal.max_sid entries + 1;
            let live = Journal.live_sessions entries in
            let g = Obs.Metrics.global () in
            Obs.Metrics.set_count g "serve.recovery.sessions" (List.length live);
            Obs.Metrics.set_count g "serve.recovery.entries"
              (List.fold_left (fun n (_, _, k) -> n + k) 0 live);
            if live <> [] then
              Obs.Trace.with_span
                ~attrs:
                  [
                    ("sessions", Obs.Trace.Int (List.length live));
                    ("entries", Obs.Trace.Int (List.length entries));
                  ]
                "serve.recovery"
                (fun () ->
                  List.iter
                    (fun (sid, (ontology, data, query, max_extra), _) ->
                      let worker = next_worker st in
                      submit_replay st ~sid ~worker ~ontology ~data ~query
                        ~max_extra)
                    live;
                  while Hashtbl.length st.replaying > 0 do
                    List.iter (handle_completion st)
                      (Parallel.Service.drain service);
                    if Hashtbl.length st.replaying > 0 then
                      match Unix.select [ pipe_r ] [] [] 0.05 with
                      | rs, _, _ -> if rs <> [] then drain_pipe ()
                      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  done);
            if cfg.log then
              Obs.Log.info "sessions recovered from journal"
                ~fields:
                  [
                    Obs.Log.Int ("sessions", Hashtbl.length st.sessions);
                    Obs.Log.Str ("journal", dir);
                  ]
      in
      if cfg.log then
        Obs.Log.info "listening"
          ~fields:
            ([
               Obs.Log.Str ("addr", Fmt.str "%a" pp_addr cfg.addr);
               Obs.Log.Int ("workers", jobs);
             ]
            @
            match cfg.metrics_addr with
            | Some a ->
                [ Obs.Log.Str ("metrics_addr", Fmt.str "%a" pp_addr a) ]
            | None -> []);
      (* The flight dump: to --flight-dump when set (write-whole-file;
         a dump is small and rare), else one JSON line on stderr. *)
      let dump_flight () =
        let doc = telemetry_json st ^ "\n" in
        match cfg.flight_dump with
        | Some path -> (
            try
              let oc = open_out path in
              output_string oc doc;
              close_out oc;
              if cfg.log then
                Obs.Log.info "flight recorder dumped"
                  ~fields:[ Obs.Log.Str ("path", path) ]
            with Sys_error m ->
              if cfg.log then
                Obs.Log.error "flight dump failed"
                  ~fields:[ Obs.Log.Str ("error", m) ])
        | None ->
            output_string stderr doc;
            flush stderr
      in
      let rec accept_http mfd =
        match Unix.accept mfd with
        | cfd, _ ->
            Unix.set_nonblock cfd;
            let hid = st.next_hid in
            st.next_hid <- hid + 1;
            Hashtbl.replace st.http hid
              {
                hid;
                hfd = cfd;
                hin = Buffer.create 256;
                hout = "";
                houtpos = 0;
              };
            accept_http mfd
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_http mfd
        | exception Unix.Unix_error _ -> ()
      in
      let rec accept_all () =
        match Unix.accept listen_fd with
        | cfd, _ -> (
            match
              match cfg.chaos with
              | Some ch -> Chaos.on_accept ch
              | None -> `Accept
            with
            | `Drop ->
                (try Unix.close cfd with Unix.Unix_error _ -> ());
                accept_all ()
            | `Accept ->
                Unix.set_nonblock cfd;
                let id = st.next_conn_id in
                st.next_conn_id <- id + 1;
                Hashtbl.replace st.conns id
                  {
                    id;
                    fd = cfd;
                    inbuf = Buffer.create 512;
                    stash = Buffer.create 0;
                    discarding = false;
                    out = "";
                    outpos = 0;
                  };
                accept_all ())
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_all ()
        | exception Unix.Unix_error _ -> ()
      in
      let rec loop () =
        List.iter (handle_completion st) (Parallel.Service.drain service);
        supervise st;
        if !sig_requested && not st.shutting then begin
          st.shutting <- true;
          st.shut_deadline <- Obs.Clock.now () +. cfg.shutdown_grace;
          if cfg.log then Obs.Log.info "signal received, draining"
        end;
        if !usr1_requested then begin
          usr1_requested := false;
          dump_flight ()
        end;
        if any_stash st then
          List.iter (fun c -> deliver_stash st c) (all_conns st);
        let drained =
          st.shutting
          && Parallel.Service.in_flight service = 0
          && no_pending_out st
        in
        let expired = st.shutting && Obs.Clock.now () > st.shut_deadline in
        if not (drained || expired) then begin
          let conns = all_conns st in
          let https = all_http st in
          let rds =
            (pipe_r :: (if st.shutting then [] else [ listen_fd ]))
            @ (match metrics_fd with
              | Some mfd when not st.shutting -> [ mfd ]
              | _ -> [])
            @ List.map (fun c -> c.fd) conns
            @ List.map (fun h -> h.hfd) https
          in
          let wrs =
            List.filter_map
              (fun c -> if pending_out c then Some c.fd else None)
              conns
            @ List.filter_map
                (fun h -> if http_pending_out h then Some h.hfd else None)
                https
          in
          let timeout =
            if any_stash st then 0.0
            else
              match cfg.supervise with
              | Some d when Parallel.Service.in_flight service > 0 ->
                  Float.min 0.5 (Float.max (d /. 4.) 0.005)
              | _ -> 0.5
          in
          (match Unix.select rds wrs [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | rs, ws, _ ->
              if List.mem pipe_r rs then drain_pipe ();
              if (not st.shutting) && List.mem listen_fd rs then accept_all ();
              (match metrics_fd with
              | Some mfd when (not st.shutting) && List.mem mfd rs ->
                  accept_http mfd
              | _ -> ());
              List.iter
                (fun c ->
                  if Hashtbl.mem st.conns c.id && List.mem c.fd ws then
                    try_flush st c)
                conns;
              List.iter
                (fun c ->
                  if Hashtbl.mem st.conns c.id && List.mem c.fd rs then
                    handle_readable st c)
                conns;
              List.iter
                (fun h ->
                  if Hashtbl.mem st.http h.hid && List.mem h.hfd ws then
                    try_flush_http st h)
                https;
              List.iter
                (fun h ->
                  if Hashtbl.mem st.http h.hid && List.mem h.hfd rs then
                    handle_http_readable st h)
                https);
          loop ()
        end
      in
      let result =
        match
          recover ();
          ready ();
          loop ()
        with
        | () -> Ok ()
        | exception e -> Error (Printexc.to_string e)
      in
      (* A worker still busy here is wedged (a drained exit implies an
         idle service): abandon it so shutdown's joins cannot hang. *)
      for w = 0 to jobs - 1 do
        if Parallel.Service.busy_since service ~worker:w <> None then
          ignore (Parallel.Service.replace service ~worker:w)
      done;
      (try Parallel.Service.shutdown service with _ -> ());
      (match st.journal with Some j -> Journal.close j | None -> ());
      (match cfg.chaos with
      | Some ch ->
          let torn, dropr, short, stall, dropa, poisoned = Chaos.injected ch in
          let g = Obs.Metrics.global () in
          Obs.Metrics.set_count g "serve.chaos.torn_reads" torn;
          Obs.Metrics.set_count g "serve.chaos.drop_reads" dropr;
          Obs.Metrics.set_count g "serve.chaos.short_writes" short;
          Obs.Metrics.set_count g "serve.chaos.stall_writes" stall;
          Obs.Metrics.set_count g "serve.chaos.drop_accepts" dropa;
          Obs.Metrics.set_count g "serve.chaos.poisoned" poisoned
      | None -> ());
      List.iter (fun c -> close_conn st c) (all_conns st);
      List.iter (fun h -> close_http st h) (all_http st);
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (match metrics_fd with
      | Some mfd -> ( try Unix.close mfd with Unix.Unix_error _ -> ())
      | None -> ());
      (try Unix.close pipe_r with Unix.Unix_error _ -> ());
      (try Unix.close pipe_w with Unix.Unix_error _ -> ());
      let unlink_path = function
        | Unix_path p -> (
            try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
        | Tcp _ -> ()
      in
      unlink_path cfg.addr;
      Option.iter unlink_path cfg.metrics_addr;
      let result =
        match (root, cfg.trace) with
        | Some c, Some (fmt, path) -> (
            ignore (Obs.Trace.uninstall ());
            match Obs.Export.to_file fmt c path with
            | () -> result
            | exception Sys_error m -> (
                match result with Ok () -> Error m | Error _ -> result))
        | Some _, None | None, _ -> result
      in
      if cfg.log then Obs.Log.info "shut down";
      restore_sigs ();
      restore_pipe ();
      result
