module P = Omq.Protocol

type entry =
  | Open of { sid : int; ontology : string; data : string; query : string; max_extra : int }
  | Insert of { sid : int; facts : string }
  | Retract of { sid : int; facts : string }
  | Close of { sid : int }

let sid_of = function
  | Open { sid; _ } | Insert { sid; _ } | Retract { sid; _ } | Close { sid } ->
      sid

(* An [Open] is the open_session wire frame with the journal's session
   id in the frame's ["id"] slot; Insert/Retract/Close already carry the
   sid in their [session] field, so their renderings are byte-identical
   to the id-less wire requests. *)
let render = function
  | Open { sid; ontology; data; query; max_extra } ->
      P.render_request ~id:sid (P.Open_session { ontology; data; query; max_extra })
  | Insert { sid; facts } ->
      P.render_request (P.Insert_facts { session = sid; facts })
  | Retract { sid; facts } ->
      P.render_request (P.Retract_facts { session = sid; facts })
  | Close { sid } -> P.render_request (P.Close_session { session = sid })

let entry_of_line line =
  match P.parse_request line with
  | Ok (Some sid, P.Open_session { ontology; data; query; max_extra }) ->
      Ok (Open { sid; ontology; data; query; max_extra })
  | Ok (None, P.Open_session _) -> Error "open entry without a session id"
  | Ok (_, P.Insert_facts { session; facts }) -> Ok (Insert { sid = session; facts })
  | Ok (_, P.Retract_facts { session; facts }) ->
      Ok (Retract { sid = session; facts })
  | Ok (_, P.Close_session { session }) -> Ok (Close { sid = session })
  | Ok (_, _) -> Error "not a journal operation"
  | Error (_, (_, msg)) -> Error msg

type t = { dir : string; file : string; mutable fd : Unix.file_descr; mutable bytes : int }

let file_of dir = Filename.concat dir "omq.journal"

let open_ dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let file = file_of dir in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let bytes = (Unix.fstat fd).Unix.st_size in
  { dir; file; fd; bytes }

let path t = t.file
let size t = t.bytes

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let append t e =
  let line = render e ^ "\n" in
  write_all t.fd line;
  Unix.fsync t.fd;
  t.bytes <- t.bytes + String.length line

let load dir =
  let file = file_of dir in
  if not (Sys.file_exists file) then ([], `Ok)
  else begin
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    let lines = String.split_on_char '\n' raw in
    (* trailing "" after a final newline is not a line *)
    let lines = List.filter (fun l -> l <> "") lines in
    let n = List.length lines in
    let entries, bad =
      List.fold_left
        (fun (acc, bad) (i, line) ->
          match entry_of_line line with
          | Ok e -> (e :: acc, bad)
          | Error msg ->
              if i = n - 1 then (acc, bad) (* torn tail: never acknowledged *)
              else (acc, Some (Printf.sprintf "line %d: %s" (i + 1) msg)))
        ([], None)
        (List.mapi (fun i l -> (i, l)) lines)
    in
    (List.rev entries, match bad with None -> `Ok | Some m -> `Corrupt m)
  end

(* One fact per line, [R(a,b)], in [compare_fact] order: the canonical
   (deterministic, re-parsable) rendering of a folded data state. *)
let render_instance inst =
  Structure.Instance.facts inst
  |> List.map (fun (f : Structure.Instance.fact) ->
         Printf.sprintf "%s(%s)" f.rel
           (String.concat "," (List.map Structure.Element.to_string f.args)))
  |> String.concat "\n"

(* Folded per-session data. Retraction cannot be expressed by text
   concatenation, so blocks are parsed and folded into a net instance;
   if any block fails to parse (it should not — the daemon validates
   facts before acknowledging, and only acknowledged operations are
   journaled) the session degrades to the historical raw-concatenation
   fold, under which retract blocks are ignored. *)
type data_fold = Net of Structure.Instance.t | Raw of string list

let fold_data state e =
  let parse s = Structure.Parse.instance_of_string_result s in
  match (state, e) with
  | _, `Open data -> (
      match parse data with Ok i -> Net i | Error _ -> Raw [ data ])
  | Net i, `Insert facts -> (
      match parse facts with
      | Ok d -> Net (Structure.Instance.union i d)
      | Error _ -> Raw [ facts; render_instance i ])
  | Net i, `Retract facts -> (
      match parse facts with
      | Ok d ->
          Net
            (Structure.Instance.FactSet.fold Structure.Instance.remove_fact
               (Structure.Instance.fact_set d) i)
      | Error _ -> Net i)
  | Raw ds, `Insert facts -> Raw (facts :: ds)
  | Raw ds, `Retract _ -> Raw ds

let render_data = function
  | Net i -> render_instance i
  | Raw ds -> String.concat "\n" (List.rev ds)

let live_sessions entries =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      match e with
      | Open { sid; ontology; data; query; max_extra } ->
          if not (Hashtbl.mem tbl sid) then order := sid :: !order;
          Hashtbl.replace tbl sid
            (ontology, fold_data (Raw []) (`Open data), query, max_extra, 1)
      | Insert { sid; facts } -> (
          match Hashtbl.find_opt tbl sid with
          | None -> () (* insert for a closed/unknown session: ignore *)
          | Some (o, ds, q, m, n) ->
              Hashtbl.replace tbl sid (o, fold_data ds (`Insert facts), q, m, n + 1))
      | Retract { sid; facts } -> (
          match Hashtbl.find_opt tbl sid with
          | None -> ()
          | Some (o, ds, q, m, n) ->
              Hashtbl.replace tbl sid (o, fold_data ds (`Retract facts), q, m, n + 1))
      | Close { sid } ->
          Hashtbl.remove tbl sid;
          order := List.filter (fun s -> s <> sid) !order)
    entries;
  List.rev_map
    (fun sid ->
      match Hashtbl.find_opt tbl sid with
      | None -> assert false
      | Some (o, ds, q, m, n) -> (sid, (o, render_data ds, q, m), n))
    !order

let max_sid entries = List.fold_left (fun m e -> max m (sid_of e)) 0 entries

let compact t entries =
  let tmp = t.file ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let bytes =
    List.fold_left
      (fun acc e ->
        let line = render e ^ "\n" in
        write_all fd line;
        acc + String.length line)
      0 entries
  in
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp t.file;
  (* rename is atomic on POSIX; fsync the directory so the rename
     itself survives a crash *)
  (try
     let dfd = Unix.openfile t.dir [ Unix.O_RDONLY ] 0 in
     (try Unix.fsync dfd with Unix.Unix_error _ -> ());
     Unix.close dfd
   with Unix.Unix_error _ -> ());
  Unix.close t.fd;
  t.fd <- Unix.openfile t.file [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
  t.bytes <- bytes

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
