(* The daemon's flight recorder: a bounded ring of completed request
   records, owned by the select loop (single writer, so no lock). It is
   always on by default — the per-record cost is one array store and a
   couple of field writes — and the [enabled] flag turns even that off,
   leaving one load + branch on the hot path.

   The ring answers "what did the daemon just do" without a debugger:
   it is dumped as JSON on SIGUSR1 (to [--flight-dump PATH]) and over
   the wire by the [dump_telemetry] op. *)

type record = {
  ts_s : float;  (** completion time, Obs.Clock *)
  op : string;  (** wire op, or "recovery" for journal replay *)
  outcome : string;  (** ok / timeout / out_of_fuel / error kind *)
  worker : int;  (** worker domain index; -1 = handled on the loop *)
  session : int;  (** -1 when the request has no session *)
  dur_s : float;  (** submit-to-completion wall time *)
}

type t = {
  ring : record option array;
  mutable next : int;  (** next slot to overwrite *)
  mutable total : int;  (** records ever pushed *)
  mutable enabled : bool;
}

let default_capacity = 512

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  { ring = Array.make capacity None; next = 0; total = 0; enabled = true }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let capacity t = Array.length t.ring

let record t r =
  if t.enabled then begin
    t.ring.(t.next) <- Some r;
    t.next <- (t.next + 1) mod Array.length t.ring;
    t.total <- t.total + 1
  end

(* Oldest first. *)
let records t =
  let n = Array.length t.ring in
  let out = ref [] in
  (* walk newest slot down to oldest, prepending: the result comes out
     oldest first *)
  for i = n - 1 downto 0 do
    match t.ring.((t.next + i) mod n) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  !out

let total t = t.total
let dropped t = max 0 (t.total - Array.length t.ring)

let record_json r =
  Obs.Json.obj
    [
      ("ts", Obs.Json.number r.ts_s);
      ("op", Obs.Json.escape r.op);
      ("outcome", Obs.Json.escape r.outcome);
      ("worker", string_of_int r.worker);
      ("session", string_of_int r.session);
      ("dur_ms", Obs.Json.number (r.dur_s *. 1000.0));
    ]

(* The dump is one object so extra context (per-worker rows, quantiles)
   can ride along: callers pass pre-rendered extra members. *)
let to_json ?(extra = []) t =
  Obs.Json.obj
    (extra
    @ [
        ("flight_total", string_of_int t.total);
        ("flight_dropped", string_of_int (dropped t));
        ("flight", Obs.Json.arr (List.map record_json (records t)));
      ])
