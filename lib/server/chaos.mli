(** Deterministic fault injection at the daemon's I/O boundary — the
    serving-layer twin of [Reasoner.Budget.inject_after].

    A plan is a seeded decision stream: given the same seed and the same
    sequence of decision points (reads, writes, accepts, job starts),
    it injects the same faults. The daemon consults it at each boundary
    and obeys; the plan never touches sockets itself, so every fault is
    reproducible from the seed alone and tests can assert exact
    recovery behaviour without sleeps or timing races.

    Fault classes, each an independent probability in [0,1]:
    - {e torn reads} — deliver only a prefix of the bytes a [read]
      returned; the rest is withheld and re-delivered on the next
      wakeup, exercising frames split across [select] iterations;
    - {e dropped reads} — treat the connection as EOF mid-request;
    - {e short writes} — accept only a prefix of an output flush
      (at least 1 byte, so progress is guaranteed);
    - {e stalled writes} — accept 0 bytes, simulating a reader that
      stopped draining (exercises the bounded-outbuf disconnect);
    - {e dropped accepts} — close an incoming connection immediately;
    - {e poisoned jobs} — after [n] job starts on a given worker, wedge
      that worker forever (exercises supervision + replay).

    All decisions come from one [Random.State] seeded with [seed], so a
    plan is a value: pass the same plan description to a test twice and
    the daemon misbehaves identically. *)

type t

(** [create ~seed ()] with all rates 0 and no poisoning injects
    nothing. [poison = (n, worker)] wedges [worker]'s [n+1]-th job. *)
val create :
  seed:int ->
  ?torn_read:float ->
  ?drop_read:float ->
  ?short_write:float ->
  ?stall_write:float ->
  ?drop_accept:float ->
  ?poison:int * int ->
  unit ->
  t

(** Decision for a read that returned [avail] bytes ([avail >= 1]):
    deliver a prefix of [k] bytes (the caller stashes the remainder for
    the next iteration), or drop the connection as if EOF. [`Deliver
    avail] is the no-fault outcome. *)
val on_read : t -> avail:int -> [ `Deliver of int | `Drop ]

(** Decision for a flush of [len] pending bytes ([len >= 1]): let the
    socket accept [k >= 1] bytes, stall (accept 0, as a full kernel
    buffer would), or drop the connection. [`Write len] is the no-fault
    outcome. *)
val on_write : t -> len:int -> [ `Write of int | `Stall | `Drop ]

(** Whether to accept the incoming connection or close it immediately. *)
val on_accept : t -> [ `Accept | `Drop ]

(** Called by the daemon as each job starts on [worker]; [true] means
    the job must wedge (call {!block}). Fires at most once. *)
val poison_now : t -> worker:int -> bool

(** Block the calling thread forever (a [Condition.wait] nobody ever
    signals) — what a poisoned job does. Never returns. *)
val block : unit -> 'a

(** Faults injected so far, for metrics: [(torn_reads, drop_reads,
    short_writes, stall_writes, drop_accepts, poisoned)]. *)
val injected : t -> int * int * int * int * int * int
