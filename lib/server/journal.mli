(** Append-only session journal: the daemon's crash-recovery log.

    Every state-changing, acknowledged operation — session open, fact
    insertion, session close — is appended as one newline-terminated
    JSON line and [fsync]'d {e before} the acknowledgement is sent
    (journal-before-ack). Entries reuse {!Omq.Protocol}'s request codec
    byte-for-byte: an [Open] line is exactly the [open_session] wire
    frame that caused it, with the frame ["id"] carrying the {e
    assigned} session id (on the wire that slot echoes the client's
    request id; in the journal it names the session the entry belongs
    to). A journal is therefore readable by the same tooling as a wire
    capture.

    Crash semantics: the process may die at any point. A torn final
    line (crash mid-append) is skipped by {!load} — by
    journal-before-ack, that operation was never acknowledged, so
    dropping it is correct. Compaction ({!compact}) rewrites the log to
    one [Open] per live session via tmp + [fsync] + [rename], so a
    crash during compaction leaves either the old or the new journal,
    never a mix. *)

type entry =
  | Open of { sid : int; ontology : string; data : string; query : string; max_extra : int }
  | Insert of { sid : int; facts : string }
  | Retract of { sid : int; facts : string }
  | Close of { sid : int }

val sid_of : entry -> int
val render : entry -> string

(** Parse one journal line. [Error] covers both unparsable lines and
    well-formed frames that are not journal operations. *)
val entry_of_line : string -> (entry, string) result

type t

(** [open_ dir] creates [dir] if needed and opens (or creates)
    [dir/omq.journal] for appending. *)
val open_ : string -> t

val path : t -> string

(** Bytes currently in the journal file. *)
val size : t -> int

(** Append one entry and [fsync]. Raises [Unix.Unix_error] on I/O
    failure — the caller must not acknowledge the operation if this
    raises. *)
val append : t -> entry -> unit

(** Entries of an existing journal, oldest first. A torn (unparsable)
    {e final} line is skipped silently; an unparsable line {e followed
    by} valid entries is reported via [`Corrupt] after the prefix that
    was readable. *)
val load : string -> entry list * [ `Ok | `Corrupt of string ]

(** Replay-fold a journal into its live sessions: for each session that
    was opened and not closed, the [Open] parameters with [data]
    replaced by the {e net} instance text — original data plus every
    inserted block minus every retracted block, rendered one fact per
    line in canonical order — plus how many entries contributed.
    Sessions are listed in open order. Should a data block fail to parse
    (impossible for journals written by the daemon, which validates
    before acknowledging), that session degrades to the historical
    concatenation fold and its retract entries are ignored. *)
val live_sessions :
  entry list ->
  (int * (string * string * string * int) * int) list
(* sid, (ontology, data, query, max_extra), entries folded *)

(** Largest session id mentioned, or 0 for an empty journal. *)
val max_sid : entry list -> int

(** Atomically replace the journal's contents with [entries] (tmp +
    [fsync] + [rename]); the handle stays open on the new file. *)
val compact : t -> entry list -> unit

val close : t -> unit
