(** The daemon's flight recorder: a bounded ring of completed request
    records owned by the select loop (single writer, lock-free).

    Always on by default; switching it off leaves one load + branch on
    the hot path. Dumped as JSON on [SIGUSR1] and by the
    [dump_telemetry] wire op. *)

type record = {
  ts_s : float;  (** completion time ({!Obs.Clock}) *)
  op : string;  (** wire op, or ["recovery"] for journal replay *)
  outcome : string;  (** ok / timeout / out_of_fuel / error kind *)
  worker : int;  (** worker domain index; [-1] = handled on the loop *)
  session : int;  (** [-1] when the request has no session *)
  dur_s : float;  (** submit-to-completion wall time *)
}

type t

val default_capacity : int
val create : ?capacity:int -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int

(** Push one record, evicting the oldest once full. No-op when
    disabled. *)
val record : t -> record -> unit

(** Retained records, oldest first (at most [capacity t]). *)
val records : t -> record list

(** Records ever pushed. *)
val total : t -> int

(** Records lost to eviction ([total - capacity], floored at 0). *)
val dropped : t -> int

val record_json : record -> string

(** One JSON object: [extra] members first (pre-rendered values), then
    ["flight_total"], ["flight_dropped"] and the ["flight"] array. *)
val to_json : ?extra:(string * string) list -> t -> string
