(** The Theorem 5 type-based procedure for binary signatures: compute
    the realizable types over cl(O, q), assign candidate sets to the
    maximally guarded tuples of the instance, prune to neighbour
    compatibility, and answer from the surviving sets.

    This is the semantics of the paper's Datalog≠ rewriting Π (whose
    predicates P{_Θ} range over sets of types): the pruning fixpoint
    here is exactly the set of facts Π derives. It characterises
    certain answers for unravelling-tolerant ontologies; on others it
    computes the unravelling side of Definition 3. *)

exception Not_two_variable of string

type closure

(** cl(O, q): subformulas of O, atomic formulas over the joint
    signature, equality, and the query, closed under x↔y swap.
    @raise Not_two_variable outside the binary/two-variable setting. *)
val closure : Logic.Ontology.t -> Query.Cq.t -> closure

(** Number of closure entries. *)
val size : closure -> int

type types

(** Realizable types, enumerated as projections of bounded models of O
    onto the reified closure ([extra] fresh witness elements). May raise
    {!Reasoner.Budget.Exhausted} when budgeted. *)
val enumerate_types :
  ?budget:Reasoner.Budget.t -> ?extra:int -> ?limit:int -> closure -> types

type state

(** Assign initial type sets to the instance's guarded tuples and prune
    to the fixpoint. Budget checkpoints sit between pruning passes,
    where the surviving sets are a sound over-approximation. *)
val run :
  ?budget:Reasoner.Budget.t ->
  ?extra:int ->
  ?limit:int ->
  Logic.Ontology.t ->
  Query.Cq.t ->
  Structure.Instance.t ->
  state

(** The rewritten evaluation of q(ā) on D. *)
val entails :
  ?budget:Reasoner.Budget.t ->
  ?extra:int ->
  ?limit:int ->
  Logic.Ontology.t ->
  Query.Cq.t ->
  Structure.Instance.t ->
  Structure.Element.t list ->
  bool

(** (number of guarded tuples, total surviving types). *)
val statistics : state -> int * int

(** Debugging dump of surviving sets. *)
val debug_dump : state -> string

val dump_closure : closure -> string
val binary_types : types -> bool array list

val forced_dump : closure -> Structure.Instance.t -> string list
