module F = Logic.Formula
module SMap = Logic.Names.SMap
module SSet = Logic.Names.SSet
module ESet = Structure.Element.Set

(* The Theorem 5 procedure for binary signatures: assign to each
   maximally guarded tuple of the instance the set of realizable types
   over cl(O, q), prune types that have no compatible neighbour type,
   and answer from the surviving sets. This computes the semantics of
   the paper's Datalog≠ program Π (whose predicates P_Θ range over sets
   of types); the fixpoint here is the set of facts Π derives.

   Types are enumerated as projections of bounded models of O onto the
   reified closure formulas, so the procedure is exact relative to the
   witness-domain bound (the paper's types are realizable in arbitrary
   models). It characterises certain answers for unravelling-tolerant
   ontologies; on others (e.g. Example 6) it computes the unravelling
   side of Definition 3, which the tests exploit. *)

(* ------------------------------------------------------------------ *)
(* Closure                                                              *)
(* ------------------------------------------------------------------ *)

type fv_class = FX | FY | FXY

type entry = {
  formula : F.t;
  fv : fv_class;
  mutable swap : int;  (** index of the x↔y swapped entry *)
}

type closure = {
  entries : entry array;
  ontology : Logic.Ontology.t;
  query : Query.Cq.t;
  q_x : int;  (** index of q at x (unary q) or q(x,y) (binary q) *)
}

exception Not_two_variable of string

let swap_formula f =
  Logic.Subst.apply
    (Logic.Subst.of_list
       [ ("x", Logic.Term.Var "y"); ("y", Logic.Term.Var "x") ])
    f

let fv_class_of f =
  let fv = F.free_vars f in
  if SSet.equal fv (SSet.singleton "x") then Some FX
  else if SSet.equal fv (SSet.singleton "y") then Some FY
  else if SSet.equal fv (SSet.of_list [ "x"; "y" ]) then Some FXY
  else None

(* The query as a formula with free variables x (and y). *)
let query_formula (q : Query.Cq.t) =
  let renaming =
    match q.Query.Cq.answer with
    | [ a ] -> [ (a, "x") ]
    | [ a; b ] -> [ (a, "x"); (b, "y") ]
    | _ ->
        raise
          (Not_two_variable "Typeprog supports queries of arity 1 or 2")
  in
  (* rename answer variables to x/y and existential variables apart *)
  let q' =
    Query.Cq.rename_vars "e_" q
  in
  let subst =
    Logic.Subst.of_list
      (List.map (fun (a, v) -> ("e_" ^ a, Logic.Term.Var v)) renaming)
  in
  Logic.Subst.apply subst (Query.Cq.to_formula q')

let closure o (q : Query.Cq.t) =
  let table = Hashtbl.create 64 in
  let entries = ref [] in
  let count = ref 0 in
  let add f fv =
    if not (Hashtbl.mem table f) then begin
      Hashtbl.replace table f !count;
      incr count;
      entries := { formula = f; fv; swap = -1 } :: !entries
    end;
    Hashtbl.find table f
  in
  let add_with_swap f =
    match fv_class_of f with
    | None -> ()
    | Some fv ->
        let g = swap_formula f in
        let gfv = match fv with FX -> FY | FY -> FX | FXY -> FXY in
        let i = add f fv in
        let j = add g gfv in
        let arr = () in
        ignore arr;
        ignore (i, j)
  in
  (* subformulas of the ontology *)
  List.iter
    (fun s -> List.iter add_with_swap (F.subformulas s))
    (Logic.Ontology.sentences o);
  (* atomic formulas over the joint signature *)
  let signature =
    Logic.Signature.union (Logic.Ontology.signature o) (Query.Cq.signature q)
  in
  List.iter
    (fun (r, arity) ->
      match arity with
      | 1 ->
          add_with_swap (F.atom r [ Logic.Term.Var "x" ])
      | 2 ->
          add_with_swap (F.atom r [ Logic.Term.Var "x"; Logic.Term.Var "y" ]);
          add_with_swap (F.atom r [ Logic.Term.Var "x"; Logic.Term.Var "x" ])
      | _ -> raise (Not_two_variable ("relation " ^ r ^ " has arity > 2")))
    (Logic.Signature.to_list signature);
  (* equality and the query *)
  add_with_swap (F.Eq (Logic.Term.Var "x", Logic.Term.Var "y"));
  let qf = query_formula q in
  add_with_swap qf;
  let arr = Array.of_list (List.rev !entries) in
  (* resolve swap indices *)
  Array.iteri
    (fun i e ->
      let g = swap_formula e.formula in
      match Hashtbl.find_opt table g with
      | Some j -> arr.(i).swap <- j
      | None -> arr.(i).swap <- i)
    arr;
  let q_x = Hashtbl.find table qf in
  { entries = arr; ontology = o; query = q; q_x }

let size c = Array.length c.entries

(* ------------------------------------------------------------------ *)
(* Type enumeration                                                     *)
(* ------------------------------------------------------------------ *)

type ty = bool array

type types = {
  cl : closure;
  binary : ty list;  (** types of pairs of distinct elements *)
  unary : ty list;  (** types over the FX entries only (singletons) *)
  x_entries : int array;  (** indices of FX entries, in order *)
}

let ea = Structure.Element.Const "ta"
let eb = Structure.Element.Const "tb"

let enumerate_types ?budget ?(extra = 2) ?(limit = 32768) cl =
  let o = cl.ontology in
  let signature =
    Logic.Signature.union (Logic.Ontology.signature o)
      (Query.Cq.signature cl.query)
  in
  let base k elems =
    let nulls = List.init k (fun i -> Structure.Element.Null (1000 + i)) in
    let g =
      Reasoner.Ground.create ?budget ~domain:(elems @ nulls) ~signature ()
    in
    List.iter (Reasoner.Ground.assert_formula g) (Logic.Ontology.all_sentences o);
    g
  in
  (* binary types *)
  let g2 = base extra [ ea; eb ] in
  let env2 = SMap.of_seq (List.to_seq [ ("x", ea); ("y", eb) ]) in
  let lits2 =
    Array.to_list
      (Array.map (fun e -> Reasoner.Ground.reify ~env:env2 g2 e.formula) cl.entries)
  in
  let binary =
    Reasoner.Ground.enumerate_projections ~limit g2 lits2
    |> List.map Array.of_list
  in
  (* unary types over FX entries *)
  let x_entries =
    Array.of_list
      (List.filteri (fun _ _ -> true)
         (List.filter_map
            (fun (i, e) -> if e.fv = FX then Some i else None)
            (Array.to_list (Array.mapi (fun i e -> (i, e)) cl.entries))))
  in
  let g1 = base extra [ ea ] in
  let env1 = SMap.singleton "x" ea in
  let lits1 =
    Array.to_list
      (Array.map
         (fun i -> Reasoner.Ground.reify ~env:env1 g1 cl.entries.(i).formula)
         x_entries)
  in
  let unary =
    Reasoner.Ground.enumerate_projections ~limit g1 lits1
    |> List.map Array.of_list
  in
  { cl; binary; unary; x_entries }

(* Projection of a binary type onto x / y, as an array over FX entries. *)
let proj_x t (theta : ty) = Array.map (fun i -> theta.(i)) t.x_entries

let proj_y t (theta : ty) =
  Array.map (fun i -> theta.(t.cl.entries.(i).swap)) t.x_entries

(* ------------------------------------------------------------------ *)
(* The pruning fixpoint on an instance                                  *)
(* ------------------------------------------------------------------ *)

type tuple =
  | Pair of Structure.Element.t * Structure.Element.t  (** canonical order *)
  | Single of Structure.Element.t

let tuples_of_instance d =
  let pairs = Hashtbl.create 16 in
  List.iter
    (fun (f : Structure.Instance.fact) ->
      match f.args with
      | [ u; v ] when not (Structure.Element.equal u v) ->
          let key = if Structure.Element.compare u v <= 0 then (u, v) else (v, u) in
          Hashtbl.replace pairs key ()
      | _ -> ())
    (Structure.Instance.facts d);
  let paired =
    Hashtbl.fold
      (fun (u, v) () acc -> ESet.add u (ESet.add v acc))
      pairs ESet.empty
  in
  let singles =
    ESet.elements (ESet.diff (Structure.Instance.domain d) paired)
  in
  Hashtbl.fold (fun (u, v) () acc -> Pair (u, v) :: acc) pairs []
  @ List.map (fun a -> Single a) singles

(* Which entries must be true given the facts of D on the tuple. *)
let forced_entries cl d = function
  | Pair (u, v) ->
      let env = function "x" -> u | _ -> v in
      Array.to_list
        (Array.mapi
           (fun i (e : entry) ->
             match e.formula with
             | F.Atom (r, ts) ->
                 let args =
                   List.map
                     (function
                       | Logic.Term.Var w -> env w
                       | Logic.Term.Const c -> Structure.Element.Const c)
                     ts
                 in
                 if Structure.Instance.mem (Structure.Instance.fact r args) d
                 then Some (i, true)
                 else None
             | F.Eq (Logic.Term.Var w1, Logic.Term.Var w2) ->
                 (* equalities are decided by the tuple itself *)
                 Some (i, Structure.Element.equal (env w1) (env w2))
             | _ -> None)
           cl.entries)
      |> List.filter_map Fun.id
  | Single a ->
      Array.to_list
        (Array.mapi
           (fun i (e : entry) ->
             if e.fv <> FX then None
             else
               match e.formula with
               | F.Atom (r, ts) ->
                   let args =
                     List.map
                       (function
                         | Logic.Term.Var _ -> a
                         | Logic.Term.Const c -> Structure.Element.Const c)
                       ts
                   in
                   if Structure.Instance.mem (Structure.Instance.fact r args) d
                   then Some (i, true)
                   else None
               | _ -> None)
           cl.entries)
      |> List.filter_map Fun.id

let initial_types t d tuple =
  let forced = forced_entries t.cl d tuple in
  match tuple with
  | Pair _ ->
      List.filter
        (fun (theta : ty) ->
          List.for_all (fun (i, b) -> theta.(i) = b) forced)
        t.binary
  | Single _ ->
      let x_pos = Hashtbl.create 16 in
      Array.iteri (fun k i -> Hashtbl.replace x_pos i k) t.x_entries;
      List.filter
        (fun (theta : ty) ->
          List.for_all
            (fun (i, b) ->
              match Hashtbl.find_opt x_pos i with
              | Some k -> theta.(k) = b
              | None -> true)
            forced)
        t.unary

(* The unary projections of a tuple's type at a given element. *)
let projections_at t tuple (theta : ty) el =
  match tuple with
  | Single _ -> [ theta ]
  | Pair (u, v) ->
      (if Structure.Element.equal el u then [ proj_x t theta ] else [])
      @ if Structure.Element.equal el v then [ proj_y t theta ] else []

type state = {
  t : types;
  tuples : tuple array;
  mutable sets : ty list array;  (** surviving types per tuple *)
}

let tuple_elements = function
  | Pair (u, v) -> [ u; v ]
  | Single a -> [ a ]

let prune ?(budget = Reasoner.Budget.unlimited) state =
  let n = Array.length state.tuples in
  (* index: element -> tuple indices *)
  let by_elem = Hashtbl.create 16 in
  Array.iteri
    (fun i tu ->
      List.iter
        (fun el ->
          Hashtbl.replace by_elem el
            (i :: Option.value (Hashtbl.find_opt by_elem el) ~default:[]))
        (tuple_elements tu))
    state.tuples;
  (* hashed sets of available unary projections, per (tuple, element) *)
  let projection_set i el =
    let set = Hashtbl.create 64 in
    List.iter
      (fun theta ->
        List.iter
          (fun p -> Hashtbl.replace set p ())
          (projections_at state.t state.tuples.(i) theta el))
      state.sets.(i);
    set
  in
  let changed = ref true in
  while !changed do
    (* one checkpoint per pruning pass: between passes every surviving
       set is a sound over-approximation, so a trip here is clean *)
    Reasoner.Budget.checkpoint budget;
    changed := false;
    let proj_sets = Hashtbl.create 16 in
    Array.iteri
      (fun i tu ->
        List.iter
          (fun el -> Hashtbl.replace proj_sets (i, el) (projection_set i el))
          (tuple_elements tu))
      state.tuples;
    for i = 0 to n - 1 do
      let tu = state.tuples.(i) in
      let keep theta =
        List.for_all
          (fun el ->
            let neighbours =
              List.filter (fun j -> j <> i)
                (Option.value (Hashtbl.find_opt by_elem el) ~default:[])
            in
            List.for_all
              (fun j ->
                let there = Hashtbl.find proj_sets (j, el) in
                List.exists
                  (fun p -> Hashtbl.mem there p)
                  (projections_at state.t tu theta el))
              neighbours)
          (tuple_elements tu)
      in
      let survivors = List.filter keep state.sets.(i) in
      if List.length survivors <> List.length state.sets.(i) then begin
        state.sets.(i) <- survivors;
        changed := true
      end
    done
  done

(* ------------------------------------------------------------------ *)
(* Entailment                                                           *)
(* ------------------------------------------------------------------ *)

let run ?budget ?extra ?limit o q d =
  Obs.Trace.with_span "typeprog.run" @@ fun () ->
  let cl = Obs.Trace.with_span "typeprog.closure" (fun () -> closure o q) in
  let t =
    Obs.Trace.with_span "typeprog.enumerate_types" (fun () ->
        enumerate_types ?budget ?extra ?limit cl)
  in
  let tuples = Array.of_list (tuples_of_instance d) in
  let state =
    { t; tuples; sets = Array.map (initial_types t d) tuples }
  in
  Obs.Trace.with_span "typeprog.prune" (fun () -> prune ?budget state);
  if Obs.Trace.enabled () then begin
    Obs.Trace.add_attr "closure_size" (Obs.Trace.Int (size cl));
    Obs.Trace.add_attr "binary_types" (Obs.Trace.Int (List.length t.binary));
    Obs.Trace.add_attr "tuples" (Obs.Trace.Int (Array.length tuples))
  end;
  state

(* Does every surviving type of the tuple contain the query at the
   answer position? *)
let tuple_answers state tuple_idx answer =
  let t = state.t in
  let q_idx = t.cl.q_x in
  let x_pos = Hashtbl.create 16 in
  Array.iteri (fun k i -> Hashtbl.replace x_pos i k) t.x_entries;
  match (state.tuples.(tuple_idx), answer) with
  | Single a, [ a' ] when Structure.Element.equal a a' -> (
      match Hashtbl.find_opt x_pos q_idx with
      | Some k ->
          state.sets.(tuple_idx) <> []
          && List.for_all (fun (theta : ty) -> theta.(k)) state.sets.(tuple_idx)
      | None -> false)
  | Pair (u, v), [ a' ] ->
      let idx =
        if Structure.Element.equal u a' then Some q_idx
        else if Structure.Element.equal v a' then Some t.cl.entries.(q_idx).swap
        else None
      in
      (match idx with
      | Some i ->
          state.sets.(tuple_idx) <> []
          && List.for_all (fun (theta : ty) -> theta.(i)) state.sets.(tuple_idx)
      | None -> false)
  | Pair (u, v), [ a'; b' ] ->
      let idx =
        if Structure.Element.equal u a' && Structure.Element.equal v b' then
          Some q_idx
        else if Structure.Element.equal u b' && Structure.Element.equal v a'
        then Some state.t.cl.entries.(q_idx).swap
        else None
      in
      (match idx with
      | Some i ->
          state.sets.(tuple_idx) <> []
          && List.for_all (fun (theta : ty) -> theta.(i)) state.sets.(tuple_idx)
      | None -> false)
  | _ -> false

(* The evaluation: inconsistency (an empty surviving set) answers
   everything; otherwise some tuple covering ā must answer. *)
let entails ?budget ?extra ?limit o q d answer =
  let state = run ?budget ?extra ?limit o q d in
  Array.exists (fun s -> s = []) state.sets
  || Array.exists
       (fun i -> tuple_answers state i answer)
       (Array.init (Array.length state.tuples) (fun i -> i))

(* Survivor statistics, for inspection and benchmarks. *)
let statistics state =
  ( Array.length state.tuples,
    Array.fold_left (fun acc s -> acc + List.length s) 0 state.sets )

(* Human-readable dump of the surviving sets (debugging aid). *)
let debug_dump state =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i tu ->
      let name =
        match tu with
        | Pair (u, v) ->
            Printf.sprintf "(%s,%s)" (Structure.Element.to_string u)
              (Structure.Element.to_string v)
        | Single a -> Structure.Element.to_string a
      in
      Buffer.add_string b
        (Printf.sprintf "%s: %d types; q@x true in all: %b; q-swap true in all: %b\n"
           name (List.length state.sets.(i))
           (state.sets.(i) <> []
           && List.for_all (fun (th : ty) ->
               match tu with
               | Pair _ -> th.(state.t.cl.q_x)
               | Single _ -> (
                   let rec find k = if k >= Array.length state.t.x_entries then None
                     else if state.t.x_entries.(k) = state.t.cl.q_x then Some k else find (k+1) in
                   match find 0 with Some k -> th.(k) | None -> false))
             state.sets.(i))
           (state.sets.(i) <> []
           && List.for_all (fun (th : ty) ->
               match tu with
               | Pair _ -> th.(state.t.cl.entries.(state.t.cl.q_x).swap)
               | Single _ -> false)
             state.sets.(i))))
    state.tuples;
  Buffer.add_string b
    (Printf.sprintf "binary types: %d, unary types: %d, entries: %d\n"
       (List.length state.t.binary) (List.length state.t.unary)
       (Array.length state.t.cl.entries));
  Buffer.contents b

(* More debugging aids. *)
let dump_closure cl =
  String.concat "\n"
    (Array.to_list
       (Array.mapi
          (fun i (e : entry) ->
            Printf.sprintf "%2d [%s] swap=%d  %s" i
              (match e.fv with FX -> "x " | FY -> "y " | FXY -> "xy")
              e.swap
              (F.to_string e.formula))
          cl.entries))

let binary_types t = t.binary

let forced_dump cl d =
  List.map
    (fun tu ->
      let forced = forced_entries cl d tu in
      Printf.sprintf "%s: %s"
        (match tu with
        | Pair (u, v) ->
            Printf.sprintf "(%s,%s)" (Structure.Element.to_string u)
              (Structure.Element.to_string v)
        | Single a -> Structure.Element.to_string a)
        (String.concat ","
           (List.map (fun (i, b) -> Printf.sprintf "%d=%b" i b) forced)))
    (tuples_of_instance d)
