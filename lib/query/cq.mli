(** Conjunctive queries q(x̄) ← φ (Section 2): atoms over variables and
    constants, a tuple of answer variables, canonical databases, and
    evaluation by homomorphism search. *)

type atom = string * Logic.Term.t list

type t = {
  name : string;
  answer : string list;
  atoms : atom list;
}

exception Ill_formed of string

(** [make ~answer atoms] checks that every answer variable occurs in an
    atom. @raise Ill_formed otherwise. *)
val make : ?name:string -> answer:string list -> atom list -> t

val arity : t -> int
val is_boolean : t -> bool
val variables : t -> Logic.Names.SSet.t
val existential_variables : t -> Logic.Names.SSet.t
val signature : t -> Logic.Signature.t

(** The canonical constant a{_y} representing variable [y]. *)
val var_element : string -> Structure.Element.t

val term_element : Logic.Term.t -> Structure.Element.t

(** The canonical database D{_q}. *)
val canonical_db : t -> Structure.Instance.t

(** Identity fixing of the query's constants (standard names), for use
    as the [fixed] argument of homomorphism searches from D{_q}. *)
val constant_fixing : t -> Structure.Element.t Structure.Element.Map.t

(** [holds inst q ā]: ā is an answer to [q] in [inst]. *)
val holds : Structure.Instance.t -> t -> Structure.Element.t list -> bool

val holds_boolean : Structure.Instance.t -> t -> bool

(** All answers of [q] in [inst], duplicate-free and sorted (the order
    does not depend on which evaluation pipeline produced them). *)
val answers : Structure.Instance.t -> t -> Structure.Element.t list list

(** The join plan the planner would choose for [q]'s body over [inst],
    as a JSON object (see [Structure.Eval.explain_json]). *)
val explain : Structure.Instance.t -> t -> string

(** Connectedness of the canonical database. *)
val is_connected : t -> bool

(** Rooted acyclic queries: non-Boolean and D{_q} admits a cg-tree
    decomposition rooted at the answer variables (Section 2.2). *)
val is_raq : t -> bool

(** The CQ as an existentially quantified conjunction. *)
val to_formula : t -> Logic.Formula.t

val pp : t Fmt.t
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool

(** Prefix every variable, renaming the query apart. *)
val rename_vars : string -> t -> t
