(** Text format for conjunctive queries: [q(x) <- R(x,y), A(y)];
    disjuncts of a UCQ are separated by ['|']. Lower-case arguments are
    variables, capitalised or ['...']-quoted ones constants. *)

exception Parse_error of string

val cq_of_string : string -> Cq.t
val ucq_of_string : string -> Ucq.t

(** Non-raising forms; [Error] carries the parse message. *)

val cq_of_string_result : string -> (Cq.t, string) result
val ucq_of_string_result : string -> (Ucq.t, string) result
