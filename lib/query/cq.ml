module SSet = Logic.Names.SSet
module SMap = Logic.Names.SMap
module ESet = Structure.Element.Set
module EMap = Structure.Element.Map

type atom = string * Logic.Term.t list

type t = {
  name : string;
  answer : string list;
  atoms : atom list;
}

exception Ill_formed of string

let make ?(name = "q") ~answer atoms =
  let q = { name; answer; atoms } in
  let atom_vars =
    List.fold_left
      (fun acc (_, ts) -> SSet.union acc (Logic.Term.vars ts))
      SSet.empty atoms
  in
  List.iter
    (fun x ->
      if not (SSet.mem x atom_vars) then
        raise
          (Ill_formed
             (Printf.sprintf "answer variable %s does not occur in an atom" x)))
    answer;
  q

let arity q = List.length q.answer
let is_boolean q = q.answer = []

let variables q =
  List.fold_left
    (fun acc (_, ts) -> SSet.union acc (Logic.Term.vars ts))
    SSet.empty q.atoms

let existential_variables q = SSet.diff (variables q) (SSet.of_list q.answer)

let signature q =
  List.fold_left
    (fun s (r, ts) -> Logic.Signature.add r (List.length ts) s)
    Logic.Signature.empty q.atoms

(* ------------------------------------------------------------------ *)
(* Canonical database                                                   *)
(* ------------------------------------------------------------------ *)

(* The canonical database D_q: each variable y becomes the constant a_y
   (written "?y"); constants stay themselves. *)
let var_element v = Structure.Element.Const ("?" ^ v)

let term_element = function
  | Logic.Term.Var v -> var_element v
  | Logic.Term.Const c -> Structure.Element.Const c

let canonical_db q =
  List.fold_left
    (fun inst (r, ts) ->
      Structure.Instance.add_fact
        (Structure.Instance.fact r (List.map term_element ts))
        inst)
    Structure.Instance.empty q.atoms

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

(* Constants in the query denote themselves (standard names). *)
let constant_fixing q =
  List.fold_left
    (fun m (_, ts) ->
      List.fold_left
        (fun m t ->
          match t with
          | Logic.Term.Const c ->
              let e = Structure.Element.Const c in
              EMap.add e e m
          | Logic.Term.Var _ -> m)
        m ts)
    EMap.empty q.atoms

(* Compile the body to [Structure.Eval] atoms over a dense variable
   numbering (variables in sorted-name order, answer variables
   included). *)
let compile q =
  let _, var_ix =
    SSet.fold
      (fun v (i, m) -> (i + 1, SMap.add v i m))
      (variables q) (0, SMap.empty)
  in
  let atoms =
    List.map
      (fun (r, ts) ->
        Structure.Eval.atom r
          (List.map
             (function
               | Logic.Term.Var v -> Structure.Eval.Var (SMap.find v var_ix)
               | Logic.Term.Const c ->
                   Structure.Eval.Const (Structure.Element.Const c))
             ts))
      q.atoms
  in
  (var_ix, atoms)

(* A tuple ā is an answer iff there is a homomorphism from D_q to the
   interpretation mapping the answer constants to ā. *)
let holds inst q tuple =
  if List.length tuple <> arity q then
    invalid_arg "Cq.holds: tuple arity mismatch";
  if SSet.is_empty (existential_variables q) then
    (* No existential variables: the candidate homomorphism is fully
       determined by the tuple (every atom variable is an answer variable
       — [make] guarantees the converse occurrence), so evaluation is
       plain fact membership, skipping planning and search. *)
    let fixed =
      List.fold_left2
        (fun m x e -> EMap.add (var_element x) e m)
        (constant_fixing q) q.answer tuple
    in
    List.for_all
      (fun (r, ts) ->
        let args = List.map (fun t -> EMap.find (term_element t) fixed) ts in
        Structure.Instance.mem (Structure.Instance.fact r args) inst)
      q.atoms
  else if Structure.Eval.planner_enabled () then
    let var_ix, atoms = compile q in
    let bindings =
      List.map2 (fun x e -> (SMap.find x var_ix, e)) q.answer tuple
    in
    let idx = Structure.Relindex.of_instance inst in
    let plan =
      Structure.Eval.make_plan idx ~bound:(List.map fst bindings) atoms
    in
    Structure.Eval.exists idx plan ~bindings
  else
    let fixed =
      List.fold_left2
        (fun m x e -> EMap.add (var_element x) e m)
        (constant_fixing q) q.answer tuple
    in
    Structure.Homomorphism.exists ~fixed ~source:(canonical_db q) ~target:inst ()

let holds_boolean inst q = holds inst q []

(* All answers over the domain of [inst], duplicate-free and sorted —
   the order is the same whichever evaluation pipeline produced them. *)
let answers inst q =
  let raw =
    if Structure.Eval.planner_enabled () then begin
      let var_ix, atoms = compile q in
      let ans_ix = List.map (fun x -> SMap.find x var_ix) q.answer in
      let idx = Structure.Relindex.of_instance inst in
      let plan = Structure.Eval.make_plan idx atoms in
      let seen = Hashtbl.create 16 in
      Structure.Eval.fold idx plan ~bindings:[]
        (fun sol acc ->
          let tuple = List.map (fun i -> sol.(i)) ans_ix in
          if Hashtbl.mem seen tuple then (false, acc)
          else begin
            Hashtbl.replace seen tuple ();
            (false, tuple :: acc)
          end)
        []
    end
    else
      let db = canonical_db q in
      let answer_elems = List.map var_element q.answer in
      let seen = Hashtbl.create 16 in
      Structure.Homomorphism.fold ~fixed:(constant_fixing q) ~source:db
        ~target:inst
        (fun m acc ->
          let tuple = List.map (fun e -> EMap.find e m) answer_elems in
          if Hashtbl.mem seen tuple then (false, acc)
          else begin
            Hashtbl.replace seen tuple ();
            (false, tuple :: acc)
          end)
        []
  in
  List.sort (List.compare Structure.Element.compare) raw

(* The chosen join plan for [q]'s body over [inst], as JSON. *)
let explain inst q =
  let var_ix, atoms = compile q in
  let idx = Structure.Relindex.of_instance inst in
  let plan = Structure.Eval.make_plan idx atoms in
  let vars = Array.make (SMap.cardinal var_ix) "" in
  SMap.iter (fun v i -> vars.(i) <- v) var_ix;
  Printf.sprintf "{\"query\":\"%s\",\"vars\":[%s],\"plan\":%s}"
    (Structure.Eval.json_escape q.name)
    (String.concat ","
       (Array.to_list
          (Array.map
             (fun v -> "\"" ^ Structure.Eval.json_escape v ^ "\"")
             vars)))
    (Structure.Eval.explain_json plan)

(* ------------------------------------------------------------------ *)
(* Shape analysis                                                       *)
(* ------------------------------------------------------------------ *)

let is_connected q =
  Structure.Gaifman.is_connected
    (Structure.Gaifman.of_instance (canonical_db q))

(* Rooted acyclic queries (Section 2.2): non-Boolean, and D_q has a
   cg-tree decomposition rooted at a bag whose domain is exactly the set
   of answer variables. *)
let is_raq q =
  (not (is_boolean q))
  &&
  let db = canonical_db q in
  let root = ESet.of_list (List.map var_element q.answer) in
  Structure.Treedec.is_rooted_decomposable db ~root

(* ------------------------------------------------------------------ *)
(* Conversions                                                          *)
(* ------------------------------------------------------------------ *)

(* The CQ as an FO formula with free variables = answer variables. *)
let to_formula q =
  let body =
    Logic.Formula.conj
      (List.map (fun (r, ts) -> Logic.Formula.Atom (r, ts)) q.atoms)
  in
  Logic.Formula.exists (SSet.elements (existential_variables q)) body

let pp ppf q =
  Fmt.pf ppf "%s(%a) <- %a" q.name
    Fmt.(list ~sep:comma string)
    q.answer
    Fmt.(
      list ~sep:comma (fun ppf (r, ts) ->
          Fmt.pf ppf "%s(%a)" r (list ~sep:comma Logic.Term.pp) ts))
    q.atoms

let to_string q = Fmt.str "%a" pp q
let compare = Stdlib.compare
let equal a b = compare a b = 0

(* Rename apart: prefix all variables, for combining queries. *)
let rename_vars prefix q =
  let rn = function
    | Logic.Term.Var v -> Logic.Term.Var (prefix ^ v)
    | t -> t
  in
  {
    q with
    answer = List.map (fun v -> prefix ^ v) q.answer;
    atoms = List.map (fun (r, ts) -> (r, List.map rn ts)) q.atoms;
  }
