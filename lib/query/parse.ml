(* A small text format for (U)CQs:

     q(x) <- R(x,y), A(y)
     q(x) <- B(x) | q(x) <- C(x)      (UCQ with '|' between disjuncts)

   Lower-case arguments are variables, capitalised or quoted arguments
   are constants. *)

exception Parse_error of string

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let parse_term s =
  let s = String.trim s in
  if s = "" then error "empty term"
  else if s.[0] = '\'' then
    if String.length s >= 2 && s.[String.length s - 1] = '\'' then
      Logic.Term.Const (String.sub s 1 (String.length s - 2))
    else error "unterminated quoted constant %s" s
  else if s.[0] >= 'a' && s.[0] <= 'z' then Logic.Term.Var s
  else Logic.Term.Const s

(* "R(t1,...,tk)" *)
let parse_atom s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> error "expected an atom, found %S" s
  | Some i ->
      let rel = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let rest = String.trim rest in
      let rest =
        match String.rindex_opt rest ')' with
        | Some j when j = String.length rest - 1 ->
            String.sub rest 0 (String.length rest - 1)
        | _ -> error "missing ')' in %S" s
      in
      let args = String.split_on_char ',' rest |> List.map parse_term in
      (rel, args)

(* Split on top-level commas (atoms contain commas inside parens). *)
let split_atoms s =
  let parts = ref [] in
  let depth = ref 0 in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '(' -> incr depth
      | ')' -> decr depth
      | ',' when !depth = 0 ->
          parts := String.sub s !start (i - !start) :: !parts;
          start := i + 1
      | _ -> ())
    s;
  parts := String.sub s !start (String.length s - !start) :: !parts;
  List.rev_map String.trim !parts |> List.rev |> List.filter (fun p -> p <> "")

(* head "<-" body *)
let parse_cq s =
  let idx =
    let rec find i =
      if i + 1 >= String.length s then error "missing '<-' in %S" s
      else if s.[i] = '<' && s.[i + 1] = '-' then i
      else find (i + 1)
    in
    find 0
  in
  let head = String.trim (String.sub s 0 idx) in
  let body = String.trim (String.sub s (idx + 2) (String.length s - idx - 2)) in
  let name, answer =
    if String.contains head '(' then begin
      let rel, args = parse_atom head in
      ( rel,
        List.map
          (function
            | Logic.Term.Var v -> v
            | Logic.Term.Const c -> error "constant %s in the head" c)
          args )
    end
    else (String.trim head, [])
  in
  let atoms = List.map parse_atom (split_atoms body) in
  Cq.make ~name ~answer atoms

let ucq_of_string s =
  let parts = String.split_on_char '|' s |> List.map String.trim in
  Ucq.make (List.map parse_cq parts)

let cq_of_string s = parse_cq s

(* Non-raising forms: malformed input is data, not an exception. *)
let cq_of_string_result s =
  match cq_of_string s with
  | q -> Ok q
  | exception Parse_error m -> Error m

let ucq_of_string_result s =
  match ucq_of_string s with
  | q -> Ok q
  | exception Parse_error m -> Error m
