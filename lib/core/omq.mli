(** Ontology-mediated queries (O, q) — the paper's central object — and
    the analyses developed for them. This is the library façade used by
    the examples and the command-line tool.

    Evaluation runs on the incremental {!Reasoner.Engine}: open a
    {!session} to ground (O, D) once and answer many tuples against it;
    the tuple-at-a-time entry points below are shorthands that fetch the
    same cached sessions.

    Every evaluation entry accepts a [?budget] (default
    {!Reasoner.Budget.unlimited}). The plain forms raise
    {!Reasoner.Budget.Exhausted} on a trip; the [_within] forms return a
    typed {!Reasoner.Budget.outcome} and degrade gracefully —
    {!Session.certain_answers_within} reports the tuples certified
    before exhaustion plus the undecided candidate stream as a
    resumption hint. *)

(** The versioned typed wire schema shared by the serve daemon, the
    blocking client and [omq_tool]'s one-shot [--json] output. *)
module Protocol = Protocol

type t = {
  ontology : Logic.Ontology.t;
  query : Query.Ucq.t;
}

val make : Logic.Ontology.t -> Query.Ucq.t -> t
val of_cq : Logic.Ontology.t -> Query.Cq.t -> t

(** Build from a DL TBox via the standard translation. *)
val of_tbox : Dl.Tbox.t -> Query.Ucq.t -> t

(** An evaluation session for one (O, q, D): one engine per countermodel
    bound 0..max_extra, grounded on first use and shared through the
    engine's LRU session cache. *)
type session

(** [open_session ?updatable omq d] opens an evaluation session.
    Updatable sessions ground {e dynamic} engines — instance facts are
    carried as solver assumptions, bypassing the keyed engine cache — so
    {!Session.insert_facts} / {!Session.retract_facts} can delta-maintain
    them instead of regrounding. *)
val open_session :
  ?max_extra:int -> ?updatable:bool -> t -> Structure.Instance.t -> session

module Session : sig
  type t = session

  val instance : t -> Structure.Instance.t
  val max_extra : t -> int
  val updatable : t -> bool

  (** [insert_facts s facts] returns the session for D ∪ facts, either
      by delta-maintaining every engine [s] has grounded ([`Delta]) or
      by reopening on the union ([`Reopen]: non-updatable session, a
      fact over a new domain element, or a static engine). Both results
      answer identically to a fresh session on the updated instance. *)
  val insert_facts :
    ?budget:Reasoner.Budget.t ->
    t ->
    Structure.Instance.fact list ->
    t * [ `Delta | `Reopen ]

  (** [retract_facts s facts] returns the session for D minus [facts]
      (absent facts are ignored); [`Reopen] additionally covers
      retractions that vacate a domain element. *)
  val retract_facts :
    ?budget:Reasoner.Budget.t ->
    t ->
    Structure.Instance.fact list ->
    t * [ `Delta | `Reopen ]

  (** O,D ⊨ q(ā): no countermodel at any bound 0..max_extra. *)
  val certain : ?budget:Reasoner.Budget.t -> t -> Structure.Element.t list -> bool

  val is_consistent : ?budget:Reasoner.Budget.t -> t -> bool

  (** Certain answers, streamed over the active domain without
      materializing the |dom|^arity candidate list. *)
  val certain_answers_seq :
    ?budget:Reasoner.Budget.t -> t -> Structure.Element.t list Seq.t

  (** All certain answers; boolean queries short-circuit on their single
      candidate. *)
  val certain_answers :
    ?budget:Reasoner.Budget.t -> t -> Structure.Element.t list list

  (** On a budget trip: tuples certified so far and the undecided
      candidate tail (headed by the tuple in flight) — resume by
      re-checking exactly the [undecided] stream. *)
  type partial_answers = {
    certified : Structure.Element.t list list;
    undecided : Structure.Element.t list Seq.t;
  }

  (** Typed, gracefully degrading form of {!certain_answers}. *)
  val certain_answers_within :
    Reasoner.Budget.t ->
    t ->
    (Structure.Element.t list list, partial_answers) Reasoner.Budget.outcome

  val certain_within :
    Reasoner.Budget.t ->
    t ->
    Structure.Element.t list ->
    (bool, unit) Reasoner.Budget.outcome

  val is_consistent_within :
    Reasoner.Budget.t -> t -> (bool, unit) Reasoner.Budget.outcome

  (** Aggregated {!Reasoner.Stats} of the engines this session forced. *)
  val stats : t -> Reasoner.Stats.t
end

(** Certain answer O,D ⊨ q(ā); refutations are exact, confirmations hold
    up to [max_extra] fresh countermodel elements. *)
val certain :
  ?budget:Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list ->
  bool

(** All certain answers over the active domain. *)
val certain_answers :
  ?budget:Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list list

(** Streaming variant of {!certain_answers}. *)
val certain_answers_seq :
  ?budget:Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list Seq.t

val is_consistent :
  ?budget:Reasoner.Budget.t -> ?max_extra:int -> t -> Structure.Instance.t -> bool

(** Typed-outcome shorthands over a fresh session. *)

val certain_within :
  Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list ->
  (bool, unit) Reasoner.Budget.outcome

val certain_answers_within :
  Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  (Structure.Element.t list list, Session.partial_answers)
  Reasoner.Budget.outcome

val is_consistent_within :
  Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  (bool, unit) Reasoner.Budget.outcome

(** Figure 1 classification of the ontology. *)
val classify : t -> Classify.Landscape.evidence

(** The minimal uGF/uGC2 fragment descriptor. *)
val fragment : t -> Gf.Fragment.t option

(** Materializability on an instance (bounded search). *)
val materializable_on :
  ?budget:Reasoner.Budget.t ->
  ?max_model_extra:int ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  bool

(** The Theorem 5 type-based evaluation; [Error `Not_single_cq] when the
    query has more than one disjunct, [Error (`Not_two_variable _)] when
    the (O, q) pair leaves the binary/two-variable setting the procedure
    supports. *)
val rewritten_certain :
  ?budget:Reasoner.Budget.t ->
  ?extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list ->
  (bool, [ `Not_single_cq | `Not_two_variable of string ]) result

(** Theorem 13: decide PTIME query evaluation. *)
val decide_ptime :
  ?budget:Reasoner.Budget.t ->
  ?seed:int ->
  ?max_outdegree:int ->
  ?samples:int ->
  t ->
  Classify.Decide.verdict

(** Typed form of {!decide_ptime}; the partial payload is the number of
    bouquets fully checked before the trip. *)
val try_decide_ptime :
  Reasoner.Budget.t ->
  ?seed:int ->
  ?max_outdegree:int ->
  ?samples:int ->
  t ->
  (Classify.Decide.verdict, int) Reasoner.Budget.outcome

(** Drop every cache the answering stack keeps on the calling domain
    (the engine session registry and the grounder's circuit memo), for
    cold-path measurements and bounding long-process memory. Caches are
    domain-local, so this clears the calling domain only — worker
    domains of a {!Corpus} run keep (and reuse) their own. *)
val clear_caches : unit -> unit

(** Batch classification / evaluation of a corpus of ontologies on a
    {!Parallel.Pool} — the paper's experimental shape (hundreds of
    BioPortal ontologies) run many-at-once.

    Corpus items are independent and every mutable structure of the
    answering stack is domain-local, so the fan-out is shared-nothing:
    each worker domain keeps its own engine session registry, grounding
    memo and stats record, and results are assembled in submission
    order. Consequently a run's results (and any rendering that omits
    timings and cache counters) are bit-identical for every [jobs]
    count. *)
module Corpus : sig
  type item = { name : string; tbox : Dl.Tbox.t }

  (** A deterministic synthetic corpus ({!Bioportal.Generate.corpus}),
      items named [gen<seed>-<index>]. *)
  val generate : ?seed:int -> n:int -> unit -> item list

  (** All [.dl] files of a directory, sorted by file name (enumeration
      order is filesystem-dependent, and corpus order is part of the
      deterministic output contract); item names drop the extension.
      [Error] on an unreadable directory, an unparsable file, or no
      [.dl] files at all. *)
  val load_dir : string -> (item list, string) result

  (** One [.dl] file; the caller picks the item name. *)
  val load_file : string -> (Dl.Tbox.t, string) result

  type task =
    | Classify  (** Figure 1 landscape classification, per ontology *)
    | Eval of {
        query : Query.Ucq.t;
        data : Structure.Instance.t;
        max_extra : int;
      }  (** certain answers of (O, q) over [data], per ontology O *)

  type classification = {
    dl_name : string;
    depth : int;
    fragment : Gf.Fragment.t option;
    evidence : Classify.Landscape.evidence;
  }

  type evaluation = {
    consistent : bool;
    answers : Structure.Element.t list list;
  }

  type verdict = Classified of classification | Evaluated of evaluation

  (** A budget trip on one item degrades that item alone — its siblings
      still run to completion. [certified] is what the item had proven
      before tripping; it is schedule-dependent, so deterministic
      renderings must omit it. *)
  type failure = {
    reason : Reasoner.Budget.reason;
    certified : Structure.Element.t list list;
  }

  type outcome = (verdict, failure) result

  type result_one = {
    item_name : string;
    outcome : outcome;
    seconds : float;  (** wall time of this item, on its worker *)
    stats : Reasoner.Stats.t;  (** engines this item's session forced *)
    worker : int;  (** pool domain index that processed the item *)
  }

  type report = {
    results : result_one list;  (** submission order *)
    jobs : int;
    seconds : float;  (** wall time of the whole batch *)
    total : Reasoner.Stats.t;  (** per-item stats summed in order *)
  }

  (** [run ?timeout ?fuel ?max_clauses ?jobs task items] processes
      every item on a pool of [jobs] domains (default 1 — a plain
      sequential loop). [timeout] / [fuel] / [max_clauses] bound each
      item separately: the budget is
      created when the item starts on its worker, so deadlines are
      relative to item start, not batch submission. If tracing is
      enabled on the calling domain, each item runs under a private
      collector that is merged into the ambient one in submission
      order, spans tagged with the worker's [domain] index. *)
  val run :
    ?timeout:float ->
    ?fuel:int ->
    ?max_clauses:int ->
    ?jobs:int ->
    task ->
    item list ->
    report

  (** The most severe budget reason across items ([Timeout] over
      [Fuel]), if any tripped — drives the CLI exit code. *)
  val worst_failure : report -> Reasoner.Budget.reason option
end

val pp : t Fmt.t
