(** Ontology-mediated queries (O, q) — the paper's central object — and
    the analyses developed for them. This is the library façade used by
    the examples and the command-line tool.

    Evaluation runs on the incremental {!Reasoner.Engine}: open a
    {!session} to ground (O, D) once and answer many tuples against it;
    the tuple-at-a-time entry points below are shorthands that fetch the
    same cached sessions. *)

type t = {
  ontology : Logic.Ontology.t;
  query : Query.Ucq.t;
}

val make : Logic.Ontology.t -> Query.Ucq.t -> t
val of_cq : Logic.Ontology.t -> Query.Cq.t -> t

(** Build from a DL TBox via the standard translation. *)
val of_tbox : Dl.Tbox.t -> Query.Ucq.t -> t

(** An evaluation session for one (O, q, D): one engine per countermodel
    bound 0..max_extra, grounded lazily on first use and shared through
    the engine's LRU session cache. *)
type session

val open_session : ?max_extra:int -> t -> Structure.Instance.t -> session

module Session : sig
  type t = session

  val instance : t -> Structure.Instance.t
  val max_extra : t -> int

  (** O,D ⊨ q(ā): no countermodel at any bound 0..max_extra. *)
  val certain : t -> Structure.Element.t list -> bool

  val is_consistent : t -> bool

  (** Certain answers, streamed over the active domain without
      materializing the |dom|^arity candidate list. *)
  val certain_answers_seq : t -> Structure.Element.t list Seq.t

  (** All certain answers; boolean queries short-circuit on their single
      candidate. *)
  val certain_answers : t -> Structure.Element.t list list

  (** Aggregated {!Reasoner.Stats} of the engines this session forced. *)
  val stats : t -> Reasoner.Stats.t
end

(** Certain answer O,D ⊨ q(ā); refutations are exact, confirmations hold
    up to [max_extra] fresh countermodel elements. *)
val certain :
  ?max_extra:int -> t -> Structure.Instance.t -> Structure.Element.t list -> bool

(** All certain answers over the active domain. *)
val certain_answers :
  ?max_extra:int -> t -> Structure.Instance.t -> Structure.Element.t list list

(** Streaming variant of {!certain_answers}. *)
val certain_answers_seq :
  ?max_extra:int -> t -> Structure.Instance.t -> Structure.Element.t list Seq.t

val is_consistent : ?max_extra:int -> t -> Structure.Instance.t -> bool

(** Figure 1 classification of the ontology. *)
val classify : t -> Classify.Landscape.evidence

(** The minimal uGF/uGC2 fragment descriptor. *)
val fragment : t -> Gf.Fragment.t option

(** Materializability on an instance (bounded search). *)
val materializable_on :
  ?max_model_extra:int -> ?max_extra:int -> t -> Structure.Instance.t -> bool

(** The Theorem 5 type-based evaluation; [Error `Not_single_cq] when the
    query has more than one disjunct. *)
val rewritten_certain :
  ?extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list ->
  (bool, [ `Not_single_cq ]) result

(** Theorem 13: decide PTIME query evaluation. *)
val decide_ptime :
  ?seed:int -> ?max_outdegree:int -> ?samples:int -> t -> Classify.Decide.verdict

val pp : t Fmt.t
