(** Ontology-mediated queries (O, q) — the paper's central object — and
    the analyses developed for them. This is the library façade used by
    the examples and the command-line tool.

    Evaluation runs on the incremental {!Reasoner.Engine}: open a
    {!session} to ground (O, D) once and answer many tuples against it;
    the tuple-at-a-time entry points below are shorthands that fetch the
    same cached sessions.

    Every evaluation entry accepts a [?budget] (default
    {!Reasoner.Budget.unlimited}). The plain forms raise
    {!Reasoner.Budget.Exhausted} on a trip; the [_within] forms return a
    typed {!Reasoner.Budget.outcome} and degrade gracefully —
    {!Session.certain_answers_within} reports the tuples certified
    before exhaustion plus the undecided candidate stream as a
    resumption hint. *)

type t = {
  ontology : Logic.Ontology.t;
  query : Query.Ucq.t;
}

val make : Logic.Ontology.t -> Query.Ucq.t -> t
val of_cq : Logic.Ontology.t -> Query.Cq.t -> t

(** Build from a DL TBox via the standard translation. *)
val of_tbox : Dl.Tbox.t -> Query.Ucq.t -> t

(** An evaluation session for one (O, q, D): one engine per countermodel
    bound 0..max_extra, grounded on first use and shared through the
    engine's LRU session cache. *)
type session

val open_session : ?max_extra:int -> t -> Structure.Instance.t -> session

module Session : sig
  type t = session

  val instance : t -> Structure.Instance.t
  val max_extra : t -> int

  (** O,D ⊨ q(ā): no countermodel at any bound 0..max_extra. *)
  val certain : ?budget:Reasoner.Budget.t -> t -> Structure.Element.t list -> bool

  val is_consistent : ?budget:Reasoner.Budget.t -> t -> bool

  (** Certain answers, streamed over the active domain without
      materializing the |dom|^arity candidate list. *)
  val certain_answers_seq :
    ?budget:Reasoner.Budget.t -> t -> Structure.Element.t list Seq.t

  (** All certain answers; boolean queries short-circuit on their single
      candidate. *)
  val certain_answers :
    ?budget:Reasoner.Budget.t -> t -> Structure.Element.t list list

  (** On a budget trip: tuples certified so far and the undecided
      candidate tail (headed by the tuple in flight) — resume by
      re-checking exactly the [undecided] stream. *)
  type partial_answers = {
    certified : Structure.Element.t list list;
    undecided : Structure.Element.t list Seq.t;
  }

  (** Typed, gracefully degrading form of {!certain_answers}. *)
  val certain_answers_within :
    Reasoner.Budget.t ->
    t ->
    (Structure.Element.t list list, partial_answers) Reasoner.Budget.outcome

  val certain_within :
    Reasoner.Budget.t ->
    t ->
    Structure.Element.t list ->
    (bool, unit) Reasoner.Budget.outcome

  val is_consistent_within :
    Reasoner.Budget.t -> t -> (bool, unit) Reasoner.Budget.outcome

  (** Aggregated {!Reasoner.Stats} of the engines this session forced. *)
  val stats : t -> Reasoner.Stats.t
end

(** Certain answer O,D ⊨ q(ā); refutations are exact, confirmations hold
    up to [max_extra] fresh countermodel elements. *)
val certain :
  ?budget:Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list ->
  bool

(** All certain answers over the active domain. *)
val certain_answers :
  ?budget:Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list list

(** Streaming variant of {!certain_answers}. *)
val certain_answers_seq :
  ?budget:Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list Seq.t

val is_consistent :
  ?budget:Reasoner.Budget.t -> ?max_extra:int -> t -> Structure.Instance.t -> bool

(** Typed-outcome shorthands over a fresh session. *)

val certain_within :
  Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list ->
  (bool, unit) Reasoner.Budget.outcome

val certain_answers_within :
  Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  (Structure.Element.t list list, Session.partial_answers)
  Reasoner.Budget.outcome

val is_consistent_within :
  Reasoner.Budget.t ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  (bool, unit) Reasoner.Budget.outcome

(** Figure 1 classification of the ontology. *)
val classify : t -> Classify.Landscape.evidence

(** The minimal uGF/uGC2 fragment descriptor. *)
val fragment : t -> Gf.Fragment.t option

(** Materializability on an instance (bounded search). *)
val materializable_on :
  ?budget:Reasoner.Budget.t ->
  ?max_model_extra:int ->
  ?max_extra:int ->
  t ->
  Structure.Instance.t ->
  bool

(** The Theorem 5 type-based evaluation; [Error `Not_single_cq] when the
    query has more than one disjunct, [Error (`Not_two_variable _)] when
    the (O, q) pair leaves the binary/two-variable setting the procedure
    supports. *)
val rewritten_certain :
  ?budget:Reasoner.Budget.t ->
  ?extra:int ->
  t ->
  Structure.Instance.t ->
  Structure.Element.t list ->
  (bool, [ `Not_single_cq | `Not_two_variable of string ]) result

(** Theorem 13: decide PTIME query evaluation. *)
val decide_ptime :
  ?budget:Reasoner.Budget.t ->
  ?seed:int ->
  ?max_outdegree:int ->
  ?samples:int ->
  t ->
  Classify.Decide.verdict

(** Typed form of {!decide_ptime}; the partial payload is the number of
    bouquets fully checked before the trip. *)
val try_decide_ptime :
  Reasoner.Budget.t ->
  ?seed:int ->
  ?max_outdegree:int ->
  ?samples:int ->
  t ->
  (Classify.Decide.verdict, int) Reasoner.Budget.outcome

(** Drop every process-wide cache the answering stack keeps (the engine
    session registry and the grounder's circuit memo), for cold-path
    measurements and bounding long-process memory. *)
val clear_caches : unit -> unit

val pp : t Fmt.t
