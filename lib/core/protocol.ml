(* The versioned wire schema shared by the serve daemon, the blocking
   client and omq_tool's one-shot --json output. See protocol.mli for
   the format; the invariant that matters here is determinism: rendering
   is a fixed member order, so equal values produce equal bytes and a
   CLI evaluation is byte-compatible with a server response. *)

(* v2 added retract_facts. Decoding is lenient: every version back to
   [min_version] is accepted, since v1 frames are a subset of v2 — a v1
   client talking to a v2 daemon (or the reverse) stays compatible. *)
let version = 2
let min_version = 1

(* ------------------------------------------------------------------ *)
(* JSON values and the parser                                           *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let rec render = function
    | Null -> "null"
    | Bool true -> "true"
    | Bool false -> "false"
    | Num f -> Obs.Json.number f
    | Str s -> Obs.Json.escape s
    | Arr xs -> "[" ^ String.concat "," (List.map render xs) ^ "]"
    | Obj ms ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Obs.Json.escape k ^ ":" ^ render v) ms)
        ^ "}"

  let member name = function Obj ms -> List.assoc_opt name ms | _ -> None

  let rec equal a b =
    match (a, b) with
    | Null, Null -> true
    | Bool x, Bool y -> Bool.equal x y
    | Num x, Num y -> Float.equal x y
    | Str x, Str y -> String.equal x y
    | Arr x, Arr y -> List.equal equal x y
    | Obj x, Obj y ->
        List.equal
          (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
          x y
    | _ -> false

  (* A total recursive-descent parser over the raw string. Depth is
     bounded so a hostile frame cannot overflow the stack. *)

  exception Bad of int * string

  let max_depth = 512

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (!pos, msg)) in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected '%s'" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char b '"'; advance ()
                 | '\\' -> Buffer.add_char b '\\'; advance ()
                 | '/' -> Buffer.add_char b '/'; advance ()
                 | 'b' -> Buffer.add_char b '\b'; advance ()
                 | 'f' -> Buffer.add_char b '\012'; advance ()
                 | 'n' -> Buffer.add_char b '\n'; advance ()
                 | 'r' -> Buffer.add_char b '\r'; advance ()
                 | 't' -> Buffer.add_char b '\t'; advance ()
                 | 'u' ->
                     advance ();
                     if !pos + 4 > n then fail "truncated \\u escape";
                     let hex = String.sub s !pos 4 in
                     let code =
                       match int_of_string_opt ("0x" ^ hex) with
                       | Some c -> c
                       | None -> fail "invalid \\u escape"
                     in
                     pos := !pos + 4;
                     (* encode the code point as UTF-8 (surrogates are
                        kept as-is bytes of their replacement) *)
                     if code < 0x80 then Buffer.add_char b (Char.chr code)
                     else if code < 0x800 then begin
                       Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                     end
                     else begin
                       Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                       Buffer.add_char b
                         (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                     end
                 | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
              go ()
          | c ->
              Buffer.add_char b c;
              advance ();
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let consume p =
        while !pos < n && p s.[!pos] do
          advance ()
        done
      in
      if peek () = Some '-' then advance ();
      consume (function '0' .. '9' -> true | _ -> false);
      if peek () = Some '.' then begin
        advance ();
        consume (function '0' .. '9' -> true | _ -> false)
      end;
      (match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with
          | Some ('+' | '-') -> advance ()
          | _ -> ());
          consume (function '0' .. '9' -> true | _ -> false)
      | _ -> ());
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "invalid number"
    in
    let rec parse_value depth =
      if depth > max_depth then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let items = ref [ parse_value (depth + 1) ] in
            skip_ws ();
            while peek () = Some ',' do
              advance ();
              items := parse_value (depth + 1) :: !items;
              skip_ws ()
            done;
            expect ']';
            Arr (List.rev !items)
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let entry () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value (depth + 1) in
              (k, v)
            in
            let items = ref [ entry () ] in
            skip_ws ();
            while peek () = Some ',' do
              advance ();
              items := entry () :: !items;
              skip_ws ()
            done;
            expect '}';
            Obj (List.rev !items)
          end
      | Some ('-' | '0' .. '9') -> Num (parse_number ())
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad (at, msg) ->
        Error (Printf.sprintf "offset %d: %s" at msg)
end

(* ------------------------------------------------------------------ *)
(* Schema types                                                         *)
(* ------------------------------------------------------------------ *)

type budget_spec = {
  timeout_s : float option;
  fuel : int option;
  max_clauses : int option;
}

let no_budget = { timeout_s = None; fuel = None; max_clauses = None }

type request =
  | Open_session of {
      ontology : string;
      data : string;
      query : string;
      max_extra : int;
    }
  | Close_session of { session : int }
  | Eval of { session : int; budget : budget_spec; want_stats : bool }
  | Classify of { ontology : string }
  | Insert_facts of { session : int; facts : string }
  | Retract_facts of { session : int; facts : string }
  | Stats
  | Dump_telemetry
  | Shutdown

type classification = {
  dl_name : string;
  depth : int;
  fragment : string option;
  status : string;
  evidence_fragment : string;
  source : string;
}

type answers = {
  consistent : bool;
  boolean : bool;
  tuples : string list list;
}

type error_kind =
  | Bad_frame
  | Bad_version
  | Bad_request
  | Unknown_session
  | Frame_too_large
  | Shutting_down
  | Overloaded
  | Worker_lost
  | Internal

let error_kind_name = function
  | Bad_frame -> "bad_frame"
  | Bad_version -> "bad_version"
  | Bad_request -> "bad_request"
  | Unknown_session -> "unknown_session"
  | Frame_too_large -> "frame_too_large"
  | Shutting_down -> "shutting_down"
  | Overloaded -> "overloaded"
  | Worker_lost -> "worker_lost"
  | Internal -> "internal"

let error_kind_of_name = function
  | "bad_frame" -> Some Bad_frame
  | "bad_version" -> Some Bad_version
  | "bad_request" -> Some Bad_request
  | "unknown_session" -> Some Unknown_session
  | "frame_too_large" -> Some Frame_too_large
  | "shutting_down" -> Some Shutting_down
  | "overloaded" -> Some Overloaded
  | "worker_lost" -> Some Worker_lost
  | "internal" -> Some Internal
  | _ -> None

(* A retryable rejection is the daemon's promise that the request had no
   effect: it was shed before submission ([Overloaded]) or its worker was
   quarantined before any session-table effect was applied
   ([Worker_lost]). Resending the same frame — same id — is therefore
   safe, which is the idempotency contract {!Client.call}'s retry loop
   relies on. *)
let retryable = function
  | Overloaded | Worker_lost -> true
  | Bad_frame | Bad_version | Bad_request | Unknown_session | Frame_too_large
  | Shutting_down | Internal ->
      false

type response =
  | Opened of { session : int }
  | Closed of { session : int }
  | Evaled of { result : answers; stats : Json.t option }
  | Partial of {
      reason : Reasoner.Budget.reason;
      certified : string list list;
      resume_from : string list option;
      stats : Json.t option;
    }
  | Classified of classification
  | Decided of { verdict : [ `Ptime of int | `Conp_hard of string ] }
  | Decide_partial of { reason : Reasoner.Budget.reason; checked : int }
  | Inserted of { session : int; total_facts : int }
  | Retracted of { session : int; total_facts : int }
  | Server_stats of {
      uptime_s : float;
      server_version : string;
      sessions : int;
      served : int;
      errors : int;
      inflight : int;
      journal_bytes : int;
      journal_entries : int;
      counters : Json.t;
      reasoner : Json.t;
    }
  | Telemetry of { telemetry : Json.t }
  | Shutdown_ack
  | Rejected of { kind : error_kind; message : string }

let reason_name = function
  | Reasoner.Budget.Timeout -> "timeout"
  | Reasoner.Budget.Fuel -> "out_of_fuel"

let reason_of_name = function
  | "timeout" -> Some Reasoner.Budget.Timeout
  | "out_of_fuel" -> Some Reasoner.Budget.Fuel
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let jint i = Json.Num (float_of_int i)
let jstr s = Json.Str s
let jtuples ts = Json.Arr (List.map (fun t -> Json.Arr (List.map jstr t)) ts)

let envelope ?id fields =
  Json.Obj
    ((("v", jint version)
     :: (match id with Some i -> [ ("id", jint i) ] | None -> []))
    @ fields)

let budget_fields { timeout_s; fuel; max_clauses } =
  (match timeout_s with Some t -> [ ("timeout", Json.Num t) ] | None -> [])
  @ (match fuel with Some f -> [ ("fuel", jint f) ] | None -> [])
  @ match max_clauses with Some c -> [ ("max_clauses", jint c) ] | None -> []

let request_to_json ?id req =
  envelope ?id
    (match req with
    | Open_session { ontology; data; query; max_extra } ->
        [
          ("op", jstr "open_session");
          ("ontology", jstr ontology);
          ("data", jstr data);
          ("query", jstr query);
          ("max_extra", jint max_extra);
        ]
    | Close_session { session } ->
        [ ("op", jstr "close_session"); ("session", jint session) ]
    | Eval { session; budget; want_stats } ->
        [ ("op", jstr "eval"); ("session", jint session) ]
        @ budget_fields budget
        @ if want_stats then [ ("stats", Json.Bool true) ] else []
    | Classify { ontology } ->
        [ ("op", jstr "classify"); ("ontology", jstr ontology) ]
    | Insert_facts { session; facts } ->
        [
          ("op", jstr "insert_facts");
          ("session", jint session);
          ("facts", jstr facts);
        ]
    | Retract_facts { session; facts } ->
        [
          ("op", jstr "retract_facts");
          ("session", jint session);
          ("facts", jstr facts);
        ]
    | Stats -> [ ("op", jstr "stats") ]
    | Dump_telemetry -> [ ("op", jstr "dump_telemetry") ]
    | Shutdown -> [ ("op", jstr "shutdown") ])

let stats_field = function
  | Some s -> [ ("stats", (s : Json.t)) ]
  | None -> []

let response_to_json ?id resp =
  let typed t outcome fields =
    envelope ?id (("type", jstr t) :: ("outcome", jstr outcome) :: fields)
  in
  match resp with
  | Opened { session } -> typed "open_session" "ok" [ ("session", jint session) ]
  | Closed { session } -> typed "close_session" "ok" [ ("session", jint session) ]
  | Evaled { result = { consistent; boolean; tuples }; stats } ->
      typed "eval" "ok"
        ([ ("consistent", Json.Bool consistent); ("boolean", Json.Bool boolean) ]
        @ (if not consistent then []
           else if boolean then [ ("certain", Json.Bool (tuples <> [])) ]
           else
             [
               ("count", jint (List.length tuples)); ("answers", jtuples tuples);
             ])
        @ stats_field stats)
  | Partial { reason; certified; resume_from; stats } ->
      typed "eval" (reason_name reason)
        ([
           ("certified", jtuples certified);
           ( "resume_from",
             match resume_from with
             | Some t -> Json.Arr (List.map jstr t)
             | None -> Json.Null );
         ]
        @ stats_field stats)
  | Classified { dl_name; depth; fragment; status; evidence_fragment; source }
    ->
      typed "classify" "ok"
        [
          ("dl_name", jstr dl_name);
          ("depth", jint depth);
          ( "fragment",
            match fragment with Some f -> jstr f | None -> Json.Null );
          ("status", jstr status);
          ("evidence_fragment", jstr evidence_fragment);
          ("source", jstr source);
        ]
  | Decided { verdict = `Ptime n } ->
      typed "decide" "ok"
        [ ("verdict", jstr "ptime"); ("bouquets_checked", jint n) ]
  | Decided { verdict = `Conp_hard w } ->
      typed "decide" "ok" [ ("verdict", jstr "conp_hard"); ("witness", jstr w) ]
  | Decide_partial { reason; checked } ->
      typed "decide" (reason_name reason) [ ("bouquets_checked", jint checked) ]
  | Inserted { session; total_facts } ->
      typed "insert_facts" "ok"
        [ ("session", jint session); ("total_facts", jint total_facts) ]
  | Retracted { session; total_facts } ->
      typed "retract_facts" "ok"
        [ ("session", jint session); ("total_facts", jint total_facts) ]
  | Server_stats
      {
        uptime_s;
        server_version;
        sessions;
        served;
        errors;
        inflight;
        journal_bytes;
        journal_entries;
        counters;
        reasoner;
      } ->
      typed "stats" "ok"
        [
          ("uptime_s", Json.Num uptime_s);
          ("version", jstr server_version);
          ("sessions", jint sessions);
          ("served", jint served);
          ("errors", jint errors);
          ("inflight", jint inflight);
          ("journal_bytes", jint journal_bytes);
          ("journal_entries", jint journal_entries);
          ("counters", counters);
          ("reasoner", reasoner);
        ]
  | Telemetry { telemetry } -> typed "telemetry" "ok" [ ("telemetry", telemetry) ]
  | Shutdown_ack -> typed "shutdown" "ok" []
  | Rejected { kind; message } ->
      typed "error" "error"
        [ ("error", jstr (error_kind_name kind)); ("message", jstr message) ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

type 'a decoded = (int option * 'a, int option * (error_kind * string)) result

let as_exact_int = function
  | Json.Num f when Float.is_integer f && Float.abs f < 1e15 ->
      Some (int_of_float f)
  | _ -> None

(* Field accessors over an association list; errors are typed
   [Bad_request] with the offending field named. *)

let field ms name = List.assoc_opt name ms

let req_int ms name =
  match field ms name with
  | Some v -> (
      match as_exact_int v with
      | Some i -> Ok i
      | None -> Error (Bad_request, name ^ " must be an integer"))
  | None -> Error (Bad_request, "missing field " ^ name)

let req_str ms name =
  match field ms name with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Bad_request, name ^ " must be a string")
  | None -> Error (Bad_request, "missing field " ^ name)

let opt_or ms name default conv =
  match field ms name with
  | None | Some Json.Null -> Ok default
  | Some v -> conv v

let opt_int ms name =
  opt_or ms name None (fun v ->
      match as_exact_int v with
      | Some i -> Ok (Some i)
      | None -> Error (Bad_request, name ^ " must be an integer"))

let opt_int_default ms name default =
  opt_or ms name default (fun v ->
      match as_exact_int v with
      | Some i -> Ok i
      | None -> Error (Bad_request, name ^ " must be an integer"))

let opt_num ms name =
  opt_or ms name None (function
    | Json.Num f -> Ok (Some f)
    | _ -> Error (Bad_request, name ^ " must be a number"))

let opt_bool ms name default =
  opt_or ms name default (function
    | Json.Bool b -> Ok b
    | _ -> Error (Bad_request, name ^ " must be a boolean"))

let opt_str ms name default =
  opt_or ms name default (function
    | Json.Str s -> Ok s
    | _ -> Error (Bad_request, name ^ " must be a string"))

let as_tuple name = function
  | Json.Arr items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Str s :: rest -> go (s :: acc) rest
        | _ -> Error (Bad_request, name ^ " must hold strings")
      in
      go [] items
  | _ -> Error (Bad_request, name ^ " must be an array")

let as_tuples name = function
  | Json.Arr items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match as_tuple name item with
            | Ok t -> go (t :: acc) rest
            | Error e -> Error e)
      in
      go [] items
  | _ -> Error (Bad_request, name ^ " must be an array")

let frame_id ms =
  match field ms "id" with Some v -> as_exact_int v | None -> None

let check_version ms =
  match field ms "v" with
  | Some v -> (
      match as_exact_int v with
      | Some n when n >= min_version && n <= version -> Ok ()
      | Some n ->
          Error
            ( Bad_version,
              Printf.sprintf
                "unsupported protocol version %d (this build speaks %d-%d)"
                n min_version version )
      | None -> Error (Bad_version, "v must be an integer"))
  | None -> Error (Bad_version, "missing protocol version field v")

let with_frame json decode =
  match json with
  | Json.Obj ms -> (
      let id = frame_id ms in
      match check_version ms with
      | Error e -> Error (id, e)
      | Ok () -> (
          match decode ms with
          | Ok v -> Ok (id, v)
          | Error e -> Error (id, e)))
  | _ -> Error (None, (Bad_frame, "frame is not a JSON object"))

let ( let* ) = Result.bind

let request_of_json json =
  with_frame json @@ fun ms ->
  let* op = req_str ms "op" in
  match op with
  | "open_session" ->
      let* ontology = req_str ms "ontology" in
      let* data = opt_str ms "data" "" in
      let* query = req_str ms "query" in
      let* max_extra =
        match opt_int ms "max_extra" with
        | Ok None -> Ok 2
        | Ok (Some n) when n >= 0 -> Ok n
        | Ok (Some _) -> Error (Bad_request, "max_extra must be >= 0")
        | Error e -> Error e
      in
      Ok (Open_session { ontology; data; query; max_extra })
  | "close_session" ->
      let* session = req_int ms "session" in
      Ok (Close_session { session })
  | "eval" ->
      let* session = req_int ms "session" in
      let* timeout_s = opt_num ms "timeout" in
      let* fuel = opt_int ms "fuel" in
      let* max_clauses = opt_int ms "max_clauses" in
      let* want_stats = opt_bool ms "stats" false in
      Ok
        (Eval
           { session; budget = { timeout_s; fuel; max_clauses }; want_stats })
  | "classify" ->
      let* ontology = req_str ms "ontology" in
      Ok (Classify { ontology })
  | "insert_facts" ->
      let* session = req_int ms "session" in
      let* facts = req_str ms "facts" in
      Ok (Insert_facts { session; facts })
  | "retract_facts" ->
      let* session = req_int ms "session" in
      let* facts = req_str ms "facts" in
      Ok (Retract_facts { session; facts })
  | "stats" -> Ok Stats
  | "dump_telemetry" -> Ok Dump_telemetry
  | "shutdown" -> Ok Shutdown
  | op -> Error (Bad_request, "unknown op " ^ op)

let response_of_json json =
  with_frame json @@ fun ms ->
  let* ty = req_str ms "type" in
  let* outcome = req_str ms "outcome" in
  let stats = field ms "stats" in
  match (ty, outcome) with
  | "open_session", "ok" ->
      let* session = req_int ms "session" in
      Ok (Opened { session })
  | "close_session", "ok" ->
      let* session = req_int ms "session" in
      Ok (Closed { session })
  | "eval", "ok" ->
      let* consistent =
        match field ms "consistent" with
        | Some (Json.Bool b) -> Ok b
        | _ -> Error (Bad_request, "missing field consistent")
      in
      let* boolean =
        match field ms "boolean" with
        | Some (Json.Bool b) -> Ok b
        | _ -> Error (Bad_request, "missing field boolean")
      in
      let* tuples =
        if not consistent then Ok []
        else if boolean then
          let* certain = opt_bool ms "certain" false in
          Ok (if certain then [ [] ] else [])
        else
          match field ms "answers" with
          | Some v -> as_tuples "answers" v
          | None -> Error (Bad_request, "missing field answers")
      in
      Ok (Evaled { result = { consistent; boolean; tuples }; stats })
  | "eval", outcome -> (
      match reason_of_name outcome with
      | None -> Error (Bad_request, "unknown outcome " ^ outcome)
      | Some reason ->
          let* certified =
            match field ms "certified" with
            | Some v -> as_tuples "certified" v
            | None -> Error (Bad_request, "missing field certified")
          in
          let* resume_from =
            match field ms "resume_from" with
            | None | Some Json.Null -> Ok None
            | Some v ->
                let* t = as_tuple "resume_from" v in
                Ok (Some t)
          in
          Ok (Partial { reason; certified; resume_from; stats }))
  | "classify", "ok" ->
      let* dl_name = req_str ms "dl_name" in
      let* depth = req_int ms "depth" in
      let* fragment =
        match field ms "fragment" with
        | None | Some Json.Null -> Ok None
        | Some (Json.Str s) -> Ok (Some s)
        | Some _ -> Error (Bad_request, "fragment must be a string or null")
      in
      let* status = req_str ms "status" in
      let* evidence_fragment = req_str ms "evidence_fragment" in
      let* source = req_str ms "source" in
      Ok
        (Classified
           { dl_name; depth; fragment; status; evidence_fragment; source })
  | "decide", "ok" -> (
      let* verdict = req_str ms "verdict" in
      match verdict with
      | "ptime" ->
          let* n = req_int ms "bouquets_checked" in
          Ok (Decided { verdict = `Ptime n })
      | "conp_hard" ->
          let* w = req_str ms "witness" in
          Ok (Decided { verdict = `Conp_hard w })
      | v -> Error (Bad_request, "unknown verdict " ^ v))
  | "decide", outcome -> (
      match reason_of_name outcome with
      | None -> Error (Bad_request, "unknown outcome " ^ outcome)
      | Some reason ->
          let* checked = req_int ms "bouquets_checked" in
          Ok (Decide_partial { reason; checked }))
  | "insert_facts", "ok" ->
      let* session = req_int ms "session" in
      let* total_facts = req_int ms "total_facts" in
      Ok (Inserted { session; total_facts })
  | "retract_facts", "ok" ->
      let* session = req_int ms "session" in
      let* total_facts = req_int ms "total_facts" in
      Ok (Retracted { session; total_facts })
  | "stats", "ok" ->
      let* uptime_s =
        match opt_num ms "uptime_s" with
        | Ok (Some f) -> Ok f
        | Ok None -> Error (Bad_request, "missing field uptime_s")
        | Error e -> Error e
      in
      let* sessions = req_int ms "sessions" in
      let* served = req_int ms "served" in
      let* errors = req_int ms "errors" in
      (* PR 8 additions decode leniently so a new client still reads a
         pre-telemetry daemon's stats frame. *)
      let* server_version = opt_str ms "version" "" in
      let* inflight = opt_int_default ms "inflight" 0 in
      let* journal_bytes = opt_int_default ms "journal_bytes" 0 in
      let* journal_entries = opt_int_default ms "journal_entries" 0 in
      let counters = Option.value ~default:Json.Null (field ms "counters") in
      let reasoner = Option.value ~default:Json.Null (field ms "reasoner") in
      Ok
        (Server_stats
           {
             uptime_s;
             server_version;
             sessions;
             served;
             errors;
             inflight;
             journal_bytes;
             journal_entries;
             counters;
             reasoner;
           })
  | "telemetry", "ok" ->
      let telemetry = Option.value ~default:Json.Null (field ms "telemetry") in
      Ok (Telemetry { telemetry })
  | "shutdown", "ok" -> Ok Shutdown_ack
  | "error", _ ->
      let* kind_name = req_str ms "error" in
      let* message = opt_str ms "message" "" in
      let kind =
        Option.value ~default:Internal (error_kind_of_name kind_name)
      in
      Ok (Rejected { kind; message })
  | ty, _ -> Error (Bad_request, "unknown response type " ^ ty)

(* ------------------------------------------------------------------ *)
(* String forms                                                         *)
(* ------------------------------------------------------------------ *)

let render_request ?id req = Json.render (request_to_json ?id req)
let render_response ?id resp = Json.render (response_to_json ?id resp)

let parse_frame of_json line =
  match Json.parse line with
  | Ok json -> of_json json
  | Error msg -> Error (None, (Bad_frame, msg))

let parse_request line = parse_frame request_of_json line
let parse_response line = parse_frame response_of_json line

(* ------------------------------------------------------------------ *)
(* Equality and printing                                                *)
(* ------------------------------------------------------------------ *)

let equal_budget a b =
  Option.equal Float.equal a.timeout_s b.timeout_s
  && Option.equal Int.equal a.fuel b.fuel
  && Option.equal Int.equal a.max_clauses b.max_clauses

let equal_request a b =
  match (a, b) with
  | Open_session a, Open_session b ->
      String.equal a.ontology b.ontology
      && String.equal a.data b.data
      && String.equal a.query b.query
      && Int.equal a.max_extra b.max_extra
  | Close_session a, Close_session b -> Int.equal a.session b.session
  | Eval a, Eval b ->
      Int.equal a.session b.session
      && equal_budget a.budget b.budget
      && Bool.equal a.want_stats b.want_stats
  | Classify a, Classify b -> String.equal a.ontology b.ontology
  | Insert_facts a, Insert_facts b ->
      Int.equal a.session b.session && String.equal a.facts b.facts
  | Retract_facts a, Retract_facts b ->
      Int.equal a.session b.session && String.equal a.facts b.facts
  | Stats, Stats | Dump_telemetry, Dump_telemetry | Shutdown, Shutdown -> true
  | _ -> false

let equal_tuples = List.equal (List.equal String.equal)

let equal_response a b =
  match (a, b) with
  | Opened a, Opened b -> Int.equal a.session b.session
  | Closed a, Closed b -> Int.equal a.session b.session
  | Evaled a, Evaled b ->
      Bool.equal a.result.consistent b.result.consistent
      && Bool.equal a.result.boolean b.result.boolean
      && equal_tuples a.result.tuples b.result.tuples
      && Option.equal Json.equal a.stats b.stats
  | Partial a, Partial b ->
      a.reason = b.reason
      && equal_tuples a.certified b.certified
      && Option.equal (List.equal String.equal) a.resume_from b.resume_from
      && Option.equal Json.equal a.stats b.stats
  | Classified a, Classified b ->
      String.equal a.dl_name b.dl_name
      && Int.equal a.depth b.depth
      && Option.equal String.equal a.fragment b.fragment
      && String.equal a.status b.status
      && String.equal a.evidence_fragment b.evidence_fragment
      && String.equal a.source b.source
  | Decided { verdict = `Ptime n }, Decided { verdict = `Ptime m } ->
      Int.equal n m
  | Decided { verdict = `Conp_hard v }, Decided { verdict = `Conp_hard w } ->
      String.equal v w
  | Decide_partial a, Decide_partial b ->
      a.reason = b.reason && Int.equal a.checked b.checked
  | Inserted a, Inserted b ->
      Int.equal a.session b.session && Int.equal a.total_facts b.total_facts
  | Retracted a, Retracted b ->
      Int.equal a.session b.session && Int.equal a.total_facts b.total_facts
  | Server_stats a, Server_stats b ->
      Float.equal a.uptime_s b.uptime_s
      && String.equal a.server_version b.server_version
      && Int.equal a.sessions b.sessions
      && Int.equal a.served b.served
      && Int.equal a.errors b.errors
      && Int.equal a.inflight b.inflight
      && Int.equal a.journal_bytes b.journal_bytes
      && Int.equal a.journal_entries b.journal_entries
      && Json.equal a.counters b.counters
      && Json.equal a.reasoner b.reasoner
  | Telemetry a, Telemetry b -> Json.equal a.telemetry b.telemetry
  | Shutdown_ack, Shutdown_ack -> true
  | Rejected a, Rejected b ->
      a.kind = b.kind && String.equal a.message b.message
  | _ -> false

let pp_request ppf r = Fmt.string ppf (render_request r)
let pp_response ppf r = Fmt.string ppf (render_response r)
