(** The versioned, typed wire schema of the OMQ service.

    One schema, three consumers: the [omq_tool serve] daemon speaks it
    over newline-delimited JSON frames, the blocking {!Omqd.Client} (and
    the load generator built on it) decodes it, and [omq_tool]'s
    one-shot [--json] output renders through the same codec — so a CLI
    evaluation and a server response for the same work are
    byte-compatible (the server adds only the echoed request ["id"]).

    Every frame is a single-line JSON object carrying a ["v"] protocol
    version. Decoding rejects missing or unsupported versions with the
    typed {!error_kind} [Bad_version]; unknown {e fields} are ignored
    (forward compatibility), unknown {e operations} are [Bad_request].

    Budget trips are not errors: a request that exhausts its
    {!Reasoner.Budget} gets a {!response} with outcome ["timeout"] or
    ["out_of_fuel"] ({!Partial} / {!Decide_partial}), mirroring the CLI
    exit codes 124 / 125, and the daemon keeps serving. *)

(** The JSON values of the wire format, with a total parser — the
    toolchain ships no JSON library, so this is the repository's one
    (rendering shared with {!Obs.Json}). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list  (** member order is preserved *)

  (** Compact one-line rendering (no spaces); integral numbers render
      without a fraction, others with ["%.17g"] (round-trip exact). *)
  val render : t -> string

  (** Parse one JSON document; trailing garbage, unterminated input and
      nesting deeper than 512 are errors ([Error "offset N: msg"]). *)
  val parse : string -> (t, string) result

  (** Member of an object, if present ([None] on non-objects too). *)
  val member : string -> t -> t option

  val equal : t -> t -> bool
end

(** The newest protocol version this build speaks (v2 added
    [retract_facts]). Frames are rendered at [version]. *)
val version : int

(** The oldest version still accepted when decoding: v1 frames are a
    subset of v2, so old clients keep working against a new daemon and
    vice versa. *)
val min_version : int

(** {1 Requests} *)

(** Per-request resource bounds. On the server these are clamped to the
    daemon's admission caps: the effective budget of a request is the
    dimension-wise minimum of what it asked for and what the server
    allows. *)
type budget_spec = {
  timeout_s : float option;
  fuel : int option;
  max_clauses : int option;
}

val no_budget : budget_spec

type request =
  | Open_session of {
      ontology : string;  (** DL concrete syntax, one axiom per line *)
      data : string;  (** instance text, one fact per line *)
      query : string;  (** UCQ, e.g. ["q(x) <- Thumb(x)"] *)
      max_extra : int;  (** countermodel domain bound *)
    }
  | Close_session of { session : int }
  | Eval of {
      session : int;
      budget : budget_spec;
      want_stats : bool;  (** include per-request engine counters *)
    }
  | Classify of { ontology : string }
  | Insert_facts of {
      session : int;
      facts : string;  (** instance text; the session is delta-maintained
                           (or re-opened on the union when the delta path
                           cannot apply), on the same worker *)
    }
  | Retract_facts of {
      session : int;
      facts : string;  (** instance text; facts absent from the session
                           are ignored (v2) *)
    }
  | Stats
  | Dump_telemetry
      (** live telemetry snapshot: flight-recorder ring, per-worker
          rows, server-side latency quantiles *)
  | Shutdown

(** {1 Responses} *)

(** Figure 1 classification payload. *)
type classification = {
  dl_name : string;
  depth : int;
  fragment : string option;  (** [None] = outside uGF/uGC2 *)
  status : string;
  evidence_fragment : string;
  source : string;
}

(** Certain-answer payload. Invariants relied on by the codec (the wire
    format stores booleans as a ["certain"] flag and omits answers of
    inconsistent instances): if [consistent = false] then [tuples = []];
    if [boolean] then [tuples] is [[]] or [[[]]]. *)
type answers = {
  consistent : bool;
  boolean : bool;
  tuples : string list list;  (** element names, in answer order *)
}

(** Typed request-level failures ([outcome = "error"] on the wire). *)
type error_kind =
  | Bad_frame  (** not parseable as a JSON object *)
  | Bad_version  (** ["v"] missing or not a supported version *)
  | Bad_request  (** unknown op, missing/ill-typed field, or
                     unparsable ontology / data / query text *)
  | Unknown_session
  | Frame_too_large  (** longer than the daemon's [--max-frame] *)
  | Shutting_down
  | Overloaded
      (** shed at admission: the daemon's in-flight cap was exceeded and
          the request was never submitted to a worker — retryable *)
  | Worker_lost
      (** the worker domain serving the request (or holding its session)
          was quarantined before the request took effect — retryable *)
  | Internal

val error_kind_name : error_kind -> string
val error_kind_of_name : string -> error_kind option

(** Whether a rejection of this kind is safe to retry by resending the
    same frame (same ["id"]): [true] exactly for {!Overloaded} and
    {!Worker_lost}, which the daemon only emits for requests that had no
    effect. This is the idempotency contract behind [Client]'s retry
    loop. *)
val retryable : error_kind -> bool

type response =
  | Opened of { session : int }
  | Closed of { session : int }
  | Evaled of { result : answers; stats : Json.t option }
      (** complete evaluation; [stats] is a {!Reasoner.Stats.to_json}
          object (per-request deltas on the server) *)
  | Partial of {
      reason : Reasoner.Budget.reason;
      certified : string list list;
      resume_from : string list option;
      stats : Json.t option;
    }  (** budget-tripped evaluation: what was certified before the
          trip and where to resume — outcome ["timeout"] /
          ["out_of_fuel"], the wire twin of exit codes 124 / 125 *)
  | Classified of classification
  | Decided of { verdict : [ `Ptime of int | `Conp_hard of string ] }
      (** Theorem 13 verdict: PTIME evidence from n bouquets, or a
          coNP-hardness witness (pretty-printed instance) *)
  | Decide_partial of { reason : Reasoner.Budget.reason; checked : int }
  | Inserted of { session : int; total_facts : int }
  | Retracted of { session : int; total_facts : int }
      (** facts remaining in the session after the retraction (v2) *)
  | Server_stats of {
      uptime_s : float;
      server_version : string;
          (** daemon build version (wire field ["version"]; empty when
              talking to a pre-telemetry daemon) *)
      sessions : int;
      served : int;  (** responses sent, errors included *)
      errors : int;
      inflight : int;  (** requests currently on worker domains *)
      journal_bytes : int;  (** 0 when serving without [--journal] *)
      journal_entries : int;  (** entries appended since this start *)
      counters : Json.t;
          (** daemon-side [serve.*] counters (supervision, chaos, shed,
              journal) as one flat object; [Null] from old daemons *)
      reasoner : Json.t;  (** summed per-worker {!Reasoner.Stats} *)
    }
  | Telemetry of { telemetry : Json.t }
      (** [dump_telemetry] payload: flight-recorder records, per-worker
          rows and latency quantiles — schema documented in README
          "Live telemetry" *)
  | Shutdown_ack
  | Rejected of { kind : error_kind; message : string }

val reason_name : Reasoner.Budget.reason -> string

(** {1 Codec}

    Renderings are deterministic: fixed member order, ["v"] first, then
    ["id"] when given. [*_of_json] validates the version before
    anything else. Decode errors carry the frame's ["id"] when one was
    recoverable, so servers can echo it on the error response. *)

type 'a decoded = (int option * 'a, int option * (error_kind * string)) result

val request_to_json : ?id:int -> request -> Json.t
val request_of_json : Json.t -> request decoded
val response_to_json : ?id:int -> response -> Json.t
val response_of_json : Json.t -> response decoded

(** One-line string forms ([render_*] append no newline; [parse_*]
    combine {!Json.parse} — a parse failure is [Bad_frame] — with
    [*_of_json]). *)

val render_request : ?id:int -> request -> string
val parse_request : string -> request decoded
val render_response : ?id:int -> response -> string
val parse_response : string -> response decoded

val equal_request : request -> request -> bool
val equal_response : response -> response -> bool
val pp_request : request Fmt.t
val pp_response : response Fmt.t
