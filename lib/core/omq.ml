(* The public façade: ontology-mediated queries (O, q) and the analyses
   the paper develops for them. Examples and the command-line tool only
   use this module.

   Evaluation runs on the incremental Reasoner.Engine: a session grounds
   (O, D) once per countermodel bound and answers every tuple by
   assumption solving, so asking for all certain answers of an n-ary
   query costs one grounding per bound instead of |dom|^n of them. *)

type t = {
  ontology : Logic.Ontology.t;
  query : Query.Ucq.t;
}

let make ontology query = { ontology; query }
let of_cq ontology cq = { ontology; query = Query.Ucq.of_cq cq }

let of_tbox tbox query = { ontology = Dl.Translate.tbox tbox; query }

(* ------------------------------------------------------------------ *)
(* Sessions                                                             *)
(* ------------------------------------------------------------------ *)

type session = {
  omq : t;
  instance : Structure.Instance.t;
  max_extra : int;
  (* one engine per countermodel bound 0..max_extra, grounded lazily on
     first use and shared through the Reasoner.Engine LRU cache *)
  engines : Reasoner.Engine.t Lazy.t list;
}

let open_session ?(max_extra = 2) omq d =
  let extra_signature = Query.Ucq.signature omq.query in
  {
    omq;
    instance = d;
    max_extra;
    engines =
      List.init (max_extra + 1) (fun k ->
          lazy (Reasoner.Engine.session ~extra_signature ~extra:k omq.ontology d));
  }

module Session = struct
  type t = session

  let instance s = s.instance
  let max_extra s = s.max_extra

  (* O,D ⊨ q(ā): no countermodel at any bound 0..max_extra. Bounds are
     visited in order, so a refuted tuple never grounds deeper bounds. *)
  let certain s tuple =
    List.for_all
      (fun eng -> Reasoner.Engine.certain_ucq (Lazy.force eng) s.omq.query tuple)
      s.engines

  let is_consistent s =
    List.exists (fun eng -> Reasoner.Engine.is_consistent (Lazy.force eng)) s.engines

  (* Candidate tuples over the active domain, lazily. *)
  let candidates s =
    let dom = Structure.Instance.domain_list s.instance in
    let rec tuples k =
      if k = 0 then Seq.return []
      else
        Seq.concat_map
          (fun rest -> Seq.map (fun e -> e :: rest) (List.to_seq dom))
          (tuples (k - 1))
    in
    tuples (Query.Ucq.arity s.omq.query)

  let certain_answers_seq s = Seq.filter (certain s) (candidates s)

  (* Boolean queries short-circuit on their single candidate; n-ary
     queries stream, never materializing the |dom|^n candidate list. *)
  let certain_answers s =
    if Query.Ucq.is_boolean s.omq.query then
      if certain s [] then [ [] ] else []
    else List.of_seq (certain_answers_seq s)

  (* Aggregated counters of the engines this session has forced. *)
  let stats s =
    let acc = Reasoner.Stats.create () in
    List.iter
      (fun eng ->
        if Lazy.is_val eng then
          Reasoner.Stats.add ~into:acc (Reasoner.Engine.stats (Lazy.force eng)))
      s.engines;
    acc
end

(* ------------------------------------------------------------------ *)
(* Semantics                                                            *)
(* ------------------------------------------------------------------ *)

(* Certain answer O,D ⊨ q(ā), up to [max_extra] fresh elements in the
   countermodel search (exact for refutation; GF/GC2 have the finite
   model property, so iterative deepening converges). *)
let certain ?max_extra omq d tuple =
  Session.certain (open_session ?max_extra omq d) tuple

(* All certain answers over the active domain. *)
let certain_answers ?max_extra omq d =
  Session.certain_answers (open_session ?max_extra omq d)

let certain_answers_seq ?max_extra omq d =
  Session.certain_answers_seq (open_session ?max_extra omq d)

let is_consistent ?max_extra omq d =
  Session.is_consistent (open_session ?max_extra omq d)

(* ------------------------------------------------------------------ *)
(* Analyses                                                             *)
(* ------------------------------------------------------------------ *)

(* Figure 1 classification of the ontology's minimal fragment. *)
let classify omq = Classify.Landscape.of_ontology omq.ontology

(* The minimal uGF/uGC2 fragment descriptor, if any. *)
let fragment omq = Gf.Fragment.of_ontology omq.ontology

(* Materializability of the ontology on a concrete instance. *)
let materializable_on ?max_model_extra ?max_extra omq d =
  Material.Materializability.materializable_on ?max_model_extra ?max_extra
    omq.ontology d

(* The Theorem 5 type-based evaluation (binary signatures). *)
let rewritten_certain ?extra omq d tuple =
  match omq.query.Query.Ucq.disjuncts with
  | [ cq ] -> Ok (Rewriting.Typeprog.entails ?extra omq.ontology cq d tuple)
  | _ -> Error `Not_single_cq

(* Theorem 13: decide PTIME query evaluation by bouquet
   materializability. *)
let decide_ptime ?seed ?max_outdegree ?samples omq =
  Classify.Decide.decide ?seed ?max_outdegree ?samples omq.ontology

let pp ppf omq =
  Fmt.pf ppf "@[<v>ontology:@ %a@ query:@ %a@]" Logic.Ontology.pp omq.ontology
    Query.Ucq.pp omq.query
