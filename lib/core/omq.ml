(* The public façade: ontology-mediated queries (O, q) and the analyses
   the paper develops for them. Examples and the command-line tool only
   use this module.

   Evaluation runs on the incremental Reasoner.Engine: a session grounds
   (O, D) once per countermodel bound and answers every tuple by
   assumption solving, so asking for all certain answers of an n-ary
   query costs one grounding per bound instead of |dom|^n of them.

   Every evaluation entry accepts a [?budget]; the [_within] forms
   return typed outcomes instead of raising, and certain_answers_within
   degrades to the tuples certified so far plus the undecided candidate
   stream as a resumption hint. *)

module Protocol = Protocol

type t = {
  ontology : Logic.Ontology.t;
  query : Query.Ucq.t;
}

let make ontology query = { ontology; query }
let of_cq ontology cq = { ontology; query = Query.Ucq.of_cq cq }

let of_tbox tbox query = { ontology = Dl.Translate.tbox tbox; query }

(* ------------------------------------------------------------------ *)
(* Sessions                                                             *)
(* ------------------------------------------------------------------ *)

type session = {
  omq : t;
  instance : Structure.Instance.t;
  max_extra : int;
  (* updatable sessions ground dynamic engines (facts as solver
     assumptions, bypassing the keyed LRU cache — a dynamic engine's
     instance mutates in place) so insert_facts/retract_facts can
     delta-maintain them instead of reopening *)
  updatable : bool;
  extra_signature : Logic.Signature.t;
  (* one engine per countermodel bound 0..max_extra, grounded on first
     use (memo cells rather than Lazy.t so a per-call budget governs the
     grounding too) and shared through the Reasoner.Engine LRU cache *)
  engines : Reasoner.Engine.t option ref array;
}

let open_session ?(max_extra = 2) ?(updatable = false) omq d =
  {
    omq;
    instance = d;
    max_extra;
    updatable;
    extra_signature = Query.Ucq.signature omq.query;
    engines = Array.init (max_extra + 1) (fun _ -> ref None);
  }

module Session = struct
  type t = session

  let instance s = s.instance
  let max_extra s = s.max_extra
  let updatable s = s.updatable

  (* The engine at bound k, grounded on first use under [budget]. A
     budget trip during grounding leaves the cell unset (and the engine
     cache unpolluted), so the next call grounds afresh. *)
  let engine ?budget s k =
    let cell = s.engines.(k) in
    match !cell with
    | Some eng -> eng
    | None ->
        let eng =
          if s.updatable then
            Reasoner.Engine.create ?budget ~dynamic:true
              ~extra_signature:s.extra_signature ~extra:k s.omq.ontology
              s.instance
          else
            Reasoner.Engine.session ?budget
              ~extra_signature:s.extra_signature ~extra:k s.omq.ontology
              s.instance
        in
        cell := Some eng;
        eng

  (* O,D ⊨ q(ā): no countermodel at any bound 0..max_extra. Bounds are
     visited in order, so a refuted tuple never grounds deeper bounds. *)
  let certain ?budget s tuple =
    Obs.Trace.with_span "omq.certain" @@ fun () ->
    if Obs.Trace.enabled () then
      Obs.Trace.add_attr "tuple"
        (Obs.Trace.Str
           (String.concat "," (List.map Structure.Element.to_string tuple)));
    let rec go k =
      k > s.max_extra
      || (Reasoner.Engine.certain_ucq ?budget (engine ?budget s k)
            s.omq.query tuple
         && go (k + 1))
    in
    let r = go 0 in
    if Obs.Trace.enabled () then
      Obs.Trace.add_attr "certain" (Obs.Trace.Bool r);
    r

  let is_consistent ?budget s =
    let rec go k =
      k <= s.max_extra
      && (Reasoner.Engine.is_consistent ?budget (engine ?budget s k)
         || go (k + 1))
    in
    go 0

  (* Candidate tuples over the active domain, lazily. *)
  let candidates s =
    let dom = Structure.Instance.domain_list s.instance in
    let rec tuples k =
      if k = 0 then Seq.return []
      else
        Seq.concat_map
          (fun rest -> Seq.map (fun e -> e :: rest) (List.to_seq dom))
          (tuples (k - 1))
    in
    tuples (Query.Ucq.arity s.omq.query)

  let certain_answers_seq ?budget s =
    Seq.filter (certain ?budget s) (candidates s)

  (* Boolean queries short-circuit on their single candidate; n-ary
     queries stream, never materializing the |dom|^n candidate list. *)
  let certain_answers ?budget s =
    Obs.Trace.with_span
      ~attrs:[ ("op", Obs.Trace.Str "certain_answers") ]
      "omq.query"
    @@ fun () ->
    let answers =
      if Query.Ucq.is_boolean s.omq.query then
        if certain ?budget s [] then [ [] ] else []
      else List.of_seq (certain_answers_seq ?budget s)
    in
    if Obs.Trace.enabled () then
      Obs.Trace.add_attr "answers" (Obs.Trace.Int (List.length answers));
    answers

  (* Graceful degradation: on a trip, report the tuples already
     certified and the undecided candidate tail (headed by the tuple in
     flight) as a resumption hint. *)
  type partial_answers = {
    certified : Structure.Element.t list list;
    undecided : Structure.Element.t list Seq.t;
  }

  (* The root span opens OUTSIDE Budget.protect: when a trip unwinds,
     the inner spans close with the classifier label and protect's
     handler stamps the trip status on this still-open root — so a
     budget-tripped trace exports with a closed, labelled root. *)
  let certain_answers_within budget s =
    Obs.Trace.with_span
      ~attrs:[ ("op", Obs.Trace.Str "certain_answers_within") ]
      "omq.query"
    @@ fun () ->
    let certified = ref [] in
    let cursor = ref (candidates s) in
    Reasoner.Budget.protect budget
      ~partial:(fun () ->
        { certified = List.rev !certified; undecided = !cursor })
      (fun () ->
        let rec go () =
          match !cursor () with
          | Seq.Nil -> ()
          | Seq.Cons (tuple, rest) ->
              if certain ~budget s tuple then certified := tuple :: !certified;
              cursor := rest;
              go ()
        in
        go ();
        List.rev !certified)

  let certain_within budget s tuple =
    Obs.Trace.with_span
      ~attrs:[ ("op", Obs.Trace.Str "certain_within") ]
      "omq.query"
    @@ fun () ->
    Reasoner.Budget.protect budget
      ~partial:(fun () -> ())
      (fun () -> certain ~budget s tuple)

  let is_consistent_within budget s =
    Obs.Trace.with_span
      ~attrs:[ ("op", Obs.Trace.Str "is_consistent_within") ]
      "omq.query"
    @@ fun () ->
    Reasoner.Budget.protect budget
      ~partial:(fun () -> ())
      (fun () -> is_consistent ~budget s)

  (* Aggregated counters of the engines this session has grounded. *)
  let stats s =
    let acc = Reasoner.Stats.create () in
    Array.iter
      (fun cell ->
        match !cell with
        | Some eng -> Reasoner.Stats.add ~into:acc (Reasoner.Engine.stats eng)
        | None -> ())
      s.engines;
    acc

  (* ---------------------------------------------------------------- *)
  (* Updates                                                            *)
  (* ---------------------------------------------------------------- *)

  let reopen s d = open_session ~max_extra:s.max_extra ~updatable:s.updatable s.omq d

  let forced_engines s =
    Array.to_list s.engines
    |> List.filter_map (fun cell -> !cell)

  (* Delta-update every engine this session has grounded; if any of them
     needs a rebuild (static engine, new domain element, vacated domain
     element) fall back to reopening the whole session on the updated
     instance — never a mix, so all bounds keep answering over the same
     D. Unforced bounds stay lazy and ground on the updated instance. *)
  let insert_facts ?budget s facts =
    let instance =
      List.fold_left (fun i f -> Structure.Instance.add_fact f i) s.instance
        facts
    in
    if not s.updatable then (reopen s instance, `Reopen)
    else if
      List.for_all
        (fun eng -> Reasoner.Engine.insert_facts ?budget eng facts = `Delta)
        (forced_engines s)
    then ({ s with instance }, `Delta)
    else (reopen s instance, `Reopen)

  let retract_facts ?budget s facts =
    let instance =
      List.fold_left (fun i f -> Structure.Instance.remove_fact f i) s.instance
        facts
    in
    if not s.updatable then (reopen s instance, `Reopen)
    else if
      List.for_all
        (fun eng -> Reasoner.Engine.retract_facts ?budget eng facts = `Delta)
        (forced_engines s)
    then ({ s with instance }, `Delta)
    else (reopen s instance, `Reopen)
end

(* ------------------------------------------------------------------ *)
(* Semantics                                                            *)
(* ------------------------------------------------------------------ *)

(* Certain answer O,D ⊨ q(ā), up to [max_extra] fresh elements in the
   countermodel search (exact for refutation; GF/GC2 have the finite
   model property, so iterative deepening converges). *)
let certain ?budget ?max_extra omq d tuple =
  Session.certain ?budget (open_session ?max_extra omq d) tuple

(* All certain answers over the active domain. *)
let certain_answers ?budget ?max_extra omq d =
  Session.certain_answers ?budget (open_session ?max_extra omq d)

let certain_answers_seq ?budget ?max_extra omq d =
  Session.certain_answers_seq ?budget (open_session ?max_extra omq d)

let is_consistent ?budget ?max_extra omq d =
  Session.is_consistent ?budget (open_session ?max_extra omq d)

let certain_within budget ?max_extra omq d tuple =
  Session.certain_within budget (open_session ?max_extra omq d) tuple

let certain_answers_within budget ?max_extra omq d =
  Session.certain_answers_within budget (open_session ?max_extra omq d)

let is_consistent_within budget ?max_extra omq d =
  Session.is_consistent_within budget (open_session ?max_extra omq d)

(* Drop every process-wide cache the answering stack keeps: the engine's
   session registry and the grounder's cross-session circuit memo. For
   benchmarking cold paths and bounding long-process memory. *)
let clear_caches () =
  Reasoner.Engine.clear_cache ();
  Reasoner.Ground.clear_memo ()

(* ------------------------------------------------------------------ *)
(* Analyses                                                             *)
(* ------------------------------------------------------------------ *)

(* Figure 1 classification of the ontology's minimal fragment. *)
let classify omq = Classify.Landscape.of_ontology omq.ontology

(* The minimal uGF/uGC2 fragment descriptor, if any. *)
let fragment omq = Gf.Fragment.of_ontology omq.ontology

(* Materializability of the ontology on a concrete instance. *)
let materializable_on ?budget ?max_model_extra ?max_extra omq d =
  Material.Materializability.materializable_on ?budget ?max_model_extra
    ?max_extra omq.ontology d

(* The Theorem 5 type-based evaluation (binary signatures). The
   procedure's applicability failures surface as typed errors, not
   exceptions. *)
let rewritten_certain ?budget ?extra omq d tuple =
  match omq.query.Query.Ucq.disjuncts with
  | [ cq ] -> (
      match Rewriting.Typeprog.entails ?budget ?extra omq.ontology cq d tuple with
      | b -> Ok b
      | exception Rewriting.Typeprog.Not_two_variable msg ->
          Error (`Not_two_variable msg))
  | _ -> Error `Not_single_cq

(* Theorem 13: decide PTIME query evaluation by bouquet
   materializability. *)
let decide_ptime ?budget ?seed ?max_outdegree ?samples omq =
  Classify.Decide.decide ?budget ?seed ?max_outdegree ?samples omq.ontology

let try_decide_ptime budget ?seed ?max_outdegree ?samples omq =
  Classify.Decide.try_decide budget ?seed ?max_outdegree ?samples omq.ontology

let pp ppf omq =
  Fmt.pf ppf "@[<v>ontology:@ %a@ query:@ %a@]" Logic.Ontology.pp omq.ontology
    Query.Ucq.pp omq.query

(* ------------------------------------------------------------------ *)
(* The corpus runner                                                    *)
(* ------------------------------------------------------------------ *)

(* Batch classification / evaluation of many ontologies on a
   Parallel.Pool — the paper's own workload shape (411 BioPortal
   ontologies) rather than one session at a time. Corpus items are
   independent, so the fan-out is shared-nothing: each worker domain
   grows its own engine registry, grounding memo and Stats record
   (Domain.DLS), and the only cross-domain artifacts are the per-item
   results, assembled in submission order. That assembly (plus
   per-item budgets and traces) is what makes [--jobs n] output
   bit-identical to [--jobs 1]. *)
module Corpus = struct
  type item = { name : string; tbox : Dl.Tbox.t }

  let generate ?(seed = 2017) ~n () =
    List.mapi
      (fun i tbox -> { name = Printf.sprintf "gen%d-%03d" seed i; tbox })
      (Bioportal.Generate.corpus ~seed ~n ())

  let read_file path =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error m -> Error m

  let load_file path =
    Result.bind (read_file path) (fun text ->
        match Dl.Parser.parse_tbox text with
        | tbox -> Ok tbox
        | exception Dl.Parser.Parse_error { line; message } ->
            Error (Printf.sprintf "%s:%d: %s" path line message)
        | exception Dl.Lexer.Lex_error { line; col; message } ->
            Error (Printf.sprintf "%s:%d:%d: %s" path line col message))

  (* Items sorted by file name: directory enumeration order is
     filesystem-dependent, and the corpus order is part of the
     deterministic output contract. *)
  let load_dir dir =
    match Sys.readdir dir with
    | exception Sys_error m -> Error m
    | names ->
        let files =
          Array.to_list names
          |> List.filter (fun f -> Filename.check_suffix f ".dl")
          |> List.sort compare
        in
        if files = [] then Error (dir ^ ": no .dl ontology files")
        else
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | f :: rest -> (
                match load_file (Filename.concat dir f) with
                | Ok tbox ->
                    go ({ name = Filename.chop_suffix f ".dl"; tbox } :: acc)
                      rest
                | Error m -> Error m)
          in
          go [] files

  type task =
    | Classify
    | Eval of {
        query : Query.Ucq.t;
        data : Structure.Instance.t;
        max_extra : int;
      }

  type classification = {
    dl_name : string;
    depth : int;
    fragment : Gf.Fragment.t option;
    evidence : Classify.Landscape.evidence;
  }

  type evaluation = {
    consistent : bool;
    answers : Structure.Element.t list list;
  }

  type verdict = Classified of classification | Evaluated of evaluation

  (* A budget trip on one item degrades that item alone — the pool keeps
     running its siblings; [certified] is what the item had proven
     before the trip (time-dependent, so callers must keep it out of
     deterministic output). *)
  type failure = {
    reason : Reasoner.Budget.reason;
    certified : Structure.Element.t list list;
  }

  type outcome = (verdict, failure) result

  type result_one = {
    item_name : string;
    outcome : outcome;
    seconds : float;  (* wall time of this item, on its worker *)
    stats : Reasoner.Stats.t;  (* engines this item's session forced *)
    worker : int;  (* pool domain index that processed the item *)
  }

  type report = {
    results : result_one list;  (* submission order *)
    jobs : int;
    seconds : float;  (* wall time of the whole batch *)
    total : Reasoner.Stats.t;  (* per-item stats summed in order *)
  }

  let classify_item item =
    let o = Dl.Translate.tbox item.tbox in
    Ok
      (Classified
         {
           dl_name = Dl.Tbox.name item.tbox;
           depth = Dl.Tbox.depth item.tbox;
           fragment = Gf.Fragment.of_ontology o;
           evidence = Classify.Landscape.of_tbox item.tbox;
         })

  (* The per-item budget is created at item start on the item's worker:
     wall-clock deadlines are relative to when the item begins running,
     not to batch submission, so a queue full of healthy items behind
     one slow one does not time out in bulk. *)
  let eval_item ~timeout ~fuel ~max_clauses ~query ~data ~max_extra item =
    let budget =
      match (timeout, fuel, max_clauses) with
      | None, None, None -> Reasoner.Budget.unlimited
      | _ -> Reasoner.Budget.create ?timeout ?fuel ?max_clauses ()
    in
    let s = open_session ~max_extra (of_tbox item.tbox query) data in
    let outcome =
      match Session.is_consistent_within budget s with
      | `Timeout () -> Error { reason = Reasoner.Budget.Timeout; certified = [] }
      | `Out_of_fuel () -> Error { reason = Reasoner.Budget.Fuel; certified = [] }
      | `Ok false -> Ok (Evaluated { consistent = false; answers = [] })
      | `Ok true -> (
          match Session.certain_answers_within budget s with
          | `Ok answers -> Ok (Evaluated { consistent = true; answers })
          | `Timeout p ->
              Error
                {
                  reason = Reasoner.Budget.Timeout;
                  certified = p.Session.certified;
                }
          | `Out_of_fuel p ->
              Error
                {
                  reason = Reasoner.Budget.Fuel;
                  certified = p.Session.certified;
                })
    in
    (outcome, Session.stats s)

  let run ?timeout ?fuel ?max_clauses ?(jobs = 1) task items =
    Obs.Trace.with_span
      ~attrs:[ ("jobs", Obs.Trace.Int jobs); ("items", Obs.Trace.Int (List.length items)) ]
      "omq.corpus"
    @@ fun () ->
    let items_a = Array.of_list items in
    (* Capture tracing intent on the submitting domain: workers have no
       ambient collector of their own, so each traced item records into
       a private collector merged below, in submission order. *)
    let traced = Obs.Trace.enabled () in
    let process ~worker item =
      let run_one () =
        let (outcome, stats), seconds =
          Obs.Clock.timed (fun () ->
              match task with
              | Classify -> (classify_item item, Reasoner.Stats.create ())
              | Eval { query; data; max_extra } ->
                  eval_item ~timeout ~fuel ~max_clauses ~query ~data ~max_extra item)
        in
        { item_name = item.name; outcome; seconds; stats; worker }
      in
      if not traced then (run_one (), None)
      else
        let r, c =
          Obs.Trace.collect (fun () ->
              Obs.Trace.with_span
                ~attrs:[ ("item", Obs.Trace.Str item.name) ]
                "corpus.item" run_one)
        in
        (r, Some (worker, c))
    in
    let t0 = Obs.Clock.now () in
    let results =
      Parallel.Pool.with_pool ~jobs (fun pool ->
          Parallel.Pool.mapw pool process items_a)
    in
    let seconds = Obs.Clock.now () -. t0 in
    (match Obs.Trace.active () with
    | Some into ->
        Array.iter
          (function
            | _, Some (worker, c) ->
                Obs.Trace.absorb ~into
                  ~attrs:[ ("domain", Obs.Trace.Int worker) ]
                  c
            | _, None -> ())
          results
    | None -> ());
    let results = Array.to_list (Array.map fst results) in
    let total = Reasoner.Stats.create () in
    List.iter (fun r -> Reasoner.Stats.add ~into:total r.stats) results;
    { results; jobs; seconds; total }

  (* The most severe reason across items: timeouts win over fuel trips
     (mirrors the CLI exit-code convention 124 > 125 in urgency). *)
  let worst_failure report =
    List.fold_left
      (fun acc r ->
        match (acc, r.outcome) with
        | Some Reasoner.Budget.Timeout, _ -> acc
        | _, Error { reason = Reasoner.Budget.Timeout; _ } ->
            Some Reasoner.Budget.Timeout
        | None, Error { reason; _ } -> Some reason
        | acc, _ -> acc)
      None report.results
end
