(* The public façade: ontology-mediated queries (O, q) and the analyses
   the paper develops for them. Examples and the command-line tool only
   use this module.

   Evaluation runs on the incremental Reasoner.Engine: a session grounds
   (O, D) once per countermodel bound and answers every tuple by
   assumption solving, so asking for all certain answers of an n-ary
   query costs one grounding per bound instead of |dom|^n of them.

   Every evaluation entry accepts a [?budget]; the [_within] forms
   return typed outcomes instead of raising, and certain_answers_within
   degrades to the tuples certified so far plus the undecided candidate
   stream as a resumption hint. *)

type t = {
  ontology : Logic.Ontology.t;
  query : Query.Ucq.t;
}

let make ontology query = { ontology; query }
let of_cq ontology cq = { ontology; query = Query.Ucq.of_cq cq }

let of_tbox tbox query = { ontology = Dl.Translate.tbox tbox; query }

(* ------------------------------------------------------------------ *)
(* Sessions                                                             *)
(* ------------------------------------------------------------------ *)

type session = {
  omq : t;
  instance : Structure.Instance.t;
  max_extra : int;
  extra_signature : Logic.Signature.t;
  (* one engine per countermodel bound 0..max_extra, grounded on first
     use (memo cells rather than Lazy.t so a per-call budget governs the
     grounding too) and shared through the Reasoner.Engine LRU cache *)
  engines : Reasoner.Engine.t option ref array;
}

let open_session ?(max_extra = 2) omq d =
  {
    omq;
    instance = d;
    max_extra;
    extra_signature = Query.Ucq.signature omq.query;
    engines = Array.init (max_extra + 1) (fun _ -> ref None);
  }

module Session = struct
  type t = session

  let instance s = s.instance
  let max_extra s = s.max_extra

  (* The engine at bound k, grounded on first use under [budget]. A
     budget trip during grounding leaves the cell unset (and the engine
     cache unpolluted), so the next call grounds afresh. *)
  let engine ?budget s k =
    let cell = s.engines.(k) in
    match !cell with
    | Some eng -> eng
    | None ->
        let eng =
          Reasoner.Engine.session ?budget
            ~extra_signature:s.extra_signature ~extra:k s.omq.ontology
            s.instance
        in
        cell := Some eng;
        eng

  (* O,D ⊨ q(ā): no countermodel at any bound 0..max_extra. Bounds are
     visited in order, so a refuted tuple never grounds deeper bounds. *)
  let certain ?budget s tuple =
    Obs.Trace.with_span "omq.certain" @@ fun () ->
    if Obs.Trace.enabled () then
      Obs.Trace.add_attr "tuple"
        (Obs.Trace.Str
           (String.concat "," (List.map Structure.Element.to_string tuple)));
    let rec go k =
      k > s.max_extra
      || (Reasoner.Engine.certain_ucq ?budget (engine ?budget s k)
            s.omq.query tuple
         && go (k + 1))
    in
    let r = go 0 in
    if Obs.Trace.enabled () then
      Obs.Trace.add_attr "certain" (Obs.Trace.Bool r);
    r

  let is_consistent ?budget s =
    let rec go k =
      k <= s.max_extra
      && (Reasoner.Engine.is_consistent ?budget (engine ?budget s k)
         || go (k + 1))
    in
    go 0

  (* Candidate tuples over the active domain, lazily. *)
  let candidates s =
    let dom = Structure.Instance.domain_list s.instance in
    let rec tuples k =
      if k = 0 then Seq.return []
      else
        Seq.concat_map
          (fun rest -> Seq.map (fun e -> e :: rest) (List.to_seq dom))
          (tuples (k - 1))
    in
    tuples (Query.Ucq.arity s.omq.query)

  let certain_answers_seq ?budget s =
    Seq.filter (certain ?budget s) (candidates s)

  (* Boolean queries short-circuit on their single candidate; n-ary
     queries stream, never materializing the |dom|^n candidate list. *)
  let certain_answers ?budget s =
    Obs.Trace.with_span
      ~attrs:[ ("op", Obs.Trace.Str "certain_answers") ]
      "omq.query"
    @@ fun () ->
    let answers =
      if Query.Ucq.is_boolean s.omq.query then
        if certain ?budget s [] then [ [] ] else []
      else List.of_seq (certain_answers_seq ?budget s)
    in
    if Obs.Trace.enabled () then
      Obs.Trace.add_attr "answers" (Obs.Trace.Int (List.length answers));
    answers

  (* Graceful degradation: on a trip, report the tuples already
     certified and the undecided candidate tail (headed by the tuple in
     flight) as a resumption hint. *)
  type partial_answers = {
    certified : Structure.Element.t list list;
    undecided : Structure.Element.t list Seq.t;
  }

  (* The root span opens OUTSIDE Budget.protect: when a trip unwinds,
     the inner spans close with the classifier label and protect's
     handler stamps the trip status on this still-open root — so a
     budget-tripped trace exports with a closed, labelled root. *)
  let certain_answers_within budget s =
    Obs.Trace.with_span
      ~attrs:[ ("op", Obs.Trace.Str "certain_answers_within") ]
      "omq.query"
    @@ fun () ->
    let certified = ref [] in
    let cursor = ref (candidates s) in
    Reasoner.Budget.protect budget
      ~partial:(fun () ->
        { certified = List.rev !certified; undecided = !cursor })
      (fun () ->
        let rec go () =
          match !cursor () with
          | Seq.Nil -> ()
          | Seq.Cons (tuple, rest) ->
              if certain ~budget s tuple then certified := tuple :: !certified;
              cursor := rest;
              go ()
        in
        go ();
        List.rev !certified)

  let certain_within budget s tuple =
    Obs.Trace.with_span
      ~attrs:[ ("op", Obs.Trace.Str "certain_within") ]
      "omq.query"
    @@ fun () ->
    Reasoner.Budget.protect budget
      ~partial:(fun () -> ())
      (fun () -> certain ~budget s tuple)

  let is_consistent_within budget s =
    Obs.Trace.with_span
      ~attrs:[ ("op", Obs.Trace.Str "is_consistent_within") ]
      "omq.query"
    @@ fun () ->
    Reasoner.Budget.protect budget
      ~partial:(fun () -> ())
      (fun () -> is_consistent ~budget s)

  (* Aggregated counters of the engines this session has grounded. *)
  let stats s =
    let acc = Reasoner.Stats.create () in
    Array.iter
      (fun cell ->
        match !cell with
        | Some eng -> Reasoner.Stats.add ~into:acc (Reasoner.Engine.stats eng)
        | None -> ())
      s.engines;
    acc
end

(* ------------------------------------------------------------------ *)
(* Semantics                                                            *)
(* ------------------------------------------------------------------ *)

(* Certain answer O,D ⊨ q(ā), up to [max_extra] fresh elements in the
   countermodel search (exact for refutation; GF/GC2 have the finite
   model property, so iterative deepening converges). *)
let certain ?budget ?max_extra omq d tuple =
  Session.certain ?budget (open_session ?max_extra omq d) tuple

(* All certain answers over the active domain. *)
let certain_answers ?budget ?max_extra omq d =
  Session.certain_answers ?budget (open_session ?max_extra omq d)

let certain_answers_seq ?budget ?max_extra omq d =
  Session.certain_answers_seq ?budget (open_session ?max_extra omq d)

let is_consistent ?budget ?max_extra omq d =
  Session.is_consistent ?budget (open_session ?max_extra omq d)

let certain_within budget ?max_extra omq d tuple =
  Session.certain_within budget (open_session ?max_extra omq d) tuple

let certain_answers_within budget ?max_extra omq d =
  Session.certain_answers_within budget (open_session ?max_extra omq d)

let is_consistent_within budget ?max_extra omq d =
  Session.is_consistent_within budget (open_session ?max_extra omq d)

(* Drop every process-wide cache the answering stack keeps: the engine's
   session registry and the grounder's cross-session circuit memo. For
   benchmarking cold paths and bounding long-process memory. *)
let clear_caches () =
  Reasoner.Engine.clear_cache ();
  Reasoner.Ground.clear_memo ()

(* ------------------------------------------------------------------ *)
(* Analyses                                                             *)
(* ------------------------------------------------------------------ *)

(* Figure 1 classification of the ontology's minimal fragment. *)
let classify omq = Classify.Landscape.of_ontology omq.ontology

(* The minimal uGF/uGC2 fragment descriptor, if any. *)
let fragment omq = Gf.Fragment.of_ontology omq.ontology

(* Materializability of the ontology on a concrete instance. *)
let materializable_on ?budget ?max_model_extra ?max_extra omq d =
  Material.Materializability.materializable_on ?budget ?max_model_extra
    ?max_extra omq.ontology d

(* The Theorem 5 type-based evaluation (binary signatures). The
   procedure's applicability failures surface as typed errors, not
   exceptions. *)
let rewritten_certain ?budget ?extra omq d tuple =
  match omq.query.Query.Ucq.disjuncts with
  | [ cq ] -> (
      match Rewriting.Typeprog.entails ?budget ?extra omq.ontology cq d tuple with
      | b -> Ok b
      | exception Rewriting.Typeprog.Not_two_variable msg ->
          Error (`Not_two_variable msg))
  | _ -> Error `Not_single_cq

(* Theorem 13: decide PTIME query evaluation by bouquet
   materializability. *)
let decide_ptime ?budget ?seed ?max_outdegree ?samples omq =
  Classify.Decide.decide ?budget ?seed ?max_outdegree ?samples omq.ontology

let try_decide_ptime budget ?seed ?max_outdegree ?samples omq =
  Classify.Decide.try_decide budget ?seed ?max_outdegree ?samples omq.ontology

let pp ppf omq =
  Fmt.pf ppf "@[<v>ontology:@ %a@ query:@ %a@]" Logic.Ontology.pp omq.ontology
    Query.Ucq.pp omq.query
