module ESet = Structure.Element.Set
module EMap = Structure.Element.Map

(* Empirical unravelling tolerance (Definition 3): O is unravelling
   tolerant if O,D |= q(ā) coincides with O,Du |= q(b̄), where b̄ is the
   copy of ā in the root bag of the unravelling at the maximal guarded
   set of ā. The paper's Du is infinite; we use a depth-bounded prefix,
   so a reported violation is exact in the direction
   "certain on D but refuted on (a prefix of) Du". *)

type violation = {
  on_d : bool;
  on_du : bool;
  depth : int;
}

type verdict =
  | Tolerant_on  (** both sides agree at the tested depth *)
  | Violation of violation
  | Not_guarded of string
      (** the tuple is not inside a guarded set (or its root bag is
          missing), so Definition 3 does not apply *)

let check ?budget ?(variant = Structure.Unravel.UGF) ?(depth = 3)
    ?(max_extra = 2) o d (q : Query.Cq.t) tuple =
  Obs.Trace.with_span
    ~attrs:[ ("depth", Obs.Trace.Int depth) ]
    "material.tolerance_check"
  @@ fun () ->
  let g = ESet.of_list tuple in
  (* Definition 3 takes ā maximally guarded; we accept any tuple inside
     a maximal guarded set and evaluate at its copy in that root bag. *)
  let host =
    List.find_opt
      (fun h -> ESet.subset g h)
      (Structure.Guarded.maximal_guarded_sets d)
  in
  match host with
  | None -> Not_guarded "tuple not inside a guarded set"
  | Some host -> (
      let u = Structure.Unravel.unravel ~variant ~depth d in
      match Structure.Unravel.root_copy u host with
      | None -> Not_guarded "no root bag for the guarded set"
      | Some copies ->
          let tuple' = List.map (fun e -> EMap.find e copies) tuple in
          let on_d = Reasoner.Bounded.certain_cq ?budget ~max_extra o d q tuple in
          let on_du =
            Reasoner.Bounded.certain_cq ?budget ~max_extra o
              (Structure.Unravel.instance u) q tuple'
          in
          if Bool.equal on_d on_du then Tolerant_on
          else Violation { on_d; on_du; depth })

(* Convenience: test tolerance of every element of [d] against a unary
   rAQ. Non-guarded elements are skipped (they carry no verdict). *)
let check_unary ?budget ?variant ?depth ?max_extra o d q =
  List.filter_map
    (fun e ->
      match check ?budget ?variant ?depth ?max_extra o d q [ e ] with
      | Tolerant_on | Not_guarded _ -> None
      | Violation v -> Some (e, v))
    (Structure.Instance.domain_list d)
