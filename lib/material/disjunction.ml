(* The disjunction property (Theorem 17): O has the Q-disjunction
   property iff whenever O,D |= q1(ā1) ∨ … ∨ qn(ān), some disjunct is
   already certain. Failure witnesses non-materializability. *)

type pointed = Query.Cq.t * Structure.Element.t list

type witness = {
  instance : Structure.Instance.t;
  pointed : pointed list;
}

let pp_witness ppf w =
  Fmt.pf ppf "@[<v>instance %a@ entails the disjunction of:@ %a@]"
    Structure.Instance.pp w.instance
    Fmt.(
      list ~sep:cut (fun ppf (q, t) ->
          Fmt.pf ppf "  %a @@ (%a)" Query.Cq.pp q
            (list ~sep:comma Structure.Element.pp)
            t))
    w.pointed

(* Check one candidate disjunction: [`Fails w] means the disjunction is
   certain but no disjunct is — the disjunction property fails. *)
let check ?budget ?(max_extra = 2) o d pointed =
  Obs.Trace.with_span
    ~attrs:[ ("disjuncts", Obs.Trace.Int (List.length pointed)) ]
    "material.disjunction_check"
  @@ fun () ->
  if not (Reasoner.Bounded.certain_disjunction ?budget ~max_extra o d pointed)
  then `Disjunction_not_certain
  else
    match
      List.find_opt
        (fun (q, t) -> Reasoner.Bounded.certain_cq ?budget ~max_extra o d q t)
        pointed
    with
    | Some _ -> `Holds
    | None -> `Fails { instance = d; pointed }

(* Search a list of candidate (instance, disjunction) pairs for a
   violation. *)
let find_violation ?budget ?max_extra o candidates =
  List.find_map
    (fun (d, pointed) ->
      if not (Reasoner.Bounded.is_consistent ?budget ?max_extra o d) then None
      else
        match check ?budget ?max_extra o d pointed with
        | `Fails w -> Some w
        | `Holds | `Disjunction_not_certain -> None)
    candidates

(* Default candidate disjunctions over an instance: for every element,
   the unary atoms of the ontology's signature, pairwise. *)
let default_candidates o d =
  let unary =
    List.filter_map
      (fun (r, a) -> if a = 1 then Some r else None)
      (Logic.Signature.to_list (Logic.Ontology.signature o))
  in
  let atoms_for e =
    List.map (fun r -> (Query.Raq.unary ~name:("q_" ^ r) r, [ e ])) unary
  in
  let elements = Structure.Instance.domain_list d in
  (* pairwise disjunctions per element, plus per-relation disjunctions
     across all elements *)
  let per_element =
    List.concat_map
      (fun e ->
        let atoms = atoms_for e in
        List.concat_map
          (fun (q1, t1) ->
            List.filter_map
              (fun (q2, t2) ->
                if Query.Cq.compare q1 q2 < 0 then
                  Some (d, [ (q1, t1); (q2, t2) ])
                else None)
              atoms)
          atoms)
      elements
  in
  let across =
    List.map
      (fun r ->
        let q = Query.Raq.unary ~name:("q_" ^ r) r in
        (d, List.map (fun e -> (q, [ e ])) elements))
      unary
  in
  per_element @ across
