(** Empirical unravelling tolerance (Definition 3), on depth-bounded
    prefixes of the uGF/uGC2 unravellings. *)

type violation = {
  on_d : bool;
  on_du : bool;
  depth : int;
}

type verdict =
  | Tolerant_on
  | Violation of violation
  | Not_guarded of string
      (** inapplicable input — the tuple is not inside a guarded set —
          reported as a typed verdict rather than an exception *)

(** Compare O,D ⊨ q(ā) with O,D{^u} ⊨ q(b̄) at the copy b̄ of ā in the
    root bag of a maximal guarded set containing ā. Returns
    [Not_guarded _] when ā is not inside any guarded set. *)
val check :
  ?budget:Reasoner.Budget.t ->
  ?variant:Structure.Unravel.variant ->
  ?depth:int ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Cq.t ->
  Structure.Element.t list ->
  verdict

(** Violations over all elements, for a unary query; non-guarded
    elements are skipped. *)
val check_unary :
  ?budget:Reasoner.Budget.t ->
  ?variant:Structure.Unravel.variant ->
  ?depth:int ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Cq.t ->
  (Structure.Element.t * violation) list
