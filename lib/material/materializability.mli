(** Bounded materializability testing (Definition 2): search for a model
    of O and D whose answers to a pool of pointed queries coincide with
    the certain answers. Bounds: extra domain elements in the
    materialization ([max_model_extra]), countermodel budget
    ([max_extra]), model enumeration limit, and the query pool.

    Certainty labels are computed on the incremental {!Reasoner.Engine}:
    one grounding per countermodel bound shared across the whole pool. *)

type pointed = Query.Cq.t * Structure.Element.t list

(** Atomic and one-step existential queries over sig(O), pointed at the
    elements of [d]. *)
val default_pool :
  Logic.Ontology.t -> Structure.Instance.t -> pointed list

(** Is [b] a materialization of O and [d] w.r.t. the pool? All entry
    points accept a [?budget] threaded into the underlying engine and
    bounded searches; a trip raises {!Reasoner.Budget.Exhausted}. *)
val is_materialization_for :
  ?budget:Reasoner.Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  pointed list ->
  Structure.Instance.t ->
  bool

(** Search the bounded models for a materialization. *)
val find_materialization :
  ?budget:Reasoner.Budget.t ->
  ?max_model_extra:int ->
  ?max_extra:int ->
  ?limit:int ->
  ?pool:pointed list ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Structure.Instance.t option

(** Inconsistent instances count as trivially materializable. *)
val materializable_on :
  ?budget:Reasoner.Budget.t ->
  ?max_model_extra:int ->
  ?max_extra:int ->
  ?limit:int ->
  ?pool:pointed list ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  bool
