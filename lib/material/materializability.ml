(* Bounded materializability testing (Definition 2): search for a model
   B of O and D whose answers to a pool of pointed queries coincide with
   the certain answers. Completeness is relative to the domain bound and
   the query pool; the pools below cover the paper's examples. *)

type pointed = Query.Cq.t * Structure.Element.t list

(* A default pool: atomic unary and binary queries plus one-step
   existential neighbourhood queries over the ontology's signature,
   pointed at all (pairs of) elements of D. *)
let default_pool o d =
  let sig_ = Logic.Ontology.signature o in
  let elements = Structure.Instance.domain_list d in
  let unary =
    List.filter_map (fun (r, a) -> if a = 1 then Some r else None)
      (Logic.Signature.to_list sig_)
  and binary =
    List.filter_map (fun (r, a) -> if a = 2 then Some r else None)
      (Logic.Signature.to_list sig_)
  in
  let unary_queries =
    List.concat_map
      (fun r ->
        let q = Query.Raq.unary ~name:("q_" ^ r) r in
        List.map (fun e -> (q, [ e ])) elements)
      unary
  in
  let binary_queries =
    List.concat_map
      (fun r ->
        let q = Query.Raq.atom_query ~name:("q_" ^ r) r 2 in
        List.concat_map
          (fun e1 -> List.map (fun e2 -> (q, [ e1; e2 ])) elements)
          elements)
      binary
  in
  let exists_queries =
    List.concat_map
      (fun r ->
        let plain =
          Query.Cq.make ~name:("qe_" ^ r) ~answer:[ "x" ]
            [ (r, [ Logic.Term.Var "x"; Logic.Term.Var "y" ]) ]
        in
        let with_a =
          List.map
            (fun a ->
              Query.Cq.make
                ~name:("qe_" ^ r ^ "_" ^ a)
                ~answer:[ "x" ]
                [
                  (r, [ Logic.Term.Var "x"; Logic.Term.Var "y" ]);
                  (a, [ Logic.Term.Var "y" ]);
                ])
            unary
        in
        List.concat_map
          (fun q -> List.map (fun e -> (q, [ e ])) elements)
          (plain :: with_a))
      binary
  in
  unary_queries @ binary_queries @ exists_queries

(* The certain answers of the pool, computed once — on the incremental
   engine: one grounding per countermodel bound, shared by every pointed
   query in the pool (the pool is quadratic in dom(D), so this is the
   hot path of the materializability search). *)
let pool_certainty ?budget ?(max_extra = 2) o d pool =
  Obs.Trace.with_span
    ~attrs:[ ("pool", Obs.Trace.Int (List.length pool)) ]
    "material.pool_certainty"
  @@ fun () ->
  let pool_signature =
    List.fold_left
      (fun s (q, _) -> Logic.Signature.union s (Query.Cq.signature q))
      Logic.Signature.empty pool
  in
  let engines =
    List.init (max_extra + 1) (fun k ->
        Reasoner.Engine.session ?budget ~extra_signature:pool_signature
          ~extra:k o d)
  in
  List.map
    (fun (q, tuple) ->
      let certain =
        List.for_all
          (fun eng -> Reasoner.Engine.certain_cq ?budget eng q tuple)
          engines
      in
      (q, tuple, certain))
    pool

let answers_like_certainty certainty b =
  List.for_all
    (fun (q, tuple, certain) -> Bool.equal (Query.Cq.holds b q tuple) certain)
    certainty

(* Does B answer the pool exactly like the certain answers? *)
let is_materialization_for ?budget ?max_extra o d pool b =
  Structure.Instance.subset d b
  && Structure.Modelcheck.is_model b (Logic.Ontology.all_sentences o)
  && answers_like_certainty (pool_certainty ?budget ?max_extra o d pool) b

(* Search for a materialization over the bounded domain. The certain
   answers of the pool are computed once; then a single SAT problem per
   domain size asks for a model of O and D that satisfies exactly the
   certain pool queries (certain ⇒ assert q, non-certain ⇒ assert ¬q).
   [max_model_extra] bounds the materialization's fresh nulls,
   [max_extra] the countermodel search behind the certainty labels. *)
let find_materialization ?budget ?(max_model_extra = 2) ?(max_extra = 2) ?limit
    ?pool o d =
  Obs.Trace.with_span "material.find_materialization" @@ fun () ->
  ignore limit;
  let pool = match pool with Some p -> p | None -> default_pool o d in
  let certainty = pool_certainty ?budget ~max_extra o d pool in
  let rec over_extras k =
    if k > max_model_extra then None
    else
      match Reasoner.Bounded.pool_exact_model ?budget ~extra:k o d certainty with
      | Some b -> Some b
      | None -> over_extras (k + 1)
  in
  over_extras 0

(* Materializable for an instance: consistent implies a materialization
   exists (within the bounds). *)
let materializable_on ?budget ?max_model_extra ?max_extra ?limit ?pool o d =
  Obs.Trace.with_span "material.materializable_on" @@ fun () ->
  let r =
    (not (Reasoner.Engine.is_consistent_upto ?budget ?max_extra o d))
    || Option.is_some
         (find_materialization ?budget ?max_model_extra ?max_extra ?limit ?pool
            o d)
  in
  if Obs.Trace.enabled () then
    Obs.Trace.add_attr "materializable" (Obs.Trace.Bool r);
  r
