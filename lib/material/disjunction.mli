(** The disjunction property (Theorem 17): an ontology is materializable
    iff whenever a disjunction of pointed CQs is certain, some disjunct
    already is. A failure is a witness of non-materializability. *)

type pointed = Query.Cq.t * Structure.Element.t list

type witness = {
  instance : Structure.Instance.t;
  pointed : pointed list;
}

val pp_witness : witness Fmt.t

(** Check one candidate disjunction on an instance. A [?budget] is
    threaded into the bounded searches; a trip raises
    {!Reasoner.Budget.Exhausted}. *)
val check :
  ?budget:Reasoner.Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  pointed list ->
  [ `Holds | `Fails of witness | `Disjunction_not_certain ]

(** First violation among candidate (instance, disjunction) pairs;
    inconsistent instances are skipped. *)
val find_violation :
  ?budget:Reasoner.Budget.t ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  (Structure.Instance.t * pointed list) list ->
  witness option

(** Pairwise unary-atom disjunctions over the elements of [d]. *)
val default_candidates :
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (Structure.Instance.t * pointed list) list
