(** Bottom-up Datalog≠ evaluation. [evaluate] is semi-naive: after the
    first round, rules only fire through matches touching the previous
    round's delta. [evaluate_naive] is the reference implementation used
    in tests. *)

(** All derivable facts (EDB ∪ IDB fixpoint). *)
val evaluate : Program.t -> Structure.Instance.t -> Structure.Instance.t

(** Tuples of the goal relation, sorted. *)
val answers :
  Program.t -> Structure.Instance.t -> Structure.Element.t list list

(** D ⊨ Π(ā). *)
val holds :
  Program.t -> Structure.Instance.t -> Structure.Element.t list -> bool

val evaluate_naive : Program.t -> Structure.Instance.t -> Structure.Instance.t

(** {1 Incremental maintenance}

    [prepare] materialises the fixpoint once; [insert]/[retract] keep it
    consistent under EDB updates without re-evaluating from scratch.
    Nonrecursive programs use exact derivation counting for deletion;
    recursive programs fall back to DRed (overdelete, then rederive).
    Delta-rule bodies go through the same planner-backed
    [fire_rule ~pin] machinery as [evaluate]. *)

(** Deletion strategy in force for a state. *)
type strategy = Counting | Dred

(** [recursive p] holds iff some intensional relation of [p] depends on
    itself through positive body atoms. *)
val recursive : Program.t -> bool

type state

(** Materialise the fixpoint of [p] over an EDB. *)
val prepare : Program.t -> Structure.Instance.t -> state

(** [insert st facts] adds EDB facts and extends the fixpoint with their
    consequences. The flag is true iff the goal answers changed. *)
val insert : state -> Structure.Instance.fact list -> state * bool

(** [retract st facts] removes EDB facts and every derived fact that
    loses all support. Facts not in the EDB are ignored. The flag is
    true iff the goal answers changed. *)
val retract : state -> Structure.Instance.fact list -> state * bool

(** Current extensional facts. *)
val state_edb : state -> Structure.Instance.t

(** Current fixpoint (must equal [evaluate p (state_edb st)]). *)
val state_derived : state -> Structure.Instance.t

(** Sorted goal tuples of the current fixpoint. *)
val state_answers : state -> Structure.Element.t list list

val state_strategy : state -> strategy
