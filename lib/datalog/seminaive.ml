module SSet = Logic.Names.SSet
module SMap = Logic.Names.SMap
module EMap = Structure.Element.Map

(* Semi-naive bottom-up evaluation: in every round after the first, a
   rule only fires through matches that use at least one fact derived in
   the previous round (the delta), found by pinning one positive body
   atom to each delta fact in turn. *)

let body_vars body =
  List.fold_left
    (fun acc a -> SSet.union acc (Program.atom_vars a))
    SSet.empty
    (Program.positive_atoms body)

(* Evaluate all bindings of [body]'s variables against [inst]; when
   [pin = Some (atom, fact)] the given atom is matched against exactly
   that fact. Returns bindings as maps var -> element. *)
let body_bindings_naive inst body ~pin atoms =
  let q = Query.Cq.make ~name:"body" ~answer:[] atoms in
  let db = Query.Cq.canonical_db q in
  (* Extend a fixing consistently; [None] when the pin clashes. *)
  let extend_fixing fixed ts args =
    List.fold_left2
      (fun acc t target ->
        match acc with
        | None -> None
        | Some m -> (
            let key = Query.Cq.term_element t in
            match EMap.find_opt key m with
            | Some existing when not (Structure.Element.equal existing target)
              ->
                None
            | _ -> Some (EMap.add key target m)))
      (Some fixed) ts args
  in
  let fixed =
    match pin with
    | None -> Some (Query.Cq.constant_fixing q)
    | Some ((_, ts), (fact : Structure.Instance.fact)) ->
        if List.length ts <> List.length fact.args then None
        else extend_fixing (Query.Cq.constant_fixing q) ts fact.args
  in
  match fixed with
  | None -> []
  | Some fixed ->
      Structure.Homomorphism.fold ~fixed ~source:db ~target:inst
        (fun m acc ->
          let bind =
            SSet.fold
              (fun v b -> SMap.add v (EMap.find (Query.Cq.var_element v) m) b)
              (body_vars body) SMap.empty
          in
          (false, bind :: acc))
        []

(* Planner-backed variant: the positive atoms become one join evaluated
   over the instance's [Relindex]; the pin turns into pre-bound
   variables (and constant checks) on the pinned atom. *)
let body_bindings_eval inst body ~pin atoms =
  let vars = body_vars body in
  let _, var_ix =
    SSet.fold (fun v (i, m) -> (i + 1, SMap.add v i m)) vars (0, SMap.empty)
  in
  let eatoms =
    List.map
      (fun (r, ts) ->
        Structure.Eval.atom r
          (List.map
             (function
               | Logic.Term.Var v -> Structure.Eval.Var (SMap.find v var_ix)
               | Logic.Term.Const c ->
                   Structure.Eval.Const (Structure.Element.Const c))
             ts))
      atoms
  in
  let bindings =
    match pin with
    | None -> Some []
    | Some ((_, ts), (fact : Structure.Instance.fact)) ->
        if List.length ts <> List.length fact.args then None
        else
          List.fold_left2
            (fun acc t target ->
              match acc with
              | None -> None
              | Some bs -> (
                  match t with
                  | Logic.Term.Const c ->
                      if
                        Structure.Element.equal (Structure.Element.Const c)
                          target
                      then Some bs
                      else None
                  | Logic.Term.Var v -> (
                      let ix = SMap.find v var_ix in
                      match List.assoc_opt ix bs with
                      | Some existing
                        when not (Structure.Element.equal existing target) ->
                          None
                      | Some _ -> Some bs
                      | None -> Some ((ix, target) :: bs))))
            (Some []) ts fact.args
  in
  match bindings with
  | None -> []
  | Some bindings ->
      let idx = Structure.Relindex.of_instance inst in
      let plan =
        Structure.Eval.make_plan idx ~bound:(List.map fst bindings) eatoms
      in
      Structure.Eval.fold idx plan ~bindings
        (fun sol acc -> (false, SMap.map (fun i -> sol.(i)) var_ix :: acc))
        []

let body_bindings inst body ~pin =
  let atoms = Program.positive_atoms body in
  if Structure.Eval.planner_enabled () then
    body_bindings_eval inst body ~pin atoms
  else body_bindings_naive inst body ~pin atoms

let neq_holds bind (s, t) =
  let value = function
    | Logic.Term.Const c -> Structure.Element.Const c
    | Logic.Term.Var v -> SMap.find v bind
  in
  not (Structure.Element.equal (value s) (value t))

let instantiate_head bind (r, ts) =
  Structure.Instance.fact r
    (List.map
       (function
         | Logic.Term.Const c -> Structure.Element.Const c
         | Logic.Term.Var v -> SMap.find v bind)
       ts)

let fire_rule inst (rule : Program.rule) ~pin =
  List.filter_map
    (fun bind ->
      let neqs_ok =
        List.for_all
          (function
            | Program.Neq (s, t) -> neq_holds bind (s, t)
            | Program.Pos _ -> true)
          rule.body
      in
      if neqs_ok then Some (instantiate_head bind rule.head) else None)
    (body_bindings inst rule.body ~pin)

(* Full fixpoint. *)
let evaluate (p : Program.t) edb =
  (* Round 0: naive evaluation of every rule. *)
  let new_facts inst facts =
    List.filter (fun f -> not (Structure.Instance.mem f inst)) facts
  in
  let initial =
    List.concat_map (fun r -> fire_rule edb r ~pin:None) p.rules
  in
  let rec loop inst delta =
    if delta = [] then inst
    else begin
      let inst' =
        List.fold_left (fun i f -> Structure.Instance.add_fact f i) inst delta
      in
      let derived =
        List.concat_map
          (fun (r : Program.rule) ->
            List.concat_map
              (fun atom ->
                List.concat_map
                  (fun (d : Structure.Instance.fact) ->
                    if d.rel = fst atom then
                      fire_rule inst' r ~pin:(Some (atom, d))
                    else [])
                  delta)
              (Program.positive_atoms r.body))
          p.rules
      in
      let fresh =
        List.sort_uniq Structure.Instance.compare_fact (new_facts inst' derived)
      in
      loop inst' fresh
    end
  in
  loop edb (List.sort_uniq Structure.Instance.compare_fact (new_facts edb initial))

(* Goal answers D |= Π(ā). *)
let answers p edb =
  let result = evaluate p edb in
  Structure.Instance.tuples p.Program.goal result
  |> List.sort_uniq (List.compare Structure.Element.compare)

let holds p edb tuple =
  let result = evaluate p edb in
  Structure.Instance.mem (Structure.Instance.fact p.Program.goal tuple) result

(* ------------------------------------------------------------------ *)
(* Incremental maintenance: keep the fixpoint alive across insertions
   and retractions instead of recomputing it.

   A "derivation" is a pair (rule, binding) whose instantiated body holds
   in the fixpoint; a fact's support is its number of derivations plus
   one if it is an EDB fact. For nonrecursive programs we maintain exact
   derivation counts (counting algorithm): deletion walks support down
   and removes facts whose count reaches zero. Counting is unsound under
   recursion (cyclic derivations keep each other's counts positive), so
   recursive programs fall back to DRed: overdelete everything reachable
   from the deleted facts, then rederive what the surviving facts still
   support. Insertion needs no counts beyond the bookkeeping: delta
   rounds reuse [fire_rule ~pin], so the planner serves delta-rule
   bodies exactly as it serves [evaluate]. *)

module FMap = Map.Make (struct
  type t = Structure.Instance.fact

  let compare = Structure.Instance.compare_fact
end)

type strategy = Counting | Dred

(* [rule_deps p] is the positive dependency graph head-rel -> body IDB
   rels; the program is recursive iff some IDB relation can reach
   itself. *)
let recursive (p : Program.t) =
  let idb = Program.intensional p in
  let deps =
    List.fold_left
      (fun m (r : Program.rule) ->
        let body_idb =
          List.filter_map
            (fun (b, _) -> if SSet.mem b idb then Some b else None)
            (Program.positive_atoms r.body)
        in
        SMap.update (fst r.head)
          (function None -> Some body_idb | Some old -> Some (body_idb @ old))
          m)
      SMap.empty p.rules
  in
  let succs r = Option.value (SMap.find_opt r deps) ~default:[] in
  let rec reach seen r =
    if SSet.mem r seen then seen
    else List.fold_left reach (SSet.add r seen) (succs r)
  in
  SSet.exists
    (fun r -> List.exists (fun s -> SSet.mem r (reach SSet.empty s)) (succs r))
    idb

type state = {
  program : Program.t;
  edb : Structure.Instance.t;
  derived : Structure.Instance.t;
  counts : int FMap.t; (* derivation counts; empty under Dred *)
  strategy : strategy;
}

let state_edb st = st.edb
let state_derived st = st.derived
let state_strategy st = st.strategy

let state_answers st =
  Structure.Instance.tuples st.program.Program.goal st.derived
  |> List.sort_uniq (List.compare Structure.Element.compare)

(* Distinct (rule, binding) pairs: the body facts a binding uses are a
   function of the binding, so each derivation is keyed by the rule's
   index plus the sorted variable assignment. *)
module DSet = Set.Make (struct
  type t = int * (string * Structure.Element.t) list

  let compare (i, a) (j, b) =
    let c = Int.compare i j in
    if c <> 0 then c
    else
      List.compare
        (fun (v, e) (w, f) ->
          let c = String.compare v w in
          if c <> 0 then c else Structure.Element.compare e f)
        a b
end)

let derivation_key rule_ix bind = (rule_ix, SMap.bindings bind)

(* Bindings of [rule] whose inequalities hold, with instantiated head. *)
let fire_bindings inst (rule : Program.rule) ~pin =
  List.filter_map
    (fun bind ->
      let neqs_ok =
        List.for_all
          (function
            | Program.Neq (s, t) -> neq_holds bind (s, t)
            | Program.Pos _ -> true)
          rule.body
      in
      if neqs_ok then Some (bind, instantiate_head bind rule.head) else None)
    (body_bindings inst rule.body ~pin)

(* All derivations of one round that use at least one [delta] fact,
   deduplicated: a binding matching several pins is one derivation.
   Bodies are evaluated against [inst], which must contain the delta. *)
let delta_derivations (p : Program.t) inst delta =
  let _, derivs =
    List.fold_left
      (fun (rule_ix, acc) (r : Program.rule) ->
        let acc =
          List.fold_left
            (fun acc atom ->
              List.fold_left
                (fun acc (d : Structure.Instance.fact) ->
                  if d.rel = fst atom then
                    List.fold_left
                      (fun (seen, heads) (bind, head) ->
                        let key = derivation_key rule_ix bind in
                        if DSet.mem key seen then (seen, heads)
                        else (DSet.add key seen, head :: heads))
                      acc
                      (fire_bindings inst r ~pin:(Some (atom, d)))
                  else acc)
                acc delta)
            acc
            (Program.positive_atoms r.body)
        in
        (rule_ix + 1, acc))
      (0, (DSet.empty, []))
      p.rules
  in
  snd derivs

let bump n f counts =
  FMap.update f
    (function
      | None -> if n > 0 then Some n else None
      | Some c -> if c + n <= 0 then None else Some (c + n))
    counts

let count_of f counts = Option.value (FMap.find_opt f counts) ~default:0

(* Seed the planner's per-domain index cache for an instance obtained
   from [from] by a small change, so the next round's joins share the
   interned tables instead of rebuilding O(|instance|) state — without
   this, every maintenance round would pay a full index build and the
   delta path would not beat re-evaluation. Purely an optimisation: on
   any miss ([from] not cached, or an added fact over a new element) the
   next [of_instance] just builds from scratch. *)
let reindex ~from ~added ~removed inst =
  if Structure.Eval.planner_enabled () && not (inst == from) then
    match Structure.Relindex.cached from with
    | Some idx -> ignore (Structure.Relindex.update idx ~added ~removed inst)
    | None -> ()

(* Insertion rounds shared by [prepare] (seeded with the whole EDB) and
   [insert]: fire delta rules, record each new derivation (bumping
   counts under Counting), and iterate on the genuinely new facts. *)
let insert_rounds ~count st derived counts delta =
  let goal = st.program.Program.goal in
  let rec loop derived counts delta changed =
    match delta with
    | [] -> (derived, counts, changed)
    | _ ->
        let heads = delta_derivations st.program derived delta in
        let counts =
          if count then List.fold_left (fun c h -> bump 1 h c) counts heads
          else counts
        in
        let fresh =
          List.sort_uniq Structure.Instance.compare_fact
            (List.filter
               (fun f -> not (Structure.Instance.mem f derived))
               heads)
        in
        let derived' =
          List.fold_left (fun i f -> Structure.Instance.add_fact f i) derived
            fresh
        in
        reindex ~from:derived ~added:fresh ~removed:[] derived';
        let changed =
          changed || List.exists (fun (f : Structure.Instance.fact) -> f.rel = goal) fresh
        in
        loop derived' counts fresh changed
  in
  loop derived counts delta false

let prepare (p : Program.t) edb =
  let strategy = if recursive p then Dred else Counting in
  let count = strategy = Counting in
  let st = { program = p; edb; derived = edb; counts = FMap.empty; strategy } in
  (* EDB support. *)
  let counts =
    if count then
      Structure.Instance.FactSet.fold (fun f c -> bump 1 f c)
        (Structure.Instance.fact_set edb)
        FMap.empty
    else FMap.empty
  in
  (* Round 0: every derivation over the EDB, one per (rule, binding) —
     deduplicated with the same key the delta rounds use, so insert-side
     and delete-side multiplicities agree. *)
  let _, _, counts, heads =
    List.fold_left
      (fun (rule_ix, seen, counts, heads) (r : Program.rule) ->
        let seen, counts, heads =
          List.fold_left
            (fun (seen, counts, heads) (bind, h) ->
              let key = derivation_key rule_ix bind in
              if DSet.mem key seen then (seen, counts, heads)
              else
                ( DSet.add key seen,
                  (if count then bump 1 h counts else counts),
                  h :: heads ))
            (seen, counts, heads)
            (fire_bindings edb r ~pin:None)
        in
        (rule_ix + 1, seen, counts, heads))
      (0, DSet.empty, counts, []) p.rules
  in
  let fresh =
    List.sort_uniq Structure.Instance.compare_fact
      (List.filter (fun f -> not (Structure.Instance.mem f edb)) heads)
  in
  let derived =
    List.fold_left (fun i f -> Structure.Instance.add_fact f i) edb fresh
  in
  reindex ~from:edb ~added:fresh ~removed:[] derived;
  let derived, counts, _ =
    insert_rounds ~count st derived counts fresh
  in
  { st with derived; counts }

let insert st facts =
  let facts = List.sort_uniq Structure.Instance.compare_fact facts in
  let fresh_edb =
    List.filter (fun f -> not (Structure.Instance.mem f st.edb)) facts
  in
  if fresh_edb = [] then (st, false)
  else
    let count = st.strategy = Counting in
    let goal = st.program.Program.goal in
    let edb =
      List.fold_left (fun i f -> Structure.Instance.add_fact f i) st.edb
        fresh_edb
    in
    let counts =
      if count then List.fold_left (fun c f -> bump 1 f c) st.counts fresh_edb
      else st.counts
    in
    (* Facts genuinely new to the fixpoint seed the delta rounds; facts
       that were already derived only gained EDB support. *)
    let delta =
      List.filter (fun f -> not (Structure.Instance.mem f st.derived)) fresh_edb
    in
    let derived =
      List.fold_left (fun i f -> Structure.Instance.add_fact f i) st.derived
        delta
    in
    reindex ~from:st.derived ~added:delta ~removed:[] derived;
    let changed0 =
      List.exists (fun (f : Structure.Instance.fact) -> f.rel = goal) delta
    in
    let derived, counts, changed =
      insert_rounds ~count { st with edb } derived counts delta
    in
    ({ st with edb; derived; counts }, changed0 || changed)

(* Counting deletion (exact for nonrecursive programs): walk derivation
   support downwards round by round. Each round's pins are evaluated
   against the instance *before* that round's facts are removed, so a
   derivation destroyed by facts from several rounds is decremented
   exactly once — in the earliest round, after which one of its body
   facts is already gone. *)
let retract_counting st present =
  let goal = st.program.Program.goal in
  let counts =
    List.fold_left (fun c f -> bump (-1) f c) st.counts present
  in
  let dead0 = List.filter (fun f -> count_of f counts = 0) present in
  let rec loop pre counts dead removed =
    match dead with
    | [] -> (pre, counts, removed)
    | _ ->
        let heads = delta_derivations st.program pre dead in
        let counts = List.fold_left (fun c h -> bump (-1) h c) counts heads in
        let next = List.fold_left (fun i f -> Structure.Instance.remove_fact f i) pre dead in
        reindex ~from:pre ~added:[] ~removed:dead next;
        let dead' =
          List.sort_uniq Structure.Instance.compare_fact
            (List.filter
               (fun f ->
                 count_of f counts = 0 && Structure.Instance.mem f next)
               heads)
        in
        loop next counts dead' (List.rev_append dead removed)
  in
  let derived, counts, removed = loop st.derived counts dead0 [] in
  let edb = List.fold_left (fun i f -> Structure.Instance.remove_fact f i) st.edb present in
  let changed =
    List.exists (fun (f : Structure.Instance.fact) -> f.rel = goal) removed
  in
  ({ st with edb; derived; counts }, changed)

(* DRed: overdelete everything whose support touches a deleted fact
   (EDB facts keep base support and are never overdeleted), then
   rederive from what survives. *)
let retract_dred st present =
  let goal = st.program.Program.goal in
  let edb =
    List.fold_left (fun i f -> Structure.Instance.remove_fact f i) st.edb
      present
  in
  let rec overdelete pre dead removed =
    match dead with
    | [] -> (pre, removed)
    | _ ->
        let heads = delta_derivations st.program pre dead in
        let next =
          List.fold_left (fun i f -> Structure.Instance.remove_fact f i) pre
            dead
        in
        reindex ~from:pre ~added:[] ~removed:dead next;
        let removed =
          List.fold_left (fun s f -> Structure.Instance.FactSet.add f s)
            removed dead
        in
        let dead' =
          List.sort_uniq Structure.Instance.compare_fact
            (List.filter
               (fun f ->
                 Structure.Instance.mem f next
                 && (not (Structure.Instance.mem f edb))
                 && not (Structure.Instance.FactSet.mem f removed))
               heads)
        in
        overdelete next dead' removed
  in
  let reduced, removed =
    overdelete st.derived present Structure.Instance.FactSet.empty
  in
  (* Rederive: one naive round over the survivors restores overdeleted
     facts that still have a derivation; the usual delta rounds finish
     the fixpoint. *)
  let seeds =
    List.concat_map
      (fun (r : Program.rule) ->
        List.filter
          (fun f ->
            Structure.Instance.FactSet.mem f removed
            && not (Structure.Instance.mem f reduced))
          (fire_rule reduced r ~pin:None))
      st.program.rules
    |> List.sort_uniq Structure.Instance.compare_fact
  in
  let rederived =
    List.fold_left (fun i f -> Structure.Instance.add_fact f i) reduced seeds
  in
  reindex ~from:reduced ~added:seeds ~removed:[] rederived;
  let derived, _, _ =
    insert_rounds ~count:false { st with edb } rederived st.counts seeds
  in
  let changed =
    Structure.Instance.FactSet.exists
      (fun f -> f.rel = goal && not (Structure.Instance.mem f derived))
      removed
  in
  ({ st with edb; derived }, changed)

let retract st facts =
  let facts = List.sort_uniq Structure.Instance.compare_fact facts in
  let present = List.filter (fun f -> Structure.Instance.mem f st.edb) facts in
  if present = [] then (st, false)
  else
    match st.strategy with
    | Counting -> retract_counting st present
    | Dred -> retract_dred st present

(* Reference naive evaluation (for testing). *)
let evaluate_naive (p : Program.t) edb =
  let step inst =
    List.fold_left
      (fun i (r : Program.rule) ->
        List.fold_left
          (fun i f -> Structure.Instance.add_fact f i)
          i
          (fire_rule inst r ~pin:None))
      inst p.rules
  in
  let rec loop inst =
    let inst' = step inst in
    if Structure.Instance.equal inst' inst then inst else loop inst'
  in
  loop edb
