module SSet = Logic.Names.SSet
module SMap = Logic.Names.SMap
module EMap = Structure.Element.Map

(* Semi-naive bottom-up evaluation: in every round after the first, a
   rule only fires through matches that use at least one fact derived in
   the previous round (the delta), found by pinning one positive body
   atom to each delta fact in turn. *)

let body_vars body =
  List.fold_left
    (fun acc a -> SSet.union acc (Program.atom_vars a))
    SSet.empty
    (Program.positive_atoms body)

(* Evaluate all bindings of [body]'s variables against [inst]; when
   [pin = Some (atom, fact)] the given atom is matched against exactly
   that fact. Returns bindings as maps var -> element. *)
let body_bindings_naive inst body ~pin atoms =
  let q = Query.Cq.make ~name:"body" ~answer:[] atoms in
  let db = Query.Cq.canonical_db q in
  (* Extend a fixing consistently; [None] when the pin clashes. *)
  let extend_fixing fixed ts args =
    List.fold_left2
      (fun acc t target ->
        match acc with
        | None -> None
        | Some m -> (
            let key = Query.Cq.term_element t in
            match EMap.find_opt key m with
            | Some existing when not (Structure.Element.equal existing target)
              ->
                None
            | _ -> Some (EMap.add key target m)))
      (Some fixed) ts args
  in
  let fixed =
    match pin with
    | None -> Some (Query.Cq.constant_fixing q)
    | Some ((_, ts), (fact : Structure.Instance.fact)) ->
        if List.length ts <> List.length fact.args then None
        else extend_fixing (Query.Cq.constant_fixing q) ts fact.args
  in
  match fixed with
  | None -> []
  | Some fixed ->
      Structure.Homomorphism.fold ~fixed ~source:db ~target:inst
        (fun m acc ->
          let bind =
            SSet.fold
              (fun v b -> SMap.add v (EMap.find (Query.Cq.var_element v) m) b)
              (body_vars body) SMap.empty
          in
          (false, bind :: acc))
        []

(* Planner-backed variant: the positive atoms become one join evaluated
   over the instance's [Relindex]; the pin turns into pre-bound
   variables (and constant checks) on the pinned atom. *)
let body_bindings_eval inst body ~pin atoms =
  let vars = body_vars body in
  let _, var_ix =
    SSet.fold (fun v (i, m) -> (i + 1, SMap.add v i m)) vars (0, SMap.empty)
  in
  let eatoms =
    List.map
      (fun (r, ts) ->
        Structure.Eval.atom r
          (List.map
             (function
               | Logic.Term.Var v -> Structure.Eval.Var (SMap.find v var_ix)
               | Logic.Term.Const c ->
                   Structure.Eval.Const (Structure.Element.Const c))
             ts))
      atoms
  in
  let bindings =
    match pin with
    | None -> Some []
    | Some ((_, ts), (fact : Structure.Instance.fact)) ->
        if List.length ts <> List.length fact.args then None
        else
          List.fold_left2
            (fun acc t target ->
              match acc with
              | None -> None
              | Some bs -> (
                  match t with
                  | Logic.Term.Const c ->
                      if
                        Structure.Element.equal (Structure.Element.Const c)
                          target
                      then Some bs
                      else None
                  | Logic.Term.Var v -> (
                      let ix = SMap.find v var_ix in
                      match List.assoc_opt ix bs with
                      | Some existing
                        when not (Structure.Element.equal existing target) ->
                          None
                      | Some _ -> Some bs
                      | None -> Some ((ix, target) :: bs))))
            (Some []) ts fact.args
  in
  match bindings with
  | None -> []
  | Some bindings ->
      let idx = Structure.Relindex.of_instance inst in
      let plan =
        Structure.Eval.make_plan idx ~bound:(List.map fst bindings) eatoms
      in
      Structure.Eval.fold idx plan ~bindings
        (fun sol acc -> (false, SMap.map (fun i -> sol.(i)) var_ix :: acc))
        []

let body_bindings inst body ~pin =
  let atoms = Program.positive_atoms body in
  if Structure.Eval.planner_enabled () then
    body_bindings_eval inst body ~pin atoms
  else body_bindings_naive inst body ~pin atoms

let neq_holds bind (s, t) =
  let value = function
    | Logic.Term.Const c -> Structure.Element.Const c
    | Logic.Term.Var v -> SMap.find v bind
  in
  not (Structure.Element.equal (value s) (value t))

let instantiate_head bind (r, ts) =
  Structure.Instance.fact r
    (List.map
       (function
         | Logic.Term.Const c -> Structure.Element.Const c
         | Logic.Term.Var v -> SMap.find v bind)
       ts)

let fire_rule inst (rule : Program.rule) ~pin =
  List.filter_map
    (fun bind ->
      let neqs_ok =
        List.for_all
          (function
            | Program.Neq (s, t) -> neq_holds bind (s, t)
            | Program.Pos _ -> true)
          rule.body
      in
      if neqs_ok then Some (instantiate_head bind rule.head) else None)
    (body_bindings inst rule.body ~pin)

(* Full fixpoint. *)
let evaluate (p : Program.t) edb =
  (* Round 0: naive evaluation of every rule. *)
  let new_facts inst facts =
    List.filter (fun f -> not (Structure.Instance.mem f inst)) facts
  in
  let initial =
    List.concat_map (fun r -> fire_rule edb r ~pin:None) p.rules
  in
  let rec loop inst delta =
    if delta = [] then inst
    else begin
      let inst' =
        List.fold_left (fun i f -> Structure.Instance.add_fact f i) inst delta
      in
      let derived =
        List.concat_map
          (fun (r : Program.rule) ->
            List.concat_map
              (fun atom ->
                List.concat_map
                  (fun (d : Structure.Instance.fact) ->
                    if d.rel = fst atom then
                      fire_rule inst' r ~pin:(Some (atom, d))
                    else [])
                  delta)
              (Program.positive_atoms r.body))
          p.rules
      in
      let fresh =
        List.sort_uniq Structure.Instance.compare_fact (new_facts inst' derived)
      in
      loop inst' fresh
    end
  in
  loop edb (List.sort_uniq Structure.Instance.compare_fact (new_facts edb initial))

(* Goal answers D |= Π(ā). *)
let answers p edb =
  let result = evaluate p edb in
  Structure.Instance.tuples p.Program.goal result
  |> List.sort_uniq (List.compare Structure.Element.compare)

let holds p edb tuple =
  let result = evaluate p edb in
  Structure.Instance.mem (Structure.Instance.fact p.Program.goal tuple) result

(* Reference naive evaluation (for testing). *)
let evaluate_naive (p : Program.t) edb =
  let step inst =
    List.fold_left
      (fun i (r : Program.rule) ->
        List.fold_left
          (fun i f -> Structure.Instance.add_fact f i)
          i
          (fire_rule inst r ~pin:None))
      inst p.rules
  in
  let rec loop inst =
    let inst' = step inst in
    if Structure.Instance.equal inst' inst then inst else loop inst'
  in
  loop edb
