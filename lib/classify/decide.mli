(** Deciding PTIME query evaluation (Theorem 13): for uGC{^ −}{_2}(1,=) /
    ALCHIQ-depth-1 ontologies, PTIME evaluation coincides with
    materializability, which reduces to materializability of bouquets of
    outdegree ≤ |O| (Lemma 5). Bouquets are enumerated structurally plus
    random samples; a failure is an exact coNP-hardness witness, success
    is evidence relative to the enumeration and domain bounds. *)

type verdict =
  | Ptime_evidence of int
  | Conp_hard of Structure.Instance.t

(** The structured bouquet family over sig(O). *)
val structured_bouquets :
  Logic.Ontology.t -> max_outdegree:int -> Structure.Instance.t list

(** Bouquets failing at the base bounds are re-checked with
    [verify_extra] more domain elements to filter bound artifacts.
    [on_checked] is called after each fully checked bouquet (progress
    reporting). A [?budget] is checked once per bouquet and threaded
    into the underlying searches; a trip raises
    {!Reasoner.Budget.Exhausted}. *)
val decide :
  ?budget:Reasoner.Budget.t ->
  ?on_checked:(int -> unit) ->
  ?seed:int ->
  ?max_outdegree:int ->
  ?samples:int ->
  ?max_model_extra:int ->
  ?max_extra:int ->
  ?verify_extra:int ->
  Logic.Ontology.t ->
  verdict

(** Typed form of {!decide}: on a trip the partial payload is the
    number of bouquets fully checked before exhaustion. *)
val try_decide :
  Reasoner.Budget.t ->
  ?seed:int ->
  ?max_outdegree:int ->
  ?samples:int ->
  ?max_model_extra:int ->
  ?max_extra:int ->
  ?verify_extra:int ->
  Logic.Ontology.t ->
  (verdict, int) Reasoner.Budget.outcome
