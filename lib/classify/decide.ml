module ESet = Structure.Element.Set

(* Deciding PTIME query evaluation (Theorem 13): for uGC−2(1,=) /
   ALCHIQ-depth-1 ontologies, PTIME evaluation coincides with
   materializability, which by Lemma 5 reduces to materializability of
   bouquets of outdegree ≤ |O|. We enumerate a structured family of
   bouquets plus random samples, and test each with the bounded
   materializability search. A failure is an exact coNP-hardness
   witness; success is evidence up to the enumeration and domain
   bounds. *)

type verdict =
  | Ptime_evidence of int  (** number of bouquets checked *)
  | Conp_hard of Structure.Instance.t  (** a non-materializable bouquet *)

let unary_rels o =
  List.filter_map
    (fun (r, a) -> if a = 1 then Some r else None)
    (Logic.Signature.to_list (Logic.Ontology.signature o))

let binary_rels o =
  List.filter_map
    (fun (r, a) -> if a = 2 then Some r else None)
    (Logic.Signature.to_list (Logic.Ontology.signature o))

let root = Structure.Element.Const "b0"
let child i = Structure.Element.Const (Printf.sprintf "b%d" (i + 1))

(* All subsets of a list (small lists only). *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun ys -> x :: ys) s

(* The structured family: root labelled with one subset of unary
   relations, k children labelled with a common subset, one binary
   relation per orientation. *)
let structured_bouquets o ~max_outdegree =
  let unary = unary_rels o and binary = binary_rels o in
  let unary_subsets =
    List.filteri (fun i _ -> i < 8) (subsets unary)
  in
  List.concat_map
    (fun root_labels ->
      List.concat_map
        (fun child_labels ->
          List.concat_map
            (fun r ->
              List.concat_map
                (fun forward ->
                  List.filter_map
                    (fun k ->
                      if k = 0 && child_labels <> [] then None
                      else
                        let base =
                          List.fold_left
                            (fun i u ->
                              Structure.Instance.add_fact
                                (Structure.Instance.fact u [ root ])
                                i)
                            (Structure.Instance.add_element root
                               Structure.Instance.empty)
                            root_labels
                        in
                        let with_children =
                          List.fold_left
                            (fun i k' ->
                              let c = child k' in
                              let i =
                                Structure.Instance.add_fact
                                  (Structure.Instance.fact r
                                     (if forward then [ root; c ] else [ c; root ]))
                                  i
                              in
                              List.fold_left
                                (fun i u ->
                                  Structure.Instance.add_fact
                                    (Structure.Instance.fact u [ c ])
                                    i)
                                i child_labels)
                            base
                            (List.init k (fun k' -> k'))
                        in
                        Some with_children)
                    (List.init (max_outdegree + 1) (fun k -> k)))
                [ true; false ])
            binary)
        unary_subsets)
    unary_subsets

(* A random bouquet: mixed child labels and edge relations. *)
let random_bouquet o ~rng ~max_outdegree =
  let unary = unary_rels o and binary = binary_rels o in
  let pick_labels i e =
    List.fold_left
      (fun i u ->
        if Random.State.bool rng then
          Structure.Instance.add_fact (Structure.Instance.fact u [ e ]) i
        else i)
      i unary
  in
  let i = pick_labels (Structure.Instance.add_element root Structure.Instance.empty) root in
  let k = Random.State.int rng (max_outdegree + 1) in
  List.fold_left
    (fun i k' ->
      let c = child k' in
      let i = pick_labels i c in
      match binary with
      | [] -> i
      | _ ->
          let r = List.nth binary (Random.State.int rng (List.length binary)) in
          let args = if Random.State.bool rng then [ root; c ] else [ c; root ] in
          Structure.Instance.add_fact (Structure.Instance.fact r args) i)
    i
    (List.init k (fun k' -> k'))

(* Decide PTIME query evaluation by bouquet materializability. A
   bouquet that fails at the base bounds is re-checked at [verify_extra]
   larger bounds before being reported: small domains can make
   disjunctions spuriously certain (witnesses of existential axioms run
   out of fresh elements), and the re-check filters such artifacts. *)
let decide ?(budget = Reasoner.Budget.unlimited) ?(on_checked = ignore)
    ?(seed = 11) ?(max_outdegree = 5) ?(samples = 20) ?(max_model_extra = 1)
    ?(max_extra = 1) ?(verify_extra = 4) o =
  let rng = Random.State.make [| seed |] in
  let candidates =
    structured_bouquets o ~max_outdegree
    @ List.init samples (fun _ -> random_bouquet o ~rng ~max_outdegree)
  in
  (* smallest bouquets first: cheaper and witnesses are minimal *)
  let candidates =
    List.sort
      (fun a b ->
        compare
          (Structure.Instance.domain_size a, Structure.Instance.cardinal a)
          (Structure.Instance.domain_size b, Structure.Instance.cardinal b))
      candidates
  in
  let non_materializable b =
    Reasoner.Engine.is_consistent_upto ~budget ~max_extra o b
    && (not
          (Material.Materializability.materializable_on ~budget
             ~max_model_extra ~max_extra o b))
    && not
         (Material.Materializability.materializable_on ~budget
            ~max_model_extra:(max_model_extra + verify_extra)
            ~max_extra:(max_extra + verify_extra) o b)
  in
  Obs.Trace.with_span
    ~attrs:[ ("candidates", Obs.Trace.Int (List.length candidates)) ]
    "classify.decide"
  @@ fun () ->
  let rec go checked = function
    | [] ->
        if Obs.Trace.enabled () then
          Obs.Trace.add_attr "checked" (Obs.Trace.Int checked);
        Ptime_evidence checked
    | b :: rest ->
        (* one checkpoint per bouquet: verdicts on checked bouquets are
           final, so a trip here loses only the unchecked tail *)
        Reasoner.Budget.checkpoint budget;
        let hard =
          Obs.Trace.with_span
            ~attrs:
              [
                ("bouquet", Obs.Trace.Int checked);
                ( "domain",
                  Obs.Trace.Int (Structure.Instance.domain_size b) );
              ]
            "classify.bouquet"
            (fun () ->
              let hard = non_materializable b in
              if Obs.Trace.enabled () then
                Obs.Trace.add_attr "conp_witness" (Obs.Trace.Bool hard);
              hard)
        in
        if hard then begin
          if Obs.Trace.enabled () then
            Obs.Trace.add_attr "checked" (Obs.Trace.Int checked);
          Conp_hard b
        end
        else begin
          on_checked (checked + 1);
          go (checked + 1) rest
        end
  in
  go 0 candidates

(* Typed form: on a trip the partial payload is the number of bouquets
   fully checked (all of them PTIME evidence so far). *)
let try_decide budget ?seed ?max_outdegree ?samples ?max_model_extra ?max_extra
    ?verify_extra o =
  let checked = ref 0 in
  Reasoner.Budget.protect budget
    ~partial:(fun () -> !checked)
    (fun () ->
      decide ~budget
        ~on_checked:(fun n -> checked := n)
        ?seed ?max_outdegree ?samples ?max_model_extra ?max_extra ?verify_extra
        o)
