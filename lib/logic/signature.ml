module SMap = Names.SMap

type t = int SMap.t

exception Arity_mismatch of string * int * int

let empty = SMap.empty
let add name arity s =
  match SMap.find_opt name s with
  | Some a when a <> arity -> raise (Arity_mismatch (name, a, arity))
  | _ -> SMap.add name arity s

let of_list l = List.fold_left (fun s (n, a) -> add n a s) empty l
let arity name s = SMap.find_opt name s
let mem name s = SMap.mem name s

let union a b =
  SMap.union
    (fun name x y ->
      if x = y then Some x else raise (Arity_mismatch (name, x, y)))
    a b

let of_formula f = Formula.relations f

let of_formulas fs =
  List.fold_left (fun acc f -> union acc (of_formula f)) empty fs

let subset a b =
  SMap.for_all
    (fun name arity -> SMap.find_opt name b = Some arity)
    a

let to_list s = SMap.bindings s
let max_arity s = SMap.fold (fun _ a m -> max a m) s 0

let pp ppf s =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:comma (pair ~sep:(any "/") string int))
    (to_list s)
