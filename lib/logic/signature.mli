(** Relational signatures: finite maps from relation symbols to arities. *)

type t = int Names.SMap.t

(** Raised when a symbol is used with two different arities. *)
exception Arity_mismatch of string * int * int

val empty : t
val add : string -> int -> t -> t
val of_list : (string * int) list -> t
val arity : string -> t -> int option
val mem : string -> t -> bool

(** [union a b] merges two signatures.
    @raise Arity_mismatch on conflicting arities. *)
val union : t -> t -> t

(** The signature of the relation symbols occurring in a formula. *)
val of_formula : Formula.t -> t

val of_formulas : Formula.t list -> t

(** [subset a b]: every symbol of [a] occurs in [b] with the same arity. *)
val subset : t -> t -> bool
val to_list : t -> (string * int) list
val max_arity : t -> int
val pp : t Fmt.t
