type token =
  | IDENT of string
  | NUM of int
  | SUBSUMES  (** << *)
  | LEQ  (** <= *)
  | GEQ  (** >= *)
  | EXACT  (** == *)
  | DOT
  | LPAREN
  | RPAREN
  | MINUS
  | EOF

exception Lex_error of { line : int; col : int; message : string }

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | NUM n -> Fmt.pf ppf "number %d" n
  | SUBSUMES -> Fmt.string ppf "'<<'"
  | LEQ -> Fmt.string ppf "'<='"
  | GEQ -> Fmt.string ppf "'>='"
  | EXACT -> Fmt.string ppf "'=='"
  | DOT -> Fmt.string ppf "'.'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | MINUS -> Fmt.string ppf "'-'"
  | EOF -> Fmt.string ppf "end of line"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Tokenise one line; [line] is used only for error reporting. *)
let tokenize ~line s =
  let n = String.length s in
  let toks = ref [] in
  let error col message = raise (Lex_error { line; col; message }) in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then i := n (* comment to end of line *)
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      toks := IDENT (String.sub s start (!i - start)) :: !toks
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      let digits = String.sub s start (!i - start) in
      match int_of_string_opt digits with
      | Some v -> toks := NUM v :: !toks
      | None -> error start (Printf.sprintf "numeral %s out of range" digits)
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<<" ->
          toks := SUBSUMES :: !toks;
          i := !i + 2
      | "<=" ->
          toks := LEQ :: !toks;
          i := !i + 2
      | ">=" ->
          toks := GEQ :: !toks;
          i := !i + 2
      | "==" ->
          toks := EXACT :: !toks;
          i := !i + 2
      | _ -> (
          match c with
          | '.' ->
              toks := DOT :: !toks;
              incr i
          | '(' ->
              toks := LPAREN :: !toks;
              incr i
          | ')' ->
              toks := RPAREN :: !toks;
              incr i
          | '-' ->
              toks := MINUS :: !toks;
              incr i
          | _ -> error !i (Printf.sprintf "unexpected character %C" c))
    end
  done;
  List.rev (EOF :: !toks)
