(* Equivalence suite for the cost-based evaluation engine: on random
   instances the planner pipeline (Relindex + Eval) must return exactly
   the answers of the naive reference implementations, at every layer
   that was rewired onto it — CQ evaluation, homomorphism enumeration,
   the chase, and semi-naive Datalog. Byte-identity matters: downstream
   consumers compare answer lists structurally. *)

open Helpers
module EMap = Structure.Element.Map

let on f = Structure.Eval.with_planner true f
let off f = Structure.Eval.with_planner false f

let signature =
  Logic.Signature.of_list [ ("R", 2); ("S", 2); ("A", 1); ("B", 1) ]

let rand_instance ?(size = 4) ?(p = 0.3) seed =
  let rng = Random.State.make [| seed |] in
  Structure.Randgen.nonempty_instance ~rng ~signature ~size ~p

(* A mix of shapes: joins, repeated variables, constants, boolean,
   full-arity answers, cartesian-ish bodies. *)
let cqs =
  [
    cq ~name:"q_join" ~answer:[ "x" ] [ ("R", [ v "x"; v "y" ]); ("A", [ v "y" ]) ];
    cq ~name:"q_path" ~answer:[ "x"; "y" ]
      [ ("R", [ v "x"; v "z" ]); ("S", [ v "z"; v "y" ]) ];
    cq ~name:"q_loop" ~answer:[] [ ("R", [ v "x"; v "x" ]) ];
    cq ~name:"q_cycle" ~answer:[ "x" ]
      [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "x" ]); ("B", [ v "x" ]) ];
    cq ~name:"q_const" ~answer:[ "x" ]
      [ ("A", [ v "x" ]); ("R", [ c "c0"; v "x" ]) ];
    cq ~name:"q_prod" ~answer:[ "x"; "y" ]
      [ ("A", [ v "x" ]); ("B", [ v "y" ]) ];
  ]

let test_cq_equiv =
  QCheck.Test.make ~name:"Cq.holds/answers: planner = naive" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let d = rand_instance seed in
      let dom = Structure.Instance.domain_list d in
      List.for_all
        (fun q ->
          let arity = List.length q.Query.Cq.answer in
          on (fun () -> Query.Cq.answers d q)
          = off (fun () -> Query.Cq.answers d q)
          && List.for_all
               (fun t ->
                 Bool.equal
                   (on (fun () -> Query.Cq.holds d q t))
                   (off (fun () -> Query.Cq.holds d q t)))
               (Structure.Randgen.tuples dom arity))
        cqs)

let test_hom_equiv =
  QCheck.Test.make ~name:"Homomorphism.fold: planner = fold_naive" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let source =
        Structure.Randgen.nonempty_instance ~rng ~signature ~size:3 ~p:0.35
      in
      let target =
        Structure.Randgen.nonempty_instance ~rng ~signature ~size:4 ~p:0.35
      in
      let planner ?fixed () =
        Structure.Homomorphism.fold ?fixed ~source ~target
          (fun m acc -> (false, EMap.bindings m :: acc))
          []
        |> List.sort compare
      in
      let naive ?fixed () =
        Structure.Homomorphism.fold_naive ?fixed ~source ~target
          (fun m acc -> (false, EMap.bindings m :: acc))
          []
        |> List.sort compare
      in
      let free_ok = planner () = naive () in
      (* Pin one source element to itself (it is also a target constant). *)
      let fixed_ok =
        match Structure.Instance.domain_list source with
        | e :: _ when Structure.Element.Set.mem e (Structure.Instance.domain target)
          ->
            let fixed = EMap.singleton e e in
            planner ~fixed () = naive ~fixed ()
        | _ -> true
      in
      free_ok && fixed_ok)

let chase_rules =
  [
    Reasoner.Chase.rule ~name:"exists"
      ~body:[ ("A", [ v "x" ]) ]
      ~head:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
      ();
    Reasoner.Chase.rule ~name:"compose"
      ~body:[ ("R", [ v "x"; v "y" ]); ("S", [ v "y"; v "z" ]) ]
      ~head:[ ("R", [ v "x"; v "z" ]) ]
      ();
    Reasoner.Chase.rule ~name:"mark"
      ~body:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
      ~head:[ ("A", [ v "x" ]) ]
      ();
  ]

let test_chase_equiv =
  QCheck.Test.make ~name:"Chase.run fixpoint: planner = naive" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let d = rand_instance ~size:3 ~p:0.35 seed in
      let r_on = on (fun () -> Reasoner.Chase.run chase_rules d) in
      let r_off = off (fun () -> Reasoner.Chase.run chase_rules d) in
      Structure.Instance.equal r_on.Reasoner.Chase.instance
        r_off.Reasoner.Chase.instance
      && Bool.equal r_on.Reasoner.Chase.saturated r_off.Reasoner.Chase.saturated)

let tc_program =
  Datalog.Program.make ~goal:"T"
    [
      Datalog.Program.rule
        ~head:("T", [ v "x"; v "y" ])
        ~body:[ Datalog.Program.Pos ("R", [ v "x"; v "y" ]) ];
      Datalog.Program.rule
        ~head:("T", [ v "x"; v "z" ])
        ~body:
          [
            Datalog.Program.Pos ("T", [ v "x"; v "y" ]);
            Datalog.Program.Pos ("R", [ v "y"; v "z" ]);
          ];
      (* inequality + constant exercise the non-join literal paths *)
      Datalog.Program.rule
        ~head:("T", [ v "x"; c "c0" ])
        ~body:
          [
            Datalog.Program.Pos ("A", [ v "x" ]);
            Datalog.Program.Neq (v "x", c "c0");
          ];
    ]

let test_seminaive_equiv =
  QCheck.Test.make ~name:"Seminaive.answers: planner = naive" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let d = rand_instance seed in
      on (fun () -> Datalog.Seminaive.answers tc_program d)
      = off (fun () -> Datalog.Seminaive.answers tc_program d)
      && on (fun () ->
             Structure.Instance.equal
               (Datalog.Seminaive.evaluate tc_program d)
               (off (fun () -> Datalog.Seminaive.evaluate_naive tc_program d))))

(* Adaptive switchover: a small relation is always scanned; a larger one
   acquires a pattern hash table only after repeated probes. *)
let test_adaptive_switchover () =
  let big =
    List.init 40 (fun i -> ("R", [ "a" ^ string_of_int i; "b" ^ string_of_int (i mod 7) ]))
  in
  let small = List.init 5 (fun i -> ("S", [ "a0"; "b" ^ string_of_int i ])) in
  let d = inst (big @ small) in
  let idx = Structure.Relindex.build d in
  Alcotest.(check int) "fresh index has no tables" 0
    (Structure.Relindex.tables_built idx);
  let probe rel elem =
    let pat = [| Structure.Relindex.id_of idx elem; -1 |] in
    let n = ref 0 in
    Structure.Relindex.iter_matches idx rel ~pat (fun _ _ -> incr n);
    !n
  in
  (* Small relation: probe as often as we like, never pays for a table. *)
  for _ = 1 to 10 do
    ignore (probe "S" (e "a0"))
  done;
  Alcotest.(check int) "small relation stays scan-only" 0
    (Structure.Relindex.tables_built idx);
  (* Large relation: the first two probes scan, the third builds. *)
  ignore (probe "R" (e "a1"));
  ignore (probe "R" (e "a2"));
  Alcotest.(check int) "probes under cutoff still scan" 0
    (Structure.Relindex.tables_built idx);
  Alcotest.(check int) "lookup result" 1 (probe "R" (e "a3"));
  Alcotest.(check int) "third probe builds the hash table" 1
    (Structure.Relindex.tables_built idx);
  (* Answers must be identical either side of the switchover. *)
  Alcotest.(check int) "hash lookup result" 1 (probe "R" (e "a4"))

(* Plans are a pure function of atoms + statistics: planning twice gives
   the same JSON; the cached index is reused for the same instance. *)
let test_plan_deterministic () =
  let d = rand_instance 42 in
  let idx = Structure.Relindex.of_instance d in
  Alcotest.(check bool) "index cache hit" true
    (idx == Structure.Relindex.of_instance d);
  let atoms =
    [
      Structure.Eval.atom "R" [ Structure.Eval.Var 0; Structure.Eval.Var 1 ];
      Structure.Eval.atom "A" [ Structure.Eval.Var 1 ];
    ]
  in
  let j1 = Structure.Eval.explain_json (Structure.Eval.make_plan idx atoms) in
  let j2 = Structure.Eval.explain_json (Structure.Eval.make_plan idx atoms) in
  Alcotest.(check string) "same plan twice" j1 j2;
  let j3 = Structure.Eval.explain_json (Structure.Eval.make_plan (Structure.Relindex.build d) atoms) in
  Alcotest.(check string) "fresh index, same plan" j1 j3

(* Incremental index refresh: an index obtained through a chain of
   [Relindex.update]s must answer every query exactly like a fresh
   build of the final instance (row order may differ — answers are
   compared as sets via the sorted [Cq.answers]). *)
let test_relindex_update_equiv =
  QCheck.Test.make ~name:"Relindex.update = fresh build" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let d0 = rand_instance seed in
      let idx = ref (Structure.Relindex.build d0) in
      let d = ref d0 in
      let ok = ref true in
      for _ = 1 to 5 do
        (* random small change over the already-interned domain *)
        let dom = Array.of_list (Structure.Instance.domain_list !d) in
        if Array.length dom > 0 then begin
          let el () = dom.(Random.State.int rng (Array.length dom)) in
          let cand =
            if Random.State.bool rng then
              Structure.Instance.fact "R" [ el (); el () ]
            else Structure.Instance.fact "A" [ el () ]
          in
          let added, removed, d' =
            if Structure.Instance.mem cand !d then
              ([], [ cand ], Structure.Instance.remove_fact cand !d)
            else ([ cand ], [], Structure.Instance.add_fact cand !d)
          in
          (* removal may vacate an element the update keeps interned —
             that is the documented behaviour, answers must not care *)
          match Structure.Relindex.update !idx ~added ~removed d' with
          | None -> ok := false
          | Some idx' ->
              idx := idx';
              d := d';
              let fresh = Structure.Relindex.build d' in
              ok :=
                !ok
                && Structure.Relindex.for_uid idx' = Structure.Instance.uid d'
                && List.for_all
                     (fun r ->
                       Structure.Relindex.cardinality idx' r
                       = Structure.Relindex.cardinality fresh r)
                     [ "R"; "S"; "A"; "B" ]
                && List.for_all
                     (fun q ->
                       Structure.Eval.with_planner true (fun () ->
                           Query.Cq.answers d' q)
                       = Structure.Eval.with_planner false (fun () ->
                             Query.Cq.answers d' q))
                     cqs
        end
      done;
      !ok)

let test_randgen_large_deterministic () =
  let gen () =
    Structure.Randgen.large
      ~rng:(Random.State.make [| 7 |])
      ~nconst:50 ~nfacts:500 ()
  in
  let a = gen () and b = gen () in
  Alcotest.(check bool) "same seed, same instance" true
    (Structure.Instance.equal a b);
  let n = Structure.Instance.cardinal a in
  Alcotest.(check bool) "fact count in expected band" true
    (n > 400 && n < 600)

let suite =
  [
    QCheck_alcotest.to_alcotest test_cq_equiv;
    QCheck_alcotest.to_alcotest test_hom_equiv;
    QCheck_alcotest.to_alcotest test_chase_equiv;
    QCheck_alcotest.to_alcotest test_seminaive_equiv;
    Alcotest.test_case "adaptive_switchover" `Quick test_adaptive_switchover;
    Alcotest.test_case "plan_deterministic" `Quick test_plan_deterministic;
    QCheck_alcotest.to_alcotest test_relindex_update_equiv;
    Alcotest.test_case "randgen_large_deterministic" `Quick
      test_randgen_large_deterministic;
  ]
