(* The domain pool and the corpus runner built on it. The central
   property mirrors the pool's design: scheduling may do anything, but
   results are assembled in submission order, so every [jobs] count
   yields literally equal output — checked here both on the bare pool
   (with non-commutative folds and injected exceptions) and end-to-end
   on [Omq.Corpus] (qcheck: parallel classification/evaluation ≡
   sequential). Budget isolation: a per-item trip degrades that item
   alone and never poisons its siblings. *)

open Helpers
module Pool = Parallel.Pool
module Corpus = Omq.Corpus

let check = Alcotest.check

(* --------------------------------------------------------------- *)
(* The bare pool                                                    *)
(* --------------------------------------------------------------- *)

let test_map_order () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let items = Array.init 100 Fun.id in
  let out = Pool.map pool (fun x -> x * x) items in
  check Alcotest.(array int) "squares in submission order"
    (Array.init 100 (fun i -> i * i))
    out

let test_jobs_clamped_and_inline () =
  check Alcotest.bool "default_jobs positive" true (Pool.default_jobs () >= 1);
  Pool.with_pool ~jobs:0 @@ fun pool ->
  check Alcotest.int "jobs clamped to 1" 1 (Pool.jobs pool);
  let out = Pool.map pool string_of_int (Array.init 5 Fun.id) in
  check
    Alcotest.(array string)
    "inline sequential batch"
    [| "0"; "1"; "2"; "3"; "4" |]
    out

(* An item that raises does not stop its siblings, and the re-raised
   exception is the lowest-indexed one — independent of schedule. *)
let test_exception_deterministic () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let ran = Atomic.make 0 in
  let f x =
    Atomic.incr ran;
    if x mod 2 = 1 then failwith (string_of_int x) else x
  in
  (match Pool.map pool f (Array.init 20 Fun.id) with
  | _ -> Alcotest.fail "expected a failure"
  | exception Failure m -> check Alcotest.string "lowest index raised" "1" m);
  check Alcotest.int "every sibling still ran" 20 (Atomic.get ran)

let test_map_reduce_non_commutative () =
  let items = Array.init 26 (fun i -> String.make 1 (Char.chr (65 + i))) in
  let seq = Array.fold_left ( ^ ) "" items in
  Pool.with_pool ~jobs:3 @@ fun pool ->
  let par = Pool.map_reduce pool ~map:String.lowercase_ascii
      ~reduce:( ^ ) ~init:""
      items
  in
  check Alcotest.string "fold in submission order"
    (String.lowercase_ascii seq)
    par

(* Workers are reused across batches of one pool; a shut-down pool
   refuses new batches. *)
let test_batches_reuse_and_shutdown () =
  let pool = Pool.create ~jobs:3 () in
  for round = 1 to 5 do
    let out = Pool.map pool (fun x -> x + round) (Array.init 17 Fun.id) in
    check Alcotest.(array int) "round result"
      (Array.init 17 (fun i -> i + round))
      out
  done;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  match Pool.map pool Fun.id [| 1 |] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

(* --------------------------------------------------------------- *)
(* The corpus runner: parallel ≡ sequential                         *)
(* --------------------------------------------------------------- *)

(* Everything schedule-independent in a result, as a comparable string:
   verdicts, answer sets, trip reasons — not seconds, not stats. *)
let project (r : Corpus.result_one) =
  ( r.item_name,
    match r.outcome with
    | Ok (Corpus.Classified c) ->
        Fmt.str "classified %s depth=%d %s %a" c.dl_name c.depth
          (match c.fragment with
          | Some d -> Gf.Fragment.name d
          | None -> "outside")
          Classify.Landscape.pp_status c.evidence.Classify.Landscape.status
    | Ok (Corpus.Evaluated e) ->
        Fmt.str "eval consistent=%b answers=%a" e.consistent
          Fmt.(
            list ~sep:semi (brackets (list ~sep:comma Structure.Element.pp)))
          e.answers
    | Error f -> Fmt.str "tripped %a" Reasoner.Budget.pp_reason f.reason )

let projection = Alcotest.(list (pair string string))

let projected report =
  List.map project report.Corpus.results

let eval_data =
  inst
    [
      ("r0", [ "a"; "b" ]);
      ("r0", [ "b"; "c" ]);
      ("r0", [ "c"; "a" ]);
      ("r1", [ "a"; "c" ]);
      ("C0", [ "a" ]);
      ("C1", [ "b" ]);
      ("C2", [ "c" ]);
    ]

let eval_query = Query.Parse.ucq_of_string "q(x) <- r0(x,y), C1(y)"

let eval_task = Corpus.Eval { query = eval_query; data = eval_data; max_extra = 1 }

let test_corpus_classify_parallel_eq_sequential =
  QCheck.Test.make ~name:"parallel classification = sequential" ~count:8
    QCheck.(pair (int_bound 100000) (int_range 2 5))
    (fun (seed, jobs) ->
      let items = Corpus.generate ~seed ~n:(1 + (seed mod 8)) () in
      projected (Corpus.run ~jobs Corpus.Classify items)
      = projected (Corpus.run Corpus.Classify items))

let test_corpus_eval_parallel_eq_sequential =
  QCheck.Test.make ~name:"parallel evaluation = sequential" ~count:4
    QCheck.(pair (int_bound 100000) (int_range 2 4))
    (fun (seed, jobs) ->
      let items = Corpus.generate ~seed ~n:4 () in
      projected (Corpus.run ~jobs eval_task items)
      = projected (Corpus.run eval_task items))

let test_load_dir_missing () =
  match Corpus.load_dir "/nonexistent-corpus-dir" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

(* --------------------------------------------------------------- *)
(* Budget isolation                                                 *)
(* --------------------------------------------------------------- *)

(* A TBox whose evaluation forces heavy case splitting: cyclic
   existentials plus disjunctions plus counting, under a covering
   axiom. Evaluating over [eval_data] at max_extra 2 takes orders of
   magnitude longer than the trivial items beside it. *)
let hard_tbox =
  let c i = Dl.Concept.Atomic (Printf.sprintf "C%d" i) in
  let r = Dl.Concept.Name "r0" in
  [
    Dl.Tbox.Sub (Dl.Concept.Top, Dl.Concept.Or (c 0, Dl.Concept.Or (c 1, c 2)));
    Dl.Tbox.Sub (c 0, Dl.Concept.Exists (r, c 1));
    Dl.Tbox.Sub (c 1, Dl.Concept.Or (c 2, c 3));
    Dl.Tbox.Sub (c 2, Dl.Concept.Exists (r, c 0));
    Dl.Tbox.Sub (c 3, Dl.Concept.exactly 3 r (c 1));
    Dl.Tbox.Sub (c 3, Dl.Concept.Exists (Dl.Concept.Inv "r0", c 2));
  ]

let trivial_tbox = [ Dl.Tbox.Sub (Dl.Concept.Atomic "C0", Dl.Concept.Top) ]

let mixed_items =
  [
    { Corpus.name = "cheap-1"; tbox = trivial_tbox };
    { Corpus.name = "hard"; tbox = hard_tbox };
    { Corpus.name = "cheap-2"; tbox = trivial_tbox };
  ]

let mixed_task = Corpus.Eval { query = eval_query; data = eval_data; max_extra = 2 }

let expect_ok name (r : Corpus.result_one) =
  match r.outcome with
  | Ok _ -> ()
  | Error f ->
      Alcotest.failf "%s unexpectedly tripped (%a)" name
        Reasoner.Budget.pp_reason f.reason

(* Fuel is deterministic (propagations + conflicts), so a separating
   budget provably exists: sweep until the cheap items complete and the
   hard one trips, then check the cheap verdicts equal the unbudgeted
   ones — the sibling trip changed nothing for them. *)
let test_fuel_trips_only_the_expensive_item () =
  let unbudgeted = projected (Corpus.run ~jobs:2 mixed_task mixed_items) in
  let rec sweep fuel =
    if fuel > 1 lsl 24 then
      Alcotest.fail "no separating fuel found (hard item too cheap)"
    else
      let report = Corpus.run ~fuel ~jobs:2 mixed_task mixed_items in
      match List.map (fun r -> r.Corpus.outcome) report.Corpus.results with
      | [ Ok _; Error { reason = Reasoner.Budget.Fuel; _ }; Ok _ ] -> report
      | _ -> sweep (fuel * 2)
  in
  let report = sweep 64 in
  let cheap l = [ List.nth l 0; List.nth l 2 ] in
  check projection "siblings unaffected by the trip" (cheap unbudgeted)
    (cheap (projected report))

(* The wall-clock variant the CLI exposes as --timeout. The hard item
   here is the heavyweight of the generated corpus (a depth-3 ontology
   whose grounding alone runs for seconds on a 12-element instance);
   the trivial ones finish in well under a millisecond, so a
   tenth-of-a-second per-item deadline separates them with orders of
   magnitude to spare. *)
let ring_data =
  let el i = Printf.sprintf "e%d" i in
  let n = 12 in
  let facts = ref [] in
  for i = 1 to n do
    facts := ("r0", [ el i; el (1 + (i mod n)) ]) :: !facts;
    if i mod 3 = 1 then facts := ("r1", [ el i; el (1 + (i * 5 mod n)) ]) :: !facts;
    if i mod 2 = 1 then facts := ("C0", [ el i ]) :: !facts;
    if i mod 3 = 2 then facts := ("C1", [ el i ]) :: !facts;
    if i mod 4 = 1 then facts := ("C2", [ el i ]) :: !facts
  done;
  inst !facts

let heavy_tbox =
  (* The slowest ontology of the seed-2017 corpus: depth 3, whose
     evaluation over [ring_data] runs for tens of seconds unbudgeted. *)
  (List.nth (Corpus.generate ~seed:2017 ~n:24 ()) 20).Corpus.tbox

let timeout_items =
  [
    { Corpus.name = "cheap-1"; tbox = trivial_tbox };
    { Corpus.name = "heavy"; tbox = heavy_tbox };
    { Corpus.name = "cheap-2"; tbox = trivial_tbox };
  ]

let timeout_task =
  Corpus.Eval { query = eval_query; data = ring_data; max_extra = 2 }

let test_timeout_trips_only_the_expensive_item () =
  let report = Corpus.run ~timeout:0.1 ~jobs:2 timeout_task timeout_items in
  (match (List.nth report.Corpus.results 1).Corpus.outcome with
  | Error { reason = Reasoner.Budget.Timeout; _ } -> ()
  | Ok _ -> Alcotest.fail "heavy item finished under the deadline"
  | Error f ->
      Alcotest.failf "heavy item tripped %a, expected a timeout"
        Reasoner.Budget.pp_reason f.reason);
  expect_ok "cheap-1" (List.nth report.Corpus.results 0);
  expect_ok "cheap-2" (List.nth report.Corpus.results 2);
  (* The deadline is per item, relative to item start: a batch of cheap
     items behind the heavy one must not inherit its elapsed time. *)
  let many =
    timeout_items
    @ List.init 6 (fun i ->
          { Corpus.name = Printf.sprintf "tail-%d" i; tbox = trivial_tbox })
  in
  let report = Corpus.run ~timeout:0.1 ~jobs:2 timeout_task many in
  List.iteri
    (fun i (r : Corpus.result_one) ->
      if i <> 1 then expect_ok r.item_name r)
    report.Corpus.results

(* --------------------------------------------------------------- *)
(* Trace merging                                                    *)
(* --------------------------------------------------------------- *)

let test_traces_merge_across_domains () =
  let items = Corpus.generate ~seed:7 ~n:5 () in
  let report, c =
    Obs.Trace.collect (fun () -> Corpus.run ~jobs:3 Corpus.Classify items)
  in
  check Alcotest.int "all items processed" 5 (List.length report.Corpus.results);
  check Alcotest.bool "merged collector well-formed" true
    (Obs.Trace.well_formed c);
  check Alcotest.int "no dangling spans" 0 (Obs.Trace.open_spans c);
  let item_spans =
    List.filter
      (fun (s : Obs.Trace.span) -> s.name = "corpus.item")
      (Obs.Trace.spans c)
  in
  check Alcotest.int "one merged span per item" 5 (List.length item_spans);
  List.iter
    (fun (s : Obs.Trace.span) ->
      check Alcotest.bool "span tagged with its worker domain" true
        (List.mem_assoc "domain" s.attrs))
    item_spans

let suite =
  [
    Alcotest.test_case "pool: map keeps submission order" `Quick test_map_order;
    Alcotest.test_case "pool: jobs clamp, inline sequential baseline" `Quick
      test_jobs_clamped_and_inline;
    Alcotest.test_case "pool: lowest-index exception, siblings run" `Quick
      test_exception_deterministic;
    Alcotest.test_case "pool: non-commutative map_reduce" `Quick
      test_map_reduce_non_commutative;
    Alcotest.test_case "pool: batch reuse and shutdown" `Quick
      test_batches_reuse_and_shutdown;
    QCheck_alcotest.to_alcotest test_corpus_classify_parallel_eq_sequential;
    QCheck_alcotest.to_alcotest test_corpus_eval_parallel_eq_sequential;
    Alcotest.test_case "corpus: load_dir error reporting" `Quick
      test_load_dir_missing;
    Alcotest.test_case "budget: fuel trips only the expensive item" `Quick
      test_fuel_trips_only_the_expensive_item;
    Alcotest.test_case "budget: timeout trips only the expensive item" `Quick
      test_timeout_trips_only_the_expensive_item;
    Alcotest.test_case "trace: per-domain collectors merge at join" `Quick
      test_traces_merge_across_domains;
  ]
