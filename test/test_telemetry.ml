(* The telemetry plane: bucketed histograms with quantile estimation,
   cross-domain snapshot merging, the Prometheus text exposition, the
   flight-recorder ring, and the daemon's live endpoints.

   The load-bearing properties:

   - merging per-registry snapshots is equivalent to applying the same
     operation stream to one registry sequentially (what makes the
     loop's scrape of worker-shipped snapshots honest);
   - the histogram quantile estimate always lands inside the bucket
     that holds the exact empirical quantile, and inside [min, max];
   - the exposition output obeys the 0.0.4 text grammar (checked by a
     parser written here) and round-trips the registry's values;
   - the flight ring keeps the newest [capacity] records, oldest
     first, and counts what it dropped;
   - a live daemon's /metrics endpoint advances serve_requests_total
     between scrapes, and the dump_telemetry wire op returns the
     documented shape. *)

module P = Omq.Protocol
module Metrics = Obs.Metrics

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Merge-of-snapshots = sequential application.

   Each metric name is pinned to one of [k] registries (as each daemon
   metric lives on one domain), the op stream is applied in order, and
   the merged snapshots must equal the registry that saw the whole
   stream sequentially. Observation values are dyadic rationals so
   sums are exact in any association order. *)

type op = Incr of int | Set of float | Observe of float

let gen_ops =
  QCheck.Gen.(
    let name =
      oneofl
        [ "c.a"; "c.b"; "c.c"; "g.a"; "g.b"; "g.c"; "h.a"; "h.b"; "h.c" ]
    in
    let op kind =
      match kind with
      | 'c' -> map (fun n -> Incr n) (int_range 0 5)
      | 'g' -> map (fun n -> Set (float_of_int n *. 0.5)) (int_range (-4) 9)
      | _ -> map (fun n -> Observe (float_of_int n *. 0.25)) (int_range 0 16)
    in
    list_size (int_range 0 60)
      (name >>= fun n -> map (fun o -> (n, o)) (op n.[0])))

let apply reg (name, o) =
  match o with
  | Incr n -> Metrics.incr ~by:n reg name
  | Set v -> Metrics.set reg name v
  | Observe v -> Metrics.observe reg name v

let registries_equal a b =
  let names r = Metrics.names r in
  names a = names b
  && List.for_all
       (fun n ->
         Metrics.counter_value a n = Metrics.counter_value b n
         && Metrics.gauge_value a n = Metrics.gauge_value b n
         && Metrics.histogram_stats a n = Metrics.histogram_stats b n
         && Metrics.histogram_buckets a n = Metrics.histogram_buckets b n)
       (names a)

let test_merge_equiv =
  QCheck.Test.make ~name:"merge of per-domain snapshots = sequential"
    ~count:300
    (QCheck.make gen_ops)
    (fun ops ->
      let k = 3 in
      let shards = Array.init k (fun _ -> Metrics.create ()) in
      let seq = Metrics.create () in
      List.iter
        (fun ((name, _) as o) ->
          apply shards.(Hashtbl.hash name mod k) o;
          apply seq o)
        ops;
      let merged =
        Metrics.merge_snapshots
          (Array.to_list (Array.map Metrics.snapshot shards))
      in
      registries_equal merged seq)

(* ------------------------------------------------------------------ *)
(* Quantile estimate vs exact sort. *)

let bucket_interval ~max_v v =
  (* [lo, hi] of the histogram bucket holding v, mirroring the static
     layout: bucket i spans (bounds.(i-1), bounds.(i)], overflow spans
     (last bound, max observation]. *)
  let bounds = Metrics.bucket_bounds in
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && bounds.(!i) < v do
    i := !i + 1
  done;
  let lo = if !i = 0 then 0.0 else bounds.(!i - 1) in
  let hi = if !i >= n then max_v else bounds.(!i) in
  (lo, hi)

let gen_samples =
  QCheck.Gen.(
    list_size (int_range 1 200)
      (* log-uniform over the full bucket range plus the overflow *)
      (map (fun e -> 10.0 ** e) (float_range (-6.5) 3.5)))

let test_quantile_bounds =
  QCheck.Test.make ~name:"quantile lands in the exact quantile's bucket"
    ~count:300
    (QCheck.make gen_samples)
    (fun samples ->
      let reg = Metrics.create () in
      List.iter (Metrics.observe reg "h") samples;
      let sorted = Array.of_list (List.sort compare samples) in
      let n = Array.length sorted in
      let max_v = sorted.(n - 1) and min_v = sorted.(0) in
      List.for_all
        (fun q ->
          match Metrics.quantile reg "h" q with
          | None -> false
          | Some est ->
              let rank = q *. float_of_int n in
              let exact =
                sorted.(min (n - 1) (max 0 (int_of_float (ceil rank) - 1)))
              in
              let lo, hi = bucket_interval ~max_v exact in
              let eps = 1e-9 *. Float.max 1.0 hi in
              est >= lo -. eps && est <= hi +. eps && est >= min_v -. eps
              && est <= max_v +. eps)
        [ 0.05; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ])

(* ------------------------------------------------------------------ *)
(* Prometheus exposition: grammar + value round-trip.

   The parser below accepts exactly the 0.0.4 text format the daemon
   emits: '# HELP name text', '# TYPE name kind', 'name[{labels}]
   value'. It returns samples keyed by (name, labels). *)

type sample = { sname : string; labels : (string * string) list; v : float }

exception Bad_exposition of string

let parse_exposition doc =
  let fail m = raise (Bad_exposition m) in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let parse_labels s =
    (* label pairs in braces; values are quoted with backslash,
       quote and newline escapes *)
    let n = String.length s in
    let pos = ref 1 in
    let labels = ref [] in
    while s.[!pos] <> '}' do
      let k0 = !pos in
      while is_name_char s.[!pos] do
        incr pos
      done;
      let key = String.sub s k0 (!pos - k0) in
      if s.[!pos] <> '=' then fail "label: expected '='";
      incr pos;
      if s.[!pos] <> '"' then fail "label: expected '\"'";
      incr pos;
      let buf = Buffer.create 16 in
      let rec value () =
        if !pos >= n then fail "label: unterminated value"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              (match s.[!pos + 1] with
              | '\\' -> Buffer.add_char buf '\\'
              | '"' -> Buffer.add_char buf '"'
              | 'n' -> Buffer.add_char buf '\n'
              | c -> fail (Printf.sprintf "label: bad escape '\\%c'" c));
              pos := !pos + 2;
              value ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              value ()
      in
      value ();
      labels := (key, Buffer.contents buf) :: !labels;
      if s.[!pos] = ',' then incr pos
    done;
    if !pos <> n - 1 then fail "label: garbage after '}'";
    List.rev !labels
  in
  let helps = Hashtbl.create 16 and types = Hashtbl.create 16 in
  let samples = ref [] in
  let seen_sample = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        let name, _help =
          match String.index_opt rest ' ' with
          | Some i ->
              ( String.sub rest 0 i,
                String.sub rest (i + 1) (String.length rest - i - 1) )
          | None -> (rest, "")
        in
        if Hashtbl.mem helps name then fail ("duplicate HELP for " ^ name);
        if Hashtbl.mem seen_sample name then
          fail ("HELP after samples for " ^ name);
        Hashtbl.add helps name ()
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.split_on_char ' ' rest with
        | [ name; kind ] ->
            if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
              fail ("bad TYPE kind " ^ kind);
            if Hashtbl.mem types name then fail ("duplicate TYPE for " ^ name);
            if Hashtbl.mem seen_sample name then
              fail ("TYPE after samples for " ^ name);
            Hashtbl.add types name kind
        | _ -> fail ("bad TYPE line: " ^ line)
      end
      else if String.length line >= 1 && line.[0] = '#' then
        fail ("bad comment line: " ^ line)
      else begin
        (* name[{labels}] value *)
        let name_end = ref 0 in
        while
          !name_end < String.length line && is_name_char line.[!name_end]
        do
          incr name_end
        done;
        if !name_end = 0 then fail ("sample with no name: " ^ line);
        let sname = String.sub line 0 !name_end in
        (if
           sname.[0] >= '0' && sname.[0] <= '9'
         then fail ("name starts with a digit: " ^ sname));
        let rest = String.sub line !name_end (String.length line - !name_end) in
        let labels, vstr =
          if rest <> "" && rest.[0] = '{' then
            match String.rindex_opt rest ' ' with
            | Some i ->
                ( parse_labels (String.sub rest 0 i),
                  String.sub rest (i + 1) (String.length rest - i - 1) )
            | None -> fail ("sample with no value: " ^ line)
          else if rest <> "" && rest.[0] = ' ' then
            ([], String.sub rest 1 (String.length rest - 1))
          else fail ("bad sample line: " ^ line)
        in
        let v =
          match float_of_string_opt vstr with
          | Some v -> v
          | None -> fail ("bad sample value: " ^ vstr)
        in
        (* every sample family must have been declared *)
        let family =
          (* strip the histogram suffixes to find the declared family *)
          let strip suffix s =
            let ls = String.length suffix and l = String.length s in
            if l > ls && String.sub s (l - ls) ls = suffix then
              Some (String.sub s 0 (l - ls))
            else None
          in
          match (strip "_bucket" sname, strip "_sum" sname, strip "_count" sname) with
          | Some f, _, _ when Hashtbl.mem types f -> f
          | _, Some f, _ when Hashtbl.mem types f -> f
          | _, _, Some f when Hashtbl.mem types f -> f
          | _ -> sname
        in
        if not (Hashtbl.mem types family) then
          fail ("sample before TYPE: " ^ sname);
        Hashtbl.replace seen_sample family ();
        samples := { sname; labels; v } :: !samples
      end)
    (String.split_on_char '\n' doc);
  (types, List.rev !samples)

let find_sample samples sname labels =
  List.find_opt (fun s -> s.sname = sname && s.labels = labels) samples

let test_exposition_round_trip () =
  let reg = Metrics.create () in
  Metrics.incr ~by:7 reg "serve.requests";
  Metrics.set reg "gc.major_words" 12345.0;
  Metrics.observe reg "serve.request.seconds" 0.003;
  Metrics.observe reg "serve.request.seconds" 0.004;
  Metrics.observe reg "serve.request.seconds" 2000.0 (* overflow bucket *);
  let worker = Metrics.create () in
  Metrics.set worker "gc.major_words" 999.0;
  let doc =
    Obs.Prometheus.render
      ~help:(fun n ->
        if n = "serve.requests" then Some "requests \"served\"\nwith\\escapes"
        else None)
      [ ([], reg); ([ ("domain", "0") ], worker) ]
  in
  let types, samples =
    try parse_exposition doc
    with Bad_exposition m -> Alcotest.failf "bad exposition: %s\n%s" m doc
  in
  check Alcotest.(option string) "counter kind" (Some "counter")
    (Hashtbl.find_opt types "serve_requests_total");
  check Alcotest.(option string) "gauge kind" (Some "gauge")
    (Hashtbl.find_opt types "gc_major_words");
  check Alcotest.(option string) "histogram kind" (Some "histogram")
    (Hashtbl.find_opt types "serve_request_seconds");
  (match find_sample samples "serve_requests_total" [] with
  | Some s -> check (Alcotest.float 0.0) "counter value" 7.0 s.v
  | None -> Alcotest.fail "serve_requests_total sample missing");
  (match find_sample samples "gc_major_words" [ ("domain", "0") ] with
  | Some s -> check (Alcotest.float 0.0) "labelled gauge" 999.0 s.v
  | None -> Alcotest.fail "labelled gc_major_words missing");
  (* histogram: cumulative buckets are nondecreasing and +Inf = count *)
  let buckets =
    List.filter (fun s -> s.sname = "serve_request_seconds_bucket") samples
  in
  check Alcotest.int "one bucket per bound plus +Inf"
    (Array.length Metrics.bucket_bounds + 1)
    (List.length buckets);
  let monotone =
    let vs = List.map (fun s -> s.v) buckets in
    List.for_all2 ( <= )
      (List.filteri (fun i _ -> i < List.length vs - 1) vs)
      (List.tl vs)
  in
  check Alcotest.bool "buckets cumulative" true monotone;
  (match
     ( find_sample samples "serve_request_seconds_count" [],
       List.find_opt
         (fun s ->
           s.sname = "serve_request_seconds_bucket"
           && s.labels = [ ("le", "+Inf") ])
         samples )
   with
  | Some c, Some inf ->
      check (Alcotest.float 0.0) "+Inf bucket = count" c.v inf.v;
      check (Alcotest.float 0.0) "count counts the overflow too" 3.0 c.v
  | _ -> Alcotest.fail "histogram _count or +Inf bucket missing")

let test_mangling () =
  check Alcotest.string "dots to underscores" "serve_request_seconds"
    (Obs.Prometheus.mangle "serve.request.seconds");
  check Alcotest.string "counter suffix" "serve_requests_total"
    (Obs.Prometheus.counter_name "serve.requests");
  check Alcotest.string "no double suffix" "x_total"
    (Obs.Prometheus.counter_name "x_total");
  check Alcotest.string "leading digit guarded" "_9lives"
    (Obs.Prometheus.mangle "9lives")

(* ------------------------------------------------------------------ *)
(* Flight-recorder ring. *)

let rec_i i =
  {
    Omqd.Telemetry.ts_s = float_of_int i;
    op = "eval";
    outcome = "ok";
    worker = i mod 2;
    session = i;
    dur_s = 0.001;
  }

let test_flight_eviction () =
  let t = Omqd.Telemetry.create ~capacity:4 () in
  for i = 0 to 9 do
    Omqd.Telemetry.record t (rec_i i)
  done;
  check Alcotest.int "total" 10 (Omqd.Telemetry.total t);
  check Alcotest.int "dropped" 6 (Omqd.Telemetry.dropped t);
  check
    Alcotest.(list int)
    "newest four, oldest first" [ 6; 7; 8; 9 ]
    (List.map
       (fun r -> r.Omqd.Telemetry.session)
       (Omqd.Telemetry.records t));
  Omqd.Telemetry.set_enabled t false;
  Omqd.Telemetry.record t (rec_i 10);
  check Alcotest.int "disabled: no record" 10 (Omqd.Telemetry.total t);
  (* the dump is one parseable JSON object with the documented keys *)
  match P.Json.parse (Omqd.Telemetry.to_json ~extra:[ ("x", "1") ] t) with
  | Error m -> Alcotest.failf "dump does not parse: %s" m
  | Ok j ->
      check Alcotest.bool "extra member" true (P.Json.member "x" j <> None);
      check
        Alcotest.(option bool)
        "flight_total" (Some true)
        (Option.map (( = ) (P.Json.Num 10.0)) (P.Json.member "flight_total" j));
      (match P.Json.member "flight" j with
      | Some (P.Json.Arr rs) -> check Alcotest.int "flight length" 4 (List.length rs)
      | _ -> Alcotest.fail "flight array missing")

(* ------------------------------------------------------------------ *)
(* Live daemon: /metrics advances, dump_telemetry has the shape. *)

let onto = "Hand << exists hasFinger . Thumb"
let data = "Hand(h)\nThumb(t)\nhasFinger(h, t)"
let query = "q(x) <- Thumb(x)"

let open_req = P.Open_session { ontology = onto; data; query; max_extra = 2 }

let eval_req session =
  P.Eval { session; budget = P.no_budget; want_stats = false }

let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      let _ = Unix.write_substring fd req 0 (String.length req) in
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let doc = Buffer.contents buf in
      (* split the status line and the body at the blank line *)
      let status =
        match String.index_opt doc '\r' with
        | Some i -> String.sub doc 0 i
        | None -> doc
      in
      let rec find_blank i =
        if i + 3 >= String.length doc then None
        else if String.sub doc i 4 = "\r\n\r\n" then Some (i + 4)
        else find_blank (i + 1)
      in
      match find_blank 0 with
      | Some b -> (status, String.sub doc b (String.length doc - b))
      | None -> Alcotest.failf "no HTTP header/body split in %S" doc)

let test_daemon_scrape () =
  let port = 20000 + (Unix.getpid () mod 20000) in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omqd-telemetry-%d.sock" (Unix.getpid ()))
  in
  let addr = Omqd.Daemon.Unix_path path in
  let cfg =
    Omqd.Daemon.config ~addr ~jobs:2
      ~metrics_addr:(Omqd.Daemon.Tcp ("127.0.0.1", port))
      ()
  in
  let result = ref (Ok ()) in
  let th = Thread.create (fun () -> result := Omqd.Daemon.run cfg) () in
  Fun.protect
    ~finally:(fun () ->
      (match Omqd.Client.connect ~attempts:1 addr with
      | Error _ -> ()
      | Ok c ->
          ignore (Omqd.Client.call c P.Shutdown);
          Omqd.Client.close c);
      Thread.join th;
      match !result with
      | Ok () -> ()
      | Error m -> Alcotest.failf "daemon failed: %s" m)
    (fun () ->
      match Omqd.Client.connect addr with
      | Error m -> Alcotest.failf "connect: %s" m
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Omqd.Client.close c)
            (fun () ->
              let session =
                match Omqd.Client.call c open_req with
                | Ok (P.Opened { session }) -> session
                | Ok r -> Alcotest.failf "open: %s" (P.render_response r)
                | Error m -> Alcotest.failf "open: %s" m
              in
              let eval () =
                match Omqd.Client.call c (eval_req session) with
                | Ok (P.Evaled _) -> ()
                | Ok r -> Alcotest.failf "eval: %s" (P.render_response r)
                | Error m -> Alcotest.failf "eval: %s" m
              in
              eval ();
              let served_total () =
                let status, body = http_get ~port "/metrics" in
                check Alcotest.bool "scrape is 200 OK" true
                  (String.length status >= 12
                  && String.sub status 9 3 = "200");
                let _, samples =
                  try parse_exposition body
                  with Bad_exposition m ->
                    Alcotest.failf "bad exposition: %s\n%s" m body
                in
                match find_sample samples "serve_requests_total" [] with
                | Some s -> s.v
                | None -> Alcotest.fail "serve_requests_total missing"
              in
              let before = served_total () in
              eval ();
              eval ();
              let after = served_total () in
              check Alcotest.bool "serve_requests_total advances" true
                (after >= before +. 2.0);
              (* per-domain GC gauges are present *)
              let _, samples = parse_exposition (snd (http_get ~port "/metrics")) in
              check Alcotest.bool "per-domain gc gauge" true
                (find_sample samples "gc_major_words" [ ("domain", "0") ]
                <> None);
              (* 404 and 405 are real responses, not dropped conns *)
              let status404, _ = http_get ~port "/nope" in
              check Alcotest.bool "404 on unknown path" true
                (String.sub status404 9 3 = "404");
              (* the dump_telemetry wire op has the documented shape *)
              (match Omqd.Client.call c P.Dump_telemetry with
              | Ok (P.Telemetry { telemetry }) ->
                  List.iter
                    (fun k ->
                      check Alcotest.bool (k ^ " present") true
                        (P.Json.member k telemetry <> None))
                    [
                      "version"; "uptime_s"; "served"; "p50_ms"; "workers";
                      "flight_total"; "flight"; "flight_dropped";
                    ];
                  (match P.Json.member "workers" telemetry with
                  | Some (P.Json.Arr rows) ->
                      check Alcotest.int "one row per worker" 2
                        (List.length rows)
                  | _ -> Alcotest.fail "workers is not an array")
              | Ok r ->
                  Alcotest.failf "dump_telemetry: %s" (P.render_response r)
              | Error m -> Alcotest.failf "dump_telemetry: %s" m);
              (* extended stats: version + counters *)
              match Omqd.Client.call c P.Stats with
              | Ok (P.Server_stats s) ->
                  check Alcotest.string "stats version" Omqd.Daemon.version
                    s.server_version;
                  check Alcotest.bool "uptime nonnegative" true
                    (s.uptime_s >= 0.0);
                  check Alcotest.bool "counters are an object" true
                    (match s.counters with P.Json.Obj _ -> true | _ -> false)
              | Ok r -> Alcotest.failf "stats: %s" (P.render_response r)
              | Error m -> Alcotest.failf "stats: %s" m))

let suite =
  [
    QCheck_alcotest.to_alcotest test_merge_equiv;
    QCheck_alcotest.to_alcotest test_quantile_bounds;
    Alcotest.test_case "exposition grammar + value round-trip" `Quick
      test_exposition_round_trip;
    Alcotest.test_case "prometheus name mangling" `Quick test_mangling;
    Alcotest.test_case "flight ring evicts oldest, counts drops" `Quick
      test_flight_eviction;
    Alcotest.test_case "live daemon: scrape advances, dump shape" `Quick
      test_daemon_scrape;
  ]
