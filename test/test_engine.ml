(* The incremental engine (Reasoner.Engine) must be observationally
   equivalent to the one-shot Bounded reference, and its session cache
   and stats record must account traffic faithfully. *)

open Helpers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qc = cq ~name:"qc" ~answer:[ "x" ] [ ("C", [ v "x" ]) ]
let qa = cq ~name:"qa" ~answer:[ "x" ] [ ("A", [ v "x" ]) ]
let qb = cq ~name:"qb" ~answer:[ "x" ] [ ("B", [ v "x" ]) ]
let qab = ucq ~name:"qab" [ qa; qb ]

(* 1. Engine and Bounded agree on consistency and certain answers for
   random instances against a Horn and a disjunctive ontology, at every
   deepening ceiling 0..2. *)
let test_engine_vs_bounded =
  QCheck.Test.make ~name:"engine agrees with Bounded at bounds 0-2" ~count:12
    QCheck.(pair (int_bound 100000) (int_range 0 2))
    (fun (seed, max_extra) ->
      let rng = Random.State.make [| seed |] in
      let signature =
        Logic.Signature.of_list [ ("A", 1); ("B", 1); ("D", 1); ("R", 2) ]
      in
      let d = Structure.Randgen.nonempty_instance ~rng ~signature ~size:3 ~p:0.35 in
      let dom = Structure.Instance.domain_list d in
      List.for_all
        (fun o ->
          Bool.equal
            (Reasoner.Engine.is_consistent_upto ~max_extra o d)
            (Reasoner.Bounded.is_consistent ~max_extra o d)
          && List.for_all
               (fun el ->
                 List.for_all
                   (fun q ->
                     Bool.equal
                       (Reasoner.Engine.certain_cq_upto ~max_extra o d q [ el ])
                       (Reasoner.Bounded.certain_cq ~max_extra o d q [ el ]))
                   [ qc; qa; qb ]
                 && Bool.equal
                      (Reasoner.Engine.certain_ucq_upto ~max_extra o d qab [ el ])
                      (Reasoner.Bounded.certain_ucq ~max_extra o d qab [ el ]))
               dom)
        [ o_horn; o_disj ])

(* 2. A session grounds once and answers many: repeated tuple checks on
   the same (O, D, extra) reuse the cached engine. *)
let test_cache_accounting () =
  let d = inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]) ] in
  Reasoner.Engine.clear_cache ();
  Reasoner.Stats.reset (Reasoner.Stats.global ());
  let eng = Reasoner.Engine.session ~extra:1 o_horn d in
  check_int "first lookup misses" 1 (Reasoner.Stats.global ()).cache_misses;
  check_int "no hit yet" 0 (Reasoner.Stats.global ()).cache_hits;
  check_int "one grounding" 1 (Reasoner.Stats.global ()).groundings;
  let eng' = Reasoner.Engine.session ~extra:1 o_horn d in
  check "second lookup returns the same engine" true (eng == eng');
  check_int "second lookup hits" 1 (Reasoner.Stats.global ()).cache_hits;
  check_int "still one grounding" 1 (Reasoner.Stats.global ()).groundings;
  (* a different bound is a different session *)
  let _ = Reasoner.Engine.session ~extra:0 o_horn d in
  check_int "new bound misses" 2 (Reasoner.Stats.global ()).cache_misses;
  check_int "two cached sessions" 2 (Reasoner.Engine.cached_sessions ());
  (* many tuple checks, still one grounding per session *)
  List.iter
    (fun el -> ignore (Reasoner.Engine.certain_cq eng qc [ el ]))
    (Structure.Instance.domain_list d);
  check_int "tuple checks reuse the grounding" 2
    (Reasoner.Stats.global ()).groundings;
  check "solver was invoked" true ((Reasoner.Stats.global ()).solves > 0)

(* 3. The LRU cache evicts beyond its capacity. *)
let test_cache_eviction () =
  Reasoner.Engine.clear_cache ();
  Reasoner.Engine.set_cache_capacity 2;
  let d i = inst [ ("A", [ Printf.sprintf "a%d" i ]) ] in
  List.iter
    (fun i -> ignore (Reasoner.Engine.session ~extra:0 o_horn (d i)))
    [ 0; 1; 2; 3 ];
  check_int "capacity bounds the cache" 2 (Reasoner.Engine.cached_sessions ());
  Reasoner.Engine.set_cache_capacity 16;
  Reasoner.Engine.clear_cache ()

(* 4. Session stats aggregate only the engines the session forced. *)
let test_session_stats () =
  Reasoner.Engine.clear_cache ();
  let omq = Omq.of_cq o_horn qc in
  let d = inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]) ] in
  let s = Omq.open_session ~max_extra:2 omq d in
  check_int "unforced session has no counters" 0
    (Omq.Session.stats s).groundings;
  let answers = Omq.Session.certain_answers s in
  check "certain C at the chain head" true (List.mem [ e "a" ] answers);
  check "grounded at least one bound" true ((Omq.Session.stats s).groundings > 0)

(* 5. rewritten_certain is result-typed: single CQs evaluate, proper
   unions are rejected rather than raising. *)
let test_rewritten_result () =
  let d = inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]) ] in
  let single = Omq.of_cq o_horn qc in
  check "single CQ evaluates" true
    (Omq.rewritten_certain ~extra:2 single d [ e "a" ] = Ok true);
  let union = Omq.make o_horn qab in
  check "union is rejected" true
    (Omq.rewritten_certain ~extra:2 union d [ e "a" ] = Error `Not_single_cq)

(* 6. Streaming answers agree with the materialized list and short-
   circuit booleans. *)
let test_streaming () =
  let omq = Omq.of_cq o_horn qc in
  let d = inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]) ] in
  let s = Omq.open_session ~max_extra:1 omq d in
  check "seq agrees with list" true
    (List.of_seq (Omq.Session.certain_answers_seq s)
    = Omq.Session.certain_answers s);
  let bq = Omq.make o_horn (ucq ~name:"bool" [ cq ~name:"q" ~answer:[] [ ("A", [ v "x" ]) ] ]) in
  Alcotest.(check (list (list bool)))
    "boolean query answers via []" [ [] ]
    (List.map (List.map (fun _ -> true)) (Omq.certain_answers ~max_extra:1 bq d))

let suite =
  [
    QCheck_alcotest.to_alcotest test_engine_vs_bounded;
    Alcotest.test_case "cache_accounting" `Quick test_cache_accounting;
    Alcotest.test_case "cache_eviction" `Quick test_cache_eviction;
    Alcotest.test_case "session_stats" `Quick test_session_stats;
    Alcotest.test_case "rewritten_result" `Quick test_rewritten_result;
    Alcotest.test_case "streaming" `Quick test_streaming;
  ]
