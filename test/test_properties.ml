(* Cross-cutting property tests: random instances exercise the
   agreement between independent implementations (chase vs SAT engine vs
   Datalog rewriting, CSP solver vs encoding, unravelling invariants). *)

open Helpers
module F = Logic.Formula
module ESet = Structure.Element.Set

let check = Alcotest.(check bool)

(* 1. Chase agrees with the bounded engine on random Horn instances. *)
let horn_rules =
  [
    Reasoner.Chase.rule ~name:"exists"
      ~body:[ ("A", [ v "x" ]) ]
      ~head:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
      ();
    Reasoner.Chase.rule ~name:"propagate"
      ~body:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
      ~head:[ ("C", [ v "x" ]) ]
      ();
  ]

let test_chase_vs_bounded =
  QCheck.Test.make ~name:"chase agrees with bounded certain answers" ~count:20
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let signature = Logic.Signature.of_list [ ("A", 1); ("B", 1); ("R", 2) ] in
      let d = Structure.Randgen.nonempty_instance ~rng ~signature ~size:3 ~p:0.35 in
      let qc = cq ~name:"qc" ~answer:[ "x" ] [ ("C", [ v "x" ]) ] in
      List.for_all
        (fun el ->
          Bool.equal
            (Reasoner.Chase.certain_cq horn_rules d qc [ el ])
            (Reasoner.Bounded.certain_cq ~max_extra:2 o_horn d qc [ el ]))
        (Structure.Instance.domain_list d))

(* 2. The Theorem 8 encoding round-trips on random graphs. *)
let test_csp_encoding_roundtrip =
  QCheck.Test.make ~name:"K2 encoding consistency iff 2-colorable" ~count:12
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let template = Csp.Precolor.closure (Csp.Template.k_colouring 2) in
      let o = Csp.Encode.ontology template in
      let signature = Logic.Signature.of_list [ ("E", 2) ] in
      let g = Structure.Randgen.instance ~rng ~signature ~size:4 ~p:0.3 in
      (* make it an undirected simple graph without loops *)
      let g =
        List.fold_left
          (fun acc (f : Structure.Instance.fact) ->
            match f.args with
            | [ a; b ] when not (Structure.Element.equal a b) ->
                Structure.Instance.add_fact
                  (Structure.Instance.fact "E" [ b; a ])
                  (Structure.Instance.add_fact f acc)
            | _ -> acc)
          Structure.Instance.empty (Structure.Instance.facts g)
      in
      Bool.equal
        (Csp.Solve.solvable template g)
        (Reasoner.Bounded.is_consistent ~max_extra:2 o
           (Csp.Encode.lift_instance template g)))

(* 3. Unravellings: the up map is always a homomorphism onto D, and the
   unravelled instance is always guarded-tree decomposable. *)
let test_unravel_invariants =
  QCheck.Test.make ~name:"unravelling invariants" ~count:25
    QCheck.(pair (int_bound 100000) (int_range 1 3))
    (fun (seed, depth) ->
      let rng = Random.State.make [| seed |] in
      let signature = Logic.Signature.of_list [ ("R", 2); ("S", 2) ] in
      let d = Structure.Randgen.nonempty_instance ~rng ~signature ~size:3 ~p:0.4 in
      List.for_all
        (fun variant ->
          let u = Structure.Unravel.unravel ~variant ~depth d in
          let du = Structure.Unravel.instance u in
          Structure.Treedec.is_guarded_tree_decomposable du
          && Structure.Homomorphism.is_homomorphism
               (Structure.Unravel.up_map u) ~source:du ~target:d)
        [ Structure.Unravel.UGF; Structure.Unravel.UGC2 ])

(* 4. Random shallow uGF2 sentences are invariant under disjoint
   unions (Theorem 1, tested through the syntax-to-semantics path). *)
let random_ugf2_sentence rng =
  let atom1 r x = F.atom r [ v x ] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let unary () = pick [ "A"; "B" ] in
  let lit x = if Random.State.bool rng then atom1 (unary ()) x else F.Not (atom1 (unary ()) x) in
  let body_shapes =
    [
      (fun () -> F.Implies (lit "x", lit "x"));
      (fun () ->
        F.Implies
          ( lit "x",
            F.Exists ([ "y" ], F.And (F.atom "R" [ v "x"; v "y" ], lit "y")) ));
      (fun () ->
        F.Implies
          ( F.Exists ([ "y" ], F.And (F.atom "R" [ v "y"; v "x" ], lit "y")),
            F.Or (lit "x", lit "x") ));
    ]
  in
  forall_eq "x" ((pick body_shapes) ())

let test_random_ugf_invariant =
  QCheck.Test.make ~name:"random uGF2 sentences are disjoint-union invariant"
    ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s = random_ugf2_sentence rng in
      Gf.Syntax.is_ugf_sentence s
      && Gf.Invariance.appears_invariant ~samples:40 ~size:2 s)

(* 5. Scott reduction preserves uGF membership and consistency on
   random instances, for a random deep sentence. *)
let test_scott_random =
  QCheck.Test.make ~name:"Scott reduction: uGF, shallow, equiconsistent"
    ~count:10
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let deep =
        forall_eq "x"
          (F.Implies
             ( F.atom "A" [ v "x" ],
               F.Exists
                 ( [ "y" ],
                   F.And
                     ( F.atom "R" [ v "x"; v "y" ],
                       F.Exists
                         ( [ "z" ],
                           F.And
                             ( F.atom "R" [ v "y"; v "z" ],
                               (if Random.State.bool rng then F.atom "B" [ v "z" ]
                                else F.Not (F.atom "B" [ v "z" ])) ) ) ) ) ))
      in
      let o = Logic.Ontology.make [ deep ] in
      let o' = Gf.Scott.reduce_ontology o in
      let signature = Logic.Signature.of_list [ ("A", 1); ("B", 1); ("R", 2) ] in
      let d = Structure.Randgen.nonempty_instance ~rng ~signature ~size:2 ~p:0.4 in
      List.for_all
        (fun s -> Gf.Syntax.is_ugf_sentence s && Gf.Syntax.sentence_depth s <= 1)
        (Logic.Ontology.sentences o')
      && Bool.equal
           (Reasoner.Bounded.is_consistent ~max_extra:2 o d)
           (Reasoner.Bounded.is_consistent ~max_extra:2 o' d))

(* 6. Hom-universal models (Lemma 2 direction we can check): Horn
   ontologies admit them among the bounded models; the disjunctive one
   does not. *)
let test_hom_universal () =
  let d = inst [ ("A", [ "a" ]) ] in
  check "Horn: hom-universal exists" true
    (Material.Universal.admits_hom_universal ~extra:1 ~limit:100 o_horn d);
  let dd = inst [ ("D", [ "a" ]) ] in
  check "disjunctive: no hom-universal" false
    (Material.Universal.admits_hom_universal ~extra:0 ~limit:100 o_disj dd)

(* 7. Materializability coincides with the disjunction property on the
   paper's examples (Theorem 17). *)
let test_disjunction_materializability_agree () =
  let cases =
    [
      (o_horn, inst [ ("A", [ "a" ]) ], true);
      (o_disj, inst [ ("D", [ "a" ]) ], false);
    ]
  in
  List.iter
    (fun (o, d, expected) ->
      check "materializable_on" expected
        (Material.Materializability.materializable_on ~max_model_extra:1 o d);
      let violation =
        Material.Disjunction.find_violation o
          (Material.Disjunction.default_candidates o d)
      in
      check "disjunction property" expected (violation = None))
    cases

let suite =
  [
    QCheck_alcotest.to_alcotest test_chase_vs_bounded;
    QCheck_alcotest.to_alcotest test_csp_encoding_roundtrip;
    QCheck_alcotest.to_alcotest test_unravel_invariants;
    QCheck_alcotest.to_alcotest test_random_ugf_invariant;
    QCheck_alcotest.to_alcotest test_scott_random;
    Alcotest.test_case "hom_universal" `Quick test_hom_universal;
    Alcotest.test_case "disjunction_materializability" `Quick
      test_disjunction_materializability_agree;
  ]
