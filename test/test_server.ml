(* The serve daemon, driven end to end over a Unix socket. The daemon
   runs on a POSIX thread of the test process (its worker domains are
   its own); clients are real sockets through Omqd.Client.

   The load-bearing assertions: a served answer is byte-identical to
   the direct (sequential) evaluation's rendering; a budget-tripped
   request degrades to a typed partial without disturbing a concurrent
   client; malformed and oversized frames get typed rejections and the
   connection stays usable; shutdown is clean. *)

module P = Omq.Protocol

let check_str = Alcotest.(check string)

let onto = "Hand << exists hasFinger . Thumb"
let data = "Hand(h)\nThumb(t)\nhasFinger(h, t)"
let query = "q(x) <- Thumb(x)"

let open_req =
  P.Open_session { ontology = onto; data; query; max_extra = 2 }

let eval_req ?(budget = P.no_budget) session =
  P.Eval { session; budget; want_stats = false }

(* The sequential ground truth, rendered through the same codec the
   daemon uses — server responses must equal this byte for byte. *)
let direct_eval ?(extra = "") () =
  let tbox = Dl.Parser.parse_tbox onto in
  let d = Structure.Parse.instance_of_string (data ^ "\n" ^ extra) in
  let q = Query.Parse.ucq_of_string query in
  let omq = Omq.of_tbox tbox q in
  let session = Omq.open_session ~max_extra:2 omq d in
  let answers = Omq.Session.certain_answers session in
  P.Evaled
    {
      result =
        {
          P.consistent = true;
          boolean = false;
          tuples =
            List.map
              (List.map (fun e -> Fmt.str "%a" Structure.Element.pp e))
              answers;
        };
      stats = None;
    }

(* ---------------------------------------------------------------- *)
(* Daemon-on-a-thread harness *)

let counter = ref 0

let shutdown_daemon addr =
  match Omqd.Client.connect ~attempts:1 addr with
  | Error _ -> ()
  | Ok c ->
      ignore (Omqd.Client.call c P.Shutdown);
      Omqd.Client.close c

let with_daemon ?(caps = P.no_budget)
    ?(max_frame = Omqd.Daemon.default_max_frame) ?(jobs = 2) f =
  incr counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "omqd-test-%d-%d.sock" (Unix.getpid ()) !counter)
  in
  let addr = Omqd.Daemon.Unix_path path in
  let cfg = Omqd.Daemon.config ~addr ~jobs ~caps ~max_frame () in
  let result = ref (Ok ()) in
  let th = Thread.create (fun () -> result := Omqd.Daemon.run cfg) () in
  let out = try Ok (f addr) with e -> Error e in
  shutdown_daemon addr;
  Thread.join th;
  (match !result with
  | Ok () -> ()
  | Error m -> Alcotest.failf "daemon failed: %s" m);
  match out with Ok v -> v | Error e -> raise e

let connect_exn addr =
  match Omqd.Client.connect addr with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let call_exn c req =
  match Omqd.Client.call c req with
  | Ok r -> r
  | Error m -> Alcotest.failf "call: %s" m

let raw_exn c line =
  match Omqd.Client.raw c line with
  | Ok r -> r
  | Error m -> Alcotest.failf "raw: %s" m

let open_exn c =
  match call_exn c open_req with
  | P.Opened { session } -> session
  | r -> Alcotest.failf "open failed: %s" (P.render_response r)

(* ---------------------------------------------------------------- *)

let test_eval_matches_direct () =
  with_daemon @@ fun addr ->
  let c = connect_exn addr in
  let sid = open_exn c in
  let resp = call_exn c (eval_req sid) in
  check_str "served answer equals sequential rendering"
    (P.render_response (direct_eval ()))
    (P.render_response resp);
  (* answers are stable across repeat evals on the warm session *)
  let resp' = call_exn c (eval_req sid) in
  check_str "second eval identical"
    (P.render_response resp)
    (P.render_response resp');
  Omqd.Client.close c

let test_insert_facts () =
  with_daemon @@ fun addr ->
  let c = connect_exn addr in
  let sid = open_exn c in
  (match call_exn c (P.Insert_facts { session = sid; facts = "Thumb(u)" }) with
  | P.Inserted { session; total_facts } ->
      Alcotest.(check int) "same session id" sid session;
      Alcotest.(check int) "union cardinality" 4 total_facts
  | r -> Alcotest.failf "insert failed: %s" (P.render_response r));
  let resp = call_exn c (eval_req sid) in
  check_str "post-insert answers equal direct evaluation of the union"
    (P.render_response (direct_eval ~extra:"Thumb(u)" ()))
    (P.render_response resp);
  Omqd.Client.close c

(* The v2 op: retracting the inserted facts must return the session to
   answers byte-identical to a cold session on the original data. *)
let test_retract_facts () =
  with_daemon @@ fun addr ->
  let c = connect_exn addr in
  let sid = open_exn c in
  (match call_exn c (P.Insert_facts { session = sid; facts = "Thumb(u)" }) with
  | P.Inserted _ -> ()
  | r -> Alcotest.failf "insert failed: %s" (P.render_response r));
  (match call_exn c (P.Retract_facts { session = sid; facts = "Thumb(u)" }) with
  | P.Retracted { session; total_facts } ->
      Alcotest.(check int) "same session id" sid session;
      Alcotest.(check int) "back to the original cardinality" 3 total_facts
  | r -> Alcotest.failf "retract failed: %s" (P.render_response r));
  let resp = call_exn c (eval_req sid) in
  check_str "post-retract answers equal direct evaluation of the original"
    (P.render_response (direct_eval ()))
    (P.render_response resp);
  (* retracting an absent fact is a no-op, not an error *)
  (match
     call_exn c (P.Retract_facts { session = sid; facts = "Thumb(nobody)" })
   with
  | P.Retracted { total_facts; _ } ->
      Alcotest.(check int) "no-op retract keeps cardinality" 3 total_facts
  | r -> Alcotest.failf "no-op retract failed: %s" (P.render_response r));
  (* unknown session gets the typed rejection *)
  (match call_exn c (P.Retract_facts { session = 999; facts = "Thumb(u)" }) with
  | P.Rejected { kind = P.Unknown_session; _ } -> ()
  | r -> Alcotest.failf "expected unknown_session: %s" (P.render_response r));
  Omqd.Client.close c

(* Two genuinely concurrent clients on their own sessions: one keeps
   tripping a fuel budget, the other keeps getting complete answers
   byte-identical to the sequential evaluation. *)
let test_budget_isolation () =
  with_daemon ~jobs:2 @@ fun addr ->
  let expected = P.render_response (direct_eval ()) in
  let rounds = 15 in
  let verdicts = [| "pending"; "pending" |] in
  let tripper () =
    let c = connect_exn addr in
    let sid = open_exn c in
    let budget = { P.no_budget with fuel = Some 1 } in
    let bad = ref None in
    for _ = 1 to rounds do
      match Omqd.Client.call c (eval_req ~budget sid) with
      | Ok (P.Partial { reason = Reasoner.Budget.Fuel; _ }) -> ()
      | Ok r -> bad := Some (P.render_response r)
      | Error m -> bad := Some m
    done;
    Omqd.Client.close c;
    verdicts.(0) <- (match !bad with None -> "ok" | Some m -> "tripper: " ^ m)
  in
  let straight () =
    let c = connect_exn addr in
    let sid = open_exn c in
    let bad = ref None in
    for _ = 1 to rounds do
      match Omqd.Client.call c (eval_req sid) with
      | Ok r when P.render_response r = expected -> ()
      | Ok r -> bad := Some (P.render_response r)
      | Error m -> bad := Some m
    done;
    Omqd.Client.close c;
    verdicts.(1) <- (match !bad with None -> "ok" | Some m -> "straight: " ^ m)
  in
  let t1 = Thread.create tripper () in
  let t2 = Thread.create straight () in
  Thread.join t1;
  Thread.join t2;
  check_str "tripping client always got the typed partial" "ok" verdicts.(0);
  check_str "concurrent client unaffected, answers byte-identical" "ok"
    verdicts.(1)

let test_malformed_then_valid () =
  with_daemon @@ fun addr ->
  let c = connect_exn addr in
  (match P.parse_response (raw_exn c "this is not json") with
  | Ok (None, P.Rejected { kind = P.Bad_frame; _ }) -> ()
  | _ -> Alcotest.fail "expected a bad_frame rejection");
  (match P.parse_response (raw_exn c "{\"v\":99,\"id\":3,\"op\":\"stats\"}") with
  | Ok (Some 3, P.Rejected { kind = P.Bad_version; _ }) -> ()
  | _ -> Alcotest.fail "expected a bad_version rejection echoing the id");
  (* the connection survives both *)
  (match call_exn c P.Stats with
  | P.Server_stats { errors; _ } ->
      Alcotest.(check bool) "errors counted" true (errors >= 2)
  | r -> Alcotest.failf "stats failed: %s" (P.render_response r));
  Omqd.Client.close c

let test_oversized_frame () =
  with_daemon ~max_frame:64 @@ fun addr ->
  let c = connect_exn addr in
  let big =
    Printf.sprintf "{\"v\":1,\"op\":\"classify\",\"ontology\":\"%s\"}"
      (String.make 200 'x')
  in
  (match P.parse_response (raw_exn c big) with
  | Ok (None, P.Rejected { kind = P.Frame_too_large; _ }) -> ()
  | _ -> Alcotest.fail "expected a frame_too_large rejection");
  (* small frames still served on the same connection *)
  (match call_exn c P.Stats with
  | P.Server_stats _ -> ()
  | r -> Alcotest.failf "stats failed: %s" (P.render_response r));
  Omqd.Client.close c

let test_unknown_session_and_bad_input () =
  with_daemon @@ fun addr ->
  let c = connect_exn addr in
  (match call_exn c (eval_req 999) with
  | P.Rejected { kind = P.Unknown_session; _ } -> ()
  | r -> Alcotest.failf "expected unknown_session: %s" (P.render_response r));
  (match
     call_exn c
       (P.Open_session
          { ontology = "Hand <<"; data = ""; query; max_extra = 2 })
   with
  | P.Rejected { kind = P.Bad_request; message } ->
      Alcotest.(check bool) "parse error names the ontology" true
        (String.length message > 0)
  | r -> Alcotest.failf "expected bad_request: %s" (P.render_response r));
  Omqd.Client.close c

let test_close_and_stats () =
  with_daemon @@ fun addr ->
  let c = connect_exn addr in
  let sid = open_exn c in
  (match call_exn c P.Stats with
  | P.Server_stats { sessions; _ } ->
      Alcotest.(check int) "one live session" 1 sessions
  | r -> Alcotest.failf "stats failed: %s" (P.render_response r));
  (match call_exn c (P.Close_session { session = sid }) with
  | P.Closed { session } -> Alcotest.(check int) "closed id" sid session
  | r -> Alcotest.failf "close failed: %s" (P.render_response r));
  (match call_exn c (P.Close_session { session = sid }) with
  | P.Rejected { kind = P.Unknown_session; _ } -> ()
  | r -> Alcotest.failf "double close should fail: %s" (P.render_response r));
  (match call_exn c P.Stats with
  | P.Server_stats { sessions; served; _ } ->
      Alcotest.(check int) "no live sessions" 0 sessions;
      Alcotest.(check bool) "served counts responses" true (served >= 4)
  | r -> Alcotest.failf "stats failed: %s" (P.render_response r));
  Omqd.Client.close c

let test_clean_shutdown () =
  with_daemon @@ fun addr ->
  let c = connect_exn addr in
  (match call_exn c P.Shutdown with
  | P.Shutdown_ack -> ()
  | r -> Alcotest.failf "expected shutdown ack: %s" (P.render_response r));
  Omqd.Client.close c
(* with_daemon joins the thread and fails the test unless run returned
   Ok () — that is the clean-shutdown assertion. *)

let test_loadgen () =
  with_daemon ~jobs:2 @@ fun addr ->
  let expected = P.render_response (direct_eval ()) in
  let spec =
    {
      Omqd.Loadgen.open_req;
      make_eval = (fun ~session -> eval_req session);
      expected = Some expected;
    }
  in
  match Omqd.Loadgen.run addr [ spec; spec ] ~queries:4 with
  | Error m -> Alcotest.failf "loadgen: %s" m
  | Ok s ->
      Alcotest.(check int) "all evals answered" 8 s.Omqd.Loadgen.total;
      Alcotest.(check int) "all complete" 8 s.Omqd.Loadgen.ok;
      Alcotest.(check int) "no mismatches" 0 s.Omqd.Loadgen.mismatches

(* A client whose open is rejected ends that one client; the rest of
   the fleet finishes and the run still returns Ok with the failure
   visible in the counters — chaos benches measure degradation, they
   must not abort. *)
let test_loadgen_counts_failures () =
  with_daemon ~jobs:2 @@ fun addr ->
  let good =
    {
      Omqd.Loadgen.open_req;
      make_eval = (fun ~session -> eval_req session);
      expected = Some (P.render_response (direct_eval ()));
    }
  in
  let bad =
    {
      good with
      Omqd.Loadgen.open_req =
        P.Open_session
          { ontology = "Hand <<"; data = ""; query; max_extra = 2 };
    }
  in
  match Omqd.Loadgen.run addr [ good; bad ] ~queries:3 with
  | Error m -> Alcotest.failf "loadgen: %s" m
  | Ok s ->
      Alcotest.(check int) "both specs reported" 2 s.Omqd.Loadgen.clients;
      Alcotest.(check int) "good client answered" 3 s.Omqd.Loadgen.total;
      Alcotest.(check int) "bad open counted as an error" 1 s.Omqd.Loadgen.errors;
      Alcotest.(check int) "no io failures" 0 s.Omqd.Loadgen.io_failures;
      Alcotest.(check int) "no mismatches" 0 s.Omqd.Loadgen.mismatches

let suite =
  [
    Alcotest.test_case "served eval equals direct rendering" `Quick
      test_eval_matches_direct;
    Alcotest.test_case "insert_facts answers like the union" `Quick
      test_insert_facts;
    Alcotest.test_case "retract_facts answers like the difference" `Quick
      test_retract_facts;
    Alcotest.test_case "budget trip is isolated per request" `Quick
      test_budget_isolation;
    Alcotest.test_case "malformed frames get typed rejections" `Quick
      test_malformed_then_valid;
    Alcotest.test_case "oversized frames get typed rejections" `Quick
      test_oversized_frame;
    Alcotest.test_case "unknown session / unparsable input" `Quick
      test_unknown_session_and_bad_input;
    Alcotest.test_case "close_session and server stats" `Quick
      test_close_and_stats;
    Alcotest.test_case "clean shutdown" `Quick test_clean_shutdown;
    Alcotest.test_case "loadgen drives concurrent clients" `Quick test_loadgen;
    Alcotest.test_case "loadgen counts per-client failures" `Quick
      test_loadgen_counts_failures;
  ]
