(* The incremental update engine, at every layer:

   - Datalog≠: random insert/retract interleavings on random instances,
     the delta-maintained state must answer identically to [evaluate]
     from scratch after every step — under both the planner-backed and
     the naive binding paths, for counting (nonrecursive) and DRed
     (recursive) deletion strategies alike.
   - Reasoner.Engine: dynamic (assumption-backed) engines answer like a
     fresh engine after each delta, and refuse ([`Needs_rebuild]) the
     cases the grounding cannot absorb.
   - Omq.Session: updatable sessions delta-maintain or reopen, and
     either way answer like a session opened cold on the net instance. *)

open Helpers

module S = Datalog.Seminaive

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------------------------------------------------------- *)
(* Programs spanning both deletion strategies *)

let nonrec_join =
  (* goal(x) <- E(x,y), A(y), x != y : two-stage, nonrecursive *)
  Datalog.Program.make ~goal:"goal"
    [
      Datalog.Program.rule
        ~head:("S", [ v "x"; v "y" ])
        ~body:
          [
            Datalog.Program.Pos ("E", [ v "x"; v "y" ]);
            Datalog.Program.Pos ("A", [ v "y" ]);
          ];
      Datalog.Program.rule
        ~head:("goal", [ v "x" ])
        ~body:
          [
            Datalog.Program.Pos ("S", [ v "x"; v "y" ]);
            Datalog.Program.Neq (v "x", v "y");
          ];
    ]

let tc =
  (* transitive closure: linear recursion *)
  Datalog.Program.make ~goal:"goal"
    [
      Datalog.Program.rule
        ~head:("T", [ v "x"; v "y" ])
        ~body:[ Datalog.Program.Pos ("E", [ v "x"; v "y" ]) ];
      Datalog.Program.rule
        ~head:("T", [ v "x"; v "z" ])
        ~body:
          [
            Datalog.Program.Pos ("T", [ v "x"; v "y" ]);
            Datalog.Program.Pos ("E", [ v "y"; v "z" ]);
          ];
      Datalog.Program.rule
        ~head:("goal", [ v "x"; v "y" ])
        ~body:[ Datalog.Program.Pos ("T", [ v "x"; v "y" ]) ];
    ]

let sg =
  (* same-generation: nonlinear recursion *)
  Datalog.Program.make ~goal:"goal"
    [
      Datalog.Program.rule
        ~head:("SG", [ v "x"; v "x" ])
        ~body:[ Datalog.Program.Pos ("A", [ v "x" ]) ];
      Datalog.Program.rule
        ~head:("SG", [ v "x"; v "y" ])
        ~body:
          [
            Datalog.Program.Pos ("E", [ v "x"; v "u" ]);
            Datalog.Program.Pos ("SG", [ v "u"; v "w" ]);
            Datalog.Program.Pos ("E", [ v "y"; v "w" ]);
          ];
      Datalog.Program.rule
        ~head:("goal", [ v "x"; v "y" ])
        ~body:[ Datalog.Program.Pos ("SG", [ v "x"; v "y" ]) ];
    ]

let test_strategy_dispatch () =
  check "join is nonrecursive" false (S.recursive nonrec_join);
  check "tc is recursive" true (S.recursive tc);
  check "sg is recursive" true (S.recursive sg);
  let d = inst [ ("E", [ "a"; "b" ]); ("A", [ "b" ]) ] in
  check "join counts" true (S.state_strategy (S.prepare nonrec_join d) = S.Counting);
  check "tc dreds" true (S.state_strategy (S.prepare tc d) = S.Dred)

(* ---------------------------------------------------------------- *)
(* Equivalence property: incremental == from-scratch after every step *)

let universe = Array.init 5 (fun i -> Printf.sprintf "n%d" i)

let gen_fact rng : Structure.Instance.fact =
  let el () = e universe.(Random.State.int rng (Array.length universe)) in
  if Random.State.bool rng then { rel = "E"; args = [ el (); el () ] }
  else { rel = "A"; args = [ el () ] }

(* One step: insert or retract a small batch of random facts (retracts
   are drawn half from the current EDB so they actually hit). *)
let step rng st edb =
  let batch = List.init (1 + Random.State.int rng 3) (fun _ -> gen_fact rng) in
  if Random.State.bool rng then
    let st, _ = S.insert st batch in
    (st, List.fold_left (fun d f -> Structure.Instance.add_fact f d) edb batch)
  else
    let present = Structure.Instance.facts edb in
    let batch =
      if present = [] || Random.State.bool rng then batch
      else List.nth present (Random.State.int rng (List.length present)) :: batch
    in
    let st, _ = S.retract st batch in
    (st, List.fold_left (fun d f -> Structure.Instance.remove_fact f d) edb batch)

let interleaving_agrees program planner =
  QCheck.Test.make ~count:60
    ~name:
      (Printf.sprintf "insert/retract interleaving (%s, planner %b)"
         (if S.recursive program then "recursive" else "nonrecursive")
         planner)
    QCheck.(int_bound 100000)
    (fun seed ->
      Structure.Eval.with_planner planner @@ fun () ->
      let rng = Random.State.make [| seed |] in
      let edb0 =
        Structure.Instance.of_facts
          (List.init (Random.State.int rng 8) (fun _ -> gen_fact rng))
      in
      let st = ref (S.prepare program edb0) in
      let edb = ref edb0 in
      let ok = ref true in
      for _ = 1 to 6 do
        let st', edb' = step rng !st !edb in
        st := st';
        edb := edb';
        ok :=
          !ok
          && Structure.Instance.equal (S.state_edb st') edb'
          && Structure.Instance.equal (S.state_derived st')
               (S.evaluate program edb')
          && S.state_answers st' = S.answers program edb'
      done;
      !ok)

(* The changed flag must be exact: it is what tells a caller whether
   cached answers can be kept. *)
let test_changed_flag () =
  let d = inst [ ("E", [ "a"; "b" ]); ("A", [ "b" ]) ] in
  let st = S.prepare nonrec_join d in
  let st, changed = S.insert st [ { rel = "E"; args = [ e "b"; e "a" ] } ] in
  check "E(b,a) alone adds no answer (A(a) missing)" false changed;
  let st, changed = S.insert st [ { rel = "A"; args = [ e "a" ] } ] in
  check "A(a) completes goal(b)" true changed;
  let st, changed = S.retract st [ { rel = "A"; args = [ e "a" ] } ] in
  check "retracting A(a) loses goal(b)" true changed;
  let _, changed = S.retract st [ { rel = "A"; args = [ e "zzz" ] } ] in
  check "absent fact is a no-op" false changed

(* ---------------------------------------------------------------- *)
(* Reasoner.Engine: dynamic sessions *)

let fact rel args : Structure.Instance.fact = { rel; args = List.map e args }
let qc = ucq [ cq ~name:"qc" ~answer:[ "x" ] [ ("C", [ v "x" ]) ] ]

let horn_data = inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]) ]

let engine_answers eng =
  List.filter
    (fun x -> Reasoner.Engine.certain_ucq eng qc [ x ])
    (List.map e [ "a"; "b" ])

let fresh_answers d =
  engine_answers (Reasoner.Engine.create ~extra:2 o_horn d)

let test_engine_delta () =
  let eng = Reasoner.Engine.create ~dynamic:true ~extra:2 o_horn horn_data in
  check "dynamic" true (Reasoner.Engine.is_dynamic eng);
  check "static by default" false
    (Reasoner.Engine.is_dynamic (Reasoner.Engine.create ~extra:2 o_horn horn_data));
  check "base answers agree" true
    (engine_answers eng = fresh_answers horn_data);
  (* insert over the existing domain: delta *)
  let b_fact = fact "B" [ "b" ] in
  check "insert B(b) is a delta" true
    (Reasoner.Engine.insert_facts eng [ b_fact ] = `Delta);
  let d1 = Structure.Instance.add_fact b_fact horn_data in
  check "instance tracked" true
    (Structure.Instance.equal (Reasoner.Engine.instance eng) d1);
  check "post-insert answers agree" true (engine_answers eng = fresh_answers d1);
  (* retract it again: b keeps R(a,b), so no element vacates *)
  check "retract B(b) is a delta" true
    (Reasoner.Engine.retract_facts eng [ b_fact ] = `Delta);
  check "post-retract answers agree" true
    (engine_answers eng = fresh_answers horn_data);
  check "consistent throughout" true (Reasoner.Engine.is_consistent eng)

let test_engine_needs_rebuild () =
  let eng = Reasoner.Engine.create ~dynamic:true ~extra:2 o_horn horn_data in
  check "new element forces rebuild" true
    (Reasoner.Engine.insert_facts eng [ fact "A" [ "fresh" ] ] = `Needs_rebuild);
  check "vacating retraction forces rebuild" true
    (Reasoner.Engine.retract_facts eng [ fact "R" [ "a"; "b" ] ]
    = `Needs_rebuild);
  check "rebuild refusals leave the engine intact" true
    (Structure.Instance.equal (Reasoner.Engine.instance eng) horn_data);
  let static = Reasoner.Engine.create ~extra:2 o_horn horn_data in
  check "static engines never delta" true
    (Reasoner.Engine.insert_facts static [ fact "B" [ "b" ] ] = `Needs_rebuild)

(* ---------------------------------------------------------------- *)
(* Omq.Session: updatable sessions *)

let omq_c = Omq.make o_horn qc

let session_agrees s d =
  Omq.Session.certain_answers s = Omq.certain_answers ~max_extra:2 omq_c d
  && Structure.Instance.equal (Omq.Session.instance s) d

let test_session_updates () =
  let s = Omq.open_session ~max_extra:2 ~updatable:true omq_c horn_data in
  check "updatable" true (Omq.Session.updatable s);
  check "base" true (session_agrees s horn_data);
  (* force the engines first so the delta path actually maintains them *)
  ignore (Omq.Session.certain_answers s);
  let b_fact = fact "B" [ "b" ] in
  let s1, how1 = Omq.Session.insert_facts s [ b_fact ] in
  check "in-domain insert is a delta" true (how1 = `Delta);
  check "insert agrees with cold session" true
    (session_agrees s1 (Structure.Instance.add_fact b_fact horn_data));
  let s2, how2 = Omq.Session.retract_facts s1 [ b_fact ] in
  check "non-vacating retract is a delta" true (how2 = `Delta);
  check "retract agrees with cold session" true (session_agrees s2 horn_data);
  (* new element: reopened, but still correct *)
  let c_fact = fact "A" [ "c" ] in
  let s3, how3 = Omq.Session.insert_facts s2 [ c_fact ] in
  check "new-element insert reopens" true (how3 = `Reopen);
  check "reopen agrees" true
    (session_agrees s3 (Structure.Instance.add_fact c_fact horn_data));
  check "reopened session stays updatable" true (Omq.Session.updatable s3);
  (* vacating retraction: reopened *)
  let s4, how4 = Omq.Session.retract_facts s3 [ c_fact ] in
  check "vacating retract reopens" true (how4 = `Reopen);
  check "vacating retract agrees" true (session_agrees s4 horn_data);
  (* non-updatable sessions always reopen *)
  let s' = Omq.open_session ~max_extra:2 omq_c horn_data in
  let _, how' = Omq.Session.insert_facts s' [ b_fact ] in
  check "non-updatable insert reopens" true (how' = `Reopen)

let test_session_retract_to_empty () =
  let s = Omq.open_session ~max_extra:2 ~updatable:true omq_c horn_data in
  let s, _ =
    Omq.Session.retract_facts s
      [ fact "A" [ "a" ]; fact "R" [ "a"; "b" ] ]
  in
  check_int "all facts gone" 0
    (Structure.Instance.cardinal (Omq.Session.instance s));
  check "empty instance answers" true
    (Omq.Session.certain_answers s = [])

let suite =
  [
    Alcotest.test_case "strategy dispatch" `Quick test_strategy_dispatch;
    QCheck_alcotest.to_alcotest (interleaving_agrees nonrec_join true);
    QCheck_alcotest.to_alcotest (interleaving_agrees nonrec_join false);
    QCheck_alcotest.to_alcotest (interleaving_agrees tc true);
    QCheck_alcotest.to_alcotest (interleaving_agrees tc false);
    QCheck_alcotest.to_alcotest (interleaving_agrees sg true);
    Alcotest.test_case "changed flag" `Quick test_changed_flag;
    Alcotest.test_case "engine delta" `Quick test_engine_delta;
    Alcotest.test_case "engine needs_rebuild" `Quick test_engine_needs_rebuild;
    Alcotest.test_case "session updates" `Quick test_session_updates;
    Alcotest.test_case "session retract to empty" `Quick
      test_session_retract_to_empty;
  ]
