open Helpers

let check = Alcotest.(check bool)

let omq_union =
  Omq.of_cq o_hand_union
    (cq ~name:"thumb" ~answer:[ "x" ] [ ("Thumb", [ v "x" ]) ])

let hand_instance =
  inst
    (("Hand", [ "h" ])
    :: List.map (fun f -> ("hasFinger", [ "h"; f ])) [ "f1"; "f2"; "f3"; "f4"; "f5" ])

let test_certain_answers () =
  check "consistent" true (Omq.is_consistent omq_union hand_instance);
  Alcotest.(check int) "no certain thumbs" 0
    (List.length (Omq.certain_answers ~max_extra:1 omq_union hand_instance))

let test_classify () =
  let ev = Omq.classify omq_union in
  check "dichotomy fragment" true
    (ev.Classify.Landscape.status = Classify.Landscape.Dichotomy);
  match Omq.fragment omq_union with
  | Some d -> check "uGC2" true d.Gf.Fragment.counting
  | None -> Alcotest.fail "expected a uGC2 descriptor"

let test_materializability () =
  check "union not materializable on the hand" false
    (Omq.materializable_on ~max_model_extra:1 ~max_extra:1 omq_union hand_instance)

let test_rewritten () =
  let omq = Omq.of_cq o_horn (cq ~name:"qc" ~answer:[ "x" ] [ ("C", [ v "x" ]) ]) in
  let d = inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]) ] in
  let ok = Alcotest.(check (result bool reject)) in
  ok "rewriting agrees" (Ok true) (Omq.rewritten_certain ~extra:2 omq d [ e "a" ]);
  ok "and refutes" (Ok false) (Omq.rewritten_certain ~extra:2 omq d [ e "b" ])

let suite =
  [
    Alcotest.test_case "certain_answers" `Quick test_certain_answers;
    Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "materializability" `Quick test_materializability;
    Alcotest.test_case "rewritten" `Quick test_rewritten;
  ]
