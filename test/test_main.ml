let () =
  Alcotest.run "omq-guarded"
    [
      ("logic", Test_logic.suite);
      ("structure", Test_structure.suite);
      ("eval", Test_eval.suite);
      ("gf", Test_gf.suite);
      ("query", Test_query.suite);
      ("dl", Test_dl.suite);
      ("reasoner", Test_reasoner.suite);
      ("ground", Test_ground.suite);
      ("engine", Test_engine.suite);
      ("budget", Test_budget.suite);
      ("datalog", Test_datalog.suite);
      ("incremental", Test_incremental.suite);
      ("material", Test_material.suite);
      ("csp", Test_csp.suite);
      ("sat22", Test_sat22.suite);
      ("tm", Test_tm.suite);
      ("rewriting", Test_rewriting.suite);
      ("classify", Test_classify.suite);
      ("bioportal", Test_bioportal.suite);
      ("omq", Test_omq.suite);
      ("obs", Test_obs.suite);
      ("parallel", Test_parallel.suite);
      ("properties", Test_properties.suite);
      ("protocol", Test_protocol.suite);
      ("server", Test_server.suite);
      ("telemetry", Test_telemetry.suite);
      ("chaos", Test_chaos.suite);
    ]
