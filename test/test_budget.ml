(* The resource governor: typed degradation and deterministic fault
   injection. The central property: tripping a budget at ANY
   cancellation point (a) surfaces as a typed outcome, never an escaped
   exception, and (b) never corrupts shared state — re-solving with the
   same (possibly cached, possibly mid-trip interrupted) sessions and no
   budget gives exactly the unbudgeted verdict. *)

open Helpers
module Budget = Reasoner.Budget

let check = Alcotest.check
let element = Alcotest.testable Structure.Element.pp Structure.Element.equal
let answers = Alcotest.(list (list element))

(* A disjunctive workload: every D-element is certainly A-or-B, so the
   UCQ has three answers and the SAT core does real case splitting. *)
let omq_disj =
  Omq.make o_disj (Query.Parse.ucq_of_string "q(x) <- A(x) | q(x) <- B(x)")

let d_disj = inst [ ("D", [ "a" ]); ("D", [ "b" ]); ("A", [ "c" ]) ]

let eval budget =
  Omq.certain_answers_within budget ~max_extra:1 omq_disj d_disj

let fresh_expected () =
  Reasoner.Engine.clear_cache ();
  Omq.certain_answers ~max_extra:1 omq_disj d_disj

let subset_of ~expected certified =
  List.for_all (fun t -> List.mem t expected) certified

(* --------------------------------------------------------------- *)

let test_unbudgeted_unchanged () =
  let expected = fresh_expected () in
  check Alcotest.bool "has answers" true (expected <> []);
  Reasoner.Engine.clear_cache ();
  match eval Budget.unlimited with
  | `Ok a -> check answers "unlimited budget = plain run" expected a
  | `Timeout _ | `Out_of_fuel _ -> Alcotest.fail "unlimited budget tripped"

let test_observer_counts () =
  Reasoner.Engine.clear_cache ();
  let obs = Budget.observer () in
  (match eval obs with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "observer must never trip");
  check Alcotest.bool "workload passes checkpoints" true
    (Budget.checkpoints obs > 0);
  check Alcotest.int "unlimited never counts" 0
    (Budget.checkpoints Budget.unlimited)

(* THE sweep: inject exhaustion at every cancellation point the
   workload passes. Each injection must (a) produce a typed outcome
   whose certified tuples are sound, and (b) leave every shared
   structure (engine LRU cache, solver state, grounder tables) able to
   answer the unbudgeted query exactly. *)
let test_inject_everywhere () =
  let expected = fresh_expected () in
  Reasoner.Engine.clear_cache ();
  let obs = Budget.observer () in
  ignore (eval obs);
  let n = Budget.checkpoints obs in
  check Alcotest.bool "enough checkpoints to sweep" true (n > 10);
  for i = 0 to n - 1 do
    Reasoner.Engine.clear_cache ();
    let b = Budget.inject_after i in
    (match eval b with
    | `Ok a ->
        (* the trip can only be missed if caching shifted the path;
           the answer must still be exact *)
        check answers (Printf.sprintf "inject %d completed" i) expected a
    | `Timeout _ -> Alcotest.failf "inject %d tripped with Timeout" i
    | `Out_of_fuel p ->
        check Alcotest.bool
          (Printf.sprintf "inject %d: certified sound" i)
          true
          (subset_of ~expected p.Omq.Session.certified));
    (* session reuse AFTER the trip, without clearing the cache: the
       interrupted engines must answer like fresh ones *)
    let after = Omq.certain_answers ~max_extra:1 omq_disj d_disj in
    check answers
      (Printf.sprintf "inject %d: post-trip resolve exact" i)
      expected after
  done

let test_inject_timeout_reason () =
  Reasoner.Engine.clear_cache ();
  match eval (Budget.inject_after ~reason:Budget.Timeout 5) with
  | `Timeout _ -> ()
  | `Ok _ -> Alcotest.fail "expected a trip"
  | `Out_of_fuel _ -> Alcotest.fail "expected a Timeout trip"

let test_expired_deadline () =
  Reasoner.Engine.clear_cache ();
  let trips0 = (Reasoner.Stats.global ()).Reasoner.Stats.budget_timeouts in
  (match eval (Budget.create ~timeout:0.0 ()) with
  | `Timeout p ->
      check Alcotest.bool "nothing certified under a dead deadline" true
        (p.Omq.Session.certified = [])
  | `Ok _ -> Alcotest.fail "a 0-second deadline must trip"
  | `Out_of_fuel _ -> Alcotest.fail "deadline trips are Timeout");
  check Alcotest.bool "timeout trip counted in stats" true
    ((Reasoner.Stats.global ()).Reasoner.Stats.budget_timeouts > trips0)

let test_fuel_exhaustion () =
  Reasoner.Engine.clear_cache ();
  let trips0 = (Reasoner.Stats.global ()).Reasoner.Stats.budget_fuel_trips in
  (match eval (Budget.create ~fuel:1 ()) with
  | `Out_of_fuel _ -> ()
  | `Ok _ -> Alcotest.fail "1 unit of fuel must not complete the eval"
  | `Timeout _ -> Alcotest.fail "fuel trips are Out_of_fuel");
  check Alcotest.bool "fuel trip counted in stats" true
    ((Reasoner.Stats.global ()).Reasoner.Stats.budget_fuel_trips > trips0)

let test_clause_cap () =
  Reasoner.Engine.clear_cache ();
  match eval (Budget.create ~max_clauses:5 ()) with
  | `Out_of_fuel _ -> ()
  | `Ok _ -> Alcotest.fail "a 5-clause cap must not fit the grounding"
  | `Timeout _ -> Alcotest.fail "clause-cap trips are Out_of_fuel"

(* --------------------------------------------------------------- *)
(* Bounded: the typed deepening loops report completed bounds. *)

let qa = cq ~answer:[ "x" ] [ ("A", [ v "x" ]) ]

let test_bounded_try () =
  let d = inst [ ("A", [ "a" ]) ] in
  (match Reasoner.Bounded.try_certain_cq Budget.unlimited o_disj d qa [ e "a" ] with
  | `Ok true -> ()
  | _ -> Alcotest.fail "A(a) is certain");
  (* sweep the bounded search too: partial payloads are completed
     bounds, hence between 0 and max_extra+1 *)
  let obs = Budget.observer () in
  ignore (Reasoner.Bounded.try_certain_cq obs o_disj d qa [ e "a" ]);
  let n = Budget.checkpoints obs in
  check Alcotest.bool "bounded workload passes checkpoints" true (n > 0);
  for i = 0 to n - 1 do
    match
      Reasoner.Bounded.try_certain_cq (Budget.inject_after i) o_disj d qa
        [ e "a" ]
    with
    | `Ok true -> ()
    | `Ok false -> Alcotest.failf "inject %d flipped the verdict" i
    | `Out_of_fuel k | `Timeout k ->
        check Alcotest.bool
          (Printf.sprintf "inject %d: completed bounds in range" i)
          true
          (k >= 0 && k <= 3)
  done

(* --------------------------------------------------------------- *)
(* Chase: partial results are sound under-approximations. *)

let test_chase_try () =
  let rules =
    [
      Reasoner.Chase.rule ~name:"ab"
        ~body:[ ("A", [ v "x" ]) ]
        ~head:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
        ();
      Reasoner.Chase.rule ~name:"rc"
        ~body:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
        ~head:[ ("C", [ v "x" ]) ]
        ();
    ]
  in
  let d = inst [ ("A", [ "a" ]); ("A", [ "b" ]) ] in
  let full = Reasoner.Chase.run rules d in
  check Alcotest.bool "chase saturates" true full.Reasoner.Chase.saturated;
  let obs = Budget.observer () in
  ignore (Reasoner.Chase.try_run obs rules d);
  let n = Budget.checkpoints obs in
  check Alcotest.bool "chase passes checkpoints" true (n > 0);
  for i = 0 to n - 1 do
    match Reasoner.Chase.try_run (Budget.inject_after i) rules d with
    | `Ok r ->
        check Alcotest.bool
          (Printf.sprintf "inject %d: completed chase agrees" i)
          true
          (Structure.Instance.subset r.Reasoner.Chase.instance
             full.Reasoner.Chase.instance
          && Structure.Instance.subset full.Reasoner.Chase.instance
               r.Reasoner.Chase.instance)
    | `Out_of_fuel r | `Timeout r ->
        check Alcotest.bool
          (Printf.sprintf "inject %d: partial chase is a sound prefix" i)
          true
          (Structure.Instance.subset d r.Reasoner.Chase.instance
          && Structure.Instance.subset r.Reasoner.Chase.instance
               full.Reasoner.Chase.instance)
  done

(* --------------------------------------------------------------- *)
(* Decide: the bouquet loop degrades to a checked-count. *)

let test_decide_try () =
  match
    Classify.Decide.try_decide (Budget.inject_after 2) ~samples:2
      ~max_outdegree:1 o_disj
  with
  | `Out_of_fuel checked ->
      check Alcotest.bool "some bouquets may have completed" true (checked >= 0)
  | `Timeout _ -> Alcotest.fail "fuel injection reports Out_of_fuel"
  | `Ok _ -> Alcotest.fail "injection at checkpoint 2 must trip decide"

let suite =
  [
    Alcotest.test_case "unbudgeted_unchanged" `Quick test_unbudgeted_unchanged;
    Alcotest.test_case "observer_counts" `Quick test_observer_counts;
    Alcotest.test_case "inject_everywhere" `Slow test_inject_everywhere;
    Alcotest.test_case "inject_timeout_reason" `Quick test_inject_timeout_reason;
    Alcotest.test_case "expired_deadline" `Quick test_expired_deadline;
    Alcotest.test_case "fuel_exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "clause_cap" `Quick test_clause_cap;
    Alcotest.test_case "bounded_inject_sweep" `Slow test_bounded_try;
    Alcotest.test_case "chase_inject_sweep" `Quick test_chase_try;
    Alcotest.test_case "decide_inject" `Quick test_decide_try;
  ]
