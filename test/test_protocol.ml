(* The wire codec: random round-trips through the hand-rolled JSON
   layer, rejection of malformed/oversized/wrong-version frames, and the
   literal renderings the CLI compatibility contract pins down. *)

module P = Omq.Protocol

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---------------------------------------------------------------- *)
(* Generators *)

let gen_name =
  QCheck.Gen.(
    oneof
      [
        string_size ~gen:(char_range 'a' 'z') (int_range 1 8);
        (* exercise escaping: quotes, backslashes, control bytes,
           high bytes *)
        string_size
          ~gen:
            (oneofl
               [ 'a'; '"'; '\\'; '\n'; '\t'; '\r'; '\001'; '\xc3'; '\xa9'; ' ' ])
          (int_range 0 10);
      ])

let gen_budget =
  QCheck.Gen.(
    let opt g = oneof [ return None; map Option.some g ] in
    map3
      (fun timeout_s fuel max_clauses -> { P.timeout_s; fuel; max_clauses })
      (opt (map (fun f -> Float.abs f) (float_bound_inclusive 100.0)))
      (opt (int_bound 100000))
      (opt (int_bound 100000)))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun (o, d) (q, m) ->
            P.Open_session { ontology = o; data = d; query = q; max_extra = m })
          (pair gen_name gen_name)
          (pair gen_name (int_bound 4));
        map (fun session -> P.Close_session { session }) small_nat;
        map3
          (fun session budget want_stats ->
            P.Eval { session; budget; want_stats })
          small_nat gen_budget bool;
        map (fun ontology -> P.Classify { ontology }) gen_name;
        map2
          (fun session facts -> P.Insert_facts { session; facts })
          small_nat gen_name;
        map2
          (fun session facts -> P.Retract_facts { session; facts })
          small_nat gen_name;
        return P.Stats;
        return P.Dump_telemetry;
        return P.Shutdown;
      ])

let gen_reason = QCheck.Gen.oneofl [ Reasoner.Budget.Timeout; Reasoner.Budget.Fuel ]

let gen_kind =
  QCheck.Gen.oneofl
    [
      P.Bad_frame;
      P.Bad_version;
      P.Bad_request;
      P.Unknown_session;
      P.Frame_too_large;
      P.Shutting_down;
      P.Internal;
    ]

(* Answers respecting the codec invariants (inconsistent -> no tuples;
   boolean -> zero or one empty tuple). *)
let gen_answers =
  QCheck.Gen.(
    bool >>= fun consistent ->
    bool >>= fun boolean ->
    (if not consistent then return []
     else if boolean then oneofl [ []; [ [] ] ]
     else small_list (list_size (int_range 1 3) gen_name))
    >>= fun tuples -> return { P.consistent; boolean; tuples })

let gen_stats =
  QCheck.Gen.(
    oneof
      [
        return None;
        return (Some P.Json.Null);
        map
          (fun n ->
            Some (P.Json.Obj [ ("solves", P.Json.Num (float_of_int n)) ]))
          small_nat;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map (fun session -> P.Opened { session }) small_nat;
        map (fun session -> P.Closed { session }) small_nat;
        map2 (fun result stats -> P.Evaled { result; stats }) gen_answers
          gen_stats;
        map3
          (fun reason (certified, resume_from) stats ->
            P.Partial { reason; certified; resume_from; stats })
          gen_reason
          (pair
             (small_list (list_size (int_range 1 2) gen_name))
             (oneof
                [ return None; map Option.some (small_list gen_name) ]))
          gen_stats;
        map3
          (fun (dl_name, depth) (fragment, status) (evidence_fragment, source) ->
            P.Classified
              { dl_name; depth; fragment; status; evidence_fragment; source })
          (pair gen_name small_nat)
          (pair (oneof [ return None; map Option.some gen_name ]) gen_name)
          (pair gen_name gen_name);
        map (fun n -> P.Decided { verdict = `Ptime n }) small_nat;
        map (fun w -> P.Decided { verdict = `Conp_hard w }) gen_name;
        map2
          (fun reason checked -> P.Decide_partial { reason; checked })
          gen_reason small_nat;
        map2
          (fun session total_facts -> P.Inserted { session; total_facts })
          small_nat small_nat;
        map2
          (fun session total_facts -> P.Retracted { session; total_facts })
          small_nat small_nat;
        map3
          (fun uptime_s (sessions, served) ((errors, inflight), (jb, je)) ->
            P.Server_stats
              {
                uptime_s;
                server_version = "0.8.0";
                sessions;
                served;
                errors;
                inflight;
                journal_bytes = jb;
                journal_entries = je;
                counters =
                  P.Json.Obj [ ("serve.requests", P.Json.Num 3.0) ];
                reasoner = P.Json.Obj [ ("solves", P.Json.Num 1.0) ];
              })
          (map Float.abs (float_bound_inclusive 1e6))
          (pair small_nat small_nat)
          (pair (pair small_nat small_nat) (pair small_nat small_nat));
        map
          (fun n ->
            P.Telemetry
              { telemetry = P.Json.Obj [ ("flight_total", P.Json.Num (float_of_int n)) ] })
          small_nat;
        return P.Shutdown_ack;
        map2 (fun kind message -> P.Rejected { kind; message }) gen_kind
          gen_name;
      ])

(* ---------------------------------------------------------------- *)
(* Round-trip properties *)

let test_request_roundtrip =
  QCheck.Test.make ~name:"request render/parse round-trip" ~count:500
    (QCheck.make gen_request ~print:(Fmt.str "%a" P.pp_request))
    (fun req ->
      match P.parse_request (P.render_request req) with
      | Ok (None, req') -> P.equal_request req req'
      | _ -> false)

let test_request_roundtrip_id =
  QCheck.Test.make ~name:"request round-trip preserves id" ~count:200
    (QCheck.make QCheck.Gen.(pair small_nat gen_request))
    (fun (id, req) ->
      match P.parse_request (P.render_request ~id req) with
      | Ok (Some id', req') -> id = id' && P.equal_request req req'
      | _ -> false)

let test_response_roundtrip =
  QCheck.Test.make ~name:"response render/parse round-trip" ~count:500
    (QCheck.make gen_response ~print:(Fmt.str "%a" P.pp_response))
    (fun resp ->
      match P.parse_response (P.render_response resp) with
      | Ok (None, resp') -> P.equal_response resp resp'
      | _ -> false)

let test_response_roundtrip_id =
  QCheck.Test.make ~name:"response round-trip preserves id" ~count:200
    (QCheck.make QCheck.Gen.(pair small_nat gen_response))
    (fun (id, resp) ->
      match P.parse_response (P.render_response ~id resp) with
      | Ok (Some id', resp') -> id = id' && P.equal_response resp resp'
      | _ -> false)

let test_json_roundtrip =
  let gen_json =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [
                return P.Json.Null;
                map (fun b -> P.Json.Bool b) bool;
                map (fun f -> P.Json.Num f) (float_bound_inclusive 1e9);
                map (fun i -> P.Json.Num (float_of_int i)) small_signed_int;
                map (fun s -> P.Json.Str s) gen_name;
              ]
          in
          if n = 0 then leaf
          else
            oneof
              [
                leaf;
                map (fun xs -> P.Json.Arr xs) (list_size (int_bound 4) (self (n / 2)));
                map
                  (fun kvs -> P.Json.Obj kvs)
                  (list_size (int_bound 4) (pair gen_name (self (n / 2))));
              ]))
  in
  QCheck.Test.make ~name:"Json render/parse round-trip" ~count:500
    (QCheck.make gen_json ~print:P.Json.render)
    (fun j ->
      match P.Json.parse (P.Json.render j) with
      | Ok j' -> P.Json.equal j j'
      | Error _ -> false)

(* ---------------------------------------------------------------- *)
(* Malformed and wrong-version frames *)

let kind_of = function
  | Error (_, (kind, _)) -> Some kind
  | Ok _ -> None

let test_malformed () =
  let req s = kind_of (P.parse_request s) in
  Alcotest.(check (option string))
    "garbage is bad_frame" (Some "bad_frame")
    (Option.map P.error_kind_name (req "this is not json"));
  Alcotest.(check (option string))
    "trailing garbage is bad_frame" (Some "bad_frame")
    (Option.map P.error_kind_name (req "{\"v\":1,\"op\":\"stats\"} trailing"));
  Alcotest.(check (option string))
    "missing version is bad_version" (Some "bad_version")
    (Option.map P.error_kind_name (req "{\"op\":\"stats\"}"));
  Alcotest.(check (option string))
    "future version is bad_version" (Some "bad_version")
    (Option.map P.error_kind_name (req "{\"v\":99,\"op\":\"stats\"}"));
  Alcotest.(check (option string))
    "non-object is bad_frame" (Some "bad_frame")
    (Option.map P.error_kind_name (req "[1,2,3]"));
  Alcotest.(check (option string))
    "unknown op is bad_request" (Some "bad_request")
    (Option.map P.error_kind_name (req "{\"v\":1,\"op\":\"frobnicate\"}"));
  Alcotest.(check (option string))
    "missing field is bad_request" (Some "bad_request")
    (Option.map P.error_kind_name (req "{\"v\":1,\"op\":\"eval\"}"));
  Alcotest.(check (option string))
    "ill-typed field is bad_request" (Some "bad_request")
    (Option.map P.error_kind_name
       (req "{\"v\":1,\"op\":\"eval\",\"session\":\"zero\"}"));
  (* the id is salvaged from broken frames so servers can echo it *)
  (match P.parse_request "{\"v\":99,\"id\":7,\"op\":\"stats\"}" with
  | Error (Some 7, (P.Bad_version, _)) -> ()
  | _ -> Alcotest.fail "id not salvaged from bad-version frame");
  (* deep nesting is rejected, not a stack overflow *)
  let deep = String.concat "" (List.init 600 (fun _ -> "[")) in
  check "deep nesting rejected" true (Result.is_error (P.Json.parse deep));
  (* unknown fields are ignored (forward compatibility) *)
  match P.parse_request "{\"v\":1,\"op\":\"stats\",\"future\":42}" with
  | Ok (None, P.Stats) -> ()
  | _ -> Alcotest.fail "unknown field should be ignored"

(* Version leniency: decoding accepts the whole [min_version, version]
   range, so v1 clients keep working against a v2 daemon; rendering is
   always at [version]. *)
let test_version_leniency () =
  check "speaks a range" true (P.min_version < P.version);
  (match P.parse_request "{\"v\":1,\"op\":\"stats\"}" with
  | Ok (None, P.Stats) -> ()
  | _ -> Alcotest.fail "v1 frame should decode");
  (match
     P.parse_request
       "{\"v\":2,\"op\":\"retract_facts\",\"session\":3,\"facts\":\"A(x)\"}"
   with
  | Ok (None, P.Retract_facts { session = 3; facts = "A(x)" }) -> ()
  | _ -> Alcotest.fail "v2 retract_facts frame should decode");
  (match P.parse_request "{\"v\":0,\"op\":\"stats\"}" with
  | Error (_, (P.Bad_version, _)) -> ()
  | _ -> Alcotest.fail "v0 frame should be rejected");
  match
    P.parse_response "{\"v\":2,\"type\":\"retract_facts\",\"outcome\":\"ok\",\"session\":3,\"total_facts\":7}"
  with
  | Ok (None, P.Retracted { session = 3; total_facts = 7 }) -> ()
  | _ -> Alcotest.fail "retracted response should decode"

let test_json_corners () =
  (match P.Json.parse " [1, 2.5, \"a\\u00e9\", true, null] " with
  | Ok
      (P.Json.Arr
        [
          P.Json.Num 1.0;
          P.Json.Num 2.5;
          P.Json.Str "a\xc3\xa9";
          P.Json.Bool true;
          P.Json.Null;
        ]) ->
      ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (P.Json.render j)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  check_str "integral numbers render bare" "5" (P.Json.render (P.Json.Num 5.0));
  check_str "empty object" "{}" (P.Json.render (P.Json.Obj []));
  check "unterminated string rejected" true
    (Result.is_error (P.Json.parse "\"abc"));
  check "lone minus rejected" true (Result.is_error (P.Json.parse "-"));
  check "empty input rejected" true (Result.is_error (P.Json.parse "  "))

(* ---------------------------------------------------------------- *)
(* The CLI byte-compatibility contract: these exact renderings are what
   both `omq_tool eval --json` and the daemon emit (the daemon adds only
   the echoed id after "v"). *)

let test_literal_renderings () =
  check_str "eval ok"
    "{\"v\":2,\"type\":\"eval\",\"outcome\":\"ok\",\"consistent\":true,\"boolean\":false,\"count\":1,\"answers\":[[\"h\"]]}"
    (P.render_response
       (P.Evaled
          {
            result = { P.consistent = true; boolean = false; tuples = [ [ "h" ] ] };
            stats = None;
          }));
  check_str "boolean eval renders certain flag"
    "{\"v\":2,\"type\":\"eval\",\"outcome\":\"ok\",\"consistent\":true,\"boolean\":true,\"certain\":true}"
    (P.render_response
       (P.Evaled
          {
            result = { P.consistent = true; boolean = true; tuples = [ [] ] };
            stats = None;
          }));
  check_str "tripped eval"
    "{\"v\":2,\"id\":4,\"type\":\"eval\",\"outcome\":\"out_of_fuel\",\"certified\":[],\"resume_from\":[\"h\"]}"
    (P.render_response ~id:4
       (P.Partial
          {
            reason = Reasoner.Budget.Fuel;
            certified = [];
            resume_from = Some [ "h" ];
            stats = None;
          }));
  check_str "typed error"
    "{\"v\":2,\"type\":\"error\",\"outcome\":\"error\",\"error\":\"unknown_session\",\"message\":\"no session 42\"}"
    (P.render_response
       (P.Rejected { kind = P.Unknown_session; message = "no session 42" }));
  check_str "open_session request"
    "{\"v\":2,\"id\":0,\"op\":\"open_session\",\"ontology\":\"O\",\"data\":\"D\",\"query\":\"Q\",\"max_extra\":2}"
    (P.render_request ~id:0
       (P.Open_session
          { ontology = "O"; data = "D"; query = "Q"; max_extra = 2 }))

let suite =
  [
    QCheck_alcotest.to_alcotest test_request_roundtrip;
    QCheck_alcotest.to_alcotest test_request_roundtrip_id;
    QCheck_alcotest.to_alcotest test_response_roundtrip;
    QCheck_alcotest.to_alcotest test_response_roundtrip_id;
    QCheck_alcotest.to_alcotest test_json_roundtrip;
    Alcotest.test_case "malformed frames" `Quick test_malformed;
    Alcotest.test_case "version leniency" `Quick test_version_leniency;
    Alcotest.test_case "json corners" `Quick test_json_corners;
    Alcotest.test_case "literal renderings" `Quick test_literal_renderings;
  ]
