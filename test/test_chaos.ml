(* The self-healing serving layer, driven through deterministic fault
   injection (Omqd.Chaos), the session journal (Omqd.Journal) and
   worker supervision (Parallel.Service.replace).

   The load-bearing assertions: after any injected fault — torn frames,
   short writes, dropped connections, a wedged worker, a kill of the
   whole daemon — every *acknowledged* session answers byte-identically
   to the sequential evaluation, and nothing that was never acked is
   resurrected. No test sleeps as synchronisation: clients block on
   typed responses, and the only polling loops wait on an observable
   predicate with a deadline. *)

module P = Omq.Protocol
module Journal = Omqd.Journal

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let onto = "Hand << exists hasFinger . Thumb"
let data = "Hand(h)\nThumb(t)\nhasFinger(h, t)"
let query = "q(x) <- Thumb(x)"

let open_req =
  P.Open_session { ontology = onto; data; query; max_extra = 2 }

let eval_req session = P.Eval { session; budget = P.no_budget; want_stats = false }

(* The sequential ground truth, rendered through the same codec the
   daemon uses — recovered and fault-ridden responses must equal this
   byte for byte. *)
let direct_eval ?(extra = "") () =
  let tbox = Dl.Parser.parse_tbox onto in
  let d = Structure.Parse.instance_of_string (data ^ "\n" ^ extra) in
  let q = Query.Parse.ucq_of_string query in
  let session = Omq.open_session ~max_extra:2 (Omq.of_tbox tbox q) d in
  let answers = Omq.Session.certain_answers session in
  P.Evaled
    {
      result =
        {
          P.consistent = true;
          boolean = false;
          tuples =
            List.map
              (List.map (fun e -> Fmt.str "%a" Structure.Element.pp e))
              answers;
        };
      stats = None;
    }

(* ---------------------------------------------------------------- *)
(* Harness: daemon on a thread, with a shutdown loop that survives a
   chaos plan eating the shutdown request itself. *)

let counter = ref 0

let fresh_name tag =
  incr counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "omqd-chaos-%s-%d-%d" tag (Unix.getpid ()) !counter)

let with_daemon ?journal ?supervise ?max_inflight ?max_outbuf ?shutdown_grace
    ?chaos ?(jobs = 2) f =
  let path = fresh_name "sock" in
  let addr = Omqd.Daemon.Unix_path path in
  let cfg =
    Omqd.Daemon.config ~addr ~jobs ?journal ?supervise ?max_inflight
      ?max_outbuf ?shutdown_grace ?chaos ()
  in
  let result = ref (Ok ()) in
  let finished = ref false in
  let th =
    Thread.create
      (fun () ->
        result := Omqd.Daemon.run cfg;
        finished := true)
      ()
  in
  let out = try Ok (f addr) with e -> Error e in
  (* Under a fault plan any one shutdown round trip may be torn or
     dropped; keep asking until the daemon actually exits. *)
  let tries = ref 0 in
  while (not !finished) && !tries < 30 do
    incr tries;
    (match Omqd.Client.connect ~attempts:3 ~base_delay:0.005 addr with
    | Error _ -> ()
    | Ok c ->
        ignore (Omqd.Client.call c P.Shutdown);
        Omqd.Client.close c);
    if not !finished then Thread.yield ()
  done;
  Thread.join th;
  (match !result with
  | Ok () -> ()
  | Error m -> Alcotest.failf "daemon failed: %s" m);
  match out with Ok v -> v | Error e -> raise e

let connect_exn addr =
  match Omqd.Client.connect addr with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let call_exn ?retries c req =
  match Omqd.Client.call ?retries ~base_delay:0.05 c req with
  | Ok r -> r
  | Error m -> Alcotest.failf "call: %s" m

let open_exn c =
  match call_exn c open_req with
  | P.Opened { session } -> session
  | r -> Alcotest.failf "open failed: %s" (P.render_response r)

(* Raw-socket plumbing for framing and pipelining tests. *)

let raw_connect addr =
  let path = match addr with Omqd.Daemon.Unix_path p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n < 200 ->
        Unix.sleepf 0.01;
        go (n + 1)
  in
  go 0;
  fd

let write_all fd s =
  let len = String.length s in
  let rec go pos =
    if pos < len then
      match Unix.write_substring fd s pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

(* Blocking read of the next newline-terminated frame; [buf] carries
   bytes already read past earlier frames. *)
let read_line fd buf =
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear buf;
        Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
        String.sub s 0 i
    | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Alcotest.fail "unexpected EOF from daemon"
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* ---------------------------------------------------------------- *)
(* Parallel.Service supervision primitives, tested directly *)

let test_service_replace () =
  let svc = Parallel.Service.create ~jobs:2 ~wakeup:ignore ~clock:Obs.Clock.now () in
  let m = Mutex.create () and cv = Condition.create () in
  let release = ref false in
  let wedge () =
    Mutex.lock m;
    while not !release do
      Condition.wait cv m
    done;
    Mutex.unlock m;
    "late"
  in
  Parallel.Service.submit svc ~worker:0 wedge;
  (* wait until the wedged job has actually started *)
  let deadline = Obs.Clock.now () +. 5.0 in
  let rec wait_busy () =
    match Parallel.Service.busy_since svc ~worker:0 with
    | Some _ -> ()
    | None ->
        if Obs.Clock.now () > deadline then
          Alcotest.fail "worker never started its job"
        else begin
          Thread.yield ();
          wait_busy ()
        end
  in
  wait_busy ();
  Parallel.Service.submit svc ~worker:0 (fun () -> "queued1");
  Parallel.Service.submit svc ~worker:0 (fun () -> "queued2");
  check_int "three jobs in flight" 3 (Parallel.Service.in_flight svc);
  let lost = Parallel.Service.replace svc ~worker:0 in
  check_int "one running + two queued lost" 3 lost;
  check_int "in_flight returned to zero" 0 (Parallel.Service.in_flight svc);
  check_int "one replacement recorded" 1 (Parallel.Service.replaced svc);
  (* the fresh domain at index 0 serves new work *)
  Parallel.Service.submit svc ~worker:0 (fun () -> "fresh");
  let got = ref [] in
  let deadline = Obs.Clock.now () +. 5.0 in
  while !got = [] && Obs.Clock.now () < deadline do
    got := Parallel.Service.drain svc;
    if !got = [] then Thread.yield ()
  done;
  Alcotest.(check (list string)) "fresh worker answers" [ "fresh" ] !got;
  (* let the abandoned domain finish: its result must be dropped, not
     enqueued — drain stays empty *)
  Mutex.lock m;
  release := true;
  Condition.broadcast cv;
  Mutex.unlock m;
  Parallel.Service.submit svc ~worker:0 (fun () -> "after");
  let got = ref [] in
  let deadline = Obs.Clock.now () +. 5.0 in
  while !got = [] && Obs.Clock.now () < deadline do
    got := Parallel.Service.drain svc;
    if !got = [] then Thread.yield ()
  done;
  Alcotest.(check (list string)) "abandoned result never surfaces" [ "after" ]
    !got;
  Parallel.Service.shutdown svc

(* ---------------------------------------------------------------- *)
(* Journal unit behaviour *)

let e_open sid = Journal.Open { sid; ontology = onto; data; query; max_extra = 2 }

let test_journal_load_and_compact () =
  (* render/parse roundtrip, including a frame that is not a journal op *)
  let ins = Journal.Insert { sid = 1; facts = "Thumb(u)" } in
  (match Journal.entry_of_line (Journal.render ins) with
  | Ok e -> Alcotest.(check bool) "roundtrip" true (e = ins)
  | Error m -> Alcotest.failf "roundtrip: %s" m);
  (match Journal.entry_of_line "{\"v\":1,\"op\":\"stats\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stats is not a journal operation");
  let dir = fresh_name "journal" in
  let t = Journal.open_ dir in
  Journal.append t (e_open 1);
  Journal.append t ins;
  Journal.append t (e_open 2);
  Journal.append t (Journal.Close { sid = 2 });
  Journal.close t;
  let entries, status = Journal.load dir in
  Alcotest.(check bool) "clean load" true (status = `Ok);
  check_int "four entries" 4 (List.length entries);
  check_int "max sid" 2 (Journal.max_sid entries);
  (match Journal.live_sessions entries with
  | [ (1, (o, d, q, me), folded) ] ->
      check_str "ontology preserved" onto o;
      (* net-data fold renders canonically: one fact per line, in
         compare_fact order, no spaces after commas *)
      check_str "data is the union"
        "Hand(h)\nThumb(t)\nThumb(u)\nhasFinger(h,t)" d;
      check_str "query preserved" query q;
      check_int "max_extra preserved" 2 me;
      check_int "two entries folded" 2 folded
  | l -> Alcotest.failf "expected exactly session 1 live, got %d" (List.length l));
  (* a torn final line — crash mid-append — is skipped silently *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Filename.concat dir "omq.journal")
  in
  output_string oc "{\"v\":1,\"op\":\"insert_fa";
  close_out oc;
  let entries', status' = Journal.load dir in
  Alcotest.(check bool) "torn tail skipped, still ok" true (status' = `Ok);
  check_int "same four entries" 4 (List.length entries');
  (* compaction: one open per live session, atomically; the handle
     stays usable *)
  let t = Journal.open_ dir in
  let folded =
    List.map
      (fun (sid, (ontology, data, query, max_extra), _) ->
        Journal.Open { sid; ontology; data; query; max_extra })
      (Journal.live_sessions entries')
  in
  Journal.compact t folded;
  let after, status'' = Journal.load dir in
  Alcotest.(check bool) "compacted load ok" true (status'' = `Ok);
  check_int "one entry per live session" 1 (List.length after);
  Journal.append t (Journal.Insert { sid = 1; facts = "Thumb(v)" });
  Journal.close t;
  let final, _ = Journal.load dir in
  check_int "append after compact lands" 2 (List.length final)

(* Journal replay equivalence, as a property: for any valid history of
   opens / inserts / retracts / closes, folding the journal yields
   exactly the model's live sessions — net fact sets in canonical
   rendering — in open order. *)

(* The model's view of a fact set, rendered the way live_sessions does:
   parse and re-render canonically (one fact per line, compare_fact
   order). *)
let canon facts =
  match
    Structure.Parse.instance_of_string_result (String.concat "\n" facts)
  with
  | Error m -> Alcotest.failf "model facts unparsable: %s" m
  | Ok i ->
      Structure.Instance.facts i
      |> List.map (fun (f : Structure.Instance.fact) ->
             Printf.sprintf "%s(%s)" f.rel
               (String.concat ","
                  (List.map Structure.Element.to_string f.args)))
      |> String.concat "\n"

let replay_equivalence =
  QCheck.Test.make ~count:200 ~name:"journal replay equals model"
    QCheck.(list (int_range 0 11))
    (fun script ->
      let next = ref 1 in
      (* (sid, net facts, entries folded), open order reversed *)
      let live = ref [] in
      let entries = ref [] in
      let update sid f =
        live :=
          List.map
            (fun (s, fs, n) -> if s = sid then (s, f fs, n + 1) else (s, fs, n))
            !live
      in
      List.iter
        (fun n ->
          let nlive = List.length !live in
          if nlive = 0 || n mod 4 = 0 then begin
            let sid = !next in
            incr next;
            let d = Printf.sprintf "D(d%d)" sid in
            live := (sid, [ d ], 1) :: !live;
            entries :=
              Journal.Open
                { sid; ontology = "o"; data = d; query = "q"; max_extra = 1 }
              :: !entries
          end
          else if n mod 4 = 1 then begin
            let sid, fs, _ = List.nth !live (n mod nlive) in
            let f = Printf.sprintf "F(f%d_%d)" sid (List.length fs) in
            update sid (fun fs' -> f :: fs');
            ignore fs;
            entries := Journal.Insert { sid; facts = f } :: !entries
          end
          else if n mod 4 = 2 then begin
            (* retract one present fact, or one that was never there —
               both must fold correctly (absent facts are no-ops) *)
            let sid, fs, _ = List.nth !live (n mod nlive) in
            let f =
              match fs with
              | f :: _ when n / 4 mod 2 = 0 -> f
              | _ -> "Absent(nobody)"
            in
            update sid (List.filter (fun f' -> f' <> f));
            entries := Journal.Retract { sid; facts = f } :: !entries
          end
          else begin
            let sid, _, _ = List.nth !live (n mod nlive) in
            live := List.filter (fun (s, _, _) -> s <> sid) !live;
            entries := Journal.Close { sid } :: !entries
          end)
        script;
      let expected =
        List.rev_map (fun (sid, fs, n) -> (sid, canon fs, n)) !live
      in
      let got =
        List.map
          (fun (sid, (_, d, _, _), folded) -> (sid, d, folded))
          (Journal.live_sessions (List.rev !entries))
      in
      got = expected)

(* ---------------------------------------------------------------- *)
(* Framing under adversity *)

let test_byte_at_a_time () =
  with_daemon @@ fun addr ->
  let fd = raw_connect addr in
  let buf = Buffer.create 256 in
  let frame = P.render_request ~id:1 open_req ^ "\n" in
  String.iter (fun ch -> write_all fd (String.make 1 ch)) frame;
  (match P.parse_response (read_line fd buf) with
  | Ok (Some 1, P.Opened { session }) ->
      write_all fd (P.render_request ~id:2 (eval_req session) ^ "\n");
      (match P.parse_response (read_line fd buf) with
      | Ok (Some 2, resp) ->
          check_str "byte-dripped open still answers identically"
            (P.render_response (direct_eval ()))
            (P.render_response resp)
      | _ -> Alcotest.fail "bad eval response")
  | _ -> Alcotest.fail "byte-dripped open was not answered");
  Unix.close fd

(* The same invariant as a property: a conversation chopped into
   arbitrary chunks (frames split anywhere, including across requests)
   is reassembled; junk between frames gets a typed rejection and never
   poisons the next frame. One daemon and one already-registered
   session serve every case. *)
let chunked_framing_cases daemon_addr sid =
  QCheck.Test.make ~count:25 ~name:"arbitrary chunking reassembles"
    QCheck.(pair (list_of_size Gen.(1 -- 8) (int_range 1 40)) bool)
    (fun (cuts, with_junk) ->
      let fd = raw_connect daemon_addr in
      let buf = Buffer.create 256 in
      let stream =
        (if with_junk then "not json at all\n" else "")
        ^ P.render_request ~id:1 (eval_req sid)
        ^ "\n"
        ^ P.render_request ~id:2 P.Stats
        ^ "\n"
      in
      (* cut positions derived from the generated list; any remainder is
         written in one last piece *)
      let pos = ref 0 in
      List.iter
        (fun k ->
          let n = min k (String.length stream - !pos) in
          if n > 0 then begin
            write_all fd (String.sub stream !pos n);
            pos := !pos + n
          end)
        cuts;
      if !pos < String.length stream then
        write_all fd (String.sub stream !pos (String.length stream - !pos));
      (* the eval is answered from a worker, stats inline: responses to
         pipelined requests may interleave — match them up by id *)
      let junk_rejected = ref (not with_junk) in
      let by_id = Hashtbl.create 4 in
      let expected_lines = 2 + if with_junk then 1 else 0 in
      for _ = 1 to expected_lines do
        match P.parse_response (read_line fd buf) with
        | Ok (None, P.Rejected { kind = P.Bad_frame; _ }) ->
            junk_rejected := true
        | Ok (Some id, resp) -> Hashtbl.replace by_id id resp
        | _ -> ()
      done;
      let ok1 =
        match Hashtbl.find_opt by_id 1 with
        | Some resp ->
            P.render_response resp = P.render_response (direct_eval ())
        | None -> false
      in
      let ok2 =
        match Hashtbl.find_opt by_id 2 with
        | Some (P.Server_stats _) -> true
        | _ -> false
      in
      Unix.close fd;
      !junk_rejected && ok1 && ok2)

let test_chunked_framing () =
  with_daemon ~jobs:1 @@ fun addr ->
  let c = connect_exn addr in
  let sid = open_exn c in
  QCheck.Test.check_exn (chunked_framing_cases addr sid);
  Omqd.Client.close c

(* Torn reads and short writes from a seeded plan: the daemon's framing
   and flush paths absorb them; every answer stays byte-identical. *)
let test_torn_and_short () =
  let chaos = Omqd.Chaos.create ~seed:7 ~torn_read:0.35 ~short_write:0.35 () in
  with_daemon ~chaos @@ fun addr ->
  let c = connect_exn addr in
  let sid = open_exn c in
  (match call_exn c (P.Insert_facts { session = sid; facts = "Thumb(u)" }) with
  | P.Inserted _ -> ()
  | r -> Alcotest.failf "insert failed: %s" (P.render_response r));
  let expected = P.render_response (direct_eval ~extra:"Thumb(u)" ()) in
  for _ = 1 to 8 do
    check_str "answer identical under torn frames and short writes" expected
      (P.render_response (call_exn c (eval_req sid)))
  done;
  Omqd.Client.close c;
  let torn, _, short, _, _, _ = Omqd.Chaos.injected chaos in
  Alcotest.(check bool) "the plan actually injected faults" true
    (torn + short > 0)

(* Dropped reads and accepts kill individual connections, never the
   daemon: the harness's clean-shutdown assertion is the test. *)
let test_drops_survived () =
  let chaos = Omqd.Chaos.create ~seed:42 ~drop_read:0.15 ~drop_accept:0.1 () in
  with_daemon ~chaos @@ fun addr ->
  let expected = P.render_response (direct_eval ()) in
  let full_rounds = ref 0 in
  for _ = 1 to 20 do
    match Omqd.Client.connect ~attempts:2 ~base_delay:0.005 addr with
    | Error _ -> ()
    | Ok c ->
        (match Omqd.Client.call c open_req with
        | Ok (P.Opened { session }) -> (
            match Omqd.Client.call c (eval_req session) with
            | Ok resp when P.render_response resp = expected ->
                incr full_rounds
            | Ok r ->
                Alcotest.failf "delivered answer differs: %s"
                  (P.render_response r)
            | Error _ -> (* connection dropped mid-request *) ())
        | Ok _ | Error _ -> ());
        Omqd.Client.close c
  done;
  Alcotest.(check bool) "some rounds completed" true (!full_rounds >= 1);
  let _, drop_r, _, _, drop_a, _ = Omqd.Chaos.injected chaos in
  Alcotest.(check bool) "the plan actually dropped something" true
    (drop_r + drop_a > 0)

(* ---------------------------------------------------------------- *)
(* Crash recovery from the journal *)

let test_journal_restart () =
  let dir = fresh_name "journal" in
  (* first life: two sessions, an acked insert, an acked
     insert-then-retract pair, then exit *)
  let s1, s2 =
    with_daemon ~journal:dir @@ fun addr ->
    let c = connect_exn addr in
    let s1 = open_exn c in
    let s2 = open_exn c in
    (match call_exn c (P.Insert_facts { session = s1; facts = "Thumb(u)" }) with
    | P.Inserted _ -> ()
    | r -> Alcotest.failf "insert failed: %s" (P.render_response r));
    (match call_exn c (P.Insert_facts { session = s2; facts = "Thumb(w)" }) with
    | P.Inserted _ -> ()
    | r -> Alcotest.failf "insert failed: %s" (P.render_response r));
    (match call_exn c (P.Retract_facts { session = s2; facts = "Thumb(w)" }) with
    | P.Retracted _ -> ()
    | r -> Alcotest.failf "retract failed: %s" (P.render_response r));
    Omqd.Client.close c;
    (s1, s2)
  in
  let with_insert = P.render_response (direct_eval ~extra:"Thumb(u)" ()) in
  let plain = P.render_response (direct_eval ()) in
  (* second life: every acked session answers identically; the retract
     survived replay (s2 nets out to the original data); fresh ids
     never collide with replayed ones; a close is journalled too *)
  with_daemon ~journal:dir (fun addr ->
      let c = connect_exn addr in
      check_str "replayed session kept its acked insert" with_insert
        (P.render_response (call_exn c (eval_req s1)));
      check_str "replayed session kept its acked retract" plain
        (P.render_response (call_exn c (eval_req s2)));
      let s3 = open_exn c in
      Alcotest.(check bool) "fresh sid past every journalled one" true
        (s3 > s1 && s3 > s2);
      (match call_exn c (P.Close_session { session = s2 }) with
      | P.Closed _ -> ()
      | r -> Alcotest.failf "close failed: %s" (P.render_response r));
      Omqd.Client.close c);
  (* third life: the close held; the survivor still answers *)
  with_daemon ~journal:dir (fun addr ->
      let c = connect_exn addr in
      (match call_exn c (eval_req s2) with
      | P.Rejected { kind = P.Unknown_session; _ } -> ()
      | r ->
          Alcotest.failf "closed session resurrected: %s"
            (P.render_response r));
      check_str "survivor still answers identically" with_insert
        (P.render_response (call_exn c (eval_req s1)));
      Omqd.Client.close c)

(* A torn final journal line (kill -9 mid-append) must not block
   recovery and must not resurrect the unacked operation. *)
let test_torn_journal_tail () =
  let dir = fresh_name "journal" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out (Filename.concat dir "omq.journal") in
  output_string oc (Journal.render (e_open 1) ^ "\n");
  output_string oc
    (Journal.render (Journal.Insert { sid = 1; facts = "Thumb(u)" }) ^ "\n");
  (* the append the crash interrupted: never fsync'd, never acked *)
  output_string oc "{\"v\":1,\"id\":1,\"op\":\"insert_fa";
  close_out oc;
  with_daemon ~journal:dir @@ fun addr ->
  let c = connect_exn addr in
  check_str "acked prefix replayed, torn tail dropped"
    (P.render_response (direct_eval ~extra:"Thumb(u)" ()))
    (P.render_response (call_exn c (eval_req 1)));
  Omqd.Client.close c

(* ---------------------------------------------------------------- *)
(* Worker supervision end to end *)

(* Worker 0's second job (the first eval of the first session) wedges
   forever. Supervision quarantines the domain, fails the eval with the
   retryable worker_lost, and replays the session on the replacement;
   the client's same-frame retries end in a byte-identical answer. A
   session pinned to the healthy worker is untouched throughout. *)
let test_poisoned_worker_replayed () =
  let chaos = Omqd.Chaos.create ~seed:3 ~poison:(1, 0) () in
  with_daemon ~jobs:2 ~supervise:0.2 ~chaos @@ fun addr ->
  let c = connect_exn addr in
  let s0 = open_exn c in
  let s1 = open_exn c in
  let expected = P.render_response (direct_eval ()) in
  let c2 = connect_exn addr in
  check_str "healthy worker's session answers while the other wedges"
    expected
    (P.render_response (call_exn c2 (eval_req s1)));
  check_str "retried eval lands on the replayed session identically"
    expected
    (P.render_response (call_exn ~retries:8 c (eval_req s0)));
  let _, _, _, _, _, poisoned = Omqd.Chaos.injected chaos in
  check_int "exactly one job was poisoned" 1 poisoned;
  Omqd.Client.close c2;
  Omqd.Client.close c

(* Deterministic shed + supervision, pipelined on one connection:
   eval A wedges (poison), eval B arrives while A holds the only
   in-flight slot and is shed with the typed, retryable [overloaded];
   supervision then fails A with [worker_lost]; resending the same
   eval eventually gets the byte-identical answer from the replayed
   session. *)
let test_overload_shed_and_worker_lost () =
  let chaos = Omqd.Chaos.create ~seed:5 ~poison:(1, 0) () in
  with_daemon ~jobs:1 ~max_inflight:1 ~supervise:0.2 ~chaos @@ fun addr ->
  let fd = raw_connect addr in
  let buf = Buffer.create 256 in
  write_all fd (P.render_request ~id:1 open_req ^ "\n");
  let sid =
    match P.parse_response (read_line fd buf) with
    | Ok (Some 1, P.Opened { session }) -> session
    | _ -> Alcotest.fail "open failed"
  in
  (* both evals in one write: arrival order is the wire order *)
  write_all fd
    (P.render_request ~id:2 (eval_req sid)
    ^ "\n"
    ^ P.render_request ~id:3 (eval_req sid)
    ^ "\n");
  (match P.parse_response (read_line fd buf) with
  | Ok (Some 3, P.Rejected { kind = P.Overloaded; _ }) ->
      Alcotest.(check bool) "overloaded is retryable" true
        (P.retryable P.Overloaded)
  | Ok (_, r) ->
      Alcotest.failf "expected overloaded shed: %s" (P.render_response r)
  | Error _ -> Alcotest.fail "undecodable shed response");
  (match P.parse_response (read_line fd buf) with
  | Ok (Some 2, P.Rejected { kind = P.Worker_lost; _ }) ->
      Alcotest.(check bool) "worker_lost is retryable" true
        (P.retryable P.Worker_lost)
  | Ok (_, r) ->
      Alcotest.failf "expected worker_lost: %s" (P.render_response r)
  | Error _ -> Alcotest.fail "undecodable worker_lost response");
  (* same frame, resent until the replayed session answers *)
  let expected = P.render_response (direct_eval ()) in
  let rec retry n =
    if n > 50 then Alcotest.fail "replayed session never answered";
    write_all fd (P.render_request ~id:4 (eval_req sid) ^ "\n");
    match P.parse_response (read_line fd buf) with
    | Ok (Some 4, P.Rejected { kind; _ }) when P.retryable kind ->
        retry (n + 1)
    | Ok (Some 4, resp) ->
        check_str "post-recovery answer byte-identical" expected
          (P.render_response resp)
    | _ -> Alcotest.fail "bad retry response"
  in
  retry 0;
  Unix.close fd

(* ---------------------------------------------------------------- *)
(* Hardened edges *)

(* A reader that never drains (every flush stalls) trips the bounded
   output buffer and is disconnected; the daemon itself shuts down
   cleanly within the grace period. *)
let test_slow_reader_disconnected () =
  let chaos = Omqd.Chaos.create ~seed:13 ~stall_write:1.0 () in
  with_daemon ~jobs:1 ~max_outbuf:16 ~shutdown_grace:0.2 ~chaos
  @@ fun addr ->
  let c = connect_exn addr in
  (match Omqd.Client.call c open_req with
  | Error _ -> (* disconnected: the response could never be drained *) ()
  | Ok r ->
      Alcotest.failf "stalled response was delivered: %s"
        (P.render_response r));
  Omqd.Client.close c

(* SIGTERM routes through the graceful path: in-flight work answered,
   run returns Ok. *)
let test_sigterm_graceful () =
  let path = fresh_name "sock" in
  let addr = Omqd.Daemon.Unix_path path in
  let cfg = Omqd.Daemon.config ~addr ~jobs:1 ~signals:true () in
  let result = ref (Ok ()) in
  let th = Thread.create (fun () -> result := Omqd.Daemon.run cfg) () in
  let c = connect_exn addr in
  let sid = open_exn c in
  check_str "served before the signal"
    (P.render_response (direct_eval ()))
    (P.render_response (call_exn c (eval_req sid)));
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Thread.join th;
  Omqd.Client.close c;
  match !result with
  | Ok () -> ()
  | Error m -> Alcotest.failf "sigterm was not graceful: %s" m

let suite =
  [
    Alcotest.test_case "service replace quarantines a wedged worker" `Quick
      test_service_replace;
    Alcotest.test_case "journal load, torn tail, compaction" `Quick
      test_journal_load_and_compact;
    QCheck_alcotest.to_alcotest replay_equivalence;
    Alcotest.test_case "byte-at-a-time framing" `Quick test_byte_at_a_time;
    Alcotest.test_case "adversarial chunked framing" `Quick
      test_chunked_framing;
    Alcotest.test_case "torn reads / short writes leave answers identical"
      `Quick test_torn_and_short;
    Alcotest.test_case "dropped reads and accepts never kill the daemon"
      `Quick test_drops_survived;
    Alcotest.test_case "journal restart resurrects acked sessions" `Quick
      test_journal_restart;
    Alcotest.test_case "torn journal tail is dropped, prefix replayed" `Quick
      test_torn_journal_tail;
    Alcotest.test_case "poisoned worker quarantined, session replayed" `Quick
      test_poisoned_worker_replayed;
    Alcotest.test_case "overload shed and worker_lost, pipelined" `Quick
      test_overload_shed_and_worker_lost;
    Alcotest.test_case "slow reader disconnected at max_outbuf" `Quick
      test_slow_reader_disconnected;
    Alcotest.test_case "SIGTERM drains gracefully" `Quick
      test_sigterm_graceful;
  ]
