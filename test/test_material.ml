open Helpers
module F = Logic.Formula

let check = Alcotest.(check bool)

let test_disjunction_fails_for_union () =
  (* O1 ∪ O2 on a five-fingered hand: the thumb disjunction is certain
     but no disjunct is — non-materializability (Section 1). *)
  let fingers = [ "f1"; "f2"; "f3"; "f4"; "f5" ] in
  let d =
    inst (("Hand", [ "h" ]) :: List.map (fun f -> ("hasFinger", [ "h"; f ])) fingers)
  in
  let qt = cq ~answer:[ "x" ] [ ("Thumb", [ v "x" ]) ] in
  let pointed = List.map (fun f -> (qt, [ e f ])) fingers in
  (match Material.Disjunction.check ~max_extra:1 o_hand_union d pointed with
  | `Fails _ -> ()
  | `Holds -> Alcotest.fail "expected a violation"
  | `Disjunction_not_certain -> Alcotest.fail "disjunction should be certain");
  (* each component ontology alone has the property on this instance *)
  (match Material.Disjunction.check ~max_extra:1 o_hand_five d pointed with
  | `Disjunction_not_certain -> ()
  | _ -> Alcotest.fail "O1 alone should not entail the disjunction");
  match Material.Disjunction.check ~max_extra:1 o_hand_thumb d pointed with
  | `Disjunction_not_certain -> ()
  | _ -> Alcotest.fail "O2 alone should not entail the disjunction"

let test_materialization_horn () =
  (* Horn ontologies have materializations (the chase). *)
  let d = inst [ ("A", [ "a" ]) ] in
  match Material.Materializability.find_materialization ~max_model_extra:2 o_horn d with
  | None -> Alcotest.fail "expected a materialization"
  | Some b ->
      check "model of O" true
        (Structure.Modelcheck.is_model b (Logic.Ontology.all_sentences o_horn));
      check "contains D" true (Structure.Instance.subset d b)

let test_materialization_union_fails () =
  let fingers = [ "f1"; "f2"; "f3"; "f4"; "f5" ] in
  let d =
    inst (("Hand", [ "h" ]) :: List.map (fun f -> ("hasFinger", [ "h"; f ])) fingers)
  in
  check "O1 ∪ O2 not materializable on the 5-finger hand" false
    (Material.Materializability.materializable_on ~max_model_extra:1 ~max_extra:1
       o_hand_union d);
  check "O2 materializable on the same instance" true
    (Material.Materializability.materializable_on ~max_model_extra:1 ~max_extra:1
       o_hand_thumb d)

let test_disjunctive_not_materializable () =
  (* D ⊑ A ⊔ B with D(a). *)
  let d = inst [ ("D", [ "a" ]) ] in
  check "not materializable" false
    (Material.Materializability.materializable_on ~max_model_extra:1 o_disj d);
  let w = Material.Disjunction.find_violation o_disj (Material.Disjunction.default_candidates o_disj d) in
  check "violation found by default candidates" true (Option.is_some w)

(* Example 6: odd R-cycles force E everywhere, but the unravelling (a
   chain) does not. *)
let example6_ontology =
  let phi x = F.Exists ([ "y" ], F.And (atom "R" [ v x; v "y" ], atom "A" [ v "y" ])) in
  let phi_neg x =
    F.Exists ([ "y" ], F.And (atom "R" [ v x; v "y" ], F.Not (atom "A" [ v "y" ])))
  in
  Logic.Ontology.make
    [
      forall_eq "x" (F.Implies (atom "A" [ v "x" ], F.Implies (phi "x", atom "E" [ v "x" ])));
      forall_eq "x"
        (F.Implies (F.Not (atom "A" [ v "x" ]), F.Implies (phi_neg "x", atom "E" [ v "x" ])));
      F.Forall
        ( [ "x"; "y" ],
          F.Implies (atom "R" [ v "x"; v "y" ], F.Implies (atom "E" [ v "x" ], atom "E" [ v "y" ])) );
      F.Forall
        ( [ "x"; "y" ],
          F.Implies (atom "R" [ v "x"; v "y" ], F.Implies (atom "E" [ v "y" ], atom "E" [ v "x" ])) );
    ]

let test_example6_not_tolerant () =
  let triangle =
    inst [ ("R", [ "a"; "b" ]); ("R", [ "b"; "c" ]); ("R", [ "c"; "a" ]) ]
  in
  let qe = cq ~answer:[ "x" ] [ ("E", [ v "x" ]) ] in
  (* E(a) is certain on the triangle (odd cycle): any A-labelling has a
     monochromatic R-edge. *)
  check "E certain on triangle" true
    (Reasoner.Bounded.certain_cq ~max_extra:0 example6_ontology triangle qe [ e "a" ]);
  (* but not on the unravelled chain *)
  let violations =
    Material.Tolerance.check_unary ~depth:3 ~max_extra:0 example6_ontology
      triangle qe
  in
  check "tolerance violated" true (violations <> []);
  List.iter
    (fun ((_, viol) : Structure.Element.t * Material.Tolerance.violation) ->
      check "certain on D" true viol.on_d;
      check "not certain on Du" false viol.on_du)
    violations

let test_horn_tolerant () =
  (* The Horn ontology is unravelling tolerant on a small instance. *)
  let d = inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]) ] in
  let qc = cq ~answer:[ "x" ] [ ("C", [ v "x" ]) ] in
  let violations =
    Material.Tolerance.check_unary ~depth:3 ~max_extra:1 o_horn d qc
  in
  check "no violation" true (violations = [])

let suite =
  [
    Alcotest.test_case "disjunction_fails_for_union" `Quick test_disjunction_fails_for_union;
    Alcotest.test_case "materialization_horn" `Quick test_materialization_horn;
    Alcotest.test_case "materialization_union_fails" `Quick test_materialization_union_fails;
    Alcotest.test_case "disjunctive_not_materializable" `Quick test_disjunctive_not_materializable;
    Alcotest.test_case "example6_not_tolerant" `Quick test_example6_not_tolerant;
    Alcotest.test_case "horn_tolerant" `Quick test_horn_tolerant;
  ]

(* Section 4: the uGF-unravelling is inappropriate for counting — the
   ontology O = {∀x (∃≥4 y R(x,y) → A(x))} on the depth-one tree of
   Example 5(2) satisfies O,Du ⊨ A(a-copy) under the uGF-unravelling
   (copies of the root accumulate unboundedly many successors) although
   O,D ⊭ A(a); the uGC2-unravelling (condition (c')) repairs this. *)
let o_counting =
  Logic.Ontology.make
    [ forall_eq "x"
        (F.Implies
           ( F.CountGeq (4, "y", atom "R" [ v "x"; v "y" ]),
             atom "A" [ v "x" ] ))
    ]

let test_counting_needs_ugc2_unravelling () =
  let d =
    inst [ ("R", [ "a"; "b1" ]); ("R", [ "a"; "b2" ]); ("R", [ "a"; "b3" ]) ]
  in
  let qa = cq ~answer:[ "x" ] [ ("A", [ v "x" ]) ] in
  check "A(a) not certain on D" false
    (Reasoner.Bounded.certain_cq ~max_extra:1 o_counting d qa [ e "a" ]);
  (match
     Material.Tolerance.check ~variant:Structure.Unravel.UGF ~depth:3
       ~max_extra:0 o_counting d qa [ e "a" ]
   with
  | Material.Tolerance.Violation viol ->
      check "certain on the uGF-unravelling" true viol.on_du;
      check "but not on D" false viol.on_d
  | Material.Tolerance.Tolerant_on ->
      Alcotest.fail "expected the uGF-unravelling to break counting"
  | Material.Tolerance.Not_guarded m -> Alcotest.fail m);
  match
    Material.Tolerance.check ~variant:Structure.Unravel.UGC2 ~depth:3
      ~max_extra:0 o_counting d qa [ e "a" ]
  with
  | Material.Tolerance.Tolerant_on -> ()
  | Material.Tolerance.Violation _ ->
      Alcotest.fail "the uGC2-unravelling must preserve successor counts"
  | Material.Tolerance.Not_guarded m -> Alcotest.fail m

let suite =
  suite
  @ [
      Alcotest.test_case "counting_needs_ugc2_unravelling" `Quick
        test_counting_needs_ugc2_unravelling;
    ]
