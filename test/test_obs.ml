(* The observability layer: span bookkeeping, exporters and the no-op
   guarantee. The central properties:

   - spans collected from a real traced run are structurally
     well-formed (every span closed, children inside their parents);
   - the Chrome export is valid JSON (checked by round-tripping it
     through a JSON parser written below — the toolchain ships none)
     and preserves span count and parentage;
   - the event ring buffer drops the OLDEST events at capacity and
     reports how many were dropped;
   - with no collector installed, instrumented code computes
     byte-identical results to un-traced code;
   - a budget trip inside a traced query still yields a closed,
     exportable trace whose root span carries the trip status. *)

open Helpers
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Export = Obs.Export

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser: enough to validate the exporters' output.
   Numbers are floats; no unicode unescaping beyond \uXXXX skipping. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail m = raise (Bad_json (Printf.sprintf "%s at %d" m !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'u' ->
              advance ();
              pos := !pos + 4;
              Buffer.add_char b '?';
              go ()
          | Some c -> Buffer.add_char b c; advance (); go ()
          | None -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc k fields
  | _ -> raise (Bad_json ("no member " ^ k))

let as_list = function List l -> l | _ -> raise (Bad_json "not a list")
let as_str = function Str s -> s | _ -> raise (Bad_json "not a string")
let as_num = function Num f -> f | _ -> raise (Bad_json "not a number")

(* ------------------------------------------------------------------ *)
(* Workload: the disjunctive OMQ of the budget tests — it grounds,
   solves and case-splits, so a traced run produces real spans. *)

let omq_disj =
  Omq.make o_disj (Query.Parse.ucq_of_string "q(x) <- A(x) | q(x) <- B(x)")

let d_disj = inst [ ("D", [ "a" ]); ("D", [ "b" ]); ("A", [ "c" ]) ]

let traced_answers () =
  Reasoner.Engine.clear_cache ();
  Trace.collect (fun () -> Omq.certain_answers ~max_extra:1 omq_disj d_disj)

(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let answers, c = traced_answers () in
  Alcotest.(check bool) "produced answers" true (answers <> []);
  Alcotest.(check bool) "spans recorded" true (Trace.span_count c > 0);
  check Alcotest.int "no dangling spans" 0 (Trace.open_spans c);
  Alcotest.(check bool) "well-formed" true (Trace.well_formed c);
  let names = List.map (fun (s : Trace.span) -> s.name) (Trace.spans c) in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (expected ^ " span present") true (List.mem expected names))
    [ "omq.query"; "omq.certain"; "engine.ground"; "ground.build";
      "engine.solve"; "dpll.solve" ]

let test_manual_nesting () =
  let (), c =
    Trace.collect (fun () ->
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () -> Trace.event "tick");
            Trace.with_span "inner2" (fun () -> ())))
  in
  Alcotest.(check bool) "well-formed" true (Trace.well_formed c);
  check Alcotest.int "three spans" 3 (Trace.span_count c);
  match Trace.spans c with
  | [ outer; inner; inner2 ] ->
      check Alcotest.int "outer is a root" (-1) outer.Trace.parent;
      check Alcotest.int "inner under outer" outer.Trace.id inner.Trace.parent;
      check Alcotest.int "inner2 under outer" outer.Trace.id
        inner2.Trace.parent;
      (match Trace.events c with
      | [ ev ] ->
          check Alcotest.int "event attributed to inner" inner.Trace.id
            ev.Trace.span_id
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))
  | _ -> Alcotest.fail "expected exactly three spans"

(* An exception that bypasses inner closers still closes every span,
   with the exception as the status. *)
exception Boom

let test_exception_closes () =
  let r, c =
    Trace.collect (fun () ->
        try
          Trace.with_span "outer" (fun () ->
              Trace.with_span "inner" (fun () -> raise Boom))
        with Boom -> "caught")
  in
  check Alcotest.string "exception caught" "caught" r;
  Alcotest.(check bool) "well-formed" true (Trace.well_formed c);
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool)
        (s.Trace.name ^ " has failure status")
        true
        (s.Trace.status <> None))
    (Trace.spans c)

let test_chrome_round_trip () =
  let _, c = traced_answers () in
  let json = parse_json (Export.chrome c) in
  let events = as_list (member "traceEvents" json) in
  let complete =
    List.filter (fun ev -> as_str (member "ph" ev) = "X") events
  in
  check Alcotest.int "one X event per span" (Trace.span_count c)
    (List.length complete);
  (* parentage survives the export *)
  let parent_of ev = int_of_float (as_num (member "parent_id" (member "args" ev))) in
  let id_of ev = int_of_float (as_num (member "span_id" (member "args" ev))) in
  let by_id = List.map (fun ev -> (id_of ev, ev)) complete in
  List.iter
    (fun ev ->
      let p = parent_of ev in
      if p >= 0 then
        Alcotest.(check bool) "parent exists" true (List.mem_assoc p by_id);
      Alcotest.(check bool)
        "durations non-negative" true
        (as_num (member "dur" ev) >= 0.0))
    complete;
  (* instant events carry their names *)
  let instants =
    List.filter (fun ev -> as_str (member "ph" ev) = "i") events
  in
  check Alcotest.int "instant events exported"
    (List.length (Trace.events c))
    (List.length instants)

let test_jsonl_round_trip () =
  let _, c = traced_answers () in
  let lines =
    String.split_on_char '\n' (String.trim (Export.jsonl c))
  in
  check Alcotest.int "one line per span and event"
    (Trace.span_count c + List.length (Trace.events c))
    (List.length lines);
  List.iter (fun line -> ignore (parse_json line)) lines

let test_ring_eviction () =
  let (), c =
    Trace.collect ~ring_capacity:4 (fun () ->
        Trace.with_span "s" (fun () ->
            for i = 0 to 9 do
              Trace.event ~attrs:[ ("i", Trace.Int i) ] "tick"
            done))
  in
  check Alcotest.int "dropped count" 6 (Trace.dropped_events c);
  let kept =
    List.map
      (fun (ev : Trace.event) ->
        match ev.Trace.eattrs with
        | [ ("i", Trace.Int i) ] -> i
        | _ -> Alcotest.fail "unexpected event attrs")
      (Trace.events c)
  in
  check Alcotest.(list int) "oldest dropped, order kept" [ 6; 7; 8; 9 ] kept

(* No collector installed: the instrumented stack must compute exactly
   the un-traced result (the no-op path returns f () unchanged). *)
let test_noop_identical () =
  Reasoner.Engine.clear_cache ();
  let untraced = Omq.certain_answers ~max_extra:1 omq_disj d_disj in
  let traced, c = traced_answers () in
  Reasoner.Engine.clear_cache ();
  let untraced' = Omq.certain_answers ~max_extra:1 omq_disj d_disj in
  Alcotest.(check bool) "collector saw spans" true (Trace.span_count c > 0);
  Alcotest.(check bool)
    "identical answers" true
    (untraced = traced && traced = untraced');
  Alcotest.(check bool) "tracing off again" false (Trace.enabled ())

(* Satellite 4: a deterministic fuel trip inside a traced query still
   produces a closed, exportable trace, and the root span carries the
   trip status. *)
let test_budget_trip_trace_closed () =
  Reasoner.Engine.clear_cache ();
  let outcome, c =
    Trace.collect (fun () ->
        Omq.certain_answers_within
          (Reasoner.Budget.inject_after 25)
          ~max_extra:1 omq_disj d_disj)
  in
  (match outcome with
  | `Out_of_fuel _ -> ()
  | `Ok _ -> Alcotest.fail "expected the injected budget to trip"
  | `Timeout _ -> Alcotest.fail "expected a fuel trip, got a timeout");
  check Alcotest.int "no dangling spans" 0 (Trace.open_spans c);
  Alcotest.(check bool) "well-formed" true (Trace.well_formed c);
  (* the root query span carries the trip status *)
  let roots =
    List.filter (fun (s : Trace.span) -> s.Trace.parent = -1) (Trace.spans c)
  in
  Alcotest.(check bool)
    "a root span has out_of_fuel status" true
    (List.exists
       (fun (s : Trace.span) -> s.Trace.status = Some "out_of_fuel")
       roots);
  (* and the trace still exports as valid JSON *)
  let json = parse_json (Export.chrome c) in
  Alcotest.(check bool)
    "budget_trip event exported" true
    (List.exists
       (fun ev -> as_str (member "name" ev) = "budget_trip")
       (as_list (member "traceEvents" json)))

let test_profile () =
  let _, c = traced_answers () in
  let rows = Export.profile c in
  Alcotest.(check bool) "profile non-empty" true (rows <> []);
  List.iter
    (fun (r : Export.profile_row) ->
      Alcotest.(check bool) (r.Export.pname ^ " count positive") true (r.Export.count > 0);
      Alcotest.(check bool)
        (r.Export.pname ^ " self <= total")
        true
        (r.Export.self_s <= r.Export.total_s +. 1e-9);
      Alcotest.(check bool)
        (r.Export.pname ^ " self non-negative")
        true (r.Export.self_s >= -1e-9))
    rows;
  (* rows are sorted by descending self time *)
  let selfs = List.map (fun (r : Export.profile_row) -> r.Export.self_s) rows in
  Alcotest.(check bool)
    "sorted by self desc" true
    (List.sort (fun a b -> compare b a) selfs = selfs)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "a.count";
  Metrics.incr ~by:4 m "a.count";
  Metrics.set_count m "b.count" 7;
  Metrics.set_count m "b.count" 7;
  Metrics.set m "g" 2.5;
  Metrics.observe m "h" 1.0;
  Metrics.observe m "h" 3.0;
  check Alcotest.(option int) "counter" (Some 5) (Metrics.counter_value m "a.count");
  check Alcotest.(option int) "absolute counter idempotent" (Some 7)
    (Metrics.counter_value m "b.count");
  check
    Alcotest.(option (float 1e-9))
    "gauge" (Some 2.5) (Metrics.gauge_value m "g");
  (match Metrics.histogram_stats m "h" with
  | Some (2, 4.0, 1.0, 3.0) -> ()
  | _ -> Alcotest.fail "histogram stats");
  (* kind mismatch is a typed error *)
  (match Metrics.incr m "g" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument on kind mismatch");
  (* the JSON export parses and carries every name *)
  let json = parse_json (Metrics.to_json m) in
  List.iter
    (fun name -> ignore (member name json))
    (Metrics.names m)

let test_stats_publish () =
  let st = Reasoner.Stats.create () in
  st.Reasoner.Stats.solves <- 3;
  st.Reasoner.Stats.cache_hits <- 2;
  st.Reasoner.Stats.solve_seconds <- 0.5;
  let m = Metrics.create () in
  Reasoner.Stats.publish ~prefix:"t" ~into:m st;
  Reasoner.Stats.publish ~prefix:"t" ~into:m st;
  check Alcotest.(option int) "published once" (Some 3)
    (Metrics.counter_value m "t.solves");
  check Alcotest.(option int) "cache hits" (Some 2)
    (Metrics.counter_value m "t.cache_hits");
  check
    Alcotest.(option (float 1e-9))
    "seconds gauge" (Some 0.5)
    (Metrics.gauge_value m "t.solve_seconds");
  (* the Stats JSON itself parses, with the documented keys *)
  let json = parse_json (Reasoner.Stats.to_json st) in
  List.iter
    (fun k -> ignore (member k json))
    [ "groundings"; "solves"; "decisions"; "propagations"; "conflicts";
      "cache_hits"; "cache_misses"; "budget_timeouts"; "budget_fuel_trips";
      "ground_seconds"; "solve_seconds" ]

let suite =
  [
    Alcotest.test_case "traced run: spans nest well-formed" `Quick
      test_span_nesting;
    Alcotest.test_case "manual spans: parentage and event attribution" `Quick
      test_manual_nesting;
    Alcotest.test_case "exception unwinding closes every span" `Quick
      test_exception_closes;
    Alcotest.test_case "chrome export round-trips through a JSON parser" `Quick
      test_chrome_round_trip;
    Alcotest.test_case "jsonl export: one valid object per line" `Quick
      test_jsonl_round_trip;
    Alcotest.test_case "event ring drops oldest at capacity" `Quick
      test_ring_eviction;
    Alcotest.test_case "no-op collector leaves results identical" `Quick
      test_noop_identical;
    Alcotest.test_case "budget trip yields a closed, exportable trace" `Quick
      test_budget_trip_trace_closed;
    Alcotest.test_case "profile: self/total aggregation" `Quick test_profile;
    Alcotest.test_case "metrics registry: kinds, idempotence, JSON" `Quick
      test_metrics_registry;
    Alcotest.test_case "stats publish into metrics" `Quick test_stats_publish;
  ]
