(* The rank-based grounder against a reference implementation.

   [Reference] below is the pre-arena grounder kept verbatim in spirit:
   fact variables live in a polymorphic hashtable, quantifier expansion
   recurses over [SMap] environments, and clauses are literal lists fed
   to the solver's list API. The production [Reasoner.Ground] computes
   fact variables arithmetically (mixed-radix tuple ranks over interned
   element positions), compiles sentences to slot-resolved form, and
   emits clauses into a flat arena — these tests pit the two against
   each other on randomized instances: same satisfiability, same model
   sets under [enumerate], and same certain answers through the session
   engine (whose witness shortcut must agree with the reference's
   per-tuple solves). *)

open Helpers
module F = Logic.Formula
module SMap = Logic.Names.SMap

let check = Alcotest.(check bool)

(* ---------------------------------------------------------------- *)
(* The reference grounder                                            *)
(* ---------------------------------------------------------------- *)

module Reference = struct
  type t = {
    domain : Structure.Element.t array;
    fact_ids : (Structure.Instance.fact, int) Hashtbl.t;
    mutable facts_rev : Structure.Instance.fact list;
    mutable nfacts : int;
    mutable nvars : int;
    mutable clauses : int list list;
  }

  let register_signature t signature =
    let rec tuples k =
      if k = 0 then [ [] ]
      else
        List.concat_map
          (fun rest -> List.map (fun e -> e :: rest) (Array.to_list t.domain))
          (tuples (k - 1))
    in
    List.iter
      (fun (rel, arity) ->
        List.iter
          (fun args ->
            let f = Structure.Instance.fact rel args in
            if not (Hashtbl.mem t.fact_ids f) then begin
              t.nfacts <- t.nfacts + 1;
              t.nvars <- t.nvars + 1;
              Hashtbl.replace t.fact_ids f t.nvars;
              t.facts_rev <- f :: t.facts_rev
            end)
          (tuples arity))
      (Logic.Signature.to_list signature)

  let create ~domain ~signature =
    let t =
      {
        domain = Array.of_list domain;
        fact_ids = Hashtbl.create 64;
        facts_rev = [];
        nfacts = 0;
        nvars = 0;
        clauses = [];
      }
    in
    register_signature t signature;
    t

  let fact_var t f = Hashtbl.find t.fact_ids f

  let fresh_aux t =
    t.nvars <- t.nvars + 1;
    t.nvars

  let add_clause t c = t.clauses <- c :: t.clauses

  type g = GTrue | GFalse | GLit of int | GAnd of g list | GOr of g list

  let gand parts =
    let rec go acc = function
      | [] -> ( match acc with [] -> GTrue | [ x ] -> x | xs -> GAnd xs)
      | GTrue :: rest -> go acc rest
      | GFalse :: _ -> GFalse
      | GAnd xs :: rest -> go acc (xs @ rest)
      | x :: rest -> go (x :: acc) rest
    in
    go [] parts

  let gor parts =
    let rec go acc = function
      | [] -> ( match acc with [] -> GFalse | [ x ] -> x | xs -> GOr xs)
      | GFalse :: rest -> go acc rest
      | GTrue :: _ -> GTrue
      | GOr xs :: rest -> go acc (xs @ rest)
      | x :: rest -> go (x :: acc) rest
    in
    go [] parts

  let element env = function
    | Logic.Term.Const c -> Structure.Element.Const c
    | Logic.Term.Var v -> SMap.find v env

  let rec subsets n = function
    | _ when n = 0 -> [ [] ]
    | [] -> []
    | x :: rest ->
        List.map (fun s -> x :: s) (subsets (n - 1) rest) @ subsets n rest

  let rec ground t env sign (f : F.t) =
    match f with
    | F.True -> if sign then GTrue else GFalse
    | F.False -> if sign then GFalse else GTrue
    | F.Atom (r, ts) ->
        let fact = Structure.Instance.fact r (List.map (element env) ts) in
        let v = fact_var t fact in
        GLit (if sign then v else -v)
    | F.Eq (a, b) ->
        let same = Structure.Element.equal (element env a) (element env b) in
        if same = sign then GTrue else GFalse
    | F.Not g -> ground t env (not sign) g
    | F.And (a, b) ->
        if sign then gand [ ground t env true a; ground t env true b ]
        else gor [ ground t env false a; ground t env false b ]
    | F.Or (a, b) ->
        if sign then gor [ ground t env true a; ground t env true b ]
        else gand [ ground t env false a; ground t env false b ]
    | F.Implies (a, b) ->
        if sign then gor [ ground t env false a; ground t env true b ]
        else gand [ ground t env true a; ground t env false b ]
    | F.Forall (vs, g) ->
        let parts = assignments t env vs (fun env' -> ground t env' sign g) in
        if sign then gand parts else gor parts
    | F.Exists (vs, g) ->
        let parts = assignments t env vs (fun env' -> ground t env' sign g) in
        if sign then gor parts else gand parts
    | F.CountGeq (n, v, g) ->
        let dom = Array.to_list t.domain in
        if sign then
          gor
            (List.map
               (fun s ->
                 gand
                   (List.map (fun e -> ground t (SMap.add v e env) true g) s))
               (subsets n dom))
        else
          gand
            (List.map
               (fun s ->
                 gor (List.map (fun e -> ground t (SMap.add v e env) false g) s))
               (subsets n dom))

  and assignments t env vs k =
    match vs with
    | [] -> [ k env ]
    | v :: rest ->
        List.concat_map
          (fun e -> assignments t (SMap.add v e env) rest k)
          (Array.to_list t.domain)

  let rec lit_of t g =
    match g with
    | GTrue | GFalse -> assert false
    | GLit l -> l
    | GAnd parts ->
        let ls = List.map (lit_of t) parts in
        let a = fresh_aux t in
        List.iter (fun l -> add_clause t [ -a; l ]) ls;
        add_clause t (a :: List.map (fun l -> -l) ls);
        a
    | GOr parts ->
        let ls = List.map (lit_of t) parts in
        let a = fresh_aux t in
        List.iter (fun l -> add_clause t [ -l; a ]) ls;
        add_clause t (-a :: ls);
        a

  let rec assert_g t g =
    match g with
    | GTrue -> ()
    | GFalse -> add_clause t []
    | GLit l -> add_clause t [ l ]
    | GAnd parts -> List.iter (assert_g t) parts
    | GOr parts -> add_clause t (List.map (lit_of t) parts)

  let assert_formula ?(env = SMap.empty) t f = assert_g t (ground t env true f)
  let assert_negation ?(env = SMap.empty) t f = assert_g t (ground t env false f)

  let assert_instance t inst =
    Structure.Instance.iter_facts (fun f -> add_clause t [ fact_var t f ]) inst

  let model_to_instance t model =
    let base =
      Array.fold_left
        (fun inst e -> Structure.Instance.add_element e inst)
        Structure.Instance.empty t.domain
    in
    List.fold_left
      (fun inst f ->
        if model.(fact_var t f - 1) then Structure.Instance.add_fact f inst
        else inst)
      base (List.rev t.facts_rev)

  let solve t =
    match Reasoner.Dpll.solve ~nvars:t.nvars t.clauses with
    | Reasoner.Dpll.Unsat -> None
    | Reasoner.Dpll.Sat model -> Some (model_to_instance t model)

  let enumerate ?(limit = max_int) t =
    let project = List.init t.nfacts (fun i -> i + 1) in
    Reasoner.Dpll.enumerate ~nvars:t.nvars ~project ~limit t.clauses
    |> List.map (model_to_instance t)
end

(* ---------------------------------------------------------------- *)
(* Scenarios: ontologies exercising every connective the compiler
   handles, including the Eq fold and CountGeq subset expansion        *)
(* ---------------------------------------------------------------- *)

let sig_ar = Logic.Signature.of_list [ ("A", 1); ("B", 1); ("R", 2) ]

(* ∀x (A(x) → ∃y R(x,y)), ∀x∀y (R(x,y) → B(y)) *)
let o_exists =
  Logic.Ontology.make
    [
      F.Forall
        ( [ "x" ],
          F.Implies
            (atom "A" [ v "x" ], F.Exists ([ "y" ], atom "R" [ v "x"; v "y" ]))
        );
      F.Forall
        ( [ "x"; "y" ],
          F.Implies (atom "R" [ v "x"; v "y" ], atom "B" [ v "y" ]) );
    ]

(* Eq coverage: ∀x∀y (R(x,y) → (x = y ∨ B(y))) — the compile-time
   equality fold must agree with the reference's element comparison. *)
let o_eq =
  Logic.Ontology.make
    [
      F.Forall
        ( [ "x"; "y" ],
          F.Implies
            ( atom "R" [ v "x"; v "y" ],
              F.Or (F.Eq (v "x", v "y"), atom "B" [ v "y" ]) ) );
    ]

(* CountGeq coverage: ∀x (A(x) → ∃≥2 y R(x,y)), ¬∃≥3 y B(y). *)
let o_count =
  Logic.Ontology.make
    [
      F.Forall
        ( [ "x" ],
          F.Implies
            (atom "A" [ v "x" ], F.CountGeq (2, "y", atom "R" [ v "x"; v "y" ]))
        );
      F.Not (F.CountGeq (3, "y", atom "B" [ v "y" ]));
    ]

let scenarios =
  [ ("exists", o_exists); ("eq", o_eq); ("count", o_count) ]

let domain_of d extra =
  Structure.Instance.domain_list d @ Structure.Instance.fresh_nulls extra d

let ontology_signature o d =
  Logic.Signature.union sig_ar
    (Logic.Signature.union
       (Logic.Signature.of_formulas (Logic.Ontology.all_sentences o))
       (Structure.Instance.signature d))

(* Build both groundings of (O, D) over the same domain. *)
let both o d extra =
  let domain = domain_of d extra in
  let signature = ontology_signature o d in
  let g = Reasoner.Ground.create ~domain ~signature () in
  let r = Reference.create ~domain ~signature in
  List.iter
    (fun s ->
      Reasoner.Ground.assert_formula g s;
      Reference.assert_formula r s)
    (Logic.Ontology.all_sentences o);
  Reasoner.Ground.assert_instance g d;
  Reference.assert_instance r d;
  (g, r)

let canonical insts =
  List.sort_uniq compare
    (List.map
       (fun i -> List.sort Structure.Instance.compare_fact (Structure.Instance.facts i))
       insts)

let random_instance seed size p =
  let rng = Random.State.make [| seed |] in
  Structure.Randgen.instance ~rng ~signature:sig_ar ~size ~p

(* 1. Same satisfiability verdict on random instances. *)
let test_sat_agreement =
  QCheck.Test.make ~name:"rank grounder agrees on satisfiability" ~count:30
    QCheck.(pair (int_bound 100000) (int_bound 2))
    (fun (seed, extra) ->
      let d = random_instance seed 3 0.4 in
      List.for_all
        (fun (_, o) ->
          let g, r = both o d extra in
          Bool.equal
            (Option.is_some (Reasoner.Ground.solve g))
            (Option.is_some (Reference.solve r)))
        scenarios)

(* 2. Identical model sets (not just counts) under enumerate. The
   domain is kept at ≤ 2 elements so the full model space (≤ 2^8) fits
   under the limit — a truncated enumeration would compare prefixes
   that legitimately differ between implementations. *)
let test_enumerate_agreement =
  QCheck.Test.make ~name:"rank grounder enumerates the same models" ~count:15
    QCheck.(int_bound 100000)
    (fun seed ->
      let d = random_instance seed 1 0.5 in
      List.for_all
        (fun (_, o) ->
          let g, r = both o d 1 in
          let mg = Reasoner.Ground.enumerate ~limit:2000 g in
          let mr = Reference.enumerate ~limit:2000 r in
          List.length mg = List.length mr
          && canonical mg = canonical mr)
        scenarios)

(* 3. Certain answers through the session engine (rank-based grounding,
   witness shortcut, assumption solving) agree with per-tuple reference
   refutation solves. *)
let test_certain_agreement =
  QCheck.Test.make ~name:"engine certain answers match reference grounder"
    ~count:20
    QCheck.(pair (int_bound 100000) (int_bound 1))
    (fun (seed, extra) ->
      let d = random_instance seed 3 0.4 in
      let q = cq ~name:"q" ~answer:[ "x" ] [ ("B", [ v "x" ]) ] in
      let qf = Query.Cq.to_formula q in
      List.for_all
        (fun (_, o) ->
          Reasoner.Engine.clear_cache ();
          List.for_all
            (fun el ->
              let reference =
                (* certain iff O + D + ¬q(el) is unsatisfiable at every
                   bound 0..extra *)
                List.for_all
                  (fun k ->
                    let domain = domain_of d k in
                    let signature =
                      Logic.Signature.union (ontology_signature o d)
                        (Logic.Signature.of_formula qf)
                    in
                    let r = Reference.create ~domain ~signature in
                    List.iter
                      (Reference.assert_formula r)
                      (Logic.Ontology.all_sentences o);
                    Reference.assert_instance r d;
                    Reference.assert_negation
                      ~env:(SMap.singleton "x" el)
                      r qf;
                    Option.is_none (Reference.solve r))
                  (List.init (extra + 1) Fun.id)
              in
              let bounded =
                Reasoner.Bounded.certain_cq ~max_extra:extra o d q [ el ]
              in
              let session =
                Omq.certain ~max_extra:extra (Omq.of_cq o q) d [ el ]
              in
              Bool.equal reference bounded && Bool.equal reference session)
            (Structure.Instance.domain_list d))
        scenarios)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  qsuite
    [ test_sat_agreement; test_enumerate_agreement; test_certain_agreement ]
