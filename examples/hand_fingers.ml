(* The Section 1 example in full: O1 = "a hand has exactly five
   fingers", O2 = "a hand has a thumb finger". Each ontology alone has
   PTIME query evaluation; their union is coNP-hard, because on a hand
   with five named fingers one of them must be the thumb — a certain
   disjunction with no certain disjunct (non-materializability).

     dune exec examples/hand_fingers.exe
*)

let fingers = [ "f1"; "f2"; "f3"; "f4"; "f5" ]

let hand =
  Structure.Parse.instance_of_string
    (String.concat "\n"
       ("Hand(h)" :: List.map (fun f -> Printf.sprintf "hasFinger(h, %s)" f) fingers))

let () =
  let o1 = Dl.Parser.parse_tbox "Hand << == 5 hasFinger" in
  let o2 = Dl.Parser.parse_tbox "Hand << exists hasFinger . Thumb" in
  let union = Logic.Ontology.union (Dl.Translate.tbox o1) (Dl.Translate.tbox o2) in
  let thumb = Query.Parse.cq_of_string "q(x) <- Thumb(x)" in

  Fmt.pr "=== the hand/finger example (Section 1) ===@.";

  (* 1. each ontology alone admits PTIME query evaluation (Theorem 13) *)
  List.iter
    (fun (name, tbox) ->
      match Classify.Decide.decide ~samples:5 (Dl.Translate.tbox tbox) with
      | Classify.Decide.Ptime_evidence n ->
          Fmt.pr "%s: PTIME query evaluation (%d bouquets checked)@." name n
      | Classify.Decide.Conp_hard _ -> Fmt.pr "%s: unexpectedly hard!@." name)
    [ ("O1", o1); ("O2", o2) ];

  (* 2. the union is non-materializable: the thumb disjunction is
     certain, no disjunct is *)
  let pointed = List.map (fun f -> (thumb, [ Structure.Element.Const f ])) fingers in
  Fmt.pr "@.union O1 + O2 on a five-fingered hand:@.";
  Fmt.pr "  'some named finger is the thumb' certain: %b@."
    (Reasoner.Bounded.certain_disjunction ~max_extra:1 union hand pointed);
  List.iter
    (fun f ->
      Fmt.pr "  'finger %s is the thumb' certain: %b@." f
        (Reasoner.Bounded.certain_cq ~max_extra:1 union hand thumb
           [ Structure.Element.Const f ]))
    fingers;

  (* 3. hence no materialization exists *)
  Fmt.pr "  materializable on this instance: %b@."
    (Material.Materializability.materializable_on ~max_model_extra:1 ~max_extra:1 union hand);

  (* 4. and the Theorem 13 decision finds the witness *)
  Fmt.pr "@.Theorem 13 decision for the union:@.";
  match Classify.Decide.decide ~samples:0 union with
  | Classify.Decide.Conp_hard w ->
      Fmt.pr "  coNP-hard; minimal witness bouquet:@.  %a@." Structure.Instance.pp w
  | Classify.Decide.Ptime_evidence _ -> Fmt.pr "  (no witness found)@."
