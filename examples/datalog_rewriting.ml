(* Theorem 5 / Theorem 7 in action: for ontologies with PTIME query
   evaluation, certain answers are Datalog≠-rewritable. For the Horn
   ontology

     ∀x (A(x) → ∃y (R(x,y) ∧ B(y)))
     ∀x,y (R(x,y) → (B(y) → C(x)))

   and the query q(x) ← C(x), the rewriting is the Datalog program

     goal(x) <- C(x)
     goal(x) <- A(x)                 (the fresh B-successor fires rule 2)
     goal(x) <- R(x,y), B(y)

   evaluated bottom-up by the semi-naive engine. We validate it against
   (a) the chase (a universal model) and (b) the bounded certain-answer
   engine, on random instances.

     dune exec examples/datalog_rewriting.exe
*)

let v s = Logic.Term.Var s

let o_horn =
  Logic.Ontology.make
    [
      Logic.Formula.Forall
        ( [ "x" ],
          Logic.Formula.Implies
            ( Logic.Formula.Eq (v "x", v "x"),
              Logic.Formula.Implies
                ( Logic.Formula.Atom ("A", [ v "x" ]),
                  Logic.Formula.Exists
                    ( [ "y" ],
                      Logic.Formula.And
                        ( Logic.Formula.Atom ("R", [ v "x"; v "y" ]),
                          Logic.Formula.Atom ("B", [ v "y" ]) ) ) ) ) );
      Logic.Formula.Forall
        ( [ "x"; "y" ],
          Logic.Formula.Implies
            ( Logic.Formula.Atom ("R", [ v "x"; v "y" ]),
              Logic.Formula.Implies
                ( Logic.Formula.Atom ("B", [ v "y" ]),
                  Logic.Formula.Atom ("C", [ v "x" ]) ) ) );
    ]

let rewriting =
  Datalog.Program.make ~goal:"goal"
    [
      Datalog.Program.rule ~head:("goal", [ v "x" ])
        ~body:[ Datalog.Program.Pos ("C", [ v "x" ]) ];
      Datalog.Program.rule ~head:("goal", [ v "x" ])
        ~body:[ Datalog.Program.Pos ("A", [ v "x" ]) ];
      Datalog.Program.rule ~head:("goal", [ v "x" ])
        ~body:
          [
            Datalog.Program.Pos ("R", [ v "x"; v "y" ]);
            Datalog.Program.Pos ("B", [ v "y" ]);
          ];
    ]

let chase_rules =
  [
    Reasoner.Chase.rule ~name:"exists"
      ~body:[ ("A", [ v "x" ]) ]
      ~head:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
      ();
    Reasoner.Chase.rule ~name:"propagate"
      ~body:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
      ~head:[ ("C", [ v "x" ]) ]
      ();
  ]

let qc = Query.Parse.cq_of_string "q(x) <- C(x)"

let () =
  Fmt.pr "=== Datalog rewriting of a PTIME ontology (Theorems 5 and 7) ===@.";
  Fmt.pr "program:@.%a@.@." Datalog.Program.pp rewriting;
  let rng = Random.State.make [| 31 |] in
  let signature = Logic.Signature.of_list [ ("A", 1); ("B", 1); ("R", 2) ] in
  let agree = ref 0 and total = ref 0 in
  for i = 1 to 12 do
    let d = Structure.Randgen.nonempty_instance ~rng ~signature ~size:4 ~p:0.3 in
    let datalog_answers = Datalog.Seminaive.answers rewriting d in
    let mismatches =
      List.filter
        (fun el ->
          let by_datalog = List.mem [ el ] datalog_answers in
          let by_chase = Reasoner.Chase.certain_cq chase_rules d qc [ el ] in
          let by_certain =
            Reasoner.Bounded.certain_cq ~max_extra:2 o_horn d qc [ el ]
          in
          incr total;
          if by_datalog = by_chase && by_chase = by_certain then begin
            incr agree;
            false
          end
          else true)
        (Structure.Instance.domain_list d)
    in
    if mismatches <> [] then
      Fmt.pr "instance %d: MISMATCH at %a@." i
        Fmt.(list ~sep:comma Structure.Element.pp)
        mismatches
  done;
  Fmt.pr "rewriting = chase = certain answers on %d/%d checks@." !agree !total;

  (* the rewriting also scales: transitive-style chains *)
  Fmt.pr "@.chain scaling (certain C(n0), seconds):@.";
  List.iter
    (fun n ->
      let d =
        Structure.Instance.of_list
          (("A", [ Structure.Element.Const "n0" ])
          :: List.init n (fun i ->
                 ( "R",
                   [
                     Structure.Element.Const (Printf.sprintf "n%d" i);
                     Structure.Element.Const (Printf.sprintf "n%d" (i + 1));
                   ] )))
      in
      let t0 = Obs.Clock.now () in
      let _ = Datalog.Seminaive.answers rewriting d in
      Fmt.pr "  n=%-4d datalog %.4fs@." n (Obs.Clock.now () -. t0))
    [ 10; 50; 100 ]
