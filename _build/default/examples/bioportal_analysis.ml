(* The Section 1 corpus analysis on the synthetic BioPortal stand-in:
   almost all ontologies land in fragments with a PTIME/coNP dichotomy.

     dune exec examples/bioportal_analysis.exe
*)

let () =
  Fmt.pr "=== BioPortal-style corpus analysis (Section 1) ===@.";
  let corpus = Bioportal.Generate.corpus () in
  let reports = List.map Bioportal.Analyze.analyze corpus in
  let table = Bioportal.Analyze.tabulate reports in
  Fmt.pr "%a@." Bioportal.Analyze.pp_table table;
  let pt, pf, pq = Bioportal.Analyze.paper_reference in
  Fmt.pr "@.paper reference: %d total, %d in ALCHIF depth <= 2, %d in ALCHIQ depth 1@."
    pt pf pq;
  (* a closer look at the distribution of DL names *)
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let k = r.Bioportal.Analyze.name in
      Hashtbl.replace by_name k (1 + Option.value (Hashtbl.find_opt by_name k) ~default:0))
    reports;
  Fmt.pr "@.DL name distribution:@.";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_name []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.iter (fun (k, v) -> Fmt.pr "  %-10s %d@." k v)
