(* Quickstart: build an ontology, an instance and a query; compute the
   certain answers and locate the ontology in the Figure 1 landscape.

     dune exec examples/quickstart.exe
*)

let () =
  (* The ontology, in the DL concrete syntax: every employed person
     works on some project, and project work propagates to managers. *)
  let tbox =
    Dl.Parser.parse_tbox
      {|Employee << exists worksOn . Project
role worksOn << involvedIn|}
  in
  let ontology = Dl.Translate.tbox tbox in

  (* The database: incomplete — nothing is said about what anna works
     on. *)
  let data =
    Structure.Parse.instance_of_string
      {|Employee(anna)
worksOn(bob, apollo)
Project(apollo)|}
  in

  (* The query: who is involved in some project? *)
  let query = Query.Parse.cq_of_string "q(x) <- involvedIn(x,y), Project(y)" in

  let omq = Omq.of_cq ontology query in

  Fmt.pr "=== quickstart ===@.";
  Fmt.pr "ontology:@.%a@." Dl.Tbox.pp tbox;
  Fmt.pr "@.certain answers of %s:@." (Query.Cq.to_string query);
  List.iter
    (fun t ->
      Fmt.pr "  (%a)@." Fmt.(list ~sep:comma Structure.Element.pp) t)
    (Omq.certain_answers omq data);

  (* anna is an answer even though her project is anonymous: the
     ontology completes the data. *)
  Fmt.pr "@.classification: %a@." Classify.Landscape.pp_evidence
    (Omq.classify omq)
