examples/quickstart.mli:
