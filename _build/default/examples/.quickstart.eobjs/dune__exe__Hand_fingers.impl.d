examples/hand_fingers.ml: Classify Dl Fmt List Logic Material Printf Query Reasoner String Structure
