examples/bioportal_analysis.mli:
