examples/csp_coloring.ml: Bool Csp Fmt Gf List Reasoner Structure
