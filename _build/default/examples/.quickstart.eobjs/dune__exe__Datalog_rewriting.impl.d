examples/datalog_rewriting.ml: Datalog Fmt List Logic Printf Query Random Reasoner Structure Unix
