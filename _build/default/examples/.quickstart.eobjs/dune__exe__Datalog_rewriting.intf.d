examples/datalog_rewriting.mli:
