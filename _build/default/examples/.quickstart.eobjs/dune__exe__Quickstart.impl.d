examples/quickstart.ml: Classify Dl Fmt List Omq Query Structure
