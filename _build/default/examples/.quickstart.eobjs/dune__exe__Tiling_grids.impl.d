examples/tiling_grids.ml: Array Dl Fmt List Option Query Reasoner String Structure Tm
