examples/csp_coloring.mli:
