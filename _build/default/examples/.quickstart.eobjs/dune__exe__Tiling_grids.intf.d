examples/tiling_grids.mli:
