examples/bioportal_analysis.ml: Bioportal Fmt Hashtbl List Option
