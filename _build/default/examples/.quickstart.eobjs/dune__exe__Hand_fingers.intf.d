examples/hand_fingers.mli:
