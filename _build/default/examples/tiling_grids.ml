(* Theorem 10: the ALCIF`-depth-2 grid ontologies. OP verifies properly
   tiled grids by propagating (= 1 R) markers that input instances
   cannot preset, and triggers a disjunction at the lower-left corner —
   the non-materializability behind the undecidability proof.

     dune exec examples/tiling_grids.exe
*)

let corner = Structure.Element.Const "g_0_0"

let () =
  Fmt.pr "=== Theorem 10: tiling ontologies ===@.";
  let p = Tm.Tiling.trivial in
  Fmt.pr "tiling problem: tiles %s, init %s, final %s@."
    (String.concat "," p.Tm.Tiling.tiles) p.Tm.Tiling.init p.Tm.Tiling.final;
  (match Tm.Tiling.solve p with
  | None -> Fmt.pr "no tiling (unexpected)@."
  | Some f ->
      Fmt.pr "a tiling of %dx%d exists@." (Array.length f) (Array.length f.(0)));

  let op = Tm.Gridenc.ontology_undecidability p in
  Fmt.pr "@.OP: %d axioms, DL name %s, depth %d@." (List.length op)
    (Dl.Tbox.name op) (Dl.Tbox.depth op);

  (* on a properly tiled grid instance the disjunction fires *)
  let f = Option.get (Tm.Tiling.solve_fixed p 1 0) in
  let d = Tm.Tiling.grid_instance f in
  let o = Dl.Translate.tbox op in
  let qb1 = Query.Parse.cq_of_string "q(x) <- B1(x)" in
  let qb2 = Query.Parse.cq_of_string "q(x) <- B2(x)" in
  Fmt.pr "@.grid(d) holds at the corner: %b@." (Tm.Gridenc.grid_holds p d corner);
  Fmt.pr "B1 or B2 certain at the corner: %b@."
    (Reasoner.Bounded.certain_disjunction ~max_extra:0 o d
       [ (qb1, [ corner ]); (qb2, [ corner ]) ]);
  Fmt.pr "B1 alone certain: %b@."
    (Reasoner.Bounded.certain_cq ~max_extra:0 o d qb1 [ corner ]);

  (* on a broken grid nothing fires *)
  let broken =
    Structure.Parse.instance_of_string
      "B(g_0_0)\nF(g_1_0)\nX(g_0_0, g_1_0)"
  in
  Fmt.pr "@.broken grid (no initial tile): grid(d) %b, disjunction certain %b@."
    (Tm.Gridenc.grid_holds p broken corner)
    (Reasoner.Bounded.certain_disjunction ~max_extra:0 o broken
       [ (qb1, [ corner ]); (qb2, [ corner ]) ]);

  (* the run fitting problem (Theorem 12's base) *)
  Fmt.pr "@.run fitting (Definition 8) with the 'find an a' machine:@.";
  let m = Tm.Machine.find_a in
  let pr = Tm.Fitting.parse m [ "q0 ? ?"; "? ? ?"; "? ? ?" ] in
  (match Tm.Fitting.solve m pr with
  | Some run ->
      List.iter (fun c -> Fmt.pr "  %a@." Tm.Machine.pp_config c) run
  | None -> Fmt.pr "  no accepting run@.")
