(* Theorem 8: every CSP embeds into ontology-mediated querying with
   uGF2(1,=) ontologies. We encode graph 2-coloring and 3-coloring
   templates and check, on concrete graphs, that CSP solvability
   coincides with consistency of the lifted instance w.r.t. the
   encoding ontology.

     dune exec examples/csp_coloring.exe
*)

let e s = Structure.Element.Const s

let ugraph edges =
  Structure.Instance.of_list
    (List.concat_map
       (fun (a, b) -> [ ("E", [ e a; e b ]); ("E", [ e b; e a ]) ])
       edges)

let square = ugraph [ ("a", "b"); ("b", "c"); ("c", "d"); ("d", "a") ]
let pentagon = ugraph [ ("1", "2"); ("2", "3"); ("3", "4"); ("4", "5"); ("5", "1") ]

let () =
  Fmt.pr "=== Theorem 8: CSPs as ontology-mediated queries ===@.";
  List.iter
    (fun k ->
      let template = Csp.Precolor.closure (Csp.Template.k_colouring k) in
      let ontology = Csp.Encode.ontology ~variant:Csp.Encode.Eq template in
      (match Gf.Fragment.of_ontology ontology with
      | Some d -> Fmt.pr "@.%d-coloring encoded in %s@." k (Gf.Fragment.name d)
      | None -> assert false);
      List.iter
        (fun (name, graph) ->
          let direct = Csp.Solve.solvable template graph in
          let lifted = Csp.Encode.lift_instance template graph in
          let consistent =
            Reasoner.Bounded.is_consistent ~max_extra:3 ontology lifted
          in
          Fmt.pr "  %-8s  %d-colorable: %b   encoding consistent: %b   %s@."
            name k direct consistent
            (if Bool.equal direct consistent then "(agrees)" else "(MISMATCH)"))
        [ ("square", square); ("pentagon", pentagon) ])
    [ 2; 3 ];

  (* precoloring pins survive the round trip *)
  Fmt.pr "@.precoloring: pinning adjacent vertices to the same color@.";
  let template = Csp.Precolor.closure (Csp.Template.k_colouring 2) in
  let pinned =
    Csp.Precolor.pin (e "a") (e "col0")
      (Csp.Precolor.pin (e "b") (e "col0") square)
  in
  Fmt.pr "  2-colorable with both pins on col0: %b@."
    (Csp.Solve.solvable template pinned)
