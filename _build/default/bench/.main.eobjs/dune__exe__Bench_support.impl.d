bench/bench_support.ml: Dl List Logic Printf Query Random Structure Unix
