bench/main.mli:
