test/test_properties.ml: Alcotest Bool Csp Gf Helpers List Logic Material QCheck QCheck_alcotest Random Reasoner Structure
