test/test_classify.ml: Alcotest Classify Dl Fmt Helpers List Structure
