test/test_rewriting.ml: Alcotest Helpers List Logic Printf Reasoner Rewriting Structure
