test/test_bioportal.ml: Alcotest Bioportal Classify Dl List
