test/test_csp.ml: Alcotest Bool Csp Gf Helpers List Logic QCheck QCheck_alcotest Random Reasoner Structure
