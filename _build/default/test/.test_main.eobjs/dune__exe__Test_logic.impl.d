test/test_logic.ml: Alcotest Helpers List Logic Random Structure
