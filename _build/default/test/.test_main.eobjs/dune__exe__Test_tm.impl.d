test/test_tm.ml: Alcotest Dl Gf Helpers List Logic Option Printf Reasoner String Structure Tm
