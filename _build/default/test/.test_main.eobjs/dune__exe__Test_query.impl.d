test/test_query.ml: Alcotest Bool Helpers List Logic QCheck QCheck_alcotest Query Random Structure
