test/test_datalog.ml: Alcotest Datalog Helpers List Logic Printf QCheck QCheck_alcotest Random Structure
