test/test_sat22.ml: Alcotest Bool Helpers List Logic Option QCheck QCheck_alcotest Random Sat22 Structure
