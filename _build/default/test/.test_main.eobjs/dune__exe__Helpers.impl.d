test/helpers.ml: Dl List Logic Query Structure
