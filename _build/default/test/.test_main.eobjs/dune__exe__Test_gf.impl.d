test/test_gf.ml: Alcotest Gf Helpers List Logic Reasoner
