test/test_dl.ml: Alcotest Bool Dl Gf Helpers List Logic QCheck QCheck_alcotest Random Reasoner Structure
