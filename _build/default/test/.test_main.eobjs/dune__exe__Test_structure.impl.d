test/test_structure.ml: Alcotest Helpers List Logic Option QCheck QCheck_alcotest Random Structure
