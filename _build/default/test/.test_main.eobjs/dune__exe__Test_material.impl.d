test/test_material.ml: Alcotest Helpers List Logic Material Option Reasoner Structure
