test/test_reasoner.ml: Alcotest Array Bool Helpers List Logic QCheck QCheck_alcotest Query Random Reasoner Structure
