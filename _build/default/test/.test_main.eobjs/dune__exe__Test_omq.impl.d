test/test_omq.ml: Alcotest Classify Gf Helpers List Omq
