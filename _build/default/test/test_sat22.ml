open Helpers

let check = Alcotest.(check bool)

let p = Sat22.Twotwosat.Var "p"
let q = Sat22.Twotwosat.Var "q"
let r = Sat22.Twotwosat.Var "r"
let s = Sat22.Twotwosat.Var "s"
let tt = Sat22.Twotwosat.Truth true
let ff = Sat22.Twotwosat.Truth false

(* force p: p ∨ p ∨ ¬true ∨ ¬true *)
let force_true x = Sat22.Twotwosat.clause x x tt tt

(* force ¬p: false ∨ false ∨ ¬p ∨ ¬p *)
let force_false x = Sat22.Twotwosat.clause ff ff x x

let test_solver () =
  check "free clause sat" true (Sat22.Twotwosat.satisfiable [ Sat22.Twotwosat.clause p q r s ]);
  check "forced contradiction unsat" false
    (Sat22.Twotwosat.satisfiable [ force_true p; force_false p ]);
  check "chain sat" true
    (Sat22.Twotwosat.satisfiable
       [ force_true p; Sat22.Twotwosat.clause q q p p ]);
  (* solution check *)
  (match Sat22.Twotwosat.solve [ force_true p; force_false q ] with
  | None -> Alcotest.fail "should be satisfiable"
  | Some a ->
      check "p true" true (Logic.Names.SMap.find "p" a);
      check "q false" false (Logic.Names.SMap.find "q" a))

let test_solver_vs_bruteforce =
  QCheck.Test.make ~name:"2+2 solver agrees with truth tables" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Sat22.Twotwosat.random ~rng ~nvars:3 ~nclauses:4 in
      let vars = Logic.Names.SSet.elements (Sat22.Twotwosat.variables f) in
      let rec assignments = function
        | [] -> [ Logic.Names.SMap.empty ]
        | v :: rest ->
            List.concat_map
              (fun a ->
                [ Logic.Names.SMap.add v true a; Logic.Names.SMap.add v false a ])
              (assignments rest)
      in
      let brute = List.exists (fun a -> Sat22.Twotwosat.eval a f) (assignments vars) in
      Bool.equal brute (Sat22.Twotwosat.satisfiable f))

(* ---------------------------------------------------------------- *)
(* The Theorem 3 reduction with the D ⊑ A ⊔ B witness                *)
(* ---------------------------------------------------------------- *)

let witness =
  {
    Sat22.Reduction.base = inst [ ("D", [ "a" ]) ];
    q1 = cq ~name:"q1" ~answer:[ "x" ] [ ("A", [ v "x" ]) ];
    a1 = e "a";
    q2 = cq ~name:"q2" ~answer:[ "x" ] [ ("B", [ v "x" ]) ];
    a2 = e "a";
  }

let test_reduction_cases () =
  let cases =
    [
      ([ force_true p; force_false p ], "contradiction");
      ([ Sat22.Twotwosat.clause p q r s ], "free");
      ([ force_true p; Sat22.Twotwosat.clause q q p p ], "chain");
      ( [ force_true p; force_true q; Sat22.Twotwosat.clause ff ff p q ],
        "both forced then clashed" );
    ]
  in
  List.iter
    (fun (f, name) ->
      let unsat, certain = Sat22.Reduction.unsat_iff_certain o_disj witness f in
      Alcotest.(check bool) (name ^ ": unsat iff certain") unsat certain)
    cases

let test_reduction_random =
  QCheck.Test.make ~name:"reduction: unsat iff certain (random)" ~count:12
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Sat22.Twotwosat.random ~rng ~nvars:2 ~nclauses:2 in
      let unsat, certain = Sat22.Reduction.unsat_iff_certain o_disj witness f in
      Bool.equal unsat certain)

let test_gadget_structure () =
  let f = [ Sat22.Twotwosat.clause p q r s ] in
  let d = Sat22.Reduction.instance witness f in
  (* one copy of the base instance per variable *)
  Alcotest.(check int) "four gadgets" 4 (Structure.Instance.cardinal d);
  check "query exists" true (Option.is_some (Sat22.Reduction.query witness f))

let suite =
  [
    Alcotest.test_case "solver" `Quick test_solver;
    QCheck_alcotest.to_alcotest test_solver_vs_bruteforce;
    Alcotest.test_case "reduction_cases" `Quick test_reduction_cases;
    QCheck_alcotest.to_alcotest test_reduction_random;
    Alcotest.test_case "gadget_structure" `Quick test_gadget_structure;
  ]
