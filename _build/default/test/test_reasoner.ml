open Helpers
module F = Logic.Formula

let check = Alcotest.(check bool)

(* ---------------------------------------------------------------- *)
(* DPLL                                                              *)
(* ---------------------------------------------------------------- *)

let test_dpll_basic () =
  check "sat" true
    (match Reasoner.Dpll.solve ~nvars:2 [ [ 1; 2 ]; [ -1 ] ] with
    | Reasoner.Dpll.Sat m -> (not m.(0)) && m.(1)
    | Reasoner.Dpll.Unsat -> false);
  check "unsat" true
    (Reasoner.Dpll.solve ~nvars:1 [ [ 1 ]; [ -1 ] ] = Reasoner.Dpll.Unsat);
  check "empty clause" true
    (Reasoner.Dpll.solve ~nvars:1 [ [] ] = Reasoner.Dpll.Unsat)

let test_dpll_enumerate () =
  (* x1 ∨ x2 has three models. *)
  let ms = Reasoner.Dpll.enumerate ~nvars:2 ~project:[ 1; 2 ] [ [ 1; 2 ] ] in
  Alcotest.(check int) "three models" 3 (List.length ms)

let test_dpll_vs_brute =
  QCheck.Test.make ~name:"dpll agrees with brute force" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 1 4))
    (fun (seed, nvars) ->
      let rng = Random.State.make [| seed |] in
      let nclauses = 1 + Random.State.int rng 8 in
      let clause () =
        let len = 1 + Random.State.int rng 3 in
        List.init len (fun _ ->
            let v = 1 + Random.State.int rng nvars in
            if Random.State.bool rng then v else -v)
      in
      let clauses = List.init nclauses (fun _ -> clause ()) in
      let brute_sat =
        let rec assignments n =
          if n = 0 then [ [] ]
          else
            List.concat_map
              (fun a -> [ true :: a; false :: a ])
              (assignments (n - 1))
        in
        List.exists
          (fun a ->
            let arr = Array.of_list a in
            List.for_all
              (List.exists (fun l ->
                   if l > 0 then arr.(l - 1) else not arr.(-l - 1)))
              clauses)
          (assignments nvars)
      in
      Bool.equal brute_sat
        (match Reasoner.Dpll.solve ~nvars clauses with
        | Reasoner.Dpll.Sat _ -> true
        | Reasoner.Dpll.Unsat -> false))

(* ---------------------------------------------------------------- *)
(* Bounded model finding                                             *)
(* ---------------------------------------------------------------- *)

let test_consistency () =
  (* ∀x (D(x) → A(x) ∨ B(x)) with D(a): consistent. *)
  check "disj consistent" true
    (Reasoner.Bounded.is_consistent o_disj (inst [ ("D", [ "a" ]) ]));
  (* A ⊓ ¬A: inconsistent. *)
  let contradiction =
    Logic.Ontology.make
      [ forall_eq "x" (F.Implies (atom "D" [ v "x" ], F.And (atom "A" [ v "x" ], F.Not (atom "A" [ v "x" ])))) ]
  in
  check "contradiction" false
    (Reasoner.Bounded.is_consistent contradiction (inst [ ("D", [ "a" ]) ]))

let test_certain_disjunctive () =
  (* O = D ⊑ A ⊔ B, D = {D(a)}: A(a) ∨ B(a) is certain, neither disjunct is. *)
  let d = inst [ ("D", [ "a" ]) ] in
  let qa = cq ~answer:[ "x" ] [ ("A", [ v "x" ]) ] in
  let qb = cq ~answer:[ "x" ] [ ("B", [ v "x" ]) ] in
  check "A or B certain" true
    (Reasoner.Bounded.certain_disjunction o_disj d [ (qa, [ e "a" ]); (qb, [ e "a" ]) ]);
  check "A not certain" false (Reasoner.Bounded.certain_cq o_disj d qa [ e "a" ]);
  check "B not certain" false (Reasoner.Bounded.certain_cq o_disj d qb [ e "a" ]);
  check "UCQ A|B certain" true
    (Reasoner.Bounded.certain_ucq o_disj d (ucq [ qa; qb ]) [ e "a" ])

let test_certain_horn () =
  (* o_horn: A(a) entails ∃y R(a,y) ∧ B(y), hence C(a). *)
  let d = inst [ ("A", [ "a" ]) ] in
  let qc = cq ~answer:[ "x" ] [ ("C", [ v "x" ]) ] in
  let qrb = cq ~answer:[ "x" ] [ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ] in
  check "R.B certain" true (Reasoner.Bounded.certain_cq ~max_extra:2 o_horn d qrb [ e "a" ]);
  check "C certain" true (Reasoner.Bounded.certain_cq ~max_extra:2 o_horn d qc [ e "a" ]);
  let qb = cq ~answer:[ "x" ] [ ("B", [ v "x" ]) ] in
  check "B(a) not certain" false (Reasoner.Bounded.certain_cq o_horn d qb [ e "a" ])

let test_hand_finger () =
  (* Section 1's example: O1 ∪ O2 over a hand with five fingers forces a
     thumb among them, but no particular finger is a thumb. *)
  let fingers = [ "f1"; "f2"; "f3"; "f4"; "f5" ] in
  let d =
    inst (("Hand", [ "h" ]) :: List.map (fun f -> ("hasFinger", [ "h"; f ])) fingers)
  in
  let qt = cq ~answer:[ "x" ] [ ("Thumb", [ v "x" ]) ] in
  (* with O2 alone: thumb is certain only as an existential *)
  let q_has_thumb =
    cq ~answer:[ "x" ] [ ("hasFinger", [ v "x"; v "y" ]); ("Thumb", [ v "y" ]) ]
  in
  check "O2: hand has a thumb finger" true
    (Reasoner.Bounded.certain_cq ~max_extra:1 o_hand_thumb d q_has_thumb [ e "h" ]);
  check "O2: f1 need not be a thumb" false
    (Reasoner.Bounded.certain_cq o_hand_thumb d qt [ e "f1" ]);
  (* with the union: the five named fingers are all the fingers, so one
     of them must be the thumb — a certain disjunction with no certain
     disjunct (non-materializability). *)
  let pointed = List.map (fun f -> (qt, [ e f ])) fingers in
  check "union: disjunction certain" true
    (Reasoner.Bounded.certain_disjunction ~max_extra:1 o_hand_union d pointed);
  check "union: f1 thumb not certain" false
    (Reasoner.Bounded.certain_cq ~max_extra:1 o_hand_union d qt [ e "f1" ]);
  (* with O1 ∪ O2 but only 4 named fingers, the thumb may be the fifth *)
  let d4 =
    inst
      (("Hand", [ "h" ])
      :: List.map (fun f -> ("hasFinger", [ "h"; f ])) [ "f1"; "f2"; "f3"; "f4" ])
  in
  check "4 fingers: disjunction not certain" false
    (Reasoner.Bounded.certain_disjunction ~max_extra:1 o_hand_union d4
       (List.map (fun f -> (qt, [ e f ])) [ "f1"; "f2"; "f3"; "f4" ]))

let test_countermodel_is_model () =
  let d = inst [ ("D", [ "a" ]) ] in
  let qa = cq ~answer:[ "x" ] [ ("A", [ v "x" ]) ] in
  match Reasoner.Bounded.countermodel o_disj d (ucq [ qa ]) [ e "a" ] with
  | None -> Alcotest.fail "expected a countermodel"
  | Some m ->
      check "contains D" true (Structure.Instance.subset d m);
      check "is model of O" true
        (Structure.Modelcheck.is_model m (Logic.Ontology.all_sentences o_disj));
      check "refutes query" false (Query.Cq.holds m qa [ e "a" ])

(* ---------------------------------------------------------------- *)
(* Chase                                                             *)
(* ---------------------------------------------------------------- *)

let horn_rules =
  [
    Reasoner.Chase.rule ~name:"exists"
      ~body:[ ("A", [ v "x" ]) ]
      ~head:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
      ();
    Reasoner.Chase.rule ~name:"propagate"
      ~body:[ ("R", [ v "x"; v "y" ]); ("B", [ v "y" ]) ]
      ~head:[ ("C", [ v "x" ]) ]
      ();
  ]

let test_chase_horn () =
  let d = inst [ ("A", [ "a" ]) ] in
  let r = Reasoner.Chase.run horn_rules d in
  check "saturated" true r.saturated;
  let qc = cq ~answer:[ "x" ] [ ("C", [ v "x" ]) ] in
  check "C derived" true (Query.Cq.holds r.instance qc [ e "a" ]);
  (* chase result is a model of the rules: the bounded engine agrees *)
  check "agrees with bounded engine" true
    (Reasoner.Bounded.certain_cq ~max_extra:2 o_horn d qc [ e "a" ])

let test_chase_restricted () =
  (* If the head is already satisfied, the chase adds nothing. *)
  let d = inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]); ("B", [ "b" ]) ] in
  let r = Reasoner.Chase.run horn_rules d in
  check "no fresh nulls" true
    (Structure.Element.Set.for_all Structure.Element.is_const
       (Structure.Instance.domain r.instance))

let test_chase_egd () =
  let rules = [] in
  let func_egd =
    Reasoner.Chase.egd ~name:"func_R"
      ~body:[ ("R", [ v "x"; v "y" ]); ("R", [ v "x"; v "z" ]) ]
      ~left:"y" ~right:"z" ()
  in
  (* merging a null into a constant *)
  let d =
    Structure.Instance.of_facts
      [
        Structure.Instance.fact "R" [ e "a"; e "b" ];
        Structure.Instance.fact "R" [ e "a"; Structure.Element.Null 0 ];
      ]
  in
  let r = Reasoner.Chase.run ~egds:[ func_egd ] rules d in
  Alcotest.(check int) "one fact left" 1 (Structure.Instance.cardinal r.instance);
  (* two distinct constants: failure *)
  let d2 = inst [ ("R", [ "a"; "b" ]); ("R", [ "a"; "c" ]) ] in
  check "egd failure" true
    (try
       ignore (Reasoner.Chase.run ~egds:[ func_egd ] rules d2);
       false
     with Reasoner.Chase.Egd_failure _ -> true)

let suite =
  [
    Alcotest.test_case "dpll_basic" `Quick test_dpll_basic;
    Alcotest.test_case "dpll_enumerate" `Quick test_dpll_enumerate;
    QCheck_alcotest.to_alcotest test_dpll_vs_brute;
    Alcotest.test_case "consistency" `Quick test_consistency;
    Alcotest.test_case "certain_disjunctive" `Quick test_certain_disjunctive;
    Alcotest.test_case "certain_horn" `Quick test_certain_horn;
    Alcotest.test_case "hand_finger" `Quick test_hand_finger;
    Alcotest.test_case "countermodel_is_model" `Quick test_countermodel_is_model;
    Alcotest.test_case "chase_horn" `Quick test_chase_horn;
    Alcotest.test_case "chase_restricted" `Quick test_chase_restricted;
    Alcotest.test_case "chase_egd" `Quick test_chase_egd;
  ]
