open Helpers

let check = Alcotest.(check bool)

let graph edges = inst (List.map (fun (a, b) -> ("E", [ a; b ])) edges)

(* Undirected graph: symmetric closure. *)
let ugraph edges =
  graph (List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) edges)

let square = ugraph [ ("a", "b"); ("b", "c"); ("c", "d"); ("d", "a") ]
let triangle = ugraph [ ("a", "b"); ("b", "c"); ("c", "a") ]

let test_coloring () =
  let k2 = Csp.Template.k_colouring 2 and k3 = Csp.Template.k_colouring 3 in
  check "square 2-colorable" true (Csp.Solve.solvable k2 square);
  check "triangle not 2-colorable" false (Csp.Solve.solvable k2 triangle);
  check "triangle 3-colorable" true (Csp.Solve.solvable k3 triangle);
  (* odd cycle of length 5 *)
  let c5 =
    ugraph [ ("1", "2"); ("2", "3"); ("3", "4"); ("4", "5"); ("5", "1") ]
  in
  check "C5 not 2-colorable" false (Csp.Solve.solvable k2 c5);
  check "C5 3-colorable" true (Csp.Solve.solvable k3 c5)

let test_solver_vs_hom =
  QCheck.Test.make ~name:"AC3 solver agrees with hom search" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let signature = Logic.Signature.of_list [ ("E", 2) ] in
      let rng = Random.State.make [| seed |] in
      let d = Structure.Randgen.instance ~rng ~signature ~size:4 ~p:0.3 in
      let k = 2 + Random.State.int rng 2 in
      let t = Csp.Template.k_colouring k in
      Bool.equal (Csp.Solve.solvable t d) (Csp.Solve.solvable_by_hom t d))

let test_solution_is_hom () =
  let k3 = Csp.Template.k_colouring 3 in
  match Csp.Solve.solve k3 triangle with
  | None -> Alcotest.fail "triangle is 3-colorable"
  | Some m ->
      check "solution is a homomorphism" true
        (Structure.Homomorphism.is_homomorphism m ~source:triangle
           ~target:k3.Csp.Template.instance)

let test_precoloring () =
  let k2 = Csp.Precolor.closure (Csp.Template.k_colouring 2) in
  (* pin both endpoints of an edge to the same color: unsolvable *)
  let d = graph [ ("a", "b") ] in
  let col0 = e "col0" in
  let pinned = Csp.Precolor.pin (e "a") col0 (Csp.Precolor.pin (e "b") col0 d) in
  check "conflicting pins unsolvable" false (Csp.Solve.solvable k2 pinned);
  let col1 = e "col1" in
  let ok = Csp.Precolor.pin (e "a") col0 (Csp.Precolor.pin (e "b") col1 d) in
  check "distinct pins fine" true (Csp.Solve.solvable k2 ok)

(* ---------------------------------------------------------------- *)
(* Theorem 8 encodings                                               *)
(* ---------------------------------------------------------------- *)

let test_encoding_fragment () =
  let t = Csp.Precolor.closure (Csp.Template.k_colouring 2) in
  let o_eq = Csp.Encode.ontology ~variant:Csp.Encode.Eq t in
  (match Gf.Fragment.of_ontology o_eq with
  | None -> Alcotest.fail "Eq encoding should be uGF2(1,=)"
  | Some d ->
      check "two var" true d.two_var;
      check "equality" true d.equality;
      Alcotest.(check int) "depth 1" 1 d.depth;
      check "no counting" false d.counting);
  let o_fl = Csp.Encode.ontology ~variant:Csp.Encode.Alcfl t in
  match Gf.Fragment.of_ontology o_fl with
  | None -> Alcotest.fail "Alcfl encoding should be uGC2"
  | Some d -> check "counting" true d.counting

(* The correctness of the encoding: D → A iff O,D′ is consistent. We
   test on K2 with small graphs for all three variants. *)
let encoding_agrees variant d =
  let t = Csp.Precolor.closure (Csp.Template.k_colouring 2) in
  let o = Csp.Encode.ontology ~variant t in
  let d' = Csp.Encode.lift_instance t d in
  let csp_yes = Csp.Solve.solvable t d in
  let consistent = Reasoner.Bounded.is_consistent ~max_extra:3 o d' in
  Bool.equal csp_yes consistent

let test_encoding_correct_eq () =
  check "square maps" true (encoding_agrees Csp.Encode.Eq square);
  check "triangle does not" true (encoding_agrees Csp.Encode.Eq triangle)

let test_encoding_correct_alcfl () =
  check "square maps" true (encoding_agrees Csp.Encode.Alcfl square);
  check "triangle does not" true (encoding_agrees Csp.Encode.Alcfl triangle)

let test_encoding_correct_func () =
  check "edge maps" true (encoding_agrees Csp.Encode.Func (ugraph [ ("a", "b") ]));
  check "triangle does not" true (encoding_agrees Csp.Encode.Func triangle)

let test_encoding_with_pins () =
  let t = Csp.Precolor.closure (Csp.Template.k_colouring 2) in
  let d = graph [ ("a", "b") ] in
  let bad = Csp.Precolor.pin (e "a") (e "col0") (Csp.Precolor.pin (e "b") (e "col0") d) in
  check "pinned conflict propagates" true
    (Bool.equal (Csp.Solve.solvable t bad)
       (Reasoner.Bounded.is_consistent ~max_extra:3
          (Csp.Encode.ontology t)
          (Csp.Encode.lift_instance t bad)))

let test_consistency_reduct_roundtrip () =
  (* D• recovers the pins from the marker edges. *)
  let t = Csp.Precolor.closure (Csp.Template.k_colouring 2) in
  let d = Csp.Precolor.pin (e "a") (e "col0") (graph [ ("a", "b") ]) in
  let d' = Csp.Encode.lift_instance t d in
  let reduct = Csp.Encode.consistency_reduct t d' in
  check "pin recovered" true
    (Structure.Instance.mem
       (Structure.Instance.fact (Csp.Precolor.predicate (e "col0")) [ e "a" ])
       reduct);
  check "solvable" true (Csp.Solve.solvable t reduct)

let suite =
  [
    Alcotest.test_case "coloring" `Quick test_coloring;
    QCheck_alcotest.to_alcotest test_solver_vs_hom;
    Alcotest.test_case "solution_is_hom" `Quick test_solution_is_hom;
    Alcotest.test_case "precoloring" `Quick test_precoloring;
    Alcotest.test_case "encoding_fragment" `Quick test_encoding_fragment;
    Alcotest.test_case "encoding_correct_eq" `Quick test_encoding_correct_eq;
    Alcotest.test_case "encoding_correct_alcfl" `Quick test_encoding_correct_alcfl;
    Alcotest.test_case "encoding_correct_func" `Quick test_encoding_correct_func;
    Alcotest.test_case "encoding_with_pins" `Quick test_encoding_with_pins;
    Alcotest.test_case "consistency_reduct" `Quick test_consistency_reduct_roundtrip;
  ]
