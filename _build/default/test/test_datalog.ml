open Helpers

let check = Alcotest.(check bool)

(* Transitive closure program. *)
let tc =
  Datalog.Program.make ~goal:"goal"
    [
      Datalog.Program.rule
        ~head:("T", [ v "x"; v "y" ])
        ~body:[ Datalog.Program.Pos ("E", [ v "x"; v "y" ]) ];
      Datalog.Program.rule
        ~head:("T", [ v "x"; v "z" ])
        ~body:
          [
            Datalog.Program.Pos ("T", [ v "x"; v "y" ]);
            Datalog.Program.Pos ("E", [ v "y"; v "z" ]);
          ];
      Datalog.Program.rule
        ~head:("goal", [ v "x"; v "y" ])
        ~body:[ Datalog.Program.Pos ("T", [ v "x"; v "y" ]) ];
    ]

let chain n =
  inst
    (List.init n (fun i ->
         ("E", [ Printf.sprintf "n%d" i; Printf.sprintf "n%d" (i + 1) ])))

let test_transitive_closure () =
  let d = chain 4 in
  let ans = Datalog.Seminaive.answers tc d in
  (* 5 nodes, all ordered pairs i<j: 10 *)
  Alcotest.(check int) "closure size" 10 (List.length ans);
  check "n0 to n4" true (Datalog.Seminaive.holds tc d [ e "n0"; e "n4" ]);
  check "no backwards" false (Datalog.Seminaive.holds tc d [ e "n4"; e "n0" ])

let test_seminaive_vs_naive =
  QCheck.Test.make ~name:"semi-naive agrees with naive" ~count:30
    QCheck.(int_bound 10000)
    (fun seed ->
      let signature = Logic.Signature.of_list [ ("E", 2); ("A", 1) ] in
      let rng = Random.State.make [| seed |] in
      let d = Structure.Randgen.instance ~rng ~signature ~size:4 ~p:0.3 in
      let p =
        Datalog.Program.make ~goal:"goal"
          [
            Datalog.Program.rule
              ~head:("T", [ v "x"; v "y" ])
              ~body:[ Datalog.Program.Pos ("E", [ v "x"; v "y" ]) ];
            Datalog.Program.rule
              ~head:("T", [ v "x"; v "z" ])
              ~body:
                [
                  Datalog.Program.Pos ("T", [ v "x"; v "y" ]);
                  Datalog.Program.Pos ("T", [ v "y"; v "z" ]);
                ];
            Datalog.Program.rule
              ~head:("goal", [ v "x" ])
              ~body:
                [
                  Datalog.Program.Pos ("T", [ v "x"; v "x" ]);
                  Datalog.Program.Pos ("A", [ v "x" ]);
                ];
          ]
      in
      Structure.Instance.equal
        (Datalog.Seminaive.evaluate p d)
        (Datalog.Seminaive.evaluate_naive p d))

let test_inequality () =
  (* goal(x) <- E(x,y), x != y. *)
  let p =
    Datalog.Program.make ~goal:"goal"
      [
        Datalog.Program.rule
          ~head:("goal", [ v "x" ])
          ~body:
            [
              Datalog.Program.Pos ("E", [ v "x"; v "y" ]);
              Datalog.Program.Neq (v "x", v "y");
            ];
      ]
  in
  let d = inst [ ("E", [ "a"; "a" ]); ("E", [ "b"; "c" ]) ] in
  let ans = Datalog.Seminaive.answers p d in
  Alcotest.(check int) "only b" 1 (List.length ans);
  check "b answers" true (Datalog.Seminaive.holds p d [ e "b" ])

let test_unsafe_rejected () =
  check "unsafe head var" true
    (try
       ignore
         (Datalog.Program.rule ~head:("goal", [ v "x" ]) ~body:[]);
       false
     with Datalog.Program.Unsafe_rule _ -> true);
  check "unsafe neq var" true
    (try
       ignore
         (Datalog.Program.rule
            ~head:("goal", [ v "x" ])
            ~body:
              [
                Datalog.Program.Pos ("A", [ v "x" ]);
                Datalog.Program.Neq (v "x", v "z");
              ]);
       false
     with Datalog.Program.Unsafe_rule _ -> true)

let test_constants_in_rules () =
  let p =
    Datalog.Program.make ~goal:"goal"
      [
        Datalog.Program.rule
          ~head:("goal", [ v "x" ])
          ~body:[ Datalog.Program.Pos ("E", [ v "x"; c "b" ]) ];
      ]
  in
  let d = inst [ ("E", [ "a"; "b" ]); ("E", [ "c"; "d" ]) ] in
  Alcotest.(check int) "one answer" 1 (List.length (Datalog.Seminaive.answers p d))

let suite =
  [
    Alcotest.test_case "transitive_closure" `Quick test_transitive_closure;
    QCheck_alcotest.to_alcotest test_seminaive_vs_naive;
    Alcotest.test_case "inequality" `Quick test_inequality;
    Alcotest.test_case "unsafe_rejected" `Quick test_unsafe_rejected;
    Alcotest.test_case "constants_in_rules" `Quick test_constants_in_rules;
  ]

let test_same_generation () =
  (* same-generation: a classic nonlinear program *)
  let sg =
    Datalog.Program.make ~goal:"goal"
      [
        Datalog.Program.rule
          ~head:("SG", [ v "x"; v "x" ])
          ~body:[ Datalog.Program.Pos ("Node", [ v "x" ]) ];
        Datalog.Program.rule
          ~head:("SG", [ v "x"; v "y" ])
          ~body:
            [
              Datalog.Program.Pos ("Par", [ v "x"; v "u" ]);
              Datalog.Program.Pos ("SG", [ v "u"; v "w" ]);
              Datalog.Program.Pos ("Par", [ v "y"; v "w" ]);
            ];
        Datalog.Program.rule
          ~head:("goal", [ v "x"; v "y" ])
          ~body:
            [ Datalog.Program.Pos ("SG", [ v "x"; v "y" ]); Datalog.Program.Neq (v "x", v "y") ];
      ]
  in
  (* a tree: r with children c1 c2; c1 with child g1; c2 with child g2 *)
  let d =
    inst
      [
        ("Node", [ "r" ]); ("Node", [ "c1" ]); ("Node", [ "c2" ]);
        ("Node", [ "g1" ]); ("Node", [ "g2" ]);
        ("Par", [ "c1"; "r" ]); ("Par", [ "c2"; "r" ]);
        ("Par", [ "g1"; "c1" ]); ("Par", [ "g2"; "c2" ]);
      ]
  in
  check "cousins same generation" true
    (Datalog.Seminaive.holds sg d [ e "g1"; e "g2" ]);
  check "different generations" false
    (Datalog.Seminaive.holds sg d [ e "g1"; e "c2" ]);
  (* agrees with the naive engine *)
  check "naive agrees" true
    (Structure.Instance.equal
       (Datalog.Seminaive.evaluate sg d)
       (Datalog.Seminaive.evaluate_naive sg d))

let suite =
  suite @ [ Alcotest.test_case "same_generation" `Quick test_same_generation ]
