open Helpers

let check = Alcotest.(check bool)

let test_figure1 () =
  (* Figure 1 regenerates exactly. *)
  List.iter
    (fun (name, (ev : Classify.Landscape.evidence), expected) ->
      Alcotest.(check string)
        name
        (Fmt.str "%a" Classify.Landscape.pp_status expected)
        (Fmt.str "%a" Classify.Landscape.pp_status ev.status))
    Classify.Landscape.figure1

let test_classify_concrete () =
  (* The hand ontologies are uGC−2(1): dichotomy fragment. *)
  let ev = Classify.Landscape.of_ontology o_hand_union in
  check "hand union in a dichotomy fragment" true
    (ev.Classify.Landscape.status = Classify.Landscape.Dichotomy);
  (* OMat/PTime is outside GF's uGF fragment: classified at GF level *)
  let ev2 = Classify.Landscape.of_ontology o_mat_ptime in
  check "OMat classified at GF level" true
    (ev2.Classify.Landscape.status = Classify.Landscape.Csp_hard)

let test_classify_tbox () =
  let t = Dl.Parser.parse_tbox "A << exists R . (exists S . (exists T . B))" in
  let ev = Classify.Landscape.of_tbox t in
  (* depth 3 ALC: CSP-hard by [42] *)
  check "ALC depth 3 CSP-hard" true
    (ev.Classify.Landscape.status = Classify.Landscape.Csp_hard)

let test_decide_ptime () =
  (* O2 alone: PTIME (Theorem 13 positive side). *)
  match Classify.Decide.decide ~samples:3 ~max_outdegree:3 o_hand_thumb with
  | Classify.Decide.Ptime_evidence n -> check "bouquets checked" true (n > 0)
  | Classify.Decide.Conp_hard w ->
      Alcotest.failf "unexpected witness %s" (Fmt.str "%a" Structure.Instance.pp w)

let test_decide_conp () =
  (* O1 ∪ O2: coNP-hard with the five-finger bouquet as witness. *)
  match
    Classify.Decide.decide ~samples:0 ~max_outdegree:5 ~verify_extra:4
      o_hand_union
  with
  | Classify.Decide.Conp_hard w ->
      check "witness has a hand" true
        (List.exists
           (fun (f : Structure.Instance.fact) -> f.rel = "Hand")
           (Structure.Instance.facts w));
      Alcotest.(check int) "six elements (hand + five fingers)" 6
        (Structure.Instance.domain_size w)
  | Classify.Decide.Ptime_evidence _ ->
      Alcotest.fail "expected a coNP-hardness witness"

let suite =
  [
    Alcotest.test_case "figure1" `Quick test_figure1;
    Alcotest.test_case "classify_concrete" `Quick test_classify_concrete;
    Alcotest.test_case "classify_tbox" `Quick test_classify_tbox;
    Alcotest.test_case "decide_ptime" `Quick test_decide_ptime;
    Alcotest.test_case "decide_conp" `Slow test_decide_conp;
  ]
