let check = Alcotest.(check bool)

let test_corpus_deterministic () =
  let c1 = Bioportal.Generate.corpus ~seed:5 ~n:20 () in
  let c2 = Bioportal.Generate.corpus ~seed:5 ~n:20 () in
  check "same seed, same corpus" true (c1 = c2);
  let c3 = Bioportal.Generate.corpus ~seed:6 ~n:20 () in
  check "different seed differs" true (c1 <> c3)

let test_strip_alchif () =
  let c =
    Dl.Concept.AtLeast (3, Dl.Concept.Name "r", Dl.Concept.Atomic "A")
  in
  let stripped = Bioportal.Analyze.to_alchif c in
  check "no Q left" false (Dl.Concept.uses_q stripped);
  let keep = Dl.Concept.leq_one (Dl.Concept.Name "r") in
  check "local functionality kept" true
    (Dl.Concept.equal keep (Bioportal.Analyze.to_alchif keep))

let test_table_shape () =
  (* The corpus reproduces the paper's proportions: almost everything in
     ALCHIF depth <= 2, the vast majority in ALCHIQ depth 1. *)
  let corpus = Bioportal.Generate.corpus () in
  Alcotest.(check int) "411 ontologies" 411 (List.length corpus);
  let table =
    Bioportal.Analyze.tabulate (List.map Bioportal.Analyze.analyze corpus)
  in
  let _, paper_alchif, paper_alchiq = Bioportal.Analyze.paper_reference in
  check "ALCHIF depth 2 close to the paper" true
    (abs (table.Bioportal.Analyze.in_alchif_depth2 - paper_alchif) <= 8);
  check "ALCHIQ depth 1 close to the paper" true
    (abs (table.Bioportal.Analyze.in_alchiq_depth1 - paper_alchiq) <= 15);
  check "a handful deeper" true (table.Bioportal.Analyze.deeper <= 10)

let test_analyze_fields () =
  let t = Dl.Parser.parse_tbox "A << exists r . B" in
  let r = Bioportal.Analyze.analyze t in
  check "depth 1 in ALCHIQ" true r.Bioportal.Analyze.alchiq_depth1;
  check "dichotomy" true
    (r.Bioportal.Analyze.status = Classify.Landscape.Dichotomy)

let suite =
  [
    Alcotest.test_case "corpus_deterministic" `Quick test_corpus_deterministic;
    Alcotest.test_case "strip_alchif" `Quick test_strip_alchif;
    Alcotest.test_case "table_shape" `Quick test_table_shape;
    Alcotest.test_case "analyze_fields" `Quick test_analyze_fields;
  ]
