(* Shared builders for test suites. *)

module F = Logic.Formula
module T = Logic.Term

let v s = T.Var s
let c s = T.Const s
let e s = Structure.Element.Const s

let inst l =
  Structure.Instance.of_list
    (List.map (fun (r, args) -> (r, List.map e args)) l)

let cq ?name ~answer atoms = Query.Cq.make ?name ~answer atoms
let ucq ?name qs = Query.Ucq.make ?name qs

(* ∀x (x = x → body) *)
let forall_eq x body = F.Forall ([ x ], F.Implies (F.Eq (v x, v x), body))

let atom r ts = F.Atom (r, ts)

(* ---------------------------------------------------------------- *)
(* Paper ontologies used across suites                               *)
(* ---------------------------------------------------------------- *)

(* O1 = { Hand ⊑ ∃=5 hasFinger } (Section 1). *)
let o_hand_five =
  Dl.Translate.tbox
    [ Dl.Tbox.Sub
        ( Dl.Concept.Atomic "Hand",
          Dl.Concept.exactly 5 (Dl.Concept.Name "hasFinger") Dl.Concept.Top )
    ]

(* O2 = { Hand ⊑ ∃ hasFinger.Thumb }. *)
let o_hand_thumb =
  Dl.Translate.tbox
    [ Dl.Tbox.Sub
        ( Dl.Concept.Atomic "Hand",
          Dl.Concept.Exists (Dl.Concept.Name "hasFinger", Dl.Concept.Atomic "Thumb")
        )
    ]

let o_hand_union = Logic.Ontology.union o_hand_five o_hand_thumb

(* OMat/PTime = { ∀x A(x) ∨ ∀x B(x) } (Example 1): not a uGF sentence. *)
let o_mat_ptime =
  Logic.Ontology.make
    [ F.Or
        ( F.Forall ([ "x" ], atom "A" [ v "x" ]),
          F.Forall ([ "x" ], atom "B" [ v "x" ]) )
    ]

(* OUCQ/CQ = { ∀x (A(x) ∨ B(x)) ∨ ∃x E(x) } (Example 1). *)
let o_ucq_cq =
  Logic.Ontology.make
    [ F.Or
        ( F.Forall ([ "x" ], F.Or (atom "A" [ v "x" ], atom "B" [ v "x" ])),
          F.Exists ([ "x" ], atom "E" [ v "x" ]) )
    ]

(* A simple disjunctive ontology: ∀x (D(x) → A(x) ∨ B(x)). *)
let o_disj =
  Logic.Ontology.make
    [ forall_eq "x"
        (F.Implies (atom "D" [ v "x" ], F.Or (atom "A" [ v "x" ], atom "B" [ v "x" ])))
    ]

(* Horn: ∀x (A(x) → ∃y (R(x,y) ∧ B(y))), ∀xy (R(x,y) → (B(y) → C(x))). *)
let o_horn =
  Logic.Ontology.make
    [ forall_eq "x"
        (F.Implies
           ( atom "A" [ v "x" ],
             F.Exists ([ "y" ], F.And (atom "R" [ v "x"; v "y" ], atom "B" [ v "y" ]))
           ));
      F.Forall
        ( [ "x"; "y" ],
          F.Implies
            ( atom "R" [ v "x"; v "y" ],
              F.Implies (atom "B" [ v "y" ], atom "C" [ v "x" ]) ) );
    ]
