open Helpers
module F = Logic.Formula

let check = Alcotest.(check bool)

(* Example 2: ∀xy (R(x,y) → (A(x) ∨ ∃z S(y,z))) is in uGF(1). *)
let example2 =
  F.Forall
    ( [ "x"; "y" ],
      F.Implies
        ( atom "R" [ v "x"; v "y" ],
          F.Or (atom "A" [ v "x" ], F.Exists ([ "z" ], atom "S" [ v "y"; v "z" ]))
        ) )

let test_example2 () =
  check "is uGF" true (Gf.Syntax.is_ugf_sentence example2);
  Alcotest.(check int) "depth 1" 1 (Gf.Syntax.sentence_depth example2);
  let a = Gf.Syntax.analyze_sentence example2 in
  check "outer guard not equality" false a.outer_eq

(* The equivalent uGF− sentence of depth 1 from Section 2.1:
   ∀x (x=x → (∃y (R(y,x) ∧ ¬A(y)) → ∃z S(x,z))). *)
let example2_minus =
  forall_eq "x"
    (F.Implies
       ( F.Exists ([ "y" ], F.And (atom "R" [ v "y"; v "x" ], F.Not (atom "A" [ v "y" ]))),
         F.Exists ([ "z" ], atom "S" [ v "x"; v "z" ]) ))

let test_example2_minus () =
  let a = Gf.Syntax.analyze_sentence example2_minus in
  check "outer guard equality" true a.outer_eq;
  Alcotest.(check int) "depth 1" 1 a.body.depth

let test_not_guarded () =
  (* ∀xy (A(x) → B(y)) is not guarded. *)
  let f = F.Forall ([ "x"; "y" ], F.Implies (atom "A" [ v "x" ], atom "B" [ v "y" ])) in
  check "not uGF" false (Gf.Syntax.is_ugf_sentence f);
  check "not GF" false (Gf.Syntax.is_gf f)

let test_fragment_names () =
  let d = Gf.Fragment.make ~two_var:true ~outer_eq:true ~functions:true 2 in
  Alcotest.(check string) "name" "uGF-2(2,f)" (Gf.Fragment.name d);
  let c = Gf.Fragment.make ~counting:true ~two_var:true ~outer_eq:true ~equality:true 1 in
  Alcotest.(check string) "name uGC" "uGC-2(1,=)" (Gf.Fragment.name c)

let test_fragment_of_ontology () =
  match Gf.Fragment.of_ontology o_hand_five with
  | None -> Alcotest.fail "O1 should be in uGC2"
  | Some d ->
      check "counting" true d.counting;
      check "two var" true d.two_var;
      check "outer eq" true d.outer_eq;
      Alcotest.(check int) "depth 1" 1 d.depth

let test_fragment_rejects_non_ugf () =
  check "OMat/PTime outside uGF" true
    (Gf.Fragment.of_ontology o_mat_ptime = None)

let test_subsumes () =
  let small = Gf.Fragment.make ~two_var:true ~outer_eq:true 1 in
  let big = Gf.Fragment.make ~two_var:false ~outer_eq:false 2 in
  check "subsumes" true (Gf.Fragment.subsumes big small);
  check "not conversely" false (Gf.Fragment.subsumes small big)

(* ---------------------------------------------------------------- *)
(* Invariance under disjoint unions (Theorem 1 / Example 1)          *)
(* ---------------------------------------------------------------- *)

let test_invariance_ugf () =
  (* uGF sentences are invariant; random search finds no counterexample *)
  check "example2 invariant" true (Gf.Invariance.appears_invariant example2);
  check "o_disj invariant" true
    (List.for_all Gf.Invariance.appears_invariant
       (Logic.Ontology.sentences o_disj))

let test_invariance_mat_ptime () =
  (* OMat/PTime = ∀x A(x) ∨ ∀x B(x): D1 = {A(a)}, D2 = {B(b)} are models
     but their disjoint union is not (Example 1). *)
  let s = List.hd (Logic.Ontology.sentences o_mat_ptime) in
  let d1 = inst [ ("A", [ "a" ]) ] and d2 = inst [ ("B", [ "b" ]) ] in
  (match Gf.Invariance.check_pair s d1 d2 with
  | Some cex ->
      check "left model" true cex.holds_left;
      check "right model" true cex.holds_right;
      check "union refutes" false cex.holds_union
  | None -> Alcotest.fail "expected a violation");
  check "random search finds it too" false (Gf.Invariance.appears_invariant s)

let test_invariance_ucq_cq () =
  (* OUCQ/CQ does not reflect disjoint unions: {E(a)} ∪ {F(b)} is a model
     but {F(b)} is not. *)
  let s = List.hd (Logic.Ontology.sentences o_ucq_cq) in
  let d1 = inst [ ("E", [ "a" ]) ] and d2 = inst [ ("F", [ "b" ]) ] in
  match Gf.Invariance.check_pair s d1 d2 with
  | Some cex ->
      check "left holds" true cex.holds_left;
      check "right fails" false cex.holds_right;
      check "union holds" true cex.holds_union
  | None -> Alcotest.fail "expected a reflection failure"

(* ---------------------------------------------------------------- *)
(* Scott-style depth reduction                                       *)
(* ---------------------------------------------------------------- *)

(* A depth-3 uGF2 sentence. *)
let deep_sentence =
  forall_eq "x"
    (F.Implies
       ( atom "A" [ v "x" ],
         F.Exists
           ( [ "y" ],
             F.And
               ( atom "R" [ v "x"; v "y" ],
                 F.Exists
                   ( [ "x" ],
                     F.And
                       ( atom "R" [ v "y"; v "x" ],
                         F.Exists ([ "y" ], F.And (atom "R" [ v "x"; v "y" ], atom "B" [ v "y" ]))
                       ) ) ) ) ))

let test_scott_reduces_depth () =
  let o = Logic.Ontology.make [ deep_sentence ] in
  Alcotest.(check int) "original depth 3" 3
    (Gf.Syntax.sentence_depth deep_sentence);
  let o' = Gf.Scott.reduce_ontology o in
  List.iter
    (fun s ->
      check "reduced sentence is uGF" true (Gf.Syntax.is_ugf_sentence s);
      check "depth <= 1" true (Gf.Syntax.sentence_depth s <= 1))
    (Logic.Ontology.sentences o');
  check "more sentences" true
    (List.length (Logic.Ontology.sentences o') > 1)

let test_scott_conservative () =
  (* Consistency of instances is preserved by the reduction (conservative
     extension ⇒ equisatisfiable with data). *)
  let o = Logic.Ontology.make [ deep_sentence ] in
  let o' = Gf.Scott.reduce_ontology o in
  let instances =
    [
      inst [ ("A", [ "a" ]) ];
      inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]) ];
      inst [ ("B", [ "b" ]) ];
    ]
  in
  List.iter
    (fun d ->
      let c = Reasoner.Bounded.is_consistent ~max_extra:3 o d in
      let c' = Reasoner.Bounded.is_consistent ~max_extra:3 o' d in
      check "consistency agrees" c c')
    instances

let suite =
  [
    Alcotest.test_case "example2" `Quick test_example2;
    Alcotest.test_case "example2_minus" `Quick test_example2_minus;
    Alcotest.test_case "not_guarded" `Quick test_not_guarded;
    Alcotest.test_case "fragment_names" `Quick test_fragment_names;
    Alcotest.test_case "fragment_of_ontology" `Quick test_fragment_of_ontology;
    Alcotest.test_case "fragment_rejects_non_ugf" `Quick test_fragment_rejects_non_ugf;
    Alcotest.test_case "subsumes" `Quick test_subsumes;
    Alcotest.test_case "invariance_ugf" `Quick test_invariance_ugf;
    Alcotest.test_case "invariance_mat_ptime" `Quick test_invariance_mat_ptime;
    Alcotest.test_case "invariance_ucq_cq" `Quick test_invariance_ucq_cq;
    Alcotest.test_case "scott_reduces_depth" `Quick test_scott_reduces_depth;
    Alcotest.test_case "scott_conservative" `Quick test_scott_conservative;
  ]
