open Helpers
module C = Dl.Concept

let check = Alcotest.(check bool)

let test_depth () =
  (* Example 3: ∃S.A ⊑ ∀R.∃S.B has depth 2. *)
  let lhs = C.Exists (C.Name "S", C.Atomic "A") in
  let rhs = C.Forall (C.Name "R", C.Exists (C.Name "S", C.Atomic "B")) in
  Alcotest.(check int) "depth 2" 2 (Dl.Tbox.depth [ Dl.Tbox.Sub (lhs, rhs) ])

let test_name () =
  let t =
    [
      Dl.Tbox.Sub (C.Atomic "A", C.AtLeast (2, C.Name "R", C.Atomic "B"));
      Dl.Tbox.RoleSub (C.Name "R", C.Name "S");
      Dl.Tbox.Sub (C.Atomic "A", C.Exists (C.Inv "R", C.Top));
    ]
  in
  Alcotest.(check string) "ALCHIQ" "ALCHIQ" (Dl.Tbox.name t);
  check "within ALCHIQ" true (Dl.Tbox.within_alchiq t);
  check "not within ALCHIF" false (Dl.Tbox.within_alchif t)

let test_parser_roundtrip () =
  let text =
    {|# the hand ontology
Hand << == 5 hasFinger
Hand << exists hasFinger . Thumb
role hasFinger << hasPart
func hasFinger-
|}
  in
  let t = Dl.Parser.parse_tbox text in
  Alcotest.(check int) "four axioms" 4 (List.length t);
  check "has func inverse" true
    (List.exists (function Dl.Tbox.Func (C.Inv "hasFinger") -> true | _ -> false) t)

let test_parser_concepts () =
  let c = Dl.Parser.parse_concept "not A and (B or exists r . Top)" in
  (* 'not' binds tightest: (not A) and (B or exists r.Top) *)
  match c with
  | C.And (C.Not (C.Atomic "A"), C.Or (C.Atomic "B", C.Exists (C.Name "r", C.Top))) -> ()
  | _ -> Alcotest.failf "unexpected parse: %s" (C.to_string c)

let test_parser_errors () =
  check "lex error" true
    (try
       ignore (Dl.Parser.parse_tbox "A << %");
       false
     with Dl.Lexer.Lex_error _ -> true);
  check "parse error" true
    (try
       ignore (Dl.Parser.parse_tbox "A <<");
       false
     with Dl.Parser.Parse_error _ -> true)

(* Translation agrees with direct DL semantics on random interpretations. *)
let test_translation_semantics =
  QCheck.Test.make ~name:"translation matches DL semantics" ~count:40
    QCheck.(int_bound 1000)
    (fun seed ->
      let signature =
        Logic.Signature.of_list [ ("A", 1); ("B", 1); ("R", 2) ]
      in
      let rng = Random.State.make [| seed |] in
      let i = Structure.Randgen.instance ~rng ~signature ~size:3 ~p:0.4 in
      let concepts =
        [
          C.Exists (C.Name "R", C.Atomic "A");
          C.Forall (C.Name "R", C.Or (C.Atomic "A", C.Atomic "B"));
          C.AtLeast (2, C.Name "R", C.Top);
          C.AtMost (1, C.Name "R", C.Atomic "A");
          C.Exists (C.Inv "R", C.Atomic "B");
          C.Not (C.Exists (C.Name "R", C.Not (C.Atomic "A")));
        ]
      in
      List.for_all
        (fun cpt ->
          let f = Dl.Translate.concept_formula cpt "x" in
          let ext = Dl.Semantics.extension i cpt in
          Structure.Element.Set.for_all
            (fun el ->
              let env = Structure.Modelcheck.env_of_list [ ("x", el) ] in
              Bool.equal
                (Structure.Element.Set.mem el ext)
                (Structure.Modelcheck.eval i env f))
            (Structure.Instance.domain i))
        concepts)

let test_axiom_translation =
  QCheck.Test.make ~name:"axiom translation matches DL model relation"
    ~count:40
    QCheck.(int_bound 1000)
    (fun seed ->
      let signature = Logic.Signature.of_list [ ("A", 1); ("B", 1); ("R", 2); ("S", 2) ] in
      let rng = Random.State.make [| seed |] in
      let i = Structure.Randgen.instance ~rng ~signature ~size:3 ~p:0.4 in
      let tboxes =
        [
          [ Dl.Tbox.Sub (C.Atomic "A", C.Exists (C.Name "R", C.Atomic "B")) ];
          [ Dl.Tbox.RoleSub (C.Name "R", C.Name "S") ];
          [ Dl.Tbox.Sub (C.AtLeast (2, C.Name "R", C.Top), C.Atomic "B") ];
        ]
      in
      List.for_all
        (fun t ->
          Bool.equal
            (Dl.Semantics.is_model i t)
            (Structure.Modelcheck.is_model i
               (Logic.Ontology.all_sentences (Dl.Translate.tbox t))))
        tboxes)

let test_translation_fragment () =
  (* Lemma 7: ALCHIQ depth 1 ontologies translate into uGC−2(1). *)
  let t =
    Dl.Parser.parse_tbox
      {|A << >= 2 R . B
role R << S
A << forall R- . B|}
  in
  Alcotest.(check int) "depth 1" 1 (Dl.Tbox.depth t);
  match Gf.Fragment.of_ontology (Dl.Translate.tbox t) with
  | None -> Alcotest.fail "expected a uGC2 ontology"
  | Some d ->
      check "outer eq" true d.outer_eq;
      check "two var" true d.two_var;
      check "depth <= 1" true (d.depth <= 1)

let test_normalize () =
  let t =
    Dl.Parser.parse_tbox
      "A << exists R . (exists S . (exists R . B))"
  in
  Alcotest.(check int) "depth 3" 3 (Dl.Tbox.depth t);
  let t' = Dl.Normalize.to_depth_one t in
  Alcotest.(check int) "normalised depth 1" 1 (Dl.Tbox.depth t');
  check "more axioms" true (List.length t' > List.length t);
  (* conservative: consistency of instances is preserved *)
  let d = inst [ ("A", [ "a" ]) ] in
  let c = Reasoner.Bounded.is_consistent ~max_extra:3 (Dl.Translate.tbox t) d in
  let c' = Reasoner.Bounded.is_consistent ~max_extra:3 (Dl.Translate.tbox t') d in
  check "consistency agrees" c c'

let test_nnf_concept =
  QCheck.Test.make ~name:"concept NNF preserves extension" ~count:30
    QCheck.(int_bound 1000)
    (fun seed ->
      let signature = Logic.Signature.of_list [ ("A", 1); ("R", 2) ] in
      let rng = Random.State.make [| seed |] in
      let i = Structure.Randgen.instance ~rng ~signature ~size:3 ~p:0.4 in
      let cs =
        [
          C.Not (C.Exists (C.Name "R", C.Atomic "A"));
          C.Not (C.AtLeast (2, C.Name "R", C.Atomic "A"));
          C.Not (C.And (C.Atomic "A", C.Not (C.Atomic "A")));
          C.Not (C.Forall (C.Name "R", C.Not (C.Atomic "A")));
        ]
      in
      List.for_all
        (fun cpt ->
          Structure.Element.Set.equal
            (Dl.Semantics.extension i cpt)
            (Dl.Semantics.extension i (C.nnf cpt)))
        cs)

let suite =
  [
    Alcotest.test_case "depth" `Quick test_depth;
    Alcotest.test_case "name" `Quick test_name;
    Alcotest.test_case "parser_roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser_concepts" `Quick test_parser_concepts;
    Alcotest.test_case "parser_errors" `Quick test_parser_errors;
    QCheck_alcotest.to_alcotest test_translation_semantics;
    QCheck_alcotest.to_alcotest test_axiom_translation;
    Alcotest.test_case "translation_fragment" `Quick test_translation_fragment;
    Alcotest.test_case "normalize" `Quick test_normalize;
    QCheck_alcotest.to_alcotest test_nnf_concept;
  ]
