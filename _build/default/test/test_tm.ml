let check = Alcotest.(check bool)

(* ---------------------------------------------------------------- *)
(* Machines and run fitting                                          *)
(* ---------------------------------------------------------------- *)

let test_machine_step () =
  let m = Tm.Machine.find_a in
  let c0 = Tm.Machine.initial m [ "b"; "a" ] ~length:4 in
  let succs = Tm.Machine.successors m c0 in
  Alcotest.(check int) "one successor" 1 (List.length succs);
  let c1 = List.hd succs in
  check "moved right" true (c1.Tm.Machine.head = 1);
  let c2 = List.hd (Tm.Machine.successors m c1) in
  check "accepting" true (Tm.Machine.is_accepting m c2)

let test_fitting_basic () =
  let m = Tm.Machine.find_a in
  (* q0 b a -> b q0 a -> b a qa : three configurations of length 3 *)
  let pr = Tm.Fitting.parse m [ "q0 b a"; "? ? ?"; "? ? ?" ] in
  check "fits" true (Tm.Fitting.fits m pr);
  (* no accepting 2-step run on pure 'b' input *)
  let pr2 = Tm.Fitting.parse m [ "q0 b b"; "? ? ?"; "? ? ?" ] in
  check "no fit on b's" false (Tm.Fitting.fits m pr2);
  (* wildcards in the start row: an accepting run exists for some input *)
  let pr3 = Tm.Fitting.parse m [ "q0 ? ?"; "? ? ?"; "? ? ?" ] in
  check "wildcard start fits" true (Tm.Fitting.fits m pr3)

let test_fitting_constrains_middle () =
  let m = Tm.Machine.find_a in
  (* force the middle configuration to still be in q0 at position 1 *)
  let pr = Tm.Fitting.parse m [ "q0 ? ?"; "? q0 ?"; "? ? ?" ] in
  check "fits through constrained middle" true (Tm.Fitting.fits m pr);
  (* an accepting state in the middle is impossible (no successors) *)
  let pr2 = Tm.Fitting.parse m [ "q0 ? ?"; "? qa ?"; "? ? ?" ] in
  check "accepting middle cannot continue" false (Tm.Fitting.fits m pr2)

let test_fitting_nondeterministic () =
  let m = Tm.Machine.guess_parity in
  (* 1 1 _ : two ones, even, acceptable in 3 steps *)
  let pr = Tm.Fitting.parse m [ "q0 1 1 _"; "? ? ? ?"; "? ? ? ?"; "? ? ? ?" ] in
  check "even parity accepted" true (Tm.Fitting.fits m pr)

let test_fitting_solution_is_run () =
  let m = Tm.Machine.find_a in
  let pr = Tm.Fitting.parse m [ "q0 b a"; "? ? ?"; "? ? ?" ] in
  match Tm.Fitting.solve m pr with
  | None -> Alcotest.fail "expected a run"
  | Some run ->
      Alcotest.(check int) "run length" 3 (List.length run);
      (* consecutive configurations are in the step relation *)
      let rec steps_ok = function
        | a :: (b :: _ as rest) ->
            List.exists
              (fun c -> c = b)
              (Tm.Machine.successors m a)
            && steps_ok rest
        | _ -> true
      in
      check "successor steps" true (steps_ok run);
      check "matches rows" true
        (List.for_all2 (fun c pc -> Tm.Fitting.matches c pc) run pr)

(* ---------------------------------------------------------------- *)
(* Ladner scaffolding                                                *)
(* ---------------------------------------------------------------- *)

let test_h_function () =
  (* if machine 0 decides the oracle exactly, H is constantly 0 *)
  let oracle s = String.length s mod 2 = 0 in
  let enumeration i s = if i = 0 then oracle s else false in
  List.iter
    (fun n -> Alcotest.(check int) "H = 0" 0 (Tm.Ladner.h_function ~enumeration ~oracle n))
    [ 4; 16; 64; 256 ];
  check "eventually constant" true
    (Tm.Ladner.eventually_constant ~enumeration ~oracle ~up_to:40 ());
  (* if no machine agrees, H grows with the bound log log n *)
  let bad_enumeration _ _ = false in
  let h1 = Tm.Ladner.h_function ~enumeration:bad_enumeration ~oracle 16 in
  let h2 = Tm.Ladner.h_function ~enumeration:bad_enumeration ~oracle 65536 in
  check "H grows" true (h2 > h1)

let test_padding () =
  Alcotest.(check int) "n^1" 5 (Tm.Ladner.padded_input_length ~h:1 5);
  Alcotest.(check int) "n^2" 25 (Tm.Ladner.padded_input_length ~h:2 5)

(* ---------------------------------------------------------------- *)
(* Tiling                                                            *)
(* ---------------------------------------------------------------- *)

let test_tiling_solver () =
  check "trivial solvable" true (Tm.Tiling.admits_tiling Tm.Tiling.trivial);
  check "unsolvable" false (Tm.Tiling.admits_tiling Tm.Tiling.unsolvable);
  match Tm.Tiling.solve Tm.Tiling.trivial with
  | None -> Alcotest.fail "expected a tiling"
  | Some f -> check "valid" true (Tm.Tiling.valid Tm.Tiling.trivial f)

let test_grid_instance () =
  let f = Option.get (Tm.Tiling.solve_fixed Tm.Tiling.trivial 2 2) in
  let d = Tm.Tiling.grid_instance f in
  (* 3x3 nodes, 2*3 X edges + 3*2 Y edges + 9 labels *)
  Alcotest.(check int) "fact count" 21 (Structure.Instance.cardinal d);
  let corner = Structure.Element.Const "g_0_0" in
  check "grid holds at corner" true (Tm.Gridenc.grid_holds Tm.Tiling.trivial d corner);
  check "grid fails elsewhere" false
    (Tm.Gridenc.grid_holds Tm.Tiling.trivial d (Structure.Element.Const "g_1_1"));
  check "cell holds at corner" true (Tm.Gridenc.cell_holds d corner);
  check "cell holds at interior" true
    (Tm.Gridenc.cell_holds d (Structure.Element.Const "g_1_1"));
  check "cell fails at top" false
    (Tm.Gridenc.cell_holds d (Structure.Element.Const "g_0_2"))

let test_grid_closure () =
  (* a stray X edge out of the grid breaks grid(d) *)
  let f = Option.get (Tm.Tiling.solve_fixed Tm.Tiling.trivial 1 1) in
  let d = Tm.Tiling.grid_instance f in
  let corner = Structure.Element.Const "g_0_0" in
  check "clean grid holds" true (Tm.Gridenc.grid_holds Tm.Tiling.trivial d corner);
  let broken =
    Structure.Instance.add_fact
      (Structure.Instance.fact "X"
         [ Structure.Element.Const "g_1_1"; Structure.Element.Const "stray" ])
      d
  in
  check "stray edge breaks closure" false
    (Tm.Gridenc.grid_holds Tm.Tiling.trivial broken corner)

(* ---------------------------------------------------------------- *)
(* The grid ontologies                                               *)
(* ---------------------------------------------------------------- *)

let test_ontology_shape () =
  let oc = Tm.Gridenc.ontology_cell in
  Alcotest.(check int) "Ocell depth 2" 2 (Dl.Tbox.depth oc);
  check "inside ALCHIF family (no Q)" true (Dl.Tbox.within_alchif oc);
  let features = Dl.Tbox.features oc in
  check "uses inverses" true features.Dl.Tbox.i;
  check "uses local functionality" true features.Dl.Tbox.f_local;
  let op = Tm.Gridenc.ontology_p Tm.Tiling.trivial in
  Alcotest.(check int) "OP depth 2" 2 (Dl.Tbox.depth op);
  (* translation lands in uGC2 *)
  match Gf.Fragment.of_ontology (Dl.Translate.tbox op) with
  | None -> Alcotest.fail "OP should translate into uGC2"
  | Some d -> check "two-variable with counting" true (d.two_var && d.counting)

let suite =
  [
    Alcotest.test_case "machine_step" `Quick test_machine_step;
    Alcotest.test_case "fitting_basic" `Quick test_fitting_basic;
    Alcotest.test_case "fitting_constrains_middle" `Quick test_fitting_constrains_middle;
    Alcotest.test_case "fitting_nondeterministic" `Quick test_fitting_nondeterministic;
    Alcotest.test_case "fitting_solution_is_run" `Quick test_fitting_solution_is_run;
    Alcotest.test_case "h_function" `Quick test_h_function;
    Alcotest.test_case "padding" `Quick test_padding;
    Alcotest.test_case "tiling_solver" `Quick test_tiling_solver;
    Alcotest.test_case "grid_instance" `Quick test_grid_instance;
    Alcotest.test_case "grid_closure" `Quick test_grid_closure;
    Alcotest.test_case "ontology_shape" `Quick test_ontology_shape;
  ]

(* ---------------------------------------------------------------- *)
(* Semantics of the grid ontologies (Theorem 10), bounded engine     *)
(* ---------------------------------------------------------------- *)

let corner = Structure.Element.Const "g_0_0"

let test_ocell_marks_cells () =
  (* On a 2x2 grid, (=1P) is certain exactly at lower-left corners of
     closed cells. *)
  let f = Option.get (Tm.Tiling.solve_fixed Tm.Tiling.trivial 1 1) in
  let d = Tm.Tiling.grid_instance f in
  let o = Dl.Translate.tbox Tm.Gridenc.ontology_cell in
  let pform = Dl.Translate.concept_formula (Tm.Gridenc.eq_one "P") "x" in
  let certain_at el =
    Reasoner.Bounded.certain_formula ~max_extra:0
      ~env:(Logic.Names.SMap.singleton "x" el)
      o d pform
  in
  check "certain at the cell corner" true (certain_at corner);
  check "matches cell(d)" true (Tm.Gridenc.cell_holds d corner);
  check "not certain at the top-left" false
    (certain_at (Structure.Element.Const "g_0_1"));
  check "matches cell(d) there too" false
    (Tm.Gridenc.cell_holds d (Structure.Element.Const "g_0_1"))

let test_op_triggers_disjunction () =
  (* Theorem 10: on a properly tiled grid, OP ∪ {acc ⊑ B1 ⊔ B2} entails
     B1 ∨ B2 at the corner with neither disjunct certain — the
     non-materializability trigger. *)
  let p = Tm.Tiling.trivial in
  let f = Option.get (Tm.Tiling.solve_fixed p 1 0) in
  let d = Tm.Tiling.grid_instance f in
  let o = Dl.Translate.tbox (Tm.Gridenc.ontology_undecidability p) in
  let qb1 = Helpers.cq ~name:"qb1" ~answer:[ "x" ] [ ("B1", [ Logic.Term.Var "x" ]) ] in
  let qb2 = Helpers.cq ~name:"qb2" ~answer:[ "x" ] [ ("B2", [ Logic.Term.Var "x" ]) ] in
  check "consistent" true (Reasoner.Bounded.is_consistent ~max_extra:0 o d);
  check "grid(d) holds" true (Tm.Gridenc.grid_holds p d corner);
  check "B1 or B2 certain" true
    (Reasoner.Bounded.certain_disjunction ~max_extra:0 o d
       [ (qb1, [ corner ]); (qb2, [ corner ]) ]);
  check "B1 alone not certain" false
    (Reasoner.Bounded.certain_cq ~max_extra:0 o d qb1 [ corner ]);
  check "B2 alone not certain" false
    (Reasoner.Bounded.certain_cq ~max_extra:0 o d qb2 [ corner ])

let test_op_ignores_broken_grids () =
  (* Mislabel the grid (no initial tile): the verification never
     completes, so no disjunction is triggered. *)
  let p = Tm.Tiling.trivial in
  let d =
    Helpers.inst
      [ ("B", [ "g_0_0" ]); ("F", [ "g_1_0" ]); ("X", [ "g_0_0"; "g_1_0" ]) ]
  in
  let o = Dl.Translate.tbox (Tm.Gridenc.ontology_undecidability p) in
  let qb1 = Helpers.cq ~name:"qb1" ~answer:[ "x" ] [ ("B1", [ Logic.Term.Var "x" ]) ] in
  let qb2 = Helpers.cq ~name:"qb2" ~answer:[ "x" ] [ ("B2", [ Logic.Term.Var "x" ]) ] in
  check "grid(d) fails" false (Tm.Gridenc.grid_holds p d corner);
  check "no disjunction certain" false
    (Reasoner.Bounded.certain_disjunction ~max_extra:0 o d
       [ (qb1, [ corner ]); (qb2, [ corner ]) ])

let suite =
  suite
  @ [
      Alcotest.test_case "ocell_marks_cells" `Quick test_ocell_marks_cells;
      Alcotest.test_case "op_triggers_disjunction" `Quick test_op_triggers_disjunction;
      Alcotest.test_case "op_ignores_broken_grids" `Quick test_op_ignores_broken_grids;
    ]

let test_lemma4_ontology () =
  (* The Lemma 4 ontology O_M: ALCIFl-shaped, depth 2, with the
     (≥2 ·) run-cell markers for every state and symbol. *)
  let m = Tm.Machine.find_a in
  let om = Tm.Gridenc.ontology_m m in
  Alcotest.(check int) "depth 2" 2 (Dl.Tbox.depth om);
  let f = Dl.Tbox.features om in
  check "inverse roles" true f.Dl.Tbox.i;
  check "local functionality" true f.Dl.Tbox.f_local;
  check "counting markers" true f.Dl.Tbox.q;
  (* a transition axiom exists for every (state, read) pair of delta *)
  List.iter
    (fun (tr : Tm.Machine.transition) ->
      let marker = "St_" ^ tr.Tm.Machine.from_state in
      check
        (Printf.sprintf "axiom mentions %s" marker)
        true
        (List.exists
           (fun ax ->
             match ax with
             | Dl.Tbox.Sub (c, _) ->
                 List.exists
                   (fun r -> Dl.Concept.role_name r = marker ^ "_X1")
                   (Dl.Concept.roles c)
             | _ -> false)
           om))
    m.Tm.Machine.delta;
  (* and the accepting state triggers the disjunction *)
  check "accepting trigger" true
    (List.exists
       (function
         | Dl.Tbox.Sub (_, Dl.Concept.Or (Dl.Concept.Atomic "B1", Dl.Concept.Atomic "B2")) -> true
         | _ -> false)
       om)

let suite =
  suite @ [ Alcotest.test_case "lemma4_ontology" `Quick test_lemma4_ontology ]
