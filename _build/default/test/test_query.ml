open Helpers
module F = Logic.Formula

let check = Alcotest.(check bool)

let triangle = inst [ ("R", [ "a"; "b" ]); ("R", [ "b"; "c" ]); ("R", [ "c"; "a" ]) ]

let test_cq_eval () =
  let q = cq ~answer:[ "x" ] [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "z" ]) ] in
  let ans = Query.Cq.answers triangle q in
  Alcotest.(check int) "all three answer" 3 (List.length ans);
  check "a answers" true (Query.Cq.holds triangle q [ e "a" ])

let test_cq_constants () =
  let q = cq ~answer:[ "x" ] [ ("R", [ v "x"; c "b" ]) ] in
  let ans = Query.Cq.answers triangle q in
  Alcotest.(check int) "only a" 1 (List.length ans);
  check "a" true (Query.Cq.holds triangle q [ e "a" ])

let test_cq_vs_modelcheck =
  QCheck.Test.make ~name:"cq evaluation agrees with FO semantics" ~count:40
    QCheck.(int_bound 1000)
    (fun seed ->
      let signature = Logic.Signature.of_list [ ("R", 2); ("A", 1) ] in
      let rng = Random.State.make [| seed |] in
      let i = Structure.Randgen.instance ~rng ~signature ~size:3 ~p:0.4 in
      let q =
        cq ~answer:[ "x" ]
          [ ("R", [ v "x"; v "y" ]); ("A", [ v "y" ]) ]
      in
      let f = Query.Cq.to_formula q in
      Structure.Element.Set.for_all
        (fun el ->
          let env = Structure.Modelcheck.env_of_list [ ("x", el) ] in
          Bool.equal
            (Query.Cq.holds i q [ el ])
            (Structure.Modelcheck.eval i env f))
        (Structure.Instance.domain i))

let test_boolean_cq () =
  let q = cq ~answer:[] [ ("R", [ v "x"; v "x" ]) ] in
  check "no loop" false (Query.Cq.holds_boolean triangle q);
  let with_loop = Structure.Instance.add_fact (Structure.Instance.fact "R" [ e "d"; e "d" ]) triangle in
  check "loop found" true (Query.Cq.holds_boolean with_loop q)

let test_raq_example4 () =
  (* Example 4: q(x) ← R(x,y) ∧ R(y,z) ∧ R(z,x) is not an rAQ; adding
     Q(x,y,z) makes it one. *)
  let q1 =
    cq ~answer:[ "x" ]
      [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "z" ]); ("R", [ v "z"; v "x" ]) ]
  in
  check "triangle not rAQ" false (Query.Cq.is_raq q1);
  let q2 =
    cq ~answer:[ "x" ]
      [
        ("R", [ v "x"; v "y" ]);
        ("R", [ v "y"; v "z" ]);
        ("R", [ v "z"; v "x" ]);
        ("Q", [ v "x"; v "y"; v "z" ]);
      ]
  in
  check "guarded triangle is rAQ" true (Query.Cq.is_raq q2)

let test_raq_path () =
  let q = Query.Raq.path_query "R" 2 ~ending:(Some "A") in
  check "path query is rAQ" true (Query.Cq.is_raq q);
  check "boolean not rAQ" false
    (Query.Cq.is_raq (cq ~answer:[] [ ("A", [ v "x" ]) ]))

let test_ucq () =
  let qa = cq ~name:"qa" ~answer:[ "x" ] [ ("A", [ v "x" ]) ] in
  let qb = cq ~name:"qb" ~answer:[ "x" ] [ ("B", [ v "x" ]) ] in
  let u = ucq [ qa; qb ] in
  let i = inst [ ("A", [ "a" ]); ("B", [ "b" ]) ] in
  Alcotest.(check int) "two answers" 2 (List.length (Query.Ucq.answers i u));
  check "arity mismatch rejected" true
    (try
       ignore (ucq [ qa; cq ~answer:[] [ ("A", [ v "x" ]) ] ]);
       false
     with Query.Ucq.Ill_formed _ -> true)

let test_of_instance () =
  let path = inst [ ("R", [ "a"; "b" ]); ("R", [ "b"; "c" ]) ] in
  match Query.Raq.of_instance path ~answer:[ e "a" ] with
  | None -> Alcotest.fail "path should give an rAQ"
  | Some q ->
      check "is raq" true (Query.Cq.is_raq q);
      check "holds on itself" true (Query.Cq.holds path q [ e "a" ])

let suite =
  [
    Alcotest.test_case "cq_eval" `Quick test_cq_eval;
    Alcotest.test_case "cq_constants" `Quick test_cq_constants;
    QCheck_alcotest.to_alcotest test_cq_vs_modelcheck;
    Alcotest.test_case "boolean_cq" `Quick test_boolean_cq;
    Alcotest.test_case "raq_example4" `Quick test_raq_example4;
    Alcotest.test_case "raq_path" `Quick test_raq_path;
    Alcotest.test_case "ucq" `Quick test_ucq;
    Alcotest.test_case "of_instance" `Quick test_of_instance;
  ]

let test_parse_cq () =
  let q = Query.Parse.cq_of_string "q(x) <- R(x,y), A(y), S(y, 'c1')" in
  Alcotest.(check int) "arity" 1 (Query.Cq.arity q);
  Alcotest.(check int) "atoms" 3 (List.length q.Query.Cq.atoms);
  check "constant parsed" true
    (List.exists
       (fun (_, ts) -> List.exists (fun t -> t = Logic.Term.Const "c1") ts)
       q.Query.Cq.atoms);
  (* Boolean query: bare head *)
  let qb = Query.Parse.cq_of_string "q <- E(x)" in
  check "boolean" true (Query.Cq.is_boolean qb);
  (* capitalised arguments are constants *)
  let qc = Query.Parse.cq_of_string "q(x) <- R(x, Amsterdam)" in
  check "capitalised constant" true
    (List.exists
       (fun (_, ts) -> List.mem (Logic.Term.Const "Amsterdam") ts)
       qc.Query.Cq.atoms)

let test_parse_ucq () =
  let u = Query.Parse.ucq_of_string "q(x) <- A(x) | q(x) <- B(x)" in
  Alcotest.(check int) "two disjuncts" 2 (List.length (Query.Ucq.disjuncts u));
  check "parse error raised" true
    (try
       ignore (Query.Parse.cq_of_string "q(x) R(x,y)");
       false
     with Query.Parse.Parse_error _ -> true)

let test_parse_instance () =
  let d =
    Structure.Parse.instance_of_string
      "R(a, b).\n# comment line\nA(a)  # trailing comment\n\nB(c)."
  in
  Alcotest.(check int) "three facts" 3 (Structure.Instance.cardinal d);
  check "bad fact raises" true
    (try
       ignore (Structure.Parse.instance_of_string "nonsense");
       false
     with Structure.Parse.Parse_error _ -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "parse_cq" `Quick test_parse_cq;
      Alcotest.test_case "parse_ucq" `Quick test_parse_ucq;
      Alcotest.test_case "parse_instance" `Quick test_parse_instance;
    ]
