open Helpers
module F = Logic.Formula

let check = Alcotest.(check bool)

let test_free_vars () =
  let f = F.Forall ([ "x" ], F.Implies (atom "R" [ v "x"; v "y" ], atom "A" [ v "x" ])) in
  check "y free" true (Logic.Names.SSet.mem "y" (F.free_vars f));
  check "x bound" false (Logic.Names.SSet.mem "x" (F.free_vars f))

let test_smart_constructors () =
  check "conj empty" true (F.equal (F.conj []) F.True);
  check "conj unit" true (F.equal (F.conj2 F.True (atom "A" [ v "x" ])) (atom "A" [ v "x" ]));
  check "disj false" true (F.equal (F.disj2 F.False (atom "A" [ v "x" ])) (atom "A" [ v "x" ]));
  check "implies true" true (F.equal (F.implies F.True (atom "A" [ v "x" ])) (atom "A" [ v "x" ]));
  check "neg neg" true (F.equal (F.neg (F.neg (atom "A" [ v "x" ]))) (atom "A" [ v "x" ]))

let test_nnf_semantics () =
  (* NNF preserves truth on random small structures. *)
  let signature = Logic.Signature.of_list [ ("A", 1); ("R", 2) ] in
  let rng = Random.State.make [| 42 |] in
  let formulas =
    [
      F.Not (F.Exists ([ "y" ], F.And (atom "R" [ v "x"; v "y" ], atom "A" [ v "y" ])));
      F.Not (F.And (atom "A" [ v "x" ], F.Not (atom "A" [ v "x" ])));
      F.Implies (atom "A" [ v "x" ], F.Not (F.Forall ([ "y" ], F.Implies (atom "R" [ v "x"; v "y" ], atom "A" [ v "y" ]))));
    ]
  in
  for _ = 1 to 25 do
    let i = Structure.Randgen.instance ~rng ~signature ~size:3 ~p:0.4 in
    Structure.Element.Set.iter
      (fun el ->
        let env = Structure.Modelcheck.env_of_list [ ("x", el) ] in
        List.iter
          (fun f ->
            check "nnf agrees"
              (Structure.Modelcheck.eval i env f)
              (Structure.Modelcheck.eval i env (F.nnf f)))
          formulas)
      (Structure.Instance.domain i)
  done

let test_subst_capture () =
  (* Substituting y for x under a binder for y must rename the binder. *)
  let f = F.Exists ([ "y" ], F.And (atom "R" [ v "x"; v "y" ], atom "A" [ v "y" ])) in
  let g = Logic.Subst.apply (Logic.Subst.singleton "x" (v "y")) f in
  (* y must remain free in g *)
  check "y free after subst" true (Logic.Names.SSet.mem "y" (F.free_vars g));
  (* and the bound variable is renamed, so the formula is satisfiable
     where R(y, z) with z <> y *)
  let i = inst [ ("R", [ "a"; "b" ]); ("A", [ "b" ]) ] in
  let env = Structure.Modelcheck.env_of_list [ ("y", e "a") ] in
  check "semantics" true (Structure.Modelcheck.eval i env g)

let test_signature () =
  let f = F.And (atom "R" [ v "x"; v "y" ], atom "A" [ v "x" ]) in
  let s = Logic.Signature.of_formula f in
  Alcotest.(check (option int)) "R/2" (Some 2) (Logic.Signature.arity "R" s);
  Alcotest.(check (option int)) "A/1" (Some 1) (Logic.Signature.arity "A" s);
  check "mismatch raises" true
    (try
       ignore (Logic.Signature.add "R" 3 s);
       false
     with Logic.Signature.Arity_mismatch _ -> true)

let test_ontology_functionality () =
  let o = Logic.Ontology.make ~functional:[ "F" ] [] in
  let ax = Logic.Ontology.all_sentences o in
  Alcotest.(check int) "one axiom" 1 (List.length ax);
  let i_ok = inst [ ("F", [ "a"; "b" ]) ] in
  let i_bad = inst [ ("F", [ "a"; "b" ]); ("F", [ "a"; "c" ]) ] in
  check "function ok" true (Structure.Modelcheck.is_model i_ok ax);
  check "function violated" false (Structure.Modelcheck.is_model i_bad ax)

let suite =
  [
    Alcotest.test_case "free_vars" `Quick test_free_vars;
    Alcotest.test_case "smart_constructors" `Quick test_smart_constructors;
    Alcotest.test_case "nnf_semantics" `Quick test_nnf_semantics;
    Alcotest.test_case "subst_capture" `Quick test_subst_capture;
    Alcotest.test_case "signature" `Quick test_signature;
    Alcotest.test_case "functionality_axiom" `Quick test_ontology_functionality;
  ]
